file(REMOVE_RECURSE
  "CMakeFiles/tag_dictionary_test.dir/tag_dictionary_test.cc.o"
  "CMakeFiles/tag_dictionary_test.dir/tag_dictionary_test.cc.o.d"
  "tag_dictionary_test"
  "tag_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
