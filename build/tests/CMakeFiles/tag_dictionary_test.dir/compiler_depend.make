# Empty compiler generated dependencies file for tag_dictionary_test.
# This may be replaced when dependencies are built.
