# Empty compiler generated dependencies file for logical_matcher_test.
# This may be replaced when dependencies are built.
