file(REMOVE_RECURSE
  "CMakeFiles/logical_matcher_test.dir/logical_matcher_test.cc.o"
  "CMakeFiles/logical_matcher_test.dir/logical_matcher_test.cc.o.d"
  "logical_matcher_test"
  "logical_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
