file(REMOVE_RECURSE
  "CMakeFiles/dewey_test.dir/dewey_test.cc.o"
  "CMakeFiles/dewey_test.dir/dewey_test.cc.o.d"
  "dewey_test"
  "dewey_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dewey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
