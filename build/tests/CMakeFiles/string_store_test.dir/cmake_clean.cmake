file(REMOVE_RECURSE
  "CMakeFiles/string_store_test.dir/string_store_test.cc.o"
  "CMakeFiles/string_store_test.dir/string_store_test.cc.o.d"
  "string_store_test"
  "string_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
