# Empty dependencies file for string_store_test.
# This may be replaced when dependencies are built.
