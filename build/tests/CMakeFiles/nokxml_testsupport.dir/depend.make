# Empty dependencies file for nokxml_testsupport.
# This may be replaced when dependencies are built.
