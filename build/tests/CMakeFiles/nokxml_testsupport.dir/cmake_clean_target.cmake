file(REMOVE_RECURSE
  "libnokxml_testsupport.a"
)
