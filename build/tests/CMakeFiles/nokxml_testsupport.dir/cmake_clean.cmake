file(REMOVE_RECURSE
  "CMakeFiles/nokxml_testsupport.dir/oracle.cc.o"
  "CMakeFiles/nokxml_testsupport.dir/oracle.cc.o.d"
  "CMakeFiles/nokxml_testsupport.dir/test_util.cc.o"
  "CMakeFiles/nokxml_testsupport.dir/test_util.cc.o.d"
  "libnokxml_testsupport.a"
  "libnokxml_testsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nokxml_testsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
