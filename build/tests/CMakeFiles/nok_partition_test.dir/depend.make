# Empty dependencies file for nok_partition_test.
# This may be replaced when dependencies are built.
