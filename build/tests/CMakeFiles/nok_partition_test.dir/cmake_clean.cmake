file(REMOVE_RECURSE
  "CMakeFiles/nok_partition_test.dir/nok_partition_test.cc.o"
  "CMakeFiles/nok_partition_test.dir/nok_partition_test.cc.o.d"
  "nok_partition_test"
  "nok_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nok_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
