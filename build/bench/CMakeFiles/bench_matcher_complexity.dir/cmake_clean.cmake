file(REMOVE_RECURSE
  "CMakeFiles/bench_matcher_complexity.dir/bench_matcher_complexity.cc.o"
  "CMakeFiles/bench_matcher_complexity.dir/bench_matcher_complexity.cc.o.d"
  "bench_matcher_complexity"
  "bench_matcher_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matcher_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
