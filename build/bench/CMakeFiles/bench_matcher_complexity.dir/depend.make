# Empty dependencies file for bench_matcher_complexity.
# This may be replaced when dependencies are built.
