# Empty dependencies file for bench_axis_stats.
# This may be replaced when dependencies are built.
