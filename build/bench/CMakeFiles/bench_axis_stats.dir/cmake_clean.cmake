file(REMOVE_RECURSE
  "CMakeFiles/bench_axis_stats.dir/bench_axis_stats.cc.o"
  "CMakeFiles/bench_axis_stats.dir/bench_axis_stats.cc.o.d"
  "bench_axis_stats"
  "bench_axis_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_axis_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
