file(REMOVE_RECURSE
  "CMakeFiles/bench_index_choice.dir/bench_index_choice.cc.o"
  "CMakeFiles/bench_index_choice.dir/bench_index_choice.cc.o.d"
  "bench_index_choice"
  "bench_index_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
