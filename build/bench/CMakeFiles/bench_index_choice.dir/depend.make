# Empty dependencies file for bench_index_choice.
# This may be replaced when dependencies are built.
