# Empty compiler generated dependencies file for bulk_update.
# This may be replaced when dependencies are built.
