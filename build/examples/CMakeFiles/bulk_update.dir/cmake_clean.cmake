file(REMOVE_RECURSE
  "CMakeFiles/bulk_update.dir/bulk_update.cpp.o"
  "CMakeFiles/bulk_update.dir/bulk_update.cpp.o.d"
  "bulk_update"
  "bulk_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
