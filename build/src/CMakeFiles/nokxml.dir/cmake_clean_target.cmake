file(REMOVE_RECURSE
  "libnokxml.a"
)
