# Empty dependencies file for nokxml.
# This may be replaced when dependencies are built.
