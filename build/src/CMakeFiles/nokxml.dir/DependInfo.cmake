
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/di_engine.cc" "src/CMakeFiles/nokxml.dir/baseline/di_engine.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/baseline/di_engine.cc.o.d"
  "/root/repo/src/baseline/interval_encoding.cc" "src/CMakeFiles/nokxml.dir/baseline/interval_encoding.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/baseline/interval_encoding.cc.o.d"
  "/root/repo/src/baseline/navigational_engine.cc" "src/CMakeFiles/nokxml.dir/baseline/navigational_engine.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/baseline/navigational_engine.cc.o.d"
  "/root/repo/src/baseline/twigstack_engine.cc" "src/CMakeFiles/nokxml.dir/baseline/twigstack_engine.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/baseline/twigstack_engine.cc.o.d"
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/nokxml.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/node.cc" "src/CMakeFiles/nokxml.dir/btree/node.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/btree/node.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/nokxml.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/common/coding.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/nokxml.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/nokxml.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/nokxml.dir/common/status.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/common/status.cc.o.d"
  "/root/repo/src/datagen/dataset_gen.cc" "src/CMakeFiles/nokxml.dir/datagen/dataset_gen.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/datagen/dataset_gen.cc.o.d"
  "/root/repo/src/datagen/query_gen.cc" "src/CMakeFiles/nokxml.dir/datagen/query_gen.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/datagen/query_gen.cc.o.d"
  "/root/repo/src/datagen/usecases_corpus.cc" "src/CMakeFiles/nokxml.dir/datagen/usecases_corpus.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/datagen/usecases_corpus.cc.o.d"
  "/root/repo/src/encoding/dewey.cc" "src/CMakeFiles/nokxml.dir/encoding/dewey.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/encoding/dewey.cc.o.d"
  "/root/repo/src/encoding/document_store.cc" "src/CMakeFiles/nokxml.dir/encoding/document_store.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/encoding/document_store.cc.o.d"
  "/root/repo/src/encoding/string_store.cc" "src/CMakeFiles/nokxml.dir/encoding/string_store.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/encoding/string_store.cc.o.d"
  "/root/repo/src/encoding/tag_dictionary.cc" "src/CMakeFiles/nokxml.dir/encoding/tag_dictionary.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/encoding/tag_dictionary.cc.o.d"
  "/root/repo/src/encoding/updater.cc" "src/CMakeFiles/nokxml.dir/encoding/updater.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/encoding/updater.cc.o.d"
  "/root/repo/src/encoding/value_store.cc" "src/CMakeFiles/nokxml.dir/encoding/value_store.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/encoding/value_store.cc.o.d"
  "/root/repo/src/nok/logical_matcher.cc" "src/CMakeFiles/nokxml.dir/nok/logical_matcher.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/logical_matcher.cc.o.d"
  "/root/repo/src/nok/nok_partition.cc" "src/CMakeFiles/nokxml.dir/nok/nok_partition.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/nok_partition.cc.o.d"
  "/root/repo/src/nok/pattern_tree.cc" "src/CMakeFiles/nokxml.dir/nok/pattern_tree.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/pattern_tree.cc.o.d"
  "/root/repo/src/nok/physical_matcher.cc" "src/CMakeFiles/nokxml.dir/nok/physical_matcher.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/physical_matcher.cc.o.d"
  "/root/repo/src/nok/query_engine.cc" "src/CMakeFiles/nokxml.dir/nok/query_engine.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/query_engine.cc.o.d"
  "/root/repo/src/nok/structural_join.cc" "src/CMakeFiles/nokxml.dir/nok/structural_join.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/structural_join.cc.o.d"
  "/root/repo/src/nok/xpath_parser.cc" "src/CMakeFiles/nokxml.dir/nok/xpath_parser.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/nok/xpath_parser.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/nokxml.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/file.cc" "src/CMakeFiles/nokxml.dir/storage/file.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/storage/file.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/nokxml.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/storage/pager.cc.o.d"
  "/root/repo/src/streaming/sax_source.cc" "src/CMakeFiles/nokxml.dir/streaming/sax_source.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/streaming/sax_source.cc.o.d"
  "/root/repo/src/streaming/stream_matcher.cc" "src/CMakeFiles/nokxml.dir/streaming/stream_matcher.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/streaming/stream_matcher.cc.o.d"
  "/root/repo/src/xml/dom.cc" "src/CMakeFiles/nokxml.dir/xml/dom.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/xml/dom.cc.o.d"
  "/root/repo/src/xml/escape.cc" "src/CMakeFiles/nokxml.dir/xml/escape.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/xml/escape.cc.o.d"
  "/root/repo/src/xml/sax_parser.cc" "src/CMakeFiles/nokxml.dir/xml/sax_parser.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/xml/sax_parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/nokxml.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/nokxml.dir/xml/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
