# Empty compiler generated dependencies file for nokq.
# This may be replaced when dependencies are built.
