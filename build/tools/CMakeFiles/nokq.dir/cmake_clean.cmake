file(REMOVE_RECURSE
  "CMakeFiles/nokq.dir/nokq.cc.o"
  "CMakeFiles/nokq.dir/nokq.cc.o.d"
  "nokq"
  "nokq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nokq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
