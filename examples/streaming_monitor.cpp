// Streaming XML monitoring (the paper's streaming adaptation, Sections 1
// and 4.2): evaluate a NoK pattern over an event feed in a single pass
// with bounded memory -- no document store is ever built.
//
// The feed here is a synthetic sensor log; the query flags readings from
// sensor "s7" whose value exceeds a threshold.
//
//   $ ./streaming_monitor

#include <cstdio>

#include "common/random.h"
#include "streaming/stream_matcher.h"

int main() {
  // Synthesize a feed of 50,000 readings.
  nok::Random rng(2024);
  std::string feed = "<log>";
  int planted = 0;
  for (int i = 0; i < 50000; ++i) {
    const int sensor = static_cast<int>(rng.Uniform(40));
    const int value = static_cast<int>(rng.Uniform(120));
    feed += "<reading><sensor>s" + std::to_string(sensor) +
            "</sensor><value>" + std::to_string(value) +
            "</value><seq>" + std::to_string(i) + "</seq></reading>";
    planted += sensor == 7 && value > 100;
  }
  feed += "</log>";

  const std::string query =
      "/log/reading[sensor=\"s7\"][value>100]/seq";
  printf("monitoring %zu-byte feed for %s\n", feed.size(), query.c_str());

  nok::StreamRunStats stats;
  auto matches = nok::EvaluateStreaming(query, feed, &stats);
  if (!matches.ok()) {
    fprintf(stderr, "streaming failed: %s\n",
            matches.status().ToString().c_str());
    return 1;
  }
  printf("found %zu alerts (expected %d)\n", matches->size(), planted);
  size_t shown = 0;
  for (const nok::DeweyId& id : *matches) {
    if (++shown > 5) {
      printf("  ... %zu more\n", matches->size() - 5);
      break;
    }
    printf("  alert at node %s\n", id.ToString().c_str());
  }
  printf("\nsingle pass over %llu events; peak buffer %zu nodes "
         "(Proposition 1: one <reading> subtree at a time, never the "
         "whole feed)\n",
         static_cast<unsigned long long>(stats.events),
         stats.peak_buffered_nodes);
  return matches->size() == static_cast<size_t>(planted) ? 0 : 1;
}
