// The paper's running example (Figures 1-2, Example 1), end to end:
// parse the bibliography, show the pattern tree and its NoK partition,
// evaluate //book[author/last="Stevens"][price<100] with each
// starting-point strategy, and print the per-strategy statistics.
//
//   $ ./bibliography

#include <cstdio>

#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"

namespace {

const char* kBibliography = R"(
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix Environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor>
      <last>Gerbarg</last><first>Darcy</first>
      <affiliation>CITI</affiliation>
    </editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>)";

const char* StrategyDisplay(nok::StartStrategy s) {
  switch (s) {
    case nok::StartStrategy::kScan: return "sequential scan";
    case nok::StartStrategy::kTagIndex: return "tag index";
    case nok::StartStrategy::kValueIndex: return "value index";
    case nok::StartStrategy::kPathIndex: return "path index";
    case nok::StartStrategy::kAuto: return "auto";
  }
  return "?";
}

}  // namespace

int main() {
  const std::string query =
      "//book[author/last=\"Stevens\"][price<100]";

  // Pattern tree and NoK partition (Sections 2-3 of the paper).
  auto pattern = nok::ParseXPath(query);
  if (!pattern.ok()) return 1;
  printf("query: %s\n\npattern tree:\n%s\n", query.c_str(),
         pattern->ToString().c_str());
  const nok::NokPartition partition = nok::PartitionPattern(*pattern);
  printf("NoK partition (%zu trees, %zu global arc(s)):\n%s\n",
         partition.trees.size(), partition.arcs.size(),
         partition.ToString().c_str());

  // Build the store and evaluate with every strategy.
  auto store = nok::DocumentStore::Build(kBibliography, {});
  if (!store.ok()) {
    fprintf(stderr, "build failed: %s\n",
            store.status().ToString().c_str());
    return 1;
  }
  nok::QueryEngine engine(store->get());
  for (nok::StartStrategy strategy :
       {nok::StartStrategy::kAuto, nok::StartStrategy::kScan,
        nok::StartStrategy::kTagIndex, nok::StartStrategy::kValueIndex}) {
    nok::QueryOptions options;
    options.strategy = strategy;
    auto result = engine.Evaluate(query, options);
    if (!result.ok()) {
      fprintf(stderr, "evaluate failed: %s\n",
              result.status().ToString().c_str());
      return 1;
    }
    printf("strategy %-16s -> %zu matches;", StrategyDisplay(strategy),
           result->size());
    for (const auto& tree_stats : engine.last_stats().trees) {
      printf(" [tree: %s, %zu candidates, %zu bindings]",
             StrategyDisplay(tree_stats.strategy), tree_stats.candidates,
             tree_stats.bindings);
    }
    printf("\n");
    for (const nok::DeweyId& id : *result) {
      auto title = (*store)->ValueOf(id.Child(1));  // title = child 1.
      printf("    book %s%s%s\n", id.ToString().c_str(),
             title.ok() && title->has_value() ? ": " : "",
             title.ok() && title->has_value() ? (*title)->c_str() : "");
    }
  }
  return 0;
}
