// Updates against a persistent store (Section 4.2): build a store on
// disk, insert and delete subtrees, show that queries stay consistent and
// that the store can be reopened.
//
//   $ ./bulk_update [directory]      (default: a temp directory)

#include <cstdio>
#include <filesystem>

#include "encoding/document_store.h"
#include "nok/query_engine.h"

namespace {

size_t Count(nok::QueryEngine* engine, const std::string& query) {
  auto r = engine->Evaluate(query);
  if (!r.ok()) {
    fprintf(stderr, "query %s failed: %s\n", query.c_str(),
            r.status().ToString().c_str());
    exit(1);
  }
  return r->size();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "nokxml_bulk_update_example")
                     .string();
  std::filesystem::remove_all(dir);

  std::string xml = "<inventory>";
  for (int i = 0; i < 500; ++i) {
    xml += "<item><sku>sku" + std::to_string(i) + "</sku><qty>" +
           std::to_string(i % 50) + "</qty></item>";
  }
  xml += "</inventory>";

  nok::DocumentStore::Options options;
  options.dir = dir;
  {
    auto store = nok::DocumentStore::Build(xml, options);
    if (!store.ok()) {
      fprintf(stderr, "build failed: %s\n",
              store.status().ToString().c_str());
      return 1;
    }
    nok::QueryEngine engine(store->get());
    printf("built store in %s: %zu items, %zu zero-qty\n", dir.c_str(),
           Count(&engine, "/inventory/item"),
           Count(&engine, "/inventory/item[qty=\"0\"]"));

    // Insert a flash-sale item at the front and annotate item 3.
    auto check = [&](nok::Status s, const char* what) {
      if (!s.ok()) {
        fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
        exit(1);
      }
    };
    check((*store)->InsertSubtree(
              nok::DeweyId({0}), 0,
              "<item><sku>flash-1</sku><qty>999</qty>"
              "<tag>sale</tag></item>"),
          "insert");
    check((*store)->InsertSubtree(nok::DeweyId({0, 3}), 2,
                                  "<tag>clearance</tag>"),
          "annotate");
    // Remove the last item entirely.
    check((*store)->DeleteSubtree(nok::DeweyId({0, 500})), "delete");

    printf("after updates: %zu items, %zu tagged\n",
           Count(&engine, "/inventory/item"),
           Count(&engine, "/inventory/item[tag]"));
    check((*store)->Flush(), "flush");
  }

  // Reopen from disk: everything persisted.
  {
    auto store = nok::DocumentStore::OpenDir(options);
    if (!store.ok()) {
      fprintf(stderr, "reopen failed: %s\n",
              store.status().ToString().c_str());
      return 1;
    }
    nok::QueryEngine engine(store->get());
    printf("reopened: %zu items, %zu tagged, flash item present: %s\n",
           Count(&engine, "/inventory/item"),
           Count(&engine, "/inventory/item[tag]"),
           Count(&engine, "//item[sku=\"flash-1\"]") == 1 ? "yes" : "NO");
  }
  std::filesystem::remove_all(dir);
  return 0;
}
