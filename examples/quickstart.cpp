// Quickstart: build a document store from XML text, run a path query,
// read back values.
//
//   $ ./quickstart
//
// Shows the minimal public API surface: DocumentStore::Build,
// QueryEngine::Evaluate, DocumentStore::ValueOf.

#include <cstdio>

#include "encoding/document_store.h"
#include "nok/query_engine.h"

int main() {
  const std::string xml = R"(
    <library>
      <book genre="databases"><title>Readings in DB</title>
      <year>1998</year></book>
      <book genre="systems"><title>TAOCP</title><year>1997</year></book>
      <book genre="databases"><title>Red Book</title><year>2005</year></book>
    </library>)";

  // 1. Build the physical store (in memory here; pass options.dir for a
  //    persistent one).
  auto store = nok::DocumentStore::Build(xml, {});
  if (!store.ok()) {
    fprintf(stderr, "build failed: %s\n",
            store.status().ToString().c_str());
    return 1;
  }
  printf("stored %llu nodes; tree string is %llu bytes for %zu bytes of "
         "XML\n\n",
         static_cast<unsigned long long>((*store)->stats().node_count),
         static_cast<unsigned long long>((*store)->stats().tree_bytes),
         xml.size());

  // 2. Run a path query.
  nok::QueryEngine engine(store->get());
  auto result = engine.Evaluate(
      "/library/book[@genre=\"databases\"][year>2000]/title");
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n",
            result.status().ToString().c_str());
    return 1;
  }

  // 3. Read the matched nodes' values.
  printf("titles of database books after 2000:\n");
  for (const nok::DeweyId& id : *result) {
    auto value = (*store)->ValueOf(id);
    if (value.ok() && value->has_value()) {
      printf("  [%s] %s\n", id.ToString().c_str(), (*value)->c_str());
    }
  }
  return 0;
}
