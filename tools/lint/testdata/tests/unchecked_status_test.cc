// NOK004 fixture: a Status assigned and then forgotten fires; a checked
// one and an OK-initialized struct member do not.  The auto form fires
// too — `auto st = Call();` with a status-ish name hides the same
// dropped error — while auto locals with other names, references, and
// non-call initializers stay out of scope.

#include "common/status.h"

namespace nok {

Status Fallible();
Status& FallibleRef();

struct FakeStats {
  int fetches = 0;
};
FakeStats CollectStats();

void DropsTheError() {
  Status s = Fallible();  // EXPECT-LINT: NOK004
}

void DropsTheErrorViaAuto() {
  auto st = Fallible();  // EXPECT-LINT: NOK004
}

void DropsTheErrorViaConstAuto() {
  const auto open_status = Fallible();  // EXPECT-LINT: NOK004
}

void ChecksTheError() {
  Status checked = Fallible();
  if (!checked.ok()) return;
}

void ChecksTheAutoError() {
  auto st = Fallible();
  if (!st.ok()) return;
}

void AutoButNotAStatusName() {
  auto stats = CollectStats();  // "stats" is not status-ish: fine
}

void AutoReferenceAliasesCheckedStatus() {
  // A reference does not own the error; the owner checks it.
  auto& st = FallibleRef();
}

void AutoNonCallInitializer() {
  int zero = 0;
  auto s = zero;  // not a call result: fine
}

struct Outcome {
  Status status = Status::OK();  // default member init: no drop
};

}  // namespace nok
