// NOK004 fixture: a Status assigned and then forgotten fires; a checked
// one and an OK-initialized struct member do not.

#include "common/status.h"

namespace nok {

Status Fallible();

void DropsTheError() {
  Status s = Fallible();  // EXPECT-LINT: NOK004
}

void ChecksTheError() {
  Status checked = Fallible();
  if (!checked.ok()) return;
}

struct Outcome {
  Status status = Status::OK();  // default member init: no drop
};

}  // namespace nok
