// NOK005 is scoped to src/: the same constructs in tests/ produce no
// findings, so this file carries no EXPECT-LINT annotations.

#include <mutex>
#include <thread>

namespace nok {

inline void TestsMayDriveThreadsDirectly() {
  std::mutex mu;
  mu.lock();
  mu.unlock();
  std::thread worker([] {});
  worker.detach();
}

}  // namespace nok
