// NOK003 fixture: the guard exists but its name does not follow
// NOKXML_<DIR>_<FILE>_H_ (expected NOKXML_BTREE_BAD_GUARD_H_).

#ifndef WRONG_GUARD_NAME_H  // EXPECT-LINT: NOK003
#define WRONG_GUARD_NAME_H

namespace nok {

int BadGuardFixture();

}  // namespace nok

#endif  // WRONG_GUARD_NAME_H
