// NOK006 fixture: a nok/ file other than planner/executor reaching into
// B+ tree internals.  The encoding facade include is fine (nok may
// depend on encoding under NOK001 and is not restricted by NOK006).

#include "btree/btree.h"  // EXPECT-LINT: NOK006
#include "encoding/document_store.h"

namespace nok {

int SublayeringFixture() { return 0; }

}  // namespace nok
