// NOK006 fixture (negative): the planner is one of the two nok/ files
// allowed to include B+ tree internals directly, so no finding fires.

#include "btree/btree.h"
#include "encoding/document_store.h"

namespace nok {

int PlannerSublayeringFixture() { return 0; }

}  // namespace nok
