// NOK006/NOK011 fixture (negative): the planner is one of the two nok/
// files allowed to include B+ tree internals directly, and the only
// nok/ file allowed the path-synopsis trie, so no finding fires.

#include "btree/btree.h"
#include "encoding/document_store.h"
#include "encoding/path_synopsis.h"

namespace nok {

int PlannerSublayeringFixture() { return 0; }

}  // namespace nok
