// NOK011 fixture: a nok/ file other than the planner probing the path
// synopsis trie directly.  The executor must consume the plan's
// cardinality fields (and EmptyResult plans); a second trie consumer
// would fork the cost model.  The facade include is fine under both
// NOK001 and NOK011.

#include "encoding/document_store.h"
#include "encoding/path_synopsis.h"  // EXPECT-LINT: NOK011

namespace nok {

int SynopsisLayeringFixture() { return 0; }

}  // namespace nok
