// NOK001 fixture: nok/ is below baseline/ and streaming/ in the DAG, so
// both includes are layering violations.  The common/ include is fine.

#include "common/status.h"
#include "baseline/di_engine.h"        // EXPECT-LINT: NOK001
#include "streaming/stream_matcher.h"  // EXPECT-LINT: NOK001

namespace nok {

int LayeringFixture() { return 0; }

}  // namespace nok
