// NOK009 exemption fixture: src/common/ may use the raw std:: mutex
// family — the annotated wrappers (common/mutex.h) are implemented
// here, so nothing in this file may fire.

#ifndef NOKXML_COMMON_RAW_STD_MUTEX_OK_H_
#define NOKXML_COMMON_RAW_STD_MUTEX_OK_H_

#include <condition_variable>
#include <mutex>

namespace nok {

class WrapperInternals {
 public:
  void Poke() {
    std::lock_guard<std::mutex> lock(mu_);
    ++pokes_;
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int pokes_ = 0;
};

}  // namespace nok

#endif  // NOKXML_COMMON_RAW_STD_MUTEX_OK_H_
