// A fully conforming header: correct guard, no banned APIs, no layering
// violations, clean formatting.  The self-test asserts nok_lint reports
// nothing for this file.

#ifndef NOKXML_COMMON_CLEAN_HEADER_H_
#define NOKXML_COMMON_CLEAN_HEADER_H_

#include "common/status.h"

namespace nok {

inline int Twice(int x) { return x * 2; }

}  // namespace nok

#endif  // NOKXML_COMMON_CLEAN_HEADER_H_
