// NOK001 fixture: encoding/ must never include baseline/ (the baselines
// exist to be compared against the succinct encoding, not the reverse).

#include "baseline/interval_encoding.h"  // EXPECT-LINT: NOK001

namespace nok {

int EncodingLayeringFixture() { return 0; }

}  // namespace nok
