// NOK007 fixture: durability syscalls issued outside src/storage/.
#include <unistd.h>

namespace nok {

int FlushDescriptor(int fd, const char* buf) {
  if (::fsync(fd) != 0) return -1;             // EXPECT-LINT: NOK007
  if (fdatasync(fd) != 0) return -1;           // EXPECT-LINT: NOK007
  if (::pwrite(fd, buf, 4, 0) != 4) return -1; // EXPECT-LINT: NOK007
  char out[4];
  if (pread(fd, out, 4, 0) != 4) return -1;    // EXPECT-LINT: NOK007
  // Mentioning fsync in a comment or a "fsync(" string is fine:
  const char* msg = "fsync() failed";
  return msg[0];
}

}  // namespace nok
