// Conforming fixture modeled on encoding/tag_summary.h: a header-only
// constexpr utility in the encoding layer with a same-layer include.  The
// self-test asserts nok_lint reports nothing for this shape (guard name,
// layering, formatting).

#ifndef NOKXML_ENCODING_TAG_SUMMARY_CLEAN_H_
#define NOKXML_ENCODING_TAG_SUMMARY_CLEAN_H_

#include <cstdint>

#include "encoding/tag_dictionary.h"

namespace nok {

inline constexpr uint32_t kFixtureExactBits = 64;

/// Returns a one-bit mask for small ids, a two-bit mask otherwise.
inline constexpr uint64_t FixtureSummaryBits(uint32_t id) {
  if (id == 0) return 0;
  if (id <= kFixtureExactBits) return uint64_t{1} << (id - 1);
  const uint64_t h = id * uint64_t{0x9E3779B97F4A7C15};
  return (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63));
}

}  // namespace nok

#endif  // NOKXML_ENCODING_TAG_SUMMARY_CLEAN_H_
