// FMT fixture: each formatting rule fires once.  The trailing-space,
// tab, and CRLF lines are byte-exact; editors may not show them.

namespace nok {

int kPadding___________________________________________ = 1;  // this line deliberately runs past the eighty-column limit EXPECT-LINT: FMT001
int trailing = 2;  // EXPECT-LINT: FMT002   
int	tabbed = 3;  // EXPECT-LINT: FMT003
int crlf = 4;  // EXPECT-LINT: FMT004

}  // namespace nok
