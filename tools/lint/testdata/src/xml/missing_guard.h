// NOK003 fixture: header with no include guard.  EXPECT-LINT: NOK003

namespace nok {

int MissingGuardFixture();

}  // namespace nok
