// NOK010 fixture: shipping code (src/, bench/, tools/) must never pull
// in test infrastructure.  The oracle and the fuzz harness live under
// tests/ on purpose — an engine that "validates itself" against them at
// runtime drags gtest-adjacent code into the library.

#include "common/status.h"
#include "tests/oracle.h"              // EXPECT-LINT: NOK010
#include "tests/fuzz/fuzz_harness.h"   // EXPECT-LINT: NOK010

namespace nok {

int TestLeakFixture() { return 0; }

}  // namespace nok
