// NOK002 fixture: each banned call fires once; mentions inside comments
// and string literals must not fire.

#include <cstdio>
#include <cstdlib>

namespace nok {

int BannedFixture(const char* text) {
  int a = atoi(text);             // EXPECT-LINT: NOK002
  long b = atol(text);            // EXPECT-LINT: NOK002
  char buf[16];
  sprintf(buf, "%d", a);          // EXPECT-LINT: NOK002
  int c = rand();                 // EXPECT-LINT: NOK002
  srand(42);                      // EXPECT-LINT: NOK002
  if (a + b + c == 0) abort();    // EXPECT-LINT: NOK002
  // atoi(text) in a comment is not a call.
  const char* s = "atoi(text) in a string is not a call";
  return s[0] + static_cast<int>(b);
}

}  // namespace nok
