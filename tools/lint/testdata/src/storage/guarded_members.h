// NOK008 fixture: a class owning a nok::Mutex must GUARDED_BY-annotate
// every non-atomic mutable data member.  Atomics, const members, the
// lock itself, functions, and NOK008-OK-exempted members do not fire;
// classes without a Mutex are out of scope entirely.

#ifndef NOKXML_STORAGE_GUARDED_MEMBERS_H_
#define NOKXML_STORAGE_GUARDED_MEMBERS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nok {

class LeakyCounters {
 public:
  void Add(uint64_t n) EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  uint64_t guarded_total_ GUARDED_BY(mu_) = 0;
  uint64_t naked_total_ = 0;       // EXPECT-LINT: NOK008
  std::vector<int> naked_items_;   // EXPECT-LINT: NOK008
  std::atomic<uint64_t> ticks_{0};           // atomic: fine
  const std::string name_ = "counters";      // const: fine
  static constexpr int kLimit = 8;           // not instance state: fine
  std::string dir_;  // NOK008-OK: immutable after construction
  // NOK008-OK: written once before the object is shared.
  std::string tag_;
};

// A nested Mutex-owning struct is checked on its own; the outer class
// (which owns no Mutex) is not.
class ShardedThing {
 public:
  struct Shard {
    mutable Mutex mu;
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t naked_misses = 0;  // EXPECT-LINT: NOK008
  };

 private:
  std::vector<Shard> shards_;  // outer class owns no Mutex: fine
  uint64_t unguarded_ok_ = 0;  // outer class owns no Mutex: fine
};

}  // namespace nok

#endif  // NOKXML_STORAGE_GUARDED_MEMBERS_H_
