// NOK005 fixture: thread detach() and naked mutex lock() fire in src/;
// scoped holders and non-mutex receivers named like smart pointers do
// not.

#include <memory>
#include <mutex>
#include <thread>

namespace nok {

struct Shard {
  std::mutex mu;
  int value = 0;
};

class ThreadingFixture {
 public:
  void Bad(Shard* shard) {
    std::thread worker([] {});
    worker.detach();                   // EXPECT-LINT: NOK005
    mu_.lock();                        // EXPECT-LINT: NOK005
    shard->mu.lock();                  // EXPECT-LINT: NOK005
    shard_mtx_.lock();                 // EXPECT-LINT: NOK005
    mutex_.lock();                     // EXPECT-LINT: NOK005
    mutex_.unlock();
    shard_mtx_.unlock();
    shard->mu.unlock();
    mu_.unlock();
  }

  int Good(Shard* shard, std::weak_ptr<int> wp) {
    std::lock_guard<std::mutex> guard(mu_);      // scoped: fine
    std::scoped_lock both(shard->mu, mutex_);    // scoped: fine
    // wp is a weak_ptr, not a mutex: lock() here must not fire.
    if (auto strong = wp.lock()) return *strong + shard->value;
    std::thread worker([] {});
    worker.join();                               // joined: fine
    return shard->value;
  }

 private:
  std::mutex mu_;
  std::mutex mutex_;
  std::mutex shard_mtx_;
};

}  // namespace nok
