// NOK005 fixture: thread detach() fires in src/; joined threads and
// weak_ptr::lock() do not.  NOK009 fixture: the raw std:: mutex family
// (types and headers) fires outside src/common/; the nok:: wrappers do
// not.

#include <mutex>               // EXPECT-LINT: NOK009
#include <condition_variable>  // EXPECT-LINT: NOK009
#include <memory>
#include <thread>

#include "common/mutex.h"

namespace nok {

struct Shard {
  std::mutex mu;  // EXPECT-LINT: NOK009
  int value = 0;
};

class ThreadingFixture {
 public:
  void Bad(Shard* shard) {
    (void)shard;
    std::thread worker([] {});
    worker.detach();                             // EXPECT-LINT: NOK005
    std::lock_guard<std::mutex> guard(raw_mu_);  // EXPECT-LINT: NOK009
    std::unique_lock<std::mutex> ul(raw_mu_);    // EXPECT-LINT: NOK009
    cv_.wait(ul);                                // the decl above fired
  }

  int Good(Shard* shard, std::weak_ptr<int> wp) {
    MutexLock lock(&mu_);  // annotated wrapper: fine
    // wp is a weak_ptr, not a mutex: lock() here must not fire.
    if (auto strong = wp.lock()) return *strong + shard->value;
    std::thread worker([] {});
    worker.join();         // joined: fine
    return shard->value;
  }

 private:
  Mutex mu_;
  int guarded_value_ GUARDED_BY(mu_) = 0;
  std::mutex raw_mu_;               // EXPECT-LINT: NOK009
  std::condition_variable cv_;      // EXPECT-LINT: NOK009
};

}  // namespace nok
