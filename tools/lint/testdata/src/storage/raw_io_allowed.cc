// NOK007 fixture: src/storage/ is the one layer allowed to issue the
// raw syscalls (this is where the File abstraction lives).
#include <unistd.h>

namespace nok {

int SyncDescriptor(int fd) {
  if (::fdatasync(fd) != 0) return -1;
  return ::fsync(fd);
}

}  // namespace nok
