#!/usr/bin/env python3
"""nok_lint: repo-specific static checks the C++ toolchain cannot express.

Dependency-free (Python 3 stdlib only).  Registered as a ctest test, and run
by ci/run_checks.sh; a non-empty finding list is a build failure.

Rules
-----
NOK001  include-layering: source under src/<layer>/ may only include
        headers from layers at or below it in the DAG
            common <- storage <- btree
            common <- xml
            {storage, btree, xml} <- encoding <- nok <- {streaming, baseline}
            common <- datagen
        and baseline/ headers are never included from nok/ or encoding/
        (the baselines compare against NoK; NoK must not depend on them).
NOK002  banned APIs: atoi/atol/atoll (silent 0 on garbage), sprintf
        (unbounded), rand/srand (not reproducible, poor distribution —
        use common/random.h), and raw abort() outside src/common/logging
        (error handling goes through Status or NOK_CHECK).
NOK003  include guards: every header uses
        #ifndef NOKXML_<PATH>_H_ / #define NOKXML_<PATH>_H_ where <PATH>
        is the path relative to src/ (or the repo root for tests/, bench/,
        tools/), uppercased, with separators mapped to '_'.
NOK004  unchecked Status: in tests, a local `Status name = ...;` (or
        nok::Status) whose name is never mentioned again before the end of
        the enclosing block silently drops an error the test meant to
        observe.
NOK005  threading discipline (src/ only): `.detach()` orphans a thread
        no sanitizer or shutdown path can see — join it instead; and a
        naked `.lock()` on a mutex-named receiver (mu, mutex, mtx, with
        optional underscores) leaks the lock on early return or throw —
        use std::lock_guard / std::scoped_lock / std::unique_lock.
        Receivers that do not look like mutexes (e.g. a
        std::weak_ptr named `wp`) are not flagged.
NOK006  nok sub-layering: inside src/nok/, only the planner/executor
        pair (the storage-facing halves of the query engine) may include
        "btree/..." headers directly.  query_engine and the matchers
        consume plans and candidate sets; reaching into B+ tree
        internals from them bypasses the planner's cost model and the
        encoding facade.  (The reverse edges — encoding or btree
        including nok/planner.h / nok/executor.h — are already NOK001
        violations.)
NOK007  raw file-I/O syscalls: fsync/fdatasync/sync_file_range/pwrite/
        pread anywhere outside src/storage/ bypass the File abstraction.
        The WAL's crash-safety argument rests on one ordering (log
        fsync before base writes) that only holds for I/O the storage
        layer issues — and the fault-injection harness can only crash
        what it can see.  Use File::Sync/WriteAt/ReadAt from
        storage/file.h.

Format checks (advisory by default; --format-fatal makes them errors)
---------------------------------------------------------------------
FMT001  line longer than 80 columns
FMT002  trailing whitespace
FMT003  tab character in source
FMT004  CRLF line ending

Usage
-----
    nok_lint.py [--root DIR] [--format-check] [--format-fatal] [paths...]
    nok_lint.py --selftest          # run against tools/lint/testdata/

Self-test fixtures declare expectations inline:

    int bad = atoi(s);  // EXPECT-LINT: NOK002

--selftest asserts that every EXPECT-LINT annotation fires on exactly that
line and that no unannotated line produces a finding.
"""

import argparse
import os
import re
import sys

# --- Layering -------------------------------------------------------------

# layer -> layers it may include from (itself is always allowed).
ALLOWED_DEPS = {
    "common": set(),
    "storage": {"common"},
    "btree": {"common", "storage"},
    "xml": {"common"},
    "encoding": {"common", "storage", "btree", "xml"},
    "nok": {"common", "storage", "btree", "xml", "encoding"},
    "streaming": {"common", "storage", "btree", "xml", "encoding", "nok"},
    "baseline": {"common", "storage", "btree", "xml", "encoding", "nok"},
    "datagen": {"common", "xml"},
}

SOURCE_DIRS = ("src", "tools", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

BANNED_APIS = [
    (re.compile(r"\b(atoi|atol|atoll)\s*\("),
     "maps garbage to 0 silently; parse with strtol-family plus end/errno "
     "checks"),
    (re.compile(r"\bsprintf\s*\("),
     "unbounded; use snprintf or std::string formatting"),
    (re.compile(r"\b(rand|srand)\s*\("),
     "non-reproducible; use common/random.h"),
    (re.compile(r"\babort\s*\(\s*\)"),
     "raw abort() loses the failure message; return a Status or use "
     "NOK_CHECK"),
]
# Files allowed to call abort(): the NOK_CHECK machinery itself.
ABORT_ALLOWED = {os.path.join("src", "common", "logging.h"),
                 os.path.join("src", "common", "logging.cc")}

STATUS_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:nok::)?Status\s+([a-z_][A-Za-z0-9_]*)\s*=")

# NOK007: raw file-I/O syscalls outside src/storage/.
RAW_IO_RE = re.compile(
    r"(?:::\s*)?\b(fsync|fdatasync|sync_file_range|pwrite|pread)\s*\(")

# NOK005: thread/mutex discipline.  Only src/ is checked — tests and
# benches may drive threads however the scenario demands.
DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")
LOCK_CALL_RE = re.compile(
    r"\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*lock\s*\(\s*\)")
# Receiver names that denote a mutex: mu, mu_, shard_mu, mutex_, mtx...
# Anything else (weak_ptr `wp`, a file named `lockfile`) is left alone.
MUTEXISH_RE = re.compile(r"(?:^|_)(mu|mutex|mtx)_?$")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line          # 1-based
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Returns text with comment/string contents blanked (newlines kept),
    so line/column positions survive but tokens inside them do not match."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def rel(path, root):
    return os.path.relpath(path, root)


# --- NOK001: layering -----------------------------------------------------

def check_layering(path, root, code_text, findings):
    r = rel(path, root)
    parts = r.split(os.sep)
    if parts[0] != "src":
        return  # tools/tests/bench/examples may include anything
    layer = parts[1] if len(parts) > 2 else None  # src/nokxml.h: no layer
    for lineno, line in enumerate(code_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target not in ALLOWED_DEPS:
            continue  # not a layer-qualified include (e.g. system header)
        if layer is None:
            # src/nokxml.h is the public umbrella; it may include anything
            # except the baselines (they are not part of the public API).
            continue
        if target == layer:
            continue
        if target not in ALLOWED_DEPS[layer]:
            findings.append(Finding(
                "NOK001", r, lineno,
                f'layer "{layer}" must not include from "{target}" '
                f'(allowed: {", ".join(sorted(ALLOWED_DEPS[layer])) or "none"})'))


# --- NOK006: nok sub-layering ---------------------------------------------

# Basenames (sans extension) under src/nok/ allowed to include "btree/..."
# directly: the planner (cardinality probes) and the executor (index-hit
# materialization).  Everything else goes through them or the encoding
# facade (DocumentStore).
NOK_BTREE_ALLOWED = {"planner", "executor"}


def check_nok_sublayering(path, root, code_text, findings):
    r = rel(path, root)
    parts = r.split(os.sep)
    if len(parts) < 3 or parts[0] != "src" or parts[1] != "nok":
        return
    stem = os.path.splitext(parts[-1])[0]
    if stem in NOK_BTREE_ALLOWED:
        return
    for lineno, line in enumerate(code_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1).split("/")[0] == "btree":
            findings.append(Finding(
                "NOK006", r, lineno,
                f'{parts[-1]} must not include B+ tree internals '
                f'("{m.group(1)}"); only planner/executor may — use the '
                f"plan IR or the DocumentStore facade instead"))


# --- NOK002: banned APIs --------------------------------------------------

def check_banned_apis(path, root, code_text, findings):
    r = rel(path, root)
    for lineno, line in enumerate(code_text.splitlines(), 1):
        for pattern, why in BANNED_APIS:
            m = pattern.search(line)
            if not m:
                continue
            name = m.group(0).split("(")[0].strip()
            if name == "abort" and r in ABORT_ALLOWED:
                continue
            findings.append(Finding(
                "NOK002", r, lineno, f"banned API {name}(): {why}"))


# --- NOK003: include guards -----------------------------------------------

def expected_guard(path, root):
    r = rel(path, root)
    parts = r.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"NOKXML_{stem}_H_"


def check_include_guard(path, root, raw_text, findings):
    r = rel(path, root)
    if not r.endswith((".h", ".hpp")):
        return
    want = expected_guard(path, root)
    ifndef = re.search(r"^[ \t]*#[ \t]*ifndef[ \t]+(\S+)", raw_text, re.M)
    define = re.search(r"^[ \t]*#[ \t]*define[ \t]+(\S+)", raw_text, re.M)
    if not ifndef or not define:
        findings.append(Finding(
            "NOK003", r, 1, f"missing include guard (expected {want})"))
        return
    got = ifndef.group(1)
    lineno = raw_text[: ifndef.start()].count("\n") + 1
    if got != want:
        findings.append(Finding(
            "NOK003", r, lineno,
            f"include guard {got} should be {want}"))
    elif define.group(1) != want:
        lineno = raw_text[: define.start()].count("\n") + 1
        findings.append(Finding(
            "NOK003", r, lineno,
            f"#define {define.group(1)} does not match guard {want}"))


# --- NOK004: unchecked Status in tests ------------------------------------

def check_unchecked_status(path, root, code_text, findings):
    r = rel(path, root)
    if not r.startswith("tests" + os.sep):
        return
    lines = code_text.splitlines()
    for idx, line in enumerate(lines):
        m = STATUS_DECL_RE.match(line)
        if not m:
            continue
        # Initializing to OK (e.g. a struct member default) drops nothing.
        if "Status::OK()" in line[m.end():]:
            continue
        name = m.group(1)
        # Scan forward to the end of the enclosing block: depth goes below
        # zero when the block that contains the declaration closes.
        depth = 0
        used = False
        ident = re.compile(r"\b" + re.escape(name) + r"\b")
        for j in range(idx, len(lines)):
            scan = lines[j]
            if j == idx:
                scan = scan[m.end():]  # skip the declaration itself
            if ident.search(scan):
                used = True
                break
            depth += lines[j].count("{") - lines[j].count("}")
            if depth < 0:
                break
        if not used:
            findings.append(Finding(
                "NOK004", r, idx + 1,
                f'Status "{name}" is assigned but never checked; assert on '
                f"it or use NOK_IGNORE_STATUS with a justification"))


# --- NOK005: threading discipline in src/ ---------------------------------

def check_threading(path, root, code_text, findings):
    r = rel(path, root)
    if not r.startswith("src" + os.sep):
        return
    for lineno, line in enumerate(code_text.splitlines(), 1):
        if DETACH_RE.search(line):
            findings.append(Finding(
                "NOK005", r, lineno,
                "thread detach() orphans the thread past shutdown and "
                "sanitizer visibility; join it (std::jthread or an owner "
                "that joins in its destructor)"))
        for m in LOCK_CALL_RE.finditer(line):
            if MUTEXISH_RE.search(m.group(1)):
                findings.append(Finding(
                    "NOK005", r, lineno,
                    f"naked {m.group(1)}.lock() leaks the lock on early "
                    f"return or exception; use std::lock_guard, "
                    f"std::scoped_lock, or std::unique_lock"))


# --- NOK007: raw file-I/O syscalls outside src/storage/ -------------------

def check_raw_io(path, root, code_text, findings):
    r = rel(path, root)
    if r.startswith(os.path.join("src", "storage") + os.sep):
        return
    for lineno, line in enumerate(code_text.splitlines(), 1):
        for m in RAW_IO_RE.finditer(line):
            findings.append(Finding(
                "NOK007", r, lineno,
                f"raw {m.group(1)}() bypasses the storage File layer; "
                f"the WAL durability ordering and the fault-injection "
                f"harness only cover I/O issued through storage/file.h "
                f"(File::Sync / WriteAt / ReadAt)"))


# --- Format checks --------------------------------------------------------

def check_format(path, root, raw_text, findings):
    r = rel(path, root)
    for lineno, line in enumerate(raw_text.split("\n"), 1):
        if line.endswith("\r"):
            findings.append(Finding("FMT004", r, lineno,
                                    "CRLF line ending"))
            line = line[:-1]
        if len(line) > 80:
            findings.append(Finding(
                "FMT001", r, lineno,
                f"line is {len(line)} columns (limit 80)"))
        if line != line.rstrip():
            findings.append(Finding("FMT002", r, lineno,
                                    "trailing whitespace"))
        if "\t" in line:
            findings.append(Finding("FMT003", r, lineno,
                                    "tab character"))


# --- Driver ---------------------------------------------------------------

def collect_files(root, paths):
    if paths:
        for p in paths:
            yield os.path.abspath(p)
        return
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "testdata"]
            for f in sorted(filenames):
                if f.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, f)


def lint_file(path, root, with_format):
    findings = []
    # newline="" disables universal-newline translation so FMT004 can see
    # literal CRLF endings.
    with open(path, encoding="utf-8", errors="replace", newline="") as fh:
        raw = fh.read()
    code = strip_comments_and_strings(raw)
    # Layering inspects #include lines, whose paths live inside string
    # quotes — run it on the raw text.
    check_layering(path, root, raw, findings)
    check_nok_sublayering(path, root, raw, findings)
    check_banned_apis(path, root, code, findings)
    check_include_guard(path, root, raw, findings)
    check_unchecked_status(path, root, code, findings)
    check_threading(path, root, code, findings)
    check_raw_io(path, root, code, findings)
    if with_format:
        check_format(path, root, raw, findings)
    return findings


def run_lint(root, paths, with_format, format_fatal):
    errors, advisories = [], []
    for path in collect_files(root, paths):
        for f in lint_file(path, root, with_format):
            if f.rule.startswith("FMT") and not format_fatal:
                advisories.append(f)
            else:
                errors.append(f)
    for f in errors:
        print(str(f))
    for f in advisories:
        print(f"advisory: {f}")
    if errors:
        print(f"nok_lint: {len(errors)} error(s), "
              f"{len(advisories)} advisory finding(s)")
        return 1
    if advisories:
        print(f"nok_lint: clean ({len(advisories)} advisory "
              f"format finding(s))")
    else:
        print("nok_lint: clean")
    return 0


# --- Self-test ------------------------------------------------------------

EXPECT_RE = re.compile(r"EXPECT-LINT:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")


def run_selftest(root):
    # The fixture tree mirrors a miniature repo (testdata/src/...,
    # testdata/tests/...), so path-sensitive rules (layering, guard names,
    # tests-only checks) are exercised by linting with testdata as root.
    testdata = os.path.join(root, "tools", "lint", "testdata")
    if not os.path.isdir(testdata):
        print(f"selftest: no fixture directory at {testdata}",
              file=sys.stderr)
        return 1
    failures = []
    fixture_count = 0
    for dirpath, _, filenames in os.walk(testdata):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            fixture_count += 1
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as fh:
                raw_lines = fh.read().split("\n")
            expected = {}  # lineno -> set of rules
            for lineno, line in enumerate(raw_lines, 1):
                m = EXPECT_RE.search(line)
                if m:
                    rules = {r.strip() for r in m.group(1).split(",")}
                    expected[lineno] = rules
            got = {}
            for f in lint_file(path, testdata, with_format=True):
                got.setdefault(f.line, set()).add(f.rule)
            for lineno, rules in sorted(expected.items()):
                missing = rules - got.get(lineno, set())
                for rule in sorted(missing):
                    failures.append(
                        f"{path}:{lineno}: expected {rule} did not fire")
            for lineno, rules in sorted(got.items()):
                surplus = rules - expected.get(lineno, set())
                for rule in sorted(surplus):
                    failures.append(
                        f"{path}:{lineno}: unexpected {rule} finding")
    for msg in failures:
        print(msg)
    if failures:
        print(f"nok_lint --selftest: {len(failures)} failure(s) across "
              f"{fixture_count} fixture file(s)")
        return 1
    print(f"nok_lint --selftest: ok ({fixture_count} fixture file(s))")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above this "
                         "script)")
    ap.add_argument("--format-check", action="store_true",
                    help="also run the FMT* checks (advisory unless "
                         "--format-fatal)")
    ap.add_argument("--format-fatal", action="store_true",
                    help="make FMT* findings errors (implies "
                         "--format-check)")
    ap.add_argument("--selftest", action="store_true",
                    help="validate the rules against tools/lint/testdata/")
    ap.add_argument("paths", nargs="*",
                    help="specific files to lint (default: whole tree)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if args.selftest:
        sys.exit(run_selftest(root))
    sys.exit(run_lint(root, args.paths,
                      args.format_check or args.format_fatal,
                      args.format_fatal))


if __name__ == "__main__":
    main()
