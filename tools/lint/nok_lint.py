#!/usr/bin/env python3
"""nok_lint: repo-specific static checks the C++ toolchain cannot express.

Dependency-free (Python 3 stdlib only).  Registered as a ctest test, and run
by ci/run_checks.sh; a non-empty finding list is a build failure.

Rules
-----
NOK001  include-layering: source under src/<layer>/ may only include
        headers from layers at or below it in the DAG
            common <- storage <- btree
            common <- xml
            {storage, btree, xml} <- encoding <- nok <- {streaming, baseline}
            common <- datagen
        and baseline/ headers are never included from nok/ or encoding/
        (the baselines compare against NoK; NoK must not depend on them).
NOK002  banned APIs: atoi/atol/atoll (silent 0 on garbage), sprintf
        (unbounded), rand/srand (not reproducible, poor distribution —
        use common/random.h), and raw abort() outside src/common/logging
        (error handling goes through Status or NOK_CHECK).
NOK003  include guards: every header uses
        #ifndef NOKXML_<PATH>_H_ / #define NOKXML_<PATH>_H_ where <PATH>
        is the path relative to src/ (or the repo root for tests/, bench/,
        tools/), uppercased, with separators mapped to '_'.
NOK004  unchecked Status: in tests, a local `Status name = ...;` (or
        nok::Status, or `auto name = Call();` with a status-ish name —
        s, st, status, possibly prefixed/suffixed) whose name is never
        mentioned again before the end of the enclosing block silently
        drops an error the test meant to observe.
NOK005  threading discipline (src/ only): `.detach()` orphans a thread
        no sanitizer or shutdown path can see — join it instead.  (The
        former naked-`.lock()` half of this rule is retired: NOK009 now
        bans the raw std::mutex family outright, which subsumes it.)
NOK006  nok sub-layering: inside src/nok/, only the planner/executor
        pair (the storage-facing halves of the query engine) may include
        "btree/..." headers directly.  query_engine and the matchers
        consume plans and candidate sets; reaching into B+ tree
        internals from them bypasses the planner's cost model and the
        encoding facade.  (The reverse edges — encoding or btree
        including nok/planner.h / nok/executor.h — are already NOK001
        violations.)
NOK007  raw file-I/O syscalls: fsync/fdatasync/sync_file_range/pwrite/
        pread anywhere outside src/storage/ bypass the File abstraction.
        The WAL's crash-safety argument rests on one ordering (log
        fsync before base writes) that only holds for I/O the storage
        layer issues — and the fault-injection harness can only crash
        what it can see.  Use File::Sync/WriteAt/ReadAt from
        storage/file.h.
NOK008  guarded members: in a class that owns a nok::Mutex member,
        every non-atomic, non-const data member must carry GUARDED_BY /
        PT_GUARDED_BY (common/thread_annotations.h), so the Clang
        Thread Safety Analysis contracts cannot rot as members are
        added.  Members that are genuinely lock-free (immutable after
        construction, internally synchronized, ...) are exempted with a
        `// NOK008-OK: <reason>` comment on their line.  The locking
        model itself is documented in DESIGN.md section 12.
NOK010  test-code leakage: files under src/, bench/, or tools/ must not
        include "tests/..." headers.  The fuzz harness and the oracle are
        test infrastructure; shipping code that depends on them inverts
        the layering and drags gtest-adjacent code into the library.
NOK009  raw std synchronization (src/ only, src/common/ exempt):
        std::mutex / std::lock_guard / std::unique_lock /
        std::condition_variable and friends (and their headers) are
        invisible to the Clang Thread Safety Analysis.  Use nok::Mutex /
        nok::MutexLock / nok::CondVar from common/mutex.h — the
        annotated wrappers are the only locking entry point (DESIGN.md
        section 12).  src/common/ is exempt because the wrappers
        themselves live there.
NOK011  path-synopsis layering: inside src/nok/, only the planner may
        include "encoding/path_synopsis.h".  The synopsis is a
        planning-time cardinality structure; the executor and the
        matchers consume the plan's estimates (PlanTree cardinality
        fields, EmptyResult plans), and probing the trie from them would
        fork the cost model.  Outside src/nok/ its only users are the
        encoding layer's own document_store.cc and store_verifier.cc,
        which NOK001 already governs.

Format checks (advisory by default; --format-fatal makes them errors)
---------------------------------------------------------------------
FMT001  line longer than 80 columns
FMT002  trailing whitespace
FMT003  tab character in source
FMT004  CRLF line ending

Usage
-----
    nok_lint.py [--root DIR] [--format-check] [--format-fatal] [paths...]
    nok_lint.py --selftest          # run against tools/lint/testdata/

Self-test fixtures declare expectations inline:

    int bad = atoi(s);  // EXPECT-LINT: NOK002

--selftest asserts that every EXPECT-LINT annotation fires on exactly that
line and that no unannotated line produces a finding.
"""

import argparse
import os
import re
import sys

# --- Layering -------------------------------------------------------------

# layer -> layers it may include from (itself is always allowed).
ALLOWED_DEPS = {
    "common": set(),
    "storage": {"common"},
    "btree": {"common", "storage"},
    "xml": {"common"},
    "encoding": {"common", "storage", "btree", "xml"},
    "nok": {"common", "storage", "btree", "xml", "encoding"},
    "streaming": {"common", "storage", "btree", "xml", "encoding", "nok"},
    "baseline": {"common", "storage", "btree", "xml", "encoding", "nok"},
    "datagen": {"common", "xml"},
}

SOURCE_DIRS = ("src", "tools", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

BANNED_APIS = [
    (re.compile(r"\b(atoi|atol|atoll)\s*\("),
     "maps garbage to 0 silently; parse with strtol-family plus end/errno "
     "checks"),
    (re.compile(r"\bsprintf\s*\("),
     "unbounded; use snprintf or std::string formatting"),
    (re.compile(r"\b(rand|srand)\s*\("),
     "non-reproducible; use common/random.h"),
    (re.compile(r"\babort\s*\(\s*\)"),
     "raw abort() loses the failure message; return a Status or use "
     "NOK_CHECK"),
]
# Files allowed to call abort(): the NOK_CHECK machinery itself.
ABORT_ALLOWED = {os.path.join("src", "common", "logging.h"),
                 os.path.join("src", "common", "logging.cc")}

STATUS_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:nok::)?Status\s+([a-z_][A-Za-z0-9_]*)\s*=")

# NOK004's auto form: `auto st = SomeCall();`.  `auto&`/`auto*` bindings
# alias an object someone else owns (and checks); structured bindings do
# not match the identifier shape.  Only names that denote a status (s,
# st, status — optionally prefixed like open_st or numbered like st2)
# are considered, so `auto stats = ...` stays out of scope.
AUTO_STATUS_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?auto\s+([a-z_][A-Za-z0-9_]*)\s*=")
STATUSISH_NAME_RE = re.compile(r"(?:^|_)(s|st|status)\d*$")

# NOK007: raw file-I/O syscalls outside src/storage/.
RAW_IO_RE = re.compile(
    r"(?:::\s*)?\b(fsync|fdatasync|sync_file_range|pwrite|pread)\s*\(")

# NOK005: thread discipline.  Only src/ is checked — tests and benches
# may drive threads however the scenario demands.
DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")

# NOK009: the raw std synchronization vocabulary (types and headers).
STD_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable|condition_variable_any)\b")
SYNC_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s+<(mutex|shared_mutex|condition_variable)>")

# NOK008: ownership of an annotated mutex.  Matches a by-value
# nok::Mutex member declaration ("Mutex mu_;", "mutable Mutex mu;") but
# not pointers/references to one and not std::mutex (case-sensitive).
MUTEX_MEMBER_RE = re.compile(r"\b(?:nok\s*::\s*)?Mutex\s+[A-Za-z_]")
GUARD_ANNOTATION_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(")
# Statements that are not plain data members.
NON_MEMBER_KEYWORD_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static\b|constexpr\b|"
    r"template\b|class\b|struct\b|enum\b|public\s*:|private\s*:|"
    r"protected\s*:|explicit\b|virtual\b|operator\b|~)")
ACCESS_LABEL_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line          # 1-based
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Returns text with comment/string contents blanked (newlines kept),
    so line/column positions survive but tokens inside them do not match."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def rel(path, root):
    return os.path.relpath(path, root)


# --- NOK001: layering -----------------------------------------------------

def check_layering(path, root, code_text, findings):
    r = rel(path, root)
    parts = r.split(os.sep)
    if parts[0] != "src":
        return  # tools/tests/bench/examples may include anything
    layer = parts[1] if len(parts) > 2 else None  # src/nokxml.h: no layer
    for lineno, line in enumerate(code_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target not in ALLOWED_DEPS:
            continue  # not a layer-qualified include (e.g. system header)
        if layer is None:
            # src/nokxml.h is the public umbrella; it may include anything
            # except the baselines (they are not part of the public API).
            continue
        if target == layer:
            continue
        if target not in ALLOWED_DEPS[layer]:
            findings.append(Finding(
                "NOK001", r, lineno,
                f'layer "{layer}" must not include from "{target}" '
                f'(allowed: {", ".join(sorted(ALLOWED_DEPS[layer])) or "none"})'))


# --- NOK006: nok sub-layering ---------------------------------------------

# Basenames (sans extension) under src/nok/ allowed to include "btree/..."
# directly: the planner (cardinality probes) and the executor (index-hit
# materialization).  Everything else goes through them or the encoding
# facade (DocumentStore).
NOK_BTREE_ALLOWED = {"planner", "executor"}


def check_nok_sublayering(path, root, code_text, findings):
    r = rel(path, root)
    parts = r.split(os.sep)
    if len(parts) < 3 or parts[0] != "src" or parts[1] != "nok":
        return
    stem = os.path.splitext(parts[-1])[0]
    if stem in NOK_BTREE_ALLOWED:
        return
    for lineno, line in enumerate(code_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1).split("/")[0] == "btree":
            findings.append(Finding(
                "NOK006", r, lineno,
                f'{parts[-1]} must not include B+ tree internals '
                f'("{m.group(1)}"); only planner/executor may — use the '
                f"plan IR or the DocumentStore facade instead"))


# --- NOK011: path-synopsis layering ---------------------------------------

# Basenames (sans extension) under src/nok/ allowed to include the path
# synopsis trie directly: the planner alone (cardinality estimation and
# schema-impossible pruning).  Everything downstream of it sees only the
# plan's estimates.
NOK_SYNOPSIS_ALLOWED = {"planner"}
SYNOPSIS_HEADER = "encoding/path_synopsis.h"


def check_synopsis_layering(path, root, raw_text, findings):
    r = rel(path, root)
    parts = r.split(os.sep)
    if len(parts) < 3 or parts[0] != "src" or parts[1] != "nok":
        return
    stem = os.path.splitext(parts[-1])[0]
    if stem in NOK_SYNOPSIS_ALLOWED:
        return
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1) == SYNOPSIS_HEADER:
            findings.append(Finding(
                "NOK011", r, lineno,
                f'{parts[-1]} must not include the path synopsis '
                f'("{SYNOPSIS_HEADER}"); within src/nok/ only the planner '
                f"probes the trie (elsewhere encoding's document_store.cc "
                f"and store_verifier.cc are its only users) — consume the "
                f"plan's cardinality fields instead"))


# --- NOK002: banned APIs --------------------------------------------------

def check_banned_apis(path, root, code_text, findings):
    r = rel(path, root)
    for lineno, line in enumerate(code_text.splitlines(), 1):
        for pattern, why in BANNED_APIS:
            m = pattern.search(line)
            if not m:
                continue
            name = m.group(0).split("(")[0].strip()
            if name == "abort" and r in ABORT_ALLOWED:
                continue
            findings.append(Finding(
                "NOK002", r, lineno, f"banned API {name}(): {why}"))


# --- NOK003: include guards -----------------------------------------------

def expected_guard(path, root):
    r = rel(path, root)
    parts = r.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"NOKXML_{stem}_H_"


def check_include_guard(path, root, raw_text, findings):
    r = rel(path, root)
    if not r.endswith((".h", ".hpp")):
        return
    want = expected_guard(path, root)
    ifndef = re.search(r"^[ \t]*#[ \t]*ifndef[ \t]+(\S+)", raw_text, re.M)
    define = re.search(r"^[ \t]*#[ \t]*define[ \t]+(\S+)", raw_text, re.M)
    if not ifndef or not define:
        findings.append(Finding(
            "NOK003", r, 1, f"missing include guard (expected {want})"))
        return
    got = ifndef.group(1)
    lineno = raw_text[: ifndef.start()].count("\n") + 1
    if got != want:
        findings.append(Finding(
            "NOK003", r, lineno,
            f"include guard {got} should be {want}"))
    elif define.group(1) != want:
        lineno = raw_text[: define.start()].count("\n") + 1
        findings.append(Finding(
            "NOK003", r, lineno,
            f"#define {define.group(1)} does not match guard {want}"))


# --- NOK004: unchecked Status in tests ------------------------------------

def check_unchecked_status(path, root, code_text, findings):
    r = rel(path, root)
    if not r.startswith("tests" + os.sep):
        return
    lines = code_text.splitlines()
    for idx, line in enumerate(lines):
        m = STATUS_DECL_RE.match(line)
        if m is None:
            # The auto form only fires for status-ish names bound to a
            # call result — `auto st = SomeStatusCall();`.  Other auto
            # locals (iterators, sizes, stats snapshots) stay out.
            m = AUTO_STATUS_DECL_RE.match(line)
            if not m or not STATUSISH_NAME_RE.search(m.group(1)):
                continue
            if "(" not in line[m.end():]:
                continue  # not a call result (e.g. `auto st = other;`)
        # Initializing to OK (e.g. a struct member default) drops nothing.
        if "Status::OK()" in line[m.end():]:
            continue
        name = m.group(1)
        # Scan forward to the end of the enclosing block: depth goes below
        # zero when the block that contains the declaration closes.
        depth = 0
        used = False
        ident = re.compile(r"\b" + re.escape(name) + r"\b")
        for j in range(idx, len(lines)):
            scan = lines[j]
            if j == idx:
                scan = scan[m.end():]  # skip the declaration itself
            if ident.search(scan):
                used = True
                break
            depth += lines[j].count("{") - lines[j].count("}")
            if depth < 0:
                break
        if not used:
            findings.append(Finding(
                "NOK004", r, idx + 1,
                f'Status "{name}" is assigned but never checked; assert on '
                f"it or use NOK_IGNORE_STATUS with a justification"))


# --- NOK005: threading discipline in src/ ---------------------------------

def check_threading(path, root, code_text, findings):
    r = rel(path, root)
    if not r.startswith("src" + os.sep):
        return
    for lineno, line in enumerate(code_text.splitlines(), 1):
        if DETACH_RE.search(line):
            findings.append(Finding(
                "NOK005", r, lineno,
                "thread detach() orphans the thread past shutdown and "
                "sanitizer visibility; join it (std::jthread or an owner "
                "that joins in its destructor)"))


# --- NOK008: GUARDED_BY coverage in Mutex-owning classes ------------------

def split_class_bodies(code_text):
    """Yields (body_start_line, body_text) for every class/struct body in
    code_text (nested ones included, each reported separately)."""
    seen = set()  # `template <class T> struct S` reaches S's body twice
    for m in re.finditer(r"\b(class|struct)\b", code_text):
        # Walk from the keyword to the body-opening '{' — or a ';' or
        # ')' first, meaning a forward declaration, an `enum class`
        # value, or a parameter like `(struct stat*)`.
        i = m.end()
        n = len(code_text)
        while i < n and code_text[i] not in "{;)":
            i += 1
        if i >= n or code_text[i] != "{":
            continue
        depth = 0
        start = i
        while i < n:
            if code_text[i] == "{":
                depth += 1
            elif code_text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if depth != 0:
            continue  # unbalanced (macro soup); skip rather than guess
        if start in seen:
            continue
        seen.add(start)
        body_line = code_text.count("\n", 0, start) + 1
        yield body_line, code_text[start + 1:i]


def split_member_statements(body_text, body_start_line):
    """Splits a class body into top-level statements, skipping nested
    {...} blocks (function bodies, nested classes, brace initializers).
    Yields (line_of_statement_start, statement_text)."""
    statements = []
    depth = 0
    stmt = []
    line = body_start_line
    stmt_line = None
    for c in body_text:
        if c == "\n":
            line += 1
        if depth == 0:
            if c == "{":
                depth = 1
                continue
            if c == ";":
                if stmt_line is not None:
                    statements.append((stmt_line, "".join(stmt)))
                stmt = []
                stmt_line = None
                continue
            if stmt_line is None and not c.isspace():
                stmt_line = line
            stmt.append(c)
        else:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
    return statements


def check_guarded_members(path, root, code_text, raw_text, findings):
    r = rel(path, root)
    if not r.startswith("src" + os.sep):
        return
    raw_lines = raw_text.splitlines()
    for body_line, body in split_class_bodies(code_text):
        statements = split_member_statements(body, body_line)
        owns_mutex = any(
            MUTEX_MEMBER_RE.search(ACCESS_LABEL_RE.sub("", text))
            for _, text in statements)
        if not owns_mutex:
            continue
        for lineno, text in statements:
            text = ACCESS_LABEL_RE.sub("", text)
            if NON_MEMBER_KEYWORD_RE.match(text):
                continue
            if GUARD_ANNOTATION_RE.search(text):
                continue  # annotated — compliant
            stripped = GUARD_ANNOTATION_RE.sub("", text)
            if "(" in stripped:
                continue  # function declaration / member with call init
            stripped = re.sub(r"=.*$", "", stripped, flags=re.S)
            if not re.search(r"[A-Za-z_][A-Za-z0-9_]*\s*$", stripped):
                continue  # does not end in a declarator name
            if not re.match(r"\s*\S+\s+\S", stripped):
                continue  # no type + name shape (e.g. stray token)
            if re.search(r"\b(?:Mutex|CondVar)\b"
                         r"|std\s*::\s*(?:\w*mutex|condition_variable)",
                         stripped):
                continue  # locks themselves need no guard
            if "std::atomic" in stripped or "atomic<" in stripped:
                continue  # atomics synchronize themselves
            if re.match(r"\s*(?:mutable\s+)?const\b", stripped):
                continue  # const members are immutable
            # Audited exemption: `// NOK008-OK: <reason>` on the
            # declaration lines or in the comment block directly above
            # (comments are stripped from code_text, so look at the raw
            # source).
            decl_lines = list(range(lineno, lineno + text.count("\n") + 1))
            k = lineno - 1
            while k >= 1 and raw_lines[k - 1].lstrip().startswith("//"):
                decl_lines.append(k)
                k -= 1
            if any("NOK008-OK:" in raw_lines[k - 1] for k in decl_lines
                   if k - 1 < len(raw_lines)):
                continue
            name = re.search(r"([A-Za-z_][A-Za-z0-9_]*)\s*$", stripped)
            member = name.group(1) if name else "member"
            findings.append(Finding(
                "NOK008", r, lineno,
                f'member "{member}" of a Mutex-owning class has no '
                f"GUARDED_BY annotation; guard it, make it atomic/const, "
                f"or exempt it with // NOK008-OK: <reason> "
                f"(locking model: DESIGN.md section 12)"))


# --- NOK009: raw std synchronization outside src/common/ ------------------

def check_raw_sync(path, root, code_text, findings):
    r = rel(path, root)
    if not r.startswith("src" + os.sep):
        return
    if r.startswith(os.path.join("src", "common") + os.sep):
        return  # the annotated wrappers themselves live here
    for lineno, line in enumerate(code_text.splitlines(), 1):
        m = STD_SYNC_RE.search(line)
        if m is None:
            inc = SYNC_INCLUDE_RE.match(line)
            if inc is None:
                continue
            findings.append(Finding(
                "NOK009", r, lineno,
                f"#include <{inc.group(1)}> outside src/common/: use "
                f'"common/mutex.h" (nok::Mutex/MutexLock/CondVar) so '
                f"Clang Thread Safety Analysis sees the lock "
                f"(DESIGN.md section 12)"))
            continue
        findings.append(Finding(
            "NOK009", r, lineno,
            f"std::{m.group(1)} is invisible to Clang Thread Safety "
            f"Analysis; use nok::Mutex/MutexLock/CondVar from "
            f"common/mutex.h (DESIGN.md section 12)"))


# --- NOK010: test-code leakage into shipping code -------------------------

def check_test_includes(path, root, raw_text, findings):
    r = rel(path, root)
    top = r.split(os.sep)[0]
    if top not in ("src", "bench", "tools"):
        return
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1).split("/")[0] == "tests":
            findings.append(Finding(
                "NOK010", r, lineno,
                f'shipping code under {top}/ must not include test '
                f'infrastructure ("{m.group(1)}"); move the shared piece '
                f"into src/ or keep the dependency inside tests/"))


# --- NOK007: raw file-I/O syscalls outside src/storage/ -------------------

def check_raw_io(path, root, code_text, findings):
    r = rel(path, root)
    if r.startswith(os.path.join("src", "storage") + os.sep):
        return
    for lineno, line in enumerate(code_text.splitlines(), 1):
        for m in RAW_IO_RE.finditer(line):
            findings.append(Finding(
                "NOK007", r, lineno,
                f"raw {m.group(1)}() bypasses the storage File layer; "
                f"the WAL durability ordering and the fault-injection "
                f"harness only cover I/O issued through storage/file.h "
                f"(File::Sync / WriteAt / ReadAt)"))


# --- Format checks --------------------------------------------------------

def check_format(path, root, raw_text, findings):
    r = rel(path, root)
    for lineno, line in enumerate(raw_text.split("\n"), 1):
        if line.endswith("\r"):
            findings.append(Finding("FMT004", r, lineno,
                                    "CRLF line ending"))
            line = line[:-1]
        if len(line) > 80:
            findings.append(Finding(
                "FMT001", r, lineno,
                f"line is {len(line)} columns (limit 80)"))
        if line != line.rstrip():
            findings.append(Finding("FMT002", r, lineno,
                                    "trailing whitespace"))
        if "\t" in line:
            findings.append(Finding("FMT003", r, lineno,
                                    "tab character"))


# --- Driver ---------------------------------------------------------------

def collect_files(root, paths):
    if paths:
        for p in paths:
            yield os.path.abspath(p)
        return
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "testdata"]
            for f in sorted(filenames):
                if f.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, f)


def lint_file(path, root, with_format):
    findings = []
    # newline="" disables universal-newline translation so FMT004 can see
    # literal CRLF endings.
    with open(path, encoding="utf-8", errors="replace", newline="") as fh:
        raw = fh.read()
    code = strip_comments_and_strings(raw)
    # Layering inspects #include lines, whose paths live inside string
    # quotes — run it on the raw text.
    check_layering(path, root, raw, findings)
    check_nok_sublayering(path, root, raw, findings)
    check_synopsis_layering(path, root, raw, findings)
    check_test_includes(path, root, raw, findings)
    check_banned_apis(path, root, code, findings)
    check_include_guard(path, root, raw, findings)
    check_unchecked_status(path, root, code, findings)
    check_threading(path, root, code, findings)
    check_guarded_members(path, root, code, raw, findings)
    check_raw_sync(path, root, code, findings)
    check_raw_io(path, root, code, findings)
    if with_format:
        check_format(path, root, raw, findings)
    return findings


def run_lint(root, paths, with_format, format_fatal):
    errors, advisories = [], []
    for path in collect_files(root, paths):
        for f in lint_file(path, root, with_format):
            if f.rule.startswith("FMT") and not format_fatal:
                advisories.append(f)
            else:
                errors.append(f)
    for f in errors:
        print(str(f))
    for f in advisories:
        print(f"advisory: {f}")
    if errors:
        print(f"nok_lint: {len(errors)} error(s), "
              f"{len(advisories)} advisory finding(s)")
        return 1
    if advisories:
        print(f"nok_lint: clean ({len(advisories)} advisory "
              f"format finding(s))")
    else:
        print("nok_lint: clean")
    return 0


# --- Self-test ------------------------------------------------------------

EXPECT_RE = re.compile(r"EXPECT-LINT:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")


def run_selftest(root):
    # The fixture tree mirrors a miniature repo (testdata/src/...,
    # testdata/tests/...), so path-sensitive rules (layering, guard names,
    # tests-only checks) are exercised by linting with testdata as root.
    testdata = os.path.join(root, "tools", "lint", "testdata")
    if not os.path.isdir(testdata):
        print(f"selftest: no fixture directory at {testdata}",
              file=sys.stderr)
        return 1
    failures = []
    fixture_count = 0
    for dirpath, _, filenames in os.walk(testdata):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            fixture_count += 1
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as fh:
                raw_lines = fh.read().split("\n")
            expected = {}  # lineno -> set of rules
            for lineno, line in enumerate(raw_lines, 1):
                m = EXPECT_RE.search(line)
                if m:
                    rules = {r.strip() for r in m.group(1).split(",")}
                    expected[lineno] = rules
            got = {}
            for f in lint_file(path, testdata, with_format=True):
                got.setdefault(f.line, set()).add(f.rule)
            for lineno, rules in sorted(expected.items()):
                missing = rules - got.get(lineno, set())
                for rule in sorted(missing):
                    failures.append(
                        f"{path}:{lineno}: expected {rule} did not fire")
            for lineno, rules in sorted(got.items()):
                surplus = rules - expected.get(lineno, set())
                for rule in sorted(surplus):
                    failures.append(
                        f"{path}:{lineno}: unexpected {rule} finding")
    for msg in failures:
        print(msg)
    if failures:
        print(f"nok_lint --selftest: {len(failures)} failure(s) across "
              f"{fixture_count} fixture file(s)")
        return 1
    print(f"nok_lint --selftest: ok ({fixture_count} fixture file(s))")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above this "
                         "script)")
    ap.add_argument("--format-check", action="store_true",
                    help="also run the FMT* checks (advisory unless "
                         "--format-fatal)")
    ap.add_argument("--format-fatal", action="store_true",
                    help="make FMT* findings errors (implies "
                         "--format-check)")
    ap.add_argument("--selftest", action="store_true",
                    help="validate the rules against tools/lint/testdata/")
    ap.add_argument("paths", nargs="*",
                    help="specific files to lint (default: whole tree)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if args.selftest:
        sys.exit(run_selftest(root))
    sys.exit(run_lint(root, args.paths,
                      args.format_check or args.format_fatal,
                      args.format_fatal))


if __name__ == "__main__":
    main()
