// nokq: command-line front end for the nokxml library.
//
//   nokq build  <file.xml> <store-dir> [--checksum]   build a store
//   nokq query  <store-dir> <xpath> [--values] [--strategy auto|scan|tag|
//               value|path] [--explain]
//   nokq stream <file.xml> <xpath>              single-pass evaluation
//   nokq stats  <store-dir>                     Table-1 style statistics
//   nokq insert <store-dir> <parent-dewey> <index> <fragment.xml>
//   nokq delete <store-dir> <dewey>
//   nokq refresh <store-dir>                    rebuild cached positions
//   nokq verify <store-dir>                     offline integrity scrub

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/timer.h"
#include "encoding/store_verifier.h"
#include "nokxml.h"
#include "storage/file.h"

namespace {

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  nokq build  <file.xml> <store-dir> [--checksum]\n"
          "  nokq query  <store-dir> <xpath> [--values] [--explain]\n"
          "              [--strategy auto|scan|tag|value|path]\n"
          "  nokq stream <file.xml> <xpath>\n"
          "  nokq stats  <store-dir>\n"
          "  nokq insert <store-dir> <parent-dewey> <index> <frag.xml>\n"
          "  nokq delete <store-dir> <dewey>\n"
          "  nokq refresh <store-dir>\n"
          "  nokq verify <store-dir>\n");
  return 2;
}

int Fail(const nok::Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Final durability step of the mutating commands.  A failed flush is data
/// loss — it must produce a diagnostic, not a bare exit code.
int FinishFlush(nok::DocumentStore* store) {
  nok::Status s = store->Flush();
  if (!s.ok()) return Fail(s);
  return 0;
}

/// Parses a non-negative decimal integer, rejecting trailing garbage (the
/// failure mode atoi silently maps to 0).
nok::Result<uint32_t> ParseIndex(const std::string& text) {
  if (text.empty()) {
    return nok::Status::InvalidArgument("empty child index");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long v = strtoul(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || v > UINT32_MAX) {
    return nok::Status::InvalidArgument("bad child index: " + text);
  }
  return static_cast<uint32_t>(v);
}

nok::Result<nok::DeweyId> ParseDewey(const std::string& text) {
  std::vector<uint32_t> components;
  size_t start = 0;
  while (start <= text.size()) {
    size_t dot = text.find('.', start);
    if (dot == std::string::npos) dot = text.size();
    if (dot == start) {
      return nok::Status::InvalidArgument("bad Dewey ID: " + text);
    }
    components.push_back(
        static_cast<uint32_t>(strtoul(text.substr(start, dot - start)
                                          .c_str(),
                                      nullptr, 10)));
    start = dot + 1;
  }
  if (components.empty() || components[0] != 0) {
    return nok::Status::InvalidArgument("a Dewey ID starts with 0");
  }
  return nok::DeweyId(std::move(components));
}

nok::Result<std::unique_ptr<nok::DocumentStore>> OpenStore(
    const std::string& dir) {
  nok::DocumentStore::Options options;
  options.dir = dir;
  return nok::DocumentStore::OpenDir(options);
}

const char* StrategyName(nok::StartStrategy s) {
  switch (s) {
    case nok::StartStrategy::kScan: return "scan";
    case nok::StartStrategy::kTagIndex: return "tag-index";
    case nok::StartStrategy::kValueIndex: return "value-index";
    case nok::StartStrategy::kPathIndex: return "path-index";
    case nok::StartStrategy::kAuto: return "auto";
  }
  return "?";
}

int CmdBuild(const std::string& xml_path, const std::string& dir,
             bool checksum) {
  std::string xml;
  nok::Status s = nok::ReadFileToString(xml_path, &xml);
  if (!s.ok()) return Fail(s);
  nok::DocumentStore::Options options;
  options.dir = dir;
  options.checksum_pages = checksum;
  nok::Timer timer;
  auto store = nok::DocumentStore::Build(xml, options);
  if (!store.ok()) return Fail(store.status());
  printf("built %s: %llu nodes in %.2fs (tree %llu bytes)\n", dir.c_str(),
         static_cast<unsigned long long>((*store)->stats().node_count),
         timer.ElapsedSeconds(),
         static_cast<unsigned long long>((*store)->stats().tree_bytes));
  return FinishFlush(store->get());
}

int CmdQuery(int argc, char** argv) {
  const std::string dir = argv[2];
  const std::string xpath = argv[3];
  bool values = false, explain = false;
  nok::QueryOptions options;
  for (int i = 4; i < argc; ++i) {
    if (strcmp(argv[i], "--values") == 0) {
      values = true;
    } else if (strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "auto") options.strategy = nok::StartStrategy::kAuto;
      else if (name == "scan") options.strategy = nok::StartStrategy::kScan;
      else if (name == "tag")
        options.strategy = nok::StartStrategy::kTagIndex;
      else if (name == "value")
        options.strategy = nok::StartStrategy::kValueIndex;
      else if (name == "path")
        options.strategy = nok::StartStrategy::kPathIndex;
      else
        return Usage();
    } else {
      return Usage();
    }
  }

  auto store = OpenStore(dir);
  if (!store.ok()) return Fail(store.status());
  nok::QueryEngine engine(store->get());
  nok::Timer timer;
  auto result = engine.Evaluate(xpath, options);
  if (!result.ok()) return Fail(result.status());
  const double seconds = timer.ElapsedSeconds();

  for (const nok::DeweyId& id : *result) {
    if (values) {
      auto value = (*store)->ValueOf(id);
      printf("%s\t%s\n", id.ToString().c_str(),
             value.ok() && value->has_value() ? (*value)->c_str() : "");
    } else {
      printf("%s\n", id.ToString().c_str());
    }
  }
  if (explain) {
    auto pattern = nok::ParseXPath(xpath);
    if (pattern.ok()) {
      fprintf(stderr, "pattern tree:\n%s", pattern->ToString().c_str());
      fprintf(stderr, "partition:\n%s",
              nok::PartitionPattern(*pattern).ToString().c_str());
    }
    fprintf(stderr, "%zu results in %.4fs\n", result->size(), seconds);
    for (size_t t = 0; t < engine.last_stats().trees.size(); ++t) {
      const auto& ts = engine.last_stats().trees[t];
      fprintf(stderr, "  tree %zu: %s, %zu candidates, %zu bindings\n", t,
              StrategyName(ts.strategy), ts.candidates, ts.bindings);
    }
  }
  return 0;
}

int CmdStream(const std::string& xml_path, const std::string& xpath) {
  std::string xml;
  nok::Status s = nok::ReadFileToString(xml_path, &xml);
  if (!s.ok()) return Fail(s);
  nok::StreamRunStats stats;
  auto result = nok::EvaluateStreaming(xpath, xml, &stats);
  if (!result.ok()) return Fail(result.status());
  for (const nok::DeweyId& id : *result) {
    printf("%s\n", id.ToString().c_str());
  }
  fprintf(stderr, "%zu results; %llu events, peak buffer %zu nodes\n",
          result->size(), static_cast<unsigned long long>(stats.events),
          stats.peak_buffered_nodes);
  return 0;
}

int CmdStats(const std::string& dir) {
  auto store = OpenStore(dir);
  if (!store.ok()) return Fail(store.status());
  const nok::DocumentStoreStats& s = (*store)->stats();
  printf("nodes:        %llu\n", static_cast<unsigned long long>(s.node_count));
  printf("max depth:    %d\n", s.max_depth);
  printf("tags:         %llu\n",
         static_cast<unsigned long long>(s.distinct_tags));
  printf("|tree|:       %llu bytes\n",
         static_cast<unsigned long long>(s.tree_bytes));
  printf("|B+t|:        %llu bytes\n",
         static_cast<unsigned long long>(s.tag_index_bytes));
  printf("|B+v|:        %llu bytes\n",
         static_cast<unsigned long long>(s.value_index_bytes));
  printf("|B+i|:        %llu bytes\n",
         static_cast<unsigned long long>(s.id_index_bytes));
  printf("|B+p|:        %llu bytes\n",
         static_cast<unsigned long long>(s.path_index_bytes));
  printf("data file:    %llu bytes\n",
         static_cast<unsigned long long>(s.data_bytes));
  printf("positions:    %s\n",
         (*store)->positions_fresh() ? "fresh" : "stale (run refresh)");
  return 0;
}

int CmdInsert(const std::string& dir, const std::string& dewey_text,
              const std::string& index_text,
              const std::string& fragment_path) {
  auto store = OpenStore(dir);
  if (!store.ok()) return Fail(store.status());
  auto dewey = ParseDewey(dewey_text);
  if (!dewey.ok()) return Fail(dewey.status());
  auto index = ParseIndex(index_text);
  if (!index.ok()) return Fail(index.status());
  std::string fragment;
  nok::Status s = nok::ReadFileToString(fragment_path, &fragment);
  if (!s.ok()) return Fail(s);
  s = (*store)->InsertSubtree(*dewey, *index, fragment);
  if (!s.ok()) return Fail(s);
  printf("inserted under %s; positions are now stale (nokq refresh)\n",
         dewey->ToString().c_str());
  return FinishFlush(store->get());
}

int CmdDelete(const std::string& dir, const std::string& dewey_text) {
  auto store = OpenStore(dir);
  if (!store.ok()) return Fail(store.status());
  auto dewey = ParseDewey(dewey_text);
  if (!dewey.ok()) return Fail(dewey.status());
  nok::Status s = (*store)->DeleteSubtree(*dewey);
  if (!s.ok()) return Fail(s);
  printf("deleted %s; positions are now stale (nokq refresh)\n",
         dewey->ToString().c_str());
  return FinishFlush(store->get());
}

int CmdRefresh(const std::string& dir) {
  auto store = OpenStore(dir);
  if (!store.ok()) return Fail(store.status());
  nok::Timer timer;
  nok::Status s = (*store)->RefreshPositions();
  if (!s.ok()) return Fail(s);
  printf("positions refreshed in %.2fs\n", timer.ElapsedSeconds());
  return FinishFlush(store->get());
}

int CmdVerify(const std::string& dir) {
  nok::Timer timer;
  auto report = nok::VerifyStoreDir(dir);
  if (!report.ok()) return Fail(report.status());
  for (const nok::VerifyIssue& issue : report->issues) {
    fprintf(stderr, "damage [%s]: %s\n", issue.component.c_str(),
            issue.detail.c_str());
  }
  if (report->truncated) {
    fprintf(stderr, "...issue list truncated\n");
  }
  printf("%s: %llu pages, %llu index entries checked in %.2fs: %s\n",
         dir.c_str(), static_cast<unsigned long long>(report->pages_checked),
         static_cast<unsigned long long>(report->entries_checked),
         timer.ElapsedSeconds(),
         report->ok() ? "clean" : "DAMAGED");
  return report->ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "build" && (argc == 4 || argc == 5)) {
    const bool checksum = argc == 5 && strcmp(argv[4], "--checksum") == 0;
    if (argc == 5 && !checksum) return Usage();
    return CmdBuild(argv[2], argv[3], checksum);
  }
  if (command == "query" && argc >= 4) return CmdQuery(argc, argv);
  if (command == "stream" && argc == 4) return CmdStream(argv[2], argv[3]);
  if (command == "stats" && argc == 3) return CmdStats(argv[2]);
  if (command == "insert" && argc == 6) {
    return CmdInsert(argv[2], argv[3], argv[4], argv[5]);
  }
  if (command == "delete" && argc == 4) return CmdDelete(argv[2], argv[3]);
  if (command == "refresh" && argc == 3) return CmdRefresh(argv[2]);
  if (command == "verify" && argc == 3) return CmdVerify(argv[2]);
  return Usage();
}
