// nokq: command-line front end for the nokxml library.
//
//   nokq build  <file.xml> <store-dir> [--checksum]   build a store
//   nokq query  <store-dir> <xpath> [--values] [--strategy auto|scan|tag|
//               value|path] [--explain] [--no-header-skip]
//               [--no-tag-summaries] [--nav-mode paged|bp]
//               [--no-synopsis]
//   nokq explain <store-dir> <xpath> [--strategy ...] [--fixed-order]
//               [--plan-cache] [--nav-mode paged|bp] [--no-synopsis]
//                                  print the query plan + operator trace
//   nokq stream <file.xml> <xpath>              single-pass evaluation
//   nokq stats  <store-dir>                     Table-1 style statistics
//   nokq insert <store-dir> <parent-dewey> <index> <fragment.xml> [--wal]
//   nokq delete <store-dir> <dewey> [--wal]
//   nokq refresh <store-dir> [--wal]            rebuild cached positions
//   nokq verify <store-dir>                     offline integrity scrub
//   nokq recover <store-dir>                    WAL crash recovery + verify
//   nokq gen    <dataset> <store-dir>           generate + build + queries
//   nokq bench  <store-dir> [--threads N] [--repeat K]
//               [--queries file] [--json path]
//               [--engine nok|di|twigstack|nav|region]
//                                               parallel query driver
//
// `bench --engine` other than nok replays the workload through one of the
// in-memory baseline engines; it needs the dataset.xml that `nokq gen`
// drops next to the store.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/di_engine.h"
#include "baseline/interval_encoding.h"
#include "baseline/navigational_engine.h"
#include "baseline/region_engine.h"
#include "baseline/twigstack_engine.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/store_verifier.h"
#include "nokxml.h"
#include "storage/file.h"

namespace {

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  nokq build  <file.xml> <store-dir> [--checksum]\n"
          "  nokq query  <store-dir> <xpath> [--values] [--explain]\n"
          "              [--strategy auto|scan|tag|value|path]\n"
          "              [--no-header-skip] [--no-tag-summaries]\n"
          "              [--nav-mode paged|bp] [--no-synopsis]\n"
          "  nokq explain <store-dir> <xpath> [--fixed-order]\n"
          "              [--plan-cache] [--nav-mode paged|bp]\n"
          "              [--no-synopsis]\n"
          "              [--strategy auto|scan|tag|value|path]\n"
          "  nokq stream <file.xml> <xpath>\n"
          "  nokq stats  <store-dir>\n"
          "  nokq insert <store-dir> <parent-dewey> <index> <frag.xml>\n"
          "              [--wal]\n"
          "  nokq delete <store-dir> <dewey> [--wal]\n"
          "  nokq refresh <store-dir> [--wal]\n"
          "  nokq verify <store-dir>\n"
          "  nokq recover <store-dir>\n"
          "  nokq gen    <dataset> <store-dir> [--scale S] [--seed N]\n"
          "              (datasets: author address catalog treebank dblp\n"
          "               parts)\n"
          "  nokq bench  <store-dir> [--threads N] [--repeat K]\n"
          "              [--queries file] [--json path]\n"
          "              [--engine nok|di|twigstack|nav|region]\n"
          "              [--nav-mode paged|bp]\n");
  return 2;
}

int Fail(const nok::Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Final durability step of the mutating commands.  A failed flush is data
/// loss — it must produce a diagnostic, not a bare exit code.
int FinishFlush(nok::DocumentStore* store) {
  nok::Status s = store->Flush();
  if (!s.ok()) return Fail(s);
  return 0;
}

/// Parses a non-negative decimal integer, rejecting trailing garbage (the
/// failure mode atoi silently maps to 0).
nok::Result<uint32_t> ParseIndex(const std::string& text) {
  if (text.empty()) {
    return nok::Status::InvalidArgument("empty child index");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long v = strtoul(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || v > UINT32_MAX) {
    return nok::Status::InvalidArgument("bad child index: " + text);
  }
  return static_cast<uint32_t>(v);
}

nok::Result<nok::DeweyId> ParseDewey(const std::string& text) {
  std::vector<uint32_t> components;
  size_t start = 0;
  while (start <= text.size()) {
    size_t dot = text.find('.', start);
    if (dot == std::string::npos) dot = text.size();
    if (dot == start) {
      return nok::Status::InvalidArgument("bad Dewey ID: " + text);
    }
    components.push_back(
        static_cast<uint32_t>(strtoul(text.substr(start, dot - start)
                                          .c_str(),
                                      nullptr, 10)));
    start = dot + 1;
  }
  if (components.empty() || components[0] != 0) {
    return nok::Status::InvalidArgument("a Dewey ID starts with 0");
  }
  return nok::DeweyId(std::move(components));
}

nok::Result<std::unique_ptr<nok::DocumentStore>> OpenStore(
    const std::string& dir, bool use_header_skip = true,
    bool use_tag_summaries = true, bool wal = false,
    nok::NavMode nav_mode = nok::NavMode::kPaged,
    bool use_synopsis = true) {
  nok::DocumentStore::Options options;
  options.dir = dir;
  options.use_header_skip = use_header_skip;
  options.use_tag_summaries = use_tag_summaries;
  options.wal.enabled = wal;
  options.nav_mode = nav_mode;
  options.use_synopsis = use_synopsis;
  return nok::DocumentStore::OpenDir(options);
}

bool ParseNavModeName(const char* name, nok::NavMode* out) {
  const std::string s = name;
  if (s == "paged") *out = nok::NavMode::kPaged;
  else if (s == "bp") *out = nok::NavMode::kBp;
  else return false;
  return true;
}

int CmdBuild(const std::string& xml_path, const std::string& dir,
             bool checksum) {
  std::string xml;
  nok::Status s = nok::ReadFileToString(xml_path, &xml);
  if (!s.ok()) return Fail(s);
  nok::DocumentStore::Options options;
  options.dir = dir;
  options.checksum_pages = checksum;
  nok::Timer timer;
  auto store = nok::DocumentStore::Build(xml, options);
  if (!store.ok()) return Fail(store.status());
  printf("built %s: %llu nodes in %.2fs (tree %llu bytes)\n", dir.c_str(),
         static_cast<unsigned long long>((*store)->stats().node_count),
         timer.ElapsedSeconds(),
         static_cast<unsigned long long>((*store)->stats().tree_bytes));
  return FinishFlush(store->get());
}

bool ParseStrategyName(const char* name, nok::StartStrategy* out) {
  const std::string s = name;
  if (s == "auto") *out = nok::StartStrategy::kAuto;
  else if (s == "scan") *out = nok::StartStrategy::kScan;
  else if (s == "tag") *out = nok::StartStrategy::kTagIndex;
  else if (s == "value") *out = nok::StartStrategy::kValueIndex;
  else if (s == "path") *out = nok::StartStrategy::kPathIndex;
  else return false;
  return true;
}

int CmdExplain(int argc, char** argv) {
  const std::string dir = argv[2];
  const std::string xpath = argv[3];
  nok::QueryOptions options;
  nok::NavMode nav_mode = nok::NavMode::kPaged;
  for (int i = 4; i < argc; ++i) {
    if (strcmp(argv[i], "--fixed-order") == 0) {
      options.cost_based_join_order = false;
    } else if (strcmp(argv[i], "--plan-cache") == 0) {
      options.use_plan_cache = true;
    } else if (strcmp(argv[i], "--no-synopsis") == 0) {
      options.use_synopsis = false;
    } else if (strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      if (!ParseStrategyName(argv[++i], &options.strategy)) return Usage();
    } else if (strcmp(argv[i], "--nav-mode") == 0 && i + 1 < argc) {
      if (!ParseNavModeName(argv[++i], &nav_mode)) return Usage();
    } else {
      return Usage();
    }
  }
  auto store = OpenStore(dir, true, true, false, nav_mode,
                         options.use_synopsis);
  if (!store.ok()) return Fail(store.status());
  nok::QueryEngine engine(store->get());
  auto result = engine.Evaluate(xpath, options);
  if (!result.ok()) return Fail(result.status());
  fputs(engine.ExplainLast().c_str(), stdout);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  const std::string dir = argv[2];
  const std::string xpath = argv[3];
  bool values = false, explain = false;
  bool header_skip = true, tag_summaries = true;
  nok::QueryOptions options;
  nok::NavMode nav_mode = nok::NavMode::kPaged;
  for (int i = 4; i < argc; ++i) {
    if (strcmp(argv[i], "--values") == 0) {
      values = true;
    } else if (strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (strcmp(argv[i], "--no-header-skip") == 0) {
      header_skip = false;
    } else if (strcmp(argv[i], "--no-tag-summaries") == 0) {
      tag_summaries = false;
    } else if (strcmp(argv[i], "--no-synopsis") == 0) {
      options.use_synopsis = false;
    } else if (strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      if (!ParseStrategyName(argv[++i], &options.strategy)) return Usage();
    } else if (strcmp(argv[i], "--nav-mode") == 0 && i + 1 < argc) {
      if (!ParseNavModeName(argv[++i], &nav_mode)) return Usage();
    } else {
      return Usage();
    }
  }

  auto store = OpenStore(dir, header_skip, tag_summaries, false, nav_mode,
                         options.use_synopsis);
  if (!store.ok()) return Fail(store.status());
  nok::QueryEngine engine(store->get());
  nok::Timer timer;
  auto result = engine.Evaluate(xpath, options);
  if (!result.ok()) return Fail(result.status());
  const double seconds = timer.ElapsedSeconds();

  for (const nok::DeweyId& id : *result) {
    if (values) {
      auto value = (*store)->ValueOf(id);
      printf("%s\t%s\n", id.ToString().c_str(),
             value.ok() && value->has_value() ? (*value)->c_str() : "");
    } else {
      printf("%s\n", id.ToString().c_str());
    }
  }
  if (explain) {
    auto pattern = nok::ParseXPath(xpath);
    if (pattern.ok()) {
      fprintf(stderr, "pattern tree:\n%s", pattern->ToString().c_str());
      fprintf(stderr, "partition:\n%s",
              nok::PartitionPattern(*pattern).ToString().c_str());
    }
    fprintf(stderr, "%zu results in %.4fs\n", result->size(), seconds);
    for (size_t t = 0; t < engine.last_stats().trees.size(); ++t) {
      const auto& ts = engine.last_stats().trees[t];
      fprintf(stderr, "  tree %zu: %s, %zu candidates, %zu bindings\n", t,
              nok::StrategyName(ts.strategy), ts.candidates, ts.bindings);
    }
    const auto nav = (*store)->tree()->nav_stats();
    fprintf(stderr,
            "  pages: %llu scanned, %llu skipped by (st,lo,hi), "
            "%llu skipped by tag summary, %llu decode-cache hits\n",
            static_cast<unsigned long long>(nav.pages_scanned),
            static_cast<unsigned long long>(nav.pages_skipped),
            static_cast<unsigned long long>(nav.pages_skipped_by_tag),
            static_cast<unsigned long long>(nav.decode_cache_hits));
    if ((*store)->nav_mode() == nok::NavMode::kBp) {
      fprintf(stderr,
              "  bp: %llu tree steps, %llu tag blocks skipped\n",
              static_cast<unsigned long long>(nav.bp_steps),
              static_cast<unsigned long long>(nav.bp_tag_blocks_skipped));
    }
  }
  return 0;
}

int CmdStream(const std::string& xml_path, const std::string& xpath) {
  std::string xml;
  nok::Status s = nok::ReadFileToString(xml_path, &xml);
  if (!s.ok()) return Fail(s);
  nok::StreamRunStats stats;
  auto result = nok::EvaluateStreaming(xpath, xml, &stats);
  if (!result.ok()) return Fail(result.status());
  for (const nok::DeweyId& id : *result) {
    printf("%s\n", id.ToString().c_str());
  }
  fprintf(stderr, "%zu results; %llu events, peak buffer %zu nodes\n",
          result->size(), static_cast<unsigned long long>(stats.events),
          stats.peak_buffered_nodes);
  return 0;
}

int CmdStats(const std::string& dir) {
  auto store = OpenStore(dir);
  if (!store.ok()) return Fail(store.status());
  const nok::DocumentStoreStats& s = (*store)->stats();
  printf("nodes:        %llu\n", static_cast<unsigned long long>(s.node_count));
  printf("max depth:    %d\n", s.max_depth);
  printf("tags:         %llu\n",
         static_cast<unsigned long long>(s.distinct_tags));
  printf("|tree|:       %llu bytes\n",
         static_cast<unsigned long long>(s.tree_bytes));
  printf("|B+t|:        %llu bytes\n",
         static_cast<unsigned long long>(s.tag_index_bytes));
  printf("|B+v|:        %llu bytes\n",
         static_cast<unsigned long long>(s.value_index_bytes));
  printf("|B+i|:        %llu bytes\n",
         static_cast<unsigned long long>(s.id_index_bytes));
  printf("|B+p|:        %llu bytes\n",
         static_cast<unsigned long long>(s.path_index_bytes));
  printf("data file:    %llu bytes\n",
         static_cast<unsigned long long>(s.data_bytes));
  printf("positions:    %s\n",
         (*store)->positions_fresh() ? "fresh" : "stale (run refresh)");
  return 0;
}

int CmdInsert(const std::string& dir, const std::string& dewey_text,
              const std::string& index_text,
              const std::string& fragment_path, bool wal) {
  auto store = OpenStore(dir, true, true, wal);
  if (!store.ok()) return Fail(store.status());
  auto dewey = ParseDewey(dewey_text);
  if (!dewey.ok()) return Fail(dewey.status());
  auto index = ParseIndex(index_text);
  if (!index.ok()) return Fail(index.status());
  std::string fragment;
  nok::Status s = nok::ReadFileToString(fragment_path, &fragment);
  if (!s.ok()) return Fail(s);
  s = (*store)->InsertSubtree(*dewey, *index, fragment);
  if (!s.ok()) return Fail(s);
  printf("inserted under %s; positions are now stale (nokq refresh)\n",
         dewey->ToString().c_str());
  return FinishFlush(store->get());
}

int CmdDelete(const std::string& dir, const std::string& dewey_text,
              bool wal) {
  auto store = OpenStore(dir, true, true, wal);
  if (!store.ok()) return Fail(store.status());
  auto dewey = ParseDewey(dewey_text);
  if (!dewey.ok()) return Fail(dewey.status());
  nok::Status s = (*store)->DeleteSubtree(*dewey);
  if (!s.ok()) return Fail(s);
  printf("deleted %s; positions are now stale (nokq refresh)\n",
         dewey->ToString().c_str());
  return FinishFlush(store->get());
}

int CmdRefresh(const std::string& dir, bool wal) {
  auto store = OpenStore(dir, true, true, wal);
  if (!store.ok()) return Fail(store.status());
  nok::Timer timer;
  nok::Status s = (*store)->RefreshPositions();
  if (!s.ok()) return Fail(s);
  printf("positions refreshed in %.2fs\n", timer.ElapsedSeconds());
  return FinishFlush(store->get());
}

int CmdVerify(const std::string& dir) {
  nok::Timer timer;
  auto report = nok::VerifyStoreDir(dir);
  if (!report.ok()) return Fail(report.status());
  for (const nok::VerifyIssue& issue : report->issues) {
    fprintf(stderr, "damage [%s]: %s\n", issue.component.c_str(),
            issue.detail.c_str());
  }
  if (report->truncated) {
    fprintf(stderr, "...issue list truncated\n");
  }
  printf("%s: %llu pages, %llu index entries checked in %.2fs: %s\n",
         dir.c_str(), static_cast<unsigned long long>(report->pages_checked),
         static_cast<unsigned long long>(report->entries_checked),
         timer.ElapsedSeconds(),
         report->ok() ? "clean" : "DAMAGED");
  return report->ok() ? 0 : 1;
}

/// Runs WAL crash recovery on a store directory (replays committed but
/// unapplied transactions, discards torn tails), then scrubs the repaired
/// store with the offline verifier.
int CmdRecover(const std::string& dir) {
  nok::Timer timer;
  nok::RecoveryReport report;
  nok::Status s = nok::RecoverStoreDir(dir, nullptr, &report);
  if (!s.ok()) return Fail(s);
  if (!report.wal_present) {
    printf("%s: no write-ahead log; nothing to recover\n", dir.c_str());
  } else {
    printf("%s: recovered in %.2fs\n", dir.c_str(),
           timer.ElapsedSeconds());
    printf("  committed transactions in log: %llu (last epoch %llu)\n",
           static_cast<unsigned long long>(report.transactions_committed),
           static_cast<unsigned long long>(report.last_epoch));
    printf("  replayed now: %llu transaction(s), %llu record(s)\n",
           static_cast<unsigned long long>(report.transactions_replayed),
           static_cast<unsigned long long>(report.records_replayed));
    printf("  torn tail discarded: %llu byte(s)\n",
           static_cast<unsigned long long>(report.torn_bytes_discarded));
  }
  return CmdVerify(dir);
}

int CmdGen(int argc, char** argv) {
  const std::string name = argv[2];
  const std::string dir = argv[3];
  nok::GenOptions gen_options;
  for (int i = 4; i < argc; ++i) {
    if (strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      gen_options.scale = atof(argv[++i]);
    } else if (strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      gen_options.seed = strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }

  bool found = false;
  nok::Dataset dataset = nok::Dataset::kAuthor;
  for (nok::Dataset d : nok::AllDatasets()) {
    if (nok::DatasetName(d) == name) {
      dataset = d;
      found = true;
    }
  }
  // The deep-recursion dataset sits outside the Table 1 list (so the
  // Table-ordered benches stay stable) but is generatable by name.
  if (!found && name == nok::DatasetName(nok::Dataset::kParts)) {
    dataset = nok::Dataset::kParts;
    found = true;
  }
  if (!found) {
    fprintf(stderr, "unknown dataset: %s\n", name.c_str());
    return Usage();
  }

  nok::Timer timer;
  nok::GeneratedDataset ds = nok::GenerateDataset(dataset, gen_options);
  nok::DocumentStore::Options options;
  options.dir = dir;
  auto store = nok::DocumentStore::Build(ds.xml, options);
  if (!store.ok()) return Fail(store.status());

  // The Table 2 workload (12 categories plus their descendant-axis
  // variants), one query per line, for `nokq bench`.
  std::string listing;
  auto queries = nok::QueriesForDataset(ds);
  auto variants = nok::DescendantVariants(queries, gen_options.seed);
  queries.insert(queries.end(), variants.begin(), variants.end());
  for (const nok::CategoryQuery& q : queries) {
    listing += "# " + q.id + " " + q.category + "\n" + q.xpath + "\n";
  }
  nok::Status s = nok::WriteStringToFile(dir + "/queries.txt",
                                         nok::Slice(listing));
  if (!s.ok()) return Fail(s);
  // The raw document rides along so `bench --engine` can rebuild the
  // in-memory baseline encodings from the exact same bytes.
  s = nok::WriteStringToFile(dir + "/dataset.xml", nok::Slice(ds.xml));
  if (!s.ok()) return Fail(s);

  printf("generated %s (%llu nodes, %zu entries), %zu queries in %.2fs\n",
         ds.name.c_str(),
         static_cast<unsigned long long>((*store)->stats().node_count),
         ds.entries, queries.size(), timer.ElapsedSeconds());
  return FinishFlush(store->get());
}

/// One thread's share of a bench run.
struct BenchThreadResult {
  uint64_t queries = 0;
  uint64_t results = 0;        ///< Sum of result-set sizes (sanity).
  double seconds = 0;
  double mean_latency_us = 0;
  double max_latency_us = 0;
  nok::Status status;          ///< First failure, if any.
};

void BenchWorker(nok::DocumentStore* store,
                 const std::vector<std::string>* xpaths, int repeat,
                 BenchThreadResult* out) {
  nok::QueryEngine engine(store);
  double total_us = 0, max_us = 0;
  nok::Timer thread_timer;
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& xpath : *xpaths) {
      nok::Timer timer;
      auto result = engine.Evaluate(xpath);
      const double us = static_cast<double>(timer.ElapsedMicros());
      if (!result.ok()) {
        out->status = result.status();
        return;
      }
      ++out->queries;
      out->results += result->size();
      total_us += us;
      if (us > max_us) max_us = us;
    }
  }
  out->seconds = thread_timer.ElapsedSeconds();
  out->mean_latency_us =
      out->queries == 0 ? 0 : total_us / static_cast<double>(out->queries);
  out->max_latency_us = max_us;
}

/// One thread's share of a baseline-engine bench run.  Engines are cheap
/// per-thread constructions over the shared read-only encodings (mirrors
/// BenchWorker, which builds one QueryEngine per thread over the store).
void BaselineBenchWorker(const std::string* engine_name,
                         const nok::IntervalDocument* interval,
                         const nok::DomTree* dom,
                         const std::vector<nok::PatternTree>* patterns,
                         int repeat, BenchThreadResult* out) {
  std::unique_ptr<nok::DiEngine> di;
  std::unique_ptr<nok::TwigStackEngine> twig;
  std::unique_ptr<nok::NavigationalEngine> nav;
  std::unique_ptr<nok::RegionEngine> region;
  if (*engine_name == "di") {
    di = std::make_unique<nok::DiEngine>(interval);
  } else if (*engine_name == "twigstack") {
    twig = std::make_unique<nok::TwigStackEngine>(interval);
  } else if (*engine_name == "nav") {
    nav = std::make_unique<nok::NavigationalEngine>(dom);
  } else {
    region = std::make_unique<nok::RegionEngine>(interval);
  }
  auto eval = [&](const nok::PatternTree& pt) -> nok::Result<size_t> {
    if (di) {
      auto r = di->Evaluate(pt);
      if (!r.ok()) return r.status();
      return r->size();
    }
    if (twig) {
      auto r = twig->Evaluate(pt);
      if (!r.ok()) return r.status();
      return r->size();
    }
    if (nav) {
      auto r = nav->Evaluate(pt);
      if (!r.ok()) return r.status();
      return r->size();
    }
    auto r = region->Evaluate(pt);
    if (!r.ok()) return r.status();
    return r->size();
  };

  double total_us = 0, max_us = 0;
  nok::Timer thread_timer;
  for (int r = 0; r < repeat; ++r) {
    for (const nok::PatternTree& pt : *patterns) {
      nok::Timer timer;
      auto result = eval(pt);
      const double us = static_cast<double>(timer.ElapsedMicros());
      if (!result.ok()) {
        out->status = result.status();
        return;
      }
      ++out->queries;
      out->results += *result;
      total_us += us;
      if (us > max_us) max_us = us;
    }
  }
  out->seconds = thread_timer.ElapsedSeconds();
  out->mean_latency_us =
      out->queries == 0 ? 0 : total_us / static_cast<double>(out->queries);
  out->max_latency_us = max_us;
}

void AppendPoolJson(std::string* json, const char* name,
                    const nok::BufferPool::Stats& s) {
  char buf[256];
  const double rate =
      s.fetches == 0
          ? 0
          : static_cast<double>(s.hits) / static_cast<double>(s.fetches);
  snprintf(buf, sizeof(buf),
           "    \"%s\": {\"fetches\": %llu, \"hits\": %llu, "
           "\"misses\": %llu, \"disk_reads\": %llu, \"hit_rate\": %.4f}",
           name, static_cast<unsigned long long>(s.fetches),
           static_cast<unsigned long long>(s.hits),
           static_cast<unsigned long long>(s.misses),
           static_cast<unsigned long long>(s.disk_reads), rate);
  *json += buf;
}

int CmdBench(int argc, char** argv) {
  const std::string dir = argv[2];
  int threads = 1, repeat = 1;
  std::string queries_path = dir + "/queries.txt";
  std::string json_path = "BENCH_concurrency.json";
  std::string engine_name = "nok";
  nok::NavMode nav_mode = nok::NavMode::kPaged;
  for (int i = 3; i < argc; ++i) {
    if (strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      char* end = nullptr;
      threads = static_cast<int>(strtol(argv[++i], &end, 10));
      if (end == nullptr || *end != '\0') return Usage();
    } else if (strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      char* end = nullptr;
      repeat = static_cast<int>(strtol(argv[++i], &end, 10));
      if (end == nullptr || *end != '\0') return Usage();
    } else if (strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries_path = argv[++i];
    } else if (strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (strcmp(argv[i], "--nav-mode") == 0 && i + 1 < argc) {
      if (!ParseNavModeName(argv[++i], &nav_mode)) return Usage();
    } else {
      return Usage();
    }
  }
  if (threads < 1 || repeat < 1) return Usage();
  if (engine_name != "nok" && engine_name != "di" &&
      engine_name != "twigstack" && engine_name != "nav" &&
      engine_name != "region") {
    fprintf(stderr, "unknown engine: %s\n", engine_name.c_str());
    return Usage();
  }

  // The workload: one xpath per line; '#' comments and blanks skipped.
  std::string listing;
  nok::Status s = nok::ReadFileToString(queries_path, &listing);
  if (!s.ok()) return Fail(s);
  std::vector<std::string> xpaths;
  size_t start = 0;
  while (start <= listing.size()) {
    size_t end = listing.find('\n', start);
    if (end == std::string::npos) end = listing.size();
    std::string line = listing.substr(start, end - start);
    if (!line.empty() && line[0] != '#') xpaths.push_back(line);
    start = end + 1;
  }
  if (xpaths.empty()) {
    return Fail(nok::Status::InvalidArgument("no queries in " +
                                             queries_path));
  }

  // Baseline engines rebuild the in-memory encodings from the raw
  // document that `nokq gen` wrote next to the store; the NoK engine
  // reads the paged store itself.
  const bool baseline = engine_name != "nok";
  std::unique_ptr<nok::IntervalDocument> interval;
  std::unique_ptr<nok::DomTree> dom;
  std::vector<nok::PatternTree> patterns;
  if (baseline) {
    std::string xml;
    s = nok::ReadFileToString(dir + "/dataset.xml", &xml);
    if (!s.ok()) {
      fprintf(stderr,
              "bench --engine %s needs %s/dataset.xml "
              "(re-run `nokq gen`)\n",
              engine_name.c_str(), dir.c_str());
      return Fail(s);
    }
    for (const std::string& xpath : xpaths) {
      auto pattern = nok::ParseXPath(xpath);
      if (!pattern.ok()) return Fail(pattern.status());
      patterns.push_back(std::move(pattern).ValueOrDie());
    }
    if (engine_name == "nav") {
      auto tree = nok::DomTree::Parse(xml);
      if (!tree.ok()) return Fail(tree.status());
      dom = std::make_unique<nok::DomTree>(std::move(tree).ValueOrDie());
    } else {
      auto doc = nok::IntervalDocument::Build(xml);
      if (!doc.ok()) return Fail(doc.status());
      interval = std::make_unique<nok::IntervalDocument>(
          std::move(doc).ValueOrDie());
    }
  }

  // One read-only store handle shared by every thread; sharded pools so
  // reader threads do not contend on one LRU mutex.
  nok::DocumentStore::Options options;
  options.dir = dir;
  options.read_only = true;
  options.pool_shards = 16;
  options.index_pool_shards = 8;
  options.nav_mode = nav_mode;
  std::unique_ptr<nok::DocumentStore> store;
  if (!baseline) {
    auto opened = nok::DocumentStore::OpenDir(options);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(opened).ValueOrDie();
    s = store->DropCaches();
    if (!s.ok()) return Fail(s);
  }

  std::vector<BenchThreadResult> results(
      static_cast<size_t>(threads));
  nok::Timer wall;
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      if (baseline) {
        workers.emplace_back(BaselineBenchWorker, &engine_name,
                             interval.get(), dom.get(), &patterns, repeat,
                             &results[static_cast<size_t>(t)]);
      } else {
        workers.emplace_back(BenchWorker, store.get(), &xpaths, repeat,
                             &results[static_cast<size_t>(t)]);
      }
    }
    for (std::thread& w : workers) w.join();
  }
  const double wall_seconds = wall.ElapsedSeconds();

  uint64_t total_queries = 0;
  double mean_sum = 0, max_us = 0;
  for (const BenchThreadResult& r : results) {
    if (!r.status.ok()) return Fail(r.status);
    if (r.results != results[0].results) {
      return Fail(nok::Status::Internal(
          "threads disagree on result counts: " +
          std::to_string(r.results) + " vs " +
          std::to_string(results[0].results)));
    }
    total_queries += r.queries;
    mean_sum += r.mean_latency_us;
    if (r.max_latency_us > max_us) max_us = r.max_latency_us;
  }
  const double throughput =
      wall_seconds == 0 ? 0
                        : static_cast<double>(total_queries) / wall_seconds;

  std::string json = "{\n";
  char buf[512];
  snprintf(buf, sizeof(buf),
           "  \"store\": \"%s\",\n  \"engine\": \"%s\",\n"
           "  \"nav_mode\": \"%s\",\n"
           "  \"threads\": %d,\n"
           "  \"repeat\": %d,\n  \"distinct_queries\": %zu,\n"
           "  \"wall_seconds\": %.6f,\n  \"aggregate\": {\n"
           "    \"total_queries\": %llu,\n"
           "    \"throughput_qps\": %.2f,\n"
           "    \"mean_latency_us\": %.2f,\n"
           "    \"max_latency_us\": %.2f\n  },\n",
           dir.c_str(), engine_name.c_str(),
           baseline ? "n/a" : nok::NavModeName(nav_mode), threads, repeat,
           xpaths.size(), wall_seconds,
           static_cast<unsigned long long>(total_queries), throughput,
           mean_sum / static_cast<double>(threads), max_us);
  json += buf;

  // Buffer pools only exist on the paged-store path; baseline engines
  // run fully in memory.
  if (!baseline) {
    json += "  \"buffer_pools\": {\n";
    AppendPoolJson(&json, "tree", store->tree()->buffer_pool()->stats());
    json += ",\n";
    AppendPoolJson(&json, "tag_index",
                   store->tag_index()->buffer_pool()->stats());
    json += ",\n";
    AppendPoolJson(&json, "value_index",
                   store->value_index()->buffer_pool()->stats());
    json += ",\n";
    AppendPoolJson(&json, "id_index",
                   store->id_index()->buffer_pool()->stats());
    json += ",\n";
    AppendPoolJson(&json, "path_index",
                   store->path_index()->buffer_pool()->stats());
    json += "\n  },\n";
    const nok::StringStore::NavStats nav = store->tree()->nav_stats();
    snprintf(buf, sizeof(buf),
             "  \"nav\": {\"pages_scanned\": %llu, "
             "\"pages_skipped\": %llu, \"pages_skipped_by_tag\": %llu, "
             "\"bp_steps\": %llu, \"bp_tag_blocks_skipped\": %llu},\n",
             static_cast<unsigned long long>(nav.pages_scanned),
             static_cast<unsigned long long>(nav.pages_skipped),
             static_cast<unsigned long long>(nav.pages_skipped_by_tag),
             static_cast<unsigned long long>(nav.bp_steps),
             static_cast<unsigned long long>(nav.bp_tag_blocks_skipped));
    json += buf;
  }
  json += "  \"per_thread\": [\n";
  for (size_t t = 0; t < results.size(); ++t) {
    const BenchThreadResult& r = results[t];
    snprintf(buf, sizeof(buf),
             "    {\"thread\": %zu, \"queries\": %llu, "
             "\"seconds\": %.6f, \"mean_latency_us\": %.2f, "
             "\"max_latency_us\": %.2f}%s\n",
             t, static_cast<unsigned long long>(r.queries), r.seconds,
             r.mean_latency_us, r.max_latency_us,
             t + 1 == results.size() ? "" : ",");
    json += buf;
  }
  json += "  ]\n}\n";

  s = nok::WriteStringToFile(json_path, nok::Slice(json));
  if (!s.ok()) return Fail(s);
  printf("%llu queries (engine %s) on %d threads in %.3fs: %.1f q/s "
         "(report: %s)\n",
         static_cast<unsigned long long>(total_queries),
         engine_name.c_str(), threads, wall_seconds, throughput,
         json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "build" && (argc == 4 || argc == 5)) {
    const bool checksum = argc == 5 && strcmp(argv[4], "--checksum") == 0;
    if (argc == 5 && !checksum) return Usage();
    return CmdBuild(argv[2], argv[3], checksum);
  }
  if (command == "query" && argc >= 4) return CmdQuery(argc, argv);
  if (command == "explain" && argc >= 4) return CmdExplain(argc, argv);
  if (command == "stream" && argc == 4) return CmdStream(argv[2], argv[3]);
  if (command == "stats" && argc == 3) return CmdStats(argv[2]);
  // Mutating commands accept a trailing --wal (commit through the
  // write-ahead log: crash-atomic, recoverable with `nokq recover`).
  const bool wal =
      argc >= 3 && strcmp(argv[argc - 1], "--wal") == 0;
  const int eff_argc = wal ? argc - 1 : argc;
  if (command == "insert" && eff_argc == 6) {
    return CmdInsert(argv[2], argv[3], argv[4], argv[5], wal);
  }
  if (command == "delete" && eff_argc == 4) {
    return CmdDelete(argv[2], argv[3], wal);
  }
  if (command == "refresh" && eff_argc == 3) return CmdRefresh(argv[2], wal);
  if (command == "verify" && argc == 3) return CmdVerify(argv[2]);
  if (command == "recover" && argc == 3) return CmdRecover(argv[2]);
  if (command == "gen" && argc >= 4) return CmdGen(argc, argv);
  if (command == "bench" && argc >= 3) return CmdBench(argc, argv);
  return Usage();
}
