#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace nok {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("nokxml_storage_test_" + name + "_" +
           std::to_string(::getpid())))
      .string();
}

// ---------------------------------------------------------------------------
// File.

class FileKinds : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<File> Make() {
    if (GetParam()) {
      path_ = TempPath("file");
      NOK_IGNORE_STATUS(RemoveFile(path_), "pre-test scratch cleanup");
      auto r = OpenPosixFile(path_, /*create=*/true);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      return std::move(r).ValueOrDie();
    }
    return NewMemFile();
  }
  void TearDown() override {
    if (!path_.empty()) {
      NOK_IGNORE_STATUS(RemoveFile(path_), "best-effort teardown cleanup");
    }
  }
  std::string path_;
};

TEST_P(FileKinds, AppendReadWrite) {
  auto file = Make();
  EXPECT_EQ(file->Size(), 0u);
  uint64_t off = 0;
  ASSERT_TRUE(file->Append(Slice("hello "), &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE(file->Append(Slice("world"), &off).ok());
  EXPECT_EQ(off, 6u);
  EXPECT_EQ(file->Size(), 11u);

  char buf[16];
  Slice out;
  ASSERT_TRUE(file->ReadAt(0, 11, buf, &out).ok());
  EXPECT_EQ(out.ToString(), "hello world");
  ASSERT_TRUE(file->WriteAt(6, Slice("earth")).ok());
  ASSERT_TRUE(file->ReadAt(6, 5, buf, &out).ok());
  EXPECT_EQ(out.ToString(), "earth");
}

TEST_P(FileKinds, ReadPastEndFails) {
  auto file = Make();
  uint64_t off;
  ASSERT_TRUE(file->Append(Slice("abc"), &off).ok());
  char buf[8];
  Slice out;
  EXPECT_FALSE(file->ReadAt(1, 5, buf, &out).ok());
}

TEST_P(FileKinds, WriteBeyondEndExtends) {
  auto file = Make();
  ASSERT_TRUE(file->WriteAt(10, Slice("xy")).ok());
  EXPECT_EQ(file->Size(), 12u);
}

TEST_P(FileKinds, TruncateShrinks) {
  auto file = Make();
  uint64_t off;
  ASSERT_TRUE(file->Append(Slice("0123456789"), &off).ok());
  ASSERT_TRUE(file->Truncate(4).ok());
  EXPECT_EQ(file->Size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, FileKinds,
                         ::testing::Values(false, true));

TEST(FileTest, ReadWriteStringHelpers) {
  const std::string path = TempPath("helpers");
  ASSERT_TRUE(WriteStringToFile(path, Slice("payload")).ok());
  EXPECT_TRUE(FileExists(path));
  std::string got;
  ASSERT_TRUE(ReadFileToString(path, &got).ok());
  EXPECT_EQ(got, "payload");
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());  // Idempotent.
}

// ---------------------------------------------------------------------------
// Pager.

std::unique_ptr<Pager> MakePager(uint32_t page_size,
                                 PageFormat format = PageFormat::kRaw) {
  auto r = Pager::Open(NewMemFile(), page_size, format);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

class PagerFormats : public ::testing::TestWithParam<PageFormat> {};

TEST_P(PagerFormats, AllocateReadWrite) {
  auto pager = MakePager(256, GetParam());
  EXPECT_EQ(pager->page_count(), 0u);
  PageId a, b;
  ASSERT_TRUE(pager->AllocatePage(&a).ok());
  ASSERT_TRUE(pager->AllocatePage(&b).ok());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);

  std::string page(256, 'x');
  ASSERT_TRUE(pager->WritePage(b, page.data()).ok());
  std::string readback(256, '\0');
  ASSERT_TRUE(pager->ReadPage(b, readback.data()).ok());
  EXPECT_EQ(readback, page);
  // Fresh pages are zeroed.
  ASSERT_TRUE(pager->ReadPage(a, readback.data()).ok());
  EXPECT_EQ(readback, std::string(256, '\0'));
}

TEST_P(PagerFormats, OutOfRangeRejected) {
  auto pager = MakePager(256, GetParam());
  std::string buf(256, '\0');
  EXPECT_TRUE(pager->ReadPage(0, buf.data()).IsOutOfRange());
  EXPECT_TRUE(pager->WritePage(3, buf.data()).IsOutOfRange());
}

INSTANTIATE_TEST_SUITE_P(RawAndChecksummed, PagerFormats,
                         ::testing::Values(PageFormat::kRaw,
                                           PageFormat::kChecksummed));

TEST(PagerTest, RawSizeBytesCountsOnlyBodies) {
  auto pager = MakePager(256);
  PageId a;
  ASSERT_TRUE(pager->AllocatePage(&a).ok());
  ASSERT_TRUE(pager->AllocatePage(&a).ok());
  EXPECT_EQ(pager->SizeBytes(), 512u);
}

TEST(PagerTest, ZeroPageSizeRejected) {
  auto r = Pager::Open(NewMemFile(), 0);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(PagerTest, TruncatedFileIsCorruptionNotCrash) {
  // A file whose size is not a whole number of page slots means a torn
  // write or truncation; Open must report it, not abort.
  for (uint64_t size : {1u, 255u, 257u, 300u}) {
    auto file = NewMemFile();
    ASSERT_TRUE(file->WriteAt(0, Slice(std::string(size, 'a'))).ok());
    auto r = Pager::Open(std::move(file), 256);
    EXPECT_TRUE(r.status().IsCorruption()) << "size " << size;
  }
}

TEST(PagerTest, ChecksumDetectsFlippedByte) {
  auto file = NewMemFile();
  File* raw = file.get();
  auto r = Pager::Open(std::move(file), 128, PageFormat::kChecksummed);
  ASSERT_TRUE(r.ok());
  auto& pager = r.ValueOrDie();
  PageId id;
  ASSERT_TRUE(pager->AllocatePage(&id).ok());
  std::string page(128, 'p');
  ASSERT_TRUE(pager->WritePage(id, page.data()).ok());

  // Flip one byte of the page body behind the pager's back.
  char byte;
  Slice got;
  ASSERT_TRUE(raw->ReadAt(17, 1, &byte, &got).ok());
  char flipped = static_cast<char>(got[0] ^ 0x40);
  ASSERT_TRUE(raw->WriteAt(17, Slice(&flipped, 1)).ok());

  std::string buf(128, '\0');
  Status s = pager->ReadPage(id, buf.data());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("page 0"), std::string::npos) << s.ToString();
}

TEST(PagerTest, ChecksummedFileSurvivesReopen) {
  auto file = NewMemFile();
  File* raw = file.get();
  auto r = Pager::Open(std::move(file), 128, PageFormat::kChecksummed);
  ASSERT_TRUE(r.ok());
  PageId id;
  ASSERT_TRUE((*r)->AllocatePage(&id).ok());
  std::string page(128, 'q');
  ASSERT_TRUE((*r)->WritePage(id, page.data()).ok());

  // Reopen over the same bytes.
  std::string image(raw->Size(), '\0');
  Slice got;
  ASSERT_TRUE(raw->ReadAt(0, image.size(), image.data(), &got).ok());
  auto copy = NewMemFile();
  ASSERT_TRUE(copy->WriteAt(0, got).ok());
  auto r2 = Pager::Open(std::move(copy), 128, PageFormat::kChecksummed);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)->page_count(), 1u);
  std::string buf(128, '\0');
  ASSERT_TRUE((*r2)->ReadPage(id, buf.data()).ok());
  EXPECT_EQ(buf, page);
}

// ---------------------------------------------------------------------------
// BufferPool.

TEST(BufferPoolTest, HitAndMissCounting) {
  auto pager = MakePager(128);
  PageId p0, p1;
  ASSERT_TRUE(pager->AllocatePage(&p0).ok());
  ASSERT_TRUE(pager->AllocatePage(&p1).ok());
  BufferPool pool(pager.get(), 4);

  {
    auto h = pool.Fetch(p0);
    ASSERT_TRUE(h.ok());
  }
  {
    auto h = pool.Fetch(p0);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.stats().fetches, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().disk_reads, 1u);
}

TEST(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  auto pager = MakePager(128);
  std::vector<PageId> pages(4);
  for (auto& p : pages) ASSERT_TRUE(pager->AllocatePage(&p).ok());
  BufferPool pool(pager.get(), 2);

  {
    auto h = pool.Fetch(pages[0]);
    ASSERT_TRUE(h.ok());
    h->mutable_data()[0] = 'Z';
    h->MarkDirty();
  }
  // Force eviction of pages[0] by touching two more pages.
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(pages[2]); ASSERT_TRUE(h.ok()); }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().disk_writes, 1u);

  std::string buf(128, '\0');
  ASSERT_TRUE(pager->ReadPage(pages[0], buf.data()).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST(BufferPoolTest, AllPinnedExhaustsCapacity) {
  auto pager = MakePager(128);
  std::vector<PageId> pages(3);
  for (auto& p : pages) ASSERT_TRUE(pager->AllocatePage(&p).ok());
  BufferPool pool(pager.get(), 2);

  auto h0 = pool.Fetch(pages[0]);
  auto h1 = pool.Fetch(pages[1]);
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(h1.ok());
  auto h2 = pool.Fetch(pages[2]);
  EXPECT_FALSE(h2.ok());
  h0->Release();
  auto h3 = pool.Fetch(pages[2]);
  EXPECT_TRUE(h3.ok());
}

TEST(BufferPoolTest, DecorationSurvivesWhileCachedAndDropsOnEvict) {
  auto pager = MakePager(128);
  std::vector<PageId> pages(3);
  for (auto& p : pages) ASSERT_TRUE(pager->AllocatePage(&p).ok());
  BufferPool pool(pager.get(), 2);

  {
    auto h = pool.Fetch(pages[0]);
    ASSERT_TRUE(h.ok());
    h->set_decoration(std::make_shared<int>(99));
  }
  {
    auto h = pool.Fetch(pages[0]);
    ASSERT_TRUE(h.ok());
    auto deco = std::static_pointer_cast<int>(h->decoration());
    ASSERT_NE(deco, nullptr);
    EXPECT_EQ(*deco, 99);
  }
  // Evict pages[0].
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(pages[2]); ASSERT_TRUE(h.ok()); }
  {
    auto h = pool.Fetch(pages[0]);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->decoration(), nullptr);
  }
}

TEST(BufferPoolTest, DropAllFlushesAndClears) {
  auto pager = MakePager(128);
  PageId p0;
  ASSERT_TRUE(pager->AllocatePage(&p0).ok());
  BufferPool pool(pager.get(), 4);
  {
    auto h = pool.Fetch(p0);
    ASSERT_TRUE(h.ok());
    h->mutable_data()[5] = 'Q';
    h->MarkDirty();
  }
  ASSERT_TRUE(pool.DropAll().ok());
  pool.ResetStats();
  {
    auto h = pool.Fetch(p0);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[5], 'Q');
  }
  EXPECT_EQ(pool.stats().disk_reads, 1u);  // Really came from disk again.
}

TEST(BufferPoolTest, MoveHandleTransfersPin) {
  auto pager = MakePager(128);
  PageId p0;
  ASSERT_TRUE(pager->AllocatePage(&p0).ok());
  BufferPool pool(pager.get(), 1);
  auto h = pool.Fetch(p0);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(h).ValueOrDie();
  EXPECT_TRUE(moved.valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
  // After release the frame is evictable again.
  auto h2 = pool.Fetch(p0);
  EXPECT_TRUE(h2.ok());
}

}  // namespace
}  // namespace nok
