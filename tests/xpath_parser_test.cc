#include <gtest/gtest.h>

#include "nok/xpath_parser.h"

namespace nok {
namespace {

Result<PatternTree> Parse(const std::string& s) { return ParseXPath(s); }

TEST(XPathParserTest, SimplePath) {
  auto tree = Parse("/a/b/c");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* root = tree->root();
  EXPECT_TRUE(root->is_doc_root);
  ASSERT_EQ(root->children.size(), 1u);
  const PatternNode* a = root->children[0].get();
  EXPECT_EQ(a->tag, "a");
  EXPECT_EQ(a->incoming, Axis::kChild);
  const PatternNode* b = a->children[0].get();
  const PatternNode* c = b->children[0].get();
  EXPECT_TRUE(c->is_returning);
  EXPECT_EQ(tree->returning(), c);
  EXPECT_EQ(tree->size(), 4);
}

TEST(XPathParserTest, DescendantAxes) {
  auto tree = Parse("//b//c");
  ASSERT_TRUE(tree.ok());
  const PatternNode* b = tree->root()->children[0].get();
  EXPECT_EQ(b->incoming, Axis::kDescendant);
  EXPECT_EQ(b->children[0]->incoming, Axis::kDescendant);
}

TEST(XPathParserTest, PredicatesWithValues) {
  auto tree = Parse("/bib/book[author/last=\"Stevens\"][price<100]");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* book = tree->root()->children[0]->children[0].get();
  EXPECT_TRUE(book->is_returning);
  ASSERT_EQ(book->children.size(), 2u);
  const PatternNode* author = book->children[0].get();
  EXPECT_EQ(author->tag, "author");
  ASSERT_EQ(author->children.size(), 1u);
  const PatternNode* last = author->children[0].get();
  EXPECT_EQ(last->predicate.op, ValueOp::kEq);
  EXPECT_EQ(last->predicate.operand, "Stevens");
  const PatternNode* price = book->children[1].get();
  EXPECT_EQ(price->predicate.op, ValueOp::kLt);
  EXPECT_EQ(price->predicate.operand, "100");
}

TEST(XPathParserTest, AllComparisonOperators) {
  struct Case {
    const char* expr;
    ValueOp op;
  };
  const Case cases[] = {
      {"/a[b=\"x\"]", ValueOp::kEq},  {"/a[b!=\"x\"]", ValueOp::kNe},
      {"/a[b<5]", ValueOp::kLt},      {"/a[b<=5]", ValueOp::kLe},
      {"/a[b>5]", ValueOp::kGt},      {"/a[b>=5]", ValueOp::kGe},
  };
  for (const Case& c : cases) {
    auto tree = Parse(c.expr);
    ASSERT_TRUE(tree.ok()) << c.expr;
    const PatternNode* a = tree->root()->children[0].get();
    EXPECT_EQ(a->children[0]->predicate.op, c.op) << c.expr;
  }
}

TEST(XPathParserTest, SelfValuePredicate) {
  auto tree = Parse("/a/b[.=\"hello\"]");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* b = tree->root()->children[0]->children[0].get();
  EXPECT_EQ(b->predicate.op, ValueOp::kEq);
  EXPECT_EQ(b->predicate.operand, "hello");
  EXPECT_TRUE(b->children.empty());
}

TEST(XPathParserTest, AttributesAndWildcards) {
  auto tree = Parse("/a/*[@year=\"1994\"]");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* star = tree->root()->children[0]->children[0].get();
  EXPECT_TRUE(star->wildcard);
  const PatternNode* attr = star->children[0].get();
  EXPECT_EQ(attr->tag, "@year");
  EXPECT_EQ(attr->predicate.operand, "1994");
}

TEST(XPathParserTest, ExplicitAxisSpecifiers) {
  auto tree = Parse("/a/child::b/descendant::c/following::d");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  const PatternNode* b = a->children[0].get();
  EXPECT_EQ(b->incoming, Axis::kChild);
  const PatternNode* c = b->children[0].get();
  EXPECT_EQ(c->incoming, Axis::kDescendant);
  const PatternNode* d = c->children[0].get();
  EXPECT_EQ(d->incoming, Axis::kFollowing);
  EXPECT_TRUE(d->is_returning);
}

TEST(XPathParserTest, FollowingSiblingBecomesOrderConstraint) {
  auto tree = Parse("/a/b/following-sibling::c");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  ASSERT_EQ(a->children.size(), 2u);
  EXPECT_EQ(a->children[0]->tag, "b");
  EXPECT_EQ(a->children[1]->tag, "c");
  ASSERT_EQ(a->sibling_order.size(), 1u);
  EXPECT_EQ(a->sibling_order[0], std::make_pair(0, 1));
  EXPECT_TRUE(a->children[1]->is_returning);
}

TEST(XPathParserTest, NestedPredicatePaths) {
  auto tree = Parse("/a[b/c/d=\"x\"][e//f]/g");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  ASSERT_EQ(a->children.size(), 3u);
  EXPECT_EQ(a->children[0]->tag, "b");
  EXPECT_EQ(a->children[0]->children[0]->children[0]->predicate.operand,
            "x");
  EXPECT_EQ(a->children[1]->children[0]->incoming, Axis::kDescendant);
  EXPECT_EQ(a->children[2]->tag, "g");
  EXPECT_TRUE(a->children[2]->is_returning);
}

TEST(XPathParserTest, DotSlashPredicates) {
  auto tree = Parse("/a[.//b]");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  EXPECT_EQ(a->children[0]->incoming, Axis::kDescendant);
}

TEST(XPathParserTest, WhitespaceTolerated) {
  auto tree = Parse("  /a / b [ c = \"x y\" ] ");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* b = tree->root()->children[0]->children[0].get();
  EXPECT_EQ(b->children[0]->predicate.operand, "x y");
}

class ParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrors, RejectedWithCleanStatus) {
  auto tree = Parse(GetParam());
  ASSERT_FALSE(tree.ok()) << GetParam();
  // Malformed input must surface as a typed Status (parse error, or
  // not-supported for recognized-but-unimplemented syntax) with a
  // message — never a crash, a success, or a bare untyped error.
  EXPECT_TRUE(tree.status().IsParseError() ||
              tree.status().IsNotSupported())
      << GetParam() << ": " << tree.status().ToString();
  EXPECT_FALSE(tree.status().message().empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrors,
    ::testing::Values("", "a/b", "/", "//", "/a[", "/a[b", "/a[b=]",
                      "/a[b=\"x]", "/a]", "/a/b[=\"x\"]", "/a trailing",
                      "/a[b=\"x\"][b=\"y\"]extra", "/a[.]",
                      // Unterminated predicates.
                      "/a[b=\"x\"", "/a[b<", "/a[b][c",
                      // Empty steps and paths.
                      "/a//", "/a/", "//[b]", "/a/[b]",
                      // Bad or unsupported axis names.
                      "/a/ancestor::b", "/a/self::b", "/a/bogus::b",
                      "/a/::b",
                      // Stray brackets.
                      "]", "/a[]", "/a[b]]", "/a]b"));

TEST(AxisStatsTest, CountsAxes) {
  auto stats = CollectAxisStats("/a/b[c//d]/following::e");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->child_steps, 3);       // a, b, c.
  EXPECT_EQ(stats->descendant_steps, 1);  // d.
  EXPECT_EQ(stats->following_steps, 1);   // e.
  EXPECT_EQ(stats->total_structural(), 5);
}

TEST(AxisStatsTest, ValuePredicatesCounted) {
  auto stats = CollectAxisStats("/a[b=\"x\"][c<3]");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->value_predicates, 2);
}

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// Rewritten axes (Section 2 reduction): parent:: and preceding-sibling::.

namespace nok {
namespace {

TEST(XPathParserTest, PrecedingSiblingReversesOrderConstraint) {
  auto tree = ParseXPath("/a/b/preceding-sibling::c");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  ASSERT_EQ(a->children.size(), 2u);
  EXPECT_EQ(a->children[0]->tag, "b");
  EXPECT_EQ(a->children[1]->tag, "c");
  ASSERT_EQ(a->sibling_order.size(), 1u);
  // c (index 1) must come before b (index 0).
  EXPECT_EQ(a->sibling_order[0], std::make_pair(1, 0));
  EXPECT_TRUE(a->children[1]->is_returning);
}

TEST(XPathParserTest, ParentAfterChildUnifiesWithPatternParent) {
  // /a/b/parent::a/c  ==  /a[b]/c.
  auto tree = ParseXPath("/a/b/parent::a/c");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  EXPECT_EQ(a->tag, "a");
  ASSERT_EQ(a->children.size(), 2u);
  EXPECT_EQ(a->children[0]->tag, "b");
  EXPECT_EQ(a->children[1]->tag, "c");
  EXPECT_TRUE(a->children[1]->is_returning);
}

TEST(XPathParserTest, ParentWildcardAndConflicts) {
  auto wildcard = ParseXPath("/a/b/parent::*");
  ASSERT_TRUE(wildcard.ok());
  EXPECT_TRUE(wildcard->returning()->tag == "a");

  // Naming a different parent is an unsatisfiable query.
  auto conflict = ParseXPath("/a/b/parent::z");
  EXPECT_TRUE(conflict.status().IsNotSupported());

  // parent:: of a top-level step would name the document root.
  auto above = ParseXPath("/a/parent::x");
  EXPECT_FALSE(above.ok());
}

TEST(XPathParserTest, ParentAfterDescendantInterposesNode) {
  // /a//b/parent::c/d  ==  /a//c[b]/d.
  auto tree = ParseXPath("/a//b/parent::c/d");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const PatternNode* a = tree->root()->children[0].get();
  ASSERT_EQ(a->children.size(), 1u);
  const PatternNode* c = a->children[0].get();
  EXPECT_EQ(c->tag, "c");
  EXPECT_EQ(c->incoming, Axis::kDescendant);
  ASSERT_EQ(c->children.size(), 2u);
  EXPECT_EQ(c->children[0]->tag, "b");
  EXPECT_EQ(c->children[0]->incoming, Axis::kChild);
  EXPECT_EQ(c->children[1]->tag, "d");
  EXPECT_TRUE(c->children[1]->is_returning);
}

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// Value-predicate evaluation semantics (pattern_tree.cc).

namespace nok {
namespace {

ValuePredicate Pred(ValueOp op, const char* operand) {
  ValuePredicate p;
  p.op = op;
  p.operand = operand;
  return p;
}

TEST(ValuePredicateTest, EqualityIsExactString) {
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kEq, "65.95"), "65.95"));
  EXPECT_FALSE(EvalValuePredicate(Pred(ValueOp::kEq, "65.95"), "65.950"));
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kNe, "a"), "b"));
}

TEST(ValuePredicateTest, NumericOrderingWhenBothParse) {
  // "9" < "10" numerically even though "10" < "9" lexicographically.
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kLt, "10"), "9"));
  EXPECT_FALSE(EvalValuePredicate(Pred(ValueOp::kGt, "10"), "9"));
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kLe, "65.95"), "65.95"));
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kGe, "65.95"), "65.95"));
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kLt, "100"), "65.95"));
  EXPECT_FALSE(EvalValuePredicate(Pred(ValueOp::kLt, "-5"), "-2"));
}

TEST(ValuePredicateTest, LexicographicFallback) {
  // Non-numeric operands compare as strings.
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kLt, "banana"), "apple"));
  EXPECT_FALSE(EvalValuePredicate(Pred(ValueOp::kLt, "apple"), "banana"));
  // Mixed numeric/non-numeric also falls back to strings.
  EXPECT_TRUE(EvalValuePredicate(Pred(ValueOp::kLt, "x10"), "10x"));
}

TEST(ValuePredicateTest, InactivePredicateAlwaysTrue) {
  ValuePredicate none;
  EXPECT_FALSE(none.active());
  EXPECT_TRUE(EvalValuePredicate(none, "anything"));
}

}  // namespace
}  // namespace nok
