// Brute-force reference evaluator for differential testing.
//
// Deliberately written with a completely different strategy from every
// engine in src/: for each candidate subject node r, it checks by
// exhaustive backtracking whether the pattern tree is satisfiable with
// the returning node bound to r.  Exponential in the worst case — tests
// keep documents small — but obviously correct, which is the point.

#ifndef NOKXML_TESTS_ORACLE_H_
#define NOKXML_TESTS_ORACLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/dewey.h"
#include "nok/pattern_tree.h"
#include "xml/dom.h"

namespace nok {

/// Evaluates a pattern tree over a DOM by brute force; returns matches of
/// the returning node in document order.
std::vector<const DomNode*> OracleEvaluate(const PatternTree& pattern,
                                           const DomTree& tree);

/// Convenience: parse + evaluate, returning Dewey IDs (comparable with
/// QueryEngine output).
Result<std::vector<DeweyId>> OracleEvaluateDewey(const std::string& xpath,
                                                 const DomTree& tree);

/// The Dewey ID of a DOM node (root = 0, child indexes below).
DeweyId DomDewey(const DomNode* node);

}  // namespace nok

#endif  // NOKXML_TESTS_ORACLE_H_
