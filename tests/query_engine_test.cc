#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"
#include "tests/oracle.h"
#include "tests/test_util.h"
#include "xml/dom.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP Illustrated</title>"
    "<author><last>Stevens</last><first>W.</first></author>"
    "<publisher>Addison-Wesley</publisher><price>65.95</price></book>"
    "<book year=\"1992\"><title>Advanced Unix</title>"
    "<author><last>Stevens</last><first>W.</first></author>"
    "<publisher>Addison-Wesley</publisher><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title>"
    "<author><last>Abiteboul</last><first>Serge</first></author>"
    "<author><last>Buneman</last><first>Peter</first></author>"
    "<author><last>Suciu</last><first>Dan</first></author>"
    "<publisher>Morgan Kaufmann</publisher><price>39.95</price></book>"
    "<book year=\"1999\"><title>Economics of Tech</title>"
    "<editor><last>Gerbarg</last><first>Darcy</first>"
    "<affiliation>CITI</affiliation></editor>"
    "<publisher>Kluwer</publisher><price>129.95</price></book>"
    "</bib>";

struct EngineFixture {
  std::unique_ptr<DocumentStore> store;
  DomTree dom;
  std::unique_ptr<QueryEngine> engine;
};

EngineFixture MakeFixture(const std::string& xml,
                          uint32_t page_size = kDefaultPageSize) {
  EngineFixture f;
  DocumentStore::Options options;
  options.page_size = page_size;
  auto store = DocumentStore::Build(xml, options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  f.store = std::move(store).ValueOrDie();
  auto dom = DomTree::Parse(xml);
  EXPECT_TRUE(dom.ok());
  f.dom = std::move(dom).ValueOrDie();
  f.engine = std::make_unique<QueryEngine>(f.store.get());
  return f;
}

void ExpectMatchesOracle(EngineFixture* f, const std::string& query,
                         const QueryOptions& options = {}) {
  auto got = f->engine->Evaluate(query, options);
  ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
  auto want = OracleEvaluateDewey(query, f->dom);
  ASSERT_TRUE(want.ok()) << query;
  std::vector<std::string> got_s, want_s;
  for (const auto& d : *got) got_s.push_back(d.ToString());
  for (const auto& d : *want) want_s.push_back(d.ToString());
  EXPECT_EQ(got_s, want_s) << query;
}

TEST(QueryEngineTest, PaperExampleQuery) {
  auto f = MakeFixture(kBibXml);
  // The paper's Example 1.
  auto result = f.engine->Evaluate(
      "//book[author/last=\"Stevens\"][price<100]");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].ToString(), "0.0");
  EXPECT_EQ((*result)[1].ToString(), "0.1");
}

class BibQueries : public ::testing::TestWithParam<const char*> {};

TEST_P(BibQueries, MatchesOracle) {
  auto f = MakeFixture(kBibXml);
  ExpectMatchesOracle(&f, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Paperish, BibQueries,
    ::testing::Values(
        "/bib/book", "//book", "//last", "/bib/book/author/last",
        "/bib/book[author/last=\"Stevens\"]",
        "//book[author/last=\"Stevens\"][price<100]",
        "//book[price<50]", "/bib/book[price>100]",
        "//book[@year=\"2000\"]/author", "/bib/book[editor]/publisher",
        "//author[last=\"Suciu\"]", "//book[title]/price",
        "/bib/book[author][editor]", "//book//last",
        "/bib//affiliation", "//editor/following::book",
        "/bib/book/title/following::author",
        "//book[author/following-sibling::author]",
        "/bib/*[price>60]/title", "//*[@year]",
        "//book[publisher=\"Kluwer\"]//first",
        "/bib/book[price!=\"65.95\"]"));

TEST(QueryEngineTest, FusedScanUsesTagSummaries) {
  // A rare tag under forced kScan takes the fused NextOpenWithTag path:
  // with small pages the affiliation scan must skip pages by tag summary
  // and still match the oracle.
  auto f = MakeFixture(kBibXml, /*page_size=*/64);
  f.store->tree()->ResetNavStats();
  QueryOptions options;
  options.strategy = StartStrategy::kScan;
  ExpectMatchesOracle(&f, "//affiliation", options);
  EXPECT_GT(f.store->tree()->nav_stats().pages_skipped_by_tag, 0u);
}

TEST(QueryEngineTest, ScanAgreesAcrossAblationModes) {
  // The four {header-skip} x {tag-summary} combinations must return the
  // same answers for every forced-scan query.
  const char* queries[] = {"//book",      "//last",        "//affiliation",
                           "//book//last", "/bib/book/title", "//*[@year]"};
  std::vector<std::vector<std::string>> baseline(std::size(queries));
  bool first = true;
  for (bool header_skip : {true, false}) {
    for (bool tag_summaries : {true, false}) {
      DocumentStore::Options store_options;
      store_options.page_size = 64;
      store_options.use_header_skip = header_skip;
      store_options.use_tag_summaries = tag_summaries;
      auto store = DocumentStore::Build(kBibXml, store_options);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      QueryEngine engine(store->get());
      QueryOptions options;
      options.strategy = StartStrategy::kScan;
      for (size_t q = 0; q < std::size(queries); ++q) {
        auto r = engine.Evaluate(queries[q], options);
        ASSERT_TRUE(r.ok()) << queries[q];
        std::vector<std::string> s;
        for (const auto& d : *r) s.push_back(d.ToString());
        if (first) {
          baseline[q] = std::move(s);
        } else {
          EXPECT_EQ(s, baseline[q])
              << queries[q] << " header_skip=" << header_skip
              << " tag_summaries=" << tag_summaries;
        }
      }
      first = false;
    }
  }
}

TEST(QueryEngineTest, AllStrategiesAgree) {
  auto f = MakeFixture(kBibXml);
  const char* queries[] = {
      "/bib/book[author/last=\"Stevens\"]",
      "//book[price<100]/title",
      "/bib/book/author",
  };
  for (const char* query : queries) {
    std::vector<std::vector<std::string>> results;
    for (StartStrategy strategy :
         {StartStrategy::kAuto, StartStrategy::kScan,
          StartStrategy::kTagIndex, StartStrategy::kValueIndex}) {
      QueryOptions options;
      options.strategy = strategy;
      auto r = f.engine->Evaluate(query, options);
      ASSERT_TRUE(r.ok()) << query;
      std::vector<std::string> s;
      for (const auto& d : *r) s.push_back(d.ToString());
      results.push_back(std::move(s));
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0], results[i]) << query << " strategy " << i;
    }
  }
}

TEST(QueryEngineTest, JoinModesAgree) {
  auto f = MakeFixture(kBibXml, /*page_size=*/128);
  for (const char* query :
       {"//book//last", "/bib//author[last=\"Stevens\"]",
        "//editor/following::book", "//book[.//first]"}) {
    QueryOptions dewey, interval;
    dewey.join_mode = JoinMode::kDewey;
    interval.join_mode = JoinMode::kInterval;
    auto a = f.engine->Evaluate(query, dewey);
    auto b = f.engine->Evaluate(query, interval);
    ASSERT_TRUE(a.ok() && b.ok()) << query;
    EXPECT_EQ(a->size(), b->size()) << query;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
    }
  }
}

TEST(QueryEngineTest, StatsReportStrategy) {
  auto f = MakeFixture(kBibXml);
  QueryOptions options;
  ASSERT_TRUE(
      f.engine->Evaluate("//book[author/last=\"Stevens\"]", options).ok());
  const QueryStats& stats = f.engine->last_stats();
  ASSERT_EQ(stats.trees.size(), 2u);  // Virtual-root tree + book tree.
  EXPECT_EQ(stats.trees[1].strategy, StartStrategy::kValueIndex);
  EXPECT_EQ(stats.results, 2u);
}

TEST(QueryEngineTest, LastStatsCountsAreNonzeroForMatchingQueries) {
  auto f = MakeFixture(kBibXml);
  for (const char* query :
       {"//book[author/last=\"Stevens\"]", "/bib/book/title",
        "//author[last=\"Abiteboul\"]"}) {
    auto result = f.engine->Evaluate(query);
    ASSERT_TRUE(result.ok()) << query;
    ASSERT_FALSE(result->empty()) << query;
    const QueryStats& stats = f.engine->last_stats();
    EXPECT_EQ(stats.results, result->size()) << query;
    ASSERT_FALSE(stats.trees.empty()) << query;
    for (size_t t = 0; t < stats.trees.size(); ++t) {
      // A query with results matched in every NoK tree: each tree saw at
      // least one candidate and produced at least one binding.
      EXPECT_GT(stats.trees[t].candidates, 0u)
          << query << " tree " << t;
      EXPECT_GT(stats.trees[t].bindings, 0u) << query << " tree " << t;
      EXPECT_GE(stats.trees[t].candidates, stats.trees[t].bindings)
          << query << " tree " << t;
    }
  }
}

TEST(QueryEngineTest, HitRatioReproducibleAcrossIdenticalRuns) {
  // Small pages so one query touches several tree pages.
  auto f = MakeFixture(kBibXml, /*page_size=*/128);
  const std::string query = "//book[author/last=\"Stevens\"][price<100]";
  BufferPool* pool = f.store->tree()->buffer_pool();

  ASSERT_TRUE(f.store->DropCaches().ok());  // Calls ResetStats() too.
  ASSERT_TRUE(f.engine->Evaluate(query).ok());
  const BufferPool::Stats first = pool->stats();
  EXPECT_GT(first.fetches, 0u);
  EXPECT_EQ(first.hits + first.misses, first.fetches);

  ASSERT_TRUE(f.store->DropCaches().ok());
  ASSERT_TRUE(f.engine->Evaluate(query).ok());
  const BufferPool::Stats second = pool->stats();

  // Cold-start evaluation is deterministic, so the I/O profile — and with
  // it the hit ratio — must reproduce exactly.
  EXPECT_EQ(first.fetches, second.fetches);
  EXPECT_EQ(first.hits, second.hits);
  EXPECT_EQ(first.misses, second.misses);
  EXPECT_EQ(first.disk_reads, second.disk_reads);
}

TEST(QueryEngineTest, AbsentTagsReturnEmpty) {
  auto f = MakeFixture(kBibXml);
  for (const char* query : {"//nonexistent", "/bib/nothing/at/all",
                            "//book[zzz=\"1\"]"}) {
    auto r = f.engine->Evaluate(query);
    ASSERT_TRUE(r.ok()) << query;
    EXPECT_TRUE(r->empty()) << query;
  }
}

TEST(QueryEngineTest, SmallPagesSameResults) {
  auto big = MakeFixture(kBibXml, kDefaultPageSize);
  auto small = MakeFixture(kBibXml, 64);
  for (const char* query :
       {"//book[price<100]", "/bib/book/author/last", "//first"}) {
    auto a = big.engine->Evaluate(query);
    auto b = small.engine->Evaluate(query);
    ASSERT_TRUE(a.ok() && b.ok()) << query;
    ASSERT_EQ(a->size(), b->size()) << query;
  }
}

TEST(QueryEngineTest, PathIndexAnchorsUnselectiveTags) {
  // Section 8 extension: the tag 'x' is everywhere, but the rooted path
  // /a/b/x is rare.  The path index must anchor the query on the path.
  std::string xml = "<a><b><x>hit</x></b>";
  for (int i = 0; i < 200; ++i) xml += "<c><x>miss</x></c>";
  xml += "</a>";
  auto f = MakeFixture(xml);

  QueryOptions options;
  options.index_fraction = 0.5;  // Generous cutoff for the small doc.
  auto r = f.engine->Evaluate("/a/b/x", options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].ToString(), "0.0.0");
  const auto& stats = f.engine->last_stats();
  EXPECT_EQ(stats.trees[0].strategy, StartStrategy::kPathIndex);
  EXPECT_EQ(stats.trees[0].candidates, 1u);  // One /a/b/x node.

  // Forcing the path strategy and disabling it both stay correct.
  QueryOptions forced;
  forced.strategy = StartStrategy::kPathIndex;
  auto r2 = f.engine->Evaluate("/a/b/x", forced);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);
  QueryOptions disabled;
  disabled.use_path_index = false;
  auto r3 = f.engine->Evaluate("/a/b/x", disabled);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 1u);
  EXPECT_NE(f.engine->last_stats().trees[0].strategy,
            StartStrategy::kPathIndex);
}

TEST(QueryEngineTest, PathIndexSkippedWhenPositionsStale) {
  std::string xml = "<a><b><x>hit</x></b><c><x>miss</x></c></a>";
  auto f = MakeFixture(xml);
  ASSERT_TRUE(f.store->InsertSubtree(DeweyId({0}), 0, "<d/>").ok());
  EXPECT_FALSE(f.store->positions_fresh());
  QueryOptions options;
  options.index_fraction = 0.5;
  auto r = f.engine->Evaluate("/a/b/x", options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_NE(f.engine->last_stats().trees[0].strategy,
            StartStrategy::kPathIndex);
  // After a refresh the path index is consistent again.
  ASSERT_TRUE(f.store->RefreshPositions().ok());
  auto r2 = f.engine->Evaluate("/a/b/x", options);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);
  EXPECT_EQ(f.engine->last_stats().trees[0].strategy,
            StartStrategy::kPathIndex);
}

// The main differential property test: random documents x random queries
// x all strategies, against the brute-force oracle.
class EngineVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineVsOracle, RandomQueriesOnRandomDocuments) {
  Random rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    const std::string xml = testutil::RandomXml(&rng);
    auto f = MakeFixture(xml, /*page_size=*/128);
    for (int q = 0; q < 12; ++q) {
      const std::string query = testutil::RandomQuery(&rng);
      auto pattern = ParseXPath(query);
      if (!pattern.ok()) continue;  // Generator occasionally overshoots.

      auto want = OracleEvaluateDewey(query, f.dom);
      ASSERT_TRUE(want.ok()) << query;
      std::vector<std::string> want_s;
      for (const auto& d : *want) want_s.push_back(d.ToString());

      for (StartStrategy strategy : {StartStrategy::kAuto,
                                     StartStrategy::kScan}) {
        QueryOptions options;
        options.strategy = strategy;
        options.join_mode = rng.Bernoulli(0.5) ? JoinMode::kDewey
                                               : JoinMode::kInterval;
        auto got = f.engine->Evaluate(query, options);
        ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
        std::vector<std::string> got_s;
        for (const auto& d : *got) got_s.push_back(d.ToString());
        EXPECT_EQ(got_s, want_s)
            << "query " << query << " strategy "
            << static_cast<int>(strategy) << "\nxml " << xml;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsOracle,
                         ::testing::Values(1000, 2000, 3000, 4000));

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// Rewritten axes end to end (engine vs oracle).

namespace nok {
namespace {

class RewrittenAxes : public ::testing::TestWithParam<const char*> {};

TEST_P(RewrittenAxes, MatchesOracle) {
  auto f = MakeFixture(kBibXml);
  ExpectMatchesOracle(&f, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    ParentAndPrecedingSibling, RewrittenAxes,
    ::testing::Values("/bib/book/author/parent::book/title",
                      "//last/parent::author",
                      "/bib/book/price/preceding-sibling::title",
                      "//first/preceding-sibling::last",
                      "/bib/book/author/parent::*/price",
                      "//affiliation/parent::editor/last"));

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// The preceding:: axis (global mirror of following).

namespace nok {
namespace {

class PrecedingAxis : public ::testing::TestWithParam<const char*> {};

TEST_P(PrecedingAxis, MatchesOracle) {
  auto f = MakeFixture(kBibXml);
  ExpectMatchesOracle(&f, GetParam());
  // Both join modes must agree for the new relation too.
  QueryOptions interval;
  interval.join_mode = JoinMode::kInterval;
  ExpectMatchesOracle(&f, GetParam(), interval);
}

INSTANTIATE_TEST_SUITE_P(
    Paperish, PrecedingAxis,
    ::testing::Values("//editor/preceding::book",
                      "/bib/book/editor/preceding::author",
                      "//book[preceding::editor]",
                      "//author[last=\"Suciu\"]/preceding::title",
                      "//price/preceding::price"));

}  // namespace
}  // namespace nok
