#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/value_store.h"
#include "storage/file.h"

namespace nok {
namespace {

std::unique_ptr<ValueStore> Make() {
  auto r = ValueStore::Open(NewMemFile());
  EXPECT_TRUE(r.ok());
  return std::move(r).ValueOrDie();
}

TEST(ValueStoreTest, AppendAndRead) {
  auto store = Make();
  uint64_t a, b;
  ASSERT_TRUE(store->Append(Slice("1994"), &a).ok());
  ASSERT_TRUE(store->Append(Slice("TCP/IP Illustrated"), &b).ok());
  EXPECT_NE(a, b);
  EXPECT_EQ(*store->Read(a), "1994");
  EXPECT_EQ(*store->Read(b), "TCP/IP Illustrated");
}

TEST(ValueStoreTest, DeduplicatesEqualValues) {
  // The paper (Example 3): nodes with the same value share one record.
  auto store = Make();
  uint64_t a, b, c;
  ASSERT_TRUE(store->Append(Slice("Stevens"), &a).ok());
  ASSERT_TRUE(store->Append(Slice("other"), &b).ok());
  ASSERT_TRUE(store->Append(Slice("Stevens"), &c).ok());
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
}

TEST(ValueStoreTest, EmptyValue) {
  auto store = Make();
  uint64_t off;
  ASSERT_TRUE(store->Append(Slice(""), &off).ok());
  EXPECT_EQ(*store->Read(off), "");
}

TEST(ValueStoreTest, ReadBadOffsetFails) {
  auto store = Make();
  uint64_t off;
  ASSERT_TRUE(store->Append(Slice("x"), &off).ok());
  EXPECT_FALSE(store->Read(12345).ok());
}

TEST(ValueStoreTest, LargeValuesAndMany) {
  auto store = Make();
  Random rng(17);
  std::vector<std::pair<uint64_t, std::string>> entries;
  for (int i = 0; i < 500; ++i) {
    std::string value = rng.NextString(rng.Range(0, 300));
    uint64_t off;
    ASSERT_TRUE(store->Append(Slice(value), &off).ok());
    entries.emplace_back(off, std::move(value));
  }
  for (const auto& [off, value] : entries) {
    EXPECT_EQ(*store->Read(off), value);
  }
  EXPECT_GT(store->SizeBytes(), 0u);
}

}  // namespace
}  // namespace nok
