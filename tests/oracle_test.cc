// Tests for the brute-force oracle itself: hand-computed answers on one
// tiny fixed document, covering every axis and predicate combination the
// supported grammar can produce.  The oracle anchors every differential
// test in the repo, so its own answers are pinned here by hand — no
// engine output is consulted.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tests/oracle.h"
#include "xml/dom.h"

namespace nok {
namespace {

// Dewey map (attributes are children, in attribute-then-element order):
//   r                 0
//     a (id="1")      0.0
//       @id           0.0.0
//       b "x"         0.0.1
//       c "5"         0.0.2
//     b "y"           0.1
//     a               0.2
//       b "x"         0.2.0
//       b "z"         0.2.1
//       d             0.2.2
//         b "deep"    0.2.2.0
//     c "9"           0.3
constexpr const char* kDoc =
    "<r>"
    "<a id=\"1\"><b>x</b><c>5</c></a>"
    "<b>y</b>"
    "<a><b>x</b><b>z</b><d><b>deep</b></d></a>"
    "<c>9</c>"
    "</r>";

class OracleFixedDoc : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tree = DomTree::Parse(kDoc);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).ValueOrDie();
  }

  std::vector<std::string> Eval(const std::string& xpath) {
    auto r = OracleEvaluateDewey(xpath, tree_);
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status().ToString();
    if (!r.ok()) return {"<error>"};
    std::vector<std::string> out;
    for (const DeweyId& id : *r) out.push_back(id.ToString());
    std::sort(out.begin(), out.end());
    return out;
  }

  using V = std::vector<std::string>;
  DomTree tree_;
};

TEST_F(OracleFixedDoc, ChildAxis) {
  EXPECT_EQ(Eval("/r"), (V{"0"}));
  EXPECT_EQ(Eval("/r/a"), (V{"0.0", "0.2"}));
  EXPECT_EQ(Eval("/r/a/b"), (V{"0.0.1", "0.2.0", "0.2.1"}));
  EXPECT_EQ(Eval("/b"), (V{}));  // The root element is r, not b.
  EXPECT_EQ(Eval("/r/d"), (V{}));
}

TEST_F(OracleFixedDoc, DescendantAxis) {
  EXPECT_EQ(Eval("//b"),
            (V{"0.0.1", "0.1", "0.2.0", "0.2.1", "0.2.2.0"}));
  EXPECT_EQ(Eval("/r//b"),
            (V{"0.0.1", "0.1", "0.2.0", "0.2.1", "0.2.2.0"}));
  EXPECT_EQ(Eval("//d//b"), (V{"0.2.2.0"}));
  EXPECT_EQ(Eval("//d/b"), (V{"0.2.2.0"}));
  EXPECT_EQ(Eval("//a//b"),
            (V{"0.0.1", "0.2.0", "0.2.1", "0.2.2.0"}));
}

TEST_F(OracleFixedDoc, Wildcard) {
  EXPECT_EQ(Eval("/r/*"), (V{"0.0", "0.1", "0.2", "0.3"}));
  // Nodes with a c child: r (0.3) and the first a (0.0.2).
  EXPECT_EQ(Eval("//*[c]"), (V{"0", "0.0"}));
}

TEST_F(OracleFixedDoc, StructuralBranches) {
  EXPECT_EQ(Eval("//a[c]"), (V{"0.0"}));
  EXPECT_EQ(Eval("//a[d]"), (V{"0.2"}));
  EXPECT_EQ(Eval("//a[b][c]"), (V{"0.0"}));
  EXPECT_EQ(Eval("//a[d/b]"), (V{"0.2"}));
  EXPECT_EQ(Eval("//a[x]"), (V{}));
}

TEST_F(OracleFixedDoc, ValuePredicates) {
  EXPECT_EQ(Eval("//a[b=\"x\"]"), (V{"0.0", "0.2"}));
  EXPECT_EQ(Eval("//a[b=\"z\"]"), (V{"0.2"}));
  EXPECT_EQ(Eval("//b[.=\"y\"]"), (V{"0.1"}));
  EXPECT_EQ(Eval("//b[.!=\"x\"]"), (V{"0.1", "0.2.1", "0.2.2.0"}));
  // Numeric comparison: c values are 5 (0.0.2) and 9 (0.3).
  EXPECT_EQ(Eval("//c[.<7]"), (V{"0.0.2"}));
  EXPECT_EQ(Eval("//c[.>=5]"), (V{"0.0.2", "0.3"}));
  EXPECT_EQ(Eval("//c[.>9]"), (V{}));
  EXPECT_EQ(Eval("//c[.<=9]"), (V{"0.0.2", "0.3"}));
  // Elements without direct text never satisfy a value predicate.
  EXPECT_EQ(Eval("//a[.=\"x\"]"), (V{}));
}

TEST_F(OracleFixedDoc, AttributePredicates) {
  EXPECT_EQ(Eval("//a[@id=\"1\"]"), (V{"0.0"}));
  EXPECT_EQ(Eval("//a[@id]"), (V{"0.0"}));
  EXPECT_EQ(Eval("//a[@id=\"2\"]"), (V{}));
  // Attribute nodes are addressable children (first among siblings).
  EXPECT_EQ(Eval("//a/@id"), (V{"0.0.0"}));
}

TEST_F(OracleFixedDoc, PositionalPredicates) {
  EXPECT_EQ(Eval("/r/a[1]"), (V{"0.0"}));
  EXPECT_EQ(Eval("/r/a[2]"), (V{"0.2"}));
  EXPECT_EQ(Eval("/r/a[3]"), (V{}));
  // Position counts only like-named siblings...
  EXPECT_EQ(Eval("//b[1]"), (V{"0.0.1", "0.1", "0.2.0", "0.2.2.0"}));
  EXPECT_EQ(Eval("//b[2]"), (V{"0.2.1"}));
  // ...while the wildcard counts every sibling (attributes included:
  // a's children are @id, b, c, so *[2] is its b).
  EXPECT_EQ(Eval("/r/*[2]"), (V{"0.1"}));
  EXPECT_EQ(Eval("/r/a/*[2]"), (V{"0.0.1", "0.2.1"}));
  // The root element is position 1.
  EXPECT_EQ(Eval("/r[1]"), (V{"0"}));
  EXPECT_EQ(Eval("/r[2]"), (V{}));
  // Positional composes with value and structural predicates.
  EXPECT_EQ(Eval("//a[b=\"x\"][2]"), (V{"0.2"}));
  EXPECT_EQ(Eval("//a[2][d]"), (V{"0.2"}));
}

TEST_F(OracleFixedDoc, SiblingOrderArcs) {
  // b before a later d sibling: only the two b's under the second a.
  EXPECT_EQ(Eval("/r/a/b[following-sibling::d]"), (V{"0.2.0", "0.2.1"}));
  // b with an earlier a sibling: r's own b child.
  EXPECT_EQ(Eval("/r/b[preceding-sibling::a]"), (V{"0.1"}));
  EXPECT_EQ(Eval("/r/a/d[following-sibling::b]"), (V{}));
  // Chained order arcs on one sibling group.
  EXPECT_EQ(Eval("//a[b/following-sibling::d]"), (V{"0.2"}));
  // Pattern-tree quirk shared by every engine: a sibling step in a
  // predicate anchors to the context's pattern parent, so under a //
  // trunk the sibling witness must be a child of the virtual doc root
  // (the root element).  No b is the root here, hence empty.
  EXPECT_EQ(Eval("//b[following-sibling::d]"), (V{}));
}

TEST_F(OracleFixedDoc, FollowingPrecedingAxes) {
  // c nodes with a b anywhere after them: only the c inside the first a.
  EXPECT_EQ(Eval("//c[following::b]"), (V{"0.0.2"}));
  // b nodes entirely after some c (the c inside the first a).
  EXPECT_EQ(Eval("//b[preceding::c]"),
            (V{"0.1", "0.2.0", "0.2.1", "0.2.2.0"}));
  // An ancestor does not precede its descendants.
  EXPECT_EQ(Eval("//b[preceding::r]"), (V{}));
  EXPECT_EQ(Eval("//b[following::r]"), (V{}));
}

TEST_F(OracleFixedDoc, ParentAxisRewrite) {
  EXPECT_EQ(Eval("//b/parent::a"), (V{"0.0", "0.2"}));
  EXPECT_EQ(Eval("//b/parent::d"), (V{"0.2.2"}));
  EXPECT_EQ(Eval("//c/parent::r"), (V{"0"}));
}

TEST_F(OracleFixedDoc, ReturningNodeMidPattern) {
  // The returning node is the last trunk step even with deep branches.
  EXPECT_EQ(Eval("//a[d/b]/b"), (V{"0.2.0", "0.2.1"}));
  EXPECT_EQ(Eval("//a/b[.=\"x\"]"), (V{"0.0.1", "0.2.0"}));
}

}  // namespace
}  // namespace nok
