#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/sax_parser.h"
#include "xml/serializer.h"

namespace nok {
namespace {

// ---------------------------------------------------------------------------
// Escaping / entities.

TEST(EscapeTest, TextAndAttribute) {
  EXPECT_EQ(EscapeText(Slice("a<b>&c")), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeAttribute(Slice("say \"hi\" & <go>")),
            "say &quot;hi&quot; &amp; &lt;go&gt;");
}

TEST(EscapeTest, DecodePredefinedEntities) {
  auto r = DecodeEntities(Slice("&lt;a&gt; &amp; &quot;x&quot; &apos;y&apos;"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "<a> & \"x\" 'y'");
}

TEST(EscapeTest, DecodeNumericReferences) {
  auto r = DecodeEntities(Slice("&#65;&#x42;&#xe9;"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "AB\xc3\xa9");  // é in UTF-8.
}

TEST(EscapeTest, UnknownEntityFails) {
  EXPECT_TRUE(DecodeEntities(Slice("&bogus;")).status().IsParseError());
  EXPECT_TRUE(DecodeEntities(Slice("&unterminated")).status()
                  .IsParseError());
}

TEST(EscapeTest, RoundTripThroughEscapeAndDecode) {
  const std::string original = "tricky <&> \"mix'\" 100%";
  auto r = DecodeEntities(Slice(EscapeText(original)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, original);
}

TEST(EscapeTest, TrimAndAppendChunk) {
  EXPECT_EQ(TrimWhitespace("  a b \n"), "a b");
  EXPECT_EQ(TrimWhitespace("\t\n "), "");
  std::string value;
  AppendTextChunk(&value, " one ");
  AppendTextChunk(&value, " two ");
  EXPECT_EQ(value, "one two");
}

// ---------------------------------------------------------------------------
// SAX parser.

std::vector<SaxEvent> ParseAll(const std::string& xml, Status* status) {
  SaxParser parser(xml);
  std::vector<SaxEvent> events;
  SaxEvent e;
  for (;;) {
    *status = parser.Next(&e);
    if (!status->ok()) return events;
    if (e.type == SaxEvent::Type::kEndDocument) return events;
    events.push_back(e);
  }
}

TEST(SaxTest, SimpleDocument) {
  Status s;
  auto events = ParseAll("<a><b>hi</b><c/></a>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 7u);
  EXPECT_EQ(events[0].type, SaxEvent::Type::kStartElement);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].type, SaxEvent::Type::kText);
  EXPECT_EQ(events[2].text, "hi");
  EXPECT_EQ(events[3].type, SaxEvent::Type::kEndElement);
  EXPECT_EQ(events[4].name, "c");
  EXPECT_EQ(events[5].type, SaxEvent::Type::kEndElement);
  EXPECT_EQ(events[5].name, "c");
  EXPECT_EQ(events[6].name, "a");
}

TEST(SaxTest, AttributesBothQuoteStyles) {
  Status s;
  auto events = ParseAll("<a x=\"1\" y='two &amp; three'/>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].attributes.size(), 2u);
  EXPECT_EQ(events[0].attributes[0].first, "x");
  EXPECT_EQ(events[0].attributes[0].second, "1");
  EXPECT_EQ(events[0].attributes[1].second, "two & three");
}

TEST(SaxTest, CommentsPisDoctypeCdata) {
  const char* xml =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a [ <!ELEMENT a ANY> ]>\n"
      "<!-- top comment -->\n"
      "<a><!-- inner --><![CDATA[<raw> & stuff]]><?pi data?></a>";
  Status s;
  auto events = ParseAll(xml, &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].type, SaxEvent::Type::kText);
  EXPECT_EQ(events[1].text, "<raw> & stuff");
}

TEST(SaxTest, WhitespaceTextSkippedByDefault) {
  Status s;
  auto events = ParseAll("<a>\n  <b/>\n</a>", &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(events.size(), 4u);  // No text events.
}

TEST(SaxTest, WhitespaceKeptWhenRequested) {
  SaxParser::Options options;
  options.skip_whitespace_text = false;
  SaxParser parser("<a> <b/> </a>", options);
  SaxEvent e;
  int text_events = 0;
  for (;;) {
    ASSERT_TRUE(parser.Next(&e).ok());
    if (e.type == SaxEvent::Type::kEndDocument) break;
    if (e.type == SaxEvent::Type::kText) ++text_events;
  }
  EXPECT_EQ(text_events, 2);
}

class SaxErrorCases : public ::testing::TestWithParam<const char*> {};

TEST_P(SaxErrorCases, MalformedInputRejected) {
  Status s;
  ParseAll(GetParam(), &s);
  EXPECT_TRUE(s.IsParseError()) << GetParam() << " -> " << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SaxErrorCases,
    ::testing::Values("<a>", "<a></b>", "<a><b></a></b>", "</a>",
                      "<a attr></a>", "<a attr=></a>", "<a attr=x></a>",
                      "<a 'x'></a>", "<a><b></a>", "text only",
                      "<a></a><b></b>", "<a>&bad;</a>",
                      "<a><!-- unterminated</a>", "<a><![CDATA[x</a>"));

// ---------------------------------------------------------------------------
// DOM.

TEST(DomTest, BuildsTreeWithAttributesAsChildren) {
  auto tree_r = DomTree::Parse(
      "<bib><book year=\"1994\"><title>T</title></book></bib>");
  ASSERT_TRUE(tree_r.ok());
  const DomTree& tree = *tree_r;
  const DomNode* root = tree.root();
  EXPECT_EQ(root->name, "bib");
  ASSERT_EQ(root->children.size(), 1u);
  const DomNode* book = root->children[0].get();
  ASSERT_EQ(book->children.size(), 2u);
  EXPECT_EQ(book->children[0]->name, "@year");
  EXPECT_EQ(book->children[0]->value, "1994");
  EXPECT_TRUE(book->children[0]->is_attribute());
  EXPECT_EQ(book->children[1]->name, "title");
  EXPECT_EQ(book->children[1]->value, "T");
  EXPECT_EQ(tree.node_count(), 4u);
  EXPECT_EQ(tree.max_depth(), 3);
  EXPECT_EQ(tree.distinct_tags(), 4u);
}

TEST(DomTest, IntervalsNestProperly) {
  auto tree_r = DomTree::Parse("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(tree_r.ok());
  const DomNode* a = tree_r->root();
  const DomNode* b = a->children[0].get();
  const DomNode* c = b->children[0].get();
  const DomNode* d = a->children[1].get();
  EXPECT_LT(a->start, b->start);
  EXPECT_LT(b->start, c->start);
  EXPECT_LT(c->end, b->end);
  EXPECT_LT(b->end, d->start);
  EXPECT_LT(d->end, a->end);
  EXPECT_EQ(a->level, 1);
  EXPECT_EQ(c->level, 3);
  EXPECT_EQ(d->child_index, 1u);
}

TEST(DomTest, MixedContentValueConcatenation) {
  auto tree_r = DomTree::Parse("<a> one <b/> two </a>");
  ASSERT_TRUE(tree_r.ok());
  EXPECT_EQ(tree_r->root()->value, "one two");
}

TEST(DomTest, AvgDepthIsLeafAverage) {
  auto tree_r = DomTree::Parse("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(tree_r.ok());
  // Leaves: c at depth 3, d at depth 2 -> 2.5.
  EXPECT_DOUBLE_EQ(tree_r->avg_depth(), 2.5);
}

// ---------------------------------------------------------------------------
// Serializer round trip.

TEST(SerializerTest, BasicRoundTrip) {
  const std::string xml =
      "<bib><book year=\"1994\"><title>A &amp; B</title><price>65.95"
      "</price></book><empty/></bib>";
  auto t1 = DomTree::Parse(xml);
  ASSERT_TRUE(t1.ok());
  const std::string serialized = SerializeTree(*t1);
  auto t2 = DomTree::Parse(serialized);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(SerializeTree(*t2), serialized);  // Fixed point.
  EXPECT_EQ(t1->node_count(), t2->node_count());
}

TEST(SerializerTest, RandomDocumentsRoundTrip) {
  Random rng(11);
  for (int i = 0; i < 30; ++i) {
    const std::string xml = testutil::RandomXml(&rng);
    auto t1 = DomTree::Parse(xml);
    ASSERT_TRUE(t1.ok()) << xml;
    const std::string s1 = SerializeTree(*t1);
    auto t2 = DomTree::Parse(s1);
    ASSERT_TRUE(t2.ok()) << s1;
    EXPECT_EQ(SerializeTree(*t2), s1);
    EXPECT_EQ(t1->node_count(), t2->node_count());
    EXPECT_EQ(t1->max_depth(), t2->max_depth());
  }
}

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// Robustness fuzz: arbitrary bytes must never crash the parser; they
// either parse or fail with ParseError.

namespace nok {
namespace {

TEST(SaxFuzzTest, RandomBytesNeverCrash) {
  Random rng(271828);
  for (int round = 0; round < 300; ++round) {
    std::string input;
    const size_t len = rng.Range(0, 120);
    for (size_t i = 0; i < len; ++i) {
      // Bias toward XML-ish characters so the parser gets past byte one.
      static const char pool[] = "<>/=\"'ab& ;!?-[]";
      input += rng.Bernoulli(0.7)
                   ? pool[rng.Uniform(sizeof(pool) - 1)]
                   : static_cast<char>(rng.Uniform(256));
    }
    SaxParser parser(input);
    SaxEvent event;
    for (int steps = 0; steps < 1000; ++steps) {
      Status s = parser.Next(&event);
      if (!s.ok()) {
        EXPECT_TRUE(s.IsParseError()) << s.ToString();
        break;
      }
      if (event.type == SaxEvent::Type::kEndDocument) break;
    }
  }
}

TEST(SaxFuzzTest, MutatedValidDocumentsNeverCrash) {
  Random rng(31415);
  for (int round = 0; round < 200; ++round) {
    std::string xml = testutil::RandomXml(&rng);
    // Flip a few bytes.
    for (int flips = 0; flips < 3; ++flips) {
      xml[rng.Uniform(xml.size())] = static_cast<char>(rng.Uniform(256));
    }
    SaxParser parser(xml);
    SaxEvent event;
    for (int steps = 0; steps < 5000; ++steps) {
      Status s = parser.Next(&event);
      if (!s.ok() || event.type == SaxEvent::Type::kEndDocument) break;
    }
  }
}

}  // namespace
}  // namespace nok
