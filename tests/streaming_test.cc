#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "streaming/sax_source.h"
#include "streaming/stream_matcher.h"
#include "tests/oracle.h"
#include "tests/test_util.h"
#include "xml/dom.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><author><last>Stevens"
    "</last></author><price>65.95</price></book>"
    "<book year=\"2000\"><title>Web</title><author><last>Abiteboul"
    "</last></author><price>39.95</price></book>"
    "<news><book year=\"1999\"><title>Nested</title><price>5</price>"
    "</book></news>"
    "</bib>";

// ---------------------------------------------------------------------------
// SaxSource event normalization.

TEST(SaxSourceTest, ExpandsAttributesToPseudoNodes) {
  SaxSource source("<a k=\"v\"><b/></a>");
  std::vector<StreamEvent> events;
  StreamEvent e;
  for (;;) {
    ASSERT_TRUE(source.Next(&e).ok());
    if (e.kind == StreamEvent::Kind::kEnd) break;
    events.push_back(e);
  }
  // a, @k, "v", ), b, ), ).
  ASSERT_EQ(events.size(), 7u);
  EXPECT_EQ(events[0].kind, StreamEvent::Kind::kOpen);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "@k");
  EXPECT_EQ(events[2].kind, StreamEvent::Kind::kText);
  EXPECT_EQ(events[2].text, "v");
  EXPECT_EQ(events[3].kind, StreamEvent::Kind::kClose);
  EXPECT_EQ(events[4].name, "b");
  EXPECT_EQ(events[5].kind, StreamEvent::Kind::kClose);
  EXPECT_EQ(events[6].kind, StreamEvent::Kind::kClose);
}

TEST(SaxSourceTest, EmptyAttributeValueSkipsText) {
  SaxSource source("<a k=\"\"/>");
  std::vector<StreamEvent> events;
  StreamEvent e;
  for (;;) {
    ASSERT_TRUE(source.Next(&e).ok());
    if (e.kind == StreamEvent::Kind::kEnd) break;
    events.push_back(e);
  }
  // a, @k, ), ).
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].name, "@k");
  EXPECT_EQ(events[2].kind, StreamEvent::Kind::kClose);
}

// ---------------------------------------------------------------------------
// Streaming evaluation - rooted mode.

std::vector<std::string> Stream(const std::string& xpath,
                                const std::string& xml,
                                StreamRunStats* stats = nullptr) {
  auto r = EvaluateStreaming(xpath, xml, stats);
  EXPECT_TRUE(r.ok()) << xpath << ": " << r.status().ToString();
  std::vector<std::string> out;
  if (r.ok()) {
    for (const auto& d : *r) out.push_back(d.ToString());
  }
  return out;
}

TEST(StreamMatcherTest, RootedPathQuery) {
  EXPECT_EQ(Stream("/bib/book/title", kBibXml),
            (std::vector<std::string>{"0.0.1", "0.1.1"}));
  EXPECT_EQ(Stream("/bib/book[price<50]/title", kBibXml),
            (std::vector<std::string>{"0.1.1"}));
  EXPECT_EQ(Stream("/bib/book[author/last=\"Stevens\"]", kBibXml),
            (std::vector<std::string>{"0.0"}));
}

TEST(StreamMatcherTest, RootedReturnsRootItself) {
  EXPECT_EQ(Stream("/bib", kBibXml), (std::vector<std::string>{"0"}));
  EXPECT_TRUE(Stream("/other", kBibXml).empty());
  EXPECT_EQ(Stream("/bib[book]", kBibXml),
            (std::vector<std::string>{"0"}));
  EXPECT_TRUE(Stream("/bib[missing]", kBibXml).empty());
}

TEST(StreamMatcherTest, LocateModeFindsNestedCandidates) {
  EXPECT_EQ(Stream("//book", kBibXml),
            (std::vector<std::string>{"0.0", "0.1", "0.2.0"}));
  EXPECT_EQ(Stream("//book[price<10]/title", kBibXml),
            (std::vector<std::string>{"0.2.0.1"}));
  EXPECT_EQ(Stream("//book[@year=\"2000\"]", kBibXml),
            (std::vector<std::string>{"0.1"}));
}

TEST(StreamMatcherTest, UnsupportedShapesReported) {
  StreamRunStats stats;
  EXPECT_TRUE(EvaluateStreaming("/bib//book//title", kBibXml, &stats)
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(EvaluateStreaming("/bib[.=\"x\"]/book", kBibXml, &stats)
                  .status()
                  .IsNotSupported());
}

TEST(StreamMatcherTest, Proposition1BufferBound) {
  // Rooted mode buffers one second-level subtree at a time: the peak must
  // be the largest book subtree (7 nodes incl. the attribute), not the
  // document (24 nodes).
  StreamRunStats stats;
  auto r = EvaluateStreaming("/bib/book/title", kBibXml, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(stats.peak_buffered_nodes, 7u);
  EXPECT_GT(stats.events, 0u);
}

TEST(StreamMatcherTest, StatsCountCandidates) {
  StreamRunStats stats;
  ASSERT_TRUE(EvaluateStreaming("//book", kBibXml, &stats).ok());
  // Two top-level books + one news subtree containing a nested book: the
  // nested one is matched from within the news buffer... but news is not
  // a book, so buffering starts at the nested book. 3 candidates total.
  EXPECT_EQ(stats.candidates, 3u);
}

// ---------------------------------------------------------------------------
// Equivalence with the stored-document engine.

class StreamVsEngine : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamVsEngine, SameResultsAsQueryEngine) {
  Random rng(GetParam());
  int checked = 0;
  for (int round = 0; round < 25; ++round) {
    const std::string xml = testutil::RandomXml(&rng);
    DocumentStore::Options options;
    auto store = DocumentStore::Build(xml, options);
    ASSERT_TRUE(store.ok());
    QueryEngine engine(store->get());
    auto dom = DomTree::Parse(xml);
    ASSERT_TRUE(dom.ok());

    for (int q = 0; q < 8; ++q) {
      const std::string query = testutil::RandomQuery(&rng);
      StreamRunStats stats;
      auto streamed = EvaluateStreaming(query, xml, &stats);
      if (!streamed.ok()) {
        // Only the documented unsupported shapes may be rejected.
        EXPECT_TRUE(streamed.status().IsNotSupported() ||
                    streamed.status().IsParseError())
            << query << ": " << streamed.status().ToString();
        continue;
      }
      auto stored = engine.Evaluate(query);
      ASSERT_TRUE(stored.ok()) << query;
      std::vector<std::string> a, b;
      for (const auto& d : *streamed) a.push_back(d.ToString());
      for (const auto& d : *stored) b.push_back(d.ToString());
      EXPECT_EQ(a, b) << query << "\n" << xml;
      ++checked;
    }
  }
  EXPECT_GT(checked, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamVsEngine,
                         ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace nok
