#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/di_engine.h"
#include "baseline/interval_encoding.h"
#include "baseline/navigational_engine.h"
#include "baseline/region_engine.h"
#include "baseline/twigstack_engine.h"
#include "common/random.h"
#include "nok/xpath_parser.h"
#include "tests/oracle.h"
#include "tests/test_util.h"
#include "xml/dom.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><author><last>Stevens"
    "</last><first>W.</first></author><price>65.95</price></book>"
    "<book year=\"1992\"><title>Unix</title><author><last>Stevens"
    "</last><first>W.</first></author><price>65.95</price></book>"
    "<book year=\"2000\"><title>Web</title><author><last>Abiteboul"
    "</last><first>Serge</first></author><price>39.95</price></book>"
    "</bib>";

// ---------------------------------------------------------------------------
// Interval encoding substrate.

TEST(IntervalDocumentTest, BuildsNodesWithIntervals) {
  auto doc = IntervalDocument::Build("<a><b>x</b><c/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->nodes().size(), 3u);
  const auto& nodes = doc->nodes();
  EXPECT_EQ(nodes[0].level, 1);
  EXPECT_EQ(nodes[1].level, 2);
  EXPECT_TRUE(doc->Contains(0, 1));
  EXPECT_TRUE(doc->Contains(0, 2));
  EXPECT_FALSE(doc->Contains(1, 2));
  EXPECT_EQ(doc->ValueOfNode(1), "x");
  EXPECT_EQ(doc->ValueOfNode(0), "");
}

TEST(IntervalDocumentTest, TagStreamsAndValueLookup) {
  auto doc = IntervalDocument::Build(kBibXml);
  ASSERT_TRUE(doc.ok());
  auto book = doc->tags().Lookup("book");
  ASSERT_TRUE(book.has_value());
  EXPECT_EQ(doc->NodesWithTag(*book).size(), 3u);
  EXPECT_EQ(doc->NodesWithValue("Stevens").size(), 2u);
  EXPECT_TRUE(doc->NodesWithValue("absent").empty());
  // Streams are in document order.
  const auto& stream = doc->NodesWithTag(*book);
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LT(doc->nodes()[stream[i - 1]].start,
              doc->nodes()[stream[i]].start);
  }
}

// ---------------------------------------------------------------------------
// Differential harness shared by the three baselines.

std::vector<std::string> Canon(const std::vector<const DomNode*>& nodes) {
  std::vector<std::string> out;
  for (const DomNode* n : nodes) out.push_back(DomDewey(n).ToString());
  std::sort(out.begin(), out.end());
  return out;
}

/// Maps interval-document node indexes to Dewey strings via the DOM (both
/// enumerate nodes in document order).
std::vector<std::string> CanonIndexes(const DomTree& dom,
                                      const std::vector<uint32_t>& indexes) {
  std::vector<const DomNode*> doc_order;
  ForEachNode(dom.root(), [&](const DomNode* n) { doc_order.push_back(n); });
  std::vector<std::string> out;
  for (uint32_t i : indexes) {
    out.push_back(DomDewey(doc_order[i]).ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct Baselines {
  DomTree dom;
  IntervalDocument interval;
  std::unique_ptr<DiEngine> di;
  std::unique_ptr<TwigStackEngine> twig;
  std::unique_ptr<NavigationalEngine> nav;
  std::unique_ptr<RegionEngine> region;
};

std::unique_ptr<Baselines> MakeBaselines(const std::string& xml) {
  auto out = std::make_unique<Baselines>();
  auto dom = DomTree::Parse(xml);
  EXPECT_TRUE(dom.ok());
  out->dom = std::move(dom).ValueOrDie();
  auto interval = IntervalDocument::Build(xml);
  EXPECT_TRUE(interval.ok());
  out->interval = std::move(interval).ValueOrDie();
  out->di = std::make_unique<DiEngine>(&out->interval);
  out->twig = std::make_unique<TwigStackEngine>(&out->interval);
  out->nav = std::make_unique<NavigationalEngine>(&out->dom);
  out->region = std::make_unique<RegionEngine>(&out->interval);
  return out;
}

void ExpectAllEnginesMatchOracle(Baselines* b, const std::string& query) {
  auto pattern = ParseXPath(query);
  ASSERT_TRUE(pattern.ok()) << query;
  const auto want = Canon(OracleEvaluate(*pattern, b->dom));

  auto di = b->di->Evaluate(*pattern);
  if (di.ok()) {
    EXPECT_EQ(CanonIndexes(b->dom, *di), want) << "DI: " << query;
  } else {
    EXPECT_TRUE(di.status().IsNotSupported()) << "DI: " << query;
  }
  auto twig = b->twig->Evaluate(*pattern);
  if (twig.ok()) {
    EXPECT_EQ(CanonIndexes(b->dom, *twig), want) << "TwigStack: " << query;
  } else {
    EXPECT_TRUE(twig.status().IsNotSupported()) << "TwigStack: " << query;
  }
  auto nav = b->nav->Evaluate(*pattern);
  if (nav.ok()) {
    EXPECT_EQ(Canon(*nav), want) << "Navigational: " << query;
  } else {
    EXPECT_TRUE(nav.status().IsNotSupported()) << "Navigational: " << query;
  }
  // The region engine covers the full fragment: never NotSupported.
  auto region = b->region->Evaluate(*pattern);
  ASSERT_TRUE(region.ok()) << "Region: " << query;
  EXPECT_EQ(CanonIndexes(b->dom, *region), want) << "Region: " << query;
}

class BaselineBibQueries : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineBibQueries, MatchOracle) {
  auto b = MakeBaselines(kBibXml);
  ExpectAllEnginesMatchOracle(b.get(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Paperish, BaselineBibQueries,
    ::testing::Values("/bib/book", "//book", "//last",
                      "/bib/book/author/last",
                      "/bib/book[author/last=\"Stevens\"]",
                      "//book[author/last=\"Stevens\"][price<100]",
                      "//book[price<50]/title", "//book[@year=\"2000\"]",
                      "/bib/book[author][price]/title", "//book//first",
                      "/bib//last", "//author[first=\"W.\"]/last",
                      "/bib/book[title=\"Web\"]"));

TEST(DiEngineTest, ReportsWorkCounters) {
  auto b = MakeBaselines(kBibXml);
  auto pattern = ParseXPath("/bib/book[author][price]/title");
  ASSERT_TRUE(pattern.ok());
  ASSERT_TRUE(b->di->Evaluate(*pattern).ok());
  const auto& stats = b->di->last_stats();
  // A bushy query scans the table once per pattern node and joins per
  // step + per predicate.
  EXPECT_GE(stats.nodes_scanned, 4 * b->interval.nodes().size());
  EXPECT_GE(stats.joins, 4u);
  EXPECT_GT(stats.tuples_materialized, 0u);
}

TEST(DiEngineTest, SelectivityInsensitiveScanCost) {
  // The paper: DI does the same work regardless of result size.
  auto b = MakeBaselines(kBibXml);
  auto narrow = ParseXPath("/bib/book[title=\"Web\"]");
  auto wide = ParseXPath("/bib/book");
  ASSERT_TRUE(narrow.ok() && wide.ok());
  ASSERT_TRUE(b->di->Evaluate(*narrow).ok());
  const uint64_t narrow_scanned = b->di->last_stats().nodes_scanned;
  ASSERT_TRUE(b->di->Evaluate(*wide).ok());
  const uint64_t wide_scanned = b->di->last_stats().nodes_scanned;
  EXPECT_GE(narrow_scanned, wide_scanned);
}

TEST(TwigStackEngineTest, CountsPathSolutions) {
  auto b = MakeBaselines(kBibXml);
  auto pattern = ParseXPath("//book[author/last]/title");
  ASSERT_TRUE(pattern.ok());
  auto r = b->twig->Evaluate(*pattern);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_GT(b->twig->last_stats().path_solutions, 0u);
  EXPECT_GT(b->twig->last_stats().stack_pushes, 0u);
}

TEST(NavigationalEngineTest, UsesValueIndexForAnchors) {
  auto b = MakeBaselines(kBibXml);
  auto pattern = ParseXPath("//book[author/last=\"Stevens\"]");
  ASSERT_TRUE(pattern.ok());
  auto r = b->nav->Evaluate(*pattern);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(b->nav->last_stats().candidates, 2u);  // Two "Stevens" nodes.
}

TEST(RegionEngineTest, DerivesParentTable) {
  auto doc = IntervalDocument::Build("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  RegionEngine region(&*doc);
  // Doc order: a=0, b=1, c=2, d=3.
  EXPECT_EQ(region.parents(),
            (std::vector<int32_t>{-1, 0, 1, 0}));
}

TEST(RegionEngineTest, EvaluatesStructuralAndValueQueries) {
  auto b = MakeBaselines(kBibXml);
  auto pattern = ParseXPath("//book[author/last=\"Stevens\"]/title");
  ASSERT_TRUE(pattern.ok());
  auto r = b->region->Evaluate(*pattern);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  const auto& stats = b->region->last_stats();
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.join_checks, 0u);
}

TEST(RegionEngineTest, EvaluatesOrderConstraints) {
  // Sibling order: title before price holds; price before title fails.
  auto b = MakeBaselines(kBibXml);
  auto ordered = ParseXPath("//book[title/following-sibling::price]");
  ASSERT_TRUE(ordered.ok()) << ordered.status().ToString();
  auto r = b->region->Evaluate(*ordered);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // Every book lists title before price.
  auto reversed = ParseXPath("//book[price/following-sibling::title]");
  ASSERT_TRUE(reversed.ok());
  auto r2 = b->region->Evaluate(*reversed);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(RegionEngineTest, EvaluatesPositionalPredicates) {
  auto b = MakeBaselines(kBibXml);
  auto second = ParseXPath("/bib/book[2]/title");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto r = b->region->Evaluate(*second);
  ASSERT_TRUE(r.ok());
  // The second book's title is "Unix".
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(b->interval.ValueOfNode((*r)[0]), "Unix");
  // Out-of-range position selects nothing.
  auto fourth = ParseXPath("/bib/book[4]");
  ASSERT_TRUE(fourth.ok());
  auto r2 = b->region->Evaluate(*fourth);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(RegionEngineTest, PositionCountsOnlyLikeNamedSiblings) {
  auto b = MakeBaselines(
      "<r><x/><y/><x/><y/><x/></r>");
  // y[2] is the fourth child but the second y.
  auto pattern = ParseXPath("/r/y[2]");
  ASSERT_TRUE(pattern.ok());
  auto r = b->region->Evaluate(*pattern);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  // Doc order: r=0, x=1, y=2, x=3, y=4, x=5.
  EXPECT_EQ((*r)[0], 4u);
  // The wildcard counts every sibling: *[4] is that same y.
  auto wild = ParseXPath("/r/*[4]");
  ASSERT_TRUE(wild.ok());
  auto rw = b->region->Evaluate(*wild);
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ(*rw, (std::vector<uint32_t>{4}));
}

TEST(RegionEngineTest, EvaluatesFollowingAndPrecedingAxes) {
  auto b = MakeBaselines(kBibXml);
  auto following = ParseXPath("//book[following::book]");
  ASSERT_TRUE(following.ok());
  auto r = b->region->Evaluate(*following);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // First two books have a following book.
  auto preceding = ParseXPath("//book[preceding::book]");
  ASSERT_TRUE(preceding.ok());
  auto r2 = b->region->Evaluate(*preceding);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2u);  // Last two books have a preceding book.
}

// Differential fuzz across all three baselines.
class BaselinesVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselinesVsOracle, RandomQueriesOnRandomDocuments) {
  Random rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    const std::string xml = testutil::RandomXml(&rng);
    auto b = MakeBaselines(xml);
    for (int q = 0; q < 10; ++q) {
      const std::string query = testutil::RandomQuery(&rng);
      if (!ParseXPath(query).ok()) continue;
      ExpectAllEnginesMatchOracle(b.get(), query);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinesVsOracle,
                         ::testing::Values(51, 52, 53));

}  // namespace
}  // namespace nok
