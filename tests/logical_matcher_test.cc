#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "nok/logical_matcher.h"
#include "nok/nok_partition.h"
#include "nok/tree_cursor.h"
#include "nok/xpath_parser.h"
#include "tests/oracle.h"
#include "tests/test_util.h"

namespace nok {
namespace {

/// Runs the single-NoK-tree matcher (DOM cursor) on a rooted query and
/// returns the returning node's matches as Dewey strings.
std::vector<std::string> MatchRooted(const std::string& xpath,
                                     const std::string& xml) {
  auto pattern = ParseXPath(xpath);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  const NokPartition partition = PartitionPattern(*pattern);
  EXPECT_EQ(partition.trees.size(), 1u)
      << "MatchRooted needs a pure-local query: " << xpath;
  auto tree = DomTree::Parse(xml);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();

  DomCursor cursor(&*tree);
  NokMatcher<DomCursor> matcher(&partition.trees[0], &cursor,
                                ComputeDesignated(partition, 0));
  NokMatcher<DomCursor>::MatchLists lists(partition.trees[0].nodes.size());
  auto ok = matcher.Match(cursor.VirtualRoot(), &lists);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  std::vector<std::string> out;
  if (*ok) {
    const int rn = partition.trees[0].returning_node;
    for (const DomNode* node : lists[static_cast<size_t>(rn)]) {
      out.push_back(DomDewey(node).ToString());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LogicalMatcherTest, MatchesSimpleChildren) {
  const std::string xml = "<a><b/><b/><c/></a>";
  EXPECT_EQ(MatchRooted("/a/b", xml),
            (std::vector<std::string>{"0.0", "0.1"}));
  EXPECT_EQ(MatchRooted("/a/c", xml), (std::vector<std::string>{"0.2"}));
  EXPECT_TRUE(MatchRooted("/a/d", xml).empty());
  EXPECT_TRUE(MatchRooted("/x/b", xml).empty());
}

TEST(LogicalMatcherTest, ValueConstraints) {
  const std::string xml =
      "<a><b><c>hi</c></b><b><c>lo</c></b><b><c>hi</c></b></a>";
  EXPECT_EQ(MatchRooted("/a/b[c=\"hi\"]", xml),
            (std::vector<std::string>{"0.0", "0.2"}));
  EXPECT_EQ(MatchRooted("/a/b/c[.=\"lo\"]", xml),
            (std::vector<std::string>{"0.1.0"}));
}

TEST(LogicalMatcherTest, SharedWitnessForPredicates) {
  // XPath existential semantics: one child may witness two predicates.
  const std::string xml = "<a><b><c/><d/></b></a>";
  EXPECT_EQ(MatchRooted("/a/b[c][d]", xml),
            (std::vector<std::string>{"0.0"}));
  EXPECT_EQ(MatchRooted("/a[b/c][b/d]", xml),
            (std::vector<std::string>{"0"}));
}

TEST(LogicalMatcherTest, PaperExampleTwoBranches) {
  // The paper's /a[b/c][b/d] discussion (Section 3): both branches must
  // match, possibly via different b children.
  const std::string xml = "<a><b><c/></b><b><d/></b></a>";
  EXPECT_EQ(MatchRooted("/a[b/c][b/d]", xml),
            (std::vector<std::string>{"0"}));
  const std::string xml_missing = "<a><b><c/></b><b><c/></b></a>";
  EXPECT_TRUE(MatchRooted("/a[b/c][b/d]", xml_missing).empty());
}

TEST(LogicalMatcherTest, ReturningNodeCollectsAllMatches) {
  const std::string xml =
      "<a><b><e/></b><b><e/><e/></b><c><e/></c></a>";
  EXPECT_EQ(MatchRooted("/a/b/e", xml),
            (std::vector<std::string>{"0.0.0", "0.1.0", "0.1.1"}));
}

TEST(LogicalMatcherTest, SiblingOrderConstraints) {
  const std::string in_order = "<a><b/><c/></a>";
  const std::string out_of_order = "<a><c/><b/></a>";
  const std::string same_only = "<a><b/></a>";
  EXPECT_EQ(MatchRooted("/a/b/following-sibling::c", in_order),
            (std::vector<std::string>{"0.1"}));
  EXPECT_TRUE(
      MatchRooted("/a/b/following-sibling::c", out_of_order).empty());
  EXPECT_TRUE(MatchRooted("/a/b/following-sibling::c", same_only).empty());
  // Strictness: the same node cannot witness both sides.
  EXPECT_TRUE(MatchRooted("/a/b/following-sibling::b", same_only).empty());
  EXPECT_EQ(MatchRooted("/a/b/following-sibling::b", "<a><b/><b/></a>"),
            (std::vector<std::string>{"0.1"}));
}

TEST(LogicalMatcherTest, WildcardSteps) {
  const std::string xml = "<a><b><x/></b><c><x/></c></a>";
  EXPECT_EQ(MatchRooted("/a/*/x", xml),
            (std::vector<std::string>{"0.0.0", "0.1.0"}));
}

TEST(LogicalMatcherTest, AttributeNodes) {
  const std::string xml = "<a><b k=\"1\"/><b k=\"2\"/></a>";
  EXPECT_EQ(MatchRooted("/a/b[@k=\"2\"]", xml),
            (std::vector<std::string>{"0.1"}));
  EXPECT_EQ(MatchRooted("/a/b/@k", xml),
            (std::vector<std::string>{"0.0.0", "0.1.0"}));
}

// Differential property test against the brute-force oracle, restricted
// to rooted (single-NoK-tree) queries.
class MatcherVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherVsOracle, RandomRootedQueries) {
  Random rng(GetParam());
  int checked = 0;
  for (int round = 0; round < 60; ++round) {
    const std::string xml = testutil::RandomXml(&rng);
    auto tree = DomTree::Parse(xml);
    ASSERT_TRUE(tree.ok());
    // Build a rooted random query: child steps only at the top level so
    // the partition stays a single tree.
    std::string query = "/" + tree->root()->name;
    Random qrng(rng.Next());
    for (int s = 0; s < 2; ++s) {
      query += "/" + std::string(1, static_cast<char>('a' + qrng.Uniform(5)));
    }
    if (qrng.Bernoulli(0.5)) {
      query.insert(query.find('/', 1), std::string("[") +
                                           static_cast<char>(
                                               'a' + qrng.Uniform(5)) +
                                           "]");
    }
    auto pattern = ParseXPath(query);
    ASSERT_TRUE(pattern.ok()) << query;
    if (PartitionPattern(*pattern).trees.size() != 1) continue;

    auto got = MatchRooted(query, xml);
    std::vector<std::string> want;
    for (const DomNode* node : OracleEvaluate(*pattern, *tree)) {
      want.push_back(DomDewey(node).ToString());
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << query << "\n" << xml;
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherVsOracle,
                         ::testing::Values(100, 200, 300));

}  // namespace
}  // namespace nok
