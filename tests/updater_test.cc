#include <gtest/gtest.h>

#include <functional>

#include "common/random.h"
#include "encoding/document_store.h"
#include "encoding/tag_summary.h"
#include "encoding/updater.h"
#include "nok/query_engine.h"
#include "tests/oracle.h"
#include "tests/test_util.h"
#include "xml/dom.h"
#include "xml/serializer.h"

namespace nok {
namespace {

/// Verifies that the store's structure, values and indexes exactly match
/// the given DOM.
void ExpectStoreMatchesDom(DocumentStore* store, const DomTree& dom) {
  ASSERT_EQ(store->stats().node_count, dom.node_count());
  // Lockstep DFS over structure + values.
  std::function<void(const DomNode*, StorePos)> verify =
      [&](const DomNode* node, StorePos pos) {
        auto tag = store->tree()->TagAt(pos);
        ASSERT_TRUE(tag.ok());
        EXPECT_EQ(store->tags()->Name(*tag), node->name);
        const DeweyId id = DomDewey(node);
        auto value = store->ValueOf(id);
        ASSERT_TRUE(value.ok()) << id.ToString();
        if (node->value.empty()) {
          EXPECT_FALSE(value->has_value()) << id.ToString();
        } else {
          ASSERT_TRUE(value->has_value()) << id.ToString();
          EXPECT_EQ(**value, node->value) << id.ToString();
        }
        // Children.
        auto child = store->tree()->FirstChild(pos);
        ASSERT_TRUE(child.ok());
        size_t index = 0;
        std::optional<StorePos> current = *child;
        while (current.has_value()) {
          ASSERT_LT(index, node->children.size()) << id.ToString();
          verify(node->children[index].get(), *current);
          auto sib = store->tree()->FollowingSibling(*current);
          ASSERT_TRUE(sib.ok());
          current = *sib;
          ++index;
        }
        EXPECT_EQ(index, node->children.size()) << id.ToString();
      };
  verify(dom.root(), store->tree()->RootPos());

  // Index integrity: every node locatable via B+t with the right dewey.
  ForEachNode(dom.root(), [&](const DomNode* node) {
    auto tag = store->tags()->Lookup(node->name);
    ASSERT_TRUE(tag.has_value());
    auto nodes = store->NodesWithTag(*tag);
    ASSERT_TRUE(nodes.ok());
    const DeweyId id = DomDewey(node);
    auto has_dewey = [&](const auto& list) {
      for (const auto& entry : list) {
        if (entry.dewey == id) return true;
      }
      return false;
    };
    EXPECT_TRUE(has_dewey(*nodes)) << "B+t lost " << id.ToString();
    if (!node->value.empty()) {
      auto with_value = store->NodesWithValue(Slice(node->value));
      ASSERT_TRUE(with_value.ok());
      EXPECT_TRUE(has_dewey(*with_value)) << "B+v lost " << id.ToString();
    }
  });
}

/// Applies the same insertion to a DOM tree (parent found by Dewey ID).
void DomInsert(DomTree* dom, const DeweyId& parent, uint32_t index,
               const std::string& fragment) {
  auto frag = DomTree::Parse(fragment);
  ASSERT_TRUE(frag.ok());
  DomNode* node = dom->mutable_root();
  const auto& c = parent.components();
  for (size_t i = 1; i < c.size(); ++i) {
    node = node->children[c[i]].get();
  }
  // Deep-move the fragment root in.
  auto detach = [&](DomTree&& t) {
    // Re-parse to get a fresh owning node (DomTree keeps its root).
    auto again = DomTree::Parse(SerializeTree(t));
    EXPECT_TRUE(again.ok());
    return again;
  };
  auto owned = detach(std::move(*frag));
  ASSERT_TRUE(owned.ok());
  // Steal the root out of the re-parsed tree via serialization into a
  // plain recursive copy.
  std::function<std::unique_ptr<DomNode>(const DomNode*)> clone =
      [&](const DomNode* src) {
        auto copy = std::make_unique<DomNode>();
        copy->name = src->name;
        copy->value = src->value;
        for (const auto& child : src->children) {
          auto c2 = clone(child.get());
          c2->parent = copy.get();
          copy->children.push_back(std::move(c2));
        }
        return copy;
      };
  auto fresh = clone(owned->root());
  fresh->parent = node;
  node->children.insert(
      node->children.begin() + static_cast<long>(index), std::move(fresh));
  dom->Renumber();
}

void DomDelete(DomTree* dom, const DeweyId& target) {
  DomNode* node = dom->mutable_root();
  const auto& c = target.components();
  for (size_t i = 1; i + 1 < c.size(); ++i) {
    node = node->children[c[i]].get();
  }
  node->children.erase(node->children.begin() +
                       static_cast<long>(c.back()));
  dom->Renumber();
}

constexpr const char* kBase =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><price>65.95</price></book>"
    "<book year=\"2000\"><title>Web</title><price>39.95</price></book>"
    "</bib>";

TEST(UpdaterTest, InsertLeafSubtreeInPlace) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());

  const std::string frag = "<publisher>AW</publisher>";
  ASSERT_TRUE(store->InsertSubtree(DeweyId({0, 0}), 2, frag).ok());
  DomInsert(&*dom, DeweyId({0, 0}), 2, frag);
  ExpectStoreMatchesDom(store.get(), *dom);
}

TEST(UpdaterTest, InsertAtEveryPosition) {
  for (uint32_t position = 0; position <= 3; ++position) {
    auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
    ASSERT_TRUE(store_r.ok());
    auto& store = *store_r;
    auto dom = DomTree::Parse(kBase);
    ASSERT_TRUE(dom.ok());
    const std::string frag =
        "<note lang=\"en\"><p>first</p><p>second</p></note>";
    ASSERT_TRUE(
        store->InsertSubtree(DeweyId({0, 0}), position, frag).ok())
        << position;
    DomInsert(&*dom, DeweyId({0, 0}), position, frag);
    ExpectStoreMatchesDom(store.get(), *dom);
  }
}

TEST(UpdaterTest, InsertRejectsBadPosition) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  EXPECT_TRUE((*store_r)
                  ->InsertSubtree(DeweyId({0, 0}), 9, "<x/>")
                  .IsInvalidArgument());
}

TEST(UpdaterTest, LargeInsertSplitsPages) {
  DocumentStore::Options options;
  options.page_size = 256;
  auto store_r = DocumentStore::Build(kBase, options);
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());

  std::string frag = "<appendix>";
  for (int i = 0; i < 120; ++i) {
    frag += "<entry>e" + std::to_string(i) + "</entry>";
  }
  frag += "</appendix>";
  const size_t pages_before = store->tree()->chain_length();
  ASSERT_TRUE(store->InsertSubtree(DeweyId({0}), 1, frag).ok());
  DomInsert(&*dom, DeweyId({0}), 1, frag);
  EXPECT_GT(store->tree()->chain_length(), pages_before);
  ExpectStoreMatchesDom(store.get(), *dom);
}

TEST(UpdaterTest, DeleteSubtreeMiddleChild) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());

  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 0, 1})).ok());  // title.
  DomDelete(&*dom, DeweyId({0, 0, 1}));
  ExpectStoreMatchesDom(store.get(), *dom);
}

TEST(UpdaterTest, DeleteWholeEntry) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());

  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 0})).ok());
  DomDelete(&*dom, DeweyId({0, 0}));
  ExpectStoreMatchesDom(store.get(), *dom);
}

TEST(UpdaterTest, DeleteRootRejected) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  EXPECT_TRUE(
      (*store_r)->DeleteSubtree(DeweyId({0})).IsInvalidArgument());
}

TEST(UpdaterTest, QueriesStayCorrectAfterUpdates) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());

  ASSERT_TRUE(store
                  ->InsertSubtree(DeweyId({0}), 0,
                                  "<book year=\"1990\"><title>Old</title>"
                                  "<price>10</price></book>")
                  .ok());
  DomInsert(&*dom, DeweyId({0}), 0,
            "<book year=\"1990\"><title>Old</title><price>10</price>"
            "</book>");
  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 2, 1})).ok());
  DomDelete(&*dom, DeweyId({0, 2, 1}));

  QueryEngine engine(store.get());
  for (const char* q :
       {"/bib/book", "//title", "/bib/book[price<20]", "//book[@year]",
        "/bib/book[title=\"Old\"]/price"}) {
    auto got = engine.Evaluate(q);
    ASSERT_TRUE(got.ok()) << q;
    auto want = OracleEvaluateDewey(q, *dom);
    ASSERT_TRUE(want.ok()) << q;
    EXPECT_EQ(*got, *want) << q;
  }
}

TEST(UpdaterTest, MultiPageDeleteUnlinksAndFreeListReuses) {
  DocumentStore::Options options;
  options.page_size = 256;
  // A document with one large middle entry spanning several pages.
  std::string xml = "<r><first>a</first><big>";
  for (int i = 0; i < 600; ++i) {
    xml += "<e>x" + std::to_string(i) + "</e>";
  }
  xml += "</big><last>z</last></r>";
  auto store_r = DocumentStore::Build(xml, options);
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(xml);
  ASSERT_TRUE(dom.ok());

  const size_t chain_before = store->tree()->chain_length();
  const uint64_t file_before = store->tree()->SizeBytes();
  ASSERT_GT(chain_before, 4u);

  // Delete the multi-page subtree: the chain must shrink.
  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 1})).ok());
  DomDelete(&*dom, DeweyId({0, 1}));
  ExpectStoreMatchesDom(store.get(), *dom);
  EXPECT_LT(store->tree()->chain_length(), chain_before);
  EXPECT_EQ(store->tree()->SizeBytes(), file_before);  // Pages recycled.

  // A large insertion draws pages from the free list before growing the
  // file.
  std::string frag = "<rebuilt>";
  for (int i = 0; i < 400; ++i) {
    frag += "<n>y" + std::to_string(i) + "</n>";
  }
  frag += "</rebuilt>";
  ASSERT_TRUE(store->InsertSubtree(DeweyId({0}), 1, frag).ok());
  DomInsert(&*dom, DeweyId({0}), 1, frag);
  ExpectStoreMatchesDom(store.get(), *dom);
  EXPECT_EQ(store->tree()->SizeBytes(), file_before);
}

TEST(UpdaterTest, DeleteFirstChildAtPageStart) {
  // Deleting the very first child (byte offset right after the root's
  // open symbol) exercises the from-page trimming edge.
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());
  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 0})).ok());
  DomDelete(&*dom, DeweyId({0, 0}));
  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 0})).ok());
  DomDelete(&*dom, DeweyId({0, 0}));
  ExpectStoreMatchesDom(store.get(), *dom);
  // Only the empty root remains; it must still answer queries.
  QueryEngine engine(store.get());
  auto r = engine.Evaluate("/bib");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  auto none = engine.Evaluate("//book");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

/// Every chain page's in-memory tag summary must match a fresh recompute
/// from the page body (RecomputeHeader maintains it through edits).
void ExpectSummariesConsistent(DocumentStore* store) {
  StringStore* tree = store->tree();
  for (size_t i = 0; i < tree->chain_length(); ++i) {
    const PageId page = tree->chain_page(i);
    auto expect = tree->ComputeTagSummary(page);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    EXPECT_EQ(tree->tag_summary(page), *expect) << "page " << page;
  }
}

TEST(UpdaterTest, TagSummariesTrackInsertsAndDeletes) {
  DocumentStore::Options options;
  options.page_size = 256;
  auto store_r = DocumentStore::Build(kBase, options);
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  ExpectSummariesConsistent(store.get());

  // In-place insert introduces a new tag on an existing page.
  ASSERT_TRUE(
      store->InsertSubtree(DeweyId({0, 0}), 2, "<isbn>1</isbn>").ok());
  ExpectSummariesConsistent(store.get());

  // A multi-page insert splits pages and allocates new ones.
  std::string frag = "<appendix>";
  for (int i = 0; i < 120; ++i) {
    frag += "<entry>e" + std::to_string(i) + "</entry>";
  }
  frag += "</appendix>";
  ASSERT_TRUE(store->InsertSubtree(DeweyId({0}), 1, frag).ok());
  ExpectSummariesConsistent(store.get());

  // Deleting the only <appendix> subtree must drop its bit from the
  // affected pages (stale bits would be permanent false positives).
  ASSERT_TRUE(store->DeleteSubtree(DeweyId({0, 1})).ok());
  ExpectSummariesConsistent(store.get());
  auto appendix = store->tags()->Lookup("appendix");
  ASSERT_TRUE(appendix.has_value());
  StringStore* tree = store->tree();
  for (size_t i = 0; i < tree->chain_length(); ++i) {
    EXPECT_FALSE(SummaryMayContain(tree->tag_summary(tree->chain_page(i)),
                                   *appendix))
        << "stale appendix bit on page " << tree->chain_page(i);
  }
}

TEST(UpdaterTest, PositionsGoStaleAndRefresh) {
  auto store_r = DocumentStore::Build(kBase, DocumentStore::Options());
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(kBase);
  ASSERT_TRUE(dom.ok());
  EXPECT_TRUE(store->positions_fresh());

  ASSERT_TRUE(store
                  ->InsertSubtree(DeweyId({0}), 1,
                                  "<book year=\"1999\"><title>Mid</title>"
                                  "<price>20</price></book>")
                  .ok());
  DomInsert(&*dom, DeweyId({0}), 1,
            "<book year=\"1999\"><title>Mid</title><price>20</price>"
            "</book>");
  EXPECT_FALSE(store->positions_fresh());

  // Stale positions: Locate falls back to navigation and still works.
  ExpectStoreMatchesDom(store.get(), *dom);

  ASSERT_TRUE(store->RefreshPositions().ok());
  EXPECT_TRUE(store->positions_fresh());
  ExpectStoreMatchesDom(store.get(), *dom);

  // Fresh positions point at the right physical nodes.
  auto book_tag = store->tags()->Lookup("book");
  ASSERT_TRUE(book_tag.has_value());
  auto books = store->NodesWithTag(*book_tag);
  ASSERT_TRUE(books.ok());
  ASSERT_EQ(books->size(), 3u);
  for (const auto& entry : *books) {
    auto pos = store->tree()->PosForGlobal(entry.pos);
    ASSERT_TRUE(pos.ok());
    auto tag = store->tree()->TagAt(*pos);
    ASSERT_TRUE(tag.ok());
    EXPECT_EQ(*tag, *book_tag) << entry.dewey.ToString();
  }
  // Refresh is idempotent.
  ASSERT_TRUE(store->RefreshPositions().ok());
  // Queries use the fast path again and stay correct.
  QueryEngine engine(store.get());
  auto result = engine.Evaluate("/bib/book[title=\"Mid\"]");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].ToString(), "0.1");
}

class UpdaterFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdaterFuzz, RandomUpdateSequencesMatchDom) {
  Random rng(GetParam());
  testutil::RandomDocOptions doc_options;
  doc_options.max_nodes = 60;
  const std::string xml = testutil::RandomXml(&rng, doc_options);
  DocumentStore::Options options;
  options.page_size = 256;  // Small pages: exercise splits/unlinks.
  auto store_r = DocumentStore::Build(xml, options);
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r;
  auto dom = DomTree::Parse(xml);
  ASSERT_TRUE(dom.ok());

  for (int op = 0; op < 12; ++op) {
    // Pick a random existing node via the DOM.
    std::vector<const DomNode*> nodes;
    ForEachNode(dom->root(), [&](const DomNode* n) { nodes.push_back(n); });
    const DomNode* victim = nodes[rng.Uniform(nodes.size())];
    const DeweyId id = DomDewey(victim);
    if (rng.Bernoulli(0.5) && victim->parent != nullptr) {
      ASSERT_TRUE(store->DeleteSubtree(id).ok()) << id.ToString();
      DomDelete(&*dom, id);
    } else {
      const std::string frag = testutil::RandomXml(&rng, {.max_nodes = 10});
      const uint32_t position = static_cast<uint32_t>(rng.Uniform(
          victim->children.size() + 1));
      ASSERT_TRUE(store->InsertSubtree(id, position, frag).ok())
          << id.ToString() << " @ " << position;
      DomInsert(&*dom, id, position, frag);
    }
    ExpectStoreMatchesDom(store.get(), *dom);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdaterFuzz,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace nok
