#include <gtest/gtest.h>

#include <filesystem>

#include "encoding/document_store.h"
#include "tests/oracle.h"
#include "xml/dom.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><author><last>Stevens"
    "</last><first>W.</first></author><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title><author><last>"
    "Abiteboul</last><first>Serge</first></author><price>39.95</price>"
    "</book>"
    "</bib>";

std::unique_ptr<DocumentStore> Build(const std::string& xml) {
  auto r = DocumentStore::Build(xml, DocumentStore::Options());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(DocumentStoreTest, StatsMatchDom) {
  auto store = Build(kBibXml);
  auto dom = DomTree::Parse(kBibXml);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(store->stats().node_count, dom->node_count());
  EXPECT_EQ(store->stats().max_depth, dom->max_depth());
  EXPECT_EQ(store->stats().distinct_tags, dom->distinct_tags());
  EXPECT_DOUBLE_EQ(store->stats().avg_depth, dom->avg_depth());
  EXPECT_GT(store->stats().tree_bytes, 0u);
  EXPECT_GT(store->stats().tag_index_bytes, 0u);
  EXPECT_GT(store->stats().value_index_bytes, 0u);
  EXPECT_GT(store->stats().id_index_bytes, 0u);
  EXPECT_GT(store->stats().data_bytes, 0u);
}

TEST(DocumentStoreTest, ValueOfReadsThroughIndexes) {
  auto store = Build(kBibXml);
  // /bib/book[0]/author/last = 0.1.1.0 (after @year at index 0).
  const DeweyId last({0, 0, 2, 0});
  auto value = store->ValueOf(last);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  ASSERT_TRUE(value->has_value());
  EXPECT_EQ(**value, "Stevens");
  // The book element itself has no text value.
  auto book = store->ValueOf(DeweyId({0, 0}));
  ASSERT_TRUE(book.ok());
  EXPECT_FALSE(book->has_value());
  // Attribute node value.
  auto year = store->ValueOf(DeweyId({0, 0, 0}));
  ASSERT_TRUE(year.ok());
  ASSERT_TRUE(year->has_value());
  EXPECT_EQ(**year, "1994");
  // Unknown node.
  auto nothing = store->ValueOf(DeweyId({0, 9, 9}));
  ASSERT_TRUE(nothing.ok());
  EXPECT_FALSE(nothing->has_value());
}

TEST(DocumentStoreTest, NodesWithTagInDocumentOrder) {
  auto store = Build(kBibXml);
  auto book_tag = store->tags()->Lookup("book");
  ASSERT_TRUE(book_tag.has_value());
  auto books = store->NodesWithTag(*book_tag);
  ASSERT_TRUE(books.ok());
  ASSERT_EQ(books->size(), 2u);
  EXPECT_EQ((*books)[0].dewey.ToString(), "0.0");
  EXPECT_EQ((*books)[1].dewey.ToString(), "0.1");
  // Stored positions round-trip to the right physical node.
  EXPECT_TRUE(store->positions_fresh());
  auto pos = store->tree()->PosForGlobal((*books)[1].pos);
  ASSERT_TRUE(pos.ok());
  auto tag_at = store->tree()->TagAt(*pos);
  ASSERT_TRUE(tag_at.ok());
  EXPECT_EQ(*tag_at, *book_tag);
  EXPECT_EQ(store->CountTag(*book_tag), 2u);

  auto limited = store->NodesWithTag(*book_tag, 1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 1u);
}

TEST(DocumentStoreTest, NodesWithValueVerifiesCollisions) {
  auto store = Build(kBibXml);
  auto stevens = store->NodesWithValue(Slice("Stevens"));
  ASSERT_TRUE(stevens.ok());
  ASSERT_EQ(stevens->size(), 1u);
  EXPECT_EQ((*stevens)[0].dewey.ToString(), "0.0.2.0");
  auto absent = store->NodesWithValue(Slice("not-here"));
  ASSERT_TRUE(absent.ok());
  EXPECT_TRUE(absent->empty());

  auto estimate = store->EstimateValueCount(Slice("Stevens"), 10);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 1u);
}

TEST(DocumentStoreTest, LocateWalksToAnyNode) {
  auto store = Build(kBibXml);
  auto dom = DomTree::Parse(kBibXml);
  ASSERT_TRUE(dom.ok());
  // Every DOM node must be locatable and carry the right tag.
  ForEachNode(dom->root(), [&](const DomNode* node) {
    const DeweyId id = DomDewey(node);
    auto pos = store->Locate(id);
    ASSERT_TRUE(pos.ok()) << id.ToString();
    auto tag = store->tree()->TagAt(*pos);
    ASSERT_TRUE(tag.ok());
    EXPECT_EQ(store->tags()->Name(*tag), node->name) << id.ToString();
  });
  EXPECT_TRUE(store->Locate(DeweyId({0, 7})).status().IsNotFound());
  EXPECT_FALSE(store->Locate(DeweyId({1})).ok());
}

TEST(DocumentStoreTest, PersistsAndReopens) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("nokxml_docstore_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  DocumentStore::Options options;
  options.dir = dir;
  {
    auto store = DocumentStore::Build(kBibXml, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->stats().node_count, 15u);
    auto stevens = (*store)->NodesWithValue(Slice("Stevens"));
    ASSERT_TRUE(stevens.ok());
    EXPECT_EQ(stevens->size(), 1u);
    auto value = (*store)->ValueOf(DeweyId({0, 0, 2, 0}));
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(**value, "Stevens");
  }
  std::filesystem::remove_all(dir);
}

TEST(DocumentStoreTest, BuildRejectsMalformedXml) {
  auto r = DocumentStore::Build("<a><b></a>", DocumentStore::Options());
  EXPECT_FALSE(r.ok());
}

TEST(DocumentStoreTest, IdIndexCoversEveryNode) {
  auto store = Build(kBibXml);
  EXPECT_EQ(store->id_index()->num_entries(), store->stats().node_count);
  EXPECT_EQ(store->tag_index()->num_entries(), store->stats().node_count);
}

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// Path index (B+p, the Section 8 extension).

namespace nok {
namespace {

TEST(DocumentStoreTest, PathIndexCoversEveryNode) {
  auto store = Build(kBibXml);
  EXPECT_EQ(store->path_index()->num_entries(), store->stats().node_count);
  EXPECT_GT(store->stats().path_index_bytes, 0u);

  auto key_for = [&](std::initializer_list<const char*> names) {
    std::vector<TagId> path;
    for (const char* name : names) {
      auto id = store->tags()->Lookup(name);
      EXPECT_TRUE(id.has_value()) << name;
      path.push_back(*id);
    }
    return path;
  };

  auto lasts = store->NodesWithPath(
      key_for({"bib", "book", "author", "last"}));
  ASSERT_TRUE(lasts.ok());
  ASSERT_EQ(lasts->size(), 2u);
  EXPECT_EQ((*lasts)[0].dewey.ToString(), "0.0.2.0");
  EXPECT_EQ((*lasts)[1].dewey.ToString(), "0.1.2.0");

  auto count = store->EstimatePathCount(key_for({"bib", "book"}), 0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);

  // A path that exists tag-wise but not shape-wise.
  auto none = store->NodesWithPath(key_for({"bib", "author"}));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(DocumentStoreTest, PathIndexSurvivesRefreshAfterUpdate) {
  auto store = Build(kBibXml);
  ASSERT_TRUE(store
                  ->InsertSubtree(DeweyId({0}), 0,
                                  "<book year=\"1990\"><title>T0</title>"
                                  "<author><last>New</last></author>"
                                  "<price>5</price></book>")
                  .ok());
  ASSERT_TRUE(store->RefreshPositions().ok());
  EXPECT_EQ(store->path_index()->num_entries(),
            store->stats().node_count);
  std::vector<TagId> path{*store->tags()->Lookup("bib"),
                          *store->tags()->Lookup("book"),
                          *store->tags()->Lookup("author"),
                          *store->tags()->Lookup("last")};
  auto lasts = store->NodesWithPath(path);
  ASSERT_TRUE(lasts.ok());
  EXPECT_EQ(lasts->size(), 3u);
  EXPECT_EQ((*lasts)[0].dewey.ToString(), "0.0.2.0");  // The new book.
}

}  // namespace
}  // namespace nok
