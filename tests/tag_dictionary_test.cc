#include <gtest/gtest.h>

#include "encoding/tag_dictionary.h"

namespace nok {
namespace {

TEST(TagDictionaryTest, InternIsIdempotent) {
  TagDictionary dict;
  auto a1 = dict.Intern("book");
  auto a2 = dict.Intern("book");
  auto b = dict.Intern("author");
  ASSERT_TRUE(a1.ok() && a2.ok() && b.ok());
  EXPECT_EQ(*a1, *a2);
  EXPECT_NE(*a1, *b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(*a1), "book");
  EXPECT_EQ(dict.Name(*b), "author");
}

TEST(TagDictionaryTest, LookupWithoutIntern) {
  TagDictionary dict;
  ASSERT_TRUE(dict.Intern("x").ok());
  EXPECT_TRUE(dict.Lookup("x").has_value());
  EXPECT_FALSE(dict.Lookup("y").has_value());
}

TEST(TagDictionaryTest, AttributePseudoTags) {
  TagDictionary dict;
  auto el = dict.Intern("year");
  auto attr = dict.Intern("@year");
  ASSERT_TRUE(el.ok() && attr.ok());
  EXPECT_NE(*el, *attr);
}

TEST(TagDictionaryTest, OccurrenceCounting) {
  TagDictionary dict;
  TagId a = *dict.Intern("a");
  TagId b = *dict.Intern("b");
  dict.AddOccurrence(a, 3);
  dict.AddOccurrence(b);
  EXPECT_EQ(dict.OccurrenceCount(a), 3u);
  EXPECT_EQ(dict.OccurrenceCount(b), 1u);
  EXPECT_EQ(dict.total_occurrences(), 4u);
  dict.SubOccurrence(a, 2);
  EXPECT_EQ(dict.OccurrenceCount(a), 1u);
  EXPECT_EQ(dict.total_occurrences(), 2u);
  EXPECT_EQ(dict.OccurrenceCount(kInvalidTag), 0u);
}

TEST(TagDictionaryTest, SerializeRoundTrip) {
  TagDictionary dict;
  for (int i = 0; i < 200; ++i) {
    TagId id = *dict.Intern("tag" + std::to_string(i));
    dict.AddOccurrence(id, static_cast<uint64_t>(i));
  }
  const std::string blob = dict.Serialize();
  auto restored = TagDictionary::Deserialize(Slice(blob));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 200u);
  for (int i = 0; i < 200; ++i) {
    auto id = restored->Lookup("tag" + std::to_string(i));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(restored->Name(*id), "tag" + std::to_string(i));
    EXPECT_EQ(restored->OccurrenceCount(*id), static_cast<uint64_t>(i));
  }
}

TEST(TagDictionaryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(TagDictionary::Deserialize(Slice("\xff\xff\xff")).ok());
}

TEST(TagDictionaryTest, IdsAreDense) {
  TagDictionary dict;
  EXPECT_EQ(*dict.Intern("first"), 1);
  EXPECT_EQ(*dict.Intern("second"), 2);
  EXPECT_EQ(*dict.Intern("third"), 3);
}

}  // namespace
}  // namespace nok
