// Tests for the annotated mutex wrappers (common/mutex.h) and the
// thread-safety annotation macros (common/thread_annotations.h).
//
// Two claims are checked here:
//   1. Zero overhead: on compilers without the attributes (GCC) every
//      macro expands to nothing and the wrappers add no state beyond
//      the std primitives they hold.
//   2. The wrappers behave as mutex / RAII lock / condvar at runtime.
//
// The negative side — that clang rejects code which touches GUARDED_BY
// state without the lock — cannot live in a test that must compile; it
// is covered by the NOK_THREAD_SAFETY CMake mode's try_compile of
// tests/fixtures/thread_safety_broken.cc and by `ci/run_checks.sh
// thread-safety` (see DESIGN.md section 12).

#include "common/mutex.h"

#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"
#include "gtest/gtest.h"

namespace nok {
namespace {

// --- Claim 1: zero overhead -----------------------------------------------

// The attributes never change layout; the wrappers must be exactly as
// big as what they wrap on every compiler.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "nok::Mutex must add no state to std::mutex");
static_assert(sizeof(CondVar) == sizeof(std::condition_variable),
              "nok::CondVar must add no state to std::condition_variable");

// Locks are pinned resources: no copies, no moves.
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_copy_assignable_v<Mutex>);
static_assert(!std::is_copy_constructible_v<MutexLock>);
static_assert(!std::is_copy_assignable_v<MutexLock>);
static_assert(!std::is_copy_constructible_v<CondVar>);

#if !defined(__clang__)
// Outside clang the annotation macros must expand to nothing at all —
// stringizing an application must produce the empty string.  (Under
// clang they expand to __attribute__((...)), which is the point.)
#define NOK_TSA_TEST_STR2(x) #x
#define NOK_TSA_TEST_STR(x) NOK_TSA_TEST_STR2(x)
static_assert(sizeof(NOK_TSA_TEST_STR(GUARDED_BY(dummy))) == 1,
              "GUARDED_BY must expand to nothing on non-clang");
static_assert(sizeof(NOK_TSA_TEST_STR(REQUIRES(dummy))) == 1,
              "REQUIRES must expand to nothing on non-clang");
static_assert(sizeof(NOK_TSA_TEST_STR(EXCLUDES(dummy))) == 1,
              "EXCLUDES must expand to nothing on non-clang");
static_assert(sizeof(NOK_TSA_TEST_STR(SCOPED_CAPABILITY)) == 1,
              "SCOPED_CAPABILITY must expand to nothing on non-clang");
static_assert(sizeof(NOK_TSA_TEST_STR(NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "NO_THREAD_SAFETY_ANALYSIS must expand to nothing");
#undef NOK_TSA_TEST_STR
#undef NOK_TSA_TEST_STR2
#endif  // !defined(__clang__)

// --- Claim 2: runtime behavior --------------------------------------------

// A miniature annotated class, exercised the way the storage engine
// uses the wrappers (GUARDED_BY member, EXCLUDES entry point).
class Counter {
 public:
  void Add(int n) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ += n;
  }

  int Get() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Get(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  // TryLock from *another* thread: self-try_lock on a held std::mutex
  // is undefined behavior, a fresh thread makes the probe well-defined.
  std::thread prober([&mu, &acquired] { acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread second([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  second.join();
  EXPECT_TRUE(acquired);
}

TEST(MutexTest, AssertHeldIsANoOp) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // must not block or abort while held
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // Wait() returned with the mutex held again: reading the guarded
    // state here is race-free (TSan-verified in the sanitize CI leg).
    observed = 42;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woke;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace nok
