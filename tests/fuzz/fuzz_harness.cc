#include "tests/fuzz/fuzz_harness.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "baseline/di_engine.h"
#include "baseline/navigational_engine.h"
#include "baseline/region_engine.h"
#include "baseline/twigstack_engine.h"
#include "common/random.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"
#include "tests/oracle.h"
#include "xml/dom.h"
#include "xml/serializer.h"

namespace nok {
namespace fuzz {

namespace {

std::vector<std::string> CanonDewey(const std::vector<DeweyId>& ids) {
  std::vector<std::string> out;
  for (const DeweyId& id : ids) out.push_back(id.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonIndexes(
    const std::vector<const DomNode*>& doc_order,
    const std::vector<uint32_t>& indexes) {
  std::vector<std::string> out;
  for (uint32_t i : indexes) {
    out.push_back(i < doc_order.size()
                      ? DomDewey(doc_order[i]).ToString()
                      : "<index out of range: " + std::to_string(i) + ">");
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Join(const std::vector<std::string>& items) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i];
  }
  return out + "}";
}

/// Records a mismatch unless the engine outcome matches the oracle.
/// NotSupported is an acceptable typed rejection; other errors and
/// wrong result sets are reported.
void Judge(const std::string& engine, const std::string& query,
           const std::vector<std::string>& want, const Status& status,
           const std::vector<std::string>& got,
           std::vector<Mismatch>* out) {
  if (!status.ok()) {
    if (!status.IsNotSupported()) {
      out->push_back({engine, query, "status: " + status.ToString()});
    }
    return;
  }
  if (got != want) {
    out->push_back(
        {engine, query, "want " + Join(want) + " got " + Join(got)});
  }
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed) {
  Random rng(seed * 0x9e3779b97f4a7c15ull + 1);
  FuzzCase out;
  out.seed = seed;

  GeneratedDataset ds;
  const uint64_t family = rng.Uniform(4);
  if (family <= 1) {
    // Deep-recursion parts document (the dominant family).
    RecursiveGenOptions options;
    options.seed = rng.Next();
    options.entries = 2 + rng.Uniform(5);
    options.max_depth = 4 + static_cast<int>(rng.Uniform(8));
    options.fanout = 2 + static_cast<int>(rng.Uniform(2));
    options.skew = 0.3 + 0.6 * rng.NextDouble();
    ds = GenerateRecursiveDataset(options);
    out.name = "parts-deep";
  } else {
    // Scale-zero Table 1 documents for schema variety.
    const Dataset all[] = {Dataset::kAuthor, Dataset::kCatalog,
                           Dataset::kTreebank, Dataset::kDblp};
    const Dataset dataset = all[rng.Uniform(4)];
    GenOptions options;
    options.scale = 0.0;  // Generators floor at 8 entries.
    options.seed = rng.Next();
    ds = GenerateDataset(dataset, options);
    out.name = ds.name;
  }
  out.xml = ds.xml;

  RandomQueryOptions queries;
  queries.seed = rng.Next();
  queries.count = 6 + rng.Uniform(5);
  queries.max_steps = 4;
  queries.max_branches = 2;
  // Half the cases mix in tags absent from every dataset, exercising the
  // planner's schema-impossible pruning (EmptyResult plans) against the
  // oracle's genuinely empty answers.
  if (rng.Bernoulli(0.5)) queries.absent_bias = 0.15;
  out.queries = RandomQueries(ds, queries);
  return out;
}

std::vector<Mismatch> CheckCase(const FuzzCase& fuzz_case,
                                const ExtraEngine* extra) {
  std::vector<Mismatch> out;

  auto dom = DomTree::Parse(fuzz_case.xml);
  if (!dom.ok()) {
    out.push_back({"harness", "", "DOM parse: " + dom.status().ToString()});
    return out;
  }
  auto interval = IntervalDocument::Build(fuzz_case.xml);
  if (!interval.ok()) {
    out.push_back(
        {"harness", "", "interval: " + interval.status().ToString()});
    return out;
  }
  std::vector<const DomNode*> doc_order;
  ForEachNode(dom->root(),
              [&](const DomNode* n) { doc_order.push_back(n); });

  DiEngine di(&*interval);
  TwigStackEngine twig(&*interval);
  NavigationalEngine nav(&*dom);
  RegionEngine region(&*interval);

  // Store matrix: {tag summaries off, on} x {paged, bp navigation} plus
  // a synopsis-less store; small pages so paging is real.  The bp
  // configuration runs with tag summaries on (its candidate scans never
  // touch pages anyway), and the synopsis-less store pins the planner's
  // flat-estimate fallback: four stores cover all engine-visible
  // combinations.
  struct StoreConfig {
    bool tag_summaries;
    NavMode nav_mode;
    bool synopsis;
    const char* suffix;
  };
  const StoreConfig configs[] = {
      {false, NavMode::kPaged, true, ""},
      {true, NavMode::kPaged, true, " ts"},
      {true, NavMode::kBp, true, " bp"},
      {true, NavMode::kPaged, false, " nosyn"},
  };
  std::vector<std::unique_ptr<DocumentStore>> stores;
  for (const StoreConfig& config : configs) {
    DocumentStore::Options options;
    options.page_size = 512;
    options.use_tag_summaries = config.tag_summaries;
    options.nav_mode = config.nav_mode;
    options.use_synopsis = config.synopsis;
    auto store = DocumentStore::Build(fuzz_case.xml, options);
    if (!store.ok()) {
      out.push_back(
          {"harness", "", "store: " + store.status().ToString()});
      return out;
    }
    stores.push_back(std::move(store).ValueOrDie());
  }

  const StartStrategy strategies[] = {
      StartStrategy::kAuto, StartStrategy::kScan, StartStrategy::kTagIndex,
      StartStrategy::kValueIndex, StartStrategy::kPathIndex};

  for (const std::string& query : fuzz_case.queries) {
    auto pattern = ParseXPath(query);
    if (!pattern.ok()) continue;  // Shrunk queries may degenerate.

    auto oracle = OracleEvaluateDewey(query, *dom);
    if (!oracle.ok()) {
      if (!oracle.status().IsNotSupported()) {
        out.push_back(
            {"oracle", query, "status: " + oracle.status().ToString()});
      }
      continue;
    }
    const std::vector<std::string> want = CanonDewey(*oracle);

    {
      auto r = di.Evaluate(*pattern);
      Judge("di", query, want, r.status(),
            r.ok() ? CanonIndexes(doc_order, *r)
                   : std::vector<std::string>{},
            &out);
    }
    {
      auto r = twig.Evaluate(*pattern);
      Judge("twigstack", query, want, r.status(),
            r.ok() ? CanonIndexes(doc_order, *r)
                   : std::vector<std::string>{},
            &out);
    }
    {
      auto r = nav.Evaluate(*pattern);
      std::vector<std::string> got;
      if (r.ok()) {
        for (const DomNode* n : *r) got.push_back(DomDewey(n).ToString());
        std::sort(got.begin(), got.end());
      }
      Judge("nav", query, want, r.status(), got, &out);
    }
    {
      auto r = region.Evaluate(*pattern);
      Judge("region", query, want, r.status(),
            r.ok() ? CanonIndexes(doc_order, *r)
                   : std::vector<std::string>{},
            &out);
    }
    if (extra != nullptr) {
      auto r = extra->eval(*pattern, *interval);
      Judge(extra->name, query, want, r.status(),
            r.ok() ? CanonIndexes(doc_order, *r)
                   : std::vector<std::string>{},
            &out);
    }

    // NoK engine matrix: store knobs x strategy x plan cache.
    for (size_t s = 0; s < stores.size(); ++s) {
      QueryEngine engine(stores[s].get());
      for (StartStrategy strategy : strategies) {
        for (bool cache : {false, true}) {
          QueryOptions qo;
          qo.strategy = strategy;
          qo.use_plan_cache = cache;
          qo.use_synopsis = configs[s].synopsis;
          auto r = engine.Evaluate(query, qo);
          const std::string name =
              std::string("nok ") + StrategyName(strategy) +
              configs[s].suffix + (cache ? " cache" : "");
          Judge(name, query, want, r.status(),
                r.ok() ? CanonDewey(*r) : std::vector<std::string>{},
                &out);
        }
      }
    }
  }
  return out;
}

namespace {

/// Does this (xml, query) pair still produce any mismatch?
bool StillFails(const std::string& xml, const std::string& query,
                const ExtraEngine* extra, Mismatch* latest) {
  FuzzCase c;
  c.xml = xml;
  c.queries = {query};
  auto mismatches = CheckCase(c, extra);
  if (mismatches.empty()) return false;
  *latest = mismatches.front();
  return true;
}

/// One pass of subtree deletion attempts; returns true if any node was
/// removed.  `budget` caps the total number of re-checks.
bool ShrinkDomPass(DomTree* dom, const std::string& query,
                   const ExtraEngine* extra, Mismatch* latest,
                   int* budget) {
  // Collect mutable nodes (skip the root).
  std::vector<DomNode*> nodes;
  std::function<void(DomNode*)> collect = [&](DomNode* n) {
    for (auto& child : n->children) {
      nodes.push_back(child.get());
      collect(child.get());
    }
  };
  collect(dom->mutable_root());

  bool removed_any = false;
  // Reverse document order: leaves first keeps parents removable later.
  for (size_t i = nodes.size(); i-- > 0 && *budget > 0;) {
    DomNode* victim = nodes[i];
    DomNode* parent = victim->parent;
    if (parent == nullptr) continue;
    auto it = std::find_if(
        parent->children.begin(), parent->children.end(),
        [&](const std::unique_ptr<DomNode>& c) {
          return c.get() == victim;
        });
    if (it == parent->children.end()) continue;  // Already removed.
    std::unique_ptr<DomNode> detached = std::move(*it);
    parent->children.erase(it);
    --*budget;
    if (StillFails(SerializeTree(*dom), query, extra, latest)) {
      removed_any = true;  // Keep the deletion (and its whole subtree).
      // Drop the detached subtree's descendants from `nodes`: find_if
      // above already tolerates stale pointers, so nothing else needed.
      const size_t subtree = 0;
      (void)subtree;
    } else {
      parent->children.insert(
          parent->children.begin() +
              static_cast<long>(std::min<size_t>(
                  victim->child_index, parent->children.size())),
          std::move(detached));
    }
  }
  return removed_any;
}

/// Candidate simplified queries: each predicate block dropped, then each
/// trailing step dropped (quote-aware scanning).
std::vector<std::string> SimplerQueries(const std::string& query) {
  std::vector<std::string> out;
  // Top-level bracket blocks.
  int depth = 0;
  bool in_literal = false;
  char quote = 0;
  size_t open = 0;
  std::vector<std::pair<size_t, size_t>> blocks;
  std::vector<size_t> separators;  // '/' positions at depth 0.
  for (size_t i = 0; i < query.size(); ++i) {
    const char c = query[i];
    if (in_literal) {
      if (c == quote) in_literal = false;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_literal = true;
      quote = c;
    } else if (c == '[') {
      if (depth == 0) open = i;
      ++depth;
    } else if (c == ']') {
      --depth;
      if (depth == 0) blocks.emplace_back(open, i);
    } else if (c == '/' && depth == 0 && i > 0) {
      separators.push_back(i);
    }
  }
  for (auto [from, to] : blocks) {
    out.push_back(query.substr(0, from) + query.substr(to + 1));
  }
  for (size_t sep : separators) {
    size_t cut = sep;
    if (cut > 0 && query[cut - 1] == '/') --cut;  // '//' separator.
    if (cut > 1) out.push_back(query.substr(0, cut));
  }
  return out;
}

}  // namespace

ReproCase Shrink(const FuzzCase& fuzz_case, const Mismatch& mismatch,
                 const ExtraEngine* extra) {
  ReproCase repro;
  repro.seed = fuzz_case.seed;
  repro.engine = mismatch.engine;
  repro.detail = mismatch.detail;
  repro.query = mismatch.query;
  repro.xml = fuzz_case.xml;

  Mismatch latest = mismatch;

  // Query shrink first (a simpler query often unlocks more subtree
  // deletions), then document shrink, then one more query pass.
  for (int round = 0; round < 2; ++round) {
    bool simplified = true;
    while (simplified) {
      simplified = false;
      for (const std::string& candidate : SimplerQueries(repro.query)) {
        if (ParseXPath(candidate).ok() &&
            StillFails(repro.xml, candidate, extra, &latest)) {
          repro.query = candidate;
          simplified = true;
          break;
        }
      }
    }

    auto dom = DomTree::Parse(repro.xml);
    if (!dom.ok()) break;
    int budget = 600;
    while (budget > 0 &&
           ShrinkDomPass(&*dom, repro.query, extra, &latest, &budget)) {
    }
    dom->Renumber();
    const std::string shrunk = SerializeTree(*dom);
    if (StillFails(shrunk, repro.query, extra, &latest)) {
      repro.xml = shrunk;
    }
  }

  repro.engine = latest.engine;
  repro.detail = latest.detail;
  return repro;
}

std::vector<Mismatch> Replay(const ReproCase& repro,
                             const ExtraEngine* extra) {
  FuzzCase c;
  c.seed = repro.seed;
  c.name = "repro";
  c.xml = repro.xml;
  c.queries = {repro.query};
  return CheckCase(c, extra);
}

std::string FormatRepro(const ReproCase& repro) {
  std::string out = "# nok-fuzz repro v1\n";
  out += "# seed: " + std::to_string(repro.seed) + "\n";
  out += "# engine: " + repro.engine + "\n";
  out += "# detail: " + repro.detail + "\n";
  out += "# query: " + repro.query + "\n";
  out += repro.xml;
  out += '\n';
  return out;
}

Result<ReproCase> ParseRepro(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# nok-fuzz repro v1") {
    return Status::ParseError("not a nok-fuzz repro v1 file");
  }
  ReproCase repro;
  while (in.peek() == '#' && std::getline(in, line)) {
    const auto take = [&](const char* prefix,
                          std::string* field) -> bool {
      const size_t n = std::string(prefix).size();
      if (line.compare(0, n, prefix) != 0) return false;
      *field = line.substr(n);
      return true;
    };
    std::string seed;
    if (take("# seed: ", &seed)) {
      repro.seed = strtoull(seed.c_str(), nullptr, 10);
    } else if (take("# engine: ", &repro.engine) ||
               take("# detail: ", &repro.detail) ||
               take("# query: ", &repro.query)) {
    }
  }
  if (repro.query.empty()) {
    return Status::ParseError("repro file has no '# query:' header");
  }
  std::string xml, rest;
  while (std::getline(in, rest)) {
    xml += rest;
    xml += '\n';
  }
  while (!xml.empty() && xml.back() == '\n') xml.pop_back();
  if (xml.empty()) {
    return Status::ParseError("repro file has no XML body");
  }
  repro.xml = std::move(xml);
  return repro;
}

Status WriteRepro(const std::string& path, const ReproCase& repro) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out << FormatRepro(repro);
  out.close();
  if (!out) return Status::IOError("cannot write " + path);
  return Status::OK();
}

Result<ReproCase> LoadRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseRepro(buffer.str());
}

}  // namespace fuzz
}  // namespace nok
