// Driver for the randomized differential fuzzer (ctest entry
// `fuzz_differential_test`).
//
// The seeded sweep budget is small by default so the suite stays fast;
// CI and soak runs raise it via NOK_FUZZ_ITERATIONS (and shift the seed
// base via NOK_FUZZ_SEED) without recompiling.  Every failure is
// shrunk and written as a self-contained repro file; committed repros
// under tests/fuzz/corpus/ are replayed forever.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "baseline/region_engine.h"
#include "tests/fuzz/fuzz_harness.h"

namespace nok {
namespace fuzz {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return strtoull(value, nullptr, 10);
}

TEST(FuzzHarnessTest, GenerateCaseIsDeterministic) {
  const FuzzCase a = GenerateCase(123);
  const FuzzCase b = GenerateCase(123);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.xml, b.xml);
  EXPECT_EQ(a.queries, b.queries);
  const FuzzCase c = GenerateCase(124);
  EXPECT_NE(a.xml, c.xml);
}

TEST(FuzzHarnessTest, ReproFormatRoundTrips) {
  ReproCase repro;
  repro.seed = 99;
  repro.engine = "region";
  repro.detail = "want {0.1} got {}";
  repro.query = "/parts/part[2]";
  repro.xml = "<parts><part/><part/></parts>";
  auto parsed = ParseRepro(FormatRepro(repro));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, repro.seed);
  EXPECT_EQ(parsed->engine, repro.engine);
  EXPECT_EQ(parsed->detail, repro.detail);
  EXPECT_EQ(parsed->query, repro.query);
  EXPECT_EQ(parsed->xml, repro.xml);

  EXPECT_FALSE(ParseRepro("not a repro").ok());
  EXPECT_FALSE(ParseRepro("# nok-fuzz repro v1\n<xml/>").ok());
}

// The seeded sweep: every engine/strategy/knob combination must agree
// with the oracle on every generated (document, query) pair.
TEST(FuzzDifferentialTest, SeededSweep) {
  const uint64_t iterations = EnvOr("NOK_FUZZ_ITERATIONS", 60);
  const uint64_t seed_base = EnvOr("NOK_FUZZ_SEED", 1);
  for (uint64_t i = 0; i < iterations; ++i) {
    const FuzzCase fuzz_case = GenerateCase(seed_base + i);
    const auto mismatches = CheckCase(fuzz_case);
    if (mismatches.empty()) continue;

    const ReproCase repro = Shrink(fuzz_case, mismatches.front());
    const std::string path =
        "fuzz_repro_" + std::to_string(fuzz_case.seed) + ".repro";
    const Status written = WriteRepro(path, repro);
    FAIL() << "seed " << fuzz_case.seed << " (" << fuzz_case.name
           << "): engine " << repro.engine << " disagrees on \""
           << repro.query << "\": " << repro.detail << "\nshrunk repro "
           << (written.ok() ? "written to " + path
                            : "write failed: " + written.ToString())
           << "\nreplay: load the file with LoadRepro and run Replay, "
              "or re-run with NOK_FUZZ_SEED="
           << fuzz_case.seed << " NOK_FUZZ_ITERATIONS=1";
  }
}

// Committed repro files are permanent regression tests.
TEST(FuzzDifferentialTest, CorpusReplay) {
  const std::filesystem::path corpus(NOK_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::exists(corpus)) << corpus;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no .repro files under " << corpus;
  for (const auto& file : files) {
    auto repro = LoadRepro(file.string());
    ASSERT_TRUE(repro.ok()) << file << ": " << repro.status().ToString();
    const auto mismatches = Replay(*repro);
    for (const Mismatch& m : mismatches) {
      ADD_FAILURE() << file << ": engine " << m.engine << " on \""
                    << m.query << "\": " << m.detail;
    }
  }
}

// Mutation "tooth check": a deliberately broken engine variant must be
// caught within a bounded iteration budget, and the shrunk repro must
// replay.  The broken engine exists only in this fuzz target — it wraps
// the real region engine and drops the last match (a classic off-by-one
// harvest bug).
TEST(FuzzDifferentialTest, BrokenEngineCaught) {
  ExtraEngine broken;
  broken.name = "broken-region";
  broken.eval = [](const PatternTree& pattern,
                   const IntervalDocument& doc)
      -> Result<std::vector<uint32_t>> {
    RegionEngine region(&doc);
    auto r = region.Evaluate(pattern);
    if (!r.ok()) return r.status();
    std::vector<uint32_t> out = std::move(*r);
    if (!out.empty()) out.pop_back();
    return out;
  };

  const uint64_t budget = EnvOr("NOK_FUZZ_TOOTH_BUDGET", 40);
  for (uint64_t i = 0; i < budget; ++i) {
    const FuzzCase fuzz_case = GenerateCase(1000 + i);
    auto mismatches = CheckCase(fuzz_case, &broken);
    // The broken engine must be the only source of disagreement.
    for (const Mismatch& m : mismatches) {
      ASSERT_EQ(m.engine, "broken-region")
          << m.query << ": " << m.detail;
    }
    if (mismatches.empty()) continue;

    // Shrink and round-trip the repro; the mismatch must survive both.
    const ReproCase repro = Shrink(fuzz_case, mismatches.front(), &broken);
    EXPECT_FALSE(repro.xml.empty());
    EXPECT_LE(repro.xml.size(), fuzz_case.xml.size());
    auto parsed = ParseRepro(FormatRepro(repro));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto replayed = Replay(*parsed, &broken);
    ASSERT_FALSE(replayed.empty())
        << "shrunk repro no longer reproduces: " << repro.query;
    for (const Mismatch& m : replayed) {
      EXPECT_EQ(m.engine, "broken-region");
    }
    // Without the broken engine the repro must be clean.
    EXPECT_TRUE(Replay(*parsed).empty());
    return;  // Tooth check passed.
  }
  FAIL() << "broken engine survived " << budget
         << " fuzz iterations undetected";
}

}  // namespace
}  // namespace fuzz
}  // namespace nok
