// Seeded, grammar-driven randomized differential testing harness.
//
// One iteration: GenerateCase(seed) derives a (document, query set) pair
// — deep-recursion parts documents and scale-zero Table 1 documents,
// with QueryGen-v2 grammar samples over the document's schema — and
// CheckCase runs every query through the full engine matrix
//   {DI, TwigStack, navigational, region, NoK} x
//   {planner strategies} x {tag summaries on/off} x {plan cache on/off}
// against the brute-force oracle.  Engines rejecting a fragment with
// Status::NotSupported are skipped (a typed rejection is never a wrong
// answer); any other status, or any result-set difference, is a
// Mismatch.
//
// On mismatch, Shrink greedily minimizes the failing (document, query)
// pair — dropping DOM subtrees and stripping query predicate blocks and
// trailing steps while the failure reproduces — and the result is
// serialized as a self-contained repro file ("# nok-fuzz repro v1")
// that Replay re-executes, so a corpus entry under tests/fuzz/corpus/
// is a permanent regression test.

#ifndef NOKXML_TESTS_FUZZ_FUZZ_HARNESS_H_
#define NOKXML_TESTS_FUZZ_FUZZ_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "baseline/interval_encoding.h"
#include "common/result.h"
#include "nok/pattern_tree.h"

namespace nok {
namespace fuzz {

/// One generated differential-testing iteration.
struct FuzzCase {
  uint64_t seed = 0;
  std::string name;  ///< Generator family ("parts-deep", "author", ...).
  std::string xml;
  std::vector<std::string> queries;
};

/// Derives a document plus query set from a seed, deterministically.
FuzzCase GenerateCase(uint64_t seed);

/// One disagreement between an engine configuration and the oracle.
struct Mismatch {
  std::string engine;  ///< "region", "nok scan cache ts", ...
  std::string query;
  std::string detail;  ///< want/got canonical Dewey sets, or a status.
};

/// An additional engine injected into the matrix (used by the
/// mutation-detection "tooth check" with a deliberately broken engine).
struct ExtraEngine {
  std::string name;
  /// Evaluates a pattern over the interval document; same contract as
  /// RegionEngine::Evaluate (document-order node indexes).
  std::function<Result<std::vector<uint32_t>>(const PatternTree&,
                                              const IntervalDocument&)>
      eval;
};

/// Runs every query of the case through the engine matrix; returns all
/// mismatches found (empty = full agreement).
std::vector<Mismatch> CheckCase(const FuzzCase& fuzz_case,
                                const ExtraEngine* extra = nullptr);

/// A minimized, self-contained failing case.
struct ReproCase {
  uint64_t seed = 0;
  std::string engine;
  std::string detail;
  std::string query;
  std::string xml;
};

/// Greedily shrinks the failing document and query while the mismatch
/// still reproduces (under the same extra engine, if any).
ReproCase Shrink(const FuzzCase& fuzz_case, const Mismatch& mismatch,
                 const ExtraEngine* extra = nullptr);

/// Re-runs a repro through the engine matrix.
std::vector<Mismatch> Replay(const ReproCase& repro,
                             const ExtraEngine* extra = nullptr);

/// Repro file round-trip ("# nok-fuzz repro v1" header + XML body).
std::string FormatRepro(const ReproCase& repro);
Result<ReproCase> ParseRepro(const std::string& text);
Status WriteRepro(const std::string& path, const ReproCase& repro);
Result<ReproCase> LoadRepro(const std::string& path);

}  // namespace fuzz
}  // namespace nok

#endif  // NOKXML_TESTS_FUZZ_FUZZ_HARNESS_H_
