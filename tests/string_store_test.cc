#include <gtest/gtest.h>

#include <filesystem>
#include <functional>

#include "common/random.h"
#include "encoding/string_store.h"
#include "encoding/tag_dictionary.h"
#include "encoding/tag_summary.h"
#include "storage/file.h"
#include "tests/test_util.h"
#include "xml/dom.h"

namespace nok {
namespace {

/// A string store built from a DOM tree, plus the tag mapping.
struct BuiltStore {
  std::unique_ptr<StringStore> store;
  TagDictionary tags;

  TagId Tag(const std::string& name) {
    auto id = tags.Lookup(name);
    return id.has_value() ? *id : kInvalidTag;
  }
};

Status BuildFromDom(const DomTree& tree, StringStore::Options options,
                    BuiltStore* out) {
  StringStore::Builder builder(NewMemFile(), options);
  std::function<Status(const DomNode*)> emit =
      [&](const DomNode* node) -> Status {
    NOK_ASSIGN_OR_RETURN(TagId tag, out->tags.Intern(node->name));
    NOK_RETURN_IF_ERROR(builder.Open(tag));
    for (const auto& child : node->children) {
      NOK_RETURN_IF_ERROR(emit(child.get()));
    }
    return builder.Close();
  };
  NOK_RETURN_IF_ERROR(emit(tree.root()));
  NOK_ASSIGN_OR_RETURN(out->store, builder.Finish());
  return Status::OK();
}

Status Build(const std::string& xml, uint32_t page_size, bool header_skip,
             BuiltStore* out) {
  NOK_ASSIGN_OR_RETURN(auto tree, DomTree::Parse(xml));
  StringStore::Options options;
  options.page_size = page_size;
  options.reserve_ratio = 0.2;
  options.use_header_skip = header_skip;
  return BuildFromDom(tree, options, out);
}

// The paper's running example (Figure 1(a) / Figure 2 subject tree).
constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>t1</title><author><first>W.</first>"
    "<last>Stevens</last></author><publisher>AW</publisher>"
    "<price>65.95</price></book>"
    "<book year=\"1992\"><title>t2</title><author><first>W.</first>"
    "<last>Stevens</last></author><publisher>AW</publisher>"
    "<price>65.95</price></book>"
    "<book year=\"2000\"><title>t3</title><author><first>S.</first>"
    "<last>Abiteboul</last></author><publisher>MK</publisher>"
    "<price>39.95</price></book>"
    "<book year=\"1999\"><title>t4</title><editor><last>Gerbarg</last>"
    "<first>Darcy</first><affiliation>CITI</affiliation></editor>"
    "<publisher>Kluwer</publisher><price>129.95</price></book>"
    "</bib>";

// ---------------------------------------------------------------------------
// Builder basics.

TEST(StringStoreBuilderTest, RejectsUnbalanced) {
  StringStore::Builder builder(NewMemFile());
  TagDictionary tags;
  ASSERT_TRUE(builder.Open(*tags.Intern("a")).ok());
  EXPECT_TRUE(builder.Finish().status().IsInvalidArgument());
}

TEST(StringStoreBuilderTest, RejectsCloseWithoutOpen) {
  StringStore::Builder builder(NewMemFile());
  EXPECT_TRUE(builder.Close().IsInvalidArgument());
}

TEST(StringStoreBuilderTest, RejectsMultipleRoots) {
  StringStore::Builder builder(NewMemFile());
  TagDictionary tags;
  TagId a = *tags.Intern("a");
  ASSERT_TRUE(builder.Open(a).ok());
  ASSERT_TRUE(builder.Close().ok());
  EXPECT_TRUE(builder.Open(a).IsInvalidArgument());
}

TEST(StringStoreBuilderTest, RejectsBadTagIds) {
  StringStore::Builder builder(NewMemFile());
  EXPECT_TRUE(builder.Open(kInvalidTag).IsInvalidArgument());
  EXPECT_TRUE(builder.Open(0x8000).IsInvalidArgument());
}

TEST(StringStoreBuilderTest, EmptyDocumentRejected) {
  StringStore::Builder builder(NewMemFile());
  EXPECT_TRUE(builder.Finish().status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Page layout and headers (Figure 4 / Figure 5).

TEST(StringStoreTest, SmallPagesProduceChainedLayout) {
  BuiltStore built;
  ASSERT_TRUE(Build(kBibXml, /*page_size=*/64, true, &built).ok());
  StringStore* store = built.store.get();
  EXPECT_GE(store->chain_length(), 3u);  // Forced multi-page.
  EXPECT_EQ(store->node_count(), 34u);
  EXPECT_EQ(store->max_level(), 4);

  // Headers: st of the first page is 0; each page's st equals the level
  // after the previous page's last symbol; lo <= hi within bounds.
  int level = 0;
  PageId page = kInvalidPage;
  for (size_t i = 0; i < store->chain_length(); ++i) {
    page = (i == 0) ? PageId(1) : store->header(page).next;
    // Recompute: walk the page with the public symbol API instead of
    // trusting internals -- use header fields for the invariant only.
    const StorePageHeader& h = store->header(page);
    EXPECT_EQ(h.st, level);
    EXPECT_LE(h.lo, h.hi);
    EXPECT_GE(h.lo, 0);
    EXPECT_LE(h.hi, store->max_level());
    // Levels inside the page evolve from st; derive the end level through
    // LevelAt of the last symbol plus its kind. Simplest: track via
    // SubtreeEnd on the full document handled elsewhere; here use
    // DecodeStorePageHeader-provided used bytes to step levels.
    level = h.st;
    // Walk symbols of this page via LevelAt.
    for (uint16_t idx = 0;; ++idx) {
      auto lv = store->LevelAt(StorePos{page, idx});
      if (!lv.ok()) break;
      level = *lv;
    }
  }
  EXPECT_EQ(level, 0);  // Balanced document.
}

TEST(StringStoreTest, LevelSequenceMatchesPaperConvention) {
  // <a><b><z/></b><e/></a> has symbol levels 1 2 3 2 1 2 1 0
  // (paper Section 5: open -> +1, close -> -1, value after the step).
  BuiltStore built;
  ASSERT_TRUE(Build("<a><b><z/></b><e/></a>", 4096, true, &built).ok());
  StringStore* store = built.store.get();
  const int expected[] = {1, 2, 3, 2, 1, 2, 1, 0};
  for (uint16_t i = 0; i < 8; ++i) {
    auto lv = store->LevelAt(StorePos{1, i});
    ASSERT_TRUE(lv.ok());
    EXPECT_EQ(*lv, expected[i]) << "symbol " << i;
  }
  EXPECT_FALSE(store->LevelAt(StorePos{1, 8}).ok());
}

// ---------------------------------------------------------------------------
// Primitive operations vs a DOM oracle (Algorithm 2 correctness).

class PrimitiveOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrimitiveOps, FirstChildAndFollowingSiblingMatchDom) {
  Random rng(GetParam());
  const std::string xml = testutil::RandomXml(&rng);
  auto tree_r = DomTree::Parse(xml);
  ASSERT_TRUE(tree_r.ok());
  const DomTree& tree = *tree_r;

  BuiltStore built;
  StringStore::Options options;
  options.page_size = 64;  // Tiny pages stress the cross-page paths.
  ASSERT_TRUE(BuildFromDom(tree, options, &built).ok());
  StringStore* store = built.store.get();

  // Walk DOM and store in lockstep.
  std::function<void(const DomNode*, StorePos)> verify =
      [&](const DomNode* dom, StorePos pos) {
        auto tag = store->TagAt(pos);
        ASSERT_TRUE(tag.ok());
        EXPECT_EQ(built.tags.Name(*tag), dom->name);
        auto level = store->LevelAt(pos);
        ASSERT_TRUE(level.ok());
        EXPECT_EQ(*level, dom->level);

        auto child = store->FirstChild(pos);
        ASSERT_TRUE(child.ok());
        EXPECT_EQ(child->has_value(), !dom->children.empty());
        if (child->has_value()) {
          verify(dom->children[0].get(), **child);
        }
        // Walk the sibling chain.
        StorePos current = pos;
        const DomNode* dom_current = dom;
        for (;;) {
          auto sib = store->FollowingSibling(current);
          ASSERT_TRUE(sib.ok());
          const DomNode* dom_sib = nullptr;
          if (dom_current->parent != nullptr &&
              dom_current->child_index + 1 <
                  dom_current->parent->children.size()) {
            dom_sib = dom_current
                          ->parent
                          ->children[dom_current->child_index + 1]
                          .get();
          }
          EXPECT_EQ(sib->has_value(), dom_sib != nullptr);
          if (!sib->has_value()) break;
          current = **sib;
          dom_current = dom_sib;
          // Only verify the subtree once (from the parent's recursion);
          // here we only check tags along the chain.
          auto sib_tag = store->TagAt(current);
          ASSERT_TRUE(sib_tag.ok());
          EXPECT_EQ(built.tags.Name(*sib_tag), dom_current->name);
        }
      };
  verify(tree.root(), store->RootPos());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveOps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(StringStoreTest, SubtreeEndGivesProperIntervals) {
  BuiltStore built;
  ASSERT_TRUE(Build(kBibXml, 64, true, &built).ok());
  StringStore* store = built.store.get();

  const StorePos root = store->RootPos();
  auto root_end = store->SubtreeEndGlobal(root);
  ASSERT_TRUE(root_end.ok());

  auto first_book = store->FirstChild(root);
  ASSERT_TRUE(first_book.ok() && first_book->has_value());
  auto book_end = store->SubtreeEndGlobal(**first_book);
  ASSERT_TRUE(book_end.ok());

  // Containment: root.start < book.start && book.end < root.end.
  EXPECT_LT(store->GlobalPos(root), store->GlobalPos(**first_book));
  EXPECT_LT(*book_end, *root_end);

  auto second_book = store->FollowingSibling(**first_book);
  ASSERT_TRUE(second_book.ok() && second_book->has_value());
  EXPECT_LT(*book_end, store->GlobalPos(**second_book));
}

TEST(StringStoreTest, GlobalPosRoundTrips) {
  BuiltStore built;
  ASSERT_TRUE(Build(kBibXml, 64, true, &built).ok());
  StringStore* store = built.store.get();
  std::optional<StorePos> pos = store->RootPos();
  while (pos.has_value()) {
    const uint64_t global = store->GlobalPos(*pos);
    auto back = store->PosForGlobal(global);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, *pos);
    auto next = store->NextOpen(*pos);
    ASSERT_TRUE(next.ok());
    pos = *next;
  }
}

TEST(StringStoreTest, NextOpenVisitsAllNodesInDocumentOrder) {
  BuiltStore built;
  ASSERT_TRUE(Build(kBibXml, 64, true, &built).ok());
  StringStore* store = built.store.get();
  size_t count = 0;
  uint64_t last_global = 0;
  std::optional<StorePos> pos = store->RootPos();
  while (pos.has_value()) {
    ++count;
    const uint64_t global = store->GlobalPos(*pos);
    if (count > 1) {
      EXPECT_GT(global, last_global);
    }
    last_global = global;
    auto next = store->NextOpen(*pos);
    ASSERT_TRUE(next.ok());
    pos = *next;
  }
  EXPECT_EQ(count, store->node_count());
}

// ---------------------------------------------------------------------------
// The (st,lo,hi) header-skip optimization (Section 5, Example 5).

TEST(StringStoreTest, HeaderSkipAndFullScanAgree) {
  Random rng(99);
  for (int round = 0; round < 6; ++round) {
    const std::string xml = testutil::RandomXml(&rng);
    auto tree = DomTree::Parse(xml);
    ASSERT_TRUE(tree.ok());

    BuiltStore with, without;
    StringStore::Options o1;
    o1.page_size = 64;
    o1.use_header_skip = true;
    StringStore::Options o2 = o1;
    o2.use_header_skip = false;
    ASSERT_TRUE(BuildFromDom(*tree, o1, &with).ok());
    ASSERT_TRUE(BuildFromDom(*tree, o2, &without).ok());

    // Compare the sibling chains of the root's children.
    auto walk = [](StringStore* s) {
      std::vector<uint64_t> positions;
      auto child = s->FirstChild(s->RootPos());
      EXPECT_TRUE(child.ok());
      std::optional<StorePos> pos = *child;
      while (pos.has_value()) {
        positions.push_back(s->GlobalPos(*pos));
        auto sib = s->FollowingSibling(*pos);
        EXPECT_TRUE(sib.ok());
        pos = *sib;
      }
      return positions;
    };
    EXPECT_EQ(walk(with.store.get()), walk(without.store.get()));
  }
}

TEST(StringStoreTest, HeaderSkipAvoidsDeepSubtreePages) {
  // Root with a deep first child and a second child: finding the sibling
  // of the first child must skip the deep subtree's pages (Example 5:
  // only 2 page reads for the root sibling walk).
  std::string deep = "<a><b>";
  for (int i = 0; i < 200; ++i) deep += "<d>";
  for (int i = 0; i < 200; ++i) deep += "</d>";
  deep += "</b><c/></a>";

  BuiltStore built;
  ASSERT_TRUE(Build(deep, 64, true, &built).ok());
  StringStore* store = built.store.get();

  auto b = store->FirstChild(store->RootPos());
  ASSERT_TRUE(b.ok() && b->has_value());
  store->ResetNavStats();
  auto c = store->FollowingSibling(**b);
  ASSERT_TRUE(c.ok() && c->has_value());
  EXPECT_EQ(*store->TagAt(**c), built.Tag("c"));
  EXPECT_GT(store->nav_stats().pages_skipped, 5u);
  // A handful of view fetches (b's page for LevelAt, the close-scan
  // start and end pages, the sibling's page), never the deep subtree's
  // interior pages.
  EXPECT_LE(store->nav_stats().pages_scanned, 5u);
}

// ---------------------------------------------------------------------------
// Proposition 1: single pass.

TEST(StringStoreTest, FullTraversalReadsEachPageOnceWithEnoughFrames) {
  BuiltStore built;
  StringStore::Options options;
  options.page_size = 64;
  options.pool_frames = 512;
  auto tree = DomTree::Parse(kBibXml);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(BuildFromDom(*tree, options, &built).ok());
  StringStore* store = built.store.get();

  ASSERT_TRUE(store->buffer_pool()->DropAll().ok());
  store->buffer_pool()->ResetStats();

  // Depth-first traversal through the primitives (what NoK matching does).
  std::function<void(StorePos)> dfs = [&](StorePos pos) {
    auto child = store->FirstChild(pos);
    ASSERT_TRUE(child.ok());
    std::optional<StorePos> current = *child;
    while (current.has_value()) {
      dfs(*current);
      auto sib = store->FollowingSibling(*current);
      ASSERT_TRUE(sib.ok());
      current = *sib;
    }
  };
  dfs(store->RootPos());

  EXPECT_LE(store->buffer_pool()->stats().disk_reads,
            store->chain_length());
}

// ---------------------------------------------------------------------------
// Per-page tag summaries and the fused tag-filtered scan (format v3/v4).

TEST(TagSummaryTest, SmallTagsGetExactBits) {
  EXPECT_EQ(TagSummaryBits(kInvalidTag), 0u);
  for (TagId t = 1; t <= kTagSummaryExactBits; ++t) {
    EXPECT_EQ(TagSummaryBits(t), uint64_t{1} << (t - 1)) << t;
  }
  // Exact range: distinct tags never collide, so absence is definite.
  const uint64_t summary = TagSummaryBits(1) | TagSummaryBits(3);
  EXPECT_TRUE(SummaryMayContain(summary, 1));
  EXPECT_FALSE(SummaryMayContain(summary, 2));
  EXPECT_TRUE(SummaryMayContain(summary, 3));
}

TEST(TagSummaryTest, BloomRangeHasNoFalseNegatives) {
  for (TagId t = kTagSummaryExactBits + 1; t < 2000; ++t) {
    EXPECT_TRUE(SummaryMayContain(TagSummaryBits(t), t)) << t;
  }
  // An empty summary contains nothing.
  EXPECT_FALSE(SummaryMayContain(0, 1));
  EXPECT_FALSE(SummaryMayContain(0, 500));
}

TEST(StringStoreTest, TagSummariesMatchPageBodies) {
  Random rng(7);
  for (int round = 0; round < 6; ++round) {
    BuiltStore built;
    ASSERT_TRUE(Build(testutil::RandomXml(&rng), 64, true, &built).ok());
    StringStore* store = built.store.get();
    for (size_t i = 0; i < store->chain_length(); ++i) {
      const PageId page = store->chain_page(i);
      auto expect = store->ComputeTagSummary(page);
      ASSERT_TRUE(expect.ok()) << expect.status().ToString();
      EXPECT_EQ(store->tag_summary(page), *expect) << "page " << page;
    }
  }
}

TEST(StringStoreTest, NextOpenWithTagMatchesNaiveScan) {
  Random rng(11);
  for (bool summaries : {true, false}) {
    const std::string xml = testutil::RandomXml(&rng);
    auto tree = DomTree::Parse(xml);
    ASSERT_TRUE(tree.ok());
    BuiltStore built;
    StringStore::Options options;
    options.page_size = 64;
    options.use_tag_summaries = summaries;
    ASSERT_TRUE(BuildFromDom(*tree, options, &built).ok());
    StringStore* store = built.store.get();

    for (const char* name : {"a", "b", "c", "d", "e", "absent"}) {
      const TagId tag = built.Tag(name);
      if (tag == kInvalidTag) continue;
      // Oracle: NextOpen + TagAt filtering from the root.
      std::vector<uint64_t> expect;
      std::optional<StorePos> pos = store->RootPos();
      while (pos.has_value()) {
        auto t = store->TagAt(*pos);
        ASSERT_TRUE(t.ok());
        if (*t == tag) expect.push_back(store->GlobalPos(*pos));
        auto next = store->NextOpen(*pos);
        ASSERT_TRUE(next.ok());
        pos = *next;
      }
      if (!expect.empty() &&
          expect.front() == store->GlobalPos(store->RootPos())) {
        // NextOpenWithTag is strictly-after; drop the root hit.
        expect.erase(expect.begin());
      }

      std::vector<uint64_t> got;
      pos = store->RootPos();
      for (;;) {
        auto next = store->NextOpenWithTag(*pos, tag);
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        got.push_back(store->GlobalPos(**next));
        pos = **next;
      }
      EXPECT_EQ(got, expect) << name << " summaries=" << summaries;
    }
  }
}

TEST(StringStoreTest, NextOpenWithTagRejectsInvalidTag) {
  BuiltStore built;
  ASSERT_TRUE(Build(kBibXml, 64, true, &built).ok());
  EXPECT_TRUE(built.store->NextOpenWithTag(built.store->RootPos(),
                                           kInvalidTag)
                  .status()
                  .IsInvalidArgument());
}

TEST(StringStoreTest, TagSummariesSkipPagesForRareTag) {
  // A long run of <d> elements with a single <z> near the end: the scan
  // for z must rule out the d-only pages from their summaries alone.
  std::string xml = "<a>";
  for (int i = 0; i < 300; ++i) xml += "<d/>";
  xml += "<z/></a>";

  BuiltStore built;
  ASSERT_TRUE(Build(xml, 64, true, &built).ok());
  StringStore* store = built.store.get();
  ASSERT_GT(store->chain_length(), 10u);

  store->ResetNavStats();
  auto hit = store->NextOpenWithTag(store->RootPos(), built.Tag("z"));
  ASSERT_TRUE(hit.ok() && hit->has_value());
  EXPECT_EQ(*store->TagAt(**hit), built.Tag("z"));
  const auto nav = store->nav_stats();
  EXPECT_GT(nav.pages_skipped_by_tag, 5u);
  EXPECT_LT(nav.pages_scanned,
            static_cast<uint64_t>(store->chain_length()));

  // Ablation: with summaries off the same scan reads every chain page but
  // still finds the same symbol.
  BuiltStore plain;
  StringStore::Options options;
  options.page_size = 64;
  options.use_tag_summaries = false;
  auto tree = DomTree::Parse(xml);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(BuildFromDom(*tree, options, &plain).ok());
  plain.store->ResetNavStats();
  auto hit2 = plain.store->NextOpenWithTag(plain.store->RootPos(),
                                           plain.Tag("z"));
  ASSERT_TRUE(hit2.ok() && hit2->has_value());
  EXPECT_EQ(plain.store->GlobalPos(**hit2), store->GlobalPos(**hit));
  EXPECT_EQ(plain.store->nav_stats().pages_skipped_by_tag, 0u);
  EXPECT_GT(plain.store->nav_stats().pages_scanned, nav.pages_scanned);
}

TEST(StringStoreTest, PersistedSummariesRoundtripThroughDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("nokxml_tagsum_" + std::to_string(::getpid()) + ".nok"))
          .string();
  for (bool checksum : {false, true}) {
    std::filesystem::remove(path);
    auto tree = DomTree::Parse(kBibXml);
    ASSERT_TRUE(tree.ok());
    StringStore::Options options;
    options.page_size = 128;  // Extension fits and the bib spans pages.
    options.checksum_pages = checksum;
    auto file = OpenPosixFile(path, /*create=*/true);
    ASSERT_TRUE(file.ok());
    TagDictionary tags;
    {
      StringStore::Builder builder(std::move(*file), options);
      std::function<Status(const DomNode*)> emit =
          [&](const DomNode* node) -> Status {
        NOK_ASSIGN_OR_RETURN(TagId tag, tags.Intern(node->name));
        NOK_RETURN_IF_ERROR(builder.Open(tag));
        for (const auto& child : node->children) {
          NOK_RETURN_IF_ERROR(emit(child.get()));
        }
        return builder.Close();
      };
      ASSERT_TRUE(emit(tree->root()).ok());
      auto built = builder.Finish();
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      ASSERT_TRUE((*built)->Flush().ok());
    }

    auto reopened_file = OpenPosixFile(path, /*create=*/false);
    ASSERT_TRUE(reopened_file.ok());
    auto store = StringStore::Open(std::move(*reopened_file), options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->summaries_persisted()) << "checksum=" << checksum;
    ASSERT_GT((*store)->chain_length(), 1u);
    for (size_t i = 0; i < (*store)->chain_length(); ++i) {
      const PageId page = (*store)->chain_page(i);
      auto expect = (*store)->ComputeTagSummary(page);
      ASSERT_TRUE(expect.ok());
      EXPECT_NE(*expect, 0u);
      EXPECT_EQ((*store)->tag_summary(page), *expect);
    }
  }
  std::filesystem::remove(path);
}

TEST(StringStoreTest, LegacyFormatRebuildsSummariesOnOpen) {
  // A store written with summaries disabled is a plain v1 file; opening
  // it with summaries enabled rebuilds them from the page bodies.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("nokxml_tagsum_legacy_" + std::to_string(::getpid()) + ".nok"))
          .string();
  std::filesystem::remove(path);
  auto tree = DomTree::Parse(kBibXml);
  ASSERT_TRUE(tree.ok());
  StringStore::Options off;
  off.page_size = 256;
  off.use_tag_summaries = false;
  {
    auto file = OpenPosixFile(path, /*create=*/true);
    ASSERT_TRUE(file.ok());
    StringStore::Builder builder(std::move(*file), off);
    TagDictionary tags;
    std::function<Status(const DomNode*)> emit =
        [&](const DomNode* node) -> Status {
      NOK_ASSIGN_OR_RETURN(TagId tag, tags.Intern(node->name));
      NOK_RETURN_IF_ERROR(builder.Open(tag));
      for (const auto& child : node->children) {
        NOK_RETURN_IF_ERROR(emit(child.get()));
      }
      return builder.Close();
    };
    ASSERT_TRUE(emit(tree->root()).ok());
    auto built = builder.Finish();
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Flush().ok());
  }

  StringStore::Options on = off;
  on.use_tag_summaries = true;
  auto file = OpenPosixFile(path, /*create=*/false);
  ASSERT_TRUE(file.ok());
  auto store = StringStore::Open(std::move(*file), on);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->summaries_persisted());
  for (size_t i = 0; i < (*store)->chain_length(); ++i) {
    const PageId page = (*store)->chain_page(i);
    auto expect = (*store)->ComputeTagSummary(page);
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ((*store)->tag_summary(page), *expect);
  }
  std::filesystem::remove(path);
}

TEST(StringStoreTest, ReopenFromDisk) {
  // Build into a mem file via the builder, then reopen the same bytes.
  auto tree = DomTree::Parse(kBibXml);
  ASSERT_TRUE(tree.ok());

  StringStore::Options options;
  options.page_size = 128;
  StringStore::Builder builder(NewMemFile(), options);
  TagDictionary tags;
  std::function<Status(const DomNode*)> emit =
      [&](const DomNode* node) -> Status {
    NOK_ASSIGN_OR_RETURN(TagId tag, tags.Intern(node->name));
    NOK_RETURN_IF_ERROR(builder.Open(tag));
    for (const auto& child : node->children) {
      NOK_RETURN_IF_ERROR(emit(child.get()));
    }
    return builder.Close();
  };
  ASSERT_TRUE(emit(tree->root()).ok());
  auto store = builder.Finish();
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->node_count(), tree->node_count());
  auto root_tag = (*store)->TagAt((*store)->RootPos());
  ASSERT_TRUE(root_tag.ok());
  EXPECT_EQ(tags.Name(*root_tag), "bib");
}

}  // namespace
}  // namespace nok
