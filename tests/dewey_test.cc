#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "encoding/dewey.h"

namespace nok {
namespace {

TEST(DeweyTest, RootAndChildren) {
  const DeweyId root = DeweyId::Root();
  EXPECT_EQ(root.ToString(), "0");
  EXPECT_EQ(root.depth(), 1u);
  const DeweyId second_child = root.Child(2);
  EXPECT_EQ(second_child.ToString(), "0.2");  // Paper's Section 4.1 example.
  EXPECT_EQ(second_child.depth(), 2u);
}

TEST(DeweyTest, NextSiblingAdvancesInPlace) {
  DeweyId d({0, 3, 1});
  d.NextSibling();
  EXPECT_EQ(d.ToString(), "0.3.2");
  d.NextSibling();
  EXPECT_EQ(d.ToString(), "0.3.3");
  EXPECT_EQ(d.depth(), 3u);
  // Equivalent to rebuilding through the parent: d.Parent().Child(i+1).
  const DeweyId rebuilt = DeweyId({0, 3}).Child(4);
  d.NextSibling();
  EXPECT_EQ(d, rebuilt);
}

TEST(DeweyTest, ParentAndAncestor) {
  const DeweyId d({0, 3, 1, 4});
  EXPECT_EQ(d.Parent()->ToString(), "0.3.1");
  EXPECT_EQ(d.Ancestor(0)->ToString(), "0.3.1.4");
  EXPECT_EQ(d.Ancestor(2)->ToString(), "0.3");
  EXPECT_EQ(d.Ancestor(3)->ToString(), "0");
  EXPECT_FALSE(d.Ancestor(4).has_value());
  EXPECT_FALSE(DeweyId::Root().Parent().has_value());
}

TEST(DeweyTest, AncestorshipIsProperPrefix) {
  const DeweyId a({0, 1});
  const DeweyId b({0, 1, 2});
  const DeweyId c({0, 12});
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_FALSE(b.IsAncestorOf(a));
  EXPECT_FALSE(a.IsAncestorOf(a));
  EXPECT_FALSE(a.IsAncestorOf(c));  // 0.1 vs 0.12: not a component prefix.
}

TEST(DeweyTest, CompareIsDocumentOrder) {
  const DeweyId a({0, 1});
  const DeweyId b({0, 1, 0});
  const DeweyId c({0, 2});
  EXPECT_LT(a.Compare(b), 0);  // Ancestor before descendant.
  EXPECT_LT(b.Compare(c), 0);
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_GT(c.Compare(a), 0);
}

TEST(DeweyTest, EncodeDecodeRoundTrip) {
  const DeweyId d({0, 70000, 3});
  auto decoded = DeweyId::Decode(Slice(d.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, d);
}

TEST(DeweyTest, DecodeRejectsBadLengths) {
  EXPECT_FALSE(DeweyId::Decode(Slice("")).ok());
  EXPECT_FALSE(DeweyId::Decode(Slice("abc")).ok());
  EXPECT_FALSE(DeweyId::Decode(Slice("abcde")).ok());
}

TEST(DeweyTest, EncodingPreservesOrderProperty) {
  // Byte-wise order of encodings == document order, for random IDs.
  Random rng(3);
  std::vector<DeweyId> ids;
  for (int i = 0; i < 300; ++i) {
    std::vector<uint32_t> c{0};
    const size_t depth = rng.Range(0, 5);
    for (size_t d = 0; d < depth; ++d) {
      c.push_back(static_cast<uint32_t>(rng.Uniform(70000)));
    }
    ids.emplace_back(std::move(c));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = 0; j < ids.size(); ++j) {
      const int logical = ids[i].Compare(ids[j]);
      const int bytes = Slice(ids[i].Encode()).compare(
          Slice(ids[j].Encode()));
      EXPECT_EQ(logical < 0, bytes < 0);
      EXPECT_EQ(logical == 0, bytes == 0);
    }
  }
}

TEST(DeweyTest, PrefixEncodingMatchesAncestor) {
  Random rng(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> c{0};
    const size_t depth = rng.Range(1, 5);
    for (size_t d = 0; d < depth; ++d) {
      c.push_back(static_cast<uint32_t>(rng.Uniform(1000)));
    }
    DeweyId child(c);
    DeweyId parent = *child.Parent();
    EXPECT_TRUE(parent.IsAncestorOf(child));
    EXPECT_TRUE(Slice(child.Encode()).starts_with(Slice(parent.Encode())));
  }
}

}  // namespace
}  // namespace nok
