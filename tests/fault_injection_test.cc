// Fault-injection tests for the storage stack: injector semantics, buffer
// pool write-back failures, and LevelDB-style sweeps that fail every k-th
// I/O operation of a workload, asserting clean error propagation and
// old-state/new-state atomicity on reopen.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "encoding/document_store.h"
#include "encoding/store_verifier.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection_file.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><author><last>Stevens"
    "</last><first>W.</first></author><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title><author><last>"
    "Abiteboul</last><first>Serge</first></author><price>39.95</price>"
    "</book>"
    "</bib>";

std::string TempDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("nokxml_fault_" + name + "_" + std::to_string(::getpid())))
      .string();
}

// ---------------------------------------------------------------------------
// FaultInjector semantics.

TEST(FaultInjectorTest, FailsExactlyTheScheduledOp) {
  auto injector = std::make_shared<FaultInjector>();
  FaultInjectionFile file(NewMemFile(), injector);
  injector->FailAtOp(2, FaultKind::kError, /*sticky=*/false);

  EXPECT_TRUE(file.WriteAt(0, Slice("aa")).ok());   // Op 0.
  EXPECT_TRUE(file.WriteAt(2, Slice("bb")).ok());   // Op 1.
  Status s = file.WriteAt(4, Slice("cc"));          // Op 2: fails.
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(file.WriteAt(4, Slice("cc")).ok());   // Non-sticky: recovers.
  EXPECT_EQ(injector->faults_injected(), 1u);
  EXPECT_EQ(injector->ops_seen(), 4u);
}

TEST(FaultInjectorTest, StickyFaultKillsEverythingAfter) {
  auto injector = std::make_shared<FaultInjector>();
  FaultInjectionFile file(NewMemFile(), injector);
  injector->FailAtOp(1, FaultKind::kError, /*sticky=*/true);

  EXPECT_TRUE(file.WriteAt(0, Slice("aa")).ok());
  EXPECT_FALSE(file.WriteAt(2, Slice("bb")).ok());
  EXPECT_FALSE(file.WriteAt(4, Slice("cc")).ok());
  EXPECT_FALSE(file.Sync().ok());
  char buf[4];
  Slice out;
  EXPECT_FALSE(file.ReadAt(0, 2, buf, &out).ok());
  injector->Disarm();
  EXPECT_TRUE(file.ReadAt(0, 2, buf, &out).ok());
}

TEST(FaultInjectorTest, OpCounterSpansAllFiles) {
  auto injector = std::make_shared<FaultInjector>();
  FaultInjectionFile a(NewMemFile(), injector);
  FaultInjectionFile b(NewMemFile(), injector);
  injector->FailAtOp(1, FaultKind::kError, /*sticky=*/false);

  EXPECT_TRUE(a.WriteAt(0, Slice("x")).ok());   // Op 0 on file a.
  EXPECT_FALSE(b.WriteAt(0, Slice("y")).ok());  // Op 1 on file b: fails.
}

TEST(FaultInjectorTest, TornWriteAppliesAPrefix) {
  auto injector = std::make_shared<FaultInjector>();
  auto base = NewMemFile();
  File* raw = base.get();
  FaultInjectionFile file(std::move(base), injector);
  ASSERT_TRUE(file.WriteAt(0, Slice("........")).ok());

  injector->FailAtOp(1, FaultKind::kTorn, /*sticky=*/false);
  Status s = file.WriteAt(0, Slice("ABCDEFGH"));
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  char buf[8];
  Slice out;
  ASSERT_TRUE(raw->ReadAt(0, 8, buf, &out).ok());
  EXPECT_EQ(out.ToString(), "ABCD....");  // Half landed, half did not.
}

TEST(FaultInjectorTest, CrashDropsUnsyncedData) {
  auto injector = std::make_shared<FaultInjector>();
  auto base = NewMemFile();
  File* raw = base.get();
  FaultInjectionFile file(std::move(base), injector);

  ASSERT_TRUE(file.WriteAt(0, Slice("durable!")).ok());
  ASSERT_TRUE(file.Sync().ok());
  ASSERT_TRUE(file.WriteAt(0, Slice("volatile")).ok());
  ASSERT_TRUE(file.WriteAt(8, Slice("tail")).ok());

  injector->FailAtOp(4, FaultKind::kCrash, /*sticky=*/true);
  EXPECT_FALSE(file.WriteAt(0, Slice("boom")).ok());

  // The base file is back at its last synced image.
  EXPECT_EQ(raw->Size(), 8u);
  char buf[8];
  Slice out;
  ASSERT_TRUE(raw->ReadAt(0, 8, buf, &out).ok());
  EXPECT_EQ(out.ToString(), "durable!");
}

TEST(FaultInjectorTest, CrashOnNeverSyncedFileEmptiesIt) {
  auto injector = std::make_shared<FaultInjector>();
  auto base = NewMemFile();
  File* raw = base.get();
  FaultInjectionFile file(std::move(base), injector);
  ASSERT_TRUE(file.WriteAt(0, Slice("not yet durable")).ok());
  ASSERT_TRUE(file.DropUnsyncedData().ok());
  EXPECT_EQ(raw->Size(), 0u);
}

TEST(FaultInjectorTest, KindTargetedFaultHitsExactlyTheKthSync) {
  auto injector = std::make_shared<FaultInjector>();
  FaultInjectionFile file(NewMemFile(), injector);
  injector->FailAtOpOfKind(FaultOpKind::kSync, 1, FaultKind::kError,
                           /*sticky=*/false);

  // Writes are not counted by the sync-kind filter.
  EXPECT_TRUE(file.WriteAt(0, Slice("aa")).ok());
  EXPECT_TRUE(file.Sync().ok());                  // Sync 0.
  EXPECT_TRUE(file.WriteAt(2, Slice("bb")).ok());
  Status s = file.Sync();                         // Sync 1: fails.
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(file.Sync().ok());                  // Non-sticky: recovers.
  EXPECT_EQ(injector->ops_seen_of(FaultOpKind::kSync), 3u);
  EXPECT_EQ(injector->ops_seen_of(FaultOpKind::kWrite), 2u);
}

TEST(FaultInjectorTest, PartialCrashKeepsASeededSubsetOfUnsyncedOps) {
  auto run = [](uint64_t seed, double keep_p) {
    auto injector = std::make_shared<FaultInjector>();
    auto base = NewMemFile();
    File* raw = base.get();
    FaultInjectionFile file(std::move(base), injector);
    EXPECT_TRUE(file.WriteAt(0, Slice("DDDDDDDD")).ok());
    EXPECT_TRUE(file.Sync().ok());  // Durable image: 8 D's.
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(file.WriteAt(i, Slice(std::string(1, 'a' + i))).ok());
    }
    injector->EnablePartialCrash(seed, keep_p);
    EXPECT_TRUE(injector->DropAllUnsyncedData().ok());
    std::string got(8, '\0');
    Slice out;
    EXPECT_TRUE(raw->ReadAt(0, 8, got.data(), &out).ok());
    return out.ToString();
  };

  // keep_p = 1 keeps every unsynced write, keep_p = 0 drops them all.
  EXPECT_EQ(run(1, 1.0), "abcdefgh");
  EXPECT_EQ(run(1, 0.0), "DDDDDDDD");
  // In between: reproducible per seed, and genuinely partial — the
  // out-of-order-writeback shape an all-or-nothing drop cannot produce.
  const std::string a = run(7, 0.5), b = run(7, 0.5), c = run(8, 0.5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, "abcdefgh");
  EXPECT_NE(a, "DDDDDDDD");
  EXPECT_NE(a, c);  // Different seed, different surviving subset.
}

TEST(FaultInjectorTest, PartialCrashReplaysTruncatesInOrder) {
  auto injector = std::make_shared<FaultInjector>();
  auto base = NewMemFile();
  File* raw = base.get();
  FaultInjectionFile file(std::move(base), injector);
  ASSERT_TRUE(file.WriteAt(0, Slice("12345678")).ok());
  ASSERT_TRUE(file.Sync().ok());
  ASSERT_TRUE(file.Truncate(4).ok());
  ASSERT_TRUE(file.WriteAt(4, Slice("ZZ")).ok());

  injector->EnablePartialCrash(3, 1.0);  // Keep all: pure replay.
  ASSERT_TRUE(injector->DropAllUnsyncedData().ok());
  EXPECT_EQ(raw->Size(), 6u);
  std::string got(6, '\0');
  Slice out;
  ASSERT_TRUE(raw->ReadAt(0, 6, got.data(), &out).ok());
  EXPECT_EQ(out.ToString(), "1234ZZ");
}

TEST(FaultInjectorTest, ProbabilisticFaultsAreReproducible) {
  auto run = [](uint64_t seed) {
    auto injector = std::make_shared<FaultInjector>();
    FaultInjectionFile file(NewMemFile(), injector);
    injector->FailWithProbability(seed, 0.2);
    uint64_t failures = 0;
    for (int i = 0; i < 200; ++i) {
      if (!file.WriteAt(0, Slice("z")).ok()) ++failures;
    }
    return failures;
  };
  const uint64_t a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  EXPECT_LT(a, 200u);
  EXPECT_NE(a, c);  // Different seed, different schedule (overwhelmingly).
}

// ---------------------------------------------------------------------------
// BufferPool under write-back failures.

struct FaultyPool {
  std::shared_ptr<FaultInjector> injector;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
};

FaultyPool MakeFaultyPool(size_t frames) {
  FaultyPool fp;
  fp.injector = std::make_shared<FaultInjector>();
  auto file = std::make_unique<FaultInjectionFile>(NewMemFile(),
                                                   fp.injector);
  auto pager = Pager::Open(std::move(file), 128);
  EXPECT_TRUE(pager.ok());
  fp.pager = std::move(pager).ValueOrDie();
  fp.pool = std::make_unique<BufferPool>(fp.pager.get(), frames);
  return fp;
}

TEST(BufferPoolFaultTest, FailedWriteBackLeavesFrameDirtyAndRecovers) {
  auto fp = MakeFaultyPool(1);
  PageId p0, p1;
  ASSERT_TRUE(fp.pager->AllocatePage(&p0).ok());
  ASSERT_TRUE(fp.pager->AllocatePage(&p1).ok());
  {
    auto h = fp.pool->Fetch(p0);
    ASSERT_TRUE(h.ok());
    h->mutable_data()[0] = 'D';
    h->MarkDirty();
  }

  // Every further write fails: evicting the dirty frame for p1 must fail
  // without losing the dirty data.
  fp.injector->FailAtOp(fp.injector->ops_seen(), FaultKind::kError,
                        /*sticky=*/true);
  auto h1 = fp.pool->Fetch(p1);
  EXPECT_FALSE(h1.ok());
  EXPECT_TRUE(h1.status().IsIOError()) << h1.status().ToString();

  // Disk heals; the dirty page must still be in the pool and flushable.
  fp.injector->Disarm();
  ASSERT_TRUE(fp.pool->FlushAll().ok());
  std::string buf(128, '\0');
  ASSERT_TRUE(fp.pager->ReadPage(p0, buf.data()).ok());
  EXPECT_EQ(buf[0], 'D');

  // And the pool is structurally intact: eviction now succeeds.
  auto h2 = fp.pool->Fetch(p1);
  EXPECT_TRUE(h2.ok()) << h2.status().ToString();
}

TEST(BufferPoolFaultTest, FlushAllPropagatesWriteError) {
  auto fp = MakeFaultyPool(4);
  PageId p0;
  ASSERT_TRUE(fp.pager->AllocatePage(&p0).ok());
  {
    auto h = fp.pool->Fetch(p0);
    ASSERT_TRUE(h.ok());
    h->mutable_data()[3] = 'E';
    h->MarkDirty();
  }
  fp.injector->FailAtOp(fp.injector->ops_seen(), FaultKind::kError,
                        /*sticky=*/true);
  EXPECT_FALSE(fp.pool->FlushAll().ok());

  fp.injector->Disarm();
  ASSERT_TRUE(fp.pool->FlushAll().ok());  // Frame stayed dirty.
  std::string buf(128, '\0');
  ASSERT_TRUE(fp.pager->ReadPage(p0, buf.data()).ok());
  EXPECT_EQ(buf[3], 'E');
}

// ---------------------------------------------------------------------------
// BTree error propagation: a failed write-back during eviction must
// surface out of Insert, and a failed sync out of Flush.  These lock in
// the call-site audit done for the [[nodiscard]] sweep.

TEST(BTreeFaultTest, InsertPropagatesEvictionWriteFailure) {
  auto injector = std::make_shared<FaultInjector>();
  BTreeOptions options;
  options.page_size = 256;   // Small pages: splits after a few entries.
  options.pool_frames = 4;   // Tiny pool: eviction on nearly every fetch.
  auto tree = BTree::Open(
      std::make_unique<FaultInjectionFile>(NewMemFile(), injector), options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  // Grow well past four pages so further inserts must evict dirty frames.
  char key[16] = {0};
  for (int i = 0; i < 200; ++i) {
    std::snprintf(key, sizeof(key), "key%05d", i);
    ASSERT_TRUE((*tree)->Insert(Slice(key), Slice("v")).ok()) << i;
  }

  injector->FailAtOp(injector->ops_seen(), FaultKind::kError,
                     /*sticky=*/true);
  Status failed = Status::OK();
  for (int i = 200; i < 264 && failed.ok(); ++i) {
    std::snprintf(key, sizeof(key), "key%05d", i);
    failed = (*tree)->Insert(Slice(key), Slice("v"));
  }
  EXPECT_FALSE(failed.ok()) << "no insert propagated the injected fault";
  EXPECT_TRUE(failed.IsIOError()) << failed.ToString();

  // Disk heals: the tree is still usable and durable.
  injector->Disarm();
  ASSERT_TRUE((*tree)->Flush().ok());
  auto got = (*tree)->Get(Slice("key00000"));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v");
}

TEST(BTreeFaultTest, FlushPropagatesSyncFailure) {
  auto injector = std::make_shared<FaultInjector>();
  auto tree = BTree::Open(
      std::make_unique<FaultInjectionFile>(NewMemFile(), injector));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE((*tree)->Insert(Slice("k"), Slice("v")).ok());

  injector->FailAtOp(injector->ops_seen(), FaultKind::kError,
                     /*sticky=*/true);
  Status s = (*tree)->Flush();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  injector->Disarm();
  ASSERT_TRUE((*tree)->Flush().ok());
}

// ---------------------------------------------------------------------------
// Sweeps over whole-store workloads.

/// Store options that route every component file through the injector.
DocumentStoreOptions InjectedOptions(
    const std::string& dir, std::shared_ptr<FaultInjector> injector) {
  DocumentStoreOptions options;
  options.dir = dir;
  options.checksum_pages = true;
  options.file_factory =
      [injector](const std::string& path,
                 bool create) -> Result<std::unique_ptr<File>> {
    auto base = OpenPosixFile(path, create);
    NOK_RETURN_IF_ERROR(base.status());
    return std::unique_ptr<File>(new FaultInjectionFile(
        std::move(base).ValueOrDie(), injector));
  };
  return options;
}

/// Build + flush under the injector; returns the first non-OK status.
/// *commit_ops (optional) receives the operation count at the moment the
/// commit returned -- destructor-phase syncs after that point fail softly
/// (logged, not propagated), so sweeps must not count them.
Status BuildWorkload(const std::string& dir,
                     std::shared_ptr<FaultInjector> injector,
                     uint64_t* commit_ops = nullptr) {
  auto store = DocumentStore::Build(kBibXml, InjectedOptions(dir, injector));
  NOK_RETURN_IF_ERROR(store.status());
  Status s = (*store)->Flush();
  if (commit_ops != nullptr) *commit_ops = injector->ops_seen();
  return s;
}

/// What a plain (uninjected) reopen of the store dir sees.
struct ReopenOutcome {
  Status status = Status::OK();
  uint64_t node_count = 0;
  size_t stevens_hits = 0;
};

ReopenOutcome Reopen(const std::string& dir) {
  ReopenOutcome outcome;
  DocumentStoreOptions options;
  options.dir = dir;
  auto store = DocumentStore::OpenDir(options);
  if (!store.ok()) {
    outcome.status = store.status();
    return outcome;
  }
  outcome.node_count = (*store)->stats().node_count;
  auto hits = (*store)->NodesWithValue(Slice("Stevens"));
  if (!hits.ok()) {
    outcome.status = hits.status();
    return outcome;
  }
  outcome.stevens_hits = hits->size();
  return outcome;
}

TEST(DocumentStoreFaultTest, FlushPropagatesSyncFailure) {
  const std::string dir = TempDir("flush_sync");
  std::filesystem::remove_all(dir);
  auto injector = std::make_shared<FaultInjector>();
  auto store = DocumentStore::Build(kBibXml, InjectedOptions(dir, injector));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Every I/O from here on fails: the commit must report it, not swallow
  // it (nokq exits on exactly this status).
  injector->FailAtOp(injector->ops_seen(), FaultKind::kError,
                     /*sticky=*/true);
  Status s = (*store)->Flush();
  EXPECT_FALSE(s.ok()) << "Flush swallowed the injected sync failure";
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  store->reset();  // Destructor-phase sync failures are logged, not fatal.

  injector->Disarm();
  std::filesystem::remove_all(dir);
}

class FaultSweep : public ::testing::TestWithParam<FaultKind> {};

TEST_P(FaultSweep, BuildFailsCleanAtEveryOp) {
  const std::string dir = TempDir("build_sweep");
  auto injector = std::make_shared<FaultInjector>();

  // Dry run to count the workload's operations and capture ground truth.
  std::filesystem::remove_all(dir);
  uint64_t total_ops = 0;
  ASSERT_TRUE(BuildWorkload(dir, injector, &total_ops).ok());
  ASSERT_GT(total_ops, 0u);
  const ReopenOutcome truth = Reopen(dir);
  ASSERT_TRUE(truth.status.ok()) << truth.status.ToString();
  ASSERT_EQ(truth.stevens_hits, 1u);

  // Sweep; stride keeps the test fast when the workload is I/O-heavy.
  const uint64_t stride = total_ops / 200 + 1;
  for (uint64_t k = 0; k < total_ops; k += stride) {
    std::filesystem::remove_all(dir);
    injector->Reset();
    injector->FailAtOp(k, GetParam(), /*sticky=*/true);
    Status s = BuildWorkload(dir, injector);
    EXPECT_FALSE(s.ok()) << "op " << k << " did not propagate";

    // With the fault disarmed, reopening must either yield the complete
    // document or a clean error -- never a crash, never partial data that
    // masquerades as a smaller document.
    injector->Disarm();
    const ReopenOutcome outcome = Reopen(dir);
    if (outcome.status.ok()) {
      EXPECT_EQ(outcome.node_count, truth.node_count) << "op " << k;
      EXPECT_EQ(outcome.stevens_hits, truth.stevens_hits) << "op " << k;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_P(FaultSweep, UpdateKeepsOldOrNewStateAtEveryOp) {
  const std::string dir = TempDir("update_sweep");
  const std::string scratch = TempDir("update_scratch");
  auto injector = std::make_shared<FaultInjector>();

  // A clean store on disk: the "old" state.
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(BuildWorkload(dir, injector).ok());
  const ReopenOutcome old_state = Reopen(dir);
  ASSERT_TRUE(old_state.status.ok());

  uint64_t commit_ops = 0;
  auto update = [&injector, &commit_ops](const std::string& d) {
    auto store = DocumentStore::OpenDir(InjectedOptions(d, injector));
    NOK_RETURN_IF_ERROR(store.status());
    NOK_RETURN_IF_ERROR((*store)->InsertSubtree(
        DeweyId({0}), 2, "<book><title>New</title></book>"));
    Status s = (*store)->Flush();
    commit_ops = injector->ops_seen();
    return s;
  };

  // Dry run on a copy for the op count and the "new" state.
  std::filesystem::remove_all(scratch);
  std::filesystem::copy(dir, scratch);
  injector->Reset();
  ASSERT_TRUE(update(scratch).ok());
  const uint64_t total_ops = commit_ops;
  const ReopenOutcome new_state = Reopen(scratch);
  ASSERT_TRUE(new_state.status.ok()) << new_state.status.ToString();
  ASSERT_GT(new_state.node_count, old_state.node_count);

  const uint64_t stride = total_ops / 200 + 1;
  for (uint64_t k = 0; k < total_ops; k += stride) {
    std::filesystem::remove_all(scratch);
    std::filesystem::copy(dir, scratch);
    injector->Reset();
    injector->FailAtOp(k, GetParam(), /*sticky=*/true);
    Status s = update(scratch);
    EXPECT_FALSE(s.ok()) << "op " << k << " did not propagate";

    injector->Disarm();
    const ReopenOutcome outcome = Reopen(scratch);
    if (outcome.status.ok()) {
      // Atomicity: the store reads as exactly the old or the new
      // document, never a blend.
      EXPECT_TRUE(outcome.node_count == old_state.node_count ||
                  outcome.node_count == new_state.node_count)
          << "op " << k << ": node_count " << outcome.node_count;
      EXPECT_EQ(outcome.stevens_hits, 1u) << "op " << k;
    }
    // else: a clean Corruption/IOError is an acceptable outcome for a
    // half-committed store; crashing or silently mixing states is not.
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(scratch);
}

INSTANTIATE_TEST_SUITE_P(ErrorAndCrash, FaultSweep,
                         ::testing::Values(FaultKind::kError,
                                           FaultKind::kCrash));

// ---------------------------------------------------------------------------
// WAL kill-point sweep.
//
// With the write-ahead log enabled, a crash at ANY operation of an update
// workload must leave a store that (a) reopens cleanly through recovery —
// never Corruption — and (b) reads back as exactly the pre-update or the
// post-update document, verified against never-crashed oracles and the
// offline scrubber.

/// InjectedOptions with the WAL turned on.
DocumentStoreOptions InjectedWalOptions(
    const std::string& dir, std::shared_ptr<FaultInjector> injector) {
  DocumentStoreOptions options = InjectedOptions(dir, injector);
  options.wal.enabled = true;
  return options;
}

/// The swept workload: open with WAL (runs recovery), insert, commit.
/// *commit_ops / *commit_syncs (optional) receive the operation counts at
/// the moment the commit returned -- destructor-phase syncs after that
/// point fail softly, so the sweeps must not count them.
Status WalUpdate(const std::string& dir,
                 std::shared_ptr<FaultInjector> injector,
                 uint64_t* commit_ops = nullptr,
                 uint64_t* commit_syncs = nullptr) {
  auto store = DocumentStore::OpenDir(InjectedWalOptions(dir, injector));
  NOK_RETURN_IF_ERROR(store.status());
  NOK_RETURN_IF_ERROR((*store)->InsertSubtree(
      DeweyId({0}), 2, "<book><title>New</title></book>"));
  Status s = (*store)->Flush();
  if (commit_ops != nullptr) *commit_ops = injector->ops_seen();
  if (commit_syncs != nullptr) {
    *commit_syncs = injector->ops_seen_of(FaultOpKind::kSync);
  }
  return s;
}

/// Reopen through WAL recovery (uninjected) and read the document back.
struct WalReopenOutcome {
  Status status = Status::OK();
  uint64_t node_count = 0;
  size_t stevens_hits = 0;
  size_t new_hits = 0;
};

WalReopenOutcome WalReopen(const std::string& dir) {
  WalReopenOutcome outcome;
  DocumentStoreOptions options;
  options.dir = dir;
  options.wal.enabled = true;
  auto store = DocumentStore::OpenDir(options);
  if (!store.ok()) {
    outcome.status = store.status();
    return outcome;
  }
  outcome.node_count = (*store)->stats().node_count;
  auto stevens = (*store)->NodesWithValue(Slice("Stevens"));
  auto added = (*store)->NodesWithValue(Slice("New"));
  if (!stevens.ok() || !added.ok()) {
    outcome.status = stevens.ok() ? added.status() : stevens.status();
    return outcome;
  }
  outcome.stevens_hits = stevens->size();
  outcome.new_hits = added->size();
  return outcome;
}

/// Asserts the crash-recovered store at `dir` reads as exactly the old or
/// the new document and passes the offline scrub.
void ExpectOldOrNew(const std::string& dir, const WalReopenOutcome& oldst,
                    const WalReopenOutcome& newst, const std::string& what) {
  const WalReopenOutcome outcome = WalReopen(dir);
  // The zero-Corruption criterion: recovery must always yield an
  // openable store.
  ASSERT_TRUE(outcome.status.ok())
      << what << ": reopen after recovery failed: "
      << outcome.status.ToString();
  const bool is_old = outcome.node_count == oldst.node_count &&
                      outcome.new_hits == 0;
  const bool is_new = outcome.node_count == newst.node_count &&
                      outcome.new_hits == 1;
  EXPECT_TRUE(is_old || is_new)
      << what << ": node_count " << outcome.node_count << ", new_hits "
      << outcome.new_hits << " is neither the pre-update state ("
      << oldst.node_count << ", 0) nor the post-update state ("
      << newst.node_count << ", 1)";
  EXPECT_EQ(outcome.stevens_hits, 1u) << what;

  auto scrub = VerifyStoreDir(dir);
  ASSERT_TRUE(scrub.ok()) << what << ": " << scrub.status().ToString();
  EXPECT_TRUE(scrub->ok()) << what << ": scrub found "
                           << scrub->issues.size() << " issue(s), first: "
                           << (scrub->issues.empty()
                                   ? ""
                                   : scrub->issues[0].detail);
}

class WalKillPointSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("wal_sweep_base");
    scratch_ = TempDir("wal_sweep_scratch");
    injector_ = std::make_shared<FaultInjector>();

    // Clean pre-update store, and oracles for both sides of the update.
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(BuildWorkload(dir_, injector_).ok());
    old_state_ = WalReopen(dir_);
    ASSERT_TRUE(old_state_.status.ok()) << old_state_.status.ToString();

    std::filesystem::remove_all(scratch_);
    std::filesystem::copy(dir_, scratch_);
    injector_->Reset();
    ASSERT_TRUE(
        WalUpdate(scratch_, injector_, &total_ops_, &total_syncs_).ok());
    ASSERT_GT(total_ops_, 0u);
    ASSERT_GT(total_syncs_, 0u);
    new_state_ = WalReopen(scratch_);
    ASSERT_TRUE(new_state_.status.ok()) << new_state_.status.ToString();
    ASSERT_GT(new_state_.node_count, old_state_.node_count);
    ASSERT_EQ(new_state_.new_hits, 1u);
  }

  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(scratch_);
  }

  /// Fresh pre-update copy in scratch_, injector reset.
  void ResetScratch() {
    std::filesystem::remove_all(scratch_);
    std::filesystem::copy(dir_, scratch_);
    injector_->Reset();
  }

  std::string dir_;
  std::string scratch_;
  std::shared_ptr<FaultInjector> injector_;
  uint64_t total_ops_ = 0;
  uint64_t total_syncs_ = 0;
  WalReopenOutcome old_state_;
  WalReopenOutcome new_state_;
};

TEST_F(WalKillPointSweep, CrashAtEveryOpReplaysOrRestores) {
  const uint64_t stride = total_ops_ / 200 + 1;
  for (uint64_t k = 0; k < total_ops_; k += stride) {
    ResetScratch();
    injector_->FailAtOp(k, FaultKind::kCrash, /*sticky=*/true);
    Status s = WalUpdate(scratch_, injector_);
    EXPECT_FALSE(s.ok()) << "op " << k << " did not propagate";
    injector_->Disarm();
    ExpectOldOrNew(scratch_, old_state_, new_state_,
                   "crash at op " + std::to_string(k));
    if (HasFatalFailure()) return;
  }
}

TEST_F(WalKillPointSweep, CrashAtEveryFsyncReplaysOrRestores) {
  // Every fsync the workload issues, hit precisely: the commit protocol's
  // ordering (WAL sync before base writes, base syncs before checkpoint)
  // is what this pins down.
  for (uint64_t j = 0; j < total_syncs_; ++j) {
    ResetScratch();
    injector_->FailAtOpOfKind(FaultOpKind::kSync, j, FaultKind::kCrash,
                              /*sticky=*/true);
    Status s = WalUpdate(scratch_, injector_);
    EXPECT_FALSE(s.ok()) << "sync " << j << " did not propagate";
    injector_->Disarm();
    ExpectOldOrNew(scratch_, old_state_, new_state_,
                   "crash at fsync " + std::to_string(j));
    if (HasFatalFailure()) return;
  }
}

TEST_F(WalKillPointSweep, PartialWritebackCrashesStillRecover) {
  // Out-of-order page writeback: the crash persists a seeded-random
  // subset of the unsynced writes instead of dropping them all.  This is
  // the shape that catches data-before-meta sync-ordering bugs.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (uint64_t j = 0; j < total_syncs_; ++j) {
      ResetScratch();
      injector_->EnablePartialCrash(seed, 0.5);
      injector_->FailAtOpOfKind(FaultOpKind::kSync, j, FaultKind::kCrash,
                                /*sticky=*/true);
      Status s = WalUpdate(scratch_, injector_);
      EXPECT_FALSE(s.ok()) << "seed " << seed << " sync " << j;
      injector_->Disarm();
      ExpectOldOrNew(scratch_, old_state_, new_state_,
                     "partial crash seed " + std::to_string(seed) +
                         " at fsync " + std::to_string(j));
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(WalKillPointSweep, PlainOpenRefusesAPendingWal) {
  // Crash right after the WAL became durable but before any apply: the
  // log holds a committed-but-unapplied transaction.  A plain (non-WAL)
  // open must refuse it and point at recovery, not silently serve the old
  // epoch.
  uint64_t pending_point = 0;
  bool found = false;
  for (uint64_t j = 0; j < total_syncs_ && !found; ++j) {
    ResetScratch();
    injector_->FailAtOpOfKind(FaultOpKind::kSync, j, FaultKind::kCrash,
                              /*sticky=*/true);
    (void)WalUpdate(scratch_, injector_);
    injector_->Disarm();
    auto pending = PendingWalTransactions(scratch_);
    ASSERT_TRUE(pending.ok());
    if (*pending > 0) {
      pending_point = j;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no crash point left a committed-but-unapplied "
                        "transaction; the sweep lost its teeth";

  DocumentStoreOptions plain;
  plain.dir = scratch_;
  auto refused = DocumentStore::OpenDir(plain);
  ASSERT_FALSE(refused.ok())
      << "plain open served a store with a pending WAL (crash at fsync "
      << pending_point << ")";
  EXPECT_TRUE(refused.status().IsInvalidArgument())
      << refused.status().ToString();

  // Recovery repairs it; after that a plain open is fine again.
  ASSERT_TRUE(RecoverStoreDir(scratch_).ok());
  auto repaired = DocumentStore::OpenDir(plain);
  EXPECT_TRUE(repaired.ok()) << repaired.status().ToString();
}

TEST(FaultSweepTest, RandomFaultsNeverCrashTheBuilder) {
  const std::string dir = TempDir("random");
  auto injector = std::make_shared<FaultInjector>();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::filesystem::remove_all(dir);
    injector->Reset();
    injector->FailWithProbability(seed, 0.02);
    Status s = BuildWorkload(dir, injector);
    if (s.ok()) continue;  // Got lucky; nothing to check.
    injector->Disarm();
    const ReopenOutcome outcome = Reopen(dir);
    if (outcome.status.ok()) {
      EXPECT_EQ(outcome.stevens_hits, 1u) << "seed " << seed;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nok
