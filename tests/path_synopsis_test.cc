#include "encoding/path_synopsis.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "encoding/document_store.h"
#include "encoding/store_verifier.h"
#include "nok/query_engine.h"

namespace nok {
namespace {

// ---------------------------------------------------------------------
// Trie construction.  The golden document (tags as TagIds):
//
//   <1>            a
//     <2><3/></2>    b / b/c
//     <2/>           b   (second occurrence of path /a/b)
//     <4/>           d
//   </1>
//
// Distinct rooted paths: /a (1 node), /a/b (2), /a/b/c (1), /a/d (1).

std::unique_ptr<PathSynopsis> Golden(uint64_t epoch = 7) {
  PathSynopsis::Builder builder;
  builder.Open(1);
  builder.Open(2);
  builder.Open(3);
  builder.Close();
  builder.Close();
  builder.Open(2);
  builder.Close();
  builder.Open(4);
  builder.Close();
  builder.Close();
  auto synopsis = builder.Finish(epoch);
  EXPECT_TRUE(synopsis.ok()) << synopsis.status().ToString();
  return std::move(synopsis).ValueOrDie();
}

TEST(PathSynopsisTest, BuilderGoldenTrie) {
  auto syn = Golden();
  ASSERT_EQ(syn->path_count(), 4u);
  EXPECT_EQ(syn->node_count(), 5u);
  EXPECT_EQ(syn->epoch(), 7u);
  EXPECT_EQ(syn->min_level(), 1u);
  EXPECT_EQ(syn->max_level(), 3u);

  // Preorder: /a, /a/b, /a/b/c, /a/d.
  const struct {
    TagId tag;
    uint64_t count;
    uint32_t level;
    int32_t parent;
    uint32_t subtree_end;
  } want[] = {
      {1, 1, 1, -1, 4},
      {2, 2, 2, 0, 3},
      {3, 1, 3, 1, 3},
      {4, 1, 2, 0, 4},
  };
  for (size_t i = 0; i < 4; ++i) {
    const PathSynopsis::PathNode& node = syn->node(i);
    EXPECT_EQ(node.tag, want[i].tag) << i;
    EXPECT_EQ(node.count, want[i].count) << i;
    EXPECT_EQ(node.level, want[i].level) << i;
    EXPECT_EQ(node.parent, want[i].parent) << i;
    EXPECT_EQ(node.subtree_end, want[i].subtree_end) << i;
  }
}

TEST(PathSynopsisTest, BuilderRejectsUnbalancedEvents) {
  {
    PathSynopsis::Builder builder;
    builder.Open(1);
    EXPECT_FALSE(builder.Finish(1).ok());  // Never closed.
  }
  {
    PathSynopsis::Builder builder;
    builder.Open(1);
    builder.Close();
    builder.Close();  // Underflow.
    EXPECT_FALSE(builder.Finish(1).ok());
  }
}

TEST(PathSynopsisTest, MatchSetQueries) {
  auto syn = Golden();
  const uint32_t kRoot = PathSynopsis::kVirtualRoot;

  std::vector<uint32_t> set;
  syn->CollectChildren(kRoot, 1, false, &set);
  EXPECT_EQ(set, (std::vector<uint32_t>{0}));  // /a is the only level-1.
  set.clear();
  syn->CollectChildren(kRoot, 2, false, &set);
  EXPECT_TRUE(set.empty());  // No top-level b.
  set.clear();
  syn->CollectChildren(0, 2, false, &set);
  EXPECT_EQ(set, (std::vector<uint32_t>{1}));  // /a/b.
  set.clear();
  syn->CollectChildren(0, kInvalidTag, true, &set);  // Wildcard.
  EXPECT_EQ(set, (std::vector<uint32_t>{1, 3}));

  set.clear();
  syn->CollectDescendants(kRoot, 3, false, &set);
  EXPECT_EQ(set, (std::vector<uint32_t>{2}));  // /a/b/c anywhere.
  set.clear();
  syn->CollectDescendants(0, kInvalidTag, true, &set);
  EXPECT_EQ(set, (std::vector<uint32_t>{1, 2, 3}));  // Strict descendants.

  EXPECT_TRUE(syn->IsDescendantOf(kRoot, 2));
  EXPECT_TRUE(syn->IsDescendantOf(0, 2));
  EXPECT_TRUE(syn->IsDescendantOf(1, 2));
  EXPECT_FALSE(syn->IsDescendantOf(1, 3));
  EXPECT_FALSE(syn->IsDescendantOf(2, 1));
  EXPECT_EQ(syn->ParentOf(0), kRoot);
  EXPECT_EQ(syn->ParentOf(2), 1u);

  EXPECT_EQ(syn->TotalCount({0, 1, 2, 3}), 5u);
  EXPECT_EQ(syn->TotalCount({1}), 2u);
  EXPECT_EQ(syn->TotalCount({kRoot, 1}), 3u);  // Virtual root counts 1.
}

// ---------------------------------------------------------------------
// Serialization.

TEST(PathSynopsisTest, SerializeDeserializeRoundTrip) {
  auto syn = Golden(41);
  const std::string bytes = syn->Serialize();
  auto back_or = PathSynopsis::Deserialize(bytes);
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  const PathSynopsis& back = *back_or.ValueOrDie();
  ASSERT_EQ(back.path_count(), syn->path_count());
  EXPECT_EQ(back.node_count(), syn->node_count());
  EXPECT_EQ(back.epoch(), 41u);
  EXPECT_EQ(back.min_level(), syn->min_level());
  EXPECT_EQ(back.max_level(), syn->max_level());
  for (size_t i = 0; i < back.path_count(); ++i) {
    EXPECT_EQ(back.node(i).tag, syn->node(i).tag) << i;
    EXPECT_EQ(back.node(i).count, syn->node(i).count) << i;
    EXPECT_EQ(back.node(i).level, syn->node(i).level) << i;
    EXPECT_EQ(back.node(i).parent, syn->node(i).parent) << i;
    EXPECT_EQ(back.node(i).subtree_end, syn->node(i).subtree_end) << i;
  }
  // Deterministic encode: a round-tripped trie re-serializes
  // byte-identically.
  EXPECT_EQ(back.Serialize(), bytes);
}

TEST(PathSynopsisTest, DeserializeRejectsCorruption) {
  const std::string bytes = Golden()->Serialize();
  // Any single flipped byte must be rejected: header bytes break the
  // magic/version/shape checks, everything else breaks the CRC.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(PathSynopsis::Deserialize(bad).ok()) << "byte " << i;
  }
  EXPECT_FALSE(PathSynopsis::Deserialize(bytes.substr(0, 16)).ok());
  EXPECT_FALSE(PathSynopsis::Deserialize(bytes + "x").ok());
}

// ---------------------------------------------------------------------
// Store-level sidecar lifecycle (mirrors the tree.bpx suite).

std::string TestDir() {
  return (std::filesystem::temp_directory_path() /
          ("nokxml_pds_" + std::to_string(::getpid())))
      .string();
}

TEST(PathSynopsisTest, SidecarPersistsAndGoesStale) {
  const std::string dir = TestDir();
  std::filesystem::remove_all(dir);
  DocumentStore::Options options;
  options.dir = dir;
  {
    auto store = DocumentStore::Build(
        "<a><b><c/></b><b/><d>x</d></a>", options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
    // Build accumulates the trie from its own SAX pass, not the sidecar.
    EXPECT_FALSE((*store)->synopsis_loaded_from_sidecar());
    ASSERT_NE((*store)->path_synopsis(), nullptr);
    EXPECT_EQ((*store)->path_synopsis()->path_count(), 4u);
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/synopsis.pds"));
  {
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->synopsis_loaded_from_sidecar());
    ASSERT_NE((*store)->path_synopsis(), nullptr);
    EXPECT_EQ((*store)->path_synopsis()->node_count(),
              (*store)->stats().node_count);

    // A structural update drops the synopsis (pruning on the old trie
    // could wrongly prove queries empty); Flush rebuilds and re-persists
    // it for the new generation.
    ASSERT_TRUE((*store)->InsertSubtree(DeweyId({0}), 0, "<e/>").ok());
    EXPECT_EQ((*store)->path_synopsis(), nullptr);
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_FALSE((*store)->synopsis_loaded_from_sidecar());
    ASSERT_NE((*store)->path_synopsis(), nullptr);
    EXPECT_EQ((*store)->path_synopsis()->path_count(), 5u);  // New /a/e.
  }
  {
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->synopsis_loaded_from_sidecar());
    EXPECT_EQ((*store)->path_synopsis()->path_count(), 5u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PathSynopsisTest, StaleEpochSidecarIsNeverTrusted) {
  const std::string dir = TestDir() + "_stale";
  std::filesystem::remove_all(dir);
  DocumentStore::Options options;
  options.dir = dir;
  std::string old_sidecar;
  {
    auto store = DocumentStore::Build(
        "<a><b><c/></b><b/><d>x</d></a>", options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
    std::ifstream in(dir + "/synopsis.pds", std::ios::binary);
    ASSERT_TRUE(in.is_open());
    old_sidecar.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    // Advance the store a generation, then put the old sidecar back.
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->InsertSubtree(DeweyId({0}), 0, "<e/>").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    std::ofstream out(dir + "/synopsis.pds",
                      std::ios::binary | std::ios::trunc);
    out << old_sidecar;
  }
  {
    // The stale sidecar parses fine but its epoch diverges: the open
    // must rebuild from the page chain instead of trusting it.
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE((*store)->synopsis_loaded_from_sidecar());
    ASSERT_NE((*store)->path_synopsis(), nullptr);
    EXPECT_EQ((*store)->path_synopsis()->path_count(), 5u);
    EXPECT_EQ((*store)->path_synopsis()->node_count(),
              (*store)->stats().node_count);
  }
  std::filesystem::remove_all(dir);
}

TEST(PathSynopsisTest, CorruptSidecarIsRebuiltSilently) {
  const std::string dir = TestDir() + "_crc";
  std::filesystem::remove_all(dir);
  DocumentStore::Options options;
  options.dir = dir;
  {
    auto store = DocumentStore::Build(
        "<a><b><c/></b><b/><d>x</d></a>", options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    // Flip one payload byte: the CRC check must reject the sidecar.
    std::fstream f(dir + "/synopsis.pds",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(36);
    const char flipped = static_cast<char>(f.get() ^ 0xff);
    f.seekp(36);
    f.put(flipped);
  }
  {
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE((*store)->synopsis_loaded_from_sidecar());
    ASSERT_NE((*store)->path_synopsis(), nullptr);
    EXPECT_EQ((*store)->path_synopsis()->path_count(), 4u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PathSynopsisTest, VerifierReportsSidecarDamageButNotStaleness) {
  const std::string dir = TestDir() + "_verify";
  std::filesystem::remove_all(dir);
  DocumentStore::Options options;
  options.dir = dir;
  std::string good_sidecar;
  {
    auto store = DocumentStore::Build(
        "<a><b><c/></b><b/><d>x</d></a>", options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
    std::ifstream in(dir + "/synopsis.pds", std::ios::binary);
    good_sidecar.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    auto report = VerifyStoreDir(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << report->issues.front().detail;
  }
  {
    // One flipped payload byte must surface as a synopsis.pds issue.
    std::string bad = good_sidecar;
    bad[36] = static_cast<char>(bad[36] ^ 0x01);
    std::ofstream out(dir + "/synopsis.pds",
                      std::ios::binary | std::ios::trunc);
    out << bad;
    out.close();
    auto report = VerifyStoreDir(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    bool found = false;
    for (const VerifyIssue& issue : report->issues) {
      found = found || issue.component == "synopsis.pds";
    }
    EXPECT_TRUE(found) << "flipped synopsis byte not detected";
  }
  {
    // Restore the good bytes: the scrub must come back clean.  The
    // verifier's own open is read-only, so the previous scrub cannot
    // have "healed" the file — restoring the bytes must be sufficient.
    std::ofstream out(dir + "/synopsis.pds",
                      std::ios::binary | std::ios::trunc);
    out << good_sidecar;
    out.close();
    auto report = VerifyStoreDir(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok());
  }
  {
    // A stale-epoch sidecar is not an integrity issue: no open ever
    // trusts it (equivalent to a missing file), and a crash between a
    // WAL commit and the next writable open leaves one behind
    // legitimately.  Advance the store a generation, restore the old
    // sidecar, and expect a clean scrub.
    {
      auto store = DocumentStore::OpenDir(options);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ASSERT_TRUE(
          (*store)->InsertSubtree(DeweyId({0}), 0, "<e/>").ok());
      ASSERT_TRUE((*store)->Flush().ok());
    }
    std::ofstream out(dir + "/synopsis.pds",
                      std::ios::binary | std::ios::trunc);
    out << good_sidecar;
    out.close();
    auto report = VerifyStoreDir(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << report->issues.front().detail;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Planner integration: schema-impossible queries are answered with no
// I/O, and the ablation returns the same (empty) answer the slow way.

TEST(PathSynopsisTest, EmptyResultPlanReadsZeroPages) {
  DocumentStore::Options options;
  options.page_size = 512;
  auto store = DocumentStore::Build(
      "<a><b><c>x</c></b><b/><d>y</d></a>", options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  QueryEngine engine(store->get());

  (*store)->tree()->ResetNavStats();
  auto result = engine.Evaluate("//zzabsent");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_TRUE(engine.last_trace().empty_result);
  EXPECT_EQ((*store)->tree()->nav_stats().pages_scanned, 0u);
  ASSERT_EQ(engine.last_trace().operators.size(), 1u);
  EXPECT_EQ(engine.last_trace().operators[0].op, "EmptyResult");
  EXPECT_NE(engine.ExplainLast().find("proved empty"), std::string::npos);

  // An impossible composition of present tags: c never nests under d.
  (*store)->tree()->ResetNavStats();
  result = engine.Evaluate("//d//c");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_TRUE(engine.last_trace().empty_result);
  EXPECT_EQ((*store)->tree()->nav_stats().pages_scanned, 0u);

  // The ablation must agree, the slow way.
  QueryOptions flat;
  flat.use_synopsis = false;
  result = engine.Evaluate("//d//c", flat);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_FALSE(engine.last_trace().empty_result);
  EXPECT_FALSE(engine.last_trace().synopsis_used);

  // A possible query is unaffected.
  result = engine.Evaluate("//b/c");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 1u);
  EXPECT_FALSE(engine.last_trace().empty_result);
  EXPECT_TRUE(engine.last_trace().synopsis_used);
}

// ---------------------------------------------------------------------
// WAL: refresh_positions_on_commit folds the position refresh into the
// update's own commit instead of leaving the store stale.

TEST(PathSynopsisTest, WalRefreshPositionsOnCommit) {
  const std::string dir = TestDir() + "_wal";
  std::filesystem::remove_all(dir);
  {
    DocumentStore::Options build;
    build.dir = dir;
    auto store = DocumentStore::Build(
        "<a><b><c>x</c></b><b/><d>y</d></a>", build);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    // Without the knob, a committed batch leaves positions stale.
    DocumentStore::Options wal;
    wal.dir = dir;
    wal.wal.enabled = true;
    auto store = DocumentStore::OpenDir(wal);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->InsertSubtree(DeweyId({0}), 0, "<e>z</e>").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_FALSE((*store)->positions_fresh());
    ASSERT_TRUE((*store)->RefreshPositions().ok());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_TRUE((*store)->positions_fresh());
  }
  {
    // With it, the refresh rides the same single WAL commit.
    DocumentStore::Options wal;
    wal.dir = dir;
    wal.wal.enabled = true;
    wal.wal.refresh_positions_on_commit = true;
    auto store = DocumentStore::OpenDir(wal);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->InsertSubtree(DeweyId({0}), 0, "<f>w</f>").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_TRUE((*store)->positions_fresh());
    EXPECT_EQ((*store)->wal_stats().commits, 1u);
  }
  {
    // A plain reopen sees fresh positions and both inserted subtrees.
    DocumentStore::Options plain;
    plain.dir = dir;
    auto store = DocumentStore::OpenDir(plain);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->positions_fresh());
    QueryEngine engine(store->get());
    auto e = engine.Evaluate("/a/e");
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    EXPECT_EQ(e->size(), 1u);
    auto f = engine.Evaluate("/a/f");
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    EXPECT_EQ(f->size(), 1u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nok
