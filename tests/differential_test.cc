// Randomized differential harness over the generated Table 2 workload:
// for several dataset seeds, every category query (and its descendant-
// axis variant) runs through the NoK QueryEngine, the DI and TwigStack
// structural-join baselines, the navigational baseline, and the region
// (pre,post,level) engine, and each engine's Dewey-ID result set must
// equal the brute-force oracle's.
//
// Documents are generated at the minimum dataset size (the generators
// floor at 8 entries) because the oracle is exponential by design.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baseline/di_engine.h"
#include "baseline/interval_encoding.h"
#include "baseline/navigational_engine.h"
#include "baseline/region_engine.h"
#include "baseline/twigstack_engine.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"
#include "tests/oracle.h"
#include "xml/dom.h"

namespace nok {
namespace {

std::vector<std::string> CanonDewey(const std::vector<DeweyId>& ids) {
  std::vector<std::string> out;
  for (const DeweyId& id : ids) out.push_back(id.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonNodes(
    const std::vector<const DomNode*>& nodes) {
  std::vector<std::string> out;
  for (const DomNode* n : nodes) out.push_back(DomDewey(n).ToString());
  std::sort(out.begin(), out.end());
  return out;
}

/// Maps interval-document node indexes to Dewey strings via the DOM (both
/// enumerate nodes in document order).
std::vector<std::string> CanonIndexesOrDie(
    const DomTree& dom, const std::vector<uint32_t>& indexes) {
  std::vector<const DomNode*> doc_order;
  ForEachNode(dom.root(),
              [&](const DomNode* n) { doc_order.push_back(n); });
  std::vector<std::string> out;
  for (uint32_t i : indexes) {
    EXPECT_LT(i, doc_order.size());
    if (i < doc_order.size()) {
      out.push_back(DomDewey(doc_order[i]).ToString());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RunDataset(Dataset dataset, uint64_t seed) {
  GenOptions gen;
  gen.scale = 0.0;  // Generators floor at 8 entries: oracle-sized docs.
  gen.seed = seed;
  const GeneratedDataset ds = GenerateDataset(dataset, gen);

  std::vector<CategoryQuery> queries = QueriesForDataset(ds);
  const std::vector<CategoryQuery> variants =
      DescendantVariants(queries, seed);
  queries.insert(queries.end(), variants.begin(), variants.end());
  ASSERT_EQ(queries.size(), 24u);

  auto dom = DomTree::Parse(ds.xml);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  auto interval = IntervalDocument::Build(ds.xml);
  ASSERT_TRUE(interval.ok()) << interval.status().ToString();
  DiEngine di(&*interval);
  TwigStackEngine twig(&*interval);
  NavigationalEngine nav(&*dom);
  RegionEngine region(&*interval);

  DocumentStore::Options options;
  options.page_size = 512;  // Small pages: the store actually pages.
  auto store = DocumentStore::Build(ds.xml, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  QueryEngine engine(store->get());

  for (const CategoryQuery& q : queries) {
    SCOPED_TRACE(ds.name + " seed " + std::to_string(seed) + " " + q.id +
                 " (" + q.category + "): " + q.xpath);
    auto oracle = OracleEvaluateDewey(q.xpath, *dom);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    const std::vector<std::string> want = CanonDewey(*oracle);

    auto pattern = ParseXPath(q.xpath);
    ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();

    auto nok_result = engine.Evaluate(q.xpath);
    ASSERT_TRUE(nok_result.ok()) << nok_result.status().ToString();
    EXPECT_EQ(CanonDewey(*nok_result), want) << "engine: NoK";

    auto di_result = di.Evaluate(*pattern);
    ASSERT_TRUE(di_result.ok()) << di_result.status().ToString();
    EXPECT_EQ(CanonIndexesOrDie(*dom, *di_result), want) << "engine: DI";

    auto twig_result = twig.Evaluate(*pattern);
    ASSERT_TRUE(twig_result.ok()) << twig_result.status().ToString();
    EXPECT_EQ(CanonIndexesOrDie(*dom, *twig_result), want)
        << "engine: TwigStack";

    auto nav_result = nav.Evaluate(*pattern);
    ASSERT_TRUE(nav_result.ok()) << nav_result.status().ToString();
    EXPECT_EQ(CanonNodes(*nav_result), want) << "engine: navigational";

    auto region_result = region.Evaluate(*pattern);
    ASSERT_TRUE(region_result.ok()) << region_result.status().ToString();
    EXPECT_EQ(CanonIndexesOrDie(*dom, *region_result), want)
        << "engine: region";
  }
}

/// Deep-recursion sweep: the kParts generator nests part/assembly to a
/// configurable depth, which is where region-interval reasoning (and the
/// positional predicate) earn their keep.  Queries come from QueryGen v2
/// so the mix includes positional and sibling-order shapes; any query an
/// engine rejects as NotSupported is skipped for that engine, everything
/// else must match the oracle.
void RunRecursiveParts(uint64_t seed) {
  RecursiveGenOptions gen;
  gen.seed = seed;
  gen.entries = 6;
  gen.max_depth = 8;
  const GeneratedDataset ds = GenerateRecursiveDataset(gen);

  RandomQueryOptions qopt;
  qopt.seed = seed;
  qopt.count = 24;
  std::vector<std::string> queries = RandomQueries(ds, qopt);
  queries.push_back("//part[2]/pname");
  queries.push_back("/parts/part/assembly//part[pname]");

  auto dom = DomTree::Parse(ds.xml);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  auto interval = IntervalDocument::Build(ds.xml);
  ASSERT_TRUE(interval.ok()) << interval.status().ToString();
  DiEngine di(&*interval);
  TwigStackEngine twig(&*interval);
  NavigationalEngine nav(&*dom);
  RegionEngine region(&*interval);

  DocumentStore::Options options;
  options.page_size = 512;
  auto store = DocumentStore::Build(ds.xml, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  QueryEngine engine(store->get());

  for (const std::string& xpath : queries) {
    SCOPED_TRACE("parts seed " + std::to_string(seed) + ": " + xpath);
    auto oracle = OracleEvaluateDewey(xpath, *dom);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    const std::vector<std::string> want = CanonDewey(*oracle);

    auto pattern = ParseXPath(xpath);
    ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();

    auto region_result = region.Evaluate(*pattern);
    ASSERT_TRUE(region_result.ok()) << region_result.status().ToString();
    EXPECT_EQ(CanonIndexesOrDie(*dom, *region_result), want)
        << "engine: region";

    auto nav_result = nav.Evaluate(*pattern);
    if (nav_result.ok()) {
      EXPECT_EQ(CanonNodes(*nav_result), want) << "engine: navigational";
    } else {
      EXPECT_TRUE(nav_result.status().IsNotSupported())
          << nav_result.status().ToString();
    }

    auto di_result = di.Evaluate(*pattern);
    if (di_result.ok()) {
      EXPECT_EQ(CanonIndexesOrDie(*dom, *di_result), want)
          << "engine: DI";
    } else {
      EXPECT_TRUE(di_result.status().IsNotSupported())
          << di_result.status().ToString();
    }

    auto twig_result = twig.Evaluate(*pattern);
    if (twig_result.ok()) {
      EXPECT_EQ(CanonIndexesOrDie(*dom, *twig_result), want)
          << "engine: TwigStack";
    } else {
      EXPECT_TRUE(twig_result.status().IsNotSupported())
          << twig_result.status().ToString();
    }

    auto nok_result = engine.Evaluate(xpath);
    if (nok_result.ok()) {
      EXPECT_EQ(CanonDewey(*nok_result), want) << "engine: NoK";
    } else {
      EXPECT_TRUE(nok_result.status().IsNotSupported())
          << nok_result.status().ToString();
    }
  }
}

/// The Table 2 sweep across the four {header-skip} x {tag-summary}
/// ablation modes: every mode must match the brute-force oracle, and the
/// NavStats counters must respect the knobs (a disabled knob's counter
/// stays zero; enabling skips never scans more pages than the no-skip
/// run of the same query).
void RunAblationSweep(Dataset dataset, uint64_t seed) {
  GenOptions gen;
  gen.scale = 0.0;
  gen.seed = seed;
  const GeneratedDataset ds = GenerateDataset(dataset, gen);

  std::vector<CategoryQuery> queries = QueriesForDataset(ds);
  const std::vector<CategoryQuery> variants =
      DescendantVariants(queries, seed);
  queries.insert(queries.end(), variants.begin(), variants.end());

  auto dom = DomTree::Parse(ds.xml);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();

  struct Mode {
    bool header_skip;
    bool tag_summaries;
  };
  const Mode modes[] = {
      {false, false}, {true, false}, {false, true}, {true, true}};
  std::vector<std::unique_ptr<DocumentStore>> stores;
  for (const Mode& mode : modes) {
    DocumentStore::Options options;
    options.page_size = 512;
    options.use_header_skip = mode.header_skip;
    options.use_tag_summaries = mode.tag_summaries;
    auto store = DocumentStore::Build(ds.xml, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    stores.push_back(std::move(store).ValueOrDie());
  }

  for (const CategoryQuery& q : queries) {
    SCOPED_TRACE(ds.name + " seed " + std::to_string(seed) + " " + q.id +
                 ": " + q.xpath);
    auto oracle = OracleEvaluateDewey(q.xpath, *dom);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    const std::vector<std::string> want = CanonDewey(*oracle);

    std::vector<StringStore::NavStats> nav;
    for (size_t m = 0; m < stores.size(); ++m) {
      stores[m]->tree()->ResetNavStats();
      QueryEngine engine(stores[m].get());
      auto result = engine.Evaluate(q.xpath);
      ASSERT_TRUE(result.ok())
          << "mode " << m << ": " << result.status().ToString();
      EXPECT_EQ(CanonDewey(*result), want) << "mode " << m;
      nav.push_back(stores[m]->tree()->nav_stats());
    }

    // Counter hygiene: a disabled knob must never skip.
    EXPECT_EQ(nav[0].pages_skipped, 0u);
    EXPECT_EQ(nav[0].pages_skipped_by_tag, 0u);
    EXPECT_EQ(nav[1].pages_skipped_by_tag, 0u);  // Header-only.
    EXPECT_EQ(nav[2].pages_skipped, 0u);         // Tag-only.
    // Every page a scan handles is either materialized or skipped, so
    // skips can only remove page visits relative to the no-skip run.
    for (size_t m = 1; m < nav.size(); ++m) {
      EXPECT_LE(nav[m].pages_scanned, nav[0].pages_scanned) << "mode " << m;
    }
    // With both knobs on, the tag summaries must not skip fewer pages
    // than the tag-only mode gets from a strictly larger page set.
    EXPECT_GE(nav[3].pages_skipped_by_tag + nav[3].pages_skipped,
              nav[1].pages_skipped);
  }
}

/// The Table 2 sweep across planner configurations: every query runs
/// once with the planner's own choice (kAuto, cost-based order) and then
/// under every forced StartStrategy crossed with {cost-based, fixed}
/// join order and the plan cache on.  Access path, evaluation order,
/// candidate pre-filtering and plan reuse are pure optimizations, so
/// every configuration must return the planner's exact result set.
void RunStrategySweep(Dataset dataset, uint64_t seed) {
  GenOptions gen;
  gen.scale = 0.0;
  gen.seed = seed;
  const GeneratedDataset ds = GenerateDataset(dataset, gen);

  std::vector<CategoryQuery> queries = QueriesForDataset(ds);
  const std::vector<CategoryQuery> variants =
      DescendantVariants(queries, seed);
  queries.insert(queries.end(), variants.begin(), variants.end());
  ASSERT_EQ(queries.size(), 24u);

  DocumentStore::Options options;
  options.page_size = 512;
  auto store = DocumentStore::Build(ds.xml, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  QueryEngine engine(store->get());

  const StartStrategy forced[] = {
      StartStrategy::kScan, StartStrategy::kTagIndex,
      StartStrategy::kValueIndex, StartStrategy::kPathIndex};
  for (const CategoryQuery& q : queries) {
    SCOPED_TRACE(ds.name + " seed " + std::to_string(seed) + " " + q.id +
                 " (" + q.category + "): " + q.xpath);
    auto planned = engine.Evaluate(q.xpath);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    const std::vector<std::string> want = CanonDewey(*planned);

    for (StartStrategy strategy : forced) {
      for (bool cost_based : {true, false}) {
        for (bool synopsis : {true, false}) {
          QueryOptions qo;
          qo.strategy = strategy;
          qo.cost_based_join_order = cost_based;
          qo.use_synopsis = synopsis;
          auto result = engine.Evaluate(q.xpath, qo);
          ASSERT_TRUE(result.ok())
              << StrategyName(strategy) << ": "
              << result.status().ToString();
          EXPECT_EQ(CanonDewey(*result), want)
              << "strategy " << StrategyName(strategy) << " cost_based "
              << cost_based << " synopsis " << synopsis;
        }
      }
    }

    // Plan-cache replay: the second evaluation reuses the cached plan.
    QueryOptions cached;
    cached.use_plan_cache = true;
    for (int round = 0; round < 2; ++round) {
      auto result = engine.Evaluate(q.xpath, cached);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(CanonDewey(*result), want) << "cache round " << round;
    }
  }
}

TEST(DifferentialTest, StrategySweepMatchesPlanner) {
  RunStrategySweep(Dataset::kAuthor, 7);
  RunStrategySweep(Dataset::kCatalog, 3);
  RunStrategySweep(Dataset::kDblp, 2);
  RunStrategySweep(Dataset::kTreebank, 5);
}

TEST(DifferentialTest, AblationModesMatchOracle) {
  RunAblationSweep(Dataset::kCatalog, 3);
  RunAblationSweep(Dataset::kDblp, 2);
  RunAblationSweep(Dataset::kTreebank, 5);
}

TEST(DifferentialTest, AuthorAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 42u}) RunDataset(Dataset::kAuthor, seed);
}

TEST(DifferentialTest, CatalogAcrossSeeds) {
  for (uint64_t seed : {3u, 11u}) RunDataset(Dataset::kCatalog, seed);
}

TEST(DifferentialTest, TreebankAcrossSeeds) {
  for (uint64_t seed : {5u, 23u}) RunDataset(Dataset::kTreebank, seed);
}

TEST(DifferentialTest, DblpAcrossSeeds) {
  for (uint64_t seed : {2u, 13u}) RunDataset(Dataset::kDblp, seed);
}

TEST(DifferentialTest, RecursivePartsAcrossSeeds) {
  for (uint64_t seed : {4u, 19u}) RunRecursiveParts(seed);
}

}  // namespace
}  // namespace nok
