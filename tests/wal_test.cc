// Unit tests for the write-ahead log stack: frame encoding, WAL scanning,
// transactional overlay capture (TxnFile/WalWriter), crash recovery
// replay, epoch-keyed pre-image retention (PageVersionStore/SnapshotFile)
// and the single-writer / multi-reader store facade.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "encoding/document_store.h"
#include "encoding/swmr_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"
#include "storage/page_versions.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace nok {
namespace {

std::string TempDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("nokxml_wal_" + name + "_" + std::to_string(::getpid())))
      .string();
}

std::string ReadAll(File* f) {
  std::string buf(f->Size(), '\0');
  if (buf.empty()) return buf;
  Slice out;
  Status s = f->ReadAt(0, buf.size(), buf.data(), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out.ToString();
}

// ---------------------------------------------------------------------------
// Frame encoding.

TEST(WalFrameTest, RoundTripsEveryRecordType) {
  std::vector<WalRecord> records;
  WalRecord rec;
  rec.type = WalRecordType::kTxnBegin;
  rec.epoch = 7;
  records.push_back(rec);
  rec = WalRecord();
  rec.type = WalRecordType::kFileWrite;
  rec.name = "tree.nok";
  rec.offset = 8192;
  rec.data = std::string("page bytes\0with zeros", 21);
  records.push_back(rec);
  rec = WalRecord();
  rec.type = WalRecordType::kFileTruncate;
  rec.name = "val.idx";
  rec.size = 123456789;
  records.push_back(rec);
  rec = WalRecord();
  rec.type = WalRecordType::kFileReplace;
  rec.name = "tags.dict";
  rec.data = "dictionary contents";
  records.push_back(rec);
  rec = WalRecord();
  rec.type = WalRecordType::kFileRemove;
  rec.name = "positions.stale";
  records.push_back(rec);
  rec = WalRecord();
  rec.type = WalRecordType::kTxnCommit;
  rec.epoch = 7;
  rec.record_count = 4;
  records.push_back(rec);
  rec = WalRecord();
  rec.type = WalRecordType::kCheckpoint;
  rec.epoch = 7;
  records.push_back(rec);

  std::string buf;
  for (const WalRecord& r : records) AppendWalFrame(&buf, r);

  size_t pos = 0;
  for (const WalRecord& want : records) {
    WalRecord got;
    auto more = ReadWalFrame(Slice(buf), &pos, &got);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more);
    EXPECT_EQ(got.type, want.type);
    EXPECT_EQ(got.epoch, want.epoch);
    EXPECT_EQ(got.record_count, want.record_count);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.offset, want.offset);
    EXPECT_EQ(got.size, want.size);
    EXPECT_EQ(got.data, want.data);
  }
  WalRecord end;
  auto more = ReadWalFrame(Slice(buf), &pos, &end);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);  // Clean end of buffer.
}

TEST(WalFrameTest, CrcMismatchIsCorruption) {
  std::string buf;
  WalRecord rec;
  rec.type = WalRecordType::kTxnBegin;
  rec.epoch = 1;
  AppendWalFrame(&buf, rec);
  buf[kWalFrameHeaderSize] ^= 0x40;  // Flip a payload bit.

  size_t pos = 0;
  WalRecord got;
  auto more = ReadWalFrame(Slice(buf), &pos, &got);
  ASSERT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsCorruption());
  EXPECT_EQ(pos, 0u);  // Scan position stays at the last good boundary.
}

TEST(WalFrameTest, ShortFrameIsCorruption) {
  std::string buf;
  WalRecord rec;
  rec.type = WalRecordType::kFileWrite;
  rec.name = "x";
  rec.data = "payload";
  AppendWalFrame(&buf, rec);
  buf.resize(buf.size() - 3);  // Torn tail.

  size_t pos = 0;
  WalRecord got;
  auto more = ReadWalFrame(Slice(buf), &pos, &got);
  ASSERT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsCorruption());
}

// ---------------------------------------------------------------------------
// WAL scanning.

std::string WalWithHeader() {
  return std::string(kWalMagic, kWalHeaderSize);
}

void AppendTxn(std::string* wal, uint64_t epoch,
               const std::vector<WalRecord>& body, bool commit = true) {
  WalRecord rec;
  rec.type = WalRecordType::kTxnBegin;
  rec.epoch = epoch;
  AppendWalFrame(wal, rec);
  for (const WalRecord& r : body) AppendWalFrame(wal, r);
  if (commit) {
    rec = WalRecord();
    rec.type = WalRecordType::kTxnCommit;
    rec.epoch = epoch;
    rec.record_count = body.size();
    AppendWalFrame(wal, rec);
  }
}

WalRecord WriteRec(const std::string& name, uint64_t offset,
                   const std::string& data) {
  WalRecord rec;
  rec.type = WalRecordType::kFileWrite;
  rec.name = name;
  rec.offset = offset;
  rec.data = data;
  return rec;
}

TEST(WalScanTest, CollectsCommittedTransactions) {
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "one")});
  AppendTxn(&wal, 2, {WriteRec("a", 0, "two"), WriteRec("b", 4, "x")});

  WalScan scan = ScanWal(Slice(wal));
  ASSERT_EQ(scan.committed.size(), 2u);
  EXPECT_EQ(scan.committed[0].epoch, 1u);
  EXPECT_EQ(scan.committed[0].records.size(), 1u);
  EXPECT_EQ(scan.committed[1].epoch, 2u);
  EXPECT_EQ(scan.committed[1].records.size(), 2u);
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.valid_bytes, wal.size());
}

TEST(WalScanTest, DiscardsTransactionWithoutCommit) {
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "one")});
  AppendTxn(&wal, 2, {WriteRec("a", 0, "never committed")},
            /*commit=*/false);

  WalScan scan = ScanWal(Slice(wal));
  ASSERT_EQ(scan.committed.size(), 1u);
  EXPECT_EQ(scan.committed[0].epoch, 1u);
  EXPECT_EQ(scan.torn_bytes, 0u);  // Frames are intact, just uncommitted.
}

TEST(WalScanTest, TornTailEndsTheScan) {
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "one")});
  const size_t good = wal.size();
  AppendTxn(&wal, 2, {WriteRec("a", 0, "two")});
  wal.resize(good + 7);  // The epoch-2 txn is cut mid-frame.

  WalScan scan = ScanWal(Slice(wal));
  ASSERT_EQ(scan.committed.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, good);
  EXPECT_EQ(scan.torn_bytes, 7u);
}

TEST(WalScanTest, BadMagicIsAllTorn) {
  std::string wal = "garbage, not a WAL";
  WalScan scan = ScanWal(Slice(wal));
  EXPECT_TRUE(scan.committed.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.torn_bytes, wal.size());
}

TEST(WalScanTest, CheckpointMarksTransactionsApplied) {
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "one")});
  WalRecord cp;
  cp.type = WalRecordType::kCheckpoint;
  cp.epoch = 1;
  AppendWalFrame(&wal, cp);
  AppendTxn(&wal, 2, {WriteRec("a", 0, "two")});

  WalScan scan = ScanWal(Slice(wal));
  EXPECT_EQ(scan.checkpoint_epoch, 1u);
  ASSERT_EQ(scan.committed.size(), 2u);  // Scan reports all; replay skips.
}

// ---------------------------------------------------------------------------
// TxnFile overlay capture.

struct WriterFixture {
  std::unique_ptr<WalWriter> wal;
  std::unique_ptr<File> file;  ///< TxnFile wrapping a MemFile.
  File* base = nullptr;        ///< The wrapped MemFile.
};

WriterFixture MakeWriter(const std::string& dir) {
  WriterFixture fx;
  auto wal = WalWriter::Open(dir, NewMemFile());
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  fx.wal = std::move(wal).ValueOrDie();
  auto mem = NewMemFile();
  fx.base = mem.get();
  fx.file = fx.wal->Wrap("data", std::move(mem));
  return fx;
}

TEST(TxnFileTest, PassesThroughOutsideTransaction) {
  auto fx = MakeWriter(TempDir("passthrough"));
  ASSERT_TRUE(fx.file->WriteAt(0, Slice("hello")).ok());
  EXPECT_EQ(ReadAll(fx.base), "hello");  // Base touched immediately.
  fx.file.reset();
}

TEST(TxnFileTest, BuffersWritesUntilCommit) {
  auto fx = MakeWriter(TempDir("buffer"));
  ASSERT_TRUE(fx.file->WriteAt(0, Slice("0123456789")).ok());

  fx.wal->Begin();
  ASSERT_TRUE(fx.file->WriteAt(2, Slice("AB")).ok());
  uint64_t at = 0;
  ASSERT_TRUE(fx.file->Append(Slice("tail"), &at).ok());
  EXPECT_EQ(at, 10u);

  // Reads through the wrapper see the overlay; the base is untouched.
  EXPECT_EQ(ReadAll(fx.file.get()), "01AB456789tail");
  EXPECT_EQ(ReadAll(fx.base), "0123456789");
  EXPECT_EQ(fx.file->Size(), 14u);
  EXPECT_EQ(fx.base->Size(), 10u);

  ASSERT_TRUE(fx.wal->Commit(1).ok());
  EXPECT_EQ(ReadAll(fx.base), "01AB456789tail");
  fx.file.reset();
}

TEST(TxnFileTest, TruncateShrinksAndExtends) {
  auto fx = MakeWriter(TempDir("truncate"));
  ASSERT_TRUE(fx.file->WriteAt(0, Slice("0123456789")).ok());

  fx.wal->Begin();
  ASSERT_TRUE(fx.file->Truncate(4).ok());
  EXPECT_EQ(ReadAll(fx.file.get()), "0123");
  ASSERT_TRUE(fx.file->Truncate(6).ok());  // Extend with zeros.
  EXPECT_EQ(ReadAll(fx.file.get()), std::string("0123\0\0", 6));
  ASSERT_TRUE(fx.file->WriteAt(5, Slice("Z")).ok());
  EXPECT_EQ(ReadAll(fx.file.get()), std::string("0123\0Z", 6));
  EXPECT_EQ(ReadAll(fx.base), "0123456789");

  ASSERT_TRUE(fx.wal->Commit(1).ok());
  EXPECT_EQ(ReadAll(fx.base), std::string("0123\0Z", 6));
  fx.file.reset();
}

TEST(TxnFileTest, AbortDiscardsTheOverlay) {
  auto fx = MakeWriter(TempDir("abort"));
  ASSERT_TRUE(fx.file->WriteAt(0, Slice("keep me")).ok());

  fx.wal->Begin();
  ASSERT_TRUE(fx.file->WriteAt(0, Slice("scratch that")).ok());
  ASSERT_TRUE(fx.wal->Abort().ok());

  EXPECT_EQ(ReadAll(fx.base), "keep me");
  EXPECT_EQ(ReadAll(fx.file.get()), "keep me");
  fx.file.reset();
}

TEST(TxnFileTest, CaptureTicksCountMutations) {
  auto fx = MakeWriter(TempDir("ticks"));
  fx.wal->Begin();
  const uint64_t before = fx.wal->capture_ticks();
  char buf[4];
  Slice out;
  ASSERT_TRUE(fx.file->WriteAt(0, Slice("abcd")).ok());
  ASSERT_TRUE(fx.file->ReadAt(0, 4, buf, &out).ok());  // Reads don't count.
  EXPECT_EQ(fx.wal->capture_ticks(), before + 1);
  ASSERT_TRUE(fx.file->Truncate(2).ok());
  EXPECT_EQ(fx.wal->capture_ticks(), before + 2);
  fx.wal->StageReplace("dict", "x");
  EXPECT_EQ(fx.wal->capture_ticks(), before + 3);
  ASSERT_TRUE(fx.wal->Abort().ok());
  fx.file.reset();
}

// ---------------------------------------------------------------------------
// Recovery replay.

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("recovery");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteWal(const std::string& bytes) {
    ASSERT_TRUE(
        WriteStringToFile(dir_ + "/" + kWalFileName, Slice(bytes)).ok());
  }
  std::string ReadComponent(const std::string& name) {
    std::string out;
    Status s = ReadFileToString(dir_ + "/" + name, &out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, ReplaysCommittedTransactions) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/a", Slice("old-a")).ok());
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "new-a"), WriteRec("b", 0, "new-b")});
  WriteWal(wal);

  RecoveryReport report;
  ASSERT_TRUE(RecoverStoreDir(dir_, nullptr, &report).ok());
  EXPECT_TRUE(report.wal_present);
  EXPECT_EQ(report.transactions_committed, 1u);
  EXPECT_EQ(report.transactions_replayed, 1u);
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(ReadComponent("a"), "new-a");
  EXPECT_EQ(ReadComponent("b"), "new-b");

  // The replay checkpointed; a second recovery replays nothing.
  RecoveryReport again;
  ASSERT_TRUE(RecoverStoreDir(dir_, nullptr, &again).ok());
  EXPECT_EQ(again.transactions_replayed, 0u);
  auto pending = PendingWalTransactions(dir_);
  ASSERT_TRUE(pending.ok());
  EXPECT_EQ(*pending, 0u);
}

TEST_F(RecoveryTest, ReplayIsIdempotentOverHalfAppliedState) {
  // Half-applied: "a" already carries the new bytes, "b" does not — the
  // crash shape recovery exists for.
  ASSERT_TRUE(WriteStringToFile(dir_ + "/a", Slice("new-a")).ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/b", Slice("old-b")).ok());
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "new-a"), WriteRec("b", 0, "new-b")});
  WriteWal(wal);

  ASSERT_TRUE(RecoverStoreDir(dir_).ok());
  EXPECT_EQ(ReadComponent("a"), "new-a");
  EXPECT_EQ(ReadComponent("b"), "new-b");
}

TEST_F(RecoveryTest, DiscardsTornTailAndUncommitted) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/a", Slice("old-a")).ok());
  std::string wal = WalWithHeader();
  AppendTxn(&wal, 1, {WriteRec("a", 0, "new-a")});
  const size_t good = wal.size();
  AppendTxn(&wal, 2, {WriteRec("a", 0, "XXXXX")});
  wal.resize(good + 9);  // Epoch 2 torn mid-frame: never durable.
  WriteWal(wal);

  RecoveryReport report;
  ASSERT_TRUE(RecoverStoreDir(dir_, nullptr, &report).ok());
  EXPECT_EQ(report.transactions_replayed, 1u);
  EXPECT_EQ(report.torn_bytes_discarded, 9u);
  EXPECT_EQ(ReadComponent("a"), "new-a");

  // The torn bytes are physically gone from the log.
  std::string after;
  ASSERT_TRUE(ReadFileToString(dir_ + "/" + kWalFileName, &after).ok());
  WalScan scan = ScanWal(Slice(after));
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(RecoveryTest, ReplaysReplaceAndRemove) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/dict", Slice("old dict")).ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/marker", Slice("x")).ok());
  std::string wal = WalWithHeader();
  WalRecord replace;
  replace.type = WalRecordType::kFileReplace;
  replace.name = "dict";
  replace.data = "new dict";
  WalRecord remove;
  remove.type = WalRecordType::kFileRemove;
  remove.name = "marker";
  AppendTxn(&wal, 1, {replace, remove});
  WriteWal(wal);

  ASSERT_TRUE(RecoverStoreDir(dir_).ok());
  EXPECT_EQ(ReadComponent("dict"), "new dict");
  EXPECT_FALSE(FileExists(dir_ + "/marker"));
}

TEST_F(RecoveryTest, NoWalIsANoOp) {
  RecoveryReport report;
  ASSERT_TRUE(RecoverStoreDir(dir_, nullptr, &report).ok());
  EXPECT_FALSE(report.wal_present);
}

// ---------------------------------------------------------------------------
// Page version retention.

TEST(PageVersionStoreTest, OverlaysTheOldestVisibleVersion) {
  PageVersionStore store;
  // Base history for [0,4): "v1" through epoch 1, "v2" through epoch 2,
  // base now holds "v3".
  store.Retain(0, "1111", 1);
  store.Retain(0, "2222", 2);

  char buf[4];
  std::memcpy(buf, "3333", 4);
  EXPECT_TRUE(store.OverlayForEpoch(1, 0, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "1111");

  std::memcpy(buf, "3333", 4);
  EXPECT_TRUE(store.OverlayForEpoch(2, 0, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "2222");

  std::memcpy(buf, "3333", 4);
  EXPECT_FALSE(store.OverlayForEpoch(3, 0, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "3333");  // Current epoch: base wins.
}

TEST(PageVersionStoreTest, IntersectsPartialRanges) {
  PageVersionStore store;
  store.Retain(4, "ABCD", 5);

  char buf[8];
  std::memcpy(buf, "xxxxxxxx", 8);
  EXPECT_TRUE(store.OverlayForEpoch(5, 2, buf, 8));
  EXPECT_EQ(std::string(buf, 8), "xxABCDxx");

  char tail[4];
  std::memcpy(tail, "yyyy", 4);
  EXPECT_TRUE(store.OverlayForEpoch(5, 6, tail, 4));
  EXPECT_EQ(std::string(tail, 4), "CDyy");
}

TEST(PageVersionStoreTest, ReclaimDropsDeadVersions) {
  PageVersionStore store;
  store.Retain(0, "old!", 1);
  store.Retain(0, "mid!", 3);
  EXPECT_EQ(store.entry_count(), 2u);
  EXPECT_EQ(store.byte_count(), 8u);

  store.ReclaimBelow(2);  // Readers at >= 2 can still need valid_through 3.
  EXPECT_EQ(store.entry_count(), 1u);

  char buf[4];
  std::memcpy(buf, "new!", 4);
  EXPECT_TRUE(store.OverlayForEpoch(2, 0, buf, 4));
  EXPECT_EQ(std::string(buf, 4), "mid!");

  store.ReclaimBelow(4);
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.byte_count(), 0u);
}

TEST(SnapshotTrackerTest, ReclaimsWhenOldestReaderDrains) {
  SnapshotTracker tracker;
  auto store = std::make_shared<PageVersionStore>();
  tracker.Track(store);

  tracker.Register(1);
  tracker.AdvanceEpoch(2);
  store->Retain(0, "epoch1 bytes", 1);
  EXPECT_EQ(tracker.retained_entries(), 1u);
  EXPECT_EQ(tracker.MinActiveEpoch(99), 1u);

  // The epoch-1 reader drains: nothing can read valid_through 1 anymore.
  tracker.Release(1);
  EXPECT_EQ(tracker.retained_entries(), 0u);
  EXPECT_EQ(tracker.MinActiveEpoch(99), 99u);  // Fallback when none live.
}

TEST(SnapshotFileTest, ServesThePinnedEpoch) {
  auto base = NewMemFile();
  File* raw = base.get();
  ASSERT_TRUE(raw->WriteAt(0, Slice("AAAABBBB")).ok());

  auto versions = std::make_shared<PageVersionStore>();
  SnapshotFile snap(std::move(base), versions, /*epoch=*/1);

  // Writer commits epoch 2: retains the pre-image, then mutates the base.
  versions->Retain(4, "BBBB", 1);
  ASSERT_TRUE(raw->WriteAt(4, Slice("CCCC")).ok());

  EXPECT_EQ(ReadAll(&snap), "AAAABBBB");  // Snapshot still sees epoch 1.

  // And the snapshot is immutable.
  EXPECT_FALSE(snap.WriteAt(0, Slice("x")).ok());
  EXPECT_FALSE(snap.Truncate(0).ok());
}

TEST(SnapshotFileTest, SizeIsPinnedAgainstConcurrentGrowth) {
  auto base = NewMemFile();
  File* raw = base.get();
  ASSERT_TRUE(raw->WriteAt(0, Slice("AAAA")).ok());

  SnapshotFile snap(std::move(base), nullptr, /*epoch=*/1);
  uint64_t at = 0;
  ASSERT_TRUE(raw->Append(Slice("BBBB"), &at).ok());

  EXPECT_EQ(snap.Size(), 4u);  // Growth after the pin is invisible.
  EXPECT_EQ(ReadAll(&snap), "AAAA");
}

// ---------------------------------------------------------------------------
// DocumentStore in WAL mode.

constexpr const char* kDocXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title><price>39.95"
    "</price></book>"
    "</bib>";

class WalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("store");
    std::filesystem::remove_all(dir_);
    DocumentStoreOptions build;
    build.dir = dir_;
    auto store = DocumentStore::Build(kDocXml, build);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Result<std::unique_ptr<DocumentStore>> OpenWal(
      uint64_t group_commit_ops = 0) {
    DocumentStoreOptions options;
    options.dir = dir_;
    options.wal.enabled = true;
    options.wal.group_commit_ops = group_commit_ops;
    return DocumentStore::OpenDir(options);
  }

  std::string dir_;
};

TEST_F(WalStoreTest, CommitsUpdatesThroughTheLog) {
  auto store = OpenWal();
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)
                  ->InsertSubtree(DeweyId({0}), 2,
                                  "<book><title>New</title></book>")
                  .ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_GE((*store)->wal_stats().commits, 1u);
  store->reset();

  // A plain reopen sees the committed update.
  DocumentStoreOptions plain;
  plain.dir = dir_;
  auto reopened = DocumentStore::OpenDir(plain);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto hits = (*reopened)->NodesWithValue(Slice("New"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(WalStoreTest, GroupCommitBatchesOps) {
  auto store = OpenWal(/*group_commit_ops=*/2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const uint64_t epoch0 = (*store)->epoch();
  ASSERT_TRUE((*store)
                  ->InsertSubtree(DeweyId({0}), 2,
                                  "<book><title>N1</title></book>")
                  .ok());
  EXPECT_EQ((*store)->epoch(), epoch0);  // Batched, not yet committed.
  ASSERT_TRUE((*store)
                  ->InsertSubtree(DeweyId({0}), 3,
                                  "<book><title>N2</title></book>")
                  .ok());
  EXPECT_EQ((*store)->epoch(), epoch0 + 1);  // Threshold hit: one commit.
  EXPECT_EQ((*store)->wal_stats().commits, 1u);
}

TEST_F(WalStoreTest, UncommittedBatchIsInvisibleAfterClose) {
  {
    auto store = OpenWal();
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)
                    ->InsertSubtree(DeweyId({0}), 2,
                                    "<book><title>Lost</title></book>")
                    .ok());
    // No Flush: the batch only ever lived in the overlay.
  }
  DocumentStoreOptions plain;
  plain.dir = dir_;
  auto reopened = DocumentStore::OpenDir(plain);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto hits = (*reopened)->NodesWithValue(Slice("Lost"));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(WalStoreTest, RejectsWalWithReadOnly) {
  DocumentStoreOptions options;
  options.dir = dir_;
  options.wal.enabled = true;
  options.read_only = true;
  auto store = DocumentStore::OpenDir(options);
  EXPECT_FALSE(store.ok());
}

// ---------------------------------------------------------------------------
// SwmrStore snapshots.

TEST(SwmrStoreTest, SnapshotsAreIsolatedFromLaterCommits) {
  const std::string dir = TempDir("swmr");
  std::filesystem::remove_all(dir);
  {
    DocumentStoreOptions build;
    build.dir = dir;
    auto built = DocumentStore::Build(kDocXml, build);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Flush().ok());
  }

  auto swmr = SwmrStore::Open(dir);
  ASSERT_TRUE(swmr.ok()) << swmr.status().ToString();

  auto before = (*swmr)->snapshot();
  ASSERT_NE(before, nullptr);
  {
    QueryEngine engine(before->store());
    auto rows = engine.Evaluate("/bib/book");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 2u);
  }

  ASSERT_TRUE((*swmr)
                  ->InsertSubtree(DeweyId({0}), 2,
                                  "<book><title>Third</title></book>")
                  .ok());
  ASSERT_TRUE((*swmr)->Commit().ok());

  auto after = (*swmr)->snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->epoch(), before->epoch());

  // The old snapshot still answers from its own epoch...
  {
    QueryEngine engine(before->store());
    auto rows = engine.Evaluate("/bib/book");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 2u);
  }
  // ...while the new one sees the committed insert.
  {
    QueryEngine engine(after->store());
    auto rows = engine.Evaluate("/bib/book");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 3u);
  }

  // Draining the old snapshot lets the store reclaim its pre-images.
  before.reset();
  SwmrStore::Stats stats = (*swmr)->stats();
  EXPECT_EQ(stats.retained_entries, 0u);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_GE(stats.snapshots_published, 2u);

  swmr->reset();
  std::filesystem::remove_all(dir);
}

TEST(SwmrStoreTest, SharedPlanCacheServesBothSnapshots) {
  const std::string dir = TempDir("swmr_cache");
  std::filesystem::remove_all(dir);
  {
    DocumentStoreOptions build;
    build.dir = dir;
    auto built = DocumentStore::Build(kDocXml, build);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Flush().ok());
  }
  auto swmr = SwmrStore::Open(dir);
  ASSERT_TRUE(swmr.ok()) << swmr.status().ToString();

  SharedPlanCache cache;
  QueryOptions q;
  q.use_plan_cache = true;

  auto snap = (*swmr)->snapshot();
  QueryEngine a(snap->store());
  a.set_shared_plan_cache(&cache);
  ASSERT_TRUE(a.Evaluate("/bib/book/title", q).ok());
  QueryEngine b(snap->store());
  b.set_shared_plan_cache(&cache);
  ASSERT_TRUE(b.Evaluate("/bib/book/title", q).ok());
  EXPECT_EQ(cache.stats().hits, 1u);  // Second engine reused the plan.

  // A commit changes the epoch, so the same query misses (by key), never
  // serving a plan built against the old generation.
  ASSERT_TRUE((*swmr)
                  ->InsertSubtree(DeweyId({0}), 2,
                                  "<book><title>T</title></book>")
                  .ok());
  ASSERT_TRUE((*swmr)->Commit().ok());
  auto snap2 = (*swmr)->snapshot();
  QueryEngine c(snap2->store());
  c.set_shared_plan_cache(&cache);
  ASSERT_TRUE(c.Evaluate("/bib/book/title", q).ok());
  EXPECT_EQ(cache.stats().hits, 1u);  // Still 1: new epoch was a miss.

  snap.reset();
  snap2.reset();
  swmr->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nok
