// Shared helpers for the test suite: random document and random query
// generation for property/differential tests.

#ifndef NOKXML_TESTS_TEST_UTIL_H_
#define NOKXML_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace nok {
namespace testutil {

/// Knobs for random document generation.
struct RandomDocOptions {
  size_t max_nodes = 120;
  int max_depth = 6;
  int max_children = 4;
  int tag_pool = 5;        ///< Tags "a".."e" by default.
  int value_pool = 6;      ///< Values "v0".."v5"; ~half of leaves get one.
  double value_prob = 0.5;
  double attr_prob = 0.15; ///< Chance of an attribute per element.
};

/// Generates a random well-formed XML document.
std::string RandomXml(Random* rng, const RandomDocOptions& options = {});

/// Generates a random path expression in the supported subset, using the
/// same tag/value pools as RandomXml so queries actually hit.
std::string RandomQuery(Random* rng, const RandomDocOptions& options = {});

}  // namespace testutil
}  // namespace nok

#endif  // NOKXML_TESTS_TEST_UTIL_H_
