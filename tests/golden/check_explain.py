#!/usr/bin/env python3
"""Golden-file test for `nokq explain`.

Builds a store from tests/golden/explain_doc.xml in a temp directory,
runs `nokq explain` for three representative queries (tag-index probe,
value-index probe, and a branchy scan + structural semi-join, the last
one under both join orders), normalizes the volatile fields (page and
timing counters vary with build flags and machine speed) and compares
the result against the checked-in .golden files.

Usage:
  check_explain.py --nokq build/tools/nokq [--update]
"""

import argparse
import difflib
import re
import subprocess
import sys
import tempfile
from pathlib import Path

# (golden file stem, xpath, extra explain flags).
CASES = [
    ("explain_tag_index", "//special", []),
    ("explain_value_index", '//item[name="needle"]', []),
    ("explain_branchy", "//item[.//special]", []),
    ("explain_branchy_fixed", "//item[.//special]", ["--fixed-order"]),
]


def normalize(text: str) -> str:
    """Masks timings and page counts; the plan and cardinalities stay."""
    text = re.sub(r"pages=\d+", "pages=N", text)
    text = re.sub(r"time=[0-9.]+ms", "time=T", text)
    return text


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nokq", required=True, help="path to the nokq binary")
    parser.add_argument(
        "--golden-dir", default=str(Path(__file__).resolve().parent)
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the golden files"
    )
    args = parser.parse_args()

    golden_dir = Path(args.golden_dir)
    doc = golden_dir / "explain_doc.xml"

    failures = 0
    with tempfile.TemporaryDirectory(prefix="nokq_explain_") as tmp:
        store = str(Path(tmp) / "store")
        build = subprocess.run(
            [args.nokq, "build", str(doc), store],
            capture_output=True,
            text=True,
        )
        if build.returncode != 0:
            print(f"nokq build failed:\n{build.stderr}", file=sys.stderr)
            return 1

        for stem, xpath, flags in CASES:
            run = subprocess.run(
                [args.nokq, "explain", store, xpath] + flags,
                capture_output=True,
                text=True,
            )
            if run.returncode != 0:
                print(
                    f"{stem}: nokq explain failed:\n{run.stderr}",
                    file=sys.stderr,
                )
                failures += 1
                continue
            got = normalize(run.stdout)
            golden_path = golden_dir / f"{stem}.golden"
            if args.update:
                golden_path.write_text(got)
                print(f"updated {golden_path}")
                continue
            if not golden_path.exists():
                print(f"{stem}: missing golden file {golden_path}",
                      file=sys.stderr)
                failures += 1
                continue
            want = golden_path.read_text()
            if got != want:
                diff = "".join(
                    difflib.unified_diff(
                        want.splitlines(keepends=True),
                        got.splitlines(keepends=True),
                        fromfile=str(golden_path),
                        tofile=f"nokq explain '{xpath}'",
                    )
                )
                print(f"{stem}: output differs:\n{diff}", file=sys.stderr)
                failures += 1
            else:
                print(f"{stem}: ok")

    if failures:
        print(
            f"{failures} golden mismatch(es); rerun with --update after "
            "verifying the new output is intended",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
