// Deliberately-broken thread-safety fixture.  NOT part of any build
// target: CMake's NOK_THREAD_SAFETY mode and `ci/run_checks.sh
// thread-safety` negative-compile this file to prove the gate has
// teeth.  It must compile cleanly WITHOUT -Wthread-safety (plain C++)
// and FAIL under clang with -Werror=thread-safety: Get() reads a
// GUARDED_BY member without holding the mutex.
//
// If you are here because the gate went red on this file: that is the
// gate working.  Do not "fix" the missing lock.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class BrokenCounter {
 public:
  void Add(int n) {
    nok::MutexLock lock(&mu_);
    value_ += n;
  }

  // BROKEN ON PURPOSE: reads value_ without mu_ held.  Under clang
  // -Werror=thread-safety this is the expected compile error.
  int Get() const { return value_; }

 private:
  mutable nok::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  BrokenCounter counter;
  counter.Add(41);
  counter.Add(1);
  return counter.Get() == 42 ? 0 : 1;
}
