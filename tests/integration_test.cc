// End-to-end integration: generated datasets, category queries, and all
// four engines (NoK + three baselines) agreeing with each other.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/di_engine.h"
#include "baseline/interval_encoding.h"
#include "baseline/navigational_engine.h"
#include "baseline/twigstack_engine.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "datagen/usecases_corpus.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"
#include "tests/oracle.h"
#include "xml/dom.h"

namespace nok {
namespace {

GenOptions SmallScale() {
  GenOptions options;
  options.scale = 0.02;
  options.seed = 7;
  return options;
}

TEST(DatasetGenTest, ShapesMatchTable1Character) {
  // At scale 1 the generators approximate Table 1; here check the shape
  // *character* cheaply at small scale.
  GenOptions options = SmallScale();
  auto author = GenerateDataset(Dataset::kAuthor, options);
  auto tree = DomTree::Parse(author.xml);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  // Mostly depth 3 (authors/author/leaf); the planted marker chain
  // authors/author/award/prize/medal caps it at 5.
  EXPECT_LE(tree->max_depth(), 5);
  EXPECT_LE(tree->distinct_tags(), 10u);

  auto treebank = GenerateDataset(Dataset::kTreebank, options);
  auto tb = DomTree::Parse(treebank.xml);
  ASSERT_TRUE(tb.ok()) << tb.status().ToString();
  EXPECT_GT(tb->max_depth(), 10);        // Deep.
  EXPECT_GT(tb->distinct_tags(), 60u);   // Large alphabet.

  auto catalog = GenerateDataset(Dataset::kCatalog, options);
  auto cat = DomTree::Parse(catalog.xml);
  ASSERT_TRUE(cat.ok());
  EXPECT_GE(cat->max_depth(), 5);
  EXPECT_LE(cat->max_depth(), 8);
}

TEST(DatasetGenTest, PlantedNeedleCountsAreExact) {
  GenOptions options = SmallScale();
  for (Dataset dataset : AllDatasets()) {
    auto ds = GenerateDataset(dataset, options);
    auto tree = DomTree::Parse(ds.xml);
    ASSERT_TRUE(tree.ok()) << ds.name;
    size_t hi = 0, mod = 0, low = 0;
    ForEachNode(tree->root(), [&](const DomNode* n) {
      if (n->value == ds.needle_hi_a) ++hi;
      if (n->value == ds.needle_mod_a) ++mod;
      if (n->value == ds.needle_low_a) ++low;
    });
    EXPECT_EQ(hi, ds.count_hi) << ds.name;
    EXPECT_EQ(mod, ds.count_mod - ds.count_hi) << ds.name;
    EXPECT_EQ(low, ds.count_low - ds.count_mod) << ds.name;
  }
}

TEST(QueryGenTest, TwelveCategoriesParse) {
  auto ds = GenerateDataset(Dataset::kAuthor, SmallScale());
  auto queries = QueriesForDataset(ds);
  ASSERT_EQ(queries.size(), 12u);
  for (const auto& q : queries) {
    EXPECT_TRUE(ParseXPath(q.xpath).ok()) << q.id << ": " << q.xpath;
  }
  auto variants = DescendantVariants(queries, 1);
  ASSERT_EQ(variants.size(), 12u);
  for (const auto& q : variants) {
    EXPECT_TRUE(ParseXPath(q.xpath).ok()) << q.id << ": " << q.xpath;
    EXPECT_NE(q.xpath.find("//"), std::string::npos) << q.xpath;
  }
}

TEST(QueryGenTest, SelectivityClassesHold) {
  auto ds = GenerateDataset(Dataset::kAuthor, GenOptions{.scale = 0.5,
                                                         .seed = 3});
  auto store = DocumentStore::Build(ds.xml, DocumentStore::Options());
  ASSERT_TRUE(store.ok());
  QueryEngine engine(store->get());
  for (const auto& q : QueriesForDataset(ds)) {
    auto r = engine.Evaluate(q.xpath);
    ASSERT_TRUE(r.ok()) << q.xpath;
    const size_t n = r->size();
    switch (q.category[0]) {
      case 'h':
        EXPECT_LE(n, 9u) << q.id << " " << q.xpath;
        EXPECT_GE(n, 1u) << q.id << " " << q.xpath;
        break;
      case 'm':
        EXPECT_GT(n, 9u) << q.id << " " << q.xpath;
        EXPECT_LT(n, 100u) << q.id << " " << q.xpath;
        break;
      case 'l':
        EXPECT_GE(n, 100u) << q.id << " " << q.xpath;
        break;
      default:
        FAIL() << q.category;
    }
  }
}

class DatasetEngines : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatasetEngines, AllFourEnginesAgreeOnCategories) {
  auto ds = GenerateDataset(GetParam(), SmallScale());
  auto store = DocumentStore::Build(ds.xml, DocumentStore::Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  QueryEngine engine(store->get());
  auto dom = DomTree::Parse(ds.xml);
  ASSERT_TRUE(dom.ok());
  auto interval = IntervalDocument::Build(ds.xml);
  ASSERT_TRUE(interval.ok());
  DiEngine di(&*interval);
  TwigStackEngine twig(&*interval);
  NavigationalEngine nav(&*dom);

  std::vector<const DomNode*> doc_order;
  ForEachNode(dom->root(),
              [&](const DomNode* n) { doc_order.push_back(n); });

  auto queries = QueriesForDataset(ds);
  auto variants = DescendantVariants(queries, 5);
  queries.insert(queries.end(), variants.begin(), variants.end());
  for (const auto& q : queries) {
    auto pattern = ParseXPath(q.xpath);
    ASSERT_TRUE(pattern.ok()) << q.xpath;

    auto nok_r = engine.Evaluate(q.xpath);
    ASSERT_TRUE(nok_r.ok()) << q.xpath;
    std::vector<std::string> nok_s;
    for (const auto& d : *nok_r) nok_s.push_back(d.ToString());

    auto di_r = di.Evaluate(*pattern);
    ASSERT_TRUE(di_r.ok()) << q.xpath;
    std::vector<std::string> di_s;
    for (uint32_t i : *di_r) di_s.push_back(DomDewey(doc_order[i]).ToString());
    EXPECT_EQ(nok_s, di_s) << "DI " << q.id << " " << q.xpath;

    auto twig_r = twig.Evaluate(*pattern);
    ASSERT_TRUE(twig_r.ok()) << q.xpath;
    std::vector<std::string> twig_s;
    for (uint32_t i : *twig_r) {
      twig_s.push_back(DomDewey(doc_order[i]).ToString());
    }
    EXPECT_EQ(nok_s, twig_s) << "TwigStack " << q.id << " " << q.xpath;

    auto nav_r = nav.Evaluate(*pattern);
    ASSERT_TRUE(nav_r.ok()) << q.xpath;
    std::vector<std::string> nav_s;
    for (const DomNode* n : *nav_r) nav_s.push_back(DomDewey(n).ToString());
    EXPECT_EQ(nok_s, nav_s) << "Nav " << q.id << " " << q.xpath;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetEngines,
                         ::testing::ValuesIn(AllDatasets()),
                         [](const auto& suite_info) {
                           return std::string(
                               DatasetName(suite_info.param));
                         });

TEST(UseCasesCorpusTest, ParsesAndReproducesAxisRatio) {
  const auto& corpus = UseCasesPathCorpus();
  EXPECT_GE(corpus.size(), 35u);
  int child = 0, global = 0;
  for (const std::string& expr : corpus) {
    auto stats = CollectAxisStats(expr);
    ASSERT_TRUE(stats.ok()) << expr;
    child += stats->child_steps + stats->following_sibling_steps;
    global += stats->descendant_steps + stats->following_steps;
  }
  // The paper's Section 1 claim: roughly 2/3 local vs 1/3 global.
  const double local_fraction =
      static_cast<double>(child) / static_cast<double>(child + global);
  EXPECT_GT(local_fraction, 0.55);
  EXPECT_LT(local_fraction, 0.85);
}

}  // namespace
}  // namespace nok
