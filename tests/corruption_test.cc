// On-disk damage tests: a checksummed store must turn every flipped byte
// and every truncation into a clean Corruption/IOError -- reported by the
// offline verifier with the damaged file and page named -- and a torn
// multi-file commit (mismatched epochs) must be refused at open.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "encoding/document_store.h"
#include "encoding/store_verifier.h"
#include "encoding/tag_dictionary.h"
#include "encoding/value_store.h"
#include "storage/file.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP</title><author><last>Stevens"
    "</last><first>W.</first></author><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title><author><last>"
    "Abiteboul</last><first>Serge</first></author><price>39.95</price>"
    "</book>"
    "</bib>";

std::string TempDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("nokxml_corrupt_" + name + "_" + std::to_string(::getpid())))
      .string();
}

/// Small pages so the bib document spans several of them.
DocumentStoreOptions ChecksummedOptions(const std::string& dir) {
  DocumentStoreOptions options;
  options.dir = dir;
  options.checksum_pages = true;
  options.page_size = 256;
  options.index_page_size = 512;
  return options;
}

void BuildChecksummedStore(const std::string& dir) {
  std::filesystem::remove_all(dir);
  auto store = DocumentStore::Build(kBibXml, ChecksummedOptions(dir));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->Flush().ok());
}

void FlipByte(const std::string& path, uint64_t offset) {
  auto file = OpenPosixFile(path, /*create=*/false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  char byte;
  Slice got;
  ASSERT_TRUE((*file)->ReadAt(offset, 1, &byte, &got).ok());
  const char flipped = static_cast<char>(got[0] ^ 0x01);
  ASSERT_TRUE((*file)->WriteAt(offset, Slice(&flipped, 1)).ok());
}

uint64_t FileSize(const std::string& path) {
  auto file = OpenPosixFile(path, /*create=*/false);
  EXPECT_TRUE(file.ok());
  return file.ok() ? (*file)->Size() : 0;
}

// ---------------------------------------------------------------------------
// Bit rot.

TEST(CorruptionTest, FlippedByteInAnyPageOfAnyFileIsDetected) {
  const std::string dir = TempDir("flippage");
  BuildChecksummedStore(dir);

  const DocumentStoreOptions options = ChecksummedOptions(dir);
  struct Target {
    const char* name;
    uint32_t page_size;
  };
  for (const Target& t :
       {Target{store_files::kTree, options.page_size},
        Target{store_files::kTagIdx, options.index_page_size},
        Target{store_files::kValIdx, options.index_page_size},
        Target{store_files::kIdIdx, options.index_page_size},
        Target{store_files::kPathIdx, options.index_page_size}}) {
    const std::string path = dir + "/" + t.name;
    const uint64_t slot = t.page_size + kPageTrailerSize;
    const uint64_t pages = FileSize(path) / slot;
    ASSERT_GT(pages, 0u) << t.name;
    for (uint64_t page = 0; page < pages; ++page) {
      // One byte in the middle of this page's body.
      const uint64_t offset = page * slot + t.page_size / 2;
      FlipByte(path, offset);
      auto report = VerifyStoreDir(dir, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_FALSE(report->ok())
          << t.name << " page " << page << ": damage not detected";
      EXPECT_EQ(report->issues[0].component, t.name);
      EXPECT_NE(report->issues[0].detail.find(
                    "page " + std::to_string(page)),
                std::string::npos)
          << report->issues[0].detail;
      FlipByte(path, offset);  // Heal.
    }
  }
  // Healed store is clean again.
  auto report = VerifyStoreDir(dir, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_GT(report->entries_checked, 0u);
  std::filesystem::remove_all(dir);
}

TEST(CorruptionTest, FlippedTreePageFailsQueriesWithCorruption) {
  const std::string dir = TempDir("flipquery");
  BuildChecksummedStore(dir);
  const std::string tree_path = dir + "/" + store_files::kTree;
  const uint64_t slot = 256 + kPageTrailerSize;
  // Damage the last data page (page 0 is the meta page; damaging it fails
  // the open itself, which the truncation test covers).
  const uint64_t pages = FileSize(tree_path) / slot;
  ASSERT_GT(pages, 1u);
  FlipByte(tree_path, (pages - 1) * slot + 100);

  auto store = DocumentStore::OpenDir(ChecksummedOptions(dir));
  if (store.ok()) {
    // The open may not touch the damaged page; a full scan must.
    auto book_tag = (*store)->tags()->Lookup("book");
    ASSERT_TRUE(book_tag.has_value());
    Status s = Status::OK();
    for (uint32_t i = 0; i < 8 && s.ok(); ++i) {
      s = (*store)->Locate(DeweyId({0, 0, 2, 0})).status();
      s = s.ok() ? (*store)->Navigate(DeweyId({0, 1, 2, 0})).status() : s;
    }
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  } else {
    EXPECT_TRUE(store.status().IsCorruption()) << store.status().ToString();
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Truncation.

TEST(CorruptionTest, TruncatedComponentFilesNeverCrashTheOpen) {
  const std::string dir = TempDir("trunc");
  const std::string scratch = TempDir("trunc_scratch");
  BuildChecksummedStore(dir);

  const std::vector<const char*> components = {
      store_files::kTree,   store_files::kValues, store_files::kDict,
      store_files::kTagIdx, store_files::kValIdx, store_files::kIdIdx,
      store_files::kPathIdx};
  for (const char* name : components) {
    const uint64_t orig = FileSize(dir + "/" + name);
    ASSERT_GT(orig, 0u) << name;
    for (uint64_t size : std::vector<uint64_t>{0, 1, orig / 2, orig - 1}) {
      if (size >= orig) continue;
      // path.idx is derived and rebuildable; an empty one is legitimately
      // re-formatted on open rather than rejected.
      if (std::string(name) == store_files::kPathIdx && size == 0) continue;

      std::filesystem::remove_all(scratch);
      std::filesystem::copy(dir, scratch);
      {
        auto file = OpenPosixFile(scratch + "/" + name, /*create=*/false);
        ASSERT_TRUE(file.ok());
        ASSERT_TRUE((*file)->Truncate(size).ok());
      }

      // The damage must surface as a clean error -- at open or in the
      // scrub -- never as a crash or a store that reads back clean.
      auto store = DocumentStore::OpenDir(ChecksummedOptions(scratch));
      if (!store.ok()) {
        EXPECT_TRUE(store.status().IsCorruption() ||
                    store.status().IsIOError() ||
                    store.status().IsNotFound())
            << name << " @" << size << ": " << store.status().ToString();
        continue;
      }
      auto report = VerifyStoreDir(scratch, ChecksummedOptions(scratch));
      if (report.ok()) {
        EXPECT_FALSE(report->ok())
            << name << " truncated to " << size
            << " opened and verified clean";
      }
    }
  }
  std::filesystem::remove_all(scratch);
  std::filesystem::remove_all(dir);
}

TEST(CorruptionTest, StandaloneStoreOpensRejectDamagedFiles) {
  // StringStore: a file too small to hold a meta page.
  {
    auto file = NewMemFile();
    ASSERT_TRUE(file->WriteAt(0, Slice("x")).ok());
    Status s = StringStore::Open(std::move(file)).status();
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  // StringStore: an empty file is not a store either.
  {
    Status s = StringStore::Open(NewMemFile()).status();
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  // BTree: a file that is not a whole number of pages.
  {
    auto file = NewMemFile();
    ASSERT_TRUE(file->WriteAt(0, Slice(std::string(100, 'b'))).ok());
    BTreeOptions options;
    options.page_size = 512;
    Status s = BTree::Open(std::move(file), options).status();
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  // BTree: an empty file with error_if_empty set means lost data.
  {
    BTreeOptions options;
    options.error_if_empty = true;
    Status s = BTree::Open(NewMemFile(), options).status();
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  // TagDictionary: a header-bearing blob cut off mid-payload.
  {
    TagDictionary dict;
    ASSERT_TRUE(dict.Intern("tag").ok());
    const std::string blob = dict.Serialize(1);
    auto r = TagDictionary::Deserialize(Slice(blob.data(), blob.size() - 2));
    EXPECT_FALSE(r.ok());
  }
}

// ---------------------------------------------------------------------------
// Persisted tag summaries (format v3 meta extension).

TEST(CorruptionTest, StaleTagSummaryWordIsDetected) {
  // A raw (non-checksummed) v3 store: a flipped byte in a persisted
  // summary word slips past the page scrub and the structural open, but
  // the verifier's recompute pass must catch it -- a summary missing a
  // present tag silently drops matches from fused scans.
  const std::string dir = TempDir("tagsum");
  std::filesystem::remove_all(dir);
  DocumentStoreOptions options;
  options.dir = dir;
  options.page_size = 256;
  options.index_page_size = 512;
  {
    auto store = DocumentStore::Build(kBibXml, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto clean = VerifyStoreDir(dir, options);
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean->ok());
  }

  // Meta page layout: the summary word of the first data page sits at
  // offset 48 (kMetaSummaryBase) of page 0.
  FlipByte(dir + "/" + store_files::kTree, 48);

  auto report = VerifyStoreDir(dir, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->ok()) << "stale summary word not detected";
  bool found = false;
  for (const VerifyIssue& issue : report->issues) {
    if (issue.detail.find("tag summary") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report->issues[0].detail;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Epoch mismatch (torn multi-file commit).

TEST(CorruptionTest, MixedGenerationComponentsAreRefused) {
  const std::string dir = TempDir("epoch");
  const std::string old_copy = TempDir("epoch_old");
  BuildChecksummedStore(dir);
  std::filesystem::remove_all(old_copy);
  std::filesystem::copy(dir, old_copy);

  // Advance the store by one generation.
  {
    auto store = DocumentStore::OpenDir(ChecksummedOptions(dir));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
  }

  // Splice the previous generation's tag index into the new store: the
  // torn-commit shape a crash between component syncs would leave.
  std::filesystem::copy_file(
      old_copy + "/" + store_files::kTagIdx,
      dir + "/" + store_files::kTagIdx,
      std::filesystem::copy_options::overwrite_existing);

  auto store = DocumentStore::OpenDir(ChecksummedOptions(dir));
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsCorruption()) << store.status().ToString();
  EXPECT_NE(store.status().ToString().find("generation"), std::string::npos)
      << store.status().ToString();

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(old_copy);
}

// ---------------------------------------------------------------------------
// Value records and the dictionary.

TEST(CorruptionTest, ValueRecordChecksumDetectsFlippedPayloadByte) {
  auto file = NewMemFile();
  File* raw = file.get();
  ValueStoreOptions options;
  options.checksum_records = true;
  auto store = ValueStore::Open(std::move(file), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  uint64_t offset = 0;
  ASSERT_TRUE((*store)->Append(Slice("precious payload"), &offset).ok());
  ASSERT_TRUE((*store)->Read(offset).ok());

  // Flip a payload byte (skip the length varint at the record start).
  char byte;
  Slice got;
  ASSERT_TRUE(raw->ReadAt(offset + 3, 1, &byte, &got).ok());
  const char flipped = static_cast<char>(got[0] ^ 0x10);
  ASSERT_TRUE(raw->WriteAt(offset + 3, Slice(&flipped, 1)).ok());

  Status s = (*store)->Read(offset).status();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CorruptionTest, DictionaryChecksumDetectsDamage) {
  TagDictionary dict;
  ASSERT_TRUE(dict.Intern("chapter").ok());
  ASSERT_TRUE(dict.Intern("section").ok());
  const std::string blob = dict.Serialize(/*epoch=*/7);

  uint64_t epoch = 0;
  auto reloaded = TagDictionary::Deserialize(Slice(blob), &epoch);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(epoch, 7u);

  std::string damaged = blob;
  damaged[damaged.size() / 2] =
      static_cast<char>(damaged[damaged.size() / 2] ^ 0x01);
  auto broken = TagDictionary::Deserialize(Slice(damaged), &epoch);
  EXPECT_FALSE(broken.ok()) << "flipped byte accepted";
}

}  // namespace
}  // namespace nok
