#include "encoding/bp_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/random.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "tests/test_util.h"

namespace nok {
namespace {

// ---------------------------------------------------------------------
// Naive O(n) reference implementations over a parenthesis string.

uint64_t NaiveRank1(const std::string& parens, uint64_t pos) {
  uint64_t rank = 0;
  for (uint64_t i = 0; i < pos; ++i) {
    if (parens[i] == '(') ++rank;
  }
  return rank;
}

uint64_t NaiveSelect1(const std::string& parens, uint64_t rank) {
  uint64_t seen = 0;
  for (uint64_t i = 0; i < parens.size(); ++i) {
    if (parens[i] == '(' && seen++ == rank) return i;
  }
  return ~uint64_t{0};
}

int64_t NaiveExcess(const std::string& parens, uint64_t pos) {
  int64_t e = 0;
  for (uint64_t i = 0; i <= pos; ++i) {
    e += parens[i] == '(' ? 1 : -1;
  }
  return e;
}

uint64_t NaiveFindClose(const std::string& parens, uint64_t pos) {
  int64_t depth = 0;
  for (uint64_t i = pos; i < parens.size(); ++i) {
    depth += parens[i] == '(' ? 1 : -1;
    if (depth == 0) return i;
  }
  return ~uint64_t{0};
}

std::optional<uint64_t> NaiveEnclose(const std::string& parens,
                                     uint64_t pos) {
  int64_t depth = 0;
  for (uint64_t i = pos; i-- > 0;) {
    depth += parens[i] == '(' ? 1 : -1;
    if (parens[i] == '(' && depth > 0) return i;
  }
  return std::nullopt;
}

/// A random balanced parenthesis string with `nodes` node pairs: a
/// depth-bounded random walk that spends its opens with probability
/// proportional to the remaining budget.
std::string RandomParens(Random* rng, uint64_t nodes) {
  std::string out = "(";
  uint64_t opened = 1, closed = 0;
  int64_t depth = 1;
  while (out.size() < 2 * nodes) {
    const bool can_open = opened < nodes;
    // The root close is emitted last: never drop to depth 0 early.
    const bool can_close = depth > 1;
    if (can_open && (!can_close || rng->Uniform(2) == 0)) {
      out += '(';
      ++opened;
      ++depth;
    } else if (can_close) {
      out += ')';
      ++closed;
      --depth;
    } else {
      break;
    }
  }
  while (depth > 0) {
    out += ')';
    ++closed;
    --depth;
  }
  EXPECT_EQ(out.size(), 2 * opened);
  return out;
}

std::vector<TagId> RandomTags(Random* rng, uint64_t nodes, int pool) {
  std::vector<TagId> tags;
  tags.reserve(nodes);
  for (uint64_t i = 0; i < nodes; ++i) {
    tags.push_back(static_cast<TagId>(1 + rng->Uniform(
                                              static_cast<uint64_t>(pool))));
  }
  return tags;
}

// ---------------------------------------------------------------------
// Golden tests on a hand-built string.
//
//   pos:   0123456789
//   bits:  (()(()()))
//
// A root with two children; the second child has two leaf children.

std::unique_ptr<BpIndex> Golden() {
  auto bp = BpIndex::FromParens("(()(()()))", {10, 20, 30, 40, 50}, 7);
  EXPECT_TRUE(bp.ok()) << bp.status().ToString();
  return std::move(bp).ValueOrDie();
}

TEST(BpIndexTest, GoldenShape) {
  auto bp = Golden();
  EXPECT_EQ(bp->node_count(), 5u);
  EXPECT_EQ(bp->bit_count(), 10u);
  EXPECT_EQ(bp->epoch(), 7u);
  EXPECT_GT(bp->MemoryBytes(), 0u);
}

TEST(BpIndexTest, GoldenRankSelectExcess) {
  auto bp = Golden();
  EXPECT_TRUE(bp->IsOpen(0));
  EXPECT_FALSE(bp->IsOpen(2));
  EXPECT_EQ(bp->Rank1(0), 0u);
  EXPECT_EQ(bp->Rank1(4), 3u);
  EXPECT_EQ(bp->Rank1(10), 5u);
  EXPECT_EQ(bp->Select1(0), 0u);
  EXPECT_EQ(bp->Select1(1), 1u);
  EXPECT_EQ(bp->Select1(2), 3u);
  EXPECT_EQ(bp->Select1(3), 4u);
  EXPECT_EQ(bp->Select1(4), 6u);
  EXPECT_EQ(bp->Excess(0), 1);
  EXPECT_EQ(bp->Excess(3), 2);
  EXPECT_EQ(bp->Excess(4), 3);
  EXPECT_EQ(bp->Excess(9), 0);
}

TEST(BpIndexTest, GoldenFindCloseEnclose) {
  auto bp = Golden();
  EXPECT_EQ(bp->FindClose(0), 9u);
  EXPECT_EQ(bp->FindClose(1), 2u);
  EXPECT_EQ(bp->FindClose(3), 8u);
  EXPECT_EQ(bp->FindClose(4), 5u);
  EXPECT_EQ(bp->FindClose(6), 7u);
  EXPECT_FALSE(bp->Enclose(0).has_value());
  EXPECT_EQ(bp->Enclose(1), std::optional<uint64_t>(0));
  EXPECT_EQ(bp->Enclose(3), std::optional<uint64_t>(0));
  EXPECT_EQ(bp->Enclose(4), std::optional<uint64_t>(3));
  EXPECT_EQ(bp->Enclose(6), std::optional<uint64_t>(3));
}

TEST(BpIndexTest, GoldenTreeSteps) {
  auto bp = Golden();
  EXPECT_EQ(bp->Depth(0), 1);
  EXPECT_EQ(bp->Depth(4), 3);
  EXPECT_EQ(bp->FirstChild(0), std::optional<uint64_t>(1));
  EXPECT_FALSE(bp->FirstChild(1).has_value());
  EXPECT_EQ(bp->FirstChild(3), std::optional<uint64_t>(4));
  EXPECT_EQ(bp->FollowingSibling(1), std::optional<uint64_t>(3));
  EXPECT_FALSE(bp->FollowingSibling(3).has_value());
  EXPECT_EQ(bp->FollowingSibling(4), std::optional<uint64_t>(6));
  EXPECT_EQ(bp->Parent(4), std::optional<uint64_t>(3));
  EXPECT_FALSE(bp->Parent(0).has_value());
}

TEST(BpIndexTest, GoldenTagsAndFusedScan) {
  auto bp = Golden();
  EXPECT_EQ(bp->TagAt(0), 10);
  EXPECT_EQ(bp->TagAt(3), 30);
  EXPECT_EQ(bp->TagAt(6), 50);
  EXPECT_EQ(bp->TagAtRank(4), 50);
  uint64_t skipped = 0;
  // Starting *after* pos 0: the next node tagged 30 is at pos 3.
  EXPECT_EQ(bp->NextOpenWithTag(0, 30, &skipped),
            std::optional<uint64_t>(3));
  // No node after pos 3 carries tag 20.
  EXPECT_FALSE(bp->NextOpenWithTag(3, 20, &skipped).has_value());
  EXPECT_EQ(bp->NextOpen(0), std::optional<uint64_t>(1));
  EXPECT_EQ(bp->NextOpen(1), std::optional<uint64_t>(3));
  EXPECT_FALSE(bp->NextOpen(6).has_value());
}

TEST(BpIndexTest, RejectsUnbalancedParens) {
  EXPECT_FALSE(BpIndex::FromParens("(()", {}, 0).ok());
  EXPECT_FALSE(BpIndex::FromParens("())(", {}, 0).ok());
  EXPECT_FALSE(BpIndex::FromParens(")(", {}, 0).ok());
}

// ---------------------------------------------------------------------
// Randomized cross-check against the naive references.  Sizes straddle
// the support-structure boundaries: sub-word, one word, many words (the
// segment tree and the select samples only matter past 64 bits / 64
// opens).  Seeded, so failures are bit-reproducible.

TEST(BpIndexTest, RandomizedMatchesNaiveReference) {
  Random rng(20260808);
  for (const uint64_t nodes : {1u, 3u, 17u, 64u, 65u, 333u, 2500u}) {
    for (int round = 0; round < 3; ++round) {
      const std::string parens = RandomParens(&rng, nodes);
      auto bp_or = BpIndex::FromParens(
          parens, RandomTags(&rng, nodes, 4), 0);
      ASSERT_TRUE(bp_or.ok()) << bp_or.status().ToString();
      const BpIndex& bp = *bp_or.ValueOrDie();
      ASSERT_EQ(bp.node_count(), nodes);
      ASSERT_EQ(bp.bit_count(), parens.size());

      for (uint64_t pos = 0; pos < parens.size(); ++pos) {
        ASSERT_EQ(bp.IsOpen(pos), parens[pos] == '(')
            << "seedpos " << pos << " n=" << nodes;
        ASSERT_EQ(bp.Rank1(pos), NaiveRank1(parens, pos)) << pos;
        ASSERT_EQ(bp.Excess(pos), NaiveExcess(parens, pos)) << pos;
        if (parens[pos] == '(') {
          ASSERT_EQ(bp.FindClose(pos), NaiveFindClose(parens, pos)) << pos;
          ASSERT_EQ(bp.Enclose(pos), NaiveEnclose(parens, pos)) << pos;
        }
      }
      ASSERT_EQ(bp.Rank1(parens.size()), nodes);
      for (uint64_t rank = 0; rank < nodes; ++rank) {
        ASSERT_EQ(bp.Select1(rank), NaiveSelect1(parens, rank)) << rank;
      }
    }
  }
}

TEST(BpIndexTest, RandomizedFusedTagScanMatchesNaive) {
  Random rng(424242);
  const uint64_t nodes = 700;  // > 10 SWAR blocks.
  const std::string parens = RandomParens(&rng, nodes);
  // A rare tag (99) sprinkled over a common filler tag, so whole blocks
  // actually get skipped.
  std::vector<TagId> tags(nodes, 1);
  for (int i = 0; i < 5; ++i) {
    tags[rng.Uniform(nodes)] = 99;
  }
  auto bp_or = BpIndex::FromParens(parens, tags, 0);
  ASSERT_TRUE(bp_or.ok());
  const BpIndex& bp = *bp_or.ValueOrDie();

  for (const TagId want : {TagId{99}, TagId{1}, TagId{7}}) {
    uint64_t pos = 0;
    uint64_t naive_rank = 1;
    for (;;) {
      uint64_t skipped = 0;
      const auto got = bp.NextOpenWithTag(pos, want, &skipped);
      // Naive: next open strictly after pos with the wanted tag.
      std::optional<uint64_t> expect;
      for (uint64_t r = naive_rank; r < nodes; ++r) {
        if (tags[r] == want) {
          expect = NaiveSelect1(parens, r);
          break;
        }
      }
      ASSERT_EQ(got, expect) << "tag " << want << " from " << pos;
      if (!got.has_value()) break;
      pos = *got;
      naive_rank = bp.Rank1(pos + 1);
    }
  }
}

// ---------------------------------------------------------------------
// Serialization.

TEST(BpIndexTest, SerializeDeserializeRoundTrip) {
  Random rng(99);
  const uint64_t nodes = 300;
  const std::string parens = RandomParens(&rng, nodes);
  auto bp_or =
      BpIndex::FromParens(parens, RandomTags(&rng, nodes, 6), 41);
  ASSERT_TRUE(bp_or.ok());
  const BpIndex& bp = *bp_or.ValueOrDie();

  const std::string bytes = bp.Serialize();
  auto back_or = BpIndex::Deserialize(bytes);
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  const BpIndex& back = *back_or.ValueOrDie();
  EXPECT_EQ(back.node_count(), bp.node_count());
  EXPECT_EQ(back.bit_count(), bp.bit_count());
  EXPECT_EQ(back.epoch(), 41u);
  for (uint64_t pos = 0; pos < bp.bit_count(); ++pos) {
    ASSERT_EQ(back.IsOpen(pos), bp.IsOpen(pos)) << pos;
    if (bp.IsOpen(pos)) {
      ASSERT_EQ(back.TagAt(pos), bp.TagAt(pos)) << pos;
      ASSERT_EQ(back.FindClose(pos), bp.FindClose(pos)) << pos;
    }
  }
  // Deterministic encode: a round-tripped index re-serializes
  // byte-identically.
  EXPECT_EQ(back.Serialize(), bytes);
}

TEST(BpIndexTest, DeserializeRejectsCorruption) {
  auto bp = Golden();
  const std::string bytes = bp->Serialize();
  // Any single flipped byte must be rejected: header bytes break the
  // magic/version/shape checks, payload bytes break the CRC.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(BpIndex::Deserialize(bad).ok()) << "byte " << i;
  }
  EXPECT_FALSE(BpIndex::Deserialize(bytes.substr(0, 10)).ok());
  EXPECT_FALSE(BpIndex::Deserialize(bytes + "x").ok());
}

// ---------------------------------------------------------------------
// Store-level: bp navigation must answer every query exactly like the
// paged tier, and the sidecar must persist and invalidate correctly.

TEST(BpIndexTest, BpModeMatchesPagedOnRandomDocuments) {
  Random rng(777);
  for (int doc = 0; doc < 6; ++doc) {
    testutil::RandomDocOptions doc_options;
    doc_options.max_nodes = 150;
    const std::string xml = testutil::RandomXml(&rng, doc_options);

    DocumentStore::Options paged_options;
    paged_options.page_size = 512;
    auto paged = DocumentStore::Build(xml, paged_options);
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();

    DocumentStore::Options bp_options = paged_options;
    bp_options.nav_mode = NavMode::kBp;
    auto bp = DocumentStore::Build(xml, bp_options);
    ASSERT_TRUE(bp.ok()) << bp.status().ToString();

    QueryEngine paged_engine(paged->get());
    QueryEngine bp_engine(bp->get());
    bool saw_results = false;
    for (int q = 0; q < 20; ++q) {
      const std::string query = testutil::RandomQuery(&rng, doc_options);
      auto want = paged_engine.Evaluate(query);
      auto got = bp_engine.Evaluate(query);
      ASSERT_EQ(want.ok(), got.ok())
          << query << ": " << want.status().ToString() << " vs "
          << got.status().ToString();
      if (!want.ok()) continue;
      ASSERT_EQ(*want, *got) << query;
      saw_results = saw_results || !want->empty();
    }
    // The bp store navigated through the BP tier (a doc whose random
    // queries all came up empty may legitimately skip navigation: the
    // path synopsis answers schema-impossible queries with no I/O).
    if (saw_results) {
      EXPECT_GT((*bp)->tree()->nav_stats().bp_steps, 0u);
    }
  }
}

TEST(BpIndexTest, SidecarPersistsAndGoesStale) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("nokxml_bpx_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  DocumentStore::Options options;
  options.dir = dir;
  options.nav_mode = NavMode::kBp;
  {
    auto store = DocumentStore::Build(
        "<a><b><c/></b><b/><d>x</d></a>", options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Flush().ok());
    // Build materializes eagerly from the page chain, not the sidecar.
    EXPECT_FALSE((*store)->bp_loaded_from_sidecar());
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/tree.bpx"));
  {
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->bp_loaded_from_sidecar());
    uint64_t nodes_before = 0;
    {
      auto bp = (*store)->bp_index();
      ASSERT_TRUE(bp.ok());
      EXPECT_EQ((*bp)->node_count(), (*store)->stats().node_count);
      nodes_before = (*bp)->node_count();
    }  // The insert below invalidates this pointer.

    // A structural update invalidates the in-memory index; the rebuilt
    // one reflects the new topology.
    ASSERT_TRUE((*store)->InsertSubtree(DeweyId({0}), 0, "<e/>").ok());
    auto bp2 = (*store)->bp_index();
    ASSERT_TRUE(bp2.ok());
    EXPECT_FALSE((*store)->bp_loaded_from_sidecar());
    EXPECT_EQ((*bp2)->node_count(), nodes_before + 1);
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    // The Flush above re-persisted the sidecar for the new generation.
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->bp_loaded_from_sidecar());
  }
  {
    // A flipped sidecar byte fails the CRC: the open silently rebuilds
    // from the page chain instead of trusting the damaged file.
    std::fstream f(dir + "/tree.bpx",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(40);
    const char flipped = static_cast<char>(f.get() ^ 0xff);
    f.seekp(40);
    f.put(flipped);
    f.close();
    auto store = DocumentStore::OpenDir(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE((*store)->bp_loaded_from_sidecar());
    auto bp = (*store)->bp_index();
    ASSERT_TRUE(bp.ok());
    EXPECT_EQ((*bp)->node_count(), (*store)->stats().node_count);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nok
