#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace nok {
namespace {

// ---------------------------------------------------------------------------
// Status / Result.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  Status s = Status::IOError("disk gone");
  EXPECT_EQ(s.message(), "disk gone");
  EXPECT_EQ(s.ToString(), "IOError: disk gone");
}

TEST(StatusTest, CopyPreservesContent) {
  Status s = Status::Corruption("bad page");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad page");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> Doubler(Result<int> in) {
  NOK_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Internal("x")).status().IsInternal());
}

// ---------------------------------------------------------------------------
// Slice.

TEST(SliceTest, BasicViews) {
  std::string s = "hello";
  Slice a(s);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a[1], 'e');
  EXPECT_EQ(a.ToString(), "hello");
  a.RemovePrefix(2);
  EXPECT_EQ(a.ToString(), "llo");
}

TEST(SliceTest, Comparison) {
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(SliceTest, EmbeddedZeros) {
  std::string s("a\0b", 3);
  Slice a(s);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a == Slice(s));
}

// ---------------------------------------------------------------------------
// Coding.

TEST(CodingTest, FixedRoundTrip) {
  char buf[8];
  EncodeFixed16(buf, 0xbeef);
  EXPECT_EQ(DecodeFixed16(buf), 0xbeef);
  EncodeFixed32(buf, 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EncodeFixed64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefull);
}

TEST(CodingTest, BigEndianRoundTripAndOrder) {
  char a[8], b[8];
  EncodeBigEndian64(a, 5);
  EncodeBigEndian64(b, 300);
  EXPECT_LT(memcmp(a, b, 8), 0);  // Order-preserving.
  EXPECT_EQ(DecodeBigEndian64(a), 5u);
  EXPECT_EQ(DecodeBigEndian64(b), 300u);
  EncodeBigEndian32(a, 0x01020304u);
  EXPECT_EQ(DecodeBigEndian32(a), 0x01020304u);
  EncodeBigEndian16(a, 0x0102);
  EXPECT_EQ(DecodeBigEndian16(a), 0x0102);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Both32And64) {
  const uint64_t v = GetParam();
  std::string buf;
  PutVarint64(&buf, v);
  EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  Slice in(buf);
  uint64_t got = 0;
  ASSERT_TRUE(GetVarint64(&in, &got));
  EXPECT_EQ(got, v);
  EXPECT_TRUE(in.empty());
  if (v <= 0xffffffffull) {
    std::string buf32;
    PutVarint32(&buf32, static_cast<uint32_t>(v));
    Slice in32(buf32);
    uint32_t got32 = 0;
    ASSERT_TRUE(GetVarint32(&in32, &got32));
    EXPECT_EQ(got32, static_cast<uint32_t>(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      0xffffffffull, 0x100000000ull,
                      0xffffffffffffffffull));

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice("world"));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), "world");
  EXPECT_TRUE(in.empty());
  Slice d;
  EXPECT_FALSE(GetLengthPrefixedSlice(&in, &d));
}

TEST(CodingTest, VarintRandomRoundTripSweep) {
  Random rng(7);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice in(buf);
  for (uint64_t expected : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(in.empty());
}

// ---------------------------------------------------------------------------
// Hash / Random.

TEST(HashTest, StableKnownValues) {
  // FNV-1a is a fixed algorithm; pin a value so accidental changes to the
  // persisted hash break loudly.
  EXPECT_EQ(Hash64(Slice("")), 14695981039346656037ull);
  EXPECT_NE(Hash64(Slice("a")), Hash64(Slice("b")));
  EXPECT_NE(Hash32(Slice("a")), Hash32(Slice("b")));
}

TEST(Crc32cTest, KnownAnswer) {
  // The CRC-32C check value from the iSCSI RFC (RFC 3720) test vector.
  EXPECT_EQ(Crc32c(Slice("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(Slice("")), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    uint32_t partial = Crc32c(Slice(data.data(), split));
    uint32_t full =
        Crc32cExtend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(full, Crc32c(Slice(data))) << "split " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::string data(32, '\xAB');
  const uint32_t base = Crc32c(Slice(data));
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(Slice(data)), base) << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

TEST(HashTest, FewCollisionsOnSmallKeySpace) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(Hash64(Slice("key" + std::to_string(i))));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.05);
}

}  // namespace
}  // namespace nok
