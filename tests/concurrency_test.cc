// Concurrent read-path correctness: 8 threads evaluate 200 mixed queries
// each against one read-only DocumentStore handle, and every thread must
// produce exactly the results of a single-threaded run.  Runs under the
// sanitizer builds; with -DNOK_SANITIZE=thread this is the data-race
// gate for the sharded buffer pool and the read-only open mode.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

constexpr int kThreads = 8;
constexpr size_t kQueriesPerThread = 200;

/// 200 mixed queries: the 12 Table 2 categories plus their descendant
/// variants, cycled.
std::vector<std::string> BuildWorkload(const GeneratedDataset& ds,
                                       uint64_t seed) {
  std::vector<CategoryQuery> queries = QueriesForDataset(ds);
  const std::vector<CategoryQuery> variants =
      DescendantVariants(queries, seed);
  queries.insert(queries.end(), variants.begin(), variants.end());
  std::vector<std::string> xpaths;
  xpaths.reserve(kQueriesPerThread);
  for (size_t i = 0; i < kQueriesPerThread; ++i) {
    xpaths.push_back(queries[i % queries.size()].xpath);
  }
  return xpaths;
}

/// One thread's transcript: canonical result strings per query, or the
/// first failure.
struct Transcript {
  std::vector<std::string> results;
  Status status;
};

void RunWorkload(DocumentStore* store,
                 const std::vector<std::string>* xpaths, Transcript* out) {
  QueryEngine engine(store);
  for (const std::string& xpath : *xpaths) {
    auto result = engine.Evaluate(xpath);
    if (!result.ok()) {
      out->status = result.status();
      return;
    }
    std::string canon;
    for (const DeweyId& id : *result) {
      canon += id.ToString();
      canon += ';';
    }
    out->results.push_back(std::move(canon));
  }
}

void ExpectPoolStatsConsistent(const char* name, BufferPool* pool) {
  const BufferPool::Stats s = pool->stats();
  SCOPED_TRACE(name);
  EXPECT_EQ(s.hits + s.misses, s.fetches);
  // Every miss that succeeded did exactly one pager read, and no query
  // failed in this test.
  EXPECT_EQ(s.disk_reads, s.misses);
  EXPECT_EQ(s.disk_writes, 0u);  // Read-only store: nothing dirty, ever.
}

TEST(ConcurrencyTest, EightThreadsMatchSingleThreadedRun) {
  const std::string dir = testing::TempDir() + "/nok_concurrency_store";
  for (const char* f :
       {store_files::kTree, store_files::kValues, store_files::kDict,
        store_files::kTagIdx, store_files::kValIdx, store_files::kIdIdx,
        store_files::kPathIdx, store_files::kStale}) {
    ASSERT_TRUE(RemoveFile(dir + "/" + std::string(f)).ok());
  }

  GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 99;
  const GeneratedDataset ds = GenerateDataset(Dataset::kAuthor, gen);
  {
    DocumentStore::Options options;
    options.dir = dir;
    options.page_size = 512;
    auto built = DocumentStore::Build(ds.xml, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Flush().ok());
  }

  DocumentStore::Options options;
  options.dir = dir;
  options.page_size = 512;
  options.read_only = true;
  options.pool_shards = 16;
  options.index_pool_shards = 4;
  options.pool_frames = 64;  // Small pool: concurrent evictions happen.
  auto store = DocumentStore::OpenDir(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const std::vector<std::string> xpaths = BuildWorkload(ds, gen.seed);

  // Reference: the same workload, single-threaded.
  Transcript reference;
  RunWorkload(store->get(), &xpaths, &reference);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_EQ(reference.results.size(), kQueriesPerThread);

  std::vector<Transcript> transcripts(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back(RunWorkload, store->get(), &xpaths,
                           &transcripts[static_cast<size_t>(t)]);
    }
    for (std::thread& w : workers) w.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("thread " + std::to_string(t));
    const Transcript& got = transcripts[static_cast<size_t>(t)];
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    EXPECT_EQ(got.results, reference.results);
  }

  // Aggregated shard stats stay consistent under concurrency.
  ExpectPoolStatsConsistent("tree", (*store)->tree()->buffer_pool());
  ExpectPoolStatsConsistent("tag_index",
                            (*store)->tag_index()->buffer_pool());
  ExpectPoolStatsConsistent("value_index",
                            (*store)->value_index()->buffer_pool());
  ExpectPoolStatsConsistent("id_index",
                            (*store)->id_index()->buffer_pool());
  ExpectPoolStatsConsistent("path_index",
                            (*store)->path_index()->buffer_pool());
  EXPECT_GT((*store)->tree()->buffer_pool()->stats().fetches, 0u);
  EXPECT_EQ((*store)->tree()->buffer_pool()->shard_count(), 16u);

  // The read-only mode rejects every mutation.
  EXPECT_FALSE(
      (*store)->InsertSubtree(DeweyId::Root(), 0, "<x/>").ok());
  EXPECT_FALSE((*store)->Flush().ok());
}

}  // namespace
}  // namespace nok
