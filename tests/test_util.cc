#include "tests/test_util.h"

namespace nok {
namespace testutil {

namespace {

std::string TagName(Random* rng, const RandomDocOptions& options) {
  return std::string(1, static_cast<char>('a' + rng->Uniform(
                                                    static_cast<uint64_t>(
                                                        options.tag_pool))));
}

std::string ValueText(Random* rng, const RandomDocOptions& options) {
  return "v" + std::to_string(rng->Uniform(
                   static_cast<uint64_t>(options.value_pool)));
}

void GenElement(Random* rng, const RandomDocOptions& options, int depth,
                size_t* budget, std::string* out) {
  if (*budget == 0) return;
  --*budget;
  const std::string tag = TagName(rng, options);
  *out += '<';
  *out += tag;
  if (rng->Bernoulli(options.attr_prob)) {
    *out += " k=\"" + ValueText(rng, options) + "\"";
    if (*budget > 0) --*budget;  // The attribute is a node too.
  }
  *out += '>';
  const bool leafish =
      depth >= options.max_depth || rng->Bernoulli(0.35) || *budget == 0;
  if (leafish) {
    if (rng->Bernoulli(options.value_prob)) {
      *out += ValueText(rng, options);
    }
  } else {
    const uint64_t kids =
        rng->Range(1, static_cast<uint64_t>(options.max_children));
    for (uint64_t k = 0; k < kids && *budget > 0; ++k) {
      GenElement(rng, options, depth + 1, budget, out);
    }
    if (rng->Bernoulli(0.2)) {
      *out += ValueText(rng, options);  // Mixed content.
    }
  }
  *out += "</" + tag + ">";
}

void GenSteps(Random* rng, const RandomDocOptions& options, int remaining,
              std::string* out, bool allow_predicates) {
  while (remaining-- > 0) {
    *out += rng->Bernoulli(0.3) ? "//" : "/";
    if (allow_predicates && rng->Bernoulli(0.09)) {
      // Less-common axes: rewrites (parent, preceding-sibling) and the
      // global mirrors (following, preceding).
      switch (rng->Uniform(4)) {
        case 0: *out += "parent::"; break;
        case 1: *out += "preceding-sibling::"; break;
        case 2: *out += "following::"; break;
        default: *out += "preceding::"; break;
      }
    }
    if (rng->Bernoulli(0.08)) {
      *out += "*";
    } else if (rng->Bernoulli(0.12)) {
      *out += "@k";
      // Attribute steps are leaves: optionally add a value test later via
      // the caller; stop descending.
      return;
    } else {
      *out += TagName(rng, options);
    }
    if (allow_predicates && rng->Bernoulli(0.35)) {
      *out += "[";
      std::string sub;
      GenSteps(rng, options, static_cast<int>(rng->Range(1, 2)), &sub,
               /*allow_predicates=*/false);
      // Strip the leading '/' of the relative path ('//'-leading kept).
      if (sub.rfind("//", 0) == 0) {
        *out += "." + sub;
      } else {
        *out += sub.substr(1);
      }
      if (rng->Bernoulli(0.5)) {
        const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
        *out += ops[rng->Uniform(6)];
        *out += "\"" + ValueText(rng, options) + "\"";
      }
      *out += "]";
    }
  }
}

}  // namespace

std::string RandomXml(Random* rng, const RandomDocOptions& options) {
  std::string out;
  size_t budget = options.max_nodes;
  // A single root; force at least a couple of nodes.
  const std::string root = TagName(rng, options);
  out += "<" + root + ">";
  size_t inner_budget = budget > 1 ? budget - 1 : 1;
  const uint64_t kids = rng->Range(1, 4);
  for (uint64_t k = 0; k < kids && inner_budget > 0; ++k) {
    GenElement(rng, options, 2, &inner_budget, &out);
  }
  out += "</" + root + ">";
  return out;
}

std::string RandomQuery(Random* rng, const RandomDocOptions& options) {
  std::string out;
  GenSteps(rng, options, static_cast<int>(rng->Range(1, 4)), &out,
           /*allow_predicates=*/true);
  if (out.empty()) out = "/a";
  return out;
}

}  // namespace testutil
}  // namespace nok
