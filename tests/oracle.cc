#include "tests/oracle.h"

#include <algorithm>
#include <functional>

#include "nok/xpath_parser.h"

namespace nok {

namespace {

/// One satisfiability check: is the pattern satisfiable over the document
/// with the returning node bound to `target`?
class SatChecker {
 public:
  SatChecker(const DomTree& tree, const DomNode* target)
      : tree_(tree), target_(target) {
    ForEachNode(tree.root(), [&](const DomNode* n) {
      doc_order_.push_back(n);
    });
  }

  bool Check() {
    // The virtual root: its single "child relation" target is the root.
    return CheckNode(nullptr, VirtualPattern(), true);
  }

  /// Entry: does `node` (nullptr = virtual root) satisfy `pattern`'s
  /// subtree, honouring the returning-node binding?
  bool CheckNode(const DomNode* node, const PatternNode* pattern,
                 bool is_virtual) {
    if (pattern->is_returning && node != target_) return false;
    if (pattern->is_doc_root) {
      if (!is_virtual) return false;
    } else {
      if (is_virtual) return false;
      if (!pattern->wildcard && pattern->tag != node->name) return false;
      if (pattern->predicate.active() &&
          (node->value.empty() ||
           !EvalValuePredicate(pattern->predicate, node->value))) {
        return false;
      }
      // Positional predicate [n]: n-th among the parent's children that
      // pass this pattern node's name test (all children for '*'; the
      // root element is position 1).
      if (pattern->position > 0) {
        int position = 1;
        if (node->parent != nullptr) {
          for (const auto& sibling : node->parent->children) {
            if (sibling.get() == node) break;
            if (pattern->wildcard || sibling->name == pattern->tag) {
              ++position;
            }
          }
        }
        if (position != pattern->position) return false;
      }
    }
    // Backtracking assignment of witnesses to children.
    return AssignChildren(node, pattern, is_virtual, 0,
                          std::vector<const DomNode*>(
                              pattern->children.size(), nullptr));
  }

 private:
  const PatternNode* VirtualPattern() { return pattern_root_; }

 public:
  void set_pattern_root(const PatternNode* root) { pattern_root_ = root; }

 private:
  /// Candidate witnesses for child `c` of `node` under the child's axis.
  std::vector<const DomNode*> Candidates(const DomNode* node,
                                         bool is_virtual,
                                         const PatternNode* child) {
    std::vector<const DomNode*> out;
    switch (child->incoming) {
      case Axis::kChild:
      case Axis::kFollowingSibling:  // Tree edge; ordering checked later.
        if (is_virtual) {
          out.push_back(tree_.root());
        } else {
          for (const auto& c : node->children) out.push_back(c.get());
        }
        break;
      case Axis::kDescendant:
        if (is_virtual) {
          out = doc_order_;
        } else {
          for (const DomNode* d : doc_order_) {
            if (node->start < d->start && d->end < node->end) {
              out.push_back(d);
            }
          }
        }
        break;
      case Axis::kFollowing:
        if (!is_virtual) {
          for (const DomNode* d : doc_order_) {
            if (d->start > node->end) out.push_back(d);
          }
        }
        break;
      case Axis::kPreceding:
        if (!is_virtual) {
          for (const DomNode* d : doc_order_) {
            if (d->end < node->start) out.push_back(d);
          }
        }
        break;
    }
    return out;
  }

  bool AssignChildren(const DomNode* node, const PatternNode* pattern,
                      bool is_virtual, size_t index,
                      std::vector<const DomNode*> chosen) {
    if (index == pattern->children.size()) {
      // All chosen; verify sibling-order constraints.
      for (auto [a, b] : pattern->sibling_order) {
        const DomNode* wa = chosen[static_cast<size_t>(a)];
        const DomNode* wb = chosen[static_cast<size_t>(b)];
        if (wa->parent != wb->parent || wa->start >= wb->start) {
          return false;
        }
      }
      return true;
    }
    const PatternNode* child = pattern->children[index].get();
    for (const DomNode* witness : Candidates(node, is_virtual, child)) {
      if (!CheckNode(witness, child, false)) continue;
      chosen[index] = witness;
      if (AssignChildren(node, pattern, is_virtual, index + 1, chosen)) {
        return true;
      }
    }
    return false;
  }

  const DomTree& tree_;
  const DomNode* target_;
  std::vector<const DomNode*> doc_order_;
  const PatternNode* pattern_root_ = nullptr;
};

}  // namespace

std::vector<const DomNode*> OracleEvaluate(const PatternTree& pattern,
                                           const DomTree& tree) {
  std::vector<const DomNode*> out;
  ForEachNode(tree.root(), [&](const DomNode* candidate) {
    SatChecker checker(tree, candidate);
    checker.set_pattern_root(pattern.root());
    if (checker.Check()) out.push_back(candidate);
  });
  std::sort(out.begin(), out.end(),
            [](const DomNode* a, const DomNode* b) {
              return a->start < b->start;
            });
  return out;
}

DeweyId DomDewey(const DomNode* node) {
  std::vector<uint32_t> components;
  for (const DomNode* n = node; n != nullptr; n = n->parent) {
    components.push_back(n->parent == nullptr ? 0 : n->child_index);
  }
  std::reverse(components.begin(), components.end());
  return DeweyId(std::move(components));
}

Result<std::vector<DeweyId>> OracleEvaluateDewey(const std::string& xpath,
                                                 const DomTree& tree) {
  NOK_ASSIGN_OR_RETURN(auto pattern, ParseXPath(xpath));
  std::vector<DeweyId> out;
  for (const DomNode* node : OracleEvaluate(pattern, tree)) {
    out.push_back(DomDewey(node));
  }
  return out;
}

}  // namespace nok
