// Planner/executor/plan-cache tests: schedule validity, access-path
// selection and estimates, the bounded LRU plan cache (including
// update-driven invalidation), `ExplainLast` contents, and the
// last_stats staleness regression (a failed Evaluate must never leave
// the previous query's diagnostics in place).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/physical_matcher.h"
#include "nok/plan_cache.h"
#include "nok/planner.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"

namespace nok {
namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP Illustrated</title>"
    "<author><last>Stevens</last><first>W.</first></author>"
    "<publisher>Addison-Wesley</publisher><price>65.95</price></book>"
    "<book year=\"1992\"><title>Advanced Unix</title>"
    "<author><last>Stevens</last><first>W.</first></author>"
    "<publisher>Addison-Wesley</publisher><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title>"
    "<author><last>Abiteboul</last><first>Serge</first></author>"
    "<author><last>Buneman</last><first>Peter</first></author>"
    "<author><last>Suciu</last><first>Dan</first></author>"
    "<publisher>Morgan Kaufmann</publisher><price>39.95</price></book>"
    "<book year=\"1999\"><title>Economics of Tech</title>"
    "<editor><last>Gerbarg</last><first>Darcy</first>"
    "<affiliation>CITI</affiliation></editor>"
    "<publisher>Kluwer</publisher><price>129.95</price></book>"
    "</bib>";

std::unique_ptr<DocumentStore> MakeStore(const std::string& xml) {
  DocumentStore::Options options;
  options.page_size = 512;
  auto store = DocumentStore::Build(xml, options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).ValueOrDie();
}

struct Planned {
  NokPartition partition;
  QueryPlan plan;
};

Planned PlanFor(DocumentStore* store, const std::string& xpath,
                const QueryOptions& options = {}) {
  Planned out;
  auto pattern = ParseXPath(xpath);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  out.partition = PartitionPattern(*pattern);
  const std::vector<TagId> tag_table =
      ResolvePatternTags(*pattern, *store->tags());
  Planner planner(store);
  auto plan = planner.Plan(out.partition, tag_table, options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  out.plan = std::move(plan).ValueOrDie();
  return out;
}

/// Every arc target (child tree) must be scheduled before its source
/// (parent tree): that is the invariant that keeps semi-joins sound.
void ExpectChildrenFirst(const NokPartition& partition,
                         const std::vector<int>& schedule) {
  ASSERT_EQ(schedule.size(), partition.trees.size());
  std::vector<int> pos(schedule.size(), -1);
  for (size_t i = 0; i < schedule.size(); ++i) {
    ASSERT_GE(schedule[i], 0);
    ASSERT_LT(static_cast<size_t>(schedule[i]), schedule.size());
    pos[static_cast<size_t>(schedule[i])] = static_cast<int>(i);
  }
  for (const GlobalArc& arc : partition.arcs) {
    EXPECT_LT(pos[static_cast<size_t>(arc.to_tree)],
              pos[static_cast<size_t>(arc.from_tree)])
        << "tree " << arc.to_tree << " must run before tree "
        << arc.from_tree;
  }
}

TEST(PlannerTest, BothSchedulesAreChildrenFirst) {
  auto store = MakeStore(kBibXml);
  for (const char* xpath :
       {"/bib//book[.//first]//last", "//book[.//affiliation]",
        "//book[author/last=\"Stevens\"][.//first]", "//last"}) {
    SCOPED_TRACE(xpath);
    QueryOptions cost;
    Planned with_cost = PlanFor(store.get(), xpath, cost);
    EXPECT_TRUE(with_cost.plan.cost_based);
    ExpectChildrenFirst(with_cost.partition, with_cost.plan.schedule);

    QueryOptions fixed;
    fixed.cost_based_join_order = false;
    Planned with_fixed = PlanFor(store.get(), xpath, fixed);
    EXPECT_FALSE(with_fixed.plan.cost_based);
    ExpectChildrenFirst(with_fixed.partition, with_fixed.plan.schedule);
    EXPECT_EQ(with_fixed.plan.schedule,
              FixedSchedule(with_fixed.partition.trees.size()));
  }
}

TEST(PlannerTest, SelectivityScheduleOrdersMostSelectiveReadyFirst) {
  // Synthetic star partition: tree 0 parents trees 1 and 2.
  NokPartition partition;
  partition.trees.resize(3);
  partition.arcs.push_back({0, 0, 1, Axis::kDescendant});
  partition.arcs.push_back({0, 0, 2, Axis::kDescendant});
  std::vector<TreeAccessPlan> trees(3);
  for (int t = 0; t < 3; ++t) trees[static_cast<size_t>(t)].tree = t;
  trees[0].access.cardinality.matches = 50;
  trees[1].access.cardinality.matches = 100;
  trees[2].access.cardinality.matches = 5;

  // Trees 1 and 2 are ready (no outgoing arcs); 2 is more selective.
  // Tree 0 only becomes ready once both children are done.
  EXPECT_EQ(SelectivitySchedule(partition, trees),
            (std::vector<int>{2, 1, 0}));

  trees[1].access.cardinality.matches = 3;
  EXPECT_EQ(SelectivitySchedule(partition, trees),
            (std::vector<int>{1, 2, 0}));

  EXPECT_EQ(FixedSchedule(3), (std::vector<int>{2, 1, 0}));
}

TEST(PlannerTest, AccessPathsFollowPaperHeuristic) {
  auto store = MakeStore(kBibXml);

  // A rare tag is selective enough for the tag index; its estimate is
  // the exact B+t count.
  Planned rare = PlanFor(store.get(), "//affiliation");
  ASSERT_EQ(rare.plan.trees.size(), 2u);
  EXPECT_EQ(rare.plan.trees[1].access.strategy, StartStrategy::kTagIndex);
  EXPECT_EQ(rare.plan.trees[1].access.cardinality.candidates, 1u);

  // A frequent tag (above index_fraction of the document) scans.
  Planned frequent = PlanFor(store.get(), "//book");
  ASSERT_EQ(frequent.plan.trees.size(), 2u);
  EXPECT_EQ(frequent.plan.trees[1].access.strategy, StartStrategy::kScan);
  EXPECT_EQ(frequent.plan.trees[1].access.cardinality.candidates, 4u);

  // An equality constraint always wins (the paper's Section 6.2 rule).
  Planned value = PlanFor(store.get(), "//book[author/last=\"Stevens\"]");
  ASSERT_EQ(value.plan.trees.size(), 2u);
  EXPECT_EQ(value.plan.trees[1].access.strategy,
            StartStrategy::kValueIndex);
  EXPECT_EQ(value.plan.trees[1].access.value_operand, "Stevens");
  EXPECT_EQ(value.plan.trees[1].access.cardinality.candidates, 2u);

  // The doc-root tree is a single virtual candidate.
  EXPECT_EQ(value.plan.trees[0].access.strategy, StartStrategy::kScan);
  EXPECT_EQ(value.plan.trees[0].access.cardinality.candidates, 1u);
}

TEST(PlannerTest, ForcedStrategiesDegradeToScanWhenInapplicable) {
  auto store = MakeStore(kBibXml);

  QueryOptions force_value;
  force_value.strategy = StartStrategy::kValueIndex;
  Planned no_value = PlanFor(store.get(), "//book", force_value);
  EXPECT_EQ(no_value.plan.trees[1].access.strategy, StartStrategy::kScan);

  QueryOptions force_tag;
  force_tag.strategy = StartStrategy::kTagIndex;
  Planned all_wild = PlanFor(store.get(), "//*", force_tag);
  EXPECT_EQ(all_wild.plan.trees[1].access.strategy, StartStrategy::kScan);

  QueryOptions force_path;
  force_path.strategy = StartStrategy::kPathIndex;
  Planned no_path = PlanFor(store.get(), "//book", force_path);
  // `//book` has no rooted tag path (the arc crosses a descendant step).
  EXPECT_EQ(no_path.plan.trees[1].access.strategy, StartStrategy::kScan);
}

TEST(PlannerTest, PlanToStringIsStable) {
  auto store = MakeStore(kBibXml);
  Planned p = PlanFor(store.get(), "//book[author/last=\"Stevens\"]");
  const std::string text = p.plan.ToString(p.partition);
  EXPECT_NE(text.find("plan: cost-based join order"), std::string::npos);
  EXPECT_NE(text.find("schedule: 1 0"), std::string::npos);
  EXPECT_NE(text.find("value-index value=\"Stevens\""), std::string::npos);
  EXPECT_NE(text.find("arc: tree 0 node 0 -//-> tree 1"),
            std::string::npos);
}

TEST(PlanCacheTest, KeyCoversOptionsAndStoreGeneration) {
  QueryOptions a;
  const std::string base = PlanCache::Key("pat", a, 1, 1);
  EXPECT_EQ(base, PlanCache::Key("pat", a, 1, 1));
  EXPECT_NE(base, PlanCache::Key("other", a, 1, 1));
  EXPECT_NE(base, PlanCache::Key("pat", a, 2, 1));  // Epoch.
  EXPECT_NE(base, PlanCache::Key("pat", a, 1, 2));  // Structure version.

  QueryOptions b = a;
  b.strategy = StartStrategy::kScan;
  EXPECT_NE(base, PlanCache::Key("pat", b, 1, 1));
  QueryOptions c = a;
  c.cost_based_join_order = false;
  EXPECT_NE(base, PlanCache::Key("pat", c, 1, 1));
  QueryOptions d = a;
  d.index_fraction = 0.5;
  EXPECT_NE(base, PlanCache::Key("pat", d, 1, 1));
}

TEST(PlanCacheTest, LruBoundAndStats) {
  PlanCache cache(2);
  auto plan = std::make_shared<const QueryPlan>();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", plan);
  cache.Insert("b", plan);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // Refreshes "a".
  cache.Insert("c", plan);                // Evicts "b", the LRU entry.
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().insertions, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCacheTest, EngineCachesPlansAndInvalidatesOnUpdate) {
  auto store = MakeStore(kBibXml);
  QueryEngine engine(store.get());
  QueryOptions qo;
  qo.use_plan_cache = true;
  const std::string q = "//book[author/last=\"Stevens\"]";

  auto first = engine.Evaluate(q, qo);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->size(), 2u);
  EXPECT_EQ(engine.plan_cache().stats().misses, 1u);
  EXPECT_NE(engine.ExplainLast().find("plan cache miss"),
            std::string::npos);

  auto second = engine.Evaluate(q, qo);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.plan_cache().stats().hits, 1u);
  EXPECT_NE(engine.ExplainLast().find("plan cache hit"),
            std::string::npos);
  EXPECT_EQ(*first, *second);

  // A structural update bumps the store's structure version, so the
  // cached plan is stale and the query replans (and sees the new node).
  const uint64_t version = store->structure_version();
  ASSERT_TRUE(store
                  ->InsertSubtree(DeweyId({0, 3}), 1,
                                  "<author><last>Stevens</last>"
                                  "<first>R.</first></author>")
                  .ok());
  EXPECT_GT(store->structure_version(), version);
  auto third = engine.Evaluate(q, qo);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->size(), 3u);
  EXPECT_EQ(engine.plan_cache().stats().misses, 2u);
  EXPECT_EQ(engine.plan_cache().stats().hits, 1u);
}

TEST(QueryEngineTest, FailedEvaluateClearsPreviousDiagnostics) {
  auto store = MakeStore(kBibXml);
  QueryEngine engine(store.get());

  auto good = engine.Evaluate("//book");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(engine.last_stats().results, 4u);
  EXPECT_FALSE(engine.last_stats().trees.empty());
  EXPECT_NE(engine.ExplainLast(), "no query evaluated yet\n");

  // A malformed query must not leave the old stats/plan behind.
  auto bad = engine.Evaluate("/a[");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(engine.last_stats().results, 0u);
  EXPECT_TRUE(engine.last_stats().trees.empty());
  EXPECT_EQ(engine.ExplainLast(), "no query evaluated yet\n");
}

TEST(QueryEngineTest, ExplainPrintsEstimatedAndActualCardinalities) {
  auto store = MakeStore(kBibXml);
  QueryEngine engine(store.get());

  // Branchy query: value-index anchor, a semi-join pre-filter on the
  // anchor hits, and a structural semi-join against the predicate tree.
  auto result =
      engine.Evaluate("//book[author/last=\"Stevens\"][.//first]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = engine.ExplainLast();
  EXPECT_NE(text.find("ValueIndexProbe"), std::string::npos) << text;
  EXPECT_NE(text.find("SemiJoinFilter"), std::string::npos) << text;
  EXPECT_NE(text.find("StructuralSemiJoin"), std::string::npos) << text;
  EXPECT_NE(text.find("NokMatch"), std::string::npos) << text;
  EXPECT_NE(text.find("Output"), std::string::npos) << text;
  EXPECT_NE(text.find("est="), std::string::npos) << text;
  EXPECT_NE(text.find("in="), std::string::npos) << text;
  EXPECT_NE(text.find("out="), std::string::npos) << text;
  EXPECT_NE(text.find("results: " + std::to_string(result->size())),
            std::string::npos)
      << text;

  // Tag-index probe.
  ASSERT_TRUE(engine.Evaluate("//affiliation").ok());
  EXPECT_NE(engine.ExplainLast().find("TagIndexProbe"), std::string::npos);

  // Forced sequential scan.
  QueryOptions scan;
  scan.strategy = StartStrategy::kScan;
  ASSERT_TRUE(engine.Evaluate("//book", scan).ok());
  EXPECT_NE(engine.ExplainLast().find("AnchorScan"), std::string::npos);
}

TEST(QueryEngineTest, CostBasedAndFixedOrdersAgree) {
  auto store = MakeStore(kBibXml);
  QueryEngine engine(store.get());
  for (const char* xpath :
       {"//book[.//affiliation]", "/bib//book[.//first]//last",
        "//book[author/last=\"Stevens\"][.//first]",
        "//editor/following::book"}) {
    SCOPED_TRACE(xpath);
    QueryOptions cost;
    auto with_cost = engine.Evaluate(xpath, cost);
    ASSERT_TRUE(with_cost.ok()) << with_cost.status().ToString();
    QueryOptions fixed;
    fixed.cost_based_join_order = false;
    auto with_fixed = engine.Evaluate(xpath, fixed);
    ASSERT_TRUE(with_fixed.ok()) << with_fixed.status().ToString();
    EXPECT_EQ(*with_cost, *with_fixed);
  }
}

}  // namespace
}  // namespace nok
