#include <gtest/gtest.h>

#include "nok/nok_partition.h"
#include "nok/xpath_parser.h"

namespace nok {
namespace {

NokPartition Partition(const std::string& xpath, PatternTree* keep) {
  auto tree = ParseXPath(xpath);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  *keep = std::move(tree).ValueOrDie();
  return PartitionPattern(*keep);
}

TEST(NokPartitionTest, PureLocalQueryIsOneTree) {
  PatternTree pattern;
  auto p = Partition("/a/b[c][d=\"x\"]/e", &pattern);
  ASSERT_EQ(p.trees.size(), 1u);
  EXPECT_TRUE(p.arcs.empty());
  EXPECT_EQ(p.returning_tree, 0);
  EXPECT_TRUE(p.trees[0].root_is_doc_root);
  // root + a + b + c + d + e = 6 nodes.
  EXPECT_EQ(p.trees[0].nodes.size(), 6u);
  EXPECT_GE(p.trees[0].returning_node, 0);
  EXPECT_EQ(p.trees[0]
                .nodes[static_cast<size_t>(p.trees[0].returning_node)]
                .pattern->tag,
            "e");
}

TEST(NokPartitionTest, DescendantStepsSplit) {
  PatternTree pattern;
  auto p = Partition("/a//b/c", &pattern);
  ASSERT_EQ(p.trees.size(), 2u);
  ASSERT_EQ(p.arcs.size(), 1u);
  EXPECT_EQ(p.arcs[0].from_tree, 0);
  EXPECT_EQ(p.arcs[0].to_tree, 1);
  EXPECT_EQ(p.arcs[0].axis, Axis::kDescendant);
  // Tree 0: root + a; tree 1: b + c.
  EXPECT_EQ(p.trees[0].nodes.size(), 2u);
  EXPECT_EQ(p.trees[1].nodes.size(), 2u);
  EXPECT_EQ(p.returning_tree, 1);
  // The arc leaves the 'a' node (local index 1 in tree 0).
  EXPECT_EQ(p.arcs[0].from_node, 1);
}

TEST(NokPartitionTest, LeadingDescendant) {
  PatternTree pattern;
  auto p = Partition("//book[price]", &pattern);
  ASSERT_EQ(p.trees.size(), 2u);
  EXPECT_EQ(p.trees[0].nodes.size(), 1u);  // Just the virtual root.
  EXPECT_TRUE(p.trees[0].root_is_doc_root);
  EXPECT_EQ(p.trees[1].nodes[0].pattern->tag, "book");
  EXPECT_EQ(p.trees[1].returning_node, 0);
}

TEST(NokPartitionTest, MultipleArcsFormTree) {
  PatternTree pattern;
  auto p = Partition("/a[b//c]//d[e]//f", &pattern);
  // Trees: {root,a,b}, {c}, {d,e}, {f}.
  ASSERT_EQ(p.trees.size(), 4u);
  ASSERT_EQ(p.arcs.size(), 3u);
  // Every non-zero tree has exactly one incoming arc.
  for (size_t t = 1; t < p.trees.size(); ++t) {
    EXPECT_NE(p.ArcInto(static_cast<int>(t)), nullptr) << t;
  }
  EXPECT_EQ(p.ArcInto(0), nullptr);
  // The returning tree holds 'f'.
  const NokTree& rt = p.trees[static_cast<size_t>(p.returning_tree)];
  EXPECT_EQ(rt.nodes[static_cast<size_t>(rt.returning_node)].pattern->tag,
            "f");
}

TEST(NokPartitionTest, FollowingAxisIsGlobal) {
  PatternTree pattern;
  auto p = Partition("/a/b/following::c", &pattern);
  ASSERT_EQ(p.trees.size(), 2u);
  ASSERT_EQ(p.arcs.size(), 1u);
  EXPECT_EQ(p.arcs[0].axis, Axis::kFollowing);
}

TEST(NokPartitionTest, SiblingOrderStaysLocal) {
  PatternTree pattern;
  auto p = Partition("/a/b/following-sibling::c", &pattern);
  ASSERT_EQ(p.trees.size(), 1u);
  const NokTree& tree = p.trees[0];
  // Find the 'a' node and check its order constraint.
  bool found = false;
  for (const NokNode& node : tree.nodes) {
    if (!node.sibling_order.empty()) {
      EXPECT_EQ(node.pattern->tag, "a");
      EXPECT_EQ(node.sibling_order[0], std::make_pair(0, 1));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NokPartitionTest, DepthOfComputesLevels) {
  PatternTree pattern;
  auto p = Partition("/a/b[c/d]", &pattern);
  const NokTree& tree = p.trees[0];
  // Pre-order: root(0) a(1) b(2) c(3) d(4).
  EXPECT_EQ(tree.DepthOf(0), 1);
  EXPECT_EQ(tree.DepthOf(1), 2);
  EXPECT_EQ(tree.DepthOf(2), 3);
  EXPECT_EQ(tree.DepthOf(3), 4);
  EXPECT_EQ(tree.DepthOf(4), 5);
}

TEST(NokPartitionTest, ArcsFromEnumeratesBranches) {
  PatternTree pattern;
  auto p = Partition("/a[.//b][.//c]", &pattern);
  ASSERT_EQ(p.trees.size(), 3u);
  EXPECT_EQ(p.ArcsFrom(0).size(), 2u);
  EXPECT_EQ(p.returning_tree, 0);  // 'a' itself returns.
}

}  // namespace
}  // namespace nok
