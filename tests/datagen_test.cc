// DatasetGen / QueryGen determinism and shape tests.
//
// The golden-seed hashes below lock bit-reproducibility: the generators
// draw exclusively from nok::Random (xorshift128+, platform-independent)
// and never iterate unordered containers, so a fixed seed must produce
// the identical byte stream on every platform and toolchain.  If a
// deliberate generator change breaks a hash, regenerate it with the
// printed actual value.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/hash.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "nok/pattern_tree.h"
#include "nok/xpath_parser.h"
#include "xml/dom.h"

namespace nok {
namespace {

// ---------------------------------------------------------------------------
// Recursive parts generator.

RecursiveGenOptions SmallRecursive() {
  RecursiveGenOptions options;
  options.seed = 11;
  options.entries = 16;
  options.max_depth = 12;
  options.fanout = 3;
  options.skew = 0.6;
  return options;
}

TEST(RecursiveDatasetTest, ProducesNestedAssemblies) {
  auto ds = GenerateRecursiveDataset(SmallRecursive());
  EXPECT_EQ(ds.dataset, Dataset::kParts);
  EXPECT_EQ(ds.entry_path, "/parts/part");
  EXPECT_EQ(ds.recursive_tag, "assembly");
  auto tree = DomTree::Parse(ds.xml);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  // parts/part/assembly/part/... : recursion gives real depth.
  EXPECT_GT(tree->max_depth(), 6);
  // Tag paths repeat: assemblies contain parts that open new assemblies.
  EXPECT_NE(ds.xml.find("<assembly><part>"), std::string::npos);
  EXPECT_NE(ds.xml.find("sub-"), std::string::npos);
}

TEST(RecursiveDatasetTest, MaxDepthBoundsNesting) {
  RecursiveGenOptions shallow = SmallRecursive();
  shallow.max_depth = 2;
  auto ds = GenerateRecursiveDataset(shallow);
  auto tree = DomTree::Parse(ds.xml);
  ASSERT_TRUE(tree.ok());
  // parts -> part -> (assembly -> part -> assembly -> part) -> leaf:
  // each nesting level adds two element levels below the entry.
  EXPECT_LE(tree->max_depth(), 2 + 2 * (shallow.max_depth + 1));

  RecursiveGenOptions deep = SmallRecursive();
  deep.max_depth = 24;
  deep.skew = 0.95;
  auto ds2 = GenerateRecursiveDataset(deep);
  auto tree2 = DomTree::Parse(ds2.xml);
  ASSERT_TRUE(tree2.ok());
  EXPECT_GT(tree2->max_depth(), tree->max_depth());
}

TEST(RecursiveDatasetTest, PlantedNeedleCountsAreExact) {
  auto ds = GenerateRecursiveDataset(SmallRecursive());
  auto tree = DomTree::Parse(ds.xml);
  ASSERT_TRUE(tree.ok());
  size_t hi = 0, mod = 0, low = 0;
  ForEachNode(tree->root(), [&](const DomNode* n) {
    if (n->value == ds.needle_hi_a) ++hi;
    if (n->value == ds.needle_mod_a) ++mod;
    if (n->value == ds.needle_low_a) ++low;
  });
  EXPECT_EQ(hi, ds.count_hi);
  EXPECT_EQ(mod, ds.count_mod - ds.count_hi);
  EXPECT_EQ(low, ds.count_low - ds.count_mod);
}

TEST(RecursiveDatasetTest, GenerateDatasetDispatchesParts) {
  GenOptions options;
  options.scale = 0.004;  // 8 entries.
  options.seed = 3;
  auto ds = GenerateDataset(Dataset::kParts, options);
  EXPECT_EQ(ds.name, "parts");
  EXPECT_EQ(ds.entries, 8u);
  EXPECT_EQ(DatasetName(Dataset::kParts), "parts");
}

// ---------------------------------------------------------------------------
// QueryGen v2 grammar sampler.

TEST(RandomQueriesTest, AllSamplesParse) {
  auto ds = GenerateRecursiveDataset(SmallRecursive());
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomQueryOptions options;
    options.seed = seed;
    options.count = 40;
    auto queries = RandomQueries(ds, options);
    ASSERT_EQ(queries.size(), 40u);
    for (const std::string& q : queries) {
      auto pattern = ParseXPath(q);
      EXPECT_TRUE(pattern.ok())
          << q << ": " << pattern.status().ToString();
    }
  }
}

TEST(RandomQueriesTest, WeightedTowardBushyShapes) {
  auto ds = GenerateDataset(Dataset::kAuthor, GenOptions{.scale = 0.0,
                                                         .seed = 1});
  RandomQueryOptions options;
  options.seed = 9;
  options.count = 200;
  auto queries = RandomQueries(ds, options);
  size_t bushy = 0, positional = 0;
  for (const std::string& q : queries) {
    if (q.find('[') != std::string::npos) ++bushy;
    auto pattern = ParseXPath(q);
    if (pattern.ok() && HasPositionalPredicate(*pattern)) ++positional;
  }
  EXPECT_GT(bushy, queries.size() / 2);  // The bushy bias dominates.
  EXPECT_GT(positional, 0u);             // [n] is part of the grammar.
}

TEST(RandomQueriesTest, SeedsAreDeterministic) {
  auto ds = GenerateRecursiveDataset(SmallRecursive());
  RandomQueryOptions options;
  options.seed = 77;
  auto a = RandomQueries(ds, options);
  auto b = RandomQueries(ds, options);
  EXPECT_EQ(a, b);
  options.seed = 78;
  auto c = RandomQueries(ds, options);
  EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------------
// Golden-seed regression: fixed seeds hash to fixed values forever.

TEST(GoldenSeedTest, DatasetBytesAreBitReproducible) {
  const GenOptions small{.scale = 0.0, .seed = 2024};
  const auto author = GenerateDataset(Dataset::kAuthor, small);
  const auto treebank = GenerateDataset(Dataset::kTreebank, small);
  const auto parts = GenerateRecursiveDataset(SmallRecursive());

  EXPECT_EQ(Hash64(author.xml), UINT64_C(17764501294698744350))
      << "author seed drifted";
  EXPECT_EQ(Hash64(treebank.xml), UINT64_C(9824479103589106354))
      << "treebank seed drifted";
  EXPECT_EQ(Hash64(parts.xml), UINT64_C(6117828529636065005))
      << "parts seed drifted";
}

TEST(GoldenSeedTest, QueryStreamIsBitReproducible) {
  const auto parts = GenerateRecursiveDataset(SmallRecursive());
  RandomQueryOptions options;
  options.seed = 2024;
  options.count = 32;
  std::string joined;
  for (const std::string& q : RandomQueries(parts, options)) {
    joined += q;
    joined += '\n';
  }
  EXPECT_EQ(Hash64(joined), UINT64_C(2528606273890361984))
      << "query stream drifted";
}

}  // namespace
}  // namespace nok
