#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "btree/btree.h"
#include "common/coding.h"
#include "common/random.h"
#include "storage/file.h"

namespace nok {
namespace {

std::unique_ptr<BTree> MakeTree(uint32_t page_size = 512) {
  BTree::Options options;
  options.page_size = page_size;
  options.pool_frames = 32;
  auto r = BTree::Open(NewMemFile(), options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(BTreeTest, EmptyTree) {
  auto tree = MakeTree();
  EXPECT_EQ(tree->num_entries(), 0u);
  EXPECT_TRUE(tree->Get(Slice("nope")).status().IsNotFound());
  auto it = tree->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, InsertGetSingle) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Slice("k"), Slice("v")).ok());
  auto got = tree->Get(Slice("k"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST(BTreeTest, ManyInsertsWithSplitsStaySorted) {
  auto tree = MakeTree(512);  // Small pages: force deep splits.
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key" + std::to_string((i * 7919) % 2000);
    const std::string value = "value" + std::to_string(i);
    if (expected.emplace(key, value).second) {
      ASSERT_TRUE(tree->Insert(Slice(key), Slice(value)).ok());
    }
  }
  EXPECT_EQ(tree->num_entries(), expected.size());

  auto it = tree->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (const auto& [key, value] : expected) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key().ToString(), key);
    EXPECT_EQ(it.value().ToString(), value);
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, DuplicateKeysAllEnumerable) {
  auto tree = MakeTree();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        tree->Insert(Slice("dup"), Slice("v" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(tree->Insert(Slice("dup0"), Slice("after")).ok());
  ASSERT_TRUE(tree->Insert(Slice("du"), Slice("before")).ok());

  auto it = tree->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("dup")).ok());
  std::multiset<std::string> values;
  while (it.Valid() && it.key() == Slice("dup")) {
    values.insert(it.value().ToString());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(values.size(), 50u);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "dup0");
}

TEST(BTreeTest, DuplicatesSpanningManyLeaves) {
  auto tree = MakeTree(512);
  const std::string big(100, 'x');
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree->Insert(Slice("samekey"), Slice(big)).ok());
  }
  // A smaller key inserted later must still be found first.
  ASSERT_TRUE(tree->Insert(Slice("aaa"), Slice("first")).ok());
  auto it = tree->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "aaa");

  size_t count = 0;
  ASSERT_TRUE(it.Seek(Slice("samekey")).ok());
  while (it.Valid() && it.key() == Slice("samekey")) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 500u);
}

TEST(BTreeTest, SeekLowerBoundSemantics) {
  auto tree = MakeTree();
  for (int i = 0; i < 100; i += 2) {
    char key[8];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(tree->Insert(Slice(key), Slice("v")).ok());
  }
  auto it = tree->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("k005")).ok());  // Absent: lower bound k006.
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k006");
  ASSERT_TRUE(it.Seek(Slice("k098")).ok());
  EXPECT_EQ(it.key().ToString(), "k098");
  ASSERT_TRUE(it.Seek(Slice("k099")).ok());
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, DeleteFirstMatchOnly) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Slice("k"), Slice("v1")).ok());
  ASSERT_TRUE(tree->Insert(Slice("k"), Slice("v2")).ok());
  auto deleted = tree->Delete(Slice("k"));
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(*deleted);
  EXPECT_EQ(tree->num_entries(), 1u);
  auto missing = tree->Delete(Slice("zz"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
}

TEST(BTreeTest, DeleteExactPicksByValue) {
  auto tree = MakeTree();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        tree->Insert(Slice("k"), Slice("v" + std::to_string(i))).ok());
  }
  auto deleted = tree->DeleteExact(Slice("k"), Slice("v7"));
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(*deleted);
  auto again = tree->DeleteExact(Slice("k"), Slice("v7"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(tree->num_entries(), 9u);
}

TEST(BTreeTest, OversizedEntryRejected) {
  auto tree = MakeTree(512);
  std::string big(400, 'x');
  EXPECT_TRUE(tree->Insert(Slice("k"), Slice(big)).IsInvalidArgument());
}

TEST(BTreeTest, PersistsAcrossReopen) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("nokxml_btree_reopen_" + std::to_string(::getpid())))
          .string();
  NOK_IGNORE_STATUS(RemoveFile(path), "pre-test scratch cleanup");
  {
    auto file = OpenPosixFile(path, /*create=*/true);
    ASSERT_TRUE(file.ok());
    auto tree_r = BTree::Open(std::move(file).ValueOrDie());
    ASSERT_TRUE(tree_r.ok());
    auto& tree = *tree_r;
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(tree->Insert(Slice("key" + std::to_string(i)),
                               Slice("value" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
  }
  {
    auto file = OpenPosixFile(path, /*create=*/false);
    ASSERT_TRUE(file.ok());
    auto tree_r = BTree::Open(std::move(file).ValueOrDie());
    ASSERT_TRUE(tree_r.ok());
    auto& tree = *tree_r;
    EXPECT_EQ(tree->num_entries(), 500u);
    for (int i = 0; i < 500; i += 37) {
      auto got = tree->Get(Slice("key" + std::to_string(i)));
      ASSERT_TRUE(got.ok()) << i;
      EXPECT_EQ(*got, "value" + std::to_string(i));
    }
  }
  NOK_IGNORE_STATUS(RemoveFile(path), "best-effort teardown cleanup");
}

// Property test: random interleaved inserts/deletes against a multimap.
class BTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzz, MatchesMultimapOracle) {
  Random rng(GetParam());
  auto tree = MakeTree(512);
  std::multimap<std::string, std::string> oracle;

  for (int op = 0; op < 3000; ++op) {
    const std::string key = "k" + std::to_string(rng.Uniform(200));
    if (rng.Bernoulli(0.7)) {
      const std::string value = "v" + std::to_string(rng.Uniform(1000));
      ASSERT_TRUE(tree->Insert(Slice(key), Slice(value)).ok());
      oracle.emplace(key, value);
    } else {
      // Delete removes the tree-order-first entry; learn which value that
      // is via Get (same positioning rule) so the oracle can mirror it.
      auto head = tree->Get(Slice(key));
      auto deleted = tree->Delete(Slice(key));
      ASSERT_TRUE(deleted.ok());
      EXPECT_EQ(*deleted, head.ok());
      if (head.ok()) {
        auto range = oracle.equal_range(key);
        auto it = range.first;
        while (it != range.second && it->second != *head) ++it;
        ASSERT_NE(it, range.second);
        oracle.erase(it);
      }
    }
  }
  EXPECT_EQ(tree->num_entries(), oracle.size());

  // Full scan must agree on the key sequence and per-key value multisets.
  auto it = tree->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::multimap<std::string, std::string> scanned;
  std::string prev;
  while (it.Valid()) {
    const std::string key = it.key().ToString();
    EXPECT_LE(prev, key);
    prev = key;
    scanned.emplace(key, it.value().ToString());
    ASSERT_TRUE(it.Next().ok());
  }
  ASSERT_EQ(scanned.size(), oracle.size());
  for (auto it1 = oracle.begin(), it2 = scanned.begin();
       it1 != oracle.end(); ++it1, ++it2) {
    EXPECT_EQ(it1->first, it2->first);
  }
  // Values per key as multisets.
  for (auto iter = oracle.begin(); iter != oracle.end();) {
    const std::string key = iter->first;
    std::multiset<std::string> want, got;
    for (; iter != oracle.end() && iter->first == key; ++iter) {
      want.insert(iter->second);
    }
    auto range = scanned.equal_range(key);
    for (auto s = range.first; s != range.second; ++s) {
      got.insert(s->second);
    }
    EXPECT_EQ(want, got) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nok

// ---------------------------------------------------------------------------
// Node-level (slotted page) tests.

#include "btree/node.h"

namespace nok {
namespace {

TEST(BTreeNodeTest, LeafInsertKeepsSortedSlots) {
  std::vector<char> page(512);
  NodeRef node(page.data(), 512);
  node.Init(NodeType::kLeaf);
  EXPECT_TRUE(node.is_leaf());
  EXPECT_EQ(node.nkeys(), 0);

  node.InsertLeafCell(0, Slice("m"), Slice("1"));
  node.InsertLeafCell(0, Slice("a"), Slice("2"));
  node.InsertLeafCell(2, Slice("z"), Slice("3"));
  ASSERT_EQ(node.nkeys(), 3);
  EXPECT_EQ(node.KeyAt(0).ToString(), "a");
  EXPECT_EQ(node.KeyAt(1).ToString(), "m");
  EXPECT_EQ(node.KeyAt(2).ToString(), "z");
  EXPECT_EQ(node.ValueAt(1).ToString(), "1");
  EXPECT_EQ(node.LowerBound(Slice("m")), 1);
  EXPECT_EQ(node.UpperBound(Slice("m")), 2);
  EXPECT_EQ(node.LowerBound(Slice("zz")), 3);
}

TEST(BTreeNodeTest, RemoveCreatesFragmentationCompactReclaims) {
  std::vector<char> page(256);
  NodeRef node(page.data(), 256);
  node.Init(NodeType::kLeaf);
  for (int i = 0; i < 5; ++i) {
    node.InsertLeafCell(static_cast<uint16_t>(i),
                        Slice("key" + std::to_string(i)),
                        Slice(std::string(20, 'v')));
  }
  const uint32_t free_full = node.FreeSpace();
  node.RemoveCell(2);
  EXPECT_EQ(node.nkeys(), 4);
  // The slot space returns immediately; the cell bytes only after
  // compaction.
  EXPECT_GT(node.FreeSpaceAfterCompact(), node.FreeSpace());
  node.Compact();
  EXPECT_EQ(node.FreeSpace(), node.FreeSpaceAfterCompact());
  EXPECT_GT(node.FreeSpace(), free_full);
  EXPECT_EQ(node.KeyAt(2).ToString(), "key3");
}

TEST(BTreeNodeTest, InternalCellsCarryChildren) {
  std::vector<char> page(512);
  NodeRef node(page.data(), 512);
  node.Init(NodeType::kInternal);
  node.set_leftmost_child(7);
  node.InsertInternalCell(0, Slice("k"), 9);
  node.InsertInternalCell(1, Slice("p"), 11);
  EXPECT_EQ(node.leftmost_child(), 7u);
  EXPECT_EQ(node.ChildAt(0), 9u);
  EXPECT_EQ(node.ChildAt(1), 11u);
  node.SetChildAt(0, 42);
  EXPECT_EQ(node.ChildAt(0), 42u);
  EXPECT_EQ(node.KeyAt(0).ToString(), "k");
}

TEST(BTreeNodeTest, InsertIntoFragmentedPageAutoCompacts) {
  std::vector<char> page(128);
  NodeRef node(page.data(), 128);
  node.Init(NodeType::kLeaf);
  // Fill, then churn: delete + insert repeatedly so fragmentation would
  // overflow the page if Compact never ran.
  for (int round = 0; round < 30; ++round) {
    while (node.FreeSpaceAfterCompact() >=
           NodeRef::LeafCellSize(Slice("key"), Slice("valueXX"))) {
      node.InsertLeafCell(node.nkeys(), Slice("key"), Slice("valueXX"));
    }
    while (node.nkeys() > 1) node.RemoveCell(0);
  }
  EXPECT_GE(node.nkeys(), 1);
}

}  // namespace
}  // namespace nok
