// Snapshot-isolation stress: 8 reader threads run the Table-2 query
// workload against pinned snapshots while the writer applies 200
// structural updates through the WAL-backed single-writer / multi-reader
// store.  Every reader transcript must byte-match the oracle transcript
// for the epoch its snapshot was pinned to — computed by replaying the
// identical update sequence serially on a copy — never a mix of epochs.
// Runs under the sanitizer builds; with -DNOK_SANITIZE=thread this is the
// data-race gate for the snapshot read path (SnapshotFile over a mutating
// base, SnapshotTracker reclamation, SharedPlanCache).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "encoding/swmr_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

constexpr int kReaders = 8;
constexpr int kCommits = 50;        // 4 updates each: 200 updates total.
constexpr int kInsertsPerCommit = 3;

std::string TempDir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("nokxml_snap_" + name + "_" + std::to_string(::getpid())))
      .string();
}

/// One query set evaluated against one snapshot: canonical result strings
/// per query, in workload order.
using Transcript = std::vector<std::string>;

Result<Transcript> RunQueries(DocumentStore* store,
                              const std::vector<std::string>& xpaths,
                              SharedPlanCache* cache) {
  QueryEngine engine(store);
  if (cache != nullptr) engine.set_shared_plan_cache(cache);
  QueryOptions options;
  options.use_plan_cache = cache != nullptr;
  Transcript out;
  out.reserve(xpaths.size());
  for (const std::string& xpath : xpaths) {
    NOK_ASSIGN_OR_RETURN(auto rows, engine.Evaluate(xpath, options));
    std::string canon;
    for (const DeweyId& id : rows) {
      canon += id.ToString();
      canon += ';';
    }
    out.push_back(std::move(canon));
  }
  return out;
}

/// The deterministic update batch for commit `c` (0-based).
Status ApplyBatch(SwmrStore* store, int c) {
  for (int j = 0; j < kInsertsPerCommit; ++j) {
    NOK_RETURN_IF_ERROR(store->InsertSubtree(
        DeweyId({0}), 0,
        "<zzz><t>c" + std::to_string(c) + "n" + std::to_string(j) +
            "</t></zzz>"));
  }
  // The fourth update deletes the most recent insert: exercises the
  // shrink/truncate retention path, not just overwrites and appends.
  NOK_RETURN_IF_ERROR(store->DeleteSubtree(DeweyId({0, 0})));
  return store->Commit();
}

TEST(SnapshotIsolationTest, ReadersNeverSeeAMixOfEpochs) {
  const std::string dir = TempDir("live");
  const std::string oracle_dir = TempDir("oracle");
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(oracle_dir);

  GenOptions gen;
  gen.scale = 0.01;
  gen.seed = 77;
  const GeneratedDataset ds = GenerateDataset(Dataset::kAuthor, gen);
  {
    DocumentStore::Options options;
    options.dir = dir;
    options.page_size = 512;
    auto built = DocumentStore::Build(ds.xml, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Flush().ok());
  }
  std::filesystem::copy(dir, oracle_dir,
                        std::filesystem::copy_options::recursive);

  std::vector<std::string> xpaths;
  for (const CategoryQuery& q : QueriesForDataset(ds)) {
    xpaths.push_back(q.xpath);
  }
  ASSERT_FALSE(xpaths.empty());

  SwmrStore::Options swmr_options;
  swmr_options.store.page_size = 512;
  swmr_options.store.pool_shards = 8;
  swmr_options.store.index_pool_shards = 4;

  // Oracle pass: replay the identical update sequence serially and record
  // the expected transcript of every epoch the live run can publish.
  std::map<uint64_t, Transcript> oracle;
  {
    auto store = SwmrStore::Open(oracle_dir, swmr_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto snap = (*store)->snapshot();
    auto t = RunQueries(snap->store(), xpaths, nullptr);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    oracle[snap->epoch()] = *t;
    for (int c = 0; c < kCommits; ++c) {
      ASSERT_TRUE(ApplyBatch(store->get(), c).ok()) << "commit " << c;
      snap = (*store)->snapshot();
      t = RunQueries(snap->store(), xpaths, nullptr);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      oracle[snap->epoch()] = *t;
    }
  }

  // Live pass: 8 readers over pinned snapshots, one concurrent writer.
  auto store = SwmrStore::Open(dir, swmr_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  SwmrStore* swmr = store->get();
  SharedPlanCache plan_cache;

  struct ReaderLog {
    std::vector<std::pair<uint64_t, Transcript>> observed;
    Status status;
  };
  std::vector<ReaderLog> logs(kReaders);
  std::atomic<bool> writer_done{false};

  auto reader = [&](ReaderLog* log) {
    do {
      auto snap = swmr->snapshot();
      auto t = RunQueries(snap->store(), xpaths, &plan_cache);
      if (!t.ok()) {
        log->status = t.status();
        return;
      }
      log->observed.emplace_back(snap->epoch(), std::move(*t));
    } while (!writer_done.load(std::memory_order_acquire));
  };

  Status writer_status;
  auto writer = [&]() {
    for (int c = 0; c < kCommits; ++c) {
      Status s = ApplyBatch(swmr, c);
      if (!s.ok()) {
        writer_status = s;
        break;
      }
      // Stretch the window so readers observe many distinct epochs.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer_done.store(true, std::memory_order_release);
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(kReaders + 1);
    for (int t = 0; t < kReaders; ++t) {
      threads.emplace_back(reader, &logs[static_cast<size_t>(t)]);
    }
    threads.emplace_back(writer);
    for (std::thread& t : threads) t.join();
  }
  ASSERT_TRUE(writer_status.ok()) << writer_status.ToString();

  // Every observed transcript matches the oracle for its pinned epoch.
  std::set<uint64_t> epochs_seen;
  for (int t = 0; t < kReaders; ++t) {
    SCOPED_TRACE("reader " + std::to_string(t));
    const ReaderLog& log = logs[static_cast<size_t>(t)];
    ASSERT_TRUE(log.status.ok()) << log.status.ToString();
    ASSERT_FALSE(log.observed.empty());
    for (const auto& [epoch, transcript] : log.observed) {
      auto it = oracle.find(epoch);
      ASSERT_NE(it, oracle.end()) << "unknown epoch " << epoch;
      EXPECT_EQ(transcript, it->second)
          << "epoch " << epoch
          << ": transcript diverged from the serial oracle";
      epochs_seen.insert(epoch);
    }
  }
  // The run exercised real concurrency: readers pinned snapshots from
  // several generations, not just the final one.
  EXPECT_GE(epochs_seen.size(), 2u);

  // Once every snapshot but the current drains, retained pre-images are
  // bounded by what the live snapshot can still read.
  SwmrStore::Stats stats = swmr->stats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kCommits));
  EXPECT_EQ(stats.min_active_epoch, stats.current_epoch);

  store->reset();
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(oracle_dir);
}

}  // namespace
}  // namespace nok
