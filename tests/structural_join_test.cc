#include <gtest/gtest.h>

#include "common/random.h"
#include "nok/structural_join.h"

namespace nok {
namespace {

NodeMatch M(std::vector<uint32_t> dewey) {
  NodeMatch m;
  m.dewey = DeweyId(std::move(dewey));
  return m;
}

NodeMatch MI(std::vector<uint32_t> dewey, uint64_t start, uint64_t end) {
  NodeMatch m = M(std::move(dewey));
  m.start = start;
  m.end = end;
  return m;
}

NodeMatch Virtual() {
  NodeMatch m;
  m.virtual_root = true;
  return m;
}

TEST(StructuralJoinTest, IsRelatedDeweyDescendant) {
  EXPECT_TRUE(IsRelated(M({0, 1}), M({0, 1, 2}), Axis::kDescendant,
                        JoinMode::kDewey));
  EXPECT_FALSE(IsRelated(M({0, 1}), M({0, 1}), Axis::kDescendant,
                         JoinMode::kDewey));
  EXPECT_FALSE(IsRelated(M({0, 1}), M({0, 2, 1}), Axis::kDescendant,
                         JoinMode::kDewey));
  EXPECT_TRUE(IsRelated(Virtual(), M({0}), Axis::kDescendant,
                        JoinMode::kDewey));
}

TEST(StructuralJoinTest, IsRelatedIntervalDescendant) {
  EXPECT_TRUE(IsRelated(MI({0}, 0, 100), MI({0, 1}, 5, 10),
                        Axis::kDescendant, JoinMode::kInterval));
  EXPECT_FALSE(IsRelated(MI({0, 1}, 5, 10), MI({0, 2}, 12, 20),
                         Axis::kDescendant, JoinMode::kInterval));
}

TEST(StructuralJoinTest, IsRelatedFollowing) {
  // Dewey: after in document order and not a descendant.
  EXPECT_TRUE(IsRelated(M({0, 1}), M({0, 2}), Axis::kFollowing,
                        JoinMode::kDewey));
  EXPECT_FALSE(IsRelated(M({0, 1}), M({0, 1, 0}), Axis::kFollowing,
                         JoinMode::kDewey));
  EXPECT_FALSE(IsRelated(M({0, 2}), M({0, 1}), Axis::kFollowing,
                         JoinMode::kDewey));
  EXPECT_FALSE(IsRelated(Virtual(), M({0, 1}), Axis::kFollowing,
                         JoinMode::kDewey));
  // Interval: starts after the outer's end.
  EXPECT_TRUE(IsRelated(MI({0, 1}, 5, 10), MI({0, 2}, 12, 20),
                        Axis::kFollowing, JoinMode::kInterval));
  EXPECT_FALSE(IsRelated(MI({0, 1}, 5, 10), MI({0, 1, 0}, 6, 8),
                         Axis::kFollowing, JoinMode::kInterval));
}

TEST(StructuralJoinTest, SortUniqueOrdersAndDedupes) {
  std::vector<NodeMatch> v{M({0, 2}), M({0, 1}), M({0, 1}), M({0, 1, 5})};
  SortUnique(&v);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].dewey.ToString(), "0.1");
  EXPECT_EQ(v[1].dewey.ToString(), "0.1.5");
  EXPECT_EQ(v[2].dewey.ToString(), "0.2");
}

TEST(StructuralJoinTest, SelectRelatedInnersDescendant) {
  std::vector<NodeMatch> outers{M({0, 1}), M({0, 3})};
  std::vector<NodeMatch> inners{M({0, 0, 1}), M({0, 1, 0}), M({0, 1, 2, 3}),
                                M({0, 2}), M({0, 3, 0})};
  SortUnique(&outers);
  SortUnique(&inners);
  auto out = SelectRelatedInners(outers, inners, Axis::kDescendant,
                                 JoinMode::kDewey);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dewey.ToString(), "0.1.0");
  EXPECT_EQ(out[1].dewey.ToString(), "0.1.2.3");
  EXPECT_EQ(out[2].dewey.ToString(), "0.3.0");
}

TEST(StructuralJoinTest, SelectRelatedInnersNestedOuters) {
  // Ancestor-stack case: a shallower outer must not be popped for good by
  // a deeper non-matching one.
  std::vector<NodeMatch> outers{M({0, 1}), M({0, 1, 5, 2})};
  std::vector<NodeMatch> inners{M({0, 1, 7})};
  SortUnique(&outers);
  SortUnique(&inners);
  auto out = SelectRelatedInners(outers, inners, Axis::kDescendant,
                                 JoinMode::kDewey);
  ASSERT_EQ(out.size(), 1u);  // 0.1 is an ancestor even if 0.1.5.2 is not.
}

TEST(StructuralJoinTest, SelectRelatedInnersVirtualOuter) {
  std::vector<NodeMatch> outers{Virtual()};
  std::vector<NodeMatch> inners{M({0}), M({0, 4})};
  auto out = SelectRelatedInners(outers, inners, Axis::kDescendant,
                                 JoinMode::kDewey);
  EXPECT_EQ(out.size(), 2u);
}

TEST(StructuralJoinTest, SelectRelatedInnersFollowing) {
  std::vector<NodeMatch> outers{M({0, 1})};
  std::vector<NodeMatch> inners{M({0, 0}), M({0, 1, 0}), M({0, 2}),
                                M({0, 3, 1})};
  SortUnique(&outers);
  SortUnique(&inners);
  auto out = SelectRelatedInners(outers, inners, Axis::kFollowing,
                                 JoinMode::kDewey);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dewey.ToString(), "0.2");
  EXPECT_EQ(out[1].dewey.ToString(), "0.3.1");
}

TEST(StructuralJoinTest, FlagOutersDescendant) {
  std::vector<NodeMatch> outers{M({0, 0}), M({0, 1}), M({0, 2})};
  std::vector<NodeMatch> inners{M({0, 1, 3}), M({0, 3})};
  SortUnique(&outers);
  SortUnique(&inners);
  auto flags = FlagOutersWithRelatedInner(outers, inners,
                                          Axis::kDescendant,
                                          JoinMode::kDewey);
  ASSERT_EQ(flags.size(), 3u);
  EXPECT_FALSE(flags[0]);
  EXPECT_TRUE(flags[1]);
  EXPECT_FALSE(flags[2]);
}

TEST(StructuralJoinTest, FlagOutersFollowing) {
  std::vector<NodeMatch> outers{M({0, 0}), M({0, 5})};
  std::vector<NodeMatch> inners{M({0, 4})};
  auto flags = FlagOutersWithRelatedInner(outers, inners, Axis::kFollowing,
                                          JoinMode::kDewey);
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

TEST(StructuralJoinTest, EmptyInputs) {
  std::vector<NodeMatch> some{M({0})};
  EXPECT_TRUE(SelectRelatedInners({}, some, Axis::kDescendant,
                                  JoinMode::kDewey)
                  .empty());
  EXPECT_TRUE(SelectRelatedInners(some, {}, Axis::kDescendant,
                                  JoinMode::kDewey)
                  .empty());
  auto flags = FlagOutersWithRelatedInner(some, {}, Axis::kDescendant,
                                          JoinMode::kDewey);
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_FALSE(flags[0]);
}

// Property: the optimized joins agree with a quadratic reference.
class JoinFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinFuzz, AgreesWithQuadraticReference) {
  Random rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    auto random_matches = [&](size_t n) {
      std::vector<NodeMatch> out;
      for (size_t i = 0; i < n; ++i) {
        std::vector<uint32_t> c{0};
        const size_t depth = rng.Range(0, 3);
        for (size_t d = 0; d < depth; ++d) {
          c.push_back(static_cast<uint32_t>(rng.Uniform(3)));
        }
        out.push_back(M(std::move(c)));
      }
      SortUnique(&out);
      return out;
    };
    const auto outers = random_matches(rng.Range(0, 8));
    const auto inners = random_matches(rng.Range(0, 8));
    for (Axis axis : {Axis::kDescendant, Axis::kFollowing}) {
      auto got = SelectRelatedInners(outers, inners, axis,
                                     JoinMode::kDewey);
      std::vector<NodeMatch> want;
      for (const NodeMatch& inner : inners) {
        for (const NodeMatch& outer : outers) {
          if (IsRelated(outer, inner, axis, JoinMode::kDewey)) {
            want.push_back(inner);
            break;
          }
        }
      }
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dewey.ToString(), want[i].dewey.ToString());
      }
      auto flags = FlagOutersWithRelatedInner(outers, inners, axis,
                                              JoinMode::kDewey);
      for (size_t i = 0; i < outers.size(); ++i) {
        bool any = false;
        for (const NodeMatch& inner : inners) {
          any = any || IsRelated(outers[i], inner, axis, JoinMode::kDewey);
        }
        EXPECT_EQ(static_cast<bool>(flags[i]), any) << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinFuzz, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace nok
