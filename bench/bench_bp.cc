// Navigation-tier ablation: paged cursor vs the tag-summary fused scan vs
// the in-memory balanced-parentheses index, on navigation-bound queries
// (StartStrategy::kScan forces the scan path, so the access tier — not
// index probing — dominates).
//
// Two query classes per dataset: low selectivity (the always-present
// detail tag; the scan visits everything) and high selectivity (the
// rarest planted marker; the fused scans get to skip).  Self-checks:
//
//   * every mode returns byte-identical Dewey results;
//   * bp mode touches zero subject-tree pages on every measured query;
//   * bp beats the paged scan by --target-speedup on at least one
//     (dataset, query) cell — the wall-time claim of ROADMAP item 4.
//
// Usage: bench_bp [--datasets author,catalog] [--scale 0.05] [--seed 42]
//                 [--page-size 512] [--runs 3] [--target-speedup 5.0]
//                 [--json BENCH_bp.json]

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

struct Mode {
  bool tag_summaries;
  NavMode nav_mode;
  const char* name;
};

constexpr Mode kModes[] = {
    {false, NavMode::kPaged, "paged"},
    {true, NavMode::kPaged, "fused"},
    {true, NavMode::kBp, "bp"},
};

/// One (dataset, mode, query) measurement.
struct Cell {
  std::string dataset;
  std::string tag;
  uint64_t tag_count = 0;
  size_t results = 0;
  double best_seconds = 0;
  double mean_seconds = 0;
  StringStore::NavStats nav;
  std::vector<std::string> deweys;  ///< For the cross-mode identity check.
};

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.05);
  gen.seed = static_cast<uint64_t>(bench::FlagInt(argc, argv, "seed", 42));
  const std::string datasets_flag =
      bench::FlagValue(argc, argv, "datasets", "author,catalog");
  const uint32_t page_size = static_cast<uint32_t>(
      bench::FlagInt(argc, argv, "page-size", 512));
  const int runs = bench::FlagInt(argc, argv, "runs", 3);
  const double target_speedup =
      bench::FlagDouble(argc, argv, "target-speedup", 5.0);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_bp.json");

  std::vector<Dataset> datasets;
  size_t start = 0;
  while (start <= datasets_flag.size()) {
    size_t comma = datasets_flag.find(',', start);
    if (comma == std::string::npos) comma = datasets_flag.size();
    const std::string name = datasets_flag.substr(start, comma - start);
    start = comma + 1;
    if (name.empty()) continue;
    bool found = false;
    for (Dataset d : AllDatasets()) {
      if (DatasetName(d) == name) {
        datasets.push_back(d);
        found = true;
      }
    }
    if (!found) {
      fprintf(stderr, "unknown dataset: %s\n", name.c_str());
      return 2;
    }
  }
  if (datasets.empty()) {
    fprintf(stderr, "no datasets\n");
    return 2;
  }

  printf("bp navigation ablation (scale %.3f, page size %u, %d runs, "
         "target %.1fx)\n\n",
         gen.scale, page_size, runs, target_speedup);
  printf("%-9s %-6s %-10s %9s %8s %8s %10s %9s %9s\n", "dataset", "mode",
         "tag", "count", "results", "pages", "bp-steps", "blk-skip",
         "best ms");

  // grid[mode] holds one Cell per (dataset, query) in sweep order.
  std::vector<std::vector<Cell>> grid(std::size(kModes));
  for (const Dataset dataset : datasets) {
    GeneratedDataset ds = GenerateDataset(dataset, gen);
    // Low selectivity (scan-everything) first, then the rarest marker.
    const std::vector<std::string> sweep = {ds.detail_a, ds.marker_gem};

    for (size_t m = 0; m < std::size(kModes); ++m) {
      const Mode& mode = kModes[m];
      DocumentStore::Options options;
      options.page_size = page_size;
      options.use_tag_summaries = mode.tag_summaries;
      options.nav_mode = mode.nav_mode;
      auto store = DocumentStore::Build(ds.xml, options);
      if (!store.ok()) {
        fprintf(stderr, "build failed: %s\n",
                store.status().ToString().c_str());
        return 1;
      }

      for (const std::string& tag : sweep) {
        Cell cell;
        cell.dataset = ds.name;
        cell.tag = tag;
        auto tag_id = (*store)->tags()->Lookup(tag);
        cell.tag_count =
            tag_id.has_value() ? (*store)->CountTag(*tag_id) : 0;

        QueryEngine engine(store->get());
        QueryOptions qo;
        qo.strategy = StartStrategy::kScan;
        const std::string xpath = "//" + tag;
        double total_seconds = 0, best_seconds = 0;
        for (int r = 0; r < runs; ++r) {
          Status s = (*store)->DropCaches();
          if (!s.ok()) {
            fprintf(stderr, "drop caches failed: %s\n",
                    s.ToString().c_str());
            return 1;
          }
          Timer timer;
          auto result = engine.Evaluate(xpath, qo);
          const double seconds = timer.ElapsedSeconds();
          total_seconds += seconds;
          if (!result.ok()) {
            fprintf(stderr, "%s failed: %s\n", xpath.c_str(),
                    result.status().ToString().c_str());
            return 1;
          }
          if (r == 0 || seconds < best_seconds) best_seconds = seconds;
          if (r + 1 == runs) {  // Counters are identical run to run.
            cell.results = result->size();
            cell.nav = (*store)->tree()->nav_stats();
            cell.deweys.reserve(result->size());
            for (const DeweyId& id : *result) {
              cell.deweys.push_back(id.ToString());
            }
          }
        }
        cell.best_seconds = best_seconds;
        cell.mean_seconds = total_seconds / runs;
        printf("%-9s %-6s %-10s %9llu %8zu %8llu %10llu %9llu %9.3f\n",
               cell.dataset.c_str(), mode.name, tag.c_str(),
               static_cast<unsigned long long>(cell.tag_count),
               cell.results,
               static_cast<unsigned long long>(cell.nav.pages_scanned),
               static_cast<unsigned long long>(cell.nav.bp_steps),
               static_cast<unsigned long long>(
                   cell.nav.bp_tag_blocks_skipped),
               cell.best_seconds * 1e3);
        grid[m].push_back(std::move(cell));
      }
    }
  }

  // Check 1: the navigation tier must not change answers.
  bool identical = true;
  for (size_t m = 1; m < grid.size(); ++m) {
    for (size_t q = 0; q < grid[m].size(); ++q) {
      if (grid[m][q].deweys != grid[0][q].deweys) {
        identical = false;
        fprintf(stderr,
                "RESULT MISMATCH: mode %s disagrees with mode %s on "
                "%s //%s\n",
                kModes[m].name, kModes[0].name,
                grid[m][q].dataset.c_str(), grid[m][q].tag.c_str());
      }
    }
  }
  // Check 2: bp navigation is page-free on every measured query.
  const size_t bp = std::size(kModes) - 1;
  bool zero_pages = true;
  for (const Cell& cell : grid[bp]) {
    if (cell.nav.pages_scanned != 0) {
      zero_pages = false;
      fprintf(stderr, "BP TOUCHED PAGES: %s //%s scanned %llu pages\n",
              cell.dataset.c_str(), cell.tag.c_str(),
              static_cast<unsigned long long>(cell.nav.pages_scanned));
    }
  }
  // Check 3: at least one navigation-bound cell reaches the target
  // speedup over the paged scan (best-of-runs, so cold-start noise in a
  // single run cannot veto).
  bool speedup_achieved = false;
  double best_speedup = 0;
  for (size_t q = 0; q < grid[bp].size(); ++q) {
    const double paged_s = grid[0][q].best_seconds;
    const double bp_s = grid[bp][q].best_seconds;
    const double speedup = bp_s > 0 ? paged_s / bp_s : 0;
    if (speedup > best_speedup) best_speedup = speedup;
    if (speedup >= target_speedup) speedup_achieved = true;
  }
  if (!speedup_achieved) {
    fprintf(stderr,
            "BP SPEEDUP BELOW TARGET: best %.2fx < %.2fx target\n",
            best_speedup, target_speedup);
  }

  std::string json = "{\n";
  char buf[512];
  snprintf(buf, sizeof(buf),
           "  \"datasets\": \"%s\",\n  \"scale\": %.4f,\n"
           "  \"seed\": %llu,\n  \"page_size\": %u,\n  \"runs\": %d,\n"
           "  \"target_speedup\": %.2f,\n  \"best_speedup\": %.4f,\n"
           "  \"measurements\": [\n",
           datasets_flag.c_str(), gen.scale,
           static_cast<unsigned long long>(gen.seed), page_size, runs,
           target_speedup, best_speedup);
  json += buf;
  for (size_t m = 0; m < grid.size(); ++m) {
    for (size_t q = 0; q < grid[m].size(); ++q) {
      const Cell& c = grid[m][q];
      const double paged_s = grid[0][q].best_seconds;
      const double vs_paged =
          c.best_seconds > 0 ? paged_s / c.best_seconds : 0;
      snprintf(
          buf, sizeof(buf),
          "    {\"dataset\": \"%s\", \"mode\": \"%s\", "
          "\"nav_mode\": \"%s\", \"tag\": \"%s\", \"tag_count\": %llu, "
          "\"results\": %zu, \"best_seconds\": %.6f, "
          "\"mean_seconds\": %.6f, \"pages_scanned\": %llu, "
          "\"pages_skipped_by_tag\": %llu, \"bp_steps\": %llu, "
          "\"bp_tag_blocks_skipped\": %llu, "
          "\"speedup_vs_paged\": %.4f}%s\n",
          c.dataset.c_str(), kModes[m].name,
          NavModeName(kModes[m].nav_mode), c.tag.c_str(),
          static_cast<unsigned long long>(c.tag_count), c.results,
          c.best_seconds, c.mean_seconds,
          static_cast<unsigned long long>(c.nav.pages_scanned),
          static_cast<unsigned long long>(c.nav.pages_skipped_by_tag),
          static_cast<unsigned long long>(c.nav.bp_steps),
          static_cast<unsigned long long>(c.nav.bp_tag_blocks_skipped),
          vs_paged,
          m + 1 == grid.size() && q + 1 == grid[m].size() ? "" : ",");
      json += buf;
    }
  }
  snprintf(buf, sizeof(buf),
           "  ],\n  \"checks\": {\"results_identical\": %s, "
           "\"bp_zero_pages\": %s, \"bp_speedup_achieved\": %s}\n}\n",
           identical ? "true" : "false", zero_pages ? "true" : "false",
           speedup_achieved ? "true" : "false");
  json += buf;

  Status s = WriteStringToFile(json_path, Slice(json));
  if (!s.ok()) {
    fprintf(stderr, "write %s failed: %s\n", json_path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  const bool passed = identical && zero_pages && speedup_achieved;
  printf("\nbest bp speedup vs paged scan: %.2fx\n", best_speedup);
  printf("report: %s (%s)\n", json_path.c_str(),
         passed ? "checks passed" : "CHECKS FAILED");
  return passed ? 0 : 1;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
