// Shared helpers for the benchmark harnesses: flag parsing and table
// printing.  The Table harnesses use hand-rolled timing (wall-clock per
// query, averaged over runs, like the paper's methodology); the
// micro-benchmarks use google-benchmark.

#ifndef NOKXML_BENCH_BENCH_UTIL_H_
#define NOKXML_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace nok {
namespace bench {

/// --name=value / --name value flag lookup.
inline std::string FlagValue(int argc, char** argv, const char* name,
                             const std::string& default_value) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
    if (std::string(argv[i]) == std::string("--") + name &&
        i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return default_value;
}

inline double FlagDouble(int argc, char** argv, const char* name,
                         double default_value) {
  const std::string v =
      FlagValue(argc, argv, name, std::to_string(default_value));
  return atof(v.c_str());
}

inline int FlagInt(int argc, char** argv, const char* name,
                   int default_value) {
  const std::string v =
      FlagValue(argc, argv, name, std::to_string(default_value));
  char* end = nullptr;
  const long parsed = strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    fprintf(stderr, "bad integer for --%s: %s\n", name, v.c_str());
    return default_value;
  }
  return static_cast<int>(parsed);
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  const std::string want = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

/// Prints "  1.23 MB" style sizes.
inline std::string Mb(uint64_t bytes) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.2f MB",
           static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace bench
}  // namespace nok

#endif  // NOKXML_BENCH_BENCH_UTIL_H_
