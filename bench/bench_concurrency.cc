// Concurrent read-path scaling: aggregate throughput of the Table 2
// workload when 1, 2, 4, ... reader threads share one read-only
// DocumentStore through the sharded buffer pool.
//
// Each thread owns its own QueryEngine (cheap per-thread object); the
// store handle, buffer pools and pager are shared.  Per-thread and
// aggregate numbers mirror what `nokq bench --threads` reports.
//
// A second, mixed phase opens the same data through the single-writer /
// multi-reader store: N readers run the workload against pinned
// snapshots while one updater commits subtree insert/delete batches
// through the WAL.  Reader per-query p50/p99 are compared against a
// readers-only baseline; the `readers_never_blocked` self-check fails
// the report if commits stall the read path.
//
// Usage: bench_concurrency [--scale 0.05] [--max-threads 8] [--repeat 2]
//                          [--mixed-readers 4] [--commits 30]
//                          [--json BENCH_concurrency.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "encoding/swmr_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

struct WorkerResult {
  uint64_t queries = 0;
  uint64_t results = 0;
  Status status;
};

void Worker(DocumentStore* store, const std::vector<std::string>* xpaths,
            int repeat, WorkerResult* out) {
  QueryEngine engine(store);
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& xpath : *xpaths) {
      auto result = engine.Evaluate(xpath);
      if (!result.ok()) {
        out->status = result.status();
        return;
      }
      ++out->queries;
      out->results += result->size();
    }
  }
}

/// Per-thread log of the mixed phase: one latency sample per query.
struct MixedReaderResult {
  std::vector<double> latencies;
  std::set<uint64_t> epochs;
  uint64_t passes = 0;
  Status status;
};

/// Runs workload passes over freshly pinned snapshots until `stop` (or,
/// when max_passes > 0, until that many passes are done — the baseline).
void MixedReader(SwmrStore* swmr, const std::vector<std::string>* xpaths,
                 std::atomic<bool>* stop, uint64_t max_passes,
                 MixedReaderResult* out) {
  while (!stop->load(std::memory_order_acquire) &&
         (max_passes == 0 || out->passes < max_passes)) {
    auto snap = swmr->snapshot();
    out->epochs.insert(snap->epoch());
    QueryEngine engine(snap->store());
    for (const std::string& xpath : *xpaths) {
      Timer timer;
      auto result = engine.Evaluate(xpath);
      const double seconds = timer.ElapsedSeconds();
      if (!result.ok()) {
        out->status = result.status();
        return;
      }
      out->latencies.push_back(seconds);
    }
    ++out->passes;
  }
}

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t n = samples->size();
  size_t idx = static_cast<size_t>(p * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return (*samples)[idx];
}

/// The updater's commit batch: three subtree inserts into the root's
/// first entry plus one delete of the latest insert.  Targeting a nested
/// node keeps the sibling shift local to that entry — inserting at the
/// root itself would renumber thousands of top-level siblings per update
/// on a dblp-shaped document.
Status UpdateBatch(SwmrStore* swmr, int c) {
  for (int j = 0; j < 3; ++j) {
    NOK_RETURN_IF_ERROR(swmr->InsertSubtree(
        DeweyId({0, 0}), 0,
        "<bench><v>c" + std::to_string(c) + "n" + std::to_string(j) +
            "</v></bench>"));
  }
  NOK_RETURN_IF_ERROR(swmr->DeleteSubtree(DeweyId({0, 0, 0})));
  return swmr->Commit();
}

int Run(int argc, char** argv) {
  setbuf(stdout, nullptr);
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.05);
  const int max_threads = bench::FlagInt(argc, argv, "max-threads", 8);
  const int repeat = bench::FlagInt(argc, argv, "repeat", 2);
  const int mixed_readers = bench::FlagInt(argc, argv, "mixed-readers", 4);
  const int commits = bench::FlagInt(argc, argv, "commits", 30);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_concurrency.json");

  GeneratedDataset ds = GenerateDataset(Dataset::kDblp, gen);
  std::vector<std::string> xpaths;
  auto queries = QueriesForDataset(ds);
  auto variants = DescendantVariants(queries, gen.seed);
  queries.insert(queries.end(), variants.begin(), variants.end());
  for (const CategoryQuery& q : queries) xpaths.push_back(q.xpath);

  // Concurrency needs a directory-backed store (read-only reopen).
  const std::string dir = "/tmp/nok_bench_concurrency";
  {
    DocumentStore::Options options;
    options.dir = dir;
    for (const char* f :
         {store_files::kTree, store_files::kValues, store_files::kDict,
          store_files::kTagIdx, store_files::kValIdx, store_files::kIdIdx,
          store_files::kPathIdx, store_files::kStale}) {
      Status s = RemoveFile(dir + "/" + f);
      if (!s.ok()) {
        fprintf(stderr, "cleanup failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto built = DocumentStore::Build(ds.xml, options);
    if (!built.ok()) {
      fprintf(stderr, "build failed: %s\n",
              built.status().ToString().c_str());
      return 1;
    }
    Status s = (*built)->Flush();
    if (!s.ok()) {
      fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  DocumentStore::Options options;
  options.dir = dir;
  options.read_only = true;
  options.pool_shards = 16;
  options.index_pool_shards = 8;
  auto store = DocumentStore::OpenDir(options);
  if (!store.ok()) {
    fprintf(stderr, "open failed: %s\n",
            store.status().ToString().c_str());
    return 1;
  }

  printf("concurrent read path (dblp-like, scale %.3f, %zu queries, "
         "repeat %d; hardware threads: %u)\n\n",
         gen.scale, xpaths.size(), repeat,
         std::thread::hardware_concurrency());
  printf("%8s %12s %14s %10s\n", "threads", "queries", "throughput",
         "speedup");

  struct ScalingRow {
    int threads;
    uint64_t queries;
    double qps;
    double speedup;
  };
  std::vector<ScalingRow> scaling;

  double base_qps = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    Status s = (*store)->DropCaches();
    if (!s.ok()) {
      fprintf(stderr, "drop caches failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<WorkerResult> results(static_cast<size_t>(threads));
    Timer wall;
    {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back(Worker, store->get(), &xpaths, repeat,
                             &results[static_cast<size_t>(t)]);
      }
      for (std::thread& w : workers) w.join();
    }
    const double seconds = wall.ElapsedSeconds();
    uint64_t total = 0;
    for (const WorkerResult& r : results) {
      if (!r.status.ok()) {
        fprintf(stderr, "query failed: %s\n",
                r.status.ToString().c_str());
        return 1;
      }
      if (r.results != results[0].results) {
        fprintf(stderr, "threads disagree on results\n");
        return 1;
      }
      total += r.queries;
    }
    const double qps =
        seconds == 0 ? 0 : static_cast<double>(total) / seconds;
    if (threads == 1) base_qps = qps;
    const double speedup = base_qps == 0 ? 0 : qps / base_qps;
    printf("%8d %12llu %11.1f qps %9.2fx\n", threads,
           static_cast<unsigned long long>(total), qps, speedup);
    scaling.push_back({threads, total, qps, speedup});
  }
  store->reset();  // Release the read-only handle before the SWMR open.

  // -- mixed phase: N snapshot readers + 1 WAL updater -------------------
  const std::string mixed_dir = dir + "_swmr";
  std::filesystem::remove_all(mixed_dir);
  std::filesystem::copy(dir, mixed_dir,
                        std::filesystem::copy_options::recursive);
  SwmrStore::Options swmr_options;
  swmr_options.store.pool_shards = 16;
  swmr_options.store.index_pool_shards = 8;
  auto swmr = SwmrStore::Open(mixed_dir, swmr_options);
  if (!swmr.ok()) {
    fprintf(stderr, "swmr open failed: %s\n",
            swmr.status().ToString().c_str());
    return 1;
  }

  printf("\nmixed phase: %d snapshot readers + 1 updater (%d commits of "
         "4 updates each)\n\n",
         mixed_readers, commits);

  auto run_phase = [&](bool with_writer, uint64_t baseline_passes,
                       std::vector<MixedReaderResult>* results,
                       uint64_t* commits_done, double* wall_seconds,
                       Status* writer_status) {
    std::atomic<bool> stop{false};
    Timer wall;
    std::vector<std::thread> threads;
    for (int t = 0; t < mixed_readers; ++t) {
      threads.emplace_back(MixedReader, swmr->get(), &xpaths, &stop,
                           with_writer ? 0 : baseline_passes,
                           &(*results)[static_cast<size_t>(t)]);
    }
    if (with_writer) {
      threads.emplace_back([&]() {
        for (int c = 0; c < commits; ++c) {
          Status s = UpdateBatch(swmr->get(), c);
          if (!s.ok()) {
            *writer_status = s;
            break;
          }
          ++*commits_done;
        }
        stop.store(true, std::memory_order_release);
      });
    }
    for (std::thread& t : threads) t.join();
    *wall_seconds = wall.ElapsedSeconds();
  };

  // Mixed: readers loop until the updater has committed everything.
  std::vector<MixedReaderResult> mixed_results(
      static_cast<size_t>(mixed_readers));
  uint64_t commits_done = 0;
  double mixed_seconds = 0;
  Status writer_status;
  run_phase(true, 0, &mixed_results, &commits_done, &mixed_seconds,
            &writer_status);
  if (!writer_status.ok()) {
    fprintf(stderr, "updater failed: %s\n",
            writer_status.ToString().c_str());
    return 1;
  }

  // Baseline: readers only, a fixed number of passes each, over the
  // final snapshot.  Measured AFTER the mixed phase so both phases pay
  // the same stale-positions plans (the first commit retires the path
  // index until RefreshPositions); the baseline isolates writer
  // interference, not plan degradation.
  const uint64_t baseline_passes = 3;
  std::vector<MixedReaderResult> base_results(
      static_cast<size_t>(mixed_readers));
  uint64_t ignored_commits = 0;
  double base_seconds = 0;
  run_phase(false, baseline_passes, &base_results, &ignored_commits,
            &base_seconds, &writer_status);

  auto collect = [](std::vector<MixedReaderResult>* results,
                    std::vector<double>* all, std::set<uint64_t>* epochs,
                    uint64_t* passes) -> bool {
    for (MixedReaderResult& r : *results) {
      if (!r.status.ok()) {
        fprintf(stderr, "reader failed: %s\n", r.status.ToString().c_str());
        return false;
      }
      all->insert(all->end(), r.latencies.begin(), r.latencies.end());
      epochs->insert(r.epochs.begin(), r.epochs.end());
      *passes += r.passes;
    }
    return true;
  };
  std::vector<double> base_lat, mixed_lat;
  std::set<uint64_t> base_epochs, mixed_epochs;
  uint64_t base_pass_total = 0, mixed_pass_total = 0;
  if (!collect(&base_results, &base_lat, &base_epochs, &base_pass_total) ||
      !collect(&mixed_results, &mixed_lat, &mixed_epochs,
               &mixed_pass_total)) {
    return 1;
  }

  const double base_p50 = Percentile(&base_lat, 0.50);
  const double base_p99 = Percentile(&base_lat, 0.99);
  const double mixed_p50 = Percentile(&mixed_lat, 0.50);
  const double mixed_p99 = Percentile(&mixed_lat, 0.99);

  printf("%-14s %10s %10s %10s %8s %8s\n", "phase", "queries", "p50 ms",
         "p99 ms", "passes", "epochs");
  printf("%-14s %10zu %10.3f %10.3f %8llu %8zu\n", "readers-only",
         base_lat.size(), base_p50 * 1e3, base_p99 * 1e3,
         static_cast<unsigned long long>(base_pass_total),
         base_epochs.size());
  printf("%-14s %10zu %10.3f %10.3f %8llu %8zu\n", "mixed",
         mixed_lat.size(), mixed_p50 * 1e3, mixed_p99 * 1e3,
         static_cast<unsigned long long>(mixed_pass_total),
         mixed_epochs.size());

  // Self-check: commits must not stall the read path.  Readers never
  // block on the writer (snapshot() is a shared_ptr copy under a brief
  // mutex), so mixed p99 stays within a generous CI-noise factor of the
  // readers-only baseline, every reader keeps completing passes, and the
  // pinned snapshots span several epochs (reads really did overlap
  // commits).
  const double slack = std::max(10 * base_p99, base_p99 + 0.005);
  bool every_reader_progressed = true;
  for (const MixedReaderResult& r : mixed_results) {
    if (r.passes == 0) every_reader_progressed = false;
  }
  const bool readers_never_blocked = commits_done ==
                                         static_cast<uint64_t>(commits) &&
                                     every_reader_progressed &&
                                     mixed_epochs.size() >= 2 &&
                                     mixed_p99 <= slack;
  if (!readers_never_blocked) {
    fprintf(stderr,
            "READERS BLOCKED: commits %llu/%d, progressed %d, epochs %zu, "
            "mixed p99 %.3f ms vs slack %.3f ms\n",
            static_cast<unsigned long long>(commits_done), commits,
            every_reader_progressed ? 1 : 0, mixed_epochs.size(),
            mixed_p99 * 1e3, slack * 1e3);
  }
  const SwmrStore::Stats swmr_stats = (*swmr)->stats();

  std::string json = "{\n";
  char buf[512];
  snprintf(buf, sizeof(buf),
           "  \"dataset\": \"%s\",\n  \"scale\": %.4f,\n"
           "  \"repeat\": %d,\n  \"queries\": %zu,\n"
           "  \"read_only_scaling\": [\n",
           ds.name.c_str(), gen.scale, repeat, xpaths.size());
  json += buf;
  for (size_t i = 0; i < scaling.size(); ++i) {
    snprintf(buf, sizeof(buf),
             "    {\"threads\": %d, \"queries\": %llu, \"qps\": %.1f, "
             "\"speedup\": %.3f}%s\n",
             scaling[i].threads,
             static_cast<unsigned long long>(scaling[i].queries),
             scaling[i].qps, scaling[i].speedup,
             i + 1 == scaling.size() ? "" : ",");
    json += buf;
  }
  snprintf(buf, sizeof(buf),
           "  ],\n  \"mixed\": {\n"
           "    \"readers\": %d,\n    \"commits\": %llu,\n"
           "    \"updates\": %llu,\n"
           "    \"baseline_p50_ms\": %.4f,\n"
           "    \"baseline_p99_ms\": %.4f,\n"
           "    \"mixed_p50_ms\": %.4f,\n    \"mixed_p99_ms\": %.4f,\n"
           "    \"reader_queries\": %zu,\n    \"epochs_observed\": %zu,\n"
           "    \"retained_entries_end\": %llu,\n"
           "    \"wall_seconds\": %.3f\n  },\n",
           mixed_readers, static_cast<unsigned long long>(commits_done),
           static_cast<unsigned long long>(commits_done * 4), base_p50 * 1e3,
           base_p99 * 1e3, mixed_p50 * 1e3, mixed_p99 * 1e3,
           mixed_lat.size(), mixed_epochs.size(),
           static_cast<unsigned long long>(swmr_stats.retained_entries),
           mixed_seconds);
  json += buf;
  snprintf(buf, sizeof(buf),
           "  \"checks\": {\"readers_never_blocked\": %s}\n}\n",
           readers_never_blocked ? "true" : "false");
  json += buf;
  Status s = WriteStringToFile(json_path, Slice(json));
  if (!s.ok()) {
    fprintf(stderr, "write %s failed: %s\n", json_path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  printf("\nreport: %s (readers_never_blocked: %s)\n", json_path.c_str(),
         readers_never_blocked ? "true" : "FALSE");
  return readers_never_blocked ? 0 : 1;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
