// Concurrent read-path scaling: aggregate throughput of the Table 2
// workload when 1, 2, 4, ... reader threads share one read-only
// DocumentStore through the sharded buffer pool.
//
// Each thread owns its own QueryEngine (cheap per-thread object); the
// store handle, buffer pools and pager are shared.  Per-thread and
// aggregate numbers mirror what `nokq bench --threads` reports.
//
// Usage: bench_concurrency [--scale 0.05] [--max-threads 8] [--repeat 2]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

struct WorkerResult {
  uint64_t queries = 0;
  uint64_t results = 0;
  Status status;
};

void Worker(DocumentStore* store, const std::vector<std::string>* xpaths,
            int repeat, WorkerResult* out) {
  QueryEngine engine(store);
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& xpath : *xpaths) {
      auto result = engine.Evaluate(xpath);
      if (!result.ok()) {
        out->status = result.status();
        return;
      }
      ++out->queries;
      out->results += result->size();
    }
  }
}

int Run(int argc, char** argv) {
  setbuf(stdout, nullptr);
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.05);
  const int max_threads = bench::FlagInt(argc, argv, "max-threads", 8);
  const int repeat = bench::FlagInt(argc, argv, "repeat", 2);

  GeneratedDataset ds = GenerateDataset(Dataset::kDblp, gen);
  std::vector<std::string> xpaths;
  auto queries = QueriesForDataset(ds);
  auto variants = DescendantVariants(queries, gen.seed);
  queries.insert(queries.end(), variants.begin(), variants.end());
  for (const CategoryQuery& q : queries) xpaths.push_back(q.xpath);

  // Concurrency needs a directory-backed store (read-only reopen).
  const std::string dir = "/tmp/nok_bench_concurrency";
  {
    DocumentStore::Options options;
    options.dir = dir;
    for (const char* f :
         {store_files::kTree, store_files::kValues, store_files::kDict,
          store_files::kTagIdx, store_files::kValIdx, store_files::kIdIdx,
          store_files::kPathIdx, store_files::kStale}) {
      Status s = RemoveFile(dir + "/" + f);
      if (!s.ok()) {
        fprintf(stderr, "cleanup failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto built = DocumentStore::Build(ds.xml, options);
    if (!built.ok()) {
      fprintf(stderr, "build failed: %s\n",
              built.status().ToString().c_str());
      return 1;
    }
    Status s = (*built)->Flush();
    if (!s.ok()) {
      fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  DocumentStore::Options options;
  options.dir = dir;
  options.read_only = true;
  options.pool_shards = 16;
  options.index_pool_shards = 8;
  auto store = DocumentStore::OpenDir(options);
  if (!store.ok()) {
    fprintf(stderr, "open failed: %s\n",
            store.status().ToString().c_str());
    return 1;
  }

  printf("concurrent read path (dblp-like, scale %.3f, %zu queries, "
         "repeat %d; hardware threads: %u)\n\n",
         gen.scale, xpaths.size(), repeat,
         std::thread::hardware_concurrency());
  printf("%8s %12s %14s %10s\n", "threads", "queries", "throughput",
         "speedup");

  double base_qps = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    Status s = (*store)->DropCaches();
    if (!s.ok()) {
      fprintf(stderr, "drop caches failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<WorkerResult> results(static_cast<size_t>(threads));
    Timer wall;
    {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back(Worker, store->get(), &xpaths, repeat,
                             &results[static_cast<size_t>(t)]);
      }
      for (std::thread& w : workers) w.join();
    }
    const double seconds = wall.ElapsedSeconds();
    uint64_t total = 0;
    for (const WorkerResult& r : results) {
      if (!r.status.ok()) {
        fprintf(stderr, "query failed: %s\n",
                r.status.ToString().c_str());
        return 1;
      }
      if (r.results != results[0].results) {
        fprintf(stderr, "threads disagree on results\n");
        return 1;
      }
      total += r.queries;
    }
    const double qps =
        seconds == 0 ? 0 : static_cast<double>(total) / seconds;
    if (threads == 1) base_qps = qps;
    printf("%8d %12llu %11.1f qps %9.2fx\n", threads,
           static_cast<unsigned long long>(total), qps,
           base_qps == 0 ? 0 : qps / base_qps);
  }
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
