// I/O behaviour of the physical storage (Section 5):
//   * the (st,lo,hi) header-skip optimization: page fetches during
//     FOLLOWING-SIBLING walks with the optimization on vs off
//     (Example 5's "only two page reads");
//   * Proposition 1: a full NoK-style traversal reads every page at most
//     once given n/C buffer frames.
//
// Usage: bench_io [--scale 0.1]

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"

namespace nok {
namespace {

struct IoNumbers {
  uint64_t pool_reads = 0;
  uint64_t pages_scanned = 0;
  uint64_t pages_skipped = 0;
  double seconds = 0;
};

Result<IoNumbers> SiblingWalkWorkload(DocumentStore* store) {
  // Walk the sibling chain at level 2 (the paper's Example 5 pattern:
  // each FOLLOWING-SIBLING must hop over a whole entry subtree).
  NOK_RETURN_IF_ERROR(store->DropCaches());
  Timer timer;
  StringStore* tree = store->tree();
  NOK_ASSIGN_OR_RETURN(auto child, tree->FirstChild(tree->RootPos()));
  size_t walked = 0;
  std::optional<StorePos> pos = child;
  while (pos.has_value()) {
    ++walked;
    NOK_ASSIGN_OR_RETURN(auto sibling, tree->FollowingSibling(*pos));
    pos = sibling;
  }
  IoNumbers out;
  out.seconds = timer.ElapsedSeconds();
  out.pool_reads = tree->buffer_pool()->stats().disk_reads;
  out.pages_scanned = tree->nav_stats().pages_scanned;
  out.pages_skipped = tree->nav_stats().pages_skipped;
  (void)walked;
  return out;
}

int Run(int argc, char** argv) {
  setbuf(stdout, nullptr);  // Progress is visible even when piped.
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.1);
  // The sibling walk hops over <category> subtrees (~750 nodes each, a
  // few pages): exactly Example 5's "skip the cousin pages" situation.
  GeneratedDataset ds = GenerateDataset(Dataset::kCatalog, gen);

  printf("I/O behaviour (catalog-like document, scale %.3f)\n\n",
         gen.scale);

  for (bool skip : {true, false}) {
    DocumentStore::Options options;
    options.page_size = 1024;  // Categories span several pages.
    options.use_header_skip = skip;
    auto store = DocumentStore::Build(ds.xml, options);
    if (!store.ok()) {
      fprintf(stderr, "build failed: %s\n",
              store.status().ToString().c_str());
      return 1;
    }
    auto io = SiblingWalkWorkload(store->get());
    if (!io.ok()) {
      fprintf(stderr, "workload failed: %s\n",
              io.status().ToString().c_str());
      return 1;
    }
    printf("header skip %-3s: disk reads %8llu  pages scanned %8llu  "
           "skipped %8llu  (%.4fs; %zu chain pages)\n",
           skip ? "ON" : "OFF",
           static_cast<unsigned long long>(io->pool_reads),
           static_cast<unsigned long long>(io->pages_scanned),
           static_cast<unsigned long long>(io->pages_skipped),
           io->seconds, (*store)->tree()->chain_length());
  }

  // Proposition 1: full evaluation of a path query is single-pass.
  {
    DocumentStore::Options options;
    options.page_size = 1024;
    options.pool_frames = 4096;  // Enough frames for the n/C bound.
    auto store = DocumentStore::Build(ds.xml, options);
    if (!store.ok()) return 1;
    QueryEngine engine(store->get());
    if (!(*store)->DropCaches().ok()) return 1;
    QueryOptions qo;
    qo.strategy = StartStrategy::kScan;  // Whole-document pass.
    auto r = engine.Evaluate(ds.entry_path + "/" + ds.detail_a, qo);
    if (!r.ok()) {
      fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    const uint64_t reads =
        (*store)->tree()->buffer_pool()->stats().disk_reads;
    const size_t pages = (*store)->tree()->chain_length();
    printf("\nProposition 1 check: scan-strategy query read %llu pages of "
           "%zu in the chain (single-pass iff reads <= pages): %s\n",
           static_cast<unsigned long long>(reads), pages,
           reads <= pages ? "HOLDS" : "VIOLATED");
  }
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
