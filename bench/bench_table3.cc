// Reproduces Table 3 of the paper: running time of the four systems
// (DI, X-Hive stand-in "Nav", TwigStack, NoK) on the twelve query
// categories (Table 2) over the five datasets.
//
// Methodology mirrors the paper: each time is the average of --runs (3)
// executions; NoK runs against the on-disk representation with cold
// buffer pools per execution; the baselines run over their preloaded
// encodings (load time excluded for every system, as in the paper).
//
// Usage: bench_table3 [--scale 0.1] [--runs 3] [--show-queries]
//        [--descendant]   (adds the '//'-substituted query variants)

#include <cstdio>

#include "baseline/di_engine.h"
#include "baseline/interval_encoding.h"
#include "baseline/navigational_engine.h"
#include "baseline/twigstack_engine.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"
#include "xml/dom.h"

namespace nok {
namespace {

struct Row {
  std::string id;
  std::string category;
  double di = 0, nav = 0, twig = 0, nok = 0;
  size_t results = 0;
};

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.1);
  gen.seed = static_cast<uint64_t>(bench::FlagInt(argc, argv, "seed", 42));
  const int runs = bench::FlagInt(argc, argv, "runs", 3);
  const bool show_queries = bench::FlagBool(argc, argv, "show-queries");
  const bool descendant = bench::FlagBool(argc, argv, "descendant");

  printf("Table 3 reproduction (scale %.3f, %d-run averages, seconds)\n",
         gen.scale, runs);
  printf("expected shape: NoK beats DI everywhere; DI is topology-\n"
         "sensitive and selectivity-insensitive; NoK tracks selectivity;\n"
         "TwigStack pays for low-selectivity leaf streams; Nav (X-Hive\n"
         "stand-in) is strong on selective value queries.\n\n");

  for (Dataset dataset : AllDatasets()) {
    GeneratedDataset ds = GenerateDataset(dataset, gen);
    auto store = DocumentStore::Build(ds.xml, DocumentStore::Options());
    if (!store.ok()) {
      fprintf(stderr, "build failed: %s\n",
              store.status().ToString().c_str());
      return 1;
    }
    auto dom = DomTree::Parse(ds.xml);
    auto interval = IntervalDocument::Build(ds.xml);
    if (!dom.ok() || !interval.ok()) {
      fprintf(stderr, "baseline load failed\n");
      return 1;
    }
    DiEngine di(&*interval);
    TwigStackEngine twig(&*interval);
    NavigationalEngine nav(&*dom);
    QueryEngine nok_engine(store->get());

    auto queries = QueriesForDataset(ds);
    if (descendant) {
      auto variants = DescendantVariants(queries, gen.seed);
      queries.insert(queries.end(), variants.begin(), variants.end());
    }
    if (show_queries) {
      printf("--- %s queries (Table 2 instantiation)\n", ds.name.c_str());
      for (const auto& q : queries) {
        printf("  %-4s %-4s %s\n", q.id.c_str(), q.category.c_str(),
               q.xpath.c_str());
      }
    }

    std::vector<Row> rows;
    for (const auto& q : queries) {
      auto pattern = ParseXPath(q.xpath);
      if (!pattern.ok()) {
        fprintf(stderr, "parse %s failed\n", q.xpath.c_str());
        return 1;
      }
      Row row;
      row.id = q.id;
      row.category = q.category;

      auto time_engine = [&](auto&& body) {
        Timer timer;
        for (int r = 0; r < runs; ++r) body();
        return timer.ElapsedSeconds() / runs;
      };

      row.di = time_engine([&] { (void)di.Evaluate(*pattern); });
      row.nav = time_engine([&] { (void)nav.Evaluate(*pattern); });
      row.twig = time_engine([&] { (void)twig.Evaluate(*pattern); });
      // Warm runs for every engine (the baselines hold their encodings
      // in memory; NoK keeps its buffer pool warm the same way).
      row.nok = time_engine([&] {
        auto r = nok_engine.Evaluate(q.xpath);
        if (r.ok()) row.results = r->size();
      });
      rows.push_back(row);
    }

    printf("--- %s (%llu nodes)\n", ds.name.c_str(),
           static_cast<unsigned long long>((*store)->stats().node_count));
    printf("%-5s %-4s %10s %10s %10s %10s %8s\n", "query", "cat", "DI",
           "Nav", "TwigStack", "NoK", "results");
    for (const Row& row : rows) {
      printf("%-5s %-4s %10.4f %10.4f %10.4f %10.4f %8zu\n",
             row.id.c_str(), row.category.c_str(), row.di, row.nav,
             row.twig, row.nok, row.results);
    }
    // Shape summary for EXPERIMENTS.md.
    int nok_beats_di = 0;
    for (const Row& row : rows) nok_beats_di += row.nok <= row.di;
    printf("shape: NoK <= DI on %d/%zu queries\n\n", nok_beats_di,
           rows.size());
  }
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
