// Starting-point strategy comparison (Section 6.2): sequential scan vs
// tag index vs value index for locating NoK starting points, across
// selectivity classes.  Reproduces the discussion that the value index
// wins for selective values, the tag index wins when tags are rare, and
// the scan wins when nothing is selective.
//
// Usage: bench_index_choice [--scale 0.2] [--runs 3]

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"

namespace nok {
namespace {

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.2);
  const int runs = bench::FlagInt(argc, argv, "runs", 3);

  GeneratedDataset ds = GenerateDataset(Dataset::kDblp, gen);
  auto store = DocumentStore::Build(ds.xml, DocumentStore::Options());
  if (!store.ok()) {
    fprintf(stderr, "build failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(store->get());

  printf("Starting-point strategies (dblp-like, %llu nodes, %d-run avg)\n\n",
         static_cast<unsigned long long>((*store)->stats().node_count),
         runs);
  printf("%-34s %-10s %10s %12s %10s\n", "query", "strategy", "time (s)",
         "candidates", "results");

  const auto queries = QueriesForDataset(ds);
  // One value query per selectivity class + one structural query.
  for (const auto& q : queries) {
    if (q.id != "Q1" && q.id != "Q5" && q.id != "Q9" && q.id != "Q10") {
      continue;
    }
    for (StartStrategy strategy :
         {StartStrategy::kScan, StartStrategy::kTagIndex,
          StartStrategy::kValueIndex, StartStrategy::kAuto}) {
      QueryOptions options;
      options.strategy = strategy;
      double seconds = 0;
      size_t candidates = 0, results = 0;
      StartStrategy used = strategy;
      for (int r = 0; r < runs; ++r) {
        if (!(*store)->DropCaches().ok()) return 1;
        Timer timer;
        auto result = engine.Evaluate(q.xpath, options);
        seconds += timer.ElapsedSeconds();
        if (!result.ok()) {
          fprintf(stderr, "%s failed: %s\n", q.xpath.c_str(),
                  result.status().ToString().c_str());
          return 1;
        }
        results = result->size();
        for (const auto& t : engine.last_stats().trees) {
          if (!t.candidates && engine.last_stats().trees.size() > 1) {
            continue;
          }
          candidates = t.candidates;
          used = t.strategy;
        }
      }
      auto strategy_name = [](StartStrategy s) {
        switch (s) {
          case StartStrategy::kScan: return "scan";
          case StartStrategy::kTagIndex: return "tag-idx";
          case StartStrategy::kValueIndex: return "value-idx";
          case StartStrategy::kPathIndex: return "path-idx";
          case StartStrategy::kAuto: return "auto";
        }
        return "?";
      };
      const char* name = strategy_name(strategy);
      const std::string used_name =
          std::string("(") + strategy_name(used) + ")";
      printf("%-34s %-10s %10.4f %12zu %10zu %s\n",
             (q.id + " " + q.category).c_str(), name, seconds / runs,
             candidates, results,
             strategy == StartStrategy::kAuto ? used_name.c_str() : "");
    }
    printf("\n");
  }
  printf("expected shape: value-idx ~ constant in selectivity; scan ~\n"
         "constant in document size; auto picks the value index whenever\n"
         "a value constraint exists (the paper's heuristic).\n");

  // --- Section 8 extension: path index vs tag index --------------------
  // In the catalog document the filler tags occur under two paths
  // (.../para/<tag> and .../para/emph/<tag>); the tag is common but each
  // full path is rarer, which is exactly the case the paper's future-work
  // section reserves for a path index.
  GeneratedDataset cat = GenerateDataset(Dataset::kCatalog, gen);
  auto cat_store = DocumentStore::Build(cat.xml, DocumentStore::Options());
  if (!cat_store.ok()) return 1;
  QueryEngine cat_engine(cat_store->get());
  const std::string deep_query =
      "/catalog/category/item/description/para/emph/feature0";
  printf("\npath-index ablation (catalog-like, %llu nodes): %s\n",
         static_cast<unsigned long long>(
             (*cat_store)->stats().node_count),
         deep_query.c_str());
  for (bool use_path : {false, true}) {
    QueryOptions options;
    options.use_path_index = use_path;
    options.index_fraction = 0.5;
    double seconds = 0;
    size_t results = 0, candidates = 0;
    for (int r = 0; r < runs; ++r) {
      if (!(*cat_store)->DropCaches().ok()) return 1;
      Timer timer;
      auto result = cat_engine.Evaluate(deep_query, options);
      seconds += timer.ElapsedSeconds();
      if (!result.ok()) return 1;
      results = result->size();
      candidates = cat_engine.last_stats().trees[0].candidates;
    }
    printf("  path index %-3s: %8.4fs  %6zu candidates  %6zu results\n",
           use_path ? "ON" : "OFF", seconds / runs, candidates, results);
  }
  printf("expected shape: with the path index ON the candidate set is\n"
         "the deep path's occurrences only, not every <feature0>.\n");
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
