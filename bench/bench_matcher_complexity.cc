// Section 3 complexity analysis: the NoK matcher is O(m * n) in the
// worst case, where grandchildren are revisited once per matching
// frontier branch (the paper's /a[b/c1][b/c2]... example).  This
// google-benchmark sweep scales the number of pattern branches and the
// subject fan-out independently, so the m * n product shape is visible
// in the reported times.

#include <benchmark/benchmark.h>

#include <string>

#include "encoding/document_store.h"
#include "nok/query_engine.h"

namespace nok {
namespace {

/// Subject: /a with `fanout` b children.  Every b carries grandchildren
/// c0..c{width-2}; only the LAST b also carries c{width-1}, so one
/// frontier branch stays unsatisfied until the final sibling and the
/// matcher walks all fanout children, revisiting grandchildren per
/// branch -- the paper's worst case.
std::string MakeSubject(int fanout, int width) {
  std::string xml = "<a>";
  for (int i = 0; i < fanout; ++i) {
    xml += "<b>";
    const int have = (i + 1 == fanout) ? width : width - 1;
    for (int j = 0; j < have; ++j) {
      xml += "<c" + std::to_string(j) + "/>";
    }
    xml += "</b>";
  }
  xml += "</a>";
  return xml;
}

/// Pattern: /a[b/c0][b/c1]...[b/c{branches-1}] -- every b child matches
/// every frontier branch, so grandchildren are revisited per branch.
std::string MakePattern(int branches) {
  std::string q = "/a";
  for (int i = 0; i < branches; ++i) {
    q += "[b/c" + std::to_string(i) + "]";
  }
  return q;
}

void BM_NokBranchRevisits(benchmark::State& state) {
  const int branches = static_cast<int>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));
  auto store = DocumentStore::Build(MakeSubject(fanout, branches),
                                    DocumentStore::Options());
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  QueryEngine engine(store->get());
  const std::string query = MakePattern(branches);
  QueryOptions options;
  options.strategy = StartStrategy::kScan;  // Exercise raw Algorithm 1.
  for (auto _ : state) {
    auto r = engine.Evaluate(query, options);
    if (!r.ok() || r->size() != 1) {
      state.SkipWithError("unexpected result");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  // m ~ branches (pattern nodes), n ~ fanout * branches (subject nodes).
  state.SetComplexityN(branches * fanout * branches);
}

BENCHMARK(BM_NokBranchRevisits)
    ->ArgsProduct({{1, 2, 4, 8}, {16, 64, 256}})
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

/// Single-path match over a long sibling list: linear in n.
void BM_NokLinearScan(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  std::string xml = "<a>";
  for (int i = 0; i < fanout; ++i) xml += "<b><x/></b>";
  xml += "</a>";
  auto store = DocumentStore::Build(xml, DocumentStore::Options());
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  QueryEngine engine(store->get());
  QueryOptions options;
  options.strategy = StartStrategy::kScan;
  for (auto _ : state) {
    auto r = engine.Evaluate("/a/b/x", options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(fanout);
}

BENCHMARK(BM_NokLinearScan)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace nok

BENCHMARK_MAIN();
