// Streaming evaluation (Sections 1/4.2): single-pass NoK matching over a
// SAX stream vs the stored-document engine, plus the Proposition 1 memory
// bound (peak buffered nodes vs document size).
//
// Usage: bench_streaming [--scale 0.1] [--runs 3]

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "streaming/stream_matcher.h"

namespace nok {
namespace {

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.1);
  const int runs = bench::FlagInt(argc, argv, "runs", 3);

  GeneratedDataset ds = GenerateDataset(Dataset::kCatalog, gen);
  auto store = DocumentStore::Build(ds.xml, DocumentStore::Options());
  if (!store.ok()) {
    fprintf(stderr, "build failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(store->get());

  printf("Streaming vs stored evaluation (catalog-like, %s, %llu nodes)\n\n",
         bench::Mb(ds.xml.size()).c_str(),
         static_cast<unsigned long long>((*store)->stats().node_count));
  printf("%-44s %10s %10s %12s %10s\n", "query", "stream(s)", "stored(s)",
         "peak-buffer", "results");

  const auto queries = QueriesForDataset(ds);
  for (const auto& q : queries) {
    // Streaming covers rooted and single-'//' queries; all twelve
    // categories here are rooted.
    double stream_s = 0, stored_s = 0;
    StreamRunStats stats;
    size_t stream_results = 0, stored_results = 0;
    bool supported = true;
    for (int r = 0; r < runs; ++r) {
      Timer t1;
      auto sr = EvaluateStreaming(q.xpath, ds.xml, &stats);
      stream_s += t1.ElapsedSeconds();
      if (!sr.ok()) {
        supported = false;
        break;
      }
      stream_results = sr->size();
      if (!(*store)->DropCaches().ok()) return 1;
      Timer t2;
      auto er = engine.Evaluate(q.xpath);
      stored_s += t2.ElapsedSeconds();
      if (!er.ok()) return 1;
      stored_results = er->size();
    }
    if (!supported) {
      printf("%-44s %10s\n", q.xpath.c_str(), "NI");
      continue;
    }
    if (stream_results != stored_results) {
      fprintf(stderr, "MISMATCH on %s: stream %zu vs stored %zu\n",
              q.xpath.c_str(), stream_results, stored_results);
      return 1;
    }
    printf("%-44s %10.4f %10.4f %12zu %10zu\n", q.xpath.c_str(),
           stream_s / runs, stored_s / runs, stats.peak_buffered_nodes,
           stream_results);
  }
  printf("\nexpected shape: peak-buffer is the largest entry subtree\n"
         "(Proposition 1's n/C bound scaled to nodes), orders of\n"
         "magnitude below the document's %llu nodes; streaming pays the\n"
         "parse on every query, the stored engine pays it once at build.\n",
         static_cast<unsigned long long>((*store)->stats().node_count));
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
