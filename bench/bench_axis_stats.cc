// Section 1's motivating statistic: in the XQuery Use Cases, roughly 2/3
// of structural relationships are '/' (local) and 1/3 are '//' (global)
// -- the empirical basis for NoK matching reducing structural-join
// counts.  This harness recomputes the ratio over the embedded corpus
// and reports the per-query join savings of the NoK partition.

#include <cstdio>

#include "nok/nok_partition.h"
#include "nok/xpath_parser.h"
#include "datagen/usecases_corpus.h"

namespace nok {
namespace {

int Run() {
  const auto& corpus = UseCasesPathCorpus();
  int local = 0, global = 0, joins_nok = 0, joins_selectjoin = 0;
  printf("XQuery Use Cases path corpus (%zu expressions)\n\n",
         corpus.size());
  for (const std::string& expr : corpus) {
    auto stats = CollectAxisStats(expr);
    if (!stats.ok()) {
      fprintf(stderr, "parse %s: %s\n", expr.c_str(),
              stats.status().ToString().c_str());
      return 1;
    }
    local += stats->child_steps + stats->following_sibling_steps;
    global += stats->descendant_steps + stats->following_steps;

    // Join counts: selection-then-join needs one structural join per
    // edge; NoK needs one per *global* arc only.
    auto pattern = ParseXPath(expr);
    if (!pattern.ok()) return 1;
    const NokPartition partition = PartitionPattern(*pattern);
    joins_nok += static_cast<int>(partition.arcs.size());
    joins_selectjoin += pattern->size() - 1;
  }
  const int total = local + global;
  printf("structural steps: %d\n", total);
  printf("  local  ('/', following-sibling): %3d  (%.0f%%)\n", local,
         100.0 * local / total);
  printf("  global ('//', following):        %3d  (%.0f%%)\n", global,
         100.0 * global / total);
  printf("\npaper claim (Section 1): ~2/3 local, ~1/3 global.\n");
  printf("\nstructural joins needed:\n");
  printf("  selection-then-join (one per edge):   %d\n", joins_selectjoin);
  printf("  NoK partition (one per global arc):   %d  (%.0f%% saved)\n",
         joins_nok,
         100.0 * (joins_selectjoin - joins_nok) / joins_selectjoin);
  return 0;
}

}  // namespace
}  // namespace nok

int main() { return nok::Run(); }
