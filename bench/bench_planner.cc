// Planner ablation: measures what cost-based semi-join ordering (most
// selective ready tree first + semi-join pre-filtering of anchor
// candidates) and the plan cache buy on branchy Table-2 style queries.
//
// Three modes per query:
//   fixed       legacy partition order (n-1..0), no pre-filter, no cache
//   cost        cost-based schedule + pre-filter (the default)
//   cost+cache  cost plus the bounded plan cache (repeat runs hit it)
//
// The knobs only change evaluation order and which candidate pages are
// touched, never the answer, so the run fails unless all modes return
// identical result sets.  It also fails if cost-based ordering is slower
// than the fixed order (beyond a small timing tolerance) on any query,
// or fails to reach the target speedup on at least one branchy query.
//
// A second phase ablates the path synopsis (per-pattern-node estimates
// vs flat tag counts): it compares per-NokMatch est-vs-actual error,
// requires the synopsis to at least halve the median error on the bushy
// workload, and requires a schema-impossible composition of present
// tags to execute with zero pages read via the EmptyResult fast path.
//
// Usage: bench_planner [--dataset catalog] [--scale 0.05] [--seed 42]
//                      [--page-size 512] [--runs 5]
//                      [--target-speedup 1.2] [--tolerance 0.10]
//                      [--json BENCH_planner.json]

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "datagen/query_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

struct Mode {
  bool cost_based;
  bool cache;
  const char* name;
};

constexpr Mode kModes[] = {
    {false, false, "fixed"},
    {true, false, "cost"},
    {true, true, "cost+cache"},
};

/// One (query, mode) measurement.
struct Cell {
  size_t results = 0;
  double best_seconds = 0;   ///< Min over runs (noise-robust).
  double mean_seconds = 0;
  uint64_t pages_scanned = 0;
  uint64_t cache_hits = 0;
  std::vector<std::string> deweys;  ///< For the cross-mode identity check.
};

/// One query under one planner mode (synopsis on/off): per-NokMatch
/// est-vs-actual errors plus the page count the schedule cost.
struct SynopsisCell {
  std::vector<double> errors;  ///< |est/max(actual,1) - 1| per NokMatch.
  uint64_t pages_scanned = 0;
  std::vector<std::string> deweys;
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// The branchy workload: the bushy half of the Table 2 categories plus
/// two hand-built queries whose anchors are frequent but whose predicate
/// subtrees are rare — the shape where evaluating the rare tree first
/// and pre-filtering the anchor candidates pays the most.
std::vector<CategoryQuery> Workload(const GeneratedDataset& ds) {
  std::vector<CategoryQuery> out;
  for (const CategoryQuery& q : QueriesForDataset(ds)) {
    if (q.category.size() == 3 && q.category[1] == 'b') out.push_back(q);
  }
  std::string entry = ds.entry_path;
  const size_t slash = entry.rfind('/');
  if (slash != std::string::npos) entry = entry.substr(slash + 1);
  out.push_back({"X1", "xb n",
                 ds.entry_path + "[" + ds.detail_a + "][.//" +
                     ds.marker_gem + "]"});
  out.push_back({"X2", "xb y",
                 "//" + entry + "[" + ds.needle_tag_a + "=\"" +
                     ds.needle_low_a + "\"][.//" + ds.marker_rare + "]"});
  return out;
}

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.05);
  gen.seed = static_cast<uint64_t>(bench::FlagInt(argc, argv, "seed", 42));
  const std::string dataset_name =
      bench::FlagValue(argc, argv, "dataset", "catalog");
  const uint32_t page_size = static_cast<uint32_t>(
      bench::FlagInt(argc, argv, "page-size", 512));
  const int runs = bench::FlagInt(argc, argv, "runs", 5);
  const double target =
      bench::FlagDouble(argc, argv, "target-speedup", 1.2);
  const double tolerance = bench::FlagDouble(argc, argv, "tolerance", 0.10);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_planner.json");

  Dataset dataset = Dataset::kCatalog;
  bool found = false;
  for (Dataset d : AllDatasets()) {
    if (DatasetName(d) == dataset_name) {
      dataset = d;
      found = true;
    }
  }
  if (!found) {
    fprintf(stderr, "unknown dataset: %s\n", dataset_name.c_str());
    return 2;
  }

  GeneratedDataset ds = GenerateDataset(dataset, gen);
  const std::vector<CategoryQuery> queries = Workload(ds);

  DocumentStore::Options options;
  options.page_size = page_size;
  auto store = DocumentStore::Build(ds.xml, options);
  if (!store.ok()) {
    fprintf(stderr, "build failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  printf("planner ablation: %s (scale %.3f, page size %u, %d runs)\n\n",
         ds.name.c_str(), gen.scale, page_size, runs);
  printf("%-4s %-10s %8s %9s %9s %8s %8s\n", "id", "mode", "results",
         "best ms", "mean ms", "pages", "hits");

  std::vector<std::vector<Cell>> grid;  // [query][mode].
  for (const CategoryQuery& q : queries) {
    std::vector<Cell> row;
    for (const Mode& mode : kModes) {
      Cell cell;
      QueryEngine engine(store->get());
      QueryOptions qo;
      qo.cost_based_join_order = mode.cost_based;
      qo.use_plan_cache = mode.cache;
      double total_seconds = 0;
      double best_seconds = 0;
      for (int r = 0; r < runs; ++r) {
        Status s = (*store)->DropCaches();
        if (!s.ok()) {
          fprintf(stderr, "drop caches failed: %s\n", s.ToString().c_str());
          return 1;
        }
        (*store)->tree()->ResetNavStats();
        Timer timer;
        auto result = engine.Evaluate(q.xpath, qo);
        const double seconds = timer.ElapsedSeconds();
        total_seconds += seconds;
        if (r == 0 || seconds < best_seconds) best_seconds = seconds;
        if (!result.ok()) {
          fprintf(stderr, "%s [%s] failed: %s\n", q.xpath.c_str(),
                  mode.name, result.status().ToString().c_str());
          return 1;
        }
        if (r + 1 == runs) {
          cell.results = result->size();
          cell.pages_scanned =
              (*store)->tree()->nav_stats().pages_scanned;
          cell.deweys.reserve(result->size());
          for (const DeweyId& id : *result) {
            cell.deweys.push_back(id.ToString());
          }
        }
      }
      cell.best_seconds = best_seconds;
      cell.mean_seconds = total_seconds / runs;
      cell.cache_hits = engine.plan_cache().stats().hits;
      printf("%-4s %-10s %8zu %9.3f %9.3f %8llu %8llu\n", q.id.c_str(),
             mode.name, cell.results, cell.best_seconds * 1e3,
             cell.mean_seconds * 1e3,
             static_cast<unsigned long long>(cell.pages_scanned),
             static_cast<unsigned long long>(cell.cache_hits));
      row.push_back(std::move(cell));
    }
    grid.push_back(std::move(row));
  }

  // Check 1: ordering, pre-filtering and caching must not change answers.
  bool identical = true;
  for (size_t q = 0; q < grid.size(); ++q) {
    for (size_t m = 1; m < grid[q].size(); ++m) {
      if (grid[q][m].deweys != grid[q][0].deweys) {
        identical = false;
        fprintf(stderr,
                "RESULT MISMATCH: mode %s disagrees with mode %s on %s\n",
                kModes[m].name, kModes[0].name, queries[q].xpath.c_str());
      }
    }
  }
  // Check 2: cost-based ordering is never slower than the fixed order
  // (within a timing-noise tolerance on best-of-runs).
  bool never_slower = true;
  double max_speedup = 0;
  for (size_t q = 0; q < grid.size(); ++q) {
    const double fixed = grid[q][0].best_seconds;
    const double cost = grid[q][1].best_seconds;
    const double speedup = cost > 0 ? fixed / cost : 1.0;
    max_speedup = std::max(max_speedup, speedup);
    if (cost > fixed * (1.0 + tolerance)) {
      never_slower = false;
      fprintf(stderr,
              "REGRESSION: %s cost-based %.3fms vs fixed %.3fms\n",
              queries[q].id.c_str(), cost * 1e3, fixed * 1e3);
    }
  }
  // Check 3: at least one branchy query reaches the target speedup.
  const bool target_met = max_speedup >= target;
  if (!target_met) {
    fprintf(stderr,
            "SPEEDUP TARGET MISSED: best %.2fx < target %.2fx\n",
            max_speedup, target);
  }

  // ------------------------------------------------------------------
  // Synopsis phase: estimation quality on the bushy workload, synopsis
  // on vs off.  Per query and mode, collect the per-NokMatch estimation
  // error |est / max(actual, 1) - 1| from the operator trace, the pages
  // the chosen schedule cost, and the result set (the planner mode must
  // never change answers).  The skewed compositions are exactly where
  // flat tag counts are off by orders of magnitude.
  printf("\nsynopsis ablation (est-vs-actual per NokMatch)\n");
  printf("%-4s %12s %12s %10s %10s\n", "id", "err syn", "err flat",
         "pages syn", "pages flat");
  std::vector<double> errors_syn, errors_flat;
  bool synopsis_identical = true;
  bool schedule_never_worse = true;
  std::vector<std::array<SynopsisCell, 2>> syn_grid;  // [query][on, off].
  for (const CategoryQuery& q : queries) {
    std::array<SynopsisCell, 2> cells;
    for (int mode = 0; mode < 2; ++mode) {
      SynopsisCell& cell = cells[static_cast<size_t>(mode)];
      QueryEngine engine(store->get());
      QueryOptions qo;
      qo.use_synopsis = mode == 0;
      Status s = (*store)->DropCaches();
      if (!s.ok()) {
        fprintf(stderr, "drop caches failed: %s\n", s.ToString().c_str());
        return 1;
      }
      (*store)->tree()->ResetNavStats();
      auto result = engine.Evaluate(q.xpath, qo);
      if (!result.ok()) {
        fprintf(stderr, "%s [synopsis=%d] failed: %s\n", q.xpath.c_str(),
                mode == 0 ? 1 : 0, result.status().ToString().c_str());
        return 1;
      }
      cell.pages_scanned = (*store)->tree()->nav_stats().pages_scanned;
      for (const DeweyId& id : *result) {
        cell.deweys.push_back(id.ToString());
      }
      for (const OperatorStats& op : engine.last_trace().operators) {
        if (op.op != "NokMatch" || !op.has_estimate) continue;
        const double actual =
            static_cast<double>(op.rows_out > 0 ? op.rows_out : 1);
        cell.errors.push_back(
            std::fabs(static_cast<double>(op.estimated) / actual - 1.0));
      }
      auto* pool = mode == 0 ? &errors_syn : &errors_flat;
      pool->insert(pool->end(), cell.errors.begin(), cell.errors.end());
    }
    if (cells[0].deweys != cells[1].deweys) {
      synopsis_identical = false;
      fprintf(stderr, "RESULT MISMATCH: synopsis on/off disagree on %s\n",
              q.xpath.c_str());
    }
    // Schedule-choice self-check: better estimates must not steer the
    // selectivity schedule into touching more pages (small absolute
    // slack for tie-break churn on tiny plans).
    if (cells[0].pages_scanned > cells[1].pages_scanned + 2) {
      schedule_never_worse = false;
      fprintf(stderr,
              "SCHEDULE REGRESSION: %s scans %llu pages with the synopsis "
              "vs %llu without\n",
              q.id.c_str(),
              static_cast<unsigned long long>(cells[0].pages_scanned),
              static_cast<unsigned long long>(cells[1].pages_scanned));
    }
    printf("%-4s %12.3f %12.3f %10llu %10llu\n", q.id.c_str(),
           Median(cells[0].errors), Median(cells[1].errors),
           static_cast<unsigned long long>(cells[0].pages_scanned),
           static_cast<unsigned long long>(cells[1].pages_scanned));
    syn_grid.push_back(std::move(cells));
  }
  const double median_err_syn = Median(errors_syn);
  const double median_err_flat = Median(errors_flat);
  // The acceptance bar: the synopsis halves the median estimation error
  // on the bushy workload (in practice it collapses it to ~0).
  const bool error_collapses = median_err_syn <= 0.5 * median_err_flat;
  if (!error_collapses) {
    fprintf(stderr,
            "ESTIMATION ERROR NOT COLLAPSED: median %.3f with synopsis vs "
            "%.3f without\n",
            median_err_syn, median_err_flat);
  }

  // Impossible-path short circuit: a composition of tags that all exist
  // but never nest this way (markers are leaves, so nothing lives below
  // one).  With the synopsis the plan is EmptyResult and the run must
  // touch zero pages; without it the engine still answers [] the hard
  // way — and both must agree.
  std::string entry_tag = ds.entry_path;
  const size_t entry_slash = entry_tag.rfind('/');
  if (entry_slash != std::string::npos) {
    entry_tag = entry_tag.substr(entry_slash + 1);
  }
  const std::string impossible_query =
      "//" + ds.marker_gem + "//" + entry_tag;
  uint64_t impossible_pages = 0;
  bool impossible_proved = false;
  bool impossible_agrees = false;
  {
    QueryEngine engine(store->get());
    Status s = (*store)->DropCaches();
    if (!s.ok()) {
      fprintf(stderr, "drop caches failed: %s\n", s.ToString().c_str());
      return 1;
    }
    (*store)->tree()->ResetNavStats();
    QueryOptions qo;
    auto on = engine.Evaluate(impossible_query, qo);
    if (!on.ok()) {
      fprintf(stderr, "impossible query failed: %s\n",
              on.status().ToString().c_str());
      return 1;
    }
    impossible_pages = (*store)->tree()->nav_stats().pages_scanned;
    impossible_proved = engine.last_trace().empty_result;
    QueryOptions off;
    off.use_synopsis = false;
    auto flat = engine.Evaluate(impossible_query, off);
    impossible_agrees =
        flat.ok() && flat->empty() && on->empty();
  }
  const bool impossible_zero_pages =
      impossible_proved && impossible_pages == 0 && impossible_agrees;
  printf("impossible path %s: %s, %llu pages\n", impossible_query.c_str(),
         impossible_proved ? "proved empty" : "NOT PROVED",
         static_cast<unsigned long long>(impossible_pages));
  if (!impossible_zero_pages) {
    fprintf(stderr, "IMPOSSIBLE-PATH CHECK FAILED\n");
  }

  std::string json = "{\n";
  char buf[512];
  snprintf(buf, sizeof(buf),
           "  \"dataset\": \"%s\",\n  \"scale\": %.4f,\n"
           "  \"seed\": %llu,\n  \"page_size\": %u,\n  \"runs\": %d,\n"
           "  \"target_speedup\": %.2f,\n  \"tolerance\": %.2f,\n"
           "  \"measurements\": [\n",
           ds.name.c_str(), gen.scale,
           static_cast<unsigned long long>(gen.seed), page_size, runs,
           target, tolerance);
  json += buf;
  for (size_t q = 0; q < grid.size(); ++q) {
    for (size_t m = 0; m < grid[q].size(); ++m) {
      const Cell& c = grid[q][m];
      const double speedup =
          c.best_seconds > 0 ? grid[q][0].best_seconds / c.best_seconds
                             : 1.0;
      snprintf(
          buf, sizeof(buf),
          "    {\"query\": \"%s\", \"category\": \"%s\", "
          "\"mode\": \"%s\", \"cost_based\": %s, \"plan_cache\": %s, "
          "\"results\": %zu, \"best_seconds\": %.6f, "
          "\"mean_seconds\": %.6f, \"pages_scanned\": %llu, "
          "\"plan_cache_hits\": %llu, \"speedup_vs_fixed\": %.3f}%s\n",
          queries[q].id.c_str(), queries[q].category.c_str(),
          kModes[m].name, kModes[m].cost_based ? "true" : "false",
          kModes[m].cache ? "true" : "false", c.results, c.best_seconds,
          c.mean_seconds, static_cast<unsigned long long>(c.pages_scanned),
          static_cast<unsigned long long>(c.cache_hits), speedup,
          q + 1 == grid.size() && m + 1 == grid[q].size() ? "" : ",");
      json += buf;
    }
  }
  json += "  ],\n  \"synopsis\": {\n    \"queries\": [\n";
  for (size_t q = 0; q < syn_grid.size(); ++q) {
    snprintf(buf, sizeof(buf),
             "      {\"query\": \"%s\", \"median_abs_error_syn\": %.4f, "
             "\"median_abs_error_flat\": %.4f, \"pages_syn\": %llu, "
             "\"pages_flat\": %llu}%s\n",
             queries[q].id.c_str(), Median(syn_grid[q][0].errors),
             Median(syn_grid[q][1].errors),
             static_cast<unsigned long long>(syn_grid[q][0].pages_scanned),
             static_cast<unsigned long long>(syn_grid[q][1].pages_scanned),
             q + 1 == syn_grid.size() ? "" : ",");
    json += buf;
  }
  snprintf(buf, sizeof(buf),
           "    ],\n    \"median_abs_error_syn\": %.4f,\n"
           "    \"median_abs_error_flat\": %.4f,\n"
           "    \"impossible_query\": \"%s\",\n"
           "    \"impossible_pages\": %llu\n  },\n",
           median_err_syn, median_err_flat, impossible_query.c_str(),
           static_cast<unsigned long long>(impossible_pages));
  json += buf;
  snprintf(buf, sizeof(buf),
           "  \"checks\": {\"results_identical\": %s, "
           "\"never_slower\": %s, \"speedup_target_met\": %s, "
           "\"max_speedup\": %.3f, \"synopsis_identical\": %s, "
           "\"synopsis_error_collapses\": %s, "
           "\"synopsis_schedule_never_worse\": %s, "
           "\"impossible_zero_pages\": %s}\n}\n",
           identical ? "true" : "false", never_slower ? "true" : "false",
           target_met ? "true" : "false", max_speedup,
           synopsis_identical ? "true" : "false",
           error_collapses ? "true" : "false",
           schedule_never_worse ? "true" : "false",
           impossible_zero_pages ? "true" : "false");
  json += buf;

  Status s = WriteStringToFile(json_path, Slice(json));
  if (!s.ok()) {
    fprintf(stderr, "write %s failed: %s\n", json_path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  const bool ok = identical && never_slower && target_met &&
                  synopsis_identical && error_collapses &&
                  schedule_never_worse && impossible_zero_pages;
  printf("\nbest speedup %.2fx; report: %s (%s)\n", max_speedup,
         json_path.c_str(), ok ? "checks passed" : "CHECKS FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
