// Page-skip ablation: measures how much of a forced sequential scan the
// (st,lo,hi) header skip and the per-page tag summaries each avoid, over
// tags of decreasing frequency (the dataset's always-present detail tag
// down to the rarest planted marker).
//
// The four modes are the {use_header_skip} x {use_tag_summaries} cross
// product; every query runs with StartStrategy::kScan so the scan path is
// exercised even where planning would pick an index.  Results must be
// identical across modes (the knobs only change which pages are touched);
// the run fails if they differ or if the tag summaries fail to skip any
// page for the rarest marker.
//
// Usage: bench_pageskip [--dataset catalog] [--scale 0.05] [--seed 42]
//                       [--page-size 512] [--runs 3]
//                       [--json BENCH_pageskip.json]

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "encoding/document_store.h"
#include "nok/query_engine.h"
#include "storage/file.h"

namespace nok {
namespace {

struct Mode {
  bool header_skip;
  bool tag_summaries;
  const char* name;
};

constexpr Mode kModes[] = {
    {false, false, "none"},
    {true, false, "header"},
    {false, true, "tag"},
    {true, true, "header+tag"},
};

/// One (mode, tag) measurement.
struct Cell {
  std::string tag;
  uint64_t tag_count = 0;
  size_t results = 0;
  double mean_seconds = 0;
  StringStore::NavStats nav;
  std::vector<std::string> deweys;  ///< For the cross-mode identity check.
};

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.05);
  gen.seed = static_cast<uint64_t>(bench::FlagInt(argc, argv, "seed", 42));
  const std::string dataset_name =
      bench::FlagValue(argc, argv, "dataset", "catalog");
  const uint32_t page_size = static_cast<uint32_t>(
      bench::FlagInt(argc, argv, "page-size", 512));
  const int runs = bench::FlagInt(argc, argv, "runs", 3);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_pageskip.json");

  Dataset dataset = Dataset::kCatalog;
  bool found = false;
  for (Dataset d : AllDatasets()) {
    if (DatasetName(d) == dataset_name) {
      dataset = d;
      found = true;
    }
  }
  if (!found) {
    fprintf(stderr, "unknown dataset: %s\n", dataset_name.c_str());
    return 2;
  }

  GeneratedDataset ds = GenerateDataset(dataset, gen);
  // Frequency sweep: the always-present detail tag, then the marker chain
  // extra > rare > gem (each strictly rarer than the previous).
  const std::vector<std::string> sweep = {ds.detail_a, ds.marker_extra,
                                          ds.marker_rare, ds.marker_gem};

  printf("page-skip ablation: %s (scale %.3f, page size %u, %d runs)\n\n",
         ds.name.c_str(), gen.scale, page_size, runs);
  printf("%-11s %-10s %9s %8s %9s %9s %9s %9s\n", "mode", "tag", "count",
         "results", "scanned", "lvl-skip", "tag-skip", "mean ms");

  std::vector<std::vector<Cell>> grid;  // [mode][tag].
  uint64_t node_count = 0;
  size_t chain_pages = 0;
  for (const Mode& mode : kModes) {
    DocumentStore::Options options;
    options.page_size = page_size;
    options.use_header_skip = mode.header_skip;
    options.use_tag_summaries = mode.tag_summaries;
    auto store = DocumentStore::Build(ds.xml, options);
    if (!store.ok()) {
      fprintf(stderr, "build failed: %s\n",
              store.status().ToString().c_str());
      return 1;
    }
    node_count = (*store)->stats().node_count;
    chain_pages = (*store)->tree()->chain_length();

    std::vector<Cell> row;
    for (const std::string& tag : sweep) {
      Cell cell;
      cell.tag = tag;
      auto tag_id = (*store)->tags()->Lookup(tag);
      cell.tag_count = tag_id.has_value() ? (*store)->CountTag(*tag_id) : 0;

      QueryEngine engine(store->get());
      QueryOptions qo;
      qo.strategy = StartStrategy::kScan;
      const std::string xpath = "//" + tag;
      double total_seconds = 0;
      for (int r = 0; r < runs; ++r) {
        Status s = (*store)->DropCaches();
        if (!s.ok()) {
          fprintf(stderr, "drop caches failed: %s\n", s.ToString().c_str());
          return 1;
        }
        (*store)->tree()->ResetNavStats();
        Timer timer;
        auto result = engine.Evaluate(xpath, qo);
        total_seconds += timer.ElapsedSeconds();
        if (!result.ok()) {
          fprintf(stderr, "%s failed: %s\n", xpath.c_str(),
                  result.status().ToString().c_str());
          return 1;
        }
        if (r + 1 == runs) {  // Counters are identical run to run.
          cell.results = result->size();
          cell.nav = (*store)->tree()->nav_stats();
          cell.deweys.reserve(result->size());
          for (const DeweyId& id : *result) {
            cell.deweys.push_back(id.ToString());
          }
        }
      }
      cell.mean_seconds = total_seconds / runs;
      printf("%-11s %-10s %9llu %8zu %9llu %9llu %9llu %9.3f\n", mode.name,
             tag.c_str(), static_cast<unsigned long long>(cell.tag_count),
             cell.results,
             static_cast<unsigned long long>(cell.nav.pages_scanned),
             static_cast<unsigned long long>(cell.nav.pages_skipped),
             static_cast<unsigned long long>(cell.nav.pages_skipped_by_tag),
             cell.mean_seconds * 1e3);
      row.push_back(std::move(cell));
    }
    grid.push_back(std::move(row));
  }

  // Check 1: the knobs must not change answers.
  bool identical = true;
  for (size_t m = 1; m < grid.size(); ++m) {
    for (size_t q = 0; q < grid[m].size(); ++q) {
      if (grid[m][q].deweys != grid[0][q].deweys) {
        identical = false;
        fprintf(stderr,
                "RESULT MISMATCH: mode %s disagrees with mode %s on //%s\n",
                kModes[m].name, kModes[0].name, grid[m][q].tag.c_str());
      }
    }
  }
  // Check 2: for the rarest marker, the tag summaries must skip pages the
  // header skip alone cannot (the whole point of the extension).
  const size_t rarest = sweep.size() - 1;
  const uint64_t tag_on =
      grid[3][rarest].nav.pages_skipped_by_tag;      // header+tag.
  const uint64_t tag_off =
      grid[1][rarest].nav.pages_skipped_by_tag;      // header only: 0.
  const bool effective = tag_on > tag_off;
  if (!effective) {
    fprintf(stderr,
            "TAG SKIP INEFFECTIVE: //%s skipped %llu pages by tag with "
            "summaries on vs %llu with summaries off\n",
            sweep[rarest].c_str(), static_cast<unsigned long long>(tag_on),
            static_cast<unsigned long long>(tag_off));
  }

  std::string json = "{\n";
  char buf[512];
  snprintf(buf, sizeof(buf),
           "  \"dataset\": \"%s\",\n  \"scale\": %.4f,\n"
           "  \"seed\": %llu,\n  \"page_size\": %u,\n  \"runs\": %d,\n"
           "  \"node_count\": %llu,\n  \"chain_pages\": %zu,\n"
           "  \"measurements\": [\n",
           ds.name.c_str(), gen.scale,
           static_cast<unsigned long long>(gen.seed), page_size, runs,
           static_cast<unsigned long long>(node_count), chain_pages);
  json += buf;
  for (size_t m = 0; m < grid.size(); ++m) {
    for (size_t q = 0; q < grid[m].size(); ++q) {
      const Cell& c = grid[m][q];
      snprintf(
          buf, sizeof(buf),
          "    {\"mode\": \"%s\", \"header_skip\": %s, "
          "\"tag_summaries\": %s, \"tag\": \"%s\", \"tag_count\": %llu, "
          "\"results\": %zu, \"mean_seconds\": %.6f, "
          "\"pages_scanned\": %llu, \"pages_skipped\": %llu, "
          "\"pages_skipped_by_tag\": %llu, \"decode_cache_hits\": %llu}%s\n",
          kModes[m].name, kModes[m].header_skip ? "true" : "false",
          kModes[m].tag_summaries ? "true" : "false", c.tag.c_str(),
          static_cast<unsigned long long>(c.tag_count), c.results,
          c.mean_seconds,
          static_cast<unsigned long long>(c.nav.pages_scanned),
          static_cast<unsigned long long>(c.nav.pages_skipped),
          static_cast<unsigned long long>(c.nav.pages_skipped_by_tag),
          static_cast<unsigned long long>(c.nav.decode_cache_hits),
          m + 1 == grid.size() && q + 1 == grid[m].size() ? "" : ",");
      json += buf;
    }
  }
  snprintf(buf, sizeof(buf),
           "  ],\n  \"checks\": {\"results_identical\": %s, "
           "\"tag_skip_effective\": %s}\n}\n",
           identical ? "true" : "false", effective ? "true" : "false");
  json += buf;

  Status s = WriteStringToFile(json_path, Slice(json));
  if (!s.ok()) {
    fprintf(stderr, "write %s failed: %s\n", json_path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  printf("\nreport: %s (%s)\n", json_path.c_str(),
         identical && effective ? "checks passed" : "CHECKS FAILED");
  return identical && effective ? 0 : 1;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
