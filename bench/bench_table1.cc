// Reproduces Table 1 of the paper: per-dataset statistics of the source
// document and of the physical stores (|tree|, |B+t|, |B+v|, |B+i|).
// Also checks the Section 4.2 claim that the tree string is 1/20 - 1/100
// of the document size.
//
// Usage: bench_table1 [--scale 0.1] [--seed 42]
// scale 1.0 approximates the paper's document sizes (minutes of build
// time); the default keeps the whole bench suite fast.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_gen.h"
#include "encoding/document_store.h"

namespace nok {
namespace {

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.1);
  gen.seed = static_cast<uint64_t>(bench::FlagInt(argc, argv, "seed", 42));

  printf("Table 1 reproduction (scale %.3f; paper = scale 1.0)\n\n",
         gen.scale);
  printf("%-9s %10s %9s %6s %4s %5s %10s %10s %10s %10s %7s\n",
         "data set", "size", "#nodes", "avg.d", "max", "tags", "|tree|",
         "|B+t|", "|B+v|", "|B+i|", "xml/tree");

  for (Dataset dataset : AllDatasets()) {
    GeneratedDataset ds = GenerateDataset(dataset, gen);
    auto store = DocumentStore::Build(ds.xml, DocumentStore::Options());
    if (!store.ok()) {
      fprintf(stderr, "build %s failed: %s\n", ds.name.c_str(),
              store.status().ToString().c_str());
      return 1;
    }
    const DocumentStoreStats& s = (*store)->stats();
    printf("%-9s %10s %9llu %6.1f %4d %5llu %10s %10s %10s %10s %6.0fx\n",
           ds.name.c_str(), bench::Mb(s.xml_bytes).c_str(),
           static_cast<unsigned long long>(s.node_count), s.avg_depth,
           s.max_depth, static_cast<unsigned long long>(s.distinct_tags),
           bench::Mb(s.tree_bytes).c_str(),
           bench::Mb(s.tag_index_bytes).c_str(),
           bench::Mb(s.value_index_bytes).c_str(),
           bench::Mb(s.id_index_bytes).c_str(),
           static_cast<double>(s.xml_bytes) /
               static_cast<double>(s.tree_bytes));
  }
  printf(
      "\npaper reference (scale 1.0):\n"
      "  author    1.2MB  15,006 nodes  depth 3/3   8 tags   |tree| .035MB\n"
      "  address    17MB  403,201       depth 3/3   7 tags   |tree| 0.5MB\n"
      "  catalog    30MB  620,604       depth 5/8  51 tags   |tree| 1.2MB\n"
      "  treebank   82MB  2,437,666     depth 8/36 250 tags  |tree| 5.3MB\n"
      "  dblp      133MB  3,332,130     depth 3/6  35 tags   |tree| 8MB\n"
      "expected shape: |tree| is 1/20-1/100 of the document; each B+ tree\n"
      "is of the same order as the document.\n");
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
