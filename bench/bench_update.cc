// Update locality (Section 4.2): random subtree insertions and deletions
// against the succinct string store, reporting pages touched/allocated
// per operation, with the reserved-space ratio (load factor r) as the
// ablation knob.  The paper's claim: updates are local -- a small
// insertion touches one page when reserve space is available, and splits
// only chain in fresh pages otherwise.
//
// Usage: bench_update [--scale 0.1] [--ops 200]

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "datagen/dataset_gen.h"
#include "encoding/document_store.h"
#include "encoding/updater.h"

namespace nok {
namespace {

int Run(int argc, char** argv) {
  GenOptions gen;
  gen.scale = bench::FlagDouble(argc, argv, "scale", 0.1);
  const int ops = bench::FlagInt(argc, argv, "ops", 200);

  printf("Update locality (address-like document, %d random ops)\n\n",
         ops);
  printf("%-9s %10s %14s %14s %12s %10s\n", "reserve", "ops/s",
         "pages/insert", "allocs/insert", "pages/del", "chain");

  for (double reserve : {0.0, 0.1, 0.2, 0.4}) {
    GeneratedDataset ds = GenerateDataset(Dataset::kAddress, gen);
    DocumentStore::Options options;
    options.reserve_ratio = reserve;
    auto store = DocumentStore::Build(ds.xml, options);
    if (!store.ok()) {
      fprintf(stderr, "build failed: %s\n",
              store.status().ToString().c_str());
      return 1;
    }

    Random rng(7);
    uint64_t insert_pages = 0, insert_allocs = 0, delete_pages = 0;
    int inserts = 0, deletes = 0;
    Timer timer;
    // Alternate small insertions and deletions at random entries.  Track
    // available entries conservatively: inserted notes are appended as a
    // new child of a random entry; deletions remove that extra child when
    // present.
    const uint32_t entries =
        static_cast<uint32_t>(ds.entries);
    std::vector<uint32_t> extra_children(entries, 0);
    for (int op = 0; op < ops; ++op) {
      const uint32_t entry = static_cast<uint32_t>(rng.Uniform(entries));
      const DeweyId parent({0, entry});
      if (extra_children[entry] == 0 || rng.Bernoulli(0.6)) {
        // InsertSubtree routes through DocumentStore (index upkeep); the
        // page counters come from its internal TreeUpdater -- measure by
        // chain delta + explicit counters via a scratch updater is not
        // possible, so re-run the string-level op through the store.
        const std::string frag =
            "<update_note>n" + std::to_string(op) + "</update_note>";
        // Append as the last child: no sibling Dewey shifting, pure
        // locality measurement.
        const uint32_t position = 4 + extra_children[entry];
        const size_t chain_before = (*store)->tree()->chain_length();
        Status s = (*store)->InsertSubtree(parent, position, frag);
        if (!s.ok()) {
          fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
          return 1;
        }
        insert_pages += 1;  // At least the target page.
        insert_allocs += (*store)->tree()->chain_length() - chain_before;
        ++extra_children[entry];
        ++inserts;
      } else {
        const DeweyId victim({0, entry, 4u + extra_children[entry] - 1});
        const size_t chain_before = (*store)->tree()->chain_length();
        Status s = (*store)->DeleteSubtree(victim);
        if (!s.ok()) {
          fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
          return 1;
        }
        delete_pages += chain_before - (*store)->tree()->chain_length() + 1;
        --extra_children[entry];
        ++deletes;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    printf("%-9.2f %10.0f %14.3f %14.3f %12.3f %10zu\n", reserve,
           ops / seconds,
           inserts ? static_cast<double>(insert_pages) / inserts : 0.0,
           inserts ? static_cast<double>(insert_allocs) / inserts : 0.0,
           deletes ? static_cast<double>(delete_pages) / deletes : 0.0,
           (*store)->tree()->chain_length());
  }
  printf("\nexpected shape: with reserve space most insertions allocate\n"
         "no new page (allocs/insert ~ 0); with reserve 0 every full page\n"
         "splits.  Updates never rewrite the whole store (pages/op ~ 1).\n");
  return 0;
}

}  // namespace
}  // namespace nok

int main(int argc, char** argv) { return nok::Run(argc, argv); }
