#!/usr/bin/env bash
# Full merge gate: every check CI runs, runnable locally with one command.
#
#   ci/run_checks.sh            # run everything
#   ci/run_checks.sh lint       # just nok_lint (+ selftest)
#   ci/run_checks.sh release    # Release build + ctest
#   ci/run_checks.sh sanitize   # ASan/UBSan build + ctest
#   ci/run_checks.sh tsan       # TSan build + concurrency/differential
#   ci/run_checks.sh werror     # strict-warning build (NOK_WERROR=ON)
#
# Build trees live under build-ci/ so they never collide with a local
# build/ directory.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
JOBS=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

run_lint() {
  step "nok_lint selftest"
  python3 tools/lint/nok_lint.py --selftest
  step "nok_lint (format findings fatal in CI)"
  python3 tools/lint/nok_lint.py --root "$ROOT" --format-check --format-fatal
}

run_release() {
  step "Release build + ctest"
  cmake -S . -B build-ci/release -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci/release -j "$JOBS"
  ctest --test-dir build-ci/release --output-on-failure -j "$JOBS"
}

run_sanitize() {
  step "ASan/UBSan build + ctest"
  cmake -S . -B build-ci/sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOK_SANITIZE=address,undefined
  cmake --build build-ci/sanitize -j "$JOBS"
  ctest --test-dir build-ci/sanitize --output-on-failure -j "$JOBS"
}

run_tsan() {
  step "TSan build + concurrency/differential suites"
  # TSan is incompatible with ASan, so it gets its own tree; the race-
  # sensitive suites are the concurrent read path and the differential
  # harness that drives the same engines single-threaded.
  cmake -S . -B build-ci/tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOK_SANITIZE=thread
  cmake --build build-ci/tsan -j "$JOBS"
  ctest --test-dir build-ci/tsan --output-on-failure -j "$JOBS" \
        -R "concurrency_test|differential_test"
}

run_werror() {
  step "Strict-warning build (NOK_WERROR=ON)"
  cmake -S . -B build-ci/werror -DCMAKE_BUILD_TYPE=Release -DNOK_WERROR=ON
  cmake --build build-ci/werror -j "$JOBS"
  # Clang sees a different warning set than GCC; run it too when present.
  if command -v clang++ >/dev/null 2>&1; then
    step "Strict-warning build (clang++)"
    cmake -S . -B build-ci/werror-clang -DCMAKE_BUILD_TYPE=Release \
          -DNOK_WERROR=ON -DCMAKE_CXX_COMPILER=clang++
    cmake --build build-ci/werror-clang -j "$JOBS"
  else
    echo "clang++ not found; skipping the Clang strict-warning build"
  fi
}

case "${1:-all}" in
  lint)     run_lint ;;
  release)  run_release ;;
  sanitize) run_sanitize ;;
  tsan)     run_tsan ;;
  werror)   run_werror ;;
  all)
    run_lint
    run_release
    run_sanitize
    run_tsan
    run_werror
    step "all checks passed"
    ;;
  *)
    echo "unknown check: $1" \
         "(expected lint|release|sanitize|tsan|werror|all)" >&2
    exit 2
    ;;
esac
