#!/usr/bin/env bash
# Full merge gate: every check CI runs, runnable locally with one command.
#
#   ci/run_checks.sh            # run everything
#   ci/run_checks.sh lint       # just nok_lint (+ selftest)
#   ci/run_checks.sh release    # Release build + ctest
#   ci/run_checks.sh sanitize   # ASan/UBSan build + ctest
#   ci/run_checks.sh tsan       # TSan build + concurrency/differential/
#                               # snapshot-isolation suites
#   ci/run_checks.sh crash-recovery # WAL kill-point sweep under ASan:
#                               # crash at every write/fsync, reopen,
#                               # expect replay or clean restore
#   ci/run_checks.sh werror     # strict-warning build (NOK_WERROR=ON)
#   ci/run_checks.sh thread-safety # clang -Werror=thread-safety build of
#                               # the whole tree + negative-compile of
#                               # the committed broken fixture
#   ci/run_checks.sh bench-smoke # page-skip ablation bench on a tiny
#                                # dataset + JSON report validation
#   ci/run_checks.sh fuzz-smoke  # seeded differential fuzzer under ASan:
#                                # 500 iterations across all engines x
#                                # planner strategies + corpus replay +
#                                # the broken-engine tooth check
#
# Build trees live under build-ci/ so they never collide with a local
# build/ directory.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
JOBS=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

run_lint() {
  step "nok_lint selftest"
  python3 tools/lint/nok_lint.py --selftest
  step "nok_lint (format findings fatal in CI)"
  python3 tools/lint/nok_lint.py --root "$ROOT" --format-check --format-fatal
}

run_release() {
  step "Release build + ctest"
  cmake -S . -B build-ci/release -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci/release -j "$JOBS"
  ctest --test-dir build-ci/release --output-on-failure -j "$JOBS"
}

run_sanitize() {
  step "ASan/UBSan build + ctest"
  cmake -S . -B build-ci/sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOK_SANITIZE=address,undefined
  cmake --build build-ci/sanitize -j "$JOBS"
  ctest --test-dir build-ci/sanitize --output-on-failure -j "$JOBS"
}

run_tsan() {
  step "TSan build + concurrency/differential suites"
  # TSan is incompatible with ASan, so it gets its own tree; the race-
  # sensitive suites are the concurrent read path and the differential
  # harness that drives the same engines single-threaded.
  cmake -S . -B build-ci/tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOK_SANITIZE=thread
  cmake --build build-ci/tsan -j "$JOBS"
  ctest --test-dir build-ci/tsan --output-on-failure -j "$JOBS" \
        -R "concurrency_test|differential_test|snapshot_isolation_test"
}

run_crash_recovery() {
  step "WAL kill-point sweep (ASan/UBSan build)"
  # Crash (via fault injection) at every file op and every fsync of a
  # WAL-backed update, including partial-writeback crashes that drop a
  # random subset of unsynced writes; every reopen must either replay
  # the committed txn or restore the pre-update state -- zero Corruption
  # aborts, verified against a never-crashed oracle.
  cmake -S . -B build-ci/sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOK_SANITIZE=address,undefined
  cmake --build build-ci/sanitize -j "$JOBS" \
        --target fault_injection_test wal_test
  build-ci/sanitize/tests/fault_injection_test \
      --gtest_filter='WalKillPointSweep.*'
  build-ci/sanitize/tests/wal_test
}

run_werror() {
  step "Strict-warning build (NOK_WERROR=ON)"
  cmake -S . -B build-ci/werror -DCMAKE_BUILD_TYPE=Release -DNOK_WERROR=ON
  cmake --build build-ci/werror -j "$JOBS"
  # Clang sees a different warning set than GCC; run it too when present.
  if command -v clang++ >/dev/null 2>&1; then
    step "Strict-warning build (clang++)"
    cmake -S . -B build-ci/werror-clang -DCMAKE_BUILD_TYPE=Release \
          -DNOK_WERROR=ON -DCMAKE_CXX_COMPILER=clang++
    cmake --build build-ci/werror-clang -j "$JOBS"
  else
    echo "clang++ not found; skipping the Clang strict-warning build"
  fi
}

run_thread_safety() {
  step "Thread-safety gate (clang -Werror=thread-safety)"
  # Clang-only: GCC parses the annotations as no-op macros, so a GCC
  # "pass" would prove nothing.  The CMake mode itself re-verifies the
  # gate has teeth by negative-compiling the committed broken fixture
  # (tests/fixtures/thread_safety_broken.cc); see DESIGN.md section 12.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not found; skipping the thread-safety gate" \
         "(CI runs it; locally: install clang, then re-run)"
    return 0
  fi
  cmake -S . -B build-ci/thread-safety -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER=clang++ -DNOK_THREAD_SAFETY=ON
  cmake --build build-ci/thread-safety -j "$JOBS"

  step "Thread-safety fixture negative-compile (direct clang++)"
  # Belt and braces beyond the CMake try_compile: invoke clang++ directly
  # on the broken fixture and demand both a failure and a thread-safety
  # diagnostic, so the gate cannot silently rot into a no-op.
  local log=build-ci/thread-safety/fixture_negative_compile.log
  if clang++ -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
       -fsyntax-only tests/fixtures/thread_safety_broken.cc \
       >"$log" 2>&1; then
    echo "FAIL: the broken fixture compiled under -Werror=thread-safety" >&2
    exit 1
  fi
  if ! grep -Eq 'thread-safety|thread safety' "$log"; then
    echo "FAIL: fixture rejected for the wrong reason:" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "broken fixture rejected with a thread-safety diagnostic, as intended"
}

run_bench_smoke() {
  step "Page-skip ablation bench (tiny dataset)"
  cmake -S . -B build-ci/bench -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci/bench -j "$JOBS" --target bench_pageskip
  # The bench itself fails if any ablation mode disagrees on results or
  # if the tag summaries skip nothing for the rarest marker tag.
  build-ci/bench/bench/bench_pageskip --scale 0.02 --runs 2 \
      --json build-ci/bench/BENCH_pageskip.json

  step "BENCH_pageskip.json schema check"
  python3 - build-ci/bench/BENCH_pageskip.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("dataset", "scale", "seed", "page_size", "runs",
            "node_count", "chain_pages", "measurements", "checks"):
    assert key in report, f"missing key: {key}"
assert report["measurements"], "no measurements"
for m in report["measurements"]:
    for key in ("mode", "header_skip", "tag_summaries", "tag",
                "tag_count", "results", "mean_seconds", "pages_scanned",
                "pages_skipped", "pages_skipped_by_tag",
                "decode_cache_hits"):
        assert key in m, f"measurement missing key: {key}"
    if not m["header_skip"]:
        assert m["pages_skipped"] == 0, f"skip counter without knob: {m}"
    if not m["tag_summaries"]:
        assert m["pages_skipped_by_tag"] == 0, \
            f"tag-skip counter without knob: {m}"
assert report["checks"]["results_identical"] is True
assert report["checks"]["tag_skip_effective"] is True
print("BENCH_pageskip.json: schema ok,",
      len(report["measurements"]), "measurements")
EOF

  step "Planner ablation bench (tiny dataset)"
  cmake --build build-ci/bench -j "$JOBS" --target bench_planner
  # The bench itself fails if any mode disagrees on results, if the
  # cost-based order regresses any query, or if no branchy query reaches
  # the target speedup.  The tiny smoke run keeps the result-identity
  # check but relaxes the timing assertions (noise dominates at this
  # scale; EXPERIMENTS.md records the full-size run).
  build-ci/bench/bench/bench_planner --scale 0.02 --runs 2 \
      --target-speedup 1.0 --tolerance 2.0 \
      --json build-ci/bench/BENCH_planner.json

  step "BENCH_planner.json schema check"
  python3 - build-ci/bench/BENCH_planner.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("dataset", "scale", "seed", "page_size", "runs",
            "target_speedup", "tolerance", "measurements", "synopsis",
            "checks"):
    assert key in report, f"missing key: {key}"
assert report["measurements"], "no measurements"
modes = set()
for m in report["measurements"]:
    for key in ("query", "category", "mode", "cost_based", "plan_cache",
                "results", "best_seconds", "mean_seconds",
                "pages_scanned", "plan_cache_hits", "speedup_vs_fixed"):
        assert key in m, f"measurement missing key: {key}"
    modes.add(m["mode"])
    if not m["plan_cache"]:
        assert m["plan_cache_hits"] == 0, f"cache hits without cache: {m}"
assert modes == {"fixed", "cost", "cost+cache"}, f"bad mode set: {modes}"
syn = report["synopsis"]
for key in ("queries", "median_abs_error_syn", "median_abs_error_flat",
            "impossible_query", "impossible_pages"):
    assert key in syn, f"synopsis missing key: {key}"
assert syn["queries"], "no synopsis measurements"
for q in syn["queries"]:
    for key in ("query", "median_abs_error_syn", "median_abs_error_flat",
                "pages_syn", "pages_flat"):
        assert key in q, f"synopsis query missing key: {key}"
assert syn["impossible_pages"] == 0, "impossible path read pages"
checks = report["checks"]
assert checks["results_identical"] is True
for key in ("synopsis_identical", "synopsis_error_collapses",
            "synopsis_schedule_never_worse", "impossible_zero_pages"):
    assert checks[key] is True, f"check failed: {key}"
print("BENCH_planner.json: schema ok,",
      len(report["measurements"]), "measurements,",
      len(syn["queries"]), "synopsis cells")
EOF

  step "BP navigation-tier ablation bench (tiny dataset)"
  cmake --build build-ci/bench -j "$JOBS" --target bench_bp
  # The bench itself fails if any navigation tier disagrees on results,
  # if bp mode touches any subject-tree page, or if bp misses the 5x
  # wall-time target on every navigation-bound cell.
  build-ci/bench/bench/bench_bp --scale 0.02 --runs 2 \
      --json build-ci/bench/BENCH_bp.json

  step "BENCH_bp.json schema check"
  python3 - build-ci/bench/BENCH_bp.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

for key in ("datasets", "scale", "seed", "page_size", "runs",
            "target_speedup", "best_speedup", "measurements", "checks"):
    assert key in report, f"missing key: {key}"
assert report["measurements"], "no measurements"
modes = set()
for m in report["measurements"]:
    for key in ("dataset", "mode", "nav_mode", "tag", "tag_count",
                "results", "best_seconds", "mean_seconds",
                "pages_scanned", "pages_skipped_by_tag", "bp_steps",
                "bp_tag_blocks_skipped", "speedup_vs_paged"):
        assert key in m, f"measurement missing key: {key}"
    modes.add(m["mode"])
    if m["nav_mode"] == "bp":
        assert m["pages_scanned"] == 0, f"bp touched pages: {m}"
        assert m["bp_steps"] > 0, f"bp took no steps: {m}"
    else:
        assert m["bp_steps"] == 0, f"bp steps without bp mode: {m}"
assert modes == {"paged", "fused", "bp"}, f"bad mode set: {modes}"
assert report["checks"]["results_identical"] is True
assert report["checks"]["bp_zero_pages"] is True
assert report["checks"]["bp_speedup_achieved"] is True
print("BENCH_bp.json: schema ok,",
      len(report["measurements"]), "measurements,",
      f"best speedup {report['best_speedup']:.2f}x")
EOF
}

run_fuzz_smoke() {
  step "Differential fuzzer (ASan/UBSan build, fixed seeds)"
  # Fixed seeds keep the run reproducible: a CI failure replays locally
  # with the same NOK_FUZZ_SEED.  The test itself shrinks any mismatch
  # and writes a self-contained .repro next to the binary.
  cmake -S . -B build-ci/sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNOK_SANITIZE=address,undefined
  cmake --build build-ci/sanitize -j "$JOBS" \
        --target fuzz_differential_test
  # 500 seeded iterations, the committed-corpus replay, and the
  # broken-engine tooth check all live in one gtest binary.
  NOK_FUZZ_ITERATIONS=500 NOK_FUZZ_SEED=1 \
      build-ci/sanitize/tests/fuzz_differential_test
}

case "${1:-all}" in
  lint)           run_lint ;;
  release)        run_release ;;
  sanitize)       run_sanitize ;;
  tsan)           run_tsan ;;
  crash-recovery) run_crash_recovery ;;
  werror)         run_werror ;;
  thread-safety)  run_thread_safety ;;
  bench-smoke)    run_bench_smoke ;;
  fuzz-smoke)     run_fuzz_smoke ;;
  all)
    run_lint
    run_release
    run_sanitize
    run_tsan
    run_crash_recovery
    run_werror
    run_thread_safety
    run_bench_smoke
    run_fuzz_smoke
    step "all checks passed"
    ;;
  *)
    echo "unknown check: $1" \
         "(expected lint|release|sanitize|tsan|crash-recovery|werror|" \
         "thread-safety|bench-smoke|fuzz-smoke|all)" >&2
    exit 2
    ;;
esac
