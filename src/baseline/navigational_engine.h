// Navigational baseline over an indexed native tree store — the stand-in
// for X-Hive/DB (closed source) in the Table 3 comparison.
//
// Architecture of the class the paper compares against: a native tree
// store (here an in-memory DOM), tag and value indexes, and navigational
// evaluation.  The engine anchors the query at its most selective
// constraint (value-equality first, then rarest tag — the same index
// surface the paper gave X-Hive), verifies the ancestor path of each
// anchor candidate with a small alignment DP, existentially checks
// predicate branches by recursive descent, and collects the returning
// node's matches by navigating the remaining path.

#ifndef NOKXML_BASELINE_NAVIGATIONAL_ENGINE_H_
#define NOKXML_BASELINE_NAVIGATIONAL_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "nok/pattern_tree.h"
#include "xml/dom.h"

namespace nok {

/// Index-assisted navigational evaluator.
class NavigationalEngine {
 public:
  /// Work counters for one evaluation.
  struct Stats {
    uint64_t nodes_visited = 0;   ///< DOM nodes touched by navigation.
    uint64_t index_lookups = 0;
    uint64_t candidates = 0;      ///< Anchor candidates verified.
  };

  /// Builds the tag and value indexes over the tree (kept by pointer; the
  /// tree must outlive the engine).
  explicit NavigationalEngine(const DomTree* tree);

  /// Evaluates a pattern tree; returns returning-node matches in document
  /// order.
  Result<std::vector<const DomNode*>> Evaluate(const PatternTree& pattern);

  const Stats& last_stats() const { return stats_; }

 private:
  /// Existential check: does `node` match the pattern subtree rooted at
  /// `pattern` (tag, value, and all predicate branches), ignoring the
  /// child `exclude` (handled by the caller)?
  bool MatchDown(const PatternNode* pattern, const DomNode* node,
                 const PatternNode* exclude);

  /// All matches of the path pattern[step..] starting below `node`
  /// (pattern[step] related to node by its incoming axis), appended to
  /// *out.
  void CollectDown(const std::vector<const PatternNode*>& path, size_t step,
                   const DomNode* node, std::vector<const DomNode*>* out);

  /// Pure top-down evaluation along the returning path (used when the
  /// pattern contains following/preceding axes, which the anchor-path
  /// alignment cannot model).
  Result<std::vector<const DomNode*>> EvaluateTopDown(
      const PatternTree& pattern);

  /// Calls fn(descendant) for every proper descendant, short-circuiting
  /// when fn returns true; returns whether fn ever did.
  template <typename Fn>
  bool AnyDescendant(const DomNode* node, Fn&& fn);

  const DomTree* tree_;
  std::unordered_map<std::string, std::vector<const DomNode*>> by_tag_;
  std::unordered_map<std::string, std::vector<const DomNode*>> by_value_;
  std::vector<const DomNode*> doc_order_;  ///< For the following axis.
  Stats stats_;
  /// Memo for MatchDown: (pattern id, node) -> verdict.
  std::map<std::pair<int, const DomNode*>, bool> match_memo_;
};

}  // namespace nok

#endif  // NOKXML_BASELINE_NAVIGATIONAL_ENGINE_H_
