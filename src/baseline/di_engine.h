// DI baseline: merge-join evaluation over dynamic-interval encoding
// (DeHaan et al., SIGMOD 2003 — the paper's first comparison system).
//
// Characteristics reproduced from the paper's description (Section 6.2):
//   * no tag or value indexes — every step SCANS the full node table and
//     filters by tag (that is why DI is insensitive to selectivity);
//   * pipelined merge joins along single paths, but MATERIALIZED
//     intermediate results for every branching predicate (that is why DI
//     is topology sensitive: bushy queries pay per branch);
//   * equality-only value comparisons in the original prototype; richer
//     operators are implemented here, and the Table 3 harness marks the
//     paper's NI cells separately.

#ifndef NOKXML_BASELINE_DI_ENGINE_H_
#define NOKXML_BASELINE_DI_ENGINE_H_

#include <cstdint>
#include <vector>

#include "baseline/interval_encoding.h"
#include "common/result.h"
#include "nok/pattern_tree.h"

namespace nok {

/// Step-at-a-time interval-join evaluator.
class DiEngine {
 public:
  /// Work counters for one evaluation.
  struct Stats {
    uint64_t nodes_scanned = 0;       ///< Table rows touched by scans.
    uint64_t joins = 0;               ///< Structural merge joins executed.
    uint64_t tuples_materialized = 0; ///< Intermediate tuples stored.
  };

  explicit DiEngine(const IntervalDocument* doc) : doc_(doc) {}

  /// Evaluates a pattern tree; returns document-order node indexes
  /// matching the returning node.
  Result<std::vector<uint32_t>> Evaluate(const PatternTree& pattern);

  const Stats& last_stats() const { return stats_; }

 private:
  /// Full-table scan selecting nodes satisfying the pattern node's tag and
  /// value constraints (DI has no indexes).
  std::vector<uint32_t> Scan(const PatternNode& pattern);

  /// Structural merge join: returns the inners related to some outer.
  std::vector<uint32_t> JoinInners(const std::vector<uint32_t>& outers,
                                   const std::vector<uint32_t>& inners,
                                   Axis axis);

  /// Semi-join back to the outers: flags outers with a related inner.
  std::vector<char> FlagOuters(const std::vector<uint32_t>& outers,
                               const std::vector<uint32_t>& inners,
                               Axis axis);

  /// Evaluates the predicate subtree rooted at pattern against a context
  /// list; returns the context nodes that satisfy it (materializes every
  /// intermediate list).
  Result<std::vector<uint32_t>> FilterByPredicate(
      std::vector<uint32_t> context, const PatternNode& pattern);

  /// Matches of `pattern` given matches of its parent (applies nested
  /// predicates).
  Result<std::vector<uint32_t>> EvalNode(const std::vector<uint32_t>& context,
                                         const PatternNode& pattern,
                                         const PatternNode* skip_child);

  const IntervalDocument* doc_;
  Stats stats_;
};

}  // namespace nok

#endif  // NOKXML_BASELINE_DI_ENGINE_H_
