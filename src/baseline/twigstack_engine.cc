#include "baseline/twigstack_engine.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace nok {

namespace {

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

/// Flattened twig: pattern nodes in pre-order, minus the virtual root.
struct TwigNode {
  const PatternNode* pattern = nullptr;
  int parent = -1;               ///< Twig index of the parent (-1: root).
  std::vector<int> children;
  std::vector<uint32_t> stream;  ///< Filtered doc-order posting list.
  size_t cursor = 0;             ///< Stream head.
};

struct StackEntry {
  uint32_t node;
  int parent_pos;  ///< Index into the parent's stack at push time.
};

/// The whole evaluation state.
struct TwigState {
  const IntervalDocument* doc;
  std::vector<TwigNode> twig;
  std::vector<std::vector<StackEntry>> stacks;
  TwigStackEngine::Stats* stats;

  // Edge pair sets and per-node assignment sets for the merge phase.
  // Key: (parent subject node << 32) | child subject node.
  std::vector<std::unordered_set<uint64_t>> edge_pairs;  // By child index.
  std::vector<std::unordered_set<uint32_t>> assigned;    // By twig index.

  uint32_t HeadStart(int q) const {
    const TwigNode& t = twig[static_cast<size_t>(q)];
    return t.cursor < t.stream.size()
               ? doc->nodes()[t.stream[t.cursor]].start
               : kInf;
  }
  uint32_t HeadEnd(int q) const {
    const TwigNode& t = twig[static_cast<size_t>(q)];
    return t.cursor < t.stream.size()
               ? doc->nodes()[t.stream[t.cursor]].end
               : kInf;
  }
  bool Exhausted(int q) const {
    const TwigNode& t = twig[static_cast<size_t>(q)];
    return t.cursor >= t.stream.size();
  }
  void Advance(int q) {
    ++twig[static_cast<size_t>(q)].cursor;
    ++stats->stream_elements;
  }
};

/// Classic getNext: returns a twig node whose stream head is guaranteed to
/// either contribute to a solution or be safely skippable.
int GetNext(TwigState* s, int q) {
  TwigNode& t = s->twig[static_cast<size_t>(q)];
  if (t.children.empty()) return q;
  uint32_t min_start = kInf, max_start = 0;
  int nmin = -1;
  for (int child : t.children) {
    const int ni = GetNext(s, child);
    if (ni != child) return ni;
    const uint32_t ls = s->HeadStart(child);
    if (ls < min_start) {
      min_start = ls;
      nmin = child;
    }
    if (ls != kInf) max_start = std::max(max_start, ls);
  }
  if (nmin < 0) return q;  // All child streams exhausted.
  while (s->HeadEnd(q) < max_start) s->Advance(q);
  return s->HeadStart(q) < min_start ? q : nmin;
}

/// Pops stack entries that cannot be ancestors of anything at or after
/// `next_start`.
void CleanStack(TwigState* s, int q, uint32_t next_start) {
  auto& stack = s->stacks[static_cast<size_t>(q)];
  while (!stack.empty() &&
         s->doc->nodes()[stack.back().node].end < next_start) {
    stack.pop_back();
  }
}

/// Emits all root-to-leaf path solutions ending at `entry` of leaf q.
/// path accumulates (twig index, subject node) leaf-to-root; consecutive
/// entries are exactly the twig edges of this root-to-leaf path.
void EmitPaths(TwigState* s, int q, const StackEntry& entry,
               std::vector<std::pair<int, uint32_t>>* path) {
  path->emplace_back(q, entry.node);
  const int parent = s->twig[static_cast<size_t>(q)].parent;
  if (parent < 0) {
    // One complete path: post-filter '/' edges, then record edge pairs.
    ++s->stats->path_solutions;
    const auto& nodes = s->doc->nodes();
    bool valid = true;
    for (size_t i = 0; i + 1 < path->size(); ++i) {
      const auto [child_q, child_node] = (*path)[i];
      const auto [parent_q, parent_node] = (*path)[i + 1];
      (void)parent_q;
      if (s->twig[static_cast<size_t>(child_q)].pattern->incoming ==
              Axis::kChild &&
          nodes[child_node].level != nodes[parent_node].level + 1) {
        valid = false;  // Parent-child violated: drop the whole path.
        break;
      }
    }
    if (valid) {
      for (size_t i = 0; i < path->size(); ++i) {
        const auto [tq, tn] = (*path)[i];
        s->assigned[static_cast<size_t>(tq)].insert(tn);
        if (i + 1 < path->size()) {
          const auto [pq, pn] = (*path)[i + 1];
          (void)pq;
          s->edge_pairs[static_cast<size_t>(tq)].insert(
              (static_cast<uint64_t>(pn) << 32) | tn);
        }
      }
    }
    path->pop_back();
    return;
  }
  const auto& parent_stack = s->stacks[static_cast<size_t>(parent)];
  for (int pos = 0; pos <= entry.parent_pos; ++pos) {
    EmitPaths(s, parent, parent_stack[static_cast<size_t>(pos)], path);
  }
  path->pop_back();
}

/// Builds the twig from the pattern tree (rejecting unsupported axes).
Status Flatten(const PatternNode* pattern, int parent,
               std::vector<TwigNode>* twig) {
  if (!pattern->sibling_order.empty()) {
    return Status::NotSupported(
        "TwigStack baseline does not evaluate following-sibling "
        "constraints");
  }
  if (parent >= 0 && (pattern->incoming == Axis::kFollowing ||
                      pattern->incoming == Axis::kPreceding)) {
    return Status::NotSupported(
        "TwigStack baseline does not evaluate the following/preceding "
        "axes");
  }
  const int index = static_cast<int>(twig->size());
  twig->emplace_back();
  (*twig)[static_cast<size_t>(index)].pattern = pattern;
  (*twig)[static_cast<size_t>(index)].parent = parent;
  if (parent >= 0) {
    (*twig)[static_cast<size_t>(parent)].children.push_back(index);
  }
  for (const auto& child : pattern->children) {
    NOK_RETURN_IF_ERROR(Flatten(child.get(), index, twig));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<uint32_t>> TwigStackEngine::Evaluate(
    const PatternTree& pattern) {
  stats_ = Stats{};
  if (HasPositionalPredicate(pattern)) {
    return Status::NotSupported(
        "TwigStack baseline does not evaluate positional predicates");
  }
  if (pattern.root()->children.size() != 1) {
    return Status::NotSupported(
        "TwigStack baseline expects a single step below the document "
        "root");
  }
  const PatternNode* twig_root = pattern.root()->children[0].get();
  if (twig_root->incoming == Axis::kFollowing ||
      twig_root->incoming == Axis::kPreceding) {
    return std::vector<uint32_t>{};  // Nothing follows/precedes the root.
  }

  TwigState state;
  state.doc = doc_;
  state.stats = &stats_;
  NOK_RETURN_IF_ERROR(Flatten(twig_root, -1, &state.twig));
  const size_t m = state.twig.size();
  state.stacks.resize(m);
  state.edge_pairs.resize(m);
  state.assigned.resize(m);

  // Build the filtered streams.
  for (TwigNode& t : state.twig) {
    const PatternNode* p = t.pattern;
    std::vector<uint32_t> stream;
    if (p->predicate.op == ValueOp::kEq) {
      // Value-index assisted stream (the value B+ tree of Section 6.2).
      stream = doc_->NodesWithValue(p->predicate.operand);
      if (!p->wildcard) {
        auto tag = doc_->tags().Lookup(p->tag);
        if (!tag.has_value()) {
          stream.clear();
        } else {
          std::erase_if(stream, [&](uint32_t n) {
            return doc_->nodes()[n].tag != *tag;
          });
        }
      }
      std::sort(stream.begin(), stream.end());
    } else if (p->wildcard) {
      stream.resize(doc_->nodes().size());
      for (uint32_t i = 0; i < stream.size(); ++i) stream[i] = i;
    } else {
      auto tag = doc_->tags().Lookup(p->tag);
      if (tag.has_value()) stream = doc_->NodesWithTag(*tag);
    }
    if (p->predicate.active() && p->predicate.op != ValueOp::kEq) {
      std::erase_if(stream, [&](uint32_t n) {
        return doc_->nodes()[n].value_id < 0 ||
               !EvalValuePredicate(p->predicate, doc_->ValueOfNode(n));
      });
    }
    if (t.parent < 0 && p->incoming == Axis::kChild) {
      // Child of the document root: level must be 1.
      std::erase_if(stream, [&](uint32_t n) {
        return doc_->nodes()[n].level != 1;
      });
    }
    t.stream = std::move(stream);
  }

  // Main TwigStack loop.
  auto all_leaf_streams_done = [&]() {
    for (const TwigNode& t : state.twig) {
      if (t.children.empty() && t.cursor < t.stream.size()) return false;
    }
    return true;
  };

  std::vector<std::pair<int, uint32_t>> path;
  while (!all_leaf_streams_done()) {
    const int q = GetNext(&state, 0);
    if (state.Exhausted(q)) break;  // No further solutions possible.
    const TwigNode& t = state.twig[static_cast<size_t>(q)];
    if (t.parent >= 0) {
      CleanStack(&state, t.parent, state.HeadStart(q));
    }
    if (t.parent < 0 ||
        !state.stacks[static_cast<size_t>(t.parent)].empty()) {
      CleanStack(&state, q, state.HeadStart(q));
      const int parent_pos =
          t.parent < 0
              ? -1
              : static_cast<int>(
                    state.stacks[static_cast<size_t>(t.parent)].size()) -
                    1;
      state.stacks[static_cast<size_t>(q)].push_back(
          StackEntry{t.stream[t.cursor], parent_pos});
      ++stats_.stack_pushes;
      state.Advance(q);
      if (t.children.empty()) {
        EmitPaths(&state, q,
                  state.stacks[static_cast<size_t>(q)].back(), &path);
        state.stacks[static_cast<size_t>(q)].pop_back();
      }
    } else {
      state.Advance(q);
    }
  }

  // Acyclic semi-join reduction over the twig edges.
  // Bottom-up: drop parent assignments with no support in some child.
  for (size_t q = m; q-- > 0;) {
    for (int child : state.twig[q].children) {
      std::unordered_set<uint32_t> supported;
      for (uint64_t pair : state.edge_pairs[static_cast<size_t>(child)]) {
        const uint32_t parent_node = static_cast<uint32_t>(pair >> 32);
        const uint32_t child_node = static_cast<uint32_t>(pair);
        if (state.assigned[static_cast<size_t>(child)].count(child_node)) {
          supported.insert(parent_node);
        }
      }
      std::erase_if(state.assigned[q], [&](uint32_t n) {
        return supported.count(n) == 0;
      });
    }
  }
  // Top-down: keep child assignments reachable from surviving parents.
  for (size_t q = 1; q < m; ++q) {
    const int parent = state.twig[q].parent;
    std::unordered_set<uint32_t> reachable;
    for (uint64_t pair : state.edge_pairs[q]) {
      const uint32_t parent_node = static_cast<uint32_t>(pair >> 32);
      const uint32_t child_node = static_cast<uint32_t>(pair);
      if (state.assigned[static_cast<size_t>(parent)].count(parent_node)) {
        reachable.insert(child_node);
      }
    }
    std::erase_if(state.assigned[q], [&](uint32_t n) {
      return reachable.count(n) == 0;
    });
  }

  // Project the returning node.
  int returning_index = -1;
  for (size_t q = 0; q < m; ++q) {
    if (state.twig[q].pattern->is_returning) {
      returning_index = static_cast<int>(q);
      break;
    }
  }
  NOK_CHECK(returning_index >= 0);
  std::vector<uint32_t> out(
      state.assigned[static_cast<size_t>(returning_index)].begin(),
      state.assigned[static_cast<size_t>(returning_index)].end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nok
