// Interval ("containment") encoding of an XML document — the substrate of
// the DI and TwigStack baselines the paper compares against (Section 6).
//
// Every node gets (start, end, level): start/end from a pre/post-order
// counter so that descendant(a, b) iff a.start < b.start && b.end < a.end,
// the classic Zhang et al. / Al-Khalifa et al. scheme.  Nodes are kept in
// one document-order table plus per-tag posting lists (the "streams" of
// holistic twig joins) and a value -> nodes map standing in for the value
// B+ tree the paper built for TwigStack.

#ifndef NOKXML_BASELINE_INTERVAL_ENCODING_H_
#define NOKXML_BASELINE_INTERVAL_ENCODING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "encoding/tag_dictionary.h"

namespace nok {

/// One element (or attribute pseudo-element) in interval encoding.
struct IntervalNode {
  uint32_t start = 0;
  uint32_t end = 0;
  int32_t level = 0;     ///< Root = 1.
  TagId tag = kInvalidTag;
  int32_t value_id = -1; ///< Index into values(), or -1.
};

/// A parsed document in interval encoding.
class IntervalDocument {
 public:
  /// Parses xml into interval-encoded form (single SAX pass).
  static Result<IntervalDocument> Build(const std::string& xml);

  /// All nodes in document order (sorted by start).
  const std::vector<IntervalNode>& nodes() const { return nodes_; }

  /// Distinct node values.
  const std::vector<std::string>& values() const { return values_; }

  const TagDictionary& tags() const { return tags_; }

  /// Document-order indexes of the nodes with a given tag (a twig-join
  /// input stream).  Empty for unknown tags.
  const std::vector<uint32_t>& NodesWithTag(TagId tag) const;

  /// Document-order indexes of nodes whose value equals `value` (the
  /// value-index stand-in used by the TwigStack baseline).
  std::vector<uint32_t> NodesWithValue(const std::string& value) const;

  /// The value of node i ("" when it has none).
  const std::string& ValueOfNode(uint32_t node_index) const;

  /// True iff nodes()[ancestor] properly contains nodes()[descendant].
  bool Contains(uint32_t ancestor, uint32_t descendant) const {
    const IntervalNode& a = nodes_[ancestor];
    const IntervalNode& d = nodes_[descendant];
    return a.start < d.start && d.end < a.end;
  }

 private:
  std::vector<IntervalNode> nodes_;
  std::vector<std::string> values_;
  TagDictionary tags_;
  std::vector<std::vector<uint32_t>> by_tag_;  // by_tag_[tag - 1].
  std::unordered_map<std::string, std::vector<uint32_t>> by_value_;
  std::unordered_map<std::string, int32_t> value_ids_;
};

}  // namespace nok

#endif  // NOKXML_BASELINE_INTERVAL_ENCODING_H_
