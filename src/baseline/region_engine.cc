#include "baseline/region_engine.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace nok {

RegionEngine::RegionEngine(const IntervalDocument* doc) : doc_(doc) {
  // Derive the parent index with one stack pass over the label table:
  // labels arrive in pre order, and a node is the parent of everything
  // that opens before it closes.
  const std::vector<IntervalNode>& nodes = doc_->nodes();
  parents_.assign(nodes.size(), -1);
  children_.assign(nodes.size(), {});
  std::vector<uint32_t> stack;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    while (!stack.empty() && nodes[stack.back()].end < nodes[i].start) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      parents_[i] = static_cast<int32_t>(stack.back());
      children_[stack.back()].push_back(i);
    }
    stack.push_back(i);
  }
}

int RegionEngine::SiblingPosition(uint32_t x, const PatternNode& pattern) {
  const int32_t parent = parents_[x];
  if (parent < 0) return 1;  // The root element has no siblings.
  const std::vector<IntervalNode>& nodes = doc_->nodes();
  int position = 1;
  for (uint32_t sibling : children_[static_cast<uint32_t>(parent)]) {
    if (sibling == x) break;
    if (pattern.wildcard || nodes[sibling].tag == nodes[x].tag) {
      ++position;
    }
  }
  return position;
}

std::vector<uint32_t> RegionEngine::Candidates(const PatternNode& pattern) {
  std::vector<uint32_t> pool;
  ++stats_.index_probes;
  if (pattern.predicate.op == ValueOp::kEq) {
    // Value posting list first (the XISS value index), tag-filtered.
    pool = doc_->NodesWithValue(pattern.predicate.operand);
    if (!pattern.wildcard) {
      auto tag = doc_->tags().Lookup(pattern.tag);
      if (!tag.has_value()) return {};
      std::erase_if(pool, [&](uint32_t i) {
        return doc_->nodes()[i].tag != *tag;
      });
    }
  } else if (pattern.wildcard) {
    pool.resize(doc_->nodes().size());
    for (uint32_t i = 0; i < pool.size(); ++i) pool[i] = i;
  } else {
    auto tag = doc_->tags().Lookup(pattern.tag);
    if (!tag.has_value()) return {};
    pool = doc_->NodesWithTag(*tag);
  }
  stats_.candidates += pool.size();

  std::vector<uint32_t> out;
  out.reserve(pool.size());
  for (uint32_t i : pool) {
    if (pattern.predicate.active()) {
      const std::string& value = doc_->ValueOfNode(i);
      if (value.empty() ||
          !EvalValuePredicate(pattern.predicate, value)) {
        continue;
      }
    }
    if (pattern.position > 0 &&
        SiblingPosition(i, pattern) != pattern.position) {
      continue;
    }
    out.push_back(i);
  }
  std::sort(out.begin(), out.end());  // Pre order (value lists may mix).
  return out;
}

namespace {

/// Is x related to y along axis?  Shared by the existence probe and the
/// joint assignment; x == kVirtualRoot handled by the callers.
bool RelatedReal(const std::vector<IntervalNode>& nodes,
                 const std::vector<int32_t>& parents, uint32_t x,
                 uint32_t y, Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kFollowingSibling:  // Tree edge; order arcs checked apart.
      return parents[y] == static_cast<int32_t>(x);
    case Axis::kDescendant:
      return nodes[x].start < nodes[y].start &&
             nodes[y].end < nodes[x].end;
    case Axis::kFollowing:
      return nodes[y].start > nodes[x].end;
    case Axis::kPreceding:
      return nodes[y].end < nodes[x].start;
  }
  return false;
}

}  // namespace

bool RegionEngine::ExistsRelated(uint32_t x,
                                 const std::vector<uint32_t>& witnesses,
                                 Axis axis) {
  ++stats_.join_checks;
  const std::vector<IntervalNode>& nodes = doc_->nodes();
  if (x == kVirtualRoot) {
    switch (axis) {
      case Axis::kChild:
      case Axis::kFollowingSibling:
        // The only "child of the document" is the root element, which
        // is pre-order label 0.
        return !witnesses.empty() && witnesses.front() == 0;
      case Axis::kDescendant:
        return !witnesses.empty();
      case Axis::kFollowing:
      case Axis::kPreceding:
        return false;
    }
  }
  switch (axis) {
    case Axis::kChild:
    case Axis::kFollowingSibling:
      // A witness child of x must carry a pre label inside x's region;
      // regions nest, so the candidates are the pre-sorted subrange
      // (x.start, x.end) — probe it and confirm parenthood.
      for (auto it = std::upper_bound(witnesses.begin(), witnesses.end(),
                                      x);
           it != witnesses.end() && nodes[*it].start < nodes[x].end;
           ++it) {
        ++stats_.join_checks;
        if (parents_[*it] == static_cast<int32_t>(x)) return true;
      }
      return false;
    case Axis::kDescendant: {
      // Nesting: any pre label strictly inside (x.start, x.end) is a
      // descendant — one binary search decides existence.
      auto it = std::upper_bound(witnesses.begin(), witnesses.end(), x);
      return it != witnesses.end() && nodes[*it].start < nodes[x].end;
    }
    case Axis::kFollowing:
      // Pre labels ascend with the index, so the last witness has the
      // largest pre; following(x, w) iff w.start > x.end.
      return !witnesses.empty() &&
             nodes[witnesses.back()].start > nodes[x].end;
    case Axis::kPreceding:
      for (uint32_t w : witnesses) {
        if (w >= x) break;  // Pre >= x's pre: not preceding.
        ++stats_.join_checks;
        if (nodes[w].end < nodes[x].start) return true;
      }
      return false;
  }
  return false;
}

std::vector<uint32_t> RegionEngine::RelatedSubset(
    uint32_t x, const std::vector<uint32_t>& witnesses, Axis axis) {
  const std::vector<IntervalNode>& nodes = doc_->nodes();
  std::vector<uint32_t> out;
  if (x == kVirtualRoot) {
    switch (axis) {
      case Axis::kChild:
      case Axis::kFollowingSibling:
        if (!witnesses.empty() && witnesses.front() == 0) out.push_back(0);
        return out;
      case Axis::kDescendant:
        return witnesses;
      case Axis::kFollowing:
      case Axis::kPreceding:
        return out;
    }
  }
  for (uint32_t w : witnesses) {
    ++stats_.join_checks;
    if (RelatedReal(nodes, parents_, x, w, axis)) out.push_back(w);
  }
  return out;
}

bool RegionEngine::AssignChildren(
    uint32_t x, const PatternNode& pattern,
    const std::vector<std::vector<uint32_t>>& sat, int pinned_child,
    uint32_t pinned_witness) {
  const size_t n = pattern.children.size();
  // Per-child witness pools, restricted to x's region up front.
  std::vector<std::vector<uint32_t>> pools(n);
  for (size_t c = 0; c < n; ++c) {
    const PatternNode& child = *pattern.children[c];
    if (static_cast<int>(c) == pinned_child) {
      pools[c] = {pinned_witness};
      continue;
    }
    pools[c] = RelatedSubset(
        x, sat[static_cast<size_t>(child.id)], child.incoming);
    if (pools[c].empty()) return false;
  }
  const std::vector<IntervalNode>& nodes = doc_->nodes();
  std::vector<uint32_t> chosen(n, 0);
  // Backtracking over the (small) sibling group; the order arcs are
  // verified once a full assignment is reached, exactly as the oracle
  // does.
  std::function<bool(size_t)> assign = [&](size_t index) {
    if (index == n) {
      for (auto [a, b] : pattern.sibling_order) {
        const uint32_t wa = chosen[static_cast<size_t>(a)];
        const uint32_t wb = chosen[static_cast<size_t>(b)];
        ++stats_.join_checks;
        if (parents_[wa] != parents_[wb] ||
            nodes[wa].start >= nodes[wb].start) {
          return false;
        }
      }
      return true;
    }
    for (uint32_t w : pools[index]) {
      chosen[index] = w;
      if (assign(index + 1)) return true;
    }
    return false;
  };
  return assign(0);
}

bool RegionEngine::SatisfiesDown(
    uint32_t x, const PatternNode& pattern,
    const std::vector<std::vector<uint32_t>>& sat) {
  if (!pattern.sibling_order.empty()) {
    return AssignChildren(x, pattern, sat, /*pinned_child=*/-1,
                          /*pinned_witness=*/0);
  }
  for (const auto& child : pattern.children) {
    if (!ExistsRelated(x, sat[static_cast<size_t>(child->id)],
                       child->incoming)) {
      return false;
    }
  }
  return true;
}

Result<std::vector<uint32_t>> RegionEngine::Evaluate(
    const PatternTree& pattern) {
  stats_ = Stats{};

  // Pattern nodes by dense pre-order id (parents before children).
  std::vector<const PatternNode*> by_id(
      static_cast<size_t>(pattern.size()), nullptr);
  std::vector<const PatternNode*> todo{pattern.root()};
  while (!todo.empty()) {
    const PatternNode* node = todo.back();
    todo.pop_back();
    by_id[static_cast<size_t>(node->id)] = node;
    for (const auto& child : node->children) todo.push_back(child.get());
  }

  // Pass 1, bottom-up: satisfying sets per pattern node.  Pre-order ids
  // put children after parents, so a reverse sweep sees every child's
  // set before its parent needs it.
  std::vector<std::vector<uint32_t>> sat(by_id.size());
  for (size_t id = by_id.size(); id-- > 1;) {
    const PatternNode& p = *by_id[id];
    std::vector<uint32_t> set;
    for (uint32_t x : Candidates(p)) {
      if (SatisfiesDown(x, p, sat)) set.push_back(x);
    }
    sat[id] = std::move(set);
  }

  // Pass 2, top-down along the chain virtual root -> returning node:
  // keep only nodes with an upward witness, re-checking the parent's
  // sibling-order arcs with the chain child pinned.
  std::vector<const PatternNode*> chain;
  for (const PatternNode* p = pattern.returning(); p != nullptr;
       p = p->parent) {
    chain.push_back(p);
  }
  std::reverse(chain.begin(), chain.end());
  NOK_CHECK(!chain.empty() && chain.front()->is_doc_root);

  std::vector<uint32_t> up{kVirtualRoot};
  for (size_t i = 1; i < chain.size(); ++i) {
    const PatternNode& p = *chain[i];
    const PatternNode& parent = *chain[i - 1];
    int child_index = -1;
    for (size_t c = 0; c < parent.children.size(); ++c) {
      if (parent.children[c].get() == &p) {
        child_index = static_cast<int>(c);
        break;
      }
    }
    NOK_CHECK(child_index >= 0);
    const bool ordered = !parent.sibling_order.empty();
    std::vector<uint32_t> next;
    for (uint32_t y : sat[static_cast<size_t>(p.id)]) {
      for (uint32_t x : up) {
        const bool related =
            x == kVirtualRoot
                ? (p.incoming == Axis::kDescendant ||
                   ((p.incoming == Axis::kChild ||
                     p.incoming == Axis::kFollowingSibling) &&
                    parents_[y] == -1))
                : RelatedReal(doc_->nodes(), parents_, x, y, p.incoming);
        ++stats_.join_checks;
        if (!related) continue;
        if (ordered && !AssignChildren(x, parent, sat, child_index, y)) {
          continue;
        }
        next.push_back(y);
        break;
      }
    }
    up = std::move(next);
    if (up.empty()) break;
  }
  if (!up.empty() && up.front() == kVirtualRoot) up.clear();
  return up;
}

}  // namespace nok
