// TwigStack baseline: holistic twig joins (Bruno, Koudas, Srivastava,
// SIGMOD 2002 — the paper's second comparison system).
//
// Implementation follows the paper's experimental setup (Section 6.2):
// one document-order input stream per twig node (the per-tag posting
// lists), a value filter standing in for the value B+ tree they built,
// chained stacks with parent pointers, the recursive getNext head
// selection, root-to-leaf path solutions, and a final merge.  The merge
// is done as an acyclic semi-join reduction over the twig edges (the
// query projects a single returning node, so path solutions decompose
// exactly).  Parent-child edges are post-filtered on emission — the known
// TwigStack suboptimality for '/' edges is therefore preserved.

#ifndef NOKXML_BASELINE_TWIGSTACK_ENGINE_H_
#define NOKXML_BASELINE_TWIGSTACK_ENGINE_H_

#include <cstdint>
#include <vector>

#include "baseline/interval_encoding.h"
#include "common/result.h"
#include "nok/pattern_tree.h"

namespace nok {

/// Holistic twig-join evaluator.
class TwigStackEngine {
 public:
  /// Work counters for one evaluation.
  struct Stats {
    uint64_t stream_elements = 0;  ///< Stream entries consumed.
    uint64_t path_solutions = 0;   ///< Root-to-leaf paths emitted.
    uint64_t stack_pushes = 0;
  };

  explicit TwigStackEngine(const IntervalDocument* doc) : doc_(doc) {}

  /// Evaluates a pattern tree; returns document-order node indexes
  /// matching the returning node.
  Result<std::vector<uint32_t>> Evaluate(const PatternTree& pattern);

  const Stats& last_stats() const { return stats_; }

 private:
  const IntervalDocument* doc_;
  Stats stats_;
};

}  // namespace nok

#endif  // NOKXML_BASELINE_TWIGSTACK_ENGINE_H_
