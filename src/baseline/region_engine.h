// Region-encoded baseline à la XISS/R (Li & Moon, VLDB 2001): every
// element carries a (pre, post, level) region label and structural
// relationships are decided by pure interval arithmetic over per-tag
// posting lists — the canonical alternative physical scheme to the
// paper's succinct string storage, and the design killteck's
// indexing-xml implements over an RDBMS.
//
// The engine reuses IntervalDocument (baseline/interval_encoding.h) as
// its label table: `start`/`end` are the pre/post counters, so
//   descendant(a, d)  iff  a.start < d.start && d.end < a.end
//   following(a, f)   iff  f.start > a.end
// and — because regions are properly nested — any node whose pre lands
// strictly inside (a.start, a.end) is a descendant of a, which turns
// the ancestor-existence probe into one binary search on a pre-sorted
// list.  Parent/child adds a derived parent[] table (one stack pass
// over the label table, the XISS "parent index").
//
// Evaluation is a two-pass interval join:
//   1. bottom-up: for each pattern node, its satisfying set = the
//      tag/value posting list filtered by each child's satisfying set
//      through the axis predicate (joint backtracking over the small
//      sibling group when following-sibling order arcs are present);
//   2. top-down: walk the chain root -> returning node and keep only
//      nodes with an upward witness, re-checking sibling order with the
//      chain child pinned.
//
// Unlike every other engine, the region engine evaluates positional
// predicates [n] (position = rank among like-tagged siblings, derived
// from the parent table), so the fuzzer can exercise them end-to-end
// against the oracle.

#ifndef NOKXML_BASELINE_REGION_ENGINE_H_
#define NOKXML_BASELINE_REGION_ENGINE_H_

#include <cstdint>
#include <vector>

#include "baseline/interval_encoding.h"
#include "common/result.h"
#include "nok/pattern_tree.h"

namespace nok {

/// (pre, post, level) interval-join evaluator.
class RegionEngine {
 public:
  /// Work counters for one evaluation.
  struct Stats {
    uint64_t index_probes = 0;   ///< Posting-list fetches.
    uint64_t candidates = 0;     ///< Candidate labels considered.
    uint64_t join_checks = 0;    ///< Region-arithmetic comparisons.
  };

  /// Derives the parent/children tables from the label table (the doc
  /// must outlive the engine).
  explicit RegionEngine(const IntervalDocument* doc);

  /// Evaluates a pattern tree; returns document-order node indexes
  /// matching the returning node.
  Result<std::vector<uint32_t>> Evaluate(const PatternTree& pattern);

  const Stats& last_stats() const { return stats_; }

  /// The derived parent table (document-order index -> parent index,
  /// -1 for the root); exposed for tests.
  const std::vector<int32_t>& parents() const { return parents_; }

 private:
  /// Candidate labels for one pattern node: tag/value posting list
  /// filtered by the value and positional predicates, pre-sorted.
  std::vector<uint32_t> Candidates(const PatternNode& pattern);

  /// True iff `witnesses` (pre-sorted) contains a node related to x by
  /// `axis` (x = kVirtualRoot stands for the virtual document root).
  bool ExistsRelated(uint32_t x, const std::vector<uint32_t>& witnesses,
                     Axis axis);

  /// The subset of `witnesses` related to x by `axis`, pre-sorted.
  std::vector<uint32_t> RelatedSubset(uint32_t x,
                                      const std::vector<uint32_t>& witnesses,
                                      Axis axis);

  /// Joint witness assignment for x's pattern children when sibling
  /// order arcs are present; `pinned_child` (or -1) must bind exactly
  /// `pinned_witness`.
  bool AssignChildren(uint32_t x, const PatternNode& pattern,
                      const std::vector<std::vector<uint32_t>>& sat,
                      int pinned_child, uint32_t pinned_witness);

  /// One bottom-up acceptance check: does x satisfy `pattern`'s subtree
  /// given the children's satisfying sets?
  bool SatisfiesDown(uint32_t x, const PatternNode& pattern,
                     const std::vector<std::vector<uint32_t>>& sat);

  /// 1-based rank of x among its siblings passing `pattern`'s name test.
  int SiblingPosition(uint32_t x, const PatternNode& pattern);

  static constexpr uint32_t kVirtualRoot = 0xffffffffu;

  const IntervalDocument* doc_;
  std::vector<int32_t> parents_;
  std::vector<std::vector<uint32_t>> children_;
  Stats stats_;
};

}  // namespace nok

#endif  // NOKXML_BASELINE_REGION_ENGINE_H_
