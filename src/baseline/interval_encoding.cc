#include "baseline/interval_encoding.h"

#include "common/logging.h"
#include "xml/escape.h"
#include "xml/sax_parser.h"

namespace nok {

Result<IntervalDocument> IntervalDocument::Build(const std::string& xml) {
  IntervalDocument doc;
  SaxParser parser(xml);
  SaxEvent event;
  uint32_t counter = 0;
  struct Frame {
    uint32_t node_index;
    std::string value;
  };
  std::vector<Frame> stack;

  auto open_node = [&](const std::string& name) -> Status {
    NOK_ASSIGN_OR_RETURN(TagId tag, doc.tags_.Intern(name));
    doc.tags_.AddOccurrence(tag);
    IntervalNode node;
    node.start = counter++;
    node.level = static_cast<int32_t>(stack.size()) + 1;
    node.tag = tag;
    stack.push_back(Frame{static_cast<uint32_t>(doc.nodes_.size()), {}});
    doc.nodes_.push_back(node);
    return Status::OK();
  };

  auto close_node = [&]() -> Status {
    Frame& frame = stack.back();
    IntervalNode& node = doc.nodes_[frame.node_index];
    node.end = counter++;
    const std::string value = TrimWhitespace(frame.value);
    if (!value.empty()) {
      auto [it, inserted] = doc.value_ids_.try_emplace(
          value, static_cast<int32_t>(doc.values_.size()));
      if (inserted) doc.values_.push_back(value);
      node.value_id = it->second;
      doc.by_value_[value].push_back(frame.node_index);
    }
    stack.pop_back();
    return Status::OK();
  };

  for (;;) {
    NOK_RETURN_IF_ERROR(parser.Next(&event));
    if (event.type == SaxEvent::Type::kEndDocument) break;
    switch (event.type) {
      case SaxEvent::Type::kStartElement: {
        NOK_RETURN_IF_ERROR(open_node(event.name));
        for (auto& [attr_name, attr_value] : event.attributes) {
          NOK_RETURN_IF_ERROR(open_node("@" + attr_name));
          stack.back().value = attr_value;
          NOK_RETURN_IF_ERROR(close_node());
        }
        break;
      }
      case SaxEvent::Type::kEndElement:
        NOK_RETURN_IF_ERROR(close_node());
        break;
      case SaxEvent::Type::kText: {
        NOK_CHECK(!stack.empty());
        AppendTextChunk(&stack.back().value, event.text);
        break;
      }
      case SaxEvent::Type::kEndDocument:
        break;
    }
  }
  if (!stack.empty()) {
    return Status::ParseError("document ended with open elements");
  }

  // Per-tag posting lists (document order by construction).
  doc.by_tag_.resize(doc.tags_.size());
  for (uint32_t i = 0; i < doc.nodes_.size(); ++i) {
    doc.by_tag_[doc.nodes_[i].tag - 1].push_back(i);
  }
  return doc;
}

const std::vector<uint32_t>& IntervalDocument::NodesWithTag(
    TagId tag) const {
  static const std::vector<uint32_t> kEmpty;
  if (tag == kInvalidTag || tag > by_tag_.size()) return kEmpty;
  return by_tag_[tag - 1];
}

std::vector<uint32_t> IntervalDocument::NodesWithValue(
    const std::string& value) const {
  auto it = by_value_.find(value);
  if (it == by_value_.end()) return {};
  return it->second;
}

const std::string& IntervalDocument::ValueOfNode(uint32_t node_index) const {
  static const std::string kEmpty;
  const IntervalNode& node = nodes_[node_index];
  if (node.value_id < 0) return kEmpty;
  return values_[static_cast<size_t>(node.value_id)];
}

}  // namespace nok
