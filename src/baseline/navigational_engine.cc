#include "baseline/navigational_engine.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace nok {

NavigationalEngine::NavigationalEngine(const DomTree* tree) : tree_(tree) {
  ForEachNode(tree->root(), [&](const DomNode* node) {
    by_tag_[node->name].push_back(node);
    if (!node->value.empty()) by_value_[node->value].push_back(node);
    doc_order_.push_back(node);
  });
}

template <typename Fn>
bool NavigationalEngine::AnyDescendant(const DomNode* node, Fn&& fn) {
  for (const auto& child : node->children) {
    ++stats_.nodes_visited;
    if (fn(child.get())) return true;
    if (AnyDescendant(child.get(), fn)) return true;
  }
  return false;
}

bool NavigationalEngine::MatchDown(const PatternNode* pattern,
                                   const DomNode* node,
                                   const PatternNode* exclude) {
  const auto key = std::make_pair(pattern->id, node);
  if (exclude == nullptr) {
    auto it = match_memo_.find(key);
    if (it != match_memo_.end()) return it->second;
  }
  ++stats_.nodes_visited;
  bool ok = true;
  if (!pattern->wildcard && pattern->tag != node->name) ok = false;
  if (ok && pattern->predicate.active()) {
    ok = !node->value.empty() &&
         EvalValuePredicate(pattern->predicate, node->value);
  }
  if (ok && !pattern->sibling_order.empty()) {
    // Order constraints need coordinated sibling matching; fall back to a
    // quadratic check over child pairs.
    for (auto [a, b] : pattern->sibling_order) {
      const PatternNode* pa = pattern->children[static_cast<size_t>(a)].get();
      const PatternNode* pb = pattern->children[static_cast<size_t>(b)].get();
      bool pair_ok = false;
      for (size_t i = 0; i < node->children.size() && !pair_ok; ++i) {
        if (!MatchDown(pa, node->children[i].get(), nullptr)) continue;
        for (size_t j = i + 1; j < node->children.size(); ++j) {
          if (MatchDown(pb, node->children[j].get(), nullptr)) {
            pair_ok = true;
            break;
          }
        }
      }
      if (!pair_ok) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    for (const auto& child : pattern->children) {
      if (child.get() == exclude) continue;
      bool found = false;
      switch (child->incoming) {
        case Axis::kChild:
        case Axis::kFollowingSibling: {  // Tree edge; order checked above.
          for (const auto& sub : node->children) {
            if (MatchDown(child.get(), sub.get(), nullptr)) {
              found = true;
              break;
            }
          }
          break;
        }
        case Axis::kDescendant: {
          found = AnyDescendant(node, [&](const DomNode* d) {
            return MatchDown(child.get(), d, nullptr);
          });
          break;
        }
        case Axis::kFollowing: {
          // Everything starting after this node's subtree.
          auto it = std::upper_bound(
              doc_order_.begin(), doc_order_.end(), node->end,
              [](uint32_t end, const DomNode* n) { return n->start > end; });
          for (; it != doc_order_.end(); ++it) {
            if (MatchDown(child.get(), *it, nullptr)) {
              found = true;
              break;
            }
          }
          break;
        }
        case Axis::kPreceding: {
          // Everything whose subtree ends before this node starts.
          for (const DomNode* d : doc_order_) {
            if (d->start >= node->start) break;
            if (d->end < node->start &&
                MatchDown(child.get(), d, nullptr)) {
              found = true;
              break;
            }
          }
          break;
        }
      }
      if (!found) {
        ok = false;
        break;
      }
    }
  }
  if (exclude == nullptr) match_memo_.emplace(key, ok);
  return ok;
}

void NavigationalEngine::CollectDown(
    const std::vector<const PatternNode*>& path, size_t step,
    const DomNode* node, std::vector<const DomNode*>* out) {
  const PatternNode* p = path[step];
  const PatternNode* next = step + 1 < path.size() ? path[step + 1] : nullptr;
  auto consider = [&](const DomNode* candidate) {
    if (!MatchDown(p, candidate, /*exclude=*/nullptr)) return;
    if (next == nullptr) {
      out->push_back(candidate);
    } else {
      CollectDown(path, step + 1, candidate, out);
    }
  };
  switch (p->incoming) {
    case Axis::kChild:
    case Axis::kFollowingSibling:
      for (const auto& child : node->children) consider(child.get());
      break;
    case Axis::kDescendant:
      AnyDescendant(node, [&](const DomNode* d) {
        consider(d);
        return false;  // Visit all.
      });
      break;
    case Axis::kFollowing: {
      auto it = std::upper_bound(
          doc_order_.begin(), doc_order_.end(), node->end,
          [](uint32_t end, const DomNode* n) { return n->start > end; });
      for (; it != doc_order_.end(); ++it) consider(*it);
      break;
    }
    case Axis::kPreceding: {
      for (const DomNode* d : doc_order_) {
        if (d->start >= node->start) break;
        if (d->end < node->start) consider(d);
      }
      break;
    }
  }
}

Result<std::vector<const DomNode*>> NavigationalEngine::Evaluate(
    const PatternTree& pattern) {
  stats_ = Stats{};
  match_memo_.clear();

  if (HasPositionalPredicate(pattern)) {
    return Status::NotSupported(
        "navigational baseline does not evaluate positional predicates");
  }

  // Sibling-order constraints at the document root (a first-step
  // following-/preceding-sibling) are unsatisfiable: the root element has
  // no siblings.
  if (!pattern.root()->sibling_order.empty()) {
    return std::vector<const DomNode*>{};
  }

  std::vector<const PatternNode*> all_nodes;
  {
    std::vector<const PatternNode*> todo{pattern.root()};
    while (!todo.empty()) {
      const PatternNode* n = todo.back();
      todo.pop_back();
      if (!n->is_doc_root) all_nodes.push_back(n);
      for (const auto& c : n->children) todo.push_back(c.get());
    }
  }

  // The anchor-path alignment below assumes ancestor edges; patterns
  // using the following/preceding axes are evaluated by plain top-down
  // navigation instead (CollectDown handles every axis).
  for (const PatternNode* n : all_nodes) {
    if (n->incoming == Axis::kFollowing ||
        n->incoming == Axis::kPreceding) {
      return EvaluateTopDown(pattern);
    }
  }

  // ---- anchor selection: most selective value constraint, else rarest
  // tag, anywhere in the pattern tree.
  const PatternNode* anchor = nullptr;
  const std::vector<const DomNode*>* candidates = nullptr;
  size_t best = std::numeric_limits<size_t>::max();
  static const std::vector<const DomNode*> kEmpty;
  for (const PatternNode* n : all_nodes) {
    if (n->predicate.op == ValueOp::kEq) {
      ++stats_.index_lookups;
      auto it = by_value_.find(n->predicate.operand);
      const auto* list = it == by_value_.end() ? &kEmpty : &it->second;
      if (list->size() < best) {
        best = list->size();
        anchor = n;
        candidates = list;
      }
    }
  }
  if (anchor == nullptr) {
    for (const PatternNode* n : all_nodes) {
      if (n->wildcard) continue;
      ++stats_.index_lookups;
      auto it = by_tag_.find(n->tag);
      const auto* list = it == by_tag_.end() ? &kEmpty : &it->second;
      if (list->size() < best) {
        best = list->size();
        anchor = n;
        candidates = list;
      }
    }
  }
  if (anchor == nullptr || candidates == nullptr) {
    return Status::NotSupported(
        "navigational baseline needs at least one named step");
  }
  stats_.candidates = candidates->size();

  // ---- pattern paths: root -> anchor, root -> returning, and their LCA.
  auto path_to = [](const PatternNode* n) {
    std::vector<const PatternNode*> path;
    for (; n != nullptr; n = n->parent) path.push_back(n);
    std::reverse(path.begin(), path.end());
    return path;
  };
  const auto anchor_path = path_to(anchor);
  const auto returning_path = path_to(pattern.returning());
  size_t lca = 0;
  while (lca + 1 < anchor_path.size() && lca + 1 < returning_path.size() &&
         anchor_path[lca + 1] == returning_path[lca + 1]) {
    ++lca;
  }

  std::vector<const DomNode*> results;
  for (const DomNode* candidate : *candidates) {
    // Subject ancestor chain: [virtual, root, ..., candidate].
    std::vector<const DomNode*> chain;
    for (const DomNode* n = candidate; n != nullptr; n = n->parent) {
      chain.push_back(n);
    }
    chain.push_back(nullptr);  // Virtual super-root.
    std::reverse(chain.begin(), chain.end());

    // Alignment DP: ok[i][j] = anchor_path[i..] maps onto chain[j..] with
    // chain.back() assigned to the anchor.
    const size_t pi = anchor_path.size();
    const size_t sj = chain.size();
    // node_ok[i][j]: pattern i acceptable at chain j (constraints checked
    // excluding the path continuation).
    auto node_ok = [&](size_t i, size_t j) {
      const PatternNode* p = anchor_path[i];
      const PatternNode* excl =
          i + 1 < pi ? anchor_path[i + 1] : nullptr;
      if (p->is_doc_root) return j == 0;
      if (j == 0) return false;
      return MatchDown(p, chain[j], excl);
    };
    std::vector<std::vector<char>> ok(pi + 1,
                                      std::vector<char>(sj + 1, 0));
    // ok[i][j]: suffix i of the pattern path starts at chain position j.
    // Fill bottom-up: the last pattern node must sit on the candidate.
    for (size_t i = pi; i-- > 0;) {
      for (size_t j = 0; j < sj; ++j) {
        if (!node_ok(i, j)) continue;
        if (i == pi - 1) {
          ok[i][j] = (j == sj - 1);
          continue;
        }
        const Axis axis = anchor_path[i + 1]->incoming;
        if (axis == Axis::kChild || axis == Axis::kFollowingSibling) {
          ok[i][j] = j + 1 < sj && ok[i + 1][j + 1];
        } else {  // kDescendant (kFollowing cannot be an ancestor edge).
          for (size_t j2 = j + 1; j2 < sj; ++j2) {
            if (ok[i + 1][j2]) {
              ok[i][j] = 1;
              break;
            }
          }
        }
      }
    }
    if (!ok[0][0]) continue;

    // Valid assignments of the LCA node: chain positions j reachable from
    // the top AND from which the suffix matches.
    std::vector<std::vector<char>> top(pi, std::vector<char>(sj, 0));
    top[0][0] = node_ok(0, 0) ? 1 : 0;
    for (size_t i = 1; i < pi; ++i) {
      const Axis axis = anchor_path[i]->incoming;
      for (size_t j = 1; j < sj; ++j) {
        if (!node_ok(i, j)) continue;
        if (axis == Axis::kChild || axis == Axis::kFollowingSibling) {
          top[i][j] = top[i - 1][j - 1];
        } else {
          for (size_t j2 = 0; j2 < j; ++j2) {
            if (top[i - 1][j2]) {
              top[i][j] = 1;
              break;
            }
          }
        }
      }
    }

    for (size_t j = 0; j < sj; ++j) {
      if (!(top[lca][j] && ok[lca][j])) continue;
      if (lca + 1 >= returning_path.size()) {
        // The returning node is the LCA itself.
        if (chain[j] != nullptr) results.push_back(chain[j]);
        continue;
      }
      if (chain[j] == nullptr) {
        // LCA is the virtual root: collect from the document root's
        // parentless level by treating the virtual node as having the
        // root as its only child.
        std::vector<const PatternNode*> rest(
            returning_path.begin() + static_cast<long>(lca) + 1,
            returning_path.end());
        const PatternNode* first = rest[0];
        auto consider_root = [&](const DomNode* root_node) {
          if (!MatchDown(first, root_node, nullptr)) return;
          if (rest.size() == 1) {
            results.push_back(root_node);
          } else {
            CollectDown(rest, 1, root_node, &results);
          }
        };
        if (first->incoming == Axis::kChild) {
          consider_root(tree_->root());
        } else {
          consider_root(tree_->root());
          AnyDescendant(tree_->root(), [&](const DomNode* d) {
            consider_root(d);
            return false;
          });
        }
        continue;
      }
      std::vector<const PatternNode*> rest(
          returning_path.begin() + static_cast<long>(lca) + 1,
          returning_path.end());
      // CollectDown expects the path vector indexed from the step after
      // the context node; reuse it by prepending a dummy.
      std::vector<const PatternNode*> path_vec;
      path_vec.push_back(returning_path[lca]);
      path_vec.insert(path_vec.end(), rest.begin(), rest.end());
      CollectDown(path_vec, 1, chain[j], &results);
    }
  }

  std::sort(results.begin(), results.end(),
            [](const DomNode* a, const DomNode* b) {
              return a->start < b->start;
            });
  results.erase(std::unique(results.begin(), results.end()),
                results.end());
  return results;
}

Result<std::vector<const DomNode*>> NavigationalEngine::EvaluateTopDown(
    const PatternTree& pattern) {
  std::vector<const PatternNode*> path;
  for (const PatternNode* n = pattern.returning(); n != nullptr;
       n = n->parent) {
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());
  // path[0] is the virtual root; path[1] the first real step.
  std::vector<const DomNode*> results;
  if (path.size() < 2) return results;
  const PatternNode* first = path[1];
  std::vector<const PatternNode*> path_vec(path.begin() + 1, path.end());

  auto consider = [&](const DomNode* candidate) {
    if (!MatchDown(first, candidate, nullptr)) return;
    if (path_vec.size() == 1) {
      results.push_back(candidate);
    } else {
      CollectDown(path_vec, 1, candidate, &results);
    }
  };
  switch (first->incoming) {
    case Axis::kChild:
    case Axis::kFollowingSibling:
      consider(tree_->root());
      break;
    case Axis::kDescendant:
      consider(tree_->root());
      AnyDescendant(tree_->root(), [&](const DomNode* d) {
        consider(d);
        return false;
      });
      break;
    case Axis::kFollowing:
    case Axis::kPreceding:
      break;  // Nothing follows or precedes the document root.
  }
  std::sort(results.begin(), results.end(),
            [](const DomNode* a, const DomNode* b) {
              return a->start < b->start;
            });
  results.erase(std::unique(results.begin(), results.end()),
                results.end());
  return results;
}

}  // namespace nok
