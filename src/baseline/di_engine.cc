#include "baseline/di_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace nok {

namespace {

/// Is `inner` related to `outer` under axis (interval semantics)?
bool Related(const IntervalNode& outer, const IntervalNode& inner,
             Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return outer.start < inner.start && inner.end < outer.end &&
             inner.level == outer.level + 1;
    case Axis::kDescendant:
      return outer.start < inner.start && inner.end < outer.end;
    case Axis::kFollowing:
      return inner.start > outer.end;
    case Axis::kPreceding:
      return inner.end < outer.start;
    case Axis::kFollowingSibling:
      return false;  // Rejected earlier.
  }
  return false;
}

}  // namespace

std::vector<uint32_t> DiEngine::Scan(const PatternNode& pattern) {
  std::vector<uint32_t> out;
  const auto& nodes = doc_->nodes();
  stats_.nodes_scanned += nodes.size();
  auto tag_id = pattern.wildcard
                    ? std::optional<TagId>()
                    : doc_->tags().Lookup(pattern.tag);
  if (!pattern.wildcard && !tag_id.has_value()) return out;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (!pattern.wildcard && nodes[i].tag != *tag_id) continue;
    if (pattern.predicate.active()) {
      if (nodes[i].value_id < 0) continue;
      if (!EvalValuePredicate(pattern.predicate, doc_->ValueOfNode(i))) {
        continue;
      }
    }
    out.push_back(i);
  }
  stats_.tuples_materialized += out.size();
  return out;
}

std::vector<uint32_t> DiEngine::JoinInners(
    const std::vector<uint32_t>& outers, const std::vector<uint32_t>& inners,
    Axis axis) {
  ++stats_.joins;
  std::vector<uint32_t> out;
  if (outers.empty() || inners.empty()) return out;
  const auto& nodes = doc_->nodes();

  if (axis == Axis::kFollowing) {
    // Any outer whose subtree ends before the inner qualifies; the minimal
    // end is the only thing that matters.
    uint32_t min_end = nodes[outers[0]].end;
    for (uint32_t o : outers) min_end = std::min(min_end, nodes[o].end);
    for (uint32_t i : inners) {
      if (nodes[i].start > min_end) out.push_back(i);
    }
    stats_.tuples_materialized += out.size();
    return out;
  }
  if (axis == Axis::kPreceding) {
    // Mirror: any outer starting after the inner's end qualifies; the
    // maximal start decides.
    uint32_t max_start = nodes[outers[0]].start;
    for (uint32_t o : outers) {
      max_start = std::max(max_start, nodes[o].start);
    }
    for (uint32_t i : inners) {
      if (nodes[i].end < max_start) out.push_back(i);
    }
    stats_.tuples_materialized += out.size();
    return out;
  }

  // Stack-based ancestor merge (both lists are in document order).
  std::vector<uint32_t> stack;
  size_t oi = 0;
  for (uint32_t inner : inners) {
    while (oi < outers.size() &&
           nodes[outers[oi]].start < nodes[inner].start) {
      while (!stack.empty() &&
             !doc_->Contains(stack.back(), outers[oi])) {
        stack.pop_back();
      }
      stack.push_back(outers[oi]);
      ++oi;
    }
    while (!stack.empty() && !doc_->Contains(stack.back(), inner)) {
      stack.pop_back();
    }
    if (stack.empty()) continue;
    if (axis == Axis::kDescendant) {
      out.push_back(inner);
    } else {
      // Parent-child: the parent, if among the outers, is the top of the
      // ancestor stack or one of the stack entries one level up.
      for (size_t s = stack.size(); s-- > 0;) {
        if (Related(nodes[stack[s]], nodes[inner], Axis::kChild)) {
          out.push_back(inner);
          break;
        }
        if (nodes[stack[s]].level < nodes[inner].level - 1) break;
      }
    }
  }
  stats_.tuples_materialized += out.size();
  return out;
}

std::vector<char> DiEngine::FlagOuters(const std::vector<uint32_t>& outers,
                                       const std::vector<uint32_t>& inners,
                                       Axis axis) {
  ++stats_.joins;
  std::vector<char> flags(outers.size(), 0);
  if (inners.empty()) return flags;
  const auto& nodes = doc_->nodes();

  if (axis == Axis::kFollowing) {
    const uint32_t max_start = nodes[inners.back()].start;
    for (size_t i = 0; i < outers.size(); ++i) {
      flags[i] = max_start > nodes[outers[i]].end;
    }
    return flags;
  }
  if (axis == Axis::kPreceding) {
    uint32_t min_end = nodes[inners[0]].end;
    for (uint32_t n : inners) min_end = std::min(min_end, nodes[n].end);
    for (size_t i = 0; i < outers.size(); ++i) {
      flags[i] = min_end < nodes[outers[i]].start;
    }
    return flags;
  }

  for (size_t i = 0; i < outers.size(); ++i) {
    // Descendants form a contiguous start-order block right after the
    // outer; binary search the first inner inside.
    const IntervalNode& o = nodes[outers[i]];
    auto it = std::lower_bound(inners.begin(), inners.end(), o.start,
                               [&](uint32_t n, uint32_t start) {
                                 return nodes[n].start <= start;
                               });
    if (axis == Axis::kDescendant) {
      flags[i] = it != inners.end() && doc_->Contains(outers[i], *it);
    } else {
      // Parent-child: scan the descendant block for a level+1 child.
      for (; it != inners.end() && doc_->Contains(outers[i], *it); ++it) {
        if (nodes[*it].level == o.level + 1) {
          flags[i] = 1;
          break;
        }
      }
    }
  }
  return flags;
}

Result<std::vector<uint32_t>> DiEngine::EvalNode(
    const std::vector<uint32_t>& context, const PatternNode& pattern,
    const PatternNode* skip_child) {
  std::vector<uint32_t> matches = Scan(pattern);
  matches = JoinInners(context, matches, pattern.incoming);
  for (const auto& child : pattern.children) {
    if (child.get() == skip_child) continue;
    NOK_ASSIGN_OR_RETURN(matches, FilterByPredicate(std::move(matches),
                                                    *child));
  }
  return matches;
}

Result<std::vector<uint32_t>> DiEngine::FilterByPredicate(
    std::vector<uint32_t> context, const PatternNode& pattern) {
  if (context.empty()) return context;
  NOK_ASSIGN_OR_RETURN(auto matches,
                       EvalNode(context, pattern, nullptr));
  const auto flags = FlagOuters(context, matches, pattern.incoming);
  std::vector<uint32_t> out;
  for (size_t i = 0; i < context.size(); ++i) {
    if (flags[i]) out.push_back(context[i]);
  }
  stats_.tuples_materialized += out.size();
  return out;
}

Result<std::vector<uint32_t>> DiEngine::Evaluate(
    const PatternTree& pattern) {
  stats_ = Stats{};

  if (HasPositionalPredicate(pattern)) {
    return Status::NotSupported(
        "DI baseline does not evaluate positional predicates");
  }

  // Reject constructs outside DI's supported fragment.
  bool has_order = false;
  std::vector<const PatternNode*> todo{pattern.root()};
  while (!todo.empty()) {
    const PatternNode* n = todo.back();
    todo.pop_back();
    if (!n->sibling_order.empty()) has_order = true;
    for (const auto& c : n->children) todo.push_back(c.get());
  }
  if (has_order) {
    return Status::NotSupported(
        "DI baseline does not evaluate following-sibling constraints");
  }

  // Path from the virtual root to the returning node.
  std::vector<const PatternNode*> path;
  for (const PatternNode* n = pattern.returning(); n != nullptr;
       n = n->parent) {
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());
  NOK_CHECK(!path.empty() && path[0]->is_doc_root);

  // The virtual root "matches" a pseudo interval containing everything;
  // its child step starts from the whole-document context.
  std::vector<uint32_t> context;
  {
    // Synthesize: all root-level handling is done by axis semantics.  We
    // model the virtual root as an implicit outer by special-casing the
    // first step: child-of-virtual-root = level 1, descendant = any.
    const PatternNode* first = path.size() > 1 ? path[1] : nullptr;
    if (first == nullptr) {
      return Status::InvalidArgument("empty path");
    }
    if (pattern.root()->children.size() != 1) {
      return Status::NotSupported(
          "DI baseline expects a single step below the document root");
    }
    if (first->incoming == Axis::kFollowing ||
        first->incoming == Axis::kPreceding) {
      return std::vector<uint32_t>{};  // Nothing follows/precedes the root.
    }
    std::vector<uint32_t> matches = Scan(*first);
    std::vector<uint32_t> filtered;
    for (uint32_t m : matches) {
      if (first->incoming == Axis::kChild &&
          doc_->nodes()[m].level != 1) {
        continue;
      }
      filtered.push_back(m);
    }
    for (const auto& child : first->children) {
      if (path.size() > 2 && child.get() == path[2]) continue;
      NOK_ASSIGN_OR_RETURN(filtered, FilterByPredicate(std::move(filtered),
                                                       *child));
    }
    context = std::move(filtered);
  }

  // Walk the remaining path steps.
  for (size_t i = 2; i < path.size(); ++i) {
    const PatternNode* skip =
        i + 1 < path.size() ? path[i + 1] : nullptr;
    NOK_ASSIGN_OR_RETURN(context, EvalNode(context, *path[i], skip));
  }
  return context;
}

}  // namespace nok
