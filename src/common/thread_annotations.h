// Clang Thread Safety Analysis annotation macros.
//
// The macros below attach compile-time concurrency contracts to mutexes
// and the data they guard: `GUARDED_BY(mu_)` on a member makes any
// access without `mu_` held a -Wthread-safety diagnostic, `REQUIRES` on
// a function documents (and enforces) a must-hold-on-entry contract,
// and `SCOPED_CAPABILITY` teaches the analysis about RAII holders.
// This is the LevelDB / RocksDB / Abseil scheme; the analysis itself is
// documented at https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
//
// On compilers without the attributes (GCC) every macro expands to
// nothing, so the annotations are zero-overhead documentation.  Clang
// checks them when -Wthread-safety is on; the NOK_THREAD_SAFETY CMake
// mode promotes the warnings to errors and CI gates merges on it (see
// ci/run_checks.sh thread-safety and DESIGN.md section 12).
//
// Use these through the nok::Mutex / nok::MutexLock / nok::CondVar
// wrappers in common/mutex.h — lint rule NOK009 bans the raw std::mutex
// family outside src/common/ precisely so that every lock in the tree
// is visible to the analysis.

#ifndef NOKXML_COMMON_THREAD_ANNOTATIONS_H_
#define NOKXML_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define NOK_TSA_ATTR__(x) __attribute__((x))
#else
#define NOK_TSA_ATTR__(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability (argument names the kind,
/// e.g. "mutex", for diagnostics).
#define CAPABILITY(x) NOK_TSA_ATTR__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY NOK_TSA_ATTR__(scoped_lockable)

/// Data members: reads and writes require the given capability held.
#define GUARDED_BY(x) NOK_TSA_ATTR__(guarded_by(x))

/// Pointer members: dereferences require the capability (the pointer
/// itself is unguarded).
#define PT_GUARDED_BY(x) NOK_TSA_ATTR__(pt_guarded_by(x))

/// Lock-ordering declarations between capabilities.
#define ACQUIRED_BEFORE(...) NOK_TSA_ATTR__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) NOK_TSA_ATTR__(acquired_after(__VA_ARGS__))

/// Functions: the listed capabilities must be held on entry (and are
/// still held on exit).
#define REQUIRES(...) NOK_TSA_ATTR__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NOK_TSA_ATTR__(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire / release the listed capabilities.
#define ACQUIRE(...) NOK_TSA_ATTR__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NOK_TSA_ATTR__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) NOK_TSA_ATTR__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NOK_TSA_ATTR__(release_shared_capability(__VA_ARGS__))

/// Functions that acquire only on a given boolean result (TryLock).
#define TRY_ACQUIRE(...) \
  NOK_TSA_ATTR__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  NOK_TSA_ATTR__(try_acquire_shared_capability(__VA_ARGS__))

/// Functions: the listed capabilities must NOT be held on entry (guards
/// against self-deadlock on non-reentrant mutexes).
#define EXCLUDES(...) NOK_TSA_ATTR__(locks_excluded(__VA_ARGS__))

/// Tells the analysis a capability is held on paths it cannot follow
/// (e.g. the lock was taken through an aliased pointer).
#define ASSERT_CAPABILITY(...) \
  NOK_TSA_ATTR__(assert_capability(__VA_ARGS__))
#define ASSERT_SHARED_CAPABILITY(...) \
  NOK_TSA_ATTR__(assert_shared_capability(__VA_ARGS__))

/// Functions returning a reference to a capability.
#define RETURN_CAPABILITY(x) NOK_TSA_ATTR__(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Every use
/// must carry a comment explaining why the contract cannot be stated.
#define NO_THREAD_SAFETY_ANALYSIS \
  NOK_TSA_ATTR__(no_thread_safety_analysis)

#endif  // NOKXML_COMMON_THREAD_ANNOTATIONS_H_
