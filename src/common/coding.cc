#include "common/coding.h"

#include <cstring>

namespace nok {

void EncodeFixed16(char* dst, uint16_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian host assumed (x86/ARM).
}
void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}
void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}
uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}
void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}
void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void EncodeBigEndian16(char* dst, uint16_t value) {
  dst[0] = static_cast<char>(value >> 8);
  dst[1] = static_cast<char>(value);
}
void EncodeBigEndian32(char* dst, uint32_t value) {
  dst[0] = static_cast<char>(value >> 24);
  dst[1] = static_cast<char>(value >> 16);
  dst[2] = static_cast<char>(value >> 8);
  dst[3] = static_cast<char>(value);
}
void EncodeBigEndian64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>(value >> (56 - 8 * i));
  }
}
uint16_t DecodeBigEndian16(const char* src) {
  const auto* p = reinterpret_cast<const unsigned char*>(src);
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t DecodeBigEndian32(const char* src) {
  const auto* p = reinterpret_cast<const unsigned char*>(src);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}
uint64_t DecodeBigEndian64(const char* src) {
  const auto* p = reinterpret_cast<const unsigned char*>(src);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void PutBigEndian16(std::string* dst, uint16_t value) {
  char buf[2];
  EncodeBigEndian16(buf, value);
  dst->append(buf, sizeof(buf));
}
void PutBigEndian32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeBigEndian32(buf, value);
  dst->append(buf, sizeof(buf));
}
void PutBigEndian64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeBigEndian64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t value) {
  char buf[5];
  char* p = buf;
  while (value >= 0x80) {
    *p++ = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  *p++ = static_cast<char>(value);
  dst->append(buf, static_cast<size_t>(p - buf));
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  char* p = buf;
  while (value >= 0x80) {
    *p++ = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  *p++ = static_cast<char>(value);
  dst->append(buf, static_cast<size_t>(p - buf));
}

const char* GetVarint32Ptr(const char* p, const char* limit,
                           uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit,
                           uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, static_cast<size_t>(limit - q));
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, static_cast<size_t>(limit - q));
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len = 0;
  Slice copy = *input;
  if (!GetVarint32(&copy, &len)) return false;
  if (copy.size() < len) return false;
  *result = Slice(copy.data(), len);
  copy.RemovePrefix(len);
  *input = copy;
  return true;
}

}  // namespace nok
