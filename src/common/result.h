// Result<T>: a Status or a value of type T, never both.
//
// The value-or-error return type used throughout the library (the Arrow
// arrow::Result idiom).  A default-constructed Result is an Internal error;
// construct from either a T or a non-OK Status.

#ifndef NOKXML_COMMON_RESULT_H_
#define NOKXML_COMMON_RESULT_H_

#include <cassert>
#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace nok {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
///
/// Marked [[nodiscard]] at class level: any function returning a Result by
/// value is must-use (silently dropping one drops the error too).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Error result; aborts (via assert) if the status is OK, because an OK
  /// Result must carry a value.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok());
  }

  /// Value result.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status, or OK if a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The held value; undefined behaviour unless ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  /// Alias for ValueOrDie, mirroring std::expected/absl::StatusOr.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace nok

#endif  // NOKXML_COMMON_RESULT_H_
