#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace nok {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level));
}
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_level.load()) {
    fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalMessage::FatalMessage(const char* file, int line,
                           const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  fprintf(stderr, "%s\n", stream_.str().c_str());
  fflush(stderr);
  abort();
}

}  // namespace internal
}  // namespace nok
