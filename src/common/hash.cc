#include "common/hash.h"

namespace nok {

uint64_t Hash64(const Slice& data) {
  // FNV-1a 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint32_t Hash32(const Slice& data) {
  // FNV-1a 32-bit.
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

}  // namespace nok
