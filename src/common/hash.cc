#include "common/hash.h"

namespace nok {

uint64_t Hash64(const Slice& data) {
  // FNV-1a 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint32_t Hash32(const Slice& data) {
  // FNV-1a 32-bit.
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

namespace {

/// Byte-at-a-time lookup table for the reflected Castagnoli polynomial.
struct Crc32cTable {
  uint32_t entries[256];
  constexpr Crc32cTable() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32cTable kCrc32cTable;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kCrc32cTable.entries[(c ^ static_cast<unsigned char>(data[i])) &
                             0xff] ^
        (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32c(const Slice& data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace nok
