// Binary coding primitives: fixed-width little-endian integers, LEB128
// varints, big-endian order-preserving integers, and length-prefixed
// slices.  These are the building blocks of every on-disk format in the
// library (B+ tree pages, the value data file, Dewey keys).

#ifndef NOKXML_COMMON_CODING_H_
#define NOKXML_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace nok {

// ---------------------------------------------------------------------------
// Fixed-width little-endian (native storage integers).

void EncodeFixed16(char* dst, uint16_t value);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint16_t DecodeFixed16(const char* src);
uint32_t DecodeFixed32(const char* src);
uint64_t DecodeFixed64(const char* src);

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// ---------------------------------------------------------------------------
// Big-endian (order-preserving: byte-wise comparison of the encodings is
// numeric comparison of the values).  Used for B+ tree keys.

void EncodeBigEndian16(char* dst, uint16_t value);
void EncodeBigEndian32(char* dst, uint32_t value);
void EncodeBigEndian64(char* dst, uint64_t value);
uint16_t DecodeBigEndian16(const char* src);
uint32_t DecodeBigEndian32(const char* src);
uint64_t DecodeBigEndian64(const char* src);

void PutBigEndian16(std::string* dst, uint16_t value);
void PutBigEndian32(std::string* dst, uint32_t value);
void PutBigEndian64(std::string* dst, uint64_t value);

// ---------------------------------------------------------------------------
// LEB128 varints.

/// Appends value as a varint (1..5 bytes).
void PutVarint32(std::string* dst, uint32_t value);
/// Appends value as a varint (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Parses a varint from [p, limit); returns the byte after the varint, or
/// nullptr on malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Consumes a varint from the front of *input.  Returns false on malformed
/// input (in which case *input is unchanged).
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Number of bytes PutVarint64 would append for value.
int VarintLength(uint64_t value);

// ---------------------------------------------------------------------------
// Length-prefixed slices (varint32 length + bytes).

void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
/// Consumes a length-prefixed slice from the front of *input; *result views
/// into the original buffer.  Returns false on malformed input.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

}  // namespace nok

#endif  // NOKXML_COMMON_CODING_H_
