// Wall-clock timing helpers for the benchmark harnesses.

#ifndef NOKXML_COMMON_TIMER_H_
#define NOKXML_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace nok {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nok

#endif  // NOKXML_COMMON_TIMER_H_
