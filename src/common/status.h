// Status: the error-handling currency of the library.
//
// Following the Arrow/RocksDB idiom, no exceptions cross public API
// boundaries; every fallible operation returns a Status (or a Result<T>,
// see result.h).  A Status is cheap to copy in the OK case (a single
// pointer-sized word) and carries a code plus a human-readable message
// otherwise.

#ifndef NOKXML_COMMON_STATUS_H_
#define NOKXML_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace nok {

/// Error category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kIOError = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kAlreadyExists = 7,
  kParseError = 8,
  kInternal = 9,
};

/// Human-readable name of a StatusCode ("OK", "IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Marked [[nodiscard]] at class level: any function returning a Status by
/// value is must-use.  A call site that intentionally drops one must say so
/// with NOK_IGNORE_STATUS(expr, "why").
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  Status(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(const Status&) = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return rep_ ? rep_->code : StatusCode::kOk;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// Message attached at construction time (empty for OK).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// "<CodeName>: <message>", or "OK".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // Null iff OK; shared so that copies are cheap and Status is value-like.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace nok

/// Propagates a non-OK Status to the caller.
#define NOK_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::nok::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Explicitly discards a Status.  Every use must carry a short justification
/// so reviewers (and nok_lint) can audit intentional drops:
///
///   NOK_IGNORE_STATUS(file->Close(), "best-effort close on error path");
///
/// The justification is a compile-time string literal; it is not evaluated.
#define NOK_IGNORE_STATUS(expr, justification)                         \
  do {                                                                 \
    static_assert(sizeof(justification) > 1,                           \
                  "NOK_IGNORE_STATUS requires a justification");       \
    ::nok::Status _ignored_st = (expr);                                \
    (void)_ignored_st;                                                 \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value or propagating the
/// error.  Usage: NOK_ASSIGN_OR_RETURN(auto v, SomeResultReturningCall());
#define NOK_ASSIGN_OR_RETURN(decl, expr)          \
  auto NOK_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!NOK_CONCAT_(_res_, __LINE__).ok())         \
    return NOK_CONCAT_(_res_, __LINE__).status(); \
  decl = std::move(NOK_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define NOK_CONCAT_IMPL_(a, b) a##b
#define NOK_CONCAT_(a, b) NOK_CONCAT_IMPL_(a, b)

#endif  // NOKXML_COMMON_STATUS_H_
