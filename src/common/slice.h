// Slice: a non-owning view over a byte range, with byte-wise comparison.
//
// The RocksDB-style counterpart of std::string_view used for keys and
// values in the storage layer; kept as its own type so storage code reads
// idiomatically and so we can add debug checks in one place.

#ifndef NOKXML_COMMON_SLICE_H_
#define NOKXML_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace nok {

/// Non-owning pointer+length view over bytes.  The referenced storage must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s)  // NOLINT(google-explicit-constructor)
      : data_(s.data()), size_(s.size()) {}
  Slice(std::string_view s)  // NOLINT(google-explicit-constructor)
      : data_(s.data()), size_(s.size()) {}
  Slice(const char* s)  // NOLINT(google-explicit-constructor)
      : data_(s), size_(strlen(s)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  /// Three-way byte-wise comparison: <0, 0, >0 as memcmp.
  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace nok

#endif  // NOKXML_COMMON_SLICE_H_
