// Annotated mutex wrappers: the only locking primitives allowed in
// src/ (lint rule NOK009 bans the raw std:: family elsewhere).
//
// nok::Mutex is std::mutex with Clang Thread Safety Analysis
// attributes (common/thread_annotations.h); nok::MutexLock is the RAII
// holder the analysis understands; nok::CondVar pairs with Mutex the
// way LevelDB's port::CondVar does.  Under GCC the attributes expand
// to nothing and the wrappers compile to the std types they hold
// (tests/thread_annotations_test.cc asserts zero size overhead).
//
// Conventions (DESIGN.md section 12):
//  * every member a Mutex guards carries GUARDED_BY(mu_);
//  * private helpers that expect the lock held carry REQUIRES(mu_)
//    and are named *Locked();
//  * public entry points that take the lock carry EXCLUDES(mu_) so
//    accidental re-entry is a compile error under clang.

#ifndef NOKXML_COMMON_MUTEX_H_
#define NOKXML_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace nok {

class CondVar;

// A std::mutex wearing capability attributes.  Not copyable, not
// movable; lock/unlock through MutexLock wherever possible.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For documenting lock invariants the analysis cannot follow (e.g.
  // the lock was acquired through an alias).  No runtime effect.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock holder, the SCOPED_CAPABILITY shape the analysis tracks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to nok::Mutex.  Wait() must be called with
// the mutex held (enforced by the REQUIRES annotation) and returns
// with it held again, so the usual predicate loop applies:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nok

#endif  // NOKXML_COMMON_MUTEX_H_
