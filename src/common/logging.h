// Minimal leveled logging and check macros.
//
// NOK_CHECK is for programming-error invariants (aborts); recoverable
// conditions must use Status instead.

#ifndef NOKXML_COMMON_LOGGING_H_
#define NOKXML_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace nok {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.  Default kWarn so
/// library code is silent in normal operation.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style message collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after printing the accumulated message.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nok

#define NOK_LOG(level)                                               \
  ::nok::internal::LogMessage(::nok::LogLevel::k##level, __FILE__, \
                              __LINE__)

#define NOK_CHECK(condition)                                        \
  if (!(condition))                                                 \
  ::nok::internal::FatalMessage(__FILE__, __LINE__, #condition)

#define NOK_DCHECK(condition) NOK_CHECK(condition)

#endif  // NOKXML_COMMON_LOGGING_H_
