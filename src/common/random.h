// Deterministic pseudo-random number generation for data generators and
// property tests.  A fixed algorithm (xorshift128+) rather than std::mt19937
// so that generated datasets are bit-identical across standard libraries.

#ifndef NOKXML_COMMON_RANDOM_H_
#define NOKXML_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace nok {

/// xorshift128+ generator; fast, deterministic, seedable.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to expand the seed into two non-zero state words.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 0x9e3779b97f4a7c15ull;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform value in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return static_cast<double>(Next() >> 11) *
               (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length) {
    std::string s(length, 'a');
    for (size_t i = 0; i < length; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace nok

#endif  // NOKXML_COMMON_RANDOM_H_
