// String hashing for the value index (B+v of the paper, Fig. 3).
//
// The paper keys the value B+ tree by a *hash* of the element content so
// that variable-length strings compare as fixed integers; collisions are
// resolved by consulting the data file (Section 4.1).  Hash64 is the hash
// used for that index.

#ifndef NOKXML_COMMON_HASH_H_
#define NOKXML_COMMON_HASH_H_

#include <cstdint>

#include "common/slice.h"

namespace nok {

/// 64-bit FNV-1a over the bytes of data.  Stable across platforms and
/// process runs (it is persisted in index files).
uint64_t Hash64(const Slice& data);

/// 32-bit variant (used for in-memory hash tables only).
uint32_t Hash32(const Slice& data);

}  // namespace nok

#endif  // NOKXML_COMMON_HASH_H_
