// String hashing for the value index (B+v of the paper, Fig. 3).
//
// The paper keys the value B+ tree by a *hash* of the element content so
// that variable-length strings compare as fixed integers; collisions are
// resolved by consulting the data file (Section 4.1).  Hash64 is the hash
// used for that index.

#ifndef NOKXML_COMMON_HASH_H_
#define NOKXML_COMMON_HASH_H_

#include <cstdint>

#include "common/slice.h"

namespace nok {

/// 64-bit FNV-1a over the bytes of data.  Stable across platforms and
/// process runs (it is persisted in index files).
uint64_t Hash64(const Slice& data);

/// 32-bit variant (used for in-memory hash tables only).
uint32_t Hash32(const Slice& data);

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) over data.  This
/// is the page-trailer checksum of the storage layer: stable across
/// platforms and process runs (it is persisted in every checksummed page),
/// and the same function LevelDB/RocksDB use for block integrity.
uint32_t Crc32c(const Slice& data);

/// Incremental form: extends a running CRC-32C with n more bytes.  Seed a
/// fresh computation with crc = 0.
uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n);

}  // namespace nok

#endif  // NOKXML_COMMON_HASH_H_
