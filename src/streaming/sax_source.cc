#include "streaming/sax_source.h"

namespace nok {

Status SaxSource::Next(StreamEvent* event) {
  // Drain pending attribute pseudo-nodes first: each expands to
  // open ("@name"), text (value, when non-empty), close.
  if (pending_index_ < pending_attrs_.size()) {
    const auto& [name, value] = pending_attrs_[pending_index_];
    if (pending_phase_ == 0) {
      event->kind = StreamEvent::Kind::kOpen;
      event->name = "@" + name;
      event->text.clear();
      pending_phase_ = value.empty() ? 2 : 1;
      return Status::OK();
    }
    if (pending_phase_ == 1) {
      event->kind = StreamEvent::Kind::kText;
      event->name.clear();
      event->text = value;
      pending_phase_ = 2;
      return Status::OK();
    }
    event->kind = StreamEvent::Kind::kClose;
    event->name.clear();
    event->text.clear();
    pending_phase_ = 0;
    ++pending_index_;
    return Status::OK();
  }

  SaxEvent sax;
  NOK_RETURN_IF_ERROR(parser_.Next(&sax));
  switch (sax.type) {
    case SaxEvent::Type::kStartElement:
      event->kind = StreamEvent::Kind::kOpen;
      event->name = std::move(sax.name);
      event->text.clear();
      pending_attrs_ = std::move(sax.attributes);
      pending_index_ = 0;
      pending_phase_ = 0;
      return Status::OK();
    case SaxEvent::Type::kEndElement:
      event->kind = StreamEvent::Kind::kClose;
      event->name.clear();
      event->text.clear();
      return Status::OK();
    case SaxEvent::Type::kText:
      event->kind = StreamEvent::Kind::kText;
      event->name.clear();
      event->text = std::move(sax.text);
      return Status::OK();
    case SaxEvent::Type::kEndDocument:
      event->kind = StreamEvent::Kind::kEnd;
      event->name.clear();
      event->text.clear();
      return Status::OK();
  }
  return Status::Internal("unreachable SAX event type");
}

}  // namespace nok
