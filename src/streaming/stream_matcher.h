// Single-pass NoK pattern matching over streaming XML (Sections 1, 4.2
// and 5 / Proposition 1 of the paper).
//
// The stream is consumed once.  Two modes, depending on the query:
//
//   * Rooted mode — the whole pattern is one NoK tree anchored at the
//     document root (e.g. /a/b[c="x"]/d).  The matcher runs Algorithm 1
//     incrementally at the top level: only ONE child-of-root subtree is
//     buffered at a time and is discarded as soon as it has been matched
//     against the frontier.  This realizes Proposition 1's bound: memory
//     is the largest second-level subtree, never the document.
//
//   * Locate mode — the pattern is //T[...] (one NoK tree below a '//'
//     arc from the root).  Matching the paper's "naive approach" for
//     streams, every T-tagged element starts a candidate; the outermost
//     candidate subtree is buffered, all nested candidates inside it are
//     matched from the buffer, and the buffer is dropped.
//
// More general queries (multiple global arcs) are reported NotSupported;
// the paper's streaming claim covers NoK pattern trees.

#ifndef NOKXML_STREAMING_STREAM_MATCHER_H_
#define NOKXML_STREAMING_STREAM_MATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/dewey.h"
#include "streaming/sax_source.h"

namespace nok {

/// Result and work counters of a streaming evaluation.
struct StreamRunStats {
  uint64_t events = 0;              ///< Stream events consumed.
  size_t peak_buffered_nodes = 0;   ///< Max nodes held at once.
  uint64_t candidates = 0;          ///< Candidate subtrees matched.
};

/// Evaluates a path expression over an XML stream in one pass.  Returns
/// the returning node's matches as absolute Dewey IDs (identical to what
/// QueryEngine::Evaluate returns on the stored document).
Result<std::vector<DeweyId>> EvaluateStreaming(const std::string& xpath,
                                               SaxSource* source,
                                               StreamRunStats* stats);

/// Convenience overload parsing the document text directly.
Result<std::vector<DeweyId>> EvaluateStreaming(const std::string& xpath,
                                               const std::string& xml,
                                               StreamRunStats* stats);

}  // namespace nok

#endif  // NOKXML_STREAMING_STREAM_MATCHER_H_
