#include "streaming/stream_matcher.h"

#include <algorithm>

#include "common/logging.h"
#include "nok/logical_matcher.h"
#include "nok/nok_partition.h"
#include "nok/tree_cursor.h"
#include "nok/xpath_parser.h"
#include "xml/escape.h"

namespace nok {

namespace {

// ---------------------------------------------------------------------------
// Buffered subtree + cursor.

/// One buffered subtree node.
struct BufNode {
  std::string name;
  std::string value;
  int parent = -1;
  std::vector<int> children;
  DeweyId dewey = DeweyId::Root();
};

/// A buffered candidate subtree (node 0 is the subtree root).
struct BufTree {
  std::vector<BufNode> nodes;
};

/// Cursor over a BufTree for the NoK matcher.
class BufferedCursor {
 public:
  using NodeT = int;

  explicit BufferedCursor(const BufTree* tree) : tree_(tree) {}

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    const BufNode& n = tree_->nodes[static_cast<size_t>(node)];
    if (n.children.empty()) return std::optional<NodeT>();
    return std::optional<NodeT>(n.children[0]);
  }

  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    const BufNode& n = tree_->nodes[static_cast<size_t>(node)];
    if (n.parent < 0) return std::optional<NodeT>();
    const auto& siblings =
        tree_->nodes[static_cast<size_t>(n.parent)].children;
    auto it = std::find(siblings.begin(), siblings.end(), node);
    NOK_CHECK(it != siblings.end());
    ++it;
    if (it == siblings.end()) return std::optional<NodeT>();
    return std::optional<NodeT>(*it);
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    const BufNode& n = tree_->nodes[static_cast<size_t>(node)];
    return MatchesConstraints(
        pattern, /*is_virtual_root=*/false, n.name,
        [&]() -> Result<std::optional<std::string>> {
          if (n.value.empty()) return std::optional<std::string>();
          return std::optional<std::string>(n.value);
        });
  }

 private:
  const BufTree* tree_;
};

/// Designation vector for a standalone subtree: collect only the
/// returning node (plus the root, which the matcher's bindings expect).
std::vector<bool> SubtreeDesignated(const NokTree& sub) {
  std::vector<bool> designated(sub.nodes.size(), false);
  designated[0] = true;
  if (sub.returning_node >= 0) {
    designated[static_cast<size_t>(sub.returning_node)] = true;
  }
  return designated;
}

// ---------------------------------------------------------------------------
// Shared stream-walking state: depth + absolute Dewey derivation.

struct DeweyTracker {
  std::vector<uint32_t> next_child{0};
  std::vector<uint32_t> path;

  /// Called on every open; returns the node's absolute Dewey ID.
  DeweyId OnOpen() {
    const size_t depth = path.size() + 1;
    if (next_child.size() <= depth + 1) next_child.resize(depth + 2, 0);
    path.push_back(next_child[depth]++);
    next_child[depth + 1] = 0;
    return DeweyId(std::vector<uint32_t>(path));
  }

  void OnClose() { path.pop_back(); }

  size_t depth() const { return path.size(); }
};

// ---------------------------------------------------------------------------
// Buffer builder shared by both modes.

/// Accumulates one subtree from the stream; the caller feeds events while
/// inside the subtree.
struct BufferBuilder {
  BufTree tree;
  std::vector<int> stack;

  void Open(const std::string& name, DeweyId dewey) {
    const int index = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    tree.nodes[static_cast<size_t>(index)].name = name;
    tree.nodes[static_cast<size_t>(index)].dewey = std::move(dewey);
    if (!stack.empty()) {
      tree.nodes[static_cast<size_t>(index)].parent = stack.back();
      tree.nodes[static_cast<size_t>(stack.back())].children.push_back(
          index);
    }
    stack.push_back(index);
  }

  void Text(const std::string& text) {
    NOK_CHECK(!stack.empty());
    AppendTextChunk(&tree.nodes[static_cast<size_t>(stack.back())].value,
                    text);
  }

  /// Returns true when the subtree is complete.
  bool Close() {
    tree.nodes[static_cast<size_t>(stack.back())].value = TrimWhitespace(
        tree.nodes[static_cast<size_t>(stack.back())].value);
    stack.pop_back();
    return stack.empty();
  }
};

/// Collects the returning matches out of a successful sub-match.
void CollectReturning(const NokTree& sub, const BufTree& buffer,
                      const NokMatcher<BufferedCursor>::MatchLists& lists,
                      std::vector<DeweyId>* out) {
  if (sub.returning_node < 0) return;
  for (int node : lists[static_cast<size_t>(sub.returning_node)]) {
    out->push_back(buffer.nodes[static_cast<size_t>(node)].dewey);
  }
}

/// Name-test check without value constraints (cheap pre-filter).
bool TagTest(const PatternNode& pattern, const std::string& name) {
  return pattern.wildcard || pattern.tag == name;
}

// ---------------------------------------------------------------------------
// Rooted mode.

Result<std::vector<DeweyId>> RunRooted(const NokPartition& partition,
                                       SaxSource* source,
                                       StreamRunStats* stats) {
  const NokTree& tree = partition.trees[0];
  NOK_CHECK(tree.root_is_doc_root);
  if (tree.nodes[0].children.size() != 1) {
    return Status::NotSupported(
        "streaming expects a single step below the document root");
  }
  const int p1 = tree.nodes[0].children[0];
  const NokNode& first = tree.nodes[static_cast<size_t>(p1)];
  if (first.pattern->predicate.active()) {
    return Status::NotSupported(
        "streaming cannot evaluate a value predicate on the document root "
        "(the value is only complete at end of stream)");
  }
  const bool returning_is_root = tree.returning_node == p1;

  // Frontier machinery over first's children (one level of Algorithm 1).
  const size_t n = first.children.size();
  std::vector<NokTree> subs;
  std::vector<char> sub_has_returning(n, 0);
  for (size_t i = 0; i < n; ++i) {
    subs.push_back(ExtractNokSubtree(tree, first.children[i]));
    sub_has_returning[i] = subs[i].returning_node >= 0;
  }
  std::vector<int> indegree(n, 0);
  for (auto [a, b] : first.sibling_order) {
    ++indegree[static_cast<size_t>(b)];
  }
  std::vector<char> active(n, 0), satisfied(n, 0);
  for (size_t i = 0; i < n; ++i) active[i] = indegree[i] == 0;
  size_t remaining = n;

  std::vector<DeweyId> results;
  DeweyTracker dewey;
  StreamEvent event;
  bool root_matches = false;
  bool buffering = false;
  BufferBuilder buffer;

  for (;;) {
    NOK_RETURN_IF_ERROR(source->Next(&event));
    if (event.kind == StreamEvent::Kind::kEnd) break;
    ++stats->events;
    switch (event.kind) {
      case StreamEvent::Kind::kOpen: {
        DeweyId id = dewey.OnOpen();
        if (dewey.depth() == 1) {
          root_matches = TagTest(*first.pattern, event.name);
        } else if (root_matches) {
          if (!buffering && dewey.depth() == 2) {
            buffering = true;
          }
          if (buffering) {
            buffer.Open(event.name, std::move(id));
          }
        }
        break;
      }
      case StreamEvent::Kind::kText: {
        if (buffering) buffer.Text(event.text);
        break;
      }
      case StreamEvent::Kind::kClose: {
        if (buffering && buffer.Close()) {
          // One second-level subtree is complete: run the frontier step.
          buffering = false;
          ++stats->candidates;
          stats->peak_buffered_nodes = std::max(
              stats->peak_buffered_nodes, buffer.tree.nodes.size());
          BufferedCursor cursor(&buffer.tree);
          std::vector<size_t> newly_active;
          for (size_t i = 0; i < n; ++i) {
            if (!active[i]) continue;
            const bool retain = sub_has_returning[i] != 0;
            if (satisfied[i] && !retain) continue;
            NokMatcher<BufferedCursor> matcher(&subs[i], &cursor,
                                               SubtreeDesignated(subs[i]));
            NokMatcher<BufferedCursor>::MatchLists lists(
                subs[i].nodes.size());
            NOK_ASSIGN_OR_RETURN(bool ok, matcher.Match(0, &lists));
            if (!ok) continue;
            CollectReturning(subs[i], buffer.tree, lists, &results);
            if (!satisfied[i]) {
              satisfied[i] = 1;
              --remaining;
              for (auto [a, b] : first.sibling_order) {
                if (static_cast<size_t>(a) == i &&
                    --indegree[static_cast<size_t>(b)] == 0) {
                  newly_active.push_back(static_cast<size_t>(b));
                }
              }
            }
            if (!retain) active[i] = 0;
          }
          for (size_t b : newly_active) active[b] = 1;
          buffer = BufferBuilder{};
        }
        dewey.OnClose();
        break;
      }
      case StreamEvent::Kind::kEnd:
        break;
    }
  }

  if (!root_matches || remaining > 0) {
    return std::vector<DeweyId>{};
  }
  if (returning_is_root) {
    results.clear();
    results.push_back(DeweyId::Root());
  }
  std::sort(results.begin(), results.end(),
            [](const DeweyId& a, const DeweyId& b) {
              return a.Compare(b) < 0;
            });
  results.erase(std::unique(results.begin(), results.end()),
                results.end());
  return results;
}

// ---------------------------------------------------------------------------
// Locate mode.

Result<std::vector<DeweyId>> RunLocate(const NokPartition& partition,
                                       SaxSource* source,
                                       StreamRunStats* stats) {
  const NokTree& target = partition.trees[1];
  const PatternNode& root_pattern = *target.nodes[0].pattern;
  const std::vector<bool> designated = SubtreeDesignated(target);

  std::vector<DeweyId> results;
  DeweyTracker dewey;
  StreamEvent event;
  bool buffering = false;
  BufferBuilder buffer;

  for (;;) {
    NOK_RETURN_IF_ERROR(source->Next(&event));
    if (event.kind == StreamEvent::Kind::kEnd) break;
    ++stats->events;
    switch (event.kind) {
      case StreamEvent::Kind::kOpen: {
        DeweyId id = dewey.OnOpen();
        if (!buffering && TagTest(root_pattern, event.name)) {
          buffering = true;
        }
        if (buffering) buffer.Open(event.name, std::move(id));
        break;
      }
      case StreamEvent::Kind::kText:
        if (buffering) buffer.Text(event.text);
        break;
      case StreamEvent::Kind::kClose: {
        if (buffering) {
          if (buffer.Close()) {
            buffering = false;
            stats->peak_buffered_nodes = std::max(
                stats->peak_buffered_nodes, buffer.tree.nodes.size());
            // Match every candidate inside the buffer (including nested
            // occurrences of the target tag).
            BufferedCursor cursor(&buffer.tree);
            for (size_t c = 0; c < buffer.tree.nodes.size(); ++c) {
              if (!TagTest(root_pattern, buffer.tree.nodes[c].name)) {
                continue;
              }
              ++stats->candidates;
              NokMatcher<BufferedCursor> matcher(&target, &cursor,
                                                 designated);
              NokMatcher<BufferedCursor>::MatchLists lists(
                  target.nodes.size());
              NOK_ASSIGN_OR_RETURN(
                  bool ok, matcher.Match(static_cast<int>(c), &lists));
              if (ok) {
                CollectReturning(target, buffer.tree, lists, &results);
              }
            }
            buffer = BufferBuilder{};
          }
        }
        dewey.OnClose();
        break;
      }
      case StreamEvent::Kind::kEnd:
        break;
    }
  }
  std::sort(results.begin(), results.end(),
            [](const DeweyId& a, const DeweyId& b) {
              return a.Compare(b) < 0;
            });
  results.erase(std::unique(results.begin(), results.end()),
                results.end());
  return results;
}

}  // namespace

Result<std::vector<DeweyId>> EvaluateStreaming(const std::string& xpath,
                                               SaxSource* source,
                                               StreamRunStats* stats) {
  StreamRunStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = StreamRunStats{};

  NOK_ASSIGN_OR_RETURN(auto pattern, ParseXPath(xpath));
  if (HasPositionalPredicate(pattern)) {
    return Status::NotSupported(
        "streaming evaluation does not cover positional predicates");
  }
  const NokPartition partition = PartitionPattern(pattern);

  if (partition.trees.size() == 1) {
    return RunRooted(partition, source, stats);
  }
  if (partition.trees.size() == 2 && partition.trees[0].nodes.size() == 1 &&
      partition.trees[0].root_is_doc_root && partition.arcs.size() == 1 &&
      partition.arcs[0].axis == Axis::kDescendant &&
      partition.returning_tree == 1) {
    return RunLocate(partition, source, stats);
  }
  return Status::NotSupported(
      "streaming evaluation covers one NoK pattern tree (rooted, or below "
      "a single leading '//')");
}

Result<std::vector<DeweyId>> EvaluateStreaming(const std::string& xpath,
                                               const std::string& xml,
                                               StreamRunStats* stats) {
  SaxSource source(xml);
  return EvaluateStreaming(xpath, &source, stats);
}

}  // namespace nok
