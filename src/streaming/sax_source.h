// SAX event source for streaming evaluation.
//
// The paper observes (Section 4.2) that the physical string
// representation IS the SAX stream: open tag -> a Sigma symbol, close tag
// -> ')'.  SaxSource produces that stream from raw XML text; the
// streaming matcher consumes it one event at a time without page headers,
// exactly as the paper describes the streaming adaptation.

#ifndef NOKXML_STREAMING_SAX_SOURCE_H_
#define NOKXML_STREAMING_SAX_SOURCE_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "xml/sax_parser.h"

namespace nok {

/// A normalized stream item: element open (with pending attribute
/// pseudo-nodes already expanded), element close, or text.
struct StreamEvent {
  enum class Kind { kOpen, kClose, kText, kEnd };
  Kind kind = Kind::kEnd;
  std::string name;  ///< Tag ("@attr" for attribute nodes) for kOpen.
  std::string text;  ///< Content for kText.
};

/// Converts a document into the normalized event stream (attributes
/// expanded into open/text/close triples, matching the subject-tree
/// model).
class SaxSource {
 public:
  explicit SaxSource(std::string xml) : parser_(std::move(xml)) {}

  /// Produces the next stream event.
  Status Next(StreamEvent* event);

 private:
  SaxParser parser_;
  /// Attribute queue pending emission for the last start element, as
  /// (name, value) pairs; each expands to open+text+close.
  std::vector<std::pair<std::string, std::string>> pending_attrs_;
  size_t pending_index_ = 0;
  int pending_phase_ = 0;  ///< 0 = open, 1 = text, 2 = close.
};

}  // namespace nok

#endif  // NOKXML_STREAMING_SAX_SOURCE_H_
