// Disk-backed B+ tree with variable-length keys and values.
//
// This is the index substrate of the paper (Section 4.1, Figure 3): the
// tag-name index B+t, the hashed-value index B+v and the Dewey-ID index
// B+i are all instances of this tree with different key encodings.
//
// Properties:
//   * duplicate keys are allowed (B+v maps one hash to many Dewey IDs);
//     duplicates are stored contiguously in key order and enumerated with
//     an iterator;
//   * keys compare byte-wise, so callers use order-preserving encodings
//     (big-endian integers, Dewey component vectors);
//   * deletion removes entries without structural rebalancing — the
//     workload this library targets builds indexes in bulk and rebuilds
//     them after heavy updates (Section 4.1 of the paper makes the same
//     call for the Dewey index);
//   * all page access goes through a BufferPool, so index I/O shows up in
//     the experiment counters.

#ifndef NOKXML_BTREE_BTREE_H_
#define NOKXML_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "btree/node.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/pager.h"

namespace nok {

class BTreeIterator;

/// Tuning knobs for a BTree.
struct BTreeOptions {
  uint32_t page_size = kDefaultPageSize;
  size_t pool_frames = 64;
  /// Number of independent buffer-pool LRU shards (see BufferPool).
  size_t pool_shards = 1;
  /// Open the tree for lookups only: Insert/Delete/Flush are rejected
  /// (Flush quietly no-ops so destruction stays I/O-free), which makes
  /// Get/NewIterator safe to call from many threads at once.
  bool read_only = false;
  /// Store pages with CRC-32C trailers (PageFormat::kChecksummed).  Must
  /// match the format the file was created with.
  bool checksum_pages = false;
  /// Fail with Corruption instead of formatting a fresh tree when the file
  /// is empty.  Set when reopening an index that is supposed to exist: an
  /// empty file then means lost data, and silently starting over would
  /// turn a detectable crash scar into a wrong-answers bug.
  bool error_if_empty = false;
};

/// A single B+ tree persisted in one file.
///
/// Thread safety: a tree opened with Options::read_only supports
/// concurrent Get/NewIterator from any number of threads — root_ and
/// num_entries_ are immutable after Open and page access goes through the
/// sharded BufferPool.  A writable tree is single-threaded.
class BTree {
 public:
  using Options = BTreeOptions;

  /// Opens the tree stored in file, or formats a new one if the file is
  /// empty.  Takes ownership of the file.
  static Result<std::unique_ptr<BTree>> Open(std::unique_ptr<File> file,
                                             Options options = {});

  ~BTree();

  /// Inserts (key, value).  Duplicate keys are allowed; entries with equal
  /// keys are adjacent in iteration order.  The combined entry must fit in
  /// a quarter page.
  Status Insert(const Slice& key, const Slice& value);

  /// Returns the value of the first entry with exactly this key.
  Result<std::string> Get(const Slice& key);

  /// Removes the first entry with exactly this key; returns whether an
  /// entry was removed.
  Result<bool> Delete(const Slice& key);

  /// Removes the first entry matching both key and value.
  Result<bool> DeleteExact(const Slice& key, const Slice& value);

  /// Number of live entries.
  uint64_t num_entries() const { return num_entries_; }

  /// On-disk footprint in bytes (what Table 1 reports as |B+x|).
  uint64_t SizeBytes() const { return pager_->SizeBytes(); }

  /// Commits the tree to disk: data pages are written and synced first,
  /// then the meta page (root + entry count + epoch), then synced again —
  /// so a crash between the two syncs leaves the previous meta pointing at
  /// a fully durable tree.
  Status Flush();

  /// Store-generation counter, persisted in the meta page.  The document
  /// store stamps every component with the same epoch on each commit and
  /// cross-checks them at open to detect torn multi-file updates.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) {
    if (epoch_ != epoch) {
      epoch_ = epoch;
      meta_dirty_ = true;
    }
  }

  /// New iterator over the tree.  The iterator pins one leaf at a time;
  /// at most a handful may be live at once (bounded by pool frames).
  BTreeIterator NewIterator();

  BufferPool* buffer_pool() { return pool_.get(); }

 private:
  friend class BTreeIterator;

  BTree(std::unique_ptr<Pager> pager, Options options);

  Status InitNew();
  Status LoadMeta();
  Status WriteMeta();

  struct Promotion {
    std::string key;
    PageId page;
  };

  /// Recursive insert; returns a separator promotion if the node split.
  Result<std::optional<Promotion>> InsertRec(PageId page, const Slice& key,
                                             const Slice& value);

  /// Descends to the leaf that contains the lower bound of key; returns a
  /// pinned handle.  (Go left on separator equality: with duplicates the
  /// first occurrence can only be in that child or further right via the
  /// sibling chain.)
  Result<PageHandle> DescendToLeaf(const Slice& key);
  Result<PageHandle> LeftmostLeaf();

  Options options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  PageId root_ = kInvalidPage;
  uint64_t num_entries_ = 0;
  uint64_t epoch_ = 0;
  bool meta_dirty_ = false;
};

/// Forward iterator over (key, value) entries in key order.
class BTreeIterator {
 public:
  /// Positions at the first entry; the iterator is invalid if the tree is
  /// empty.
  Status SeekToFirst();

  /// Positions at the first entry with key >= target.
  Status Seek(const Slice& target);

  bool Valid() const { return leaf_.valid() && slot_ < leaf_nkeys_; }

  /// Advances; invalid after the last entry.
  Status Next();

  /// Current key/value; views are valid until the next Seek/Next call.
  Slice key() const;
  Slice value() const;

 private:
  friend class BTree;
  explicit BTreeIterator(BTree* tree) : tree_(tree) {}

  /// Skips empty leaves (left behind by deletes) until a live entry.
  Status SkipEmptyLeaves();

  BTree* tree_;
  PageHandle leaf_;
  uint16_t slot_ = 0;
  uint16_t leaf_nkeys_ = 0;
};

}  // namespace nok

#endif  // NOKXML_BTREE_BTREE_H_
