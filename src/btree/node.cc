#include "btree/node.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/logging.h"

namespace nok {

void NodeRef::Init(NodeType type) {
  memset(data_, 0, page_size_);
  data_[0] = static_cast<char>(type);
  set_nkeys(0);
  set_cell_content_start(static_cast<uint16_t>(page_size_));
  set_frag_bytes(0);
  set_right_sibling(kInvalidPage);
}

NodeType NodeRef::type() const {
  return static_cast<NodeType>(static_cast<uint8_t>(data_[0]));
}

uint16_t NodeRef::nkeys() const { return DecodeFixed16(data_ + 2); }
void NodeRef::set_nkeys(uint16_t n) { EncodeFixed16(data_ + 2, n); }

uint16_t NodeRef::cell_content_start() const {
  return DecodeFixed16(data_ + 4);
}
void NodeRef::set_cell_content_start(uint16_t v) {
  EncodeFixed16(data_ + 4, v);
}

uint16_t NodeRef::frag_bytes() const { return DecodeFixed16(data_ + 6); }
void NodeRef::set_frag_bytes(uint16_t v) { EncodeFixed16(data_ + 6, v); }

PageId NodeRef::right_sibling() const { return DecodeFixed32(data_ + 8); }
void NodeRef::set_right_sibling(PageId id) { EncodeFixed32(data_ + 8, id); }

uint16_t NodeRef::SlotOffset(uint16_t i) const {
  return DecodeFixed16(data_ + kHeaderSize + 2 * i);
}
void NodeRef::SetSlotOffset(uint16_t i, uint16_t off) {
  EncodeFixed16(data_ + kHeaderSize + 2 * i, off);
}

void NodeRef::ParseCell(uint16_t off, Slice* key, Slice* value,
                        PageId* child) const {
  const char* p = data_ + off;
  const char* limit = data_ + page_size_;
  uint32_t key_len = 0;
  p = GetVarint32Ptr(p, limit, &key_len);
  NOK_CHECK(p != nullptr);
  *key = Slice(p, key_len);
  p += key_len;
  if (is_leaf()) {
    uint32_t val_len = 0;
    p = GetVarint32Ptr(p, limit, &val_len);
    NOK_CHECK(p != nullptr);
    if (value != nullptr) *value = Slice(p, val_len);
  } else {
    if (child != nullptr) *child = DecodeFixed32(p);
  }
}

uint32_t NodeRef::CellBytes(uint16_t off) const {
  const char* p = data_ + off;
  const char* limit = data_ + page_size_;
  uint32_t key_len = 0;
  const char* q = GetVarint32Ptr(p, limit, &key_len);
  NOK_CHECK(q != nullptr);
  q += key_len;
  if (is_leaf()) {
    uint32_t val_len = 0;
    q = GetVarint32Ptr(q, limit, &val_len);
    NOK_CHECK(q != nullptr);
    q += val_len;
  } else {
    q += 4;
  }
  return static_cast<uint32_t>(q - p);
}

Slice NodeRef::KeyAt(uint16_t i) const {
  NOK_CHECK(i < nkeys());
  Slice key;
  ParseCell(SlotOffset(i), &key, nullptr, nullptr);
  return key;
}

Slice NodeRef::ValueAt(uint16_t i) const {
  NOK_CHECK(i < nkeys() && is_leaf());
  Slice key, value;
  ParseCell(SlotOffset(i), &key, &value, nullptr);
  return value;
}

PageId NodeRef::ChildAt(uint16_t i) const {
  NOK_CHECK(i < nkeys() && !is_leaf());
  Slice key;
  PageId child = kInvalidPage;
  ParseCell(SlotOffset(i), &key, nullptr, &child);
  return child;
}

void NodeRef::SetChildAt(uint16_t i, PageId child) {
  NOK_CHECK(i < nkeys() && !is_leaf());
  uint16_t off = SlotOffset(i);
  const char* p = data_ + off;
  const char* limit = data_ + page_size_;
  uint32_t key_len = 0;
  const char* q = GetVarint32Ptr(p, limit, &key_len);
  NOK_CHECK(q != nullptr);
  EncodeFixed32(data_ + (q - data_) + key_len, child);
}

uint16_t NodeRef::LowerBound(const Slice& key) const {
  uint16_t lo = 0, hi = nkeys();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (KeyAt(mid).compare(key) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t NodeRef::UpperBound(const Slice& key) const {
  uint16_t lo = 0, hi = nkeys();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (KeyAt(mid).compare(key) <= 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t NodeRef::LeafCellSize(const Slice& key, const Slice& value) {
  return static_cast<uint32_t>(
             static_cast<size_t>(VarintLength(key.size())) + key.size() +
             static_cast<size_t>(VarintLength(value.size())) +
             value.size()) +
         2;  // +2 for the slot entry.
}

uint32_t NodeRef::InternalCellSize(const Slice& key) {
  return static_cast<uint32_t>(
             static_cast<size_t>(VarintLength(key.size())) + key.size() +
             4) +
         2;
}

uint32_t NodeRef::FreeSpace() const {
  uint32_t slots_end = kHeaderSize + 2u * nkeys();
  return cell_content_start() - slots_end;
}

uint32_t NodeRef::FreeSpaceAfterCompact() const {
  return FreeSpace() + frag_bytes();
}

uint32_t NodeRef::UsedBytes() const {
  return page_size_ - FreeSpaceAfterCompact();
}

uint16_t NodeRef::AppendCell(const char* bytes, uint32_t n) {
  uint16_t off = static_cast<uint16_t>(cell_content_start() - n);
  memcpy(data_ + off, bytes, n);
  set_cell_content_start(off);
  return off;
}

void NodeRef::Compact() {
  // Collect live cells, then rewrite the cell area densely.
  const uint16_t n = nkeys();
  std::string cells;
  cells.reserve(page_size_);
  std::vector<uint32_t> sizes(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t off = SlotOffset(i);
    uint32_t sz = CellBytes(off);
    sizes[i] = sz;
    cells.append(data_ + off, sz);
  }
  uint16_t write = static_cast<uint16_t>(page_size_);
  size_t pos = 0;
  for (uint16_t i = 0; i < n; ++i) {
    write = static_cast<uint16_t>(write - sizes[i]);
    memcpy(data_ + write, cells.data() + pos, sizes[i]);
    // Slots keep key order; cells are laid out in reverse so that slot 0's
    // cell sits highest.  Any dense layout is fine.
    SetSlotOffset(i, write);
    pos += sizes[i];
  }
  set_cell_content_start(write);
  set_frag_bytes(0);
}

void NodeRef::InsertLeafCell(uint16_t i, const Slice& key,
                             const Slice& value) {
  NOK_CHECK(is_leaf() && i <= nkeys());
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  PutVarint32(&cell, static_cast<uint32_t>(value.size()));
  cell.append(value.data(), value.size());
  const uint32_t need = static_cast<uint32_t>(cell.size()) + 2;
  if (FreeSpace() < need) {
    NOK_CHECK(FreeSpaceAfterCompact() >= need);
    Compact();
  }
  uint16_t off = AppendCell(cell.data(), static_cast<uint32_t>(cell.size()));
  const uint16_t n = nkeys();
  memmove(data_ + kHeaderSize + 2 * (i + 1), data_ + kHeaderSize + 2 * i,
          2 * static_cast<size_t>(n - i));
  SetSlotOffset(i, off);
  set_nkeys(static_cast<uint16_t>(n + 1));
}

void NodeRef::InsertInternalCell(uint16_t i, const Slice& key,
                                 PageId child) {
  NOK_CHECK(!is_leaf() && i <= nkeys());
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  PutFixed32(&cell, child);
  const uint32_t need = static_cast<uint32_t>(cell.size()) + 2;
  if (FreeSpace() < need) {
    NOK_CHECK(FreeSpaceAfterCompact() >= need);
    Compact();
  }
  uint16_t off = AppendCell(cell.data(), static_cast<uint32_t>(cell.size()));
  const uint16_t n = nkeys();
  memmove(data_ + kHeaderSize + 2 * (i + 1), data_ + kHeaderSize + 2 * i,
          2 * static_cast<size_t>(n - i));
  SetSlotOffset(i, off);
  set_nkeys(static_cast<uint16_t>(n + 1));
}

void NodeRef::RemoveCell(uint16_t i) {
  const uint16_t n = nkeys();
  NOK_CHECK(i < n);
  uint16_t off = SlotOffset(i);
  uint32_t dead = CellBytes(off);
  memmove(data_ + kHeaderSize + 2 * i, data_ + kHeaderSize + 2 * (i + 1),
          2 * static_cast<size_t>(n - i - 1));
  set_nkeys(static_cast<uint16_t>(n - 1));
  // The slot's 2 bytes come back automatically via nkeys; only the cell
  // bytes become fragmentation.
  set_frag_bytes(static_cast<uint16_t>(frag_bytes() + dead));
}

}  // namespace nok
