// Slotted-page node layout for the B+ tree.
//
// A node is one page.  Layout:
//
//   [0]   uint8   type (kLeaf | kInternal)
//   [1]   uint8   reserved
//   [2]   uint16  nkeys
//   [4]   uint16  cell_content_start (lowest cell byte offset)
//   [6]   uint16  frag_bytes (dead cell bytes, reclaimed by Compact)
//   [8]   uint32  right_sibling (leaf) / leftmost_child (internal)
//   [12]  uint16  slot[nkeys]      -- sorted by key, each points at a cell
//   ...   free space ...
//   cells, allocated downward from the end of the page
//
// Leaf cell:      varint key_len, key bytes, varint val_len, val bytes
// Internal cell:  varint key_len, key bytes, uint32 child_page
//
// Internal nodes hold nkeys separators and nkeys+1 children: the leftmost
// child in the header, child i of cell i covering keys >= separator i.
// The split invariant is "separator = first key of the right node", so with
// duplicate keys a lookup must descend left on equality and scan right via
// the leaf sibling chain (see btree.cc).

#ifndef NOKXML_BTREE_NODE_H_
#define NOKXML_BTREE_NODE_H_

#include <cstdint>

#include "common/slice.h"
#include "storage/page.h"

namespace nok {

enum class NodeType : uint8_t { kLeaf = 1, kInternal = 2 };

/// View over a B+ tree node page.  Does not own the buffer.
class NodeRef {
 public:
  NodeRef(char* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Formats an empty node of the given type in the buffer.
  void Init(NodeType type);

  NodeType type() const;
  bool is_leaf() const { return type() == NodeType::kLeaf; }
  uint16_t nkeys() const;

  /// Leaf: next leaf in key order (kInvalidPage at the end).
  PageId right_sibling() const;
  void set_right_sibling(PageId id);
  /// Internal: child covering keys below the first separator.
  PageId leftmost_child() const { return right_sibling(); }
  void set_leftmost_child(PageId id) { set_right_sibling(id); }

  /// Key of cell i (view into the page).
  Slice KeyAt(uint16_t i) const;
  /// Leaf only: value of cell i (view into the page).
  Slice ValueAt(uint16_t i) const;
  /// Internal only: child page of cell i.
  PageId ChildAt(uint16_t i) const;
  /// Internal only: overwrites the child page of cell i in place.
  void SetChildAt(uint16_t i, PageId child);

  /// First slot with key >= target (lower bound), in [0, nkeys].
  uint16_t LowerBound(const Slice& key) const;
  /// First slot with key > target (upper bound), in [0, nkeys].
  uint16_t UpperBound(const Slice& key) const;

  /// Bytes a new cell would occupy (cell + slot entry).
  static uint32_t LeafCellSize(const Slice& key, const Slice& value);
  static uint32_t InternalCellSize(const Slice& key);

  /// Free bytes available without compaction.
  uint32_t FreeSpace() const;
  /// Free bytes available after compaction.
  uint32_t FreeSpaceAfterCompact() const;

  /// Inserts a leaf cell at slot i; caller guarantees space (compacts if
  /// fragmented space suffices).
  void InsertLeafCell(uint16_t i, const Slice& key, const Slice& value);
  /// Inserts an internal cell at slot i.
  void InsertInternalCell(uint16_t i, const Slice& key, PageId child);

  /// Removes cell i (key order preserved; bytes become fragmentation).
  void RemoveCell(uint16_t i);

  /// Rewrites the page with cells densely packed (drops fragmentation).
  void Compact();

  /// Bytes used by live cells + slots + header (i.e. what a merged page
  /// would occupy).
  uint32_t UsedBytes() const;

  uint32_t page_size() const { return page_size_; }

 private:
  static constexpr uint32_t kHeaderSize = 12;

  uint16_t SlotOffset(uint16_t i) const;
  void SetSlotOffset(uint16_t i, uint16_t off);
  uint16_t cell_content_start() const;
  void set_cell_content_start(uint16_t v);
  uint16_t frag_bytes() const;
  void set_frag_bytes(uint16_t v);
  void set_nkeys(uint16_t n);

  /// Parses the cell at byte offset off; returns key and (leaf) value or
  /// (internal) child.
  void ParseCell(uint16_t off, Slice* key, Slice* value,
                 PageId* child) const;
  /// Total byte size of the cell at offset off.
  uint32_t CellBytes(uint16_t off) const;

  /// Appends raw cell bytes into the cell area; returns the cell offset.
  uint16_t AppendCell(const char* bytes, uint32_t n);

  char* data_;
  uint32_t page_size_;
};

}  // namespace nok

#endif  // NOKXML_BTREE_NODE_H_
