#include "btree/btree.h"

#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/logging.h"

namespace nok {

namespace {
constexpr uint64_t kMagic = 0x4e4f4b42545245ull;  // "NOKBTRE"
constexpr PageId kMetaPage = 0;
}  // namespace

BTree::BTree(std::unique_ptr<File> file, Options options)
    : options_(options) {
  pager_ = std::make_unique<Pager>(std::move(file), options.page_size);
  pool_ = std::make_unique<BufferPool>(pager_.get(), options.pool_frames);
}

Result<std::unique_ptr<BTree>> BTree::Open(std::unique_ptr<File> file,
                                           Options options) {
  const bool fresh = file->Size() == 0;
  std::unique_ptr<BTree> tree(new BTree(std::move(file), options));
  if (fresh) {
    NOK_RETURN_IF_ERROR(tree->InitNew());
  } else {
    NOK_RETURN_IF_ERROR(tree->LoadMeta());
  }
  return tree;
}

BTree::~BTree() {
  Status s = Flush();
  if (!s.ok()) {
    NOK_LOG(Error) << "BTree flush on destruction failed: " << s.ToString();
  }
}

Status BTree::InitNew() {
  PageId meta_id = kInvalidPage, root_id = kInvalidPage;
  NOK_RETURN_IF_ERROR(pager_->AllocatePage(&meta_id));
  NOK_CHECK(meta_id == kMetaPage);
  NOK_RETURN_IF_ERROR(pager_->AllocatePage(&root_id));
  root_ = root_id;
  {
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(root_id));
    NodeRef node(handle.mutable_data(), options_.page_size);
    node.Init(NodeType::kLeaf);
    handle.MarkDirty();
  }
  num_entries_ = 0;
  meta_dirty_ = true;
  return WriteMeta();
}

Status BTree::LoadMeta() {
  NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(kMetaPage));
  const char* p = handle.data();
  if (DecodeFixed64(p) != kMagic) {
    return Status::Corruption("bad btree magic");
  }
  root_ = DecodeFixed32(p + 8);
  num_entries_ = DecodeFixed64(p + 12);
  return Status::OK();
}

Status BTree::WriteMeta() {
  NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(kMetaPage));
  char* p = handle.mutable_data();
  memset(p, 0, options_.page_size);
  EncodeFixed64(p, kMagic);
  EncodeFixed32(p + 8, root_);
  EncodeFixed64(p + 12, num_entries_);
  handle.MarkDirty();
  meta_dirty_ = false;
  return Status::OK();
}

Status BTree::Flush() {
  if (meta_dirty_) {
    NOK_RETURN_IF_ERROR(WriteMeta());
  }
  NOK_RETURN_IF_ERROR(pool_->FlushAll());
  return pager_->Sync();
}

Status BTree::Insert(const Slice& key, const Slice& value) {
  if (NodeRef::LeafCellSize(key, value) > options_.page_size / 4) {
    return Status::InvalidArgument("entry too large for page size");
  }
  NOK_ASSIGN_OR_RETURN(auto promo, InsertRec(root_, key, value));
  if (promo.has_value()) {
    // Root split: grow the tree by one level.
    PageId new_root = kInvalidPage;
    NOK_RETURN_IF_ERROR(pager_->AllocatePage(&new_root));
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(new_root));
    NodeRef node(handle.mutable_data(), options_.page_size);
    node.Init(NodeType::kInternal);
    node.set_leftmost_child(root_);
    node.InsertInternalCell(0, Slice(promo->key), promo->page);
    handle.MarkDirty();
    root_ = new_root;
  }
  ++num_entries_;
  meta_dirty_ = true;
  return Status::OK();
}

Result<std::optional<BTree::Promotion>> BTree::InsertRec(
    PageId page, const Slice& key, const Slice& value) {
  NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
  NodeRef node(handle.mutable_data(), options_.page_size);

  if (node.is_leaf()) {
    const uint16_t pos = node.UpperBound(key);
    const uint32_t need = NodeRef::LeafCellSize(key, value);
    if (node.FreeSpaceAfterCompact() >= need) {
      node.InsertLeafCell(pos, key, value);
      handle.MarkDirty();
      return std::optional<Promotion>();
    }
    // Split the leaf: move the byte-wise upper half to a new right node.
    PageId right_id = kInvalidPage;
    NOK_RETURN_IF_ERROR(pager_->AllocatePage(&right_id));
    NOK_ASSIGN_OR_RETURN(auto right_handle, pool_->Fetch(right_id));
    NodeRef right(right_handle.mutable_data(), options_.page_size);
    right.Init(NodeType::kLeaf);

    const uint16_t n = node.nkeys();
    // Choose the split index so the left half holds ~half of the bytes.
    uint32_t total = node.UsedBytes();
    uint32_t acc = 0;
    uint16_t split = n;
    for (uint16_t i = 0; i < n; ++i) {
      acc += NodeRef::LeafCellSize(node.KeyAt(i), node.ValueAt(i));
      if (acc >= total / 2) {
        split = static_cast<uint16_t>(i + 1);
        break;
      }
    }
    if (split >= n) split = static_cast<uint16_t>(n - 1);
    if (split == 0) split = 1;

    for (uint16_t i = split; i < n; ++i) {
      right.InsertLeafCell(static_cast<uint16_t>(i - split), node.KeyAt(i),
                           node.ValueAt(i));
    }
    for (uint16_t i = n; i > split; --i) {
      node.RemoveCell(static_cast<uint16_t>(i - 1));
    }
    right.set_right_sibling(node.right_sibling());
    node.set_right_sibling(right_id);

    std::string separator = right.KeyAt(0).ToString();
    // Insert the pending entry on the side its position falls in; ties go
    // left, consistent with the descent rule.
    if (pos <= split) {
      node.InsertLeafCell(pos, key, value);
    } else {
      right.InsertLeafCell(static_cast<uint16_t>(pos - split), key, value);
    }
    handle.MarkDirty();
    right_handle.MarkDirty();
    return std::optional<Promotion>(Promotion{std::move(separator),
                                              right_id});
  }

  // Internal node: descend left on separator equality.
  const uint16_t j = node.LowerBound(key);
  const PageId child = (j == 0) ? node.leftmost_child()
                                : node.ChildAt(static_cast<uint16_t>(j - 1));
  NOK_ASSIGN_OR_RETURN(auto child_promo, InsertRec(child, key, value));
  if (!child_promo.has_value()) return std::optional<Promotion>();

  // The split child's new right sibling becomes child j (slot position j).
  const Slice promo_key(child_promo->key);
  const uint32_t need = NodeRef::InternalCellSize(promo_key);
  if (node.FreeSpaceAfterCompact() >= need) {
    node.InsertInternalCell(j, promo_key, child_promo->page);
    handle.MarkDirty();
    return std::optional<Promotion>();
  }

  // Split this internal node around the middle separator, which moves up.
  PageId right_id = kInvalidPage;
  NOK_RETURN_IF_ERROR(pager_->AllocatePage(&right_id));
  NOK_ASSIGN_OR_RETURN(auto right_handle, pool_->Fetch(right_id));
  NodeRef right(right_handle.mutable_data(), options_.page_size);
  right.Init(NodeType::kInternal);

  const uint16_t n = node.nkeys();
  const uint16_t mid = static_cast<uint16_t>(n / 2);
  std::string up_key = node.KeyAt(mid).ToString();
  right.set_leftmost_child(node.ChildAt(mid));
  for (uint16_t i = static_cast<uint16_t>(mid + 1); i < n; ++i) {
    right.InsertInternalCell(static_cast<uint16_t>(i - mid - 1),
                             node.KeyAt(i), node.ChildAt(i));
  }
  for (uint16_t i = n; i > mid; --i) {
    node.RemoveCell(static_cast<uint16_t>(i - 1));
  }

  if (j <= mid) {
    node.InsertInternalCell(j, promo_key, child_promo->page);
  } else {
    right.InsertInternalCell(static_cast<uint16_t>(j - mid - 1), promo_key,
                             child_promo->page);
  }
  handle.MarkDirty();
  right_handle.MarkDirty();
  return std::optional<Promotion>(Promotion{std::move(up_key), right_id});
}

Result<PageHandle> BTree::DescendToLeaf(const Slice& key) {
  PageId page = root_;
  for (;;) {
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
    NodeRef node(handle.mutable_data(), options_.page_size);
    if (node.is_leaf()) return handle;
    const uint16_t j = node.LowerBound(key);
    page = (j == 0) ? node.leftmost_child()
                    : node.ChildAt(static_cast<uint16_t>(j - 1));
  }
}

Result<PageHandle> BTree::LeftmostLeaf() {
  PageId page = root_;
  for (;;) {
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
    NodeRef node(handle.mutable_data(), options_.page_size);
    if (node.is_leaf()) return handle;
    page = node.leftmost_child();
  }
}

Result<std::string> BTree::Get(const Slice& key) {
  BTreeIterator it = NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  if (it.Valid() && it.key() == key) {
    return it.value().ToString();
  }
  return Status::NotFound("key not found");
}

Result<bool> BTree::Delete(const Slice& key) {
  BTreeIterator it = NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  if (!it.Valid() || it.key() != key) return false;
  NodeRef node(it.leaf_.mutable_data(), options_.page_size);
  node.RemoveCell(it.slot_);
  it.leaf_.MarkDirty();
  --num_entries_;
  meta_dirty_ = true;
  return true;
}

Result<bool> BTree::DeleteExact(const Slice& key, const Slice& value) {
  BTreeIterator it = NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  while (it.Valid() && it.key() == key) {
    if (it.value() == value) {
      NodeRef node(it.leaf_.mutable_data(), options_.page_size);
      node.RemoveCell(it.slot_);
      it.leaf_.MarkDirty();
      --num_entries_;
      meta_dirty_ = true;
      return true;
    }
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return false;
}

BTreeIterator BTree::NewIterator() { return BTreeIterator(this); }

Status BTreeIterator::SeekToFirst() {
  NOK_ASSIGN_OR_RETURN(leaf_, tree_->LeftmostLeaf());
  slot_ = 0;
  leaf_nkeys_ = NodeRef(leaf_.mutable_data(), tree_->options_.page_size)
                    .nkeys();
  return SkipEmptyLeaves();
}

Status BTreeIterator::Seek(const Slice& target) {
  NOK_ASSIGN_OR_RETURN(leaf_, tree_->DescendToLeaf(target));
  NodeRef node(leaf_.mutable_data(), tree_->options_.page_size);
  slot_ = node.LowerBound(target);
  leaf_nkeys_ = node.nkeys();
  return SkipEmptyLeaves();
}

Status BTreeIterator::Next() {
  NOK_CHECK(Valid());
  ++slot_;
  return SkipEmptyLeaves();
}

Status BTreeIterator::SkipEmptyLeaves() {
  while (leaf_.valid() && slot_ >= leaf_nkeys_) {
    NodeRef node(leaf_.mutable_data(), tree_->options_.page_size);
    const PageId next = node.right_sibling();
    leaf_.Release();
    if (next == kInvalidPage) return Status::OK();  // End: invalid.
    NOK_ASSIGN_OR_RETURN(leaf_, tree_->pool_->Fetch(next));
    NodeRef next_node(leaf_.mutable_data(), tree_->options_.page_size);
    slot_ = 0;
    leaf_nkeys_ = next_node.nkeys();
  }
  return Status::OK();
}

Slice BTreeIterator::key() const {
  NOK_CHECK(Valid());
  NodeRef node(const_cast<char*>(leaf_.data()), tree_->options_.page_size);
  return node.KeyAt(slot_);
}

Slice BTreeIterator::value() const {
  NOK_CHECK(Valid());
  NodeRef node(const_cast<char*>(leaf_.data()), tree_->options_.page_size);
  return node.ValueAt(slot_);
}

}  // namespace nok
