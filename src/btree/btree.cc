#include "btree/btree.h"

#include <vector>

#include "common/coding.h"
#include "common/logging.h"

namespace nok {

namespace {
constexpr uint64_t kMagic = 0x4e4f4b42545245ull;  // "NOKBTRE"
constexpr PageId kMetaPage = 0;
// Meta page layout: magic @0, root @8, num_entries @12, format version
// @20, epoch @24.  Version 0 is the pre-versioning layout (raw pages,
// epoch 0); 1 is raw with version/epoch fields; 2 is checksummed.
constexpr uint32_t kMetaVersionOffset = 20;
constexpr uint32_t kMetaEpochOffset = 24;
constexpr uint32_t kFormatVersionRaw = 1;
constexpr uint32_t kFormatVersionChecksummed = 2;
}  // namespace

BTree::BTree(std::unique_ptr<Pager> pager, Options options)
    : options_(options), pager_(std::move(pager)) {
  pool_ = std::make_unique<BufferPool>(pager_.get(), options.pool_frames,
                                       options.pool_shards);
}

Result<std::unique_ptr<BTree>> BTree::Open(std::unique_ptr<File> file,
                                           Options options) {
  const bool fresh = file->Size() == 0;
  if (fresh && options.read_only) {
    return Status::InvalidArgument(
        "cannot open an empty btree file read-only: formatting a fresh "
        "tree requires write access");
  }
  if (fresh && options.error_if_empty) {
    return Status::Corruption(
        "index file is empty but was expected to hold a tree; it was lost "
        "or truncated");
  }
  NOK_ASSIGN_OR_RETURN(
      auto pager,
      Pager::Open(std::move(file), options.page_size,
                  options.checksum_pages ? PageFormat::kChecksummed
                                         : PageFormat::kRaw));
  std::unique_ptr<BTree> tree(new BTree(std::move(pager), options));
  if (fresh) {
    NOK_RETURN_IF_ERROR(tree->InitNew());
  } else {
    NOK_RETURN_IF_ERROR(tree->LoadMeta());
  }
  return tree;
}

BTree::~BTree() {
  Status s = Flush();
  if (!s.ok()) {
    NOK_LOG(Error) << "BTree flush on destruction failed: " << s.ToString();
  }
}

Status BTree::InitNew() {
  PageId meta_id = kInvalidPage, root_id = kInvalidPage;
  NOK_RETURN_IF_ERROR(pager_->AllocatePage(&meta_id));
  NOK_CHECK(meta_id == kMetaPage);
  NOK_RETURN_IF_ERROR(pager_->AllocatePage(&root_id));
  root_ = root_id;
  {
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(root_id));
    NodeRef node(handle.mutable_data(), options_.page_size);
    node.Init(NodeType::kLeaf);
    handle.MarkDirty();
  }
  num_entries_ = 0;
  meta_dirty_ = true;
  return WriteMeta();
}

Status BTree::LoadMeta() {
  if (pager_->page_count() == 0) {
    return Status::Corruption("btree file has no meta page");
  }
  std::vector<char> buf(options_.page_size);
  NOK_RETURN_IF_ERROR(pager_->ReadPage(kMetaPage, buf.data()));
  const char* p = buf.data();
  if (DecodeFixed64(p) != kMagic) {
    return Status::Corruption("bad btree magic");
  }
  root_ = DecodeFixed32(p + 8);
  num_entries_ = DecodeFixed64(p + 12);
  const uint32_t version = DecodeFixed32(p + kMetaVersionOffset);
  const uint32_t expect = options_.checksum_pages
                              ? kFormatVersionChecksummed
                              : kFormatVersionRaw;
  // Version 0 files predate the version field; they are raw.
  if (version != 0 && version != expect) {
    return Status::Corruption("btree format version " +
                              std::to_string(version) +
                              " does not match the requested page format");
  }
  epoch_ = DecodeFixed64(p + kMetaEpochOffset);
  if (root_ == kInvalidPage || root_ >= pager_->page_count()) {
    return Status::Corruption("btree root page " + std::to_string(root_) +
                              " is out of range (file has " +
                              std::to_string(pager_->page_count()) +
                              " pages); the meta page is damaged");
  }
  return Status::OK();
}

// Meta goes through the pager directly, not the pool, so Flush can order
// it strictly after the data pages reach disk.
Status BTree::WriteMeta() {
  std::vector<char> buf(options_.page_size, '\0');
  char* p = buf.data();
  EncodeFixed64(p, kMagic);
  EncodeFixed32(p + 8, root_);
  EncodeFixed64(p + 12, num_entries_);
  EncodeFixed32(p + kMetaVersionOffset, options_.checksum_pages
                                            ? kFormatVersionChecksummed
                                            : kFormatVersionRaw);
  EncodeFixed64(p + kMetaEpochOffset, epoch_);
  NOK_RETURN_IF_ERROR(pager_->WritePage(kMetaPage, buf.data()));
  meta_dirty_ = false;
  return Status::OK();
}

Status BTree::Flush() {
  // A read-only tree has nothing dirty by construction; skip the flush
  // machinery so destruction of a shared reader handle stays I/O-free.
  if (options_.read_only) return Status::OK();
  // Data pages first, synced, then the meta page, synced: the meta is the
  // commit record, so a crash anywhere in this sequence leaves either the
  // old meta (pointing at the old, durable tree) or the new meta (pointing
  // at the new, durable tree) — never a pointer into unsynced pages.
  NOK_RETURN_IF_ERROR(pool_->FlushAll());
  NOK_RETURN_IF_ERROR(pager_->Sync());
  if (meta_dirty_) {
    NOK_RETURN_IF_ERROR(WriteMeta());
    NOK_RETURN_IF_ERROR(pager_->Sync());
  }
  return Status::OK();
}

Status BTree::Insert(const Slice& key, const Slice& value) {
  if (options_.read_only) {
    return Status::InvalidArgument("Insert on a btree opened read-only");
  }
  if (NodeRef::LeafCellSize(key, value) > options_.page_size / 4) {
    return Status::InvalidArgument("entry too large for page size");
  }
  NOK_ASSIGN_OR_RETURN(auto promo, InsertRec(root_, key, value));
  if (promo.has_value()) {
    // Root split: grow the tree by one level.
    PageId new_root = kInvalidPage;
    NOK_RETURN_IF_ERROR(pager_->AllocatePage(&new_root));
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(new_root));
    NodeRef node(handle.mutable_data(), options_.page_size);
    node.Init(NodeType::kInternal);
    node.set_leftmost_child(root_);
    node.InsertInternalCell(0, Slice(promo->key), promo->page);
    handle.MarkDirty();
    root_ = new_root;
  }
  ++num_entries_;
  meta_dirty_ = true;
  return Status::OK();
}

Result<std::optional<BTree::Promotion>> BTree::InsertRec(
    PageId page, const Slice& key, const Slice& value) {
  NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
  NodeRef node(handle.mutable_data(), options_.page_size);

  if (node.is_leaf()) {
    const uint16_t pos = node.UpperBound(key);
    const uint32_t need = NodeRef::LeafCellSize(key, value);
    if (node.FreeSpaceAfterCompact() >= need) {
      node.InsertLeafCell(pos, key, value);
      handle.MarkDirty();
      return std::optional<Promotion>();
    }
    // Split the leaf: move the byte-wise upper half to a new right node.
    PageId right_id = kInvalidPage;
    NOK_RETURN_IF_ERROR(pager_->AllocatePage(&right_id));
    NOK_ASSIGN_OR_RETURN(auto right_handle, pool_->Fetch(right_id));
    NodeRef right(right_handle.mutable_data(), options_.page_size);
    right.Init(NodeType::kLeaf);

    const uint16_t n = node.nkeys();
    // Choose the split index so the left half holds ~half of the bytes.
    uint32_t total = node.UsedBytes();
    uint32_t acc = 0;
    uint16_t split = n;
    for (uint16_t i = 0; i < n; ++i) {
      acc += NodeRef::LeafCellSize(node.KeyAt(i), node.ValueAt(i));
      if (acc >= total / 2) {
        split = static_cast<uint16_t>(i + 1);
        break;
      }
    }
    if (split >= n) split = static_cast<uint16_t>(n - 1);
    if (split == 0) split = 1;

    for (uint16_t i = split; i < n; ++i) {
      right.InsertLeafCell(static_cast<uint16_t>(i - split), node.KeyAt(i),
                           node.ValueAt(i));
    }
    for (uint16_t i = n; i > split; --i) {
      node.RemoveCell(static_cast<uint16_t>(i - 1));
    }
    right.set_right_sibling(node.right_sibling());
    node.set_right_sibling(right_id);

    std::string separator = right.KeyAt(0).ToString();
    // Insert the pending entry on the side its position falls in; ties go
    // left, consistent with the descent rule.
    if (pos <= split) {
      node.InsertLeafCell(pos, key, value);
    } else {
      right.InsertLeafCell(static_cast<uint16_t>(pos - split), key, value);
    }
    handle.MarkDirty();
    right_handle.MarkDirty();
    return std::optional<Promotion>(Promotion{std::move(separator),
                                              right_id});
  }

  // Internal node: descend left on separator equality.
  const uint16_t j = node.LowerBound(key);
  const PageId child = (j == 0) ? node.leftmost_child()
                                : node.ChildAt(static_cast<uint16_t>(j - 1));
  NOK_ASSIGN_OR_RETURN(auto child_promo, InsertRec(child, key, value));
  if (!child_promo.has_value()) return std::optional<Promotion>();

  // The split child's new right sibling becomes child j (slot position j).
  const Slice promo_key(child_promo->key);
  const uint32_t need = NodeRef::InternalCellSize(promo_key);
  if (node.FreeSpaceAfterCompact() >= need) {
    node.InsertInternalCell(j, promo_key, child_promo->page);
    handle.MarkDirty();
    return std::optional<Promotion>();
  }

  // Split this internal node around the middle separator, which moves up.
  PageId right_id = kInvalidPage;
  NOK_RETURN_IF_ERROR(pager_->AllocatePage(&right_id));
  NOK_ASSIGN_OR_RETURN(auto right_handle, pool_->Fetch(right_id));
  NodeRef right(right_handle.mutable_data(), options_.page_size);
  right.Init(NodeType::kInternal);

  const uint16_t n = node.nkeys();
  const uint16_t mid = static_cast<uint16_t>(n / 2);
  std::string up_key = node.KeyAt(mid).ToString();
  right.set_leftmost_child(node.ChildAt(mid));
  for (uint16_t i = static_cast<uint16_t>(mid + 1); i < n; ++i) {
    right.InsertInternalCell(static_cast<uint16_t>(i - mid - 1),
                             node.KeyAt(i), node.ChildAt(i));
  }
  for (uint16_t i = n; i > mid; --i) {
    node.RemoveCell(static_cast<uint16_t>(i - 1));
  }

  if (j <= mid) {
    node.InsertInternalCell(j, promo_key, child_promo->page);
  } else {
    right.InsertInternalCell(static_cast<uint16_t>(j - mid - 1), promo_key,
                             child_promo->page);
  }
  handle.MarkDirty();
  right_handle.MarkDirty();
  return std::optional<Promotion>(Promotion{std::move(up_key), right_id});
}

Result<PageHandle> BTree::DescendToLeaf(const Slice& key) {
  PageId page = root_;
  for (;;) {
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
    NodeRef node(handle.mutable_data(), options_.page_size);
    if (node.is_leaf()) return handle;
    const uint16_t j = node.LowerBound(key);
    page = (j == 0) ? node.leftmost_child()
                    : node.ChildAt(static_cast<uint16_t>(j - 1));
  }
}

Result<PageHandle> BTree::LeftmostLeaf() {
  PageId page = root_;
  for (;;) {
    NOK_ASSIGN_OR_RETURN(auto handle, pool_->Fetch(page));
    NodeRef node(handle.mutable_data(), options_.page_size);
    if (node.is_leaf()) return handle;
    page = node.leftmost_child();
  }
}

Result<std::string> BTree::Get(const Slice& key) {
  BTreeIterator it = NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  if (it.Valid() && it.key() == key) {
    return it.value().ToString();
  }
  return Status::NotFound("key not found");
}

Result<bool> BTree::Delete(const Slice& key) {
  if (options_.read_only) {
    return Status::InvalidArgument("Delete on a btree opened read-only");
  }
  BTreeIterator it = NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  if (!it.Valid() || it.key() != key) return false;
  NodeRef node(it.leaf_.mutable_data(), options_.page_size);
  node.RemoveCell(it.slot_);
  it.leaf_.MarkDirty();
  --num_entries_;
  meta_dirty_ = true;
  return true;
}

Result<bool> BTree::DeleteExact(const Slice& key, const Slice& value) {
  if (options_.read_only) {
    return Status::InvalidArgument(
        "DeleteExact on a btree opened read-only");
  }
  BTreeIterator it = NewIterator();
  NOK_RETURN_IF_ERROR(it.Seek(key));
  while (it.Valid() && it.key() == key) {
    if (it.value() == value) {
      NodeRef node(it.leaf_.mutable_data(), options_.page_size);
      node.RemoveCell(it.slot_);
      it.leaf_.MarkDirty();
      --num_entries_;
      meta_dirty_ = true;
      return true;
    }
    NOK_RETURN_IF_ERROR(it.Next());
  }
  return false;
}

BTreeIterator BTree::NewIterator() { return BTreeIterator(this); }

Status BTreeIterator::SeekToFirst() {
  NOK_ASSIGN_OR_RETURN(leaf_, tree_->LeftmostLeaf());
  slot_ = 0;
  leaf_nkeys_ = NodeRef(leaf_.mutable_data(), tree_->options_.page_size)
                    .nkeys();
  return SkipEmptyLeaves();
}

Status BTreeIterator::Seek(const Slice& target) {
  NOK_ASSIGN_OR_RETURN(leaf_, tree_->DescendToLeaf(target));
  NodeRef node(leaf_.mutable_data(), tree_->options_.page_size);
  slot_ = node.LowerBound(target);
  leaf_nkeys_ = node.nkeys();
  return SkipEmptyLeaves();
}

Status BTreeIterator::Next() {
  NOK_CHECK(Valid());
  ++slot_;
  return SkipEmptyLeaves();
}

Status BTreeIterator::SkipEmptyLeaves() {
  while (leaf_.valid() && slot_ >= leaf_nkeys_) {
    NodeRef node(leaf_.mutable_data(), tree_->options_.page_size);
    const PageId next = node.right_sibling();
    leaf_.Release();
    if (next == kInvalidPage) return Status::OK();  // End: invalid.
    NOK_ASSIGN_OR_RETURN(leaf_, tree_->pool_->Fetch(next));
    NodeRef next_node(leaf_.mutable_data(), tree_->options_.page_size);
    slot_ = 0;
    leaf_nkeys_ = next_node.nkeys();
  }
  return Status::OK();
}

Slice BTreeIterator::key() const {
  NOK_CHECK(Valid());
  NodeRef node(const_cast<char*>(leaf_.data()), tree_->options_.page_size);
  return node.KeyAt(slot_);
}

Slice BTreeIterator::value() const {
  NOK_CHECK(Valid());
  NodeRef node(const_cast<char*>(leaf_.data()), tree_->options_.page_size);
  return node.ValueAt(slot_);
}

}  // namespace nok
