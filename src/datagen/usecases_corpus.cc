#include "datagen/usecases_corpus.h"

namespace nok {

const std::vector<std::string>& UseCasesPathCorpus() {
  static const std::vector<std::string>* corpus =
      new std::vector<std::string>{
          // --- XMP (experiences and exemplars) -------------------------
          "/bib/book[publisher=\"Addison-Wesley\"][@year>1991]/title",
          "/bib/book/title",
          "/bib/book/author/last",
          "/bib/book[author/last=\"Stevens\"][price<65]",
          "/bib/book/@year",
          "//book[author]/title",
          "//book[editor/affiliation]/title",
          "/bib/book[title=\"TCP/IP Illustrated\"]/price",
          "/bib/book/author[last=\"Stevens\"][first=\"W.\"]",
          "//book[price<100]//last",
          // --- TREE (queries that preserve hierarchy) ------------------
          "/book/section/title",
          "/book//section/title",
          "/book/section/section/title",
          "//section[title=\"Introduction\"]",
          "//figure/title",
          "/book//figure",
          "/book/section[figure]/title",
          // --- SEQ (queries based on sequence) --------------------------
          "/report/section/procedure",
          "//incision[@nr=\"2\"]",
          "//incision/following::instrument",
          "/report//instrument",
          "//action/following-sibling::observation",
          // --- R (access to relational data) ----------------------------
          "/users/user_tuple/name",
          "/items/item_tuple[reserve_price>30]/description",
          "/bids/bid_tuple[itemno=\"1001\"]",
          "/items/item_tuple[started_at][ends_at]/description",
          "/users/user_tuple[rating=\"A\"]/userid",
          "/items/item_tuple/offered_by",
          // --- SGML --------------------------------------------------------
          "/report/section[topic=\"security\"]",
          "//intro/para",
          "/report//section/intro",
          "//xmp[@role=\"example\"]",
          "/report/section/section//para",
          // --- STRING (full-text-ish navigation skeletons) -------------
          "/news/news_item/title",
          "//news_item[date=\"1999-01-08\"]/title",
          "/news/news_item/content/par",
          "//company[name=\"Foobar\"]",
          "/news/news_item[content//par]",
          // --- PARTS (recursive part lists) ------------------------------
          "/partlist/part[@partid=\"0\"]",
          "//part[@name=\"engine\"]",
          "/partlist/part/part",
          "//part/part/part",
          "/partlist//part/@name",
      };
  return *corpus;
}

}  // namespace nok
