// Synthetic dataset generators reproducing the shape statistics of the
// paper's five test documents (Table 1).
//
// Substitution note (see DESIGN.md): the XBench generator and the UW XML
// repository files are not available offline.  These generators match the
// published node counts, depth profiles, tag-alphabet sizes and the
// bushy/deep classification, scaled by GenOptions::scale.
//
// To make the twelve Table 2 query categories constructible with *known*
// selectivities, every dataset plants:
//   * two value-needle tags whose values take planted needles in exactly
//     hi/mod/low many entries ("high", "moderate", "low" selectivity with
//     value constraints), jointly (so bushy value queries hit the same
//     entries), and
//   * a marker chain extra/rare/gem of optional elements present in
//     low/mod/hi many entries (structural selectivity without values).
//
// GeneratedDataset names those tags so query_gen can instantiate the
// category templates per dataset.

#ifndef NOKXML_DATAGEN_DATASET_GEN_H_
#define NOKXML_DATAGEN_DATASET_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace nok {

/// The five datasets of Table 1, plus the recursive parts document
/// (kParts) used by the fuzzer for deeply nested tag paths.
enum class Dataset { kAuthor, kAddress, kCatalog, kTreebank, kDblp, kParts };

/// The Table 1 dataset identifiers, in Table 1 order (kParts is not a
/// Table 1 document and is excluded).
std::vector<Dataset> AllDatasets();

/// Display name ("author", "address", ...).
std::string_view DatasetName(Dataset dataset);

/// Generation knobs.
struct GenOptions {
  /// Entry-count multiplier relative to the paper's document sizes
  /// (scale 1.0 reproduces Table 1's node counts within a few percent).
  double scale = 1.0;
  uint64_t seed = 42;
};

/// Knobs for the deep-recursion generator (Dataset::kParts): nested
/// part/assembly trees whose tag paths repeat at every level — the shape
/// none of the Table 1 documents has.  Every knob is deterministic in
/// the seed; identical options produce bit-identical XML on every
/// platform (the generator draws only from nok::Random).
struct RecursiveGenOptions {
  uint64_t seed = 42;
  size_t entries = 48;  ///< Top-level parts.
  int max_depth = 12;   ///< Maximum assembly nesting below an entry.
  int fanout = 3;       ///< Maximum subparts per assembly.
  /// Chance that a nesting step continues as a single-child deep spine
  /// rather than a bushy assembly (higher skew -> deeper documents).
  double skew = 0.5;
};

/// A generated document plus the schema facts query_gen needs.
struct GeneratedDataset {
  Dataset dataset;
  std::string name;
  std::string xml;

  // Schema handles for query construction.
  std::string entry_path;   ///< e.g. "/authors/author".
  std::string detail_a;     ///< Always-present child tag of an entry.
  std::string detail_b;     ///< Second always-present child tag.
  std::string needle_tag_a; ///< Value-needle tag a.
  std::string needle_tag_b; ///< Value-needle tag b.
  std::string marker_extra; ///< Present in ~`low` entries.
  std::string marker_rare;  ///< Nested under extra, ~`mod` entries.
  std::string marker_gem;   ///< Nested under rare, ~`hi` entries.
  std::string recursive_tag; ///< Recursion container tag (kParts only).

  // Planted needle values ("<class>-a" / "<class>-b").
  std::string needle_hi_a, needle_hi_b;
  std::string needle_mod_a, needle_mod_b;
  std::string needle_low_a, needle_low_b;

  // Exact planted counts.
  size_t count_hi = 0, count_mod = 0, count_low = 0;
  size_t entries = 0;
};

/// Generates one dataset.  Dataset::kParts maps GenOptions onto default
/// RecursiveGenOptions (entries scaled, depth/fanout/skew defaulted).
GeneratedDataset GenerateDataset(Dataset dataset, const GenOptions& options);

/// Generates the recursive parts dataset with explicit shape knobs.
GeneratedDataset GenerateRecursiveDataset(const RecursiveGenOptions& options);

}  // namespace nok

#endif  // NOKXML_DATAGEN_DATASET_GEN_H_
