#include "datagen/dataset_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "xml/escape.h"

namespace nok {

std::vector<Dataset> AllDatasets() {
  return {Dataset::kAuthor, Dataset::kAddress, Dataset::kCatalog,
          Dataset::kTreebank, Dataset::kDblp};
}

std::string_view DatasetName(Dataset dataset) {
  switch (dataset) {
    case Dataset::kAuthor:
      return "author";
    case Dataset::kAddress:
      return "address";
    case Dataset::kCatalog:
      return "catalog";
    case Dataset::kTreebank:
      return "treebank";
    case Dataset::kDblp:
      return "dblp";
    case Dataset::kParts:
      return "parts";
  }
  return "?";
}

namespace {

/// Minimal streaming XML writer.
class XmlWriter {
 public:
  void Open(std::string_view tag) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
  }
  void OpenWithAttr(std::string_view tag, std::string_view attr,
                    const std::string& value) {
    out_ += '<';
    out_ += tag;
    out_ += ' ';
    out_ += attr;
    out_ += "=\"";
    out_ += EscapeAttribute(value);
    out_ += "\">";
  }
  void Close(std::string_view tag) {
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }
  void Leaf(std::string_view tag, const std::string& text) {
    out_ += "\n    ";
    Open(tag);
    out_ += EscapeText(text);
    Close(tag);
  }
  void Text(const std::string& text) { out_ += EscapeText(text); }
  void Newline() { out_ += '\n'; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Exact-count random class assignment: across `total` entries, class 3
/// occurs hi times, class 2 mod times, class 1 low times, class 0
/// otherwise, in pseudorandom positions.
class ClassAssigner {
 public:
  ClassAssigner(size_t total, size_t hi, size_t mod, size_t low,
                Random* rng)
      : remaining_(total), hi_(hi), mod_(mod), low_(low), rng_(rng) {}

  int Next() {
    NOK_CHECK(remaining_ > 0);
    const uint64_t r = rng_->Uniform(remaining_);
    --remaining_;
    if (r < hi_) {
      --hi_;
      return 3;
    }
    if (r < hi_ + mod_) {
      --mod_;
      return 2;
    }
    if (r < hi_ + mod_ + low_) {
      --low_;
      return 1;
    }
    return 0;
  }

 private:
  size_t remaining_, hi_, mod_, low_;
  Random* rng_;
};

/// Planted counts, capped for tiny scales.
struct Counts {
  size_t hi, mod, low;
};
Counts NeedleCounts(size_t entries) {
  Counts c;
  c.hi = std::min<size_t>(4, entries);
  c.mod = std::min<size_t>(40, entries / 4 + 1);
  c.low = std::min<size_t>(400, entries / 2 + 1);
  if (c.mod <= c.hi) c.mod = std::min(entries, c.hi + 1);
  if (c.low <= c.mod) c.low = std::min(entries, c.mod + 1);
  return c;
}

/// Common per-entry planted content: needle leaves + marker chain.
struct Planted {
  ClassAssigner values;
  ClassAssigner markers;
  const GeneratedDataset* ds;

  void EmitNeedles(XmlWriter* w, Random* rng) {
    const int vclass = values.Next();
    std::string va, vb;
    switch (vclass) {
      case 3:
        va = ds->needle_hi_a;
        vb = ds->needle_hi_b;
        break;
      case 2:
        va = ds->needle_mod_a;
        vb = ds->needle_mod_b;
        break;
      case 1:
        va = ds->needle_low_a;
        vb = ds->needle_low_b;
        break;
      default:
        // Filler values with realistic text weight (the planted needles
        // stay short and exact).
        va = rng->NextString(7) + "." + rng->NextString(8) + "@" +
             rng->NextString(10) + ".example.edu";
        vb = "Department of " + rng->NextString(9) + ", University of " +
             rng->NextString(8);
    }
    w->Leaf(ds->needle_tag_a, va);
    w->Leaf(ds->needle_tag_b, vb);
  }

  void EmitMarkers(XmlWriter* w) {
    const int mclass = markers.Next();
    if (mclass == 0) return;
    w->Open(ds->marker_extra);
    if (mclass >= 2) {
      w->Open(ds->marker_rare);
      if (mclass >= 3) {
        w->Leaf(ds->marker_gem, "x");
      }
      w->Close(ds->marker_rare);
    }
    w->Close(ds->marker_extra);
  }
};

/// Fills the shared GeneratedDataset fields and returns the initialized
/// planted-content emitter.
Planted InitPlanted(GeneratedDataset* ds, size_t entries, Random* rng) {
  const Counts c = NeedleCounts(entries);
  ds->entries = entries;
  ds->count_hi = c.hi;
  ds->count_mod = c.mod;
  ds->count_low = c.low;
  ds->needle_hi_a = "needle-hi-a";
  ds->needle_hi_b = "needle-hi-b";
  ds->needle_mod_a = "needle-mod-a";
  ds->needle_mod_b = "needle-mod-b";
  ds->needle_low_a = "needle-low-a";
  ds->needle_low_b = "needle-low-b";
  return Planted{
      ClassAssigner(entries, c.hi, c.mod - c.hi, c.low - c.mod, rng),
      ClassAssigner(entries, c.hi, c.mod - c.hi, c.low - c.mod, rng),
      ds};
}

const char* const kFirstNames[] = {"Wei", "Anna", "John", "Mary", "Tamer",
                                   "Ning", "Varun", "Lisa", "Omar", "Yuki"};
const char* const kLastNames[] = {"Stevens", "Zhang", "Smith",  "Chen",
                                  "Ozsu",    "Kumar", "Garcia", "Okafor",
                                  "Dubois",  "Novak"};
const char* const kCities[] = {"Waterloo", "Toronto", "Bombay", "Paris",
                               "Berlin",   "Osaka",   "Lagos",  "Quito"};

std::string Pick(Random* rng, const char* const* pool, size_t n) {
  return pool[rng->Uniform(n)];
}

// ---------------------------------------------------------------------------
// author: bushy, depth 3, ~8 tags, ~15k nodes at scale 1 (Table 1 row 1).

GeneratedDataset GenAuthor(const GenOptions& options) {
  GeneratedDataset ds;
  ds.dataset = Dataset::kAuthor;
  ds.name = "author";
  ds.entry_path = "/authors/author";
  ds.detail_a = "first";
  ds.detail_b = "last";
  ds.needle_tag_a = "email";
  ds.needle_tag_b = "affiliation";
  ds.marker_extra = "award";
  ds.marker_rare = "prize";
  ds.marker_gem = "medal";

  Random rng(options.seed);
  const size_t entries = std::max<size_t>(
      8, static_cast<size_t>(2000 * options.scale));
  Planted planted = InitPlanted(&ds, entries, &rng);

  XmlWriter w;
  w.Open("authors");
  w.Newline();
  for (size_t i = 0; i < entries; ++i) {
    w.Open("author");
    w.Leaf("first", Pick(&rng, kFirstNames, 10));
    w.Leaf("last", Pick(&rng, kLastNames, 10));
    planted.EmitNeedles(&w, &rng);
    planted.EmitMarkers(&w);
    w.Close("author");
    w.Newline();
  }
  w.Close("authors");
  ds.xml = w.Take();
  return ds;
}

// ---------------------------------------------------------------------------
// address: bushy, depth 3, ~7 tags, ~400k nodes at scale 1 (row 2).

GeneratedDataset GenAddress(const GenOptions& options) {
  GeneratedDataset ds;
  ds.dataset = Dataset::kAddress;
  ds.name = "address";
  ds.entry_path = "/addresses/address";
  ds.detail_a = "street";
  ds.detail_b = "city";
  ds.needle_tag_a = "zip";
  ds.needle_tag_b = "country";
  ds.marker_extra = "note";
  ds.marker_rare = "code";
  ds.marker_gem = "flag";

  Random rng(options.seed + 1);
  const size_t entries = std::max<size_t>(
      8, static_cast<size_t>(50000 * options.scale));
  Planted planted = InitPlanted(&ds, entries, &rng);

  XmlWriter w;
  w.Open("addresses");
  w.Newline();
  for (size_t i = 0; i < entries; ++i) {
    w.Open("address");
    w.Leaf("street", std::to_string(rng.Range(1, 9999)) + " " +
                         Pick(&rng, kLastNames, 10) +
                         " Street, Suite " +
                         std::to_string(rng.Range(1, 900)));
    w.Leaf("city", std::string(Pick(&rng, kCities, 8)) + " " +
                       rng.NextString(6));
    planted.EmitNeedles(&w, &rng);
    planted.EmitMarkers(&w);
    w.Close("address");
    w.Newline();
  }
  w.Close("addresses");
  ds.xml = w.Take();
  return ds;
}

// ---------------------------------------------------------------------------
// catalog: deeper (avg 5, max 8), ~51 tags, ~620k nodes at scale 1 (row 3).

GeneratedDataset GenCatalog(const GenOptions& options) {
  GeneratedDataset ds;
  ds.dataset = Dataset::kCatalog;
  ds.name = "catalog";
  ds.entry_path = "/catalog/category/item";
  ds.detail_a = "title";
  ds.detail_b = "sku";
  ds.needle_tag_a = "brand";
  ds.needle_tag_b = "origin";
  ds.marker_extra = "promo";
  ds.marker_rare = "deal";
  ds.marker_gem = "coupon";

  Random rng(options.seed + 2);
  const size_t items = std::max<size_t>(
      8, static_cast<size_t>(28000 * options.scale));
  Planted planted = InitPlanted(&ds, items, &rng);

  // 30 filler description tags bring the alphabet to ~51.
  std::vector<std::string> fillers;
  for (int i = 0; i < 36; ++i) {
    fillers.push_back("feature" + std::to_string(i));
  }

  XmlWriter w;
  w.Open("catalog");
  w.Newline();
  const size_t per_category = 50;
  size_t emitted = 0;
  while (emitted < items) {
    w.Open("category");
    w.Leaf("cname", "cat" + std::to_string(emitted / per_category));
    for (size_t k = 0; k < per_category && emitted < items; ++k, ++emitted) {
      w.Open("item");
      w.Leaf("title", "The illustrated product guide to item number " +
                          std::to_string(emitted) + " " +
                          rng.NextString(10));
      w.Leaf("sku", "sku" + std::to_string(rng.Uniform(1u << 30)));
      planted.EmitNeedles(&w, &rng);
      planted.EmitMarkers(&w);
      w.Open("description");
      const size_t paras = rng.Range(1, 3);
      for (size_t p = 0; p < paras; ++p) {
        w.Open("para");
        w.Leaf(fillers[rng.Uniform(fillers.size())],
               rng.NextString(8) + " " + rng.NextString(12) + " " +
                   rng.NextString(9));
        if (rng.Bernoulli(0.3)) {
          w.Open("emph");
          w.Leaf(fillers[rng.Uniform(fillers.size())],
                 rng.NextString(4));
          w.Close("emph");
        }
        w.Close("para");
      }
      w.Close("description");
      w.Open("attributes");
      w.Leaf("weight", std::to_string(rng.Range(1, 900)));
      w.Leaf("size", std::to_string(rng.Range(1, 60)));
      w.Close("attributes");
      w.Close("item");
      w.Newline();
    }
    w.Close("category");
    w.Newline();
  }
  w.Close("catalog");
  ds.xml = w.Take();
  return ds;
}

// ---------------------------------------------------------------------------
// treebank: deep (avg 8, max 36), ~250 tags, ~2.4M nodes at scale 1;
// random recursive grammar with random high-selectivity values (row 4).

GeneratedDataset GenTreebank(const GenOptions& options) {
  GeneratedDataset ds;
  ds.dataset = Dataset::kTreebank;
  ds.name = "treebank";
  ds.entry_path = "/treebank/s";
  ds.detail_a = "np";
  ds.detail_b = "vp";
  ds.needle_tag_a = "word";
  ds.needle_tag_b = "lemma";
  ds.marker_extra = "trace";
  ds.marker_rare = "gap";
  ds.marker_gem = "null";

  Random rng(options.seed + 3);
  const size_t sentences = std::max<size_t>(
      8, static_cast<size_t>(52000 * options.scale));
  Planted planted = InitPlanted(&ds, sentences, &rng);

  // 240 grammar tags + the fixed ones = ~250 distinct names.
  std::vector<std::string> grammar;
  for (int i = 0; i < 240; ++i) {
    grammar.push_back("t" + std::to_string(i));
  }

  XmlWriter w;
  w.Open("treebank");
  w.Newline();

  // Recursive random constituent; depth measured from the sentence node.
  // Sentences average ~45 nodes, occasionally nesting very deep.
  struct Gen {
    Random* rng;
    const std::vector<std::string>* grammar;
    XmlWriter* w;
    size_t budget = 0;

    void Constituent(int depth, int max_depth) {
      if (budget == 0) return;
      --budget;
      const std::string& tag = (*grammar)[rng->Uniform(grammar->size())];
      w->Open(tag);
      if (depth < max_depth && budget > 0 && rng->Bernoulli(0.65)) {
        const size_t kids = rng->Range(1, 3);
        for (size_t k = 0; k < kids && budget > 0; ++k) {
          Constituent(depth + 1, max_depth);
        }
      } else {
        // Leaf constituent with a randomly generated (high-selectivity)
        // token, matching the paper's remark about Treebank values.
        w->Text(rng->NextString(4) + " " + rng->NextString(7) + " " +
                rng->NextString(5));
      }
      w->Close(tag);
    }
  };

  for (size_t i = 0; i < sentences; ++i) {
    w.Open("s");
    // Always-present constituents for the bushy structural queries.
    w.Open("np");
    w.Leaf("word", "v" + std::to_string(rng.Uniform(1u << 30)));
    w.Close("np");
    w.Open("vp");
    planted.EmitNeedles(&w, &rng);
    w.Close("vp");
    planted.EmitMarkers(&w);
    // Random deep grammar material; ~1% of sentences carry a guaranteed
    // deep chain so the document reaches Treebank's max depth (~36).
    if (rng.Bernoulli(0.01)) {
      std::vector<std::string> chain;
      for (int d = 0; d < 32; ++d) {
        chain.push_back(grammar[rng.Uniform(grammar.size())]);
        w.Open(chain.back());
      }
      w.Text(rng.NextString(4));
      for (size_t d = chain.size(); d-- > 0;) {
        w.Close(chain[d]);
      }
    } else {
      const int max_depth = static_cast<int>(rng.Range(2, 10));
      Gen gen{&rng, &grammar, &w, /*budget=*/rng.Range(20, 60)};
      gen.Constituent(1, max_depth);
    }
    w.Close("s");
    w.Newline();
  }
  w.Close("treebank");
  ds.xml = w.Take();
  return ds;
}

// ---------------------------------------------------------------------------
// dblp: bushy, depth 3-6, ~35 tags, ~3.3M nodes at scale 1 (row 5).

GeneratedDataset GenDblp(const GenOptions& options) {
  GeneratedDataset ds;
  ds.dataset = Dataset::kDblp;
  ds.name = "dblp";
  ds.entry_path = "/dblp/article";
  ds.detail_a = "title";
  ds.detail_b = "year";
  ds.needle_tag_a = "journal";
  ds.needle_tag_b = "volume";
  ds.marker_extra = "cite";
  ds.marker_rare = "label";
  ds.marker_gem = "ref";

  Random rng(options.seed + 4);
  const size_t entries = std::max<size_t>(
      8, static_cast<size_t>(400000 * options.scale));
  Planted planted = InitPlanted(&ds, entries, &rng);

  const char* const extra_tags[] = {"ee",     "url",    "pages",
                                    "number", "month",  "cdrom",
                                    "note",   "crossref"};
  const char* const rare_tags[] = {"isbn",     "series",    "school",
                                   "editor",   "publisher", "booktitle",
                                   "chapter",  "address2",  "orcid",
                                   "keywords", "abstract2", "doi",
                                   "venue",    "tier"};

  XmlWriter w;
  w.Open("dblp");
  w.Newline();
  for (size_t i = 0; i < entries; ++i) {
    w.OpenWithAttr("article", "key", "a" + std::to_string(i));
    const size_t authors = rng.Range(1, 4);
    for (size_t a = 0; a < authors; ++a) {
      w.Open("author");
      w.Leaf("name", Pick(&rng, kFirstNames, 10) + " " +
                         Pick(&rng, kLastNames, 10));
      w.Close("author");
    }
    w.Leaf("title",
           "On the " + rng.NextString(9) + " of " + rng.NextString(11) +
               " " + rng.NextString(7) + " systems (part " +
               std::to_string(i) + ")");
    w.Leaf("year", std::to_string(1970 + rng.Uniform(40)));
    planted.EmitNeedles(&w, &rng);
    planted.EmitMarkers(&w);
    w.Leaf(extra_tags[rng.Uniform(8)], rng.NextString(5));
    if (rng.Bernoulli(0.2)) {
      w.Leaf(rare_tags[rng.Uniform(14)], rng.NextString(12));
    }
    w.Close("article");
    w.Newline();
  }
  w.Close("dblp");
  ds.xml = w.Take();
  return ds;
}

}  // namespace

GeneratedDataset GenerateRecursiveDataset(
    const RecursiveGenOptions& options) {
  GeneratedDataset ds;
  ds.dataset = Dataset::kParts;
  ds.name = "parts";
  ds.entry_path = "/parts/part";
  ds.detail_a = "pname";
  ds.detail_b = "serial";
  ds.needle_tag_a = "material";
  ds.needle_tag_b = "vendor";
  ds.marker_extra = "option";
  ds.marker_rare = "variant";
  ds.marker_gem = "custom";
  ds.recursive_tag = "assembly";

  Random rng(options.seed + 5);
  const size_t entries = std::max<size_t>(1, options.entries);
  Planted planted = InitPlanted(&ds, entries, &rng);

  XmlWriter w;
  w.Open("parts");
  w.Newline();

  // Recursive part emitter.  Bushy assemblies burn two depth units per
  // level while spines burn one, so skew trades breadth for depth while
  // max_depth bounds the whole subtree.  Needles and markers are planted
  // only at the top level, keeping the ClassAssigner counts exact.
  struct Gen {
    Random* rng;
    XmlWriter* w;
    const RecursiveGenOptions* opt;

    void SubPart(int depth) {
      w->Open("part");
      w->Leaf("pname", "sub-" + rng->NextString(6));
      w->Leaf("serial", std::to_string(rng->Uniform(1u << 30)));
      MaybeAssembly(depth);
      w->Close("part");
    }

    void MaybeAssembly(int depth) {
      if (depth >= opt->max_depth || !rng->Bernoulli(0.85)) return;
      w->Open("assembly");
      if (rng->NextDouble() < opt->skew) {
        SubPart(depth + 1);  // Deep spine: one child, cheap depth.
      } else {
        const size_t kids =
            1 + rng->Uniform(static_cast<uint64_t>(
                    std::max(1, opt->fanout)));
        for (size_t k = 0; k < kids; ++k) SubPart(depth + 2);
      }
      w->Close("assembly");
    }
  };

  for (size_t i = 0; i < entries; ++i) {
    w.Open("part");
    w.Leaf("pname", "part-" + std::to_string(i));
    w.Leaf("serial", std::to_string(rng.Uniform(1u << 30)));
    planted.EmitNeedles(&w, &rng);
    planted.EmitMarkers(&w);
    Gen gen{&rng, &w, &options};
    gen.MaybeAssembly(0);
    w.Close("part");
    w.Newline();
  }
  w.Close("parts");
  ds.xml = w.Take();
  return ds;
}

GeneratedDataset GenerateDataset(Dataset dataset,
                                 const GenOptions& options) {
  switch (dataset) {
    case Dataset::kAuthor:
      return GenAuthor(options);
    case Dataset::kAddress:
      return GenAddress(options);
    case Dataset::kCatalog:
      return GenCatalog(options);
    case Dataset::kTreebank:
      return GenTreebank(options);
    case Dataset::kDblp:
      return GenDblp(options);
    case Dataset::kParts: {
      RecursiveGenOptions recursive;
      recursive.seed = options.seed;
      recursive.entries = std::max<size_t>(
          8, static_cast<size_t>(2000 * options.scale));
      return GenerateRecursiveDataset(recursive);
    }
  }
  NOK_CHECK(false) << "unknown dataset";
  return GeneratedDataset{};
}

}  // namespace nok
