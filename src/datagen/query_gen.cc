#include "datagen/query_gen.h"

#include "common/random.h"

namespace nok {

std::vector<CategoryQuery> QueriesForDataset(const GeneratedDataset& ds) {
  const std::string& e = ds.entry_path;
  auto eq = [](const std::string& tag, const std::string& value) {
    return "[" + tag + "=\"" + value + "\"]";
  };
  std::vector<CategoryQuery> out;
  // High selectivity.
  out.push_back({"Q1", "hpy", e + eq(ds.needle_tag_a, ds.needle_hi_a)});
  out.push_back({"Q2", "hpn", e + "/" + ds.marker_extra + "/" +
                                  ds.marker_rare + "/" + ds.marker_gem});
  out.push_back({"Q3", "hby", e + eq(ds.needle_tag_a, ds.needle_hi_a) +
                                  eq(ds.needle_tag_b, ds.needle_hi_b) +
                                  "/" + ds.detail_a});
  out.push_back({"Q4", "hbn", e + "[" + ds.detail_a + "][" + ds.detail_b +
                                  "][" + ds.marker_extra + "/" +
                                  ds.marker_rare + "/" + ds.marker_gem +
                                  "]"});
  // Moderate selectivity.
  out.push_back({"Q5", "mpy", e + eq(ds.needle_tag_a, ds.needle_mod_a) +
                                  "/" + ds.detail_a});
  out.push_back(
      {"Q6", "mpn", e + "/" + ds.marker_extra + "/" + ds.marker_rare});
  out.push_back({"Q7", "mby", e + eq(ds.needle_tag_a, ds.needle_mod_a) +
                                  eq(ds.needle_tag_b, ds.needle_mod_b)});
  out.push_back({"Q8", "mbn", e + "[" + ds.detail_a + "][" + ds.detail_b +
                                  "][" + ds.marker_extra + "/" +
                                  ds.marker_rare + "]"});
  // Low selectivity.
  out.push_back({"Q9", "lpy", e + eq(ds.needle_tag_a, ds.needle_low_a) +
                                  "/" + ds.detail_a});
  out.push_back({"Q10", "lpn", e + "/" + ds.marker_extra});
  out.push_back({"Q11", "lby", e + eq(ds.needle_tag_a, ds.needle_low_a) +
                                   eq(ds.needle_tag_b, ds.needle_low_b)});
  out.push_back(
      {"Q12", "lbn", e + "[" + ds.detail_a + "][" + ds.marker_extra + "]"});
  return out;
}

std::vector<CategoryQuery> DescendantVariants(
    const std::vector<CategoryQuery>& queries, uint64_t seed) {
  Random rng(seed);
  std::vector<CategoryQuery> out;
  out.reserve(queries.size());
  for (const CategoryQuery& q : queries) {
    // Collect the positions of single '/' steps (not already '//', not
    // inside a literal).
    std::vector<size_t> slashes;
    bool in_literal = false;
    char quote = 0;
    for (size_t i = 0; i < q.xpath.size(); ++i) {
      const char c = q.xpath[i];
      if (in_literal) {
        if (c == quote) in_literal = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        in_literal = true;
        quote = c;
        continue;
      }
      if (c == '/' && (i == 0 || q.xpath[i - 1] != '/') &&
          (i + 1 >= q.xpath.size() || q.xpath[i + 1] != '/')) {
        slashes.push_back(i);
      }
    }
    CategoryQuery variant = q;
    variant.id += "d";
    if (!slashes.empty()) {
      const size_t pos = slashes[rng.Uniform(slashes.size())];
      variant.xpath.insert(pos, "/");
    }
    out.push_back(std::move(variant));
  }
  return out;
}

}  // namespace nok
