#include "datagen/query_gen.h"

#include <algorithm>

#include "common/random.h"

namespace nok {

std::vector<CategoryQuery> QueriesForDataset(const GeneratedDataset& ds) {
  const std::string& e = ds.entry_path;
  auto eq = [](const std::string& tag, const std::string& value) {
    return "[" + tag + "=\"" + value + "\"]";
  };
  std::vector<CategoryQuery> out;
  // High selectivity.
  out.push_back({"Q1", "hpy", e + eq(ds.needle_tag_a, ds.needle_hi_a)});
  out.push_back({"Q2", "hpn", e + "/" + ds.marker_extra + "/" +
                                  ds.marker_rare + "/" + ds.marker_gem});
  out.push_back({"Q3", "hby", e + eq(ds.needle_tag_a, ds.needle_hi_a) +
                                  eq(ds.needle_tag_b, ds.needle_hi_b) +
                                  "/" + ds.detail_a});
  out.push_back({"Q4", "hbn", e + "[" + ds.detail_a + "][" + ds.detail_b +
                                  "][" + ds.marker_extra + "/" +
                                  ds.marker_rare + "/" + ds.marker_gem +
                                  "]"});
  // Moderate selectivity.
  out.push_back({"Q5", "mpy", e + eq(ds.needle_tag_a, ds.needle_mod_a) +
                                  "/" + ds.detail_a});
  out.push_back(
      {"Q6", "mpn", e + "/" + ds.marker_extra + "/" + ds.marker_rare});
  out.push_back({"Q7", "mby", e + eq(ds.needle_tag_a, ds.needle_mod_a) +
                                  eq(ds.needle_tag_b, ds.needle_mod_b)});
  out.push_back({"Q8", "mbn", e + "[" + ds.detail_a + "][" + ds.detail_b +
                                  "][" + ds.marker_extra + "/" +
                                  ds.marker_rare + "]"});
  // Low selectivity.
  out.push_back({"Q9", "lpy", e + eq(ds.needle_tag_a, ds.needle_low_a) +
                                  "/" + ds.detail_a});
  out.push_back({"Q10", "lpn", e + "/" + ds.marker_extra});
  out.push_back({"Q11", "lby", e + eq(ds.needle_tag_a, ds.needle_low_a) +
                                   eq(ds.needle_tag_b, ds.needle_low_b)});
  out.push_back(
      {"Q12", "lbn", e + "[" + ds.detail_a + "][" + ds.marker_extra + "]"});
  return out;
}

std::vector<CategoryQuery> DescendantVariants(
    const std::vector<CategoryQuery>& queries, uint64_t seed) {
  Random rng(seed);
  std::vector<CategoryQuery> out;
  out.reserve(queries.size());
  for (const CategoryQuery& q : queries) {
    // Collect the positions of single '/' steps (not already '//', not
    // inside a literal).
    std::vector<size_t> slashes;
    bool in_literal = false;
    char quote = 0;
    for (size_t i = 0; i < q.xpath.size(); ++i) {
      const char c = q.xpath[i];
      if (in_literal) {
        if (c == quote) in_literal = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        in_literal = true;
        quote = c;
        continue;
      }
      if (c == '/' && (i == 0 || q.xpath[i - 1] != '/') &&
          (i + 1 >= q.xpath.size() || q.xpath[i + 1] != '/')) {
        slashes.push_back(i);
      }
    }
    CategoryQuery variant = q;
    variant.id += "d";
    if (!slashes.empty()) {
      const size_t pos = slashes[rng.Uniform(slashes.size())];
      variant.xpath.insert(pos, "/");
    }
    out.push_back(std::move(variant));
  }
  return out;
}

namespace {

/// Sampler state for one RandomQueries call.
struct Sampler {
  Random* rng;
  const RandomQueryOptions* opt;
  std::vector<std::string> pool;    ///< Schema tag names.
  std::vector<std::string> values;  ///< Planted needle values.

  std::string Tag() {
    // Short-circuit before consuming randomness: absent_bias == 0 must
    // leave the sampled stream untouched.
    if (opt->absent_bias > 0 && rng->Bernoulli(opt->absent_bias)) {
      return rng->Bernoulli(0.5) ? "zzabsent" : "zzghost";
    }
    if (rng->Bernoulli(0.08)) return "*";
    return pool[rng->Uniform(pool.size())];
  }

  /// A short relative path for use inside a structural branch.
  std::string RelPath(int depth) {
    std::string path = Tag();
    if (depth > 0 && rng->Bernoulli(0.35)) {
      path += rng->Bernoulli(0.3) ? "//" : "/";
      path += RelPath(depth - 1);
    }
    return path;
  }

  /// One predicate.  *used_value / *used_position enforce the
  /// one-value-predicate / one-positional-per-step grammar limits.
  std::string Predicate(bool* used_value, bool* used_position) {
    const double r = rng->NextDouble();
    if (!*used_position && r < opt->positional_bias) {
      *used_position = true;
      return "[" + std::to_string(1 + rng->Uniform(3)) + "]";
    }
    if (r < opt->positional_bias + 0.35) {
      // Value comparison on a (possibly nested) branch leaf; each branch
      // is its own pattern node, so the one-predicate limit is per
      // branch, not per step.
      static const char* const kOps[] = {"=", "=", "=", "!=",
                                         "<", "<=", ">", ">="};
      const std::string op = kOps[rng->Uniform(8)];
      const std::string value = values[rng->Uniform(values.size())];
      std::string lhs = rng->Bernoulli(0.25) ? Tag() + "/" + Tag() : Tag();
      return "[" + lhs + op + "\"" + value + "\"]";
    }
    if (r < opt->positional_bias + 0.5) {
      // Sibling-order arc.
      return "[" + Tag() + "/following-sibling::" + Tag() + "]";
    }
    (void)used_value;
    return "[" + RelPath(2) + "]";  // Structural branch.
  }

  std::string Query() {
    std::string q = rng->Bernoulli(0.6) ? "/" : "//";
    const int steps =
        1 + static_cast<int>(rng->Uniform(
                static_cast<uint64_t>(std::max(1, opt->max_steps))));
    for (int s = 0; s < steps; ++s) {
      if (s > 0) q += rng->Bernoulli(0.35) ? "//" : "/";
      // Anchor absolute single-slash queries at the document root tag so
      // a useful fraction of samples actually match.
      q += (s == 0 && q == "/") ? pool.front() : Tag();
      bool used_value = false, used_position = false;
      if (rng->NextDouble() < opt->bushy_bias) {
        const int branches =
            1 + static_cast<int>(rng->Uniform(static_cast<uint64_t>(
                    std::max(1, opt->max_branches))));
        for (int b = 0; b < branches; ++b) {
          q += Predicate(&used_value, &used_position);
        }
      }
    }
    return q;
  }
};

}  // namespace

std::vector<std::string> RandomQueries(const GeneratedDataset& ds,
                                       const RandomQueryOptions& options) {
  Random rng(options.seed);
  Sampler sampler{&rng, &options, {}, {}};

  // Tag pool: the entry path segments followed by every schema handle.
  size_t start = 0;
  while (start < ds.entry_path.size()) {
    const size_t slash = ds.entry_path.find('/', start + 1);
    const size_t end =
        slash == std::string::npos ? ds.entry_path.size() : slash;
    if (end > start + 1) {
      sampler.pool.push_back(ds.entry_path.substr(start + 1,
                                                  end - start - 1));
    }
    start = end;
  }
  for (const std::string* tag :
       {&ds.detail_a, &ds.detail_b, &ds.needle_tag_a, &ds.needle_tag_b,
        &ds.marker_extra, &ds.marker_rare, &ds.marker_gem,
        &ds.recursive_tag}) {
    if (!tag->empty()) sampler.pool.push_back(*tag);
  }
  sampler.values = {ds.needle_hi_a,  ds.needle_hi_b, ds.needle_mod_a,
                    ds.needle_mod_b, ds.needle_low_a, ds.needle_low_b};

  std::vector<std::string> out;
  out.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    out.push_back(sampler.Query());
  }
  return out;
}

}  // namespace nok
