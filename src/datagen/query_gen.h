// Query-workload generator: instantiates the twelve Table 2 categories
// against a generated dataset's schema and planted selectivity classes.
//
// Category naming follows the paper: three letters for
//   selectivity  h(igh, a few results) / m(oderate, 10..100) / l(ow, >100)
//   topology     p(ath) / b(ushy)
//   value        y(es) / n(o value constraint)

#ifndef NOKXML_DATAGEN_QUERY_GEN_H_
#define NOKXML_DATAGEN_QUERY_GEN_H_

#include <string>
#include <vector>

#include "datagen/dataset_gen.h"

namespace nok {

/// One benchmark query.
struct CategoryQuery {
  std::string id;        ///< "Q1".."Q12".
  std::string category;  ///< "hpy", "hpn", ...
  std::string xpath;
};

/// The twelve category queries for a dataset (Table 2 instantiated).
std::vector<CategoryQuery> QueriesForDataset(const GeneratedDataset& ds);

/// The same queries with one '/' step turned into '//' (the paper's
/// descendant-axis variation), chosen deterministically from the seed.
std::vector<CategoryQuery> DescendantVariants(
    const std::vector<CategoryQuery>& queries, uint64_t seed);

/// Knobs for the seeded grammar sampler (QueryGen v2).  The sampler
/// covers the full supported XPath fragment — child/descendant arcs,
/// structural branches, value comparisons against the dataset's planted
/// needles, sibling-order arcs and positional predicates — weighted
/// toward bushy shapes.  Identical options yield identical queries on
/// every platform (only nok::Random is consulted).
struct RandomQueryOptions {
  uint64_t seed = 42;
  size_t count = 16;
  int max_steps = 4;             ///< Trunk steps beyond the entry tag.
  int max_branches = 2;          ///< Predicates allowed per step.
  double bushy_bias = 0.55;      ///< Chance a step grows predicates.
  double positional_bias = 0.1;  ///< Chance a predicate is [n].
  /// Chance a sampled tag name is one that never occurs in any dataset
  /// ("zzabsent"/"zzghost") — the shape the planner's schema-impossible
  /// pruning answers without I/O.  0 draws no extra randomness, so the
  /// default keeps every seeded query stream byte-identical.
  double absent_bias = 0.0;
};

/// Samples `count` syntactically valid queries over the dataset's schema
/// tags.  Every returned string parses under ParseXPath.
std::vector<std::string> RandomQueries(const GeneratedDataset& ds,
                                       const RandomQueryOptions& options);

}  // namespace nok

#endif  // NOKXML_DATAGEN_QUERY_GEN_H_
