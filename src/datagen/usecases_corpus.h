// A corpus of path expressions distilled from the W3C "XML Query Use
// Cases" document — the source of the paper's Section 1 statistic that
// roughly 2/3 of structural steps are '/' and 1/3 are '//', which is the
// empirical argument for NoK pattern matching reducing join counts.
//
// The expressions are the path-navigation skeletons of the queries in the
// XMP, TREE, SEQ, R, SGML, STRING and PARTS use cases, rewritten into the
// XPath subset this library parses (FLWOR context and functions removed;
// the axis structure is what matters for the statistic).

#ifndef NOKXML_DATAGEN_USECASES_CORPUS_H_
#define NOKXML_DATAGEN_USECASES_CORPUS_H_

#include <string>
#include <vector>

namespace nok {

/// The embedded corpus.
const std::vector<std::string>& UseCasesPathCorpus();

}  // namespace nok

#endif  // NOKXML_DATAGEN_USECASES_CORPUS_H_
