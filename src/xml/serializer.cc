#include "xml/serializer.h"

#include "xml/escape.h"

namespace nok {

namespace {

void SerializeRec(const DomNode* node, std::string* out) {
  out->push_back('<');
  out->append(node->name);
  // Attribute children first (they are stored first by construction, but
  // be permissive about interleaving).
  for (const auto& child : node->children) {
    if (child->is_attribute()) {
      out->push_back(' ');
      out->append(child->name.substr(1));
      out->append("=\"");
      out->append(EscapeAttribute(child->value));
      out->push_back('"');
    }
  }
  bool has_content = !node->value.empty();
  bool has_element_children = false;
  for (const auto& child : node->children) {
    if (!child->is_attribute()) {
      has_element_children = true;
      break;
    }
  }
  if (!has_content && !has_element_children) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  if (has_content) {
    out->append(EscapeText(node->value));
  }
  for (const auto& child : node->children) {
    if (!child->is_attribute()) {
      SerializeRec(child.get(), out);
    }
  }
  out->append("</");
  out->append(node->name);
  out->push_back('>');
}

}  // namespace

std::string SerializeNode(const DomNode* node) {
  std::string out;
  SerializeRec(node, &out);
  return out;
}

std::string SerializeTree(const DomTree& tree) {
  return SerializeNode(tree.root());
}

}  // namespace nok
