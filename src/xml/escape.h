// XML entity escaping and decoding.

#ifndef NOKXML_XML_ESCAPE_H_
#define NOKXML_XML_ESCAPE_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace nok {

/// Escapes &, <, > for element content.
std::string EscapeText(const Slice& text);

/// Escapes &, <, >, " for double-quoted attribute values.
std::string EscapeAttribute(const Slice& text);

/// Decodes the predefined entities (&amp; &lt; &gt; &quot; &apos;) and
/// numeric character references (&#NN; &#xHH;, ASCII and UTF-8 output).
/// Unknown entities are a ParseError.
Result<std::string> DecodeEntities(const Slice& text);

/// Strips leading/trailing ASCII whitespace.
std::string TrimWhitespace(const std::string& s);

/// Accumulates a text chunk into an element value: chunks are trimmed and
/// joined with single spaces (the subject-tree value model used by every
/// store in this library).
void AppendTextChunk(std::string* value, const std::string& chunk);

}  // namespace nok

#endif  // NOKXML_XML_ESCAPE_H_
