// Pull-style SAX parser for the XML subset the experiments need.
//
// The parser produces a stream of events (start-element with attributes,
// end-element, text).  It handles the XML declaration, comments,
// processing instructions, internal DOCTYPE subsets, CDATA sections, the
// predefined and numeric entities, and both quoting styles for
// attributes.  It does not implement namespaces or external entities.
//
// The event stream is deliberately the shape of the paper's physical
// string representation (Section 4.2): start-element = a symbol of the
// alphabet, end-element = ')'.

#ifndef NOKXML_XML_SAX_PARSER_H_
#define NOKXML_XML_SAX_PARSER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace nok {

/// One SAX event.
struct SaxEvent {
  enum class Type {
    kStartElement,
    kEndElement,
    kText,
    kEndDocument,
  };

  Type type = Type::kEndDocument;
  /// Element name (start/end element events).
  std::string name;
  /// Attributes in document order (start-element events).
  std::vector<std::pair<std::string, std::string>> attributes;
  /// Character data (text events), entity-decoded.
  std::string text;
};

/// Parser behaviour knobs.
struct SaxOptions {
  /// Drop text events that are entirely whitespace (inter-element
  /// formatting); default true, matching the data model of the paper.
  bool skip_whitespace_text = true;
};

/// Pull parser over an in-memory document.
class SaxParser {
 public:
  using Options = SaxOptions;

  explicit SaxParser(std::string input, Options options = {});

  /// Produces the next event into *event.  After the root element closes
  /// (or for an empty document) the event is kEndDocument.  Fails with
  /// ParseError on malformed input.
  Status Next(SaxEvent* event);

  /// Byte offset of the parse cursor (for error reporting and progress).
  size_t offset() const { return pos_; }

 private:
  Status ParseMarkup(SaxEvent* event);
  Status ParseStartTag(SaxEvent* event);
  Status ParseEndTag(SaxEvent* event);
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status SkipDoctype();
  Status ParseCdata(SaxEvent* event);
  Status ParseText(SaxEvent* event);
  Status ParseName(std::string* name);
  void SkipWhitespace();
  Status ErrorAt(const std::string& message) const;

  std::string input_;
  size_t pos_ = 0;
  Options options_;
  std::vector<std::string> open_elements_;
  /// Set once the root element has closed; trailing content must be misc.
  bool root_closed_ = false;
  bool seen_root_ = false;
  /// Pending synthetic end-element from a self-closing tag.
  bool pending_self_close_ = false;
  std::string pending_name_;
};

}  // namespace nok

#endif  // NOKXML_XML_SAX_PARSER_H_
