// DOM-to-text serialization (used by the data generators and round-trip
// tests).

#ifndef NOKXML_XML_SERIALIZER_H_
#define NOKXML_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace nok {

/// Serializes the subtree rooted at node to XML text.  Attribute pseudo-
/// children ("@name") become attributes; element values become text
/// content (emitted before the element children).
std::string SerializeNode(const DomNode* node);

/// Serializes a whole document (root element, no XML declaration).
std::string SerializeTree(const DomTree& tree);

}  // namespace nok

#endif  // NOKXML_XML_SERIALIZER_H_
