#include "xml/escape.h"

#include <cctype>
#include <cstdint>

namespace nok {

std::string TrimWhitespace(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void AppendTextChunk(std::string* value, const std::string& chunk) {
  const std::string trimmed = TrimWhitespace(chunk);
  if (!value->empty()) *value += ' ';
  *value += trimmed;
}

std::string EscapeText(const Slice& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

std::string EscapeAttribute(const Slice& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

namespace {

/// Appends the UTF-8 encoding of code point cp.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

}  // namespace

Result<std::string> DecodeEntities(const Slice& text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t semi = i + 1;
    while (semi < text.size() && text[semi] != ';' &&
           semi - i <= 10) {
      ++semi;
    }
    if (semi >= text.size() || text[semi] != ';') {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view ent(text.data() + i + 1, semi - i - 1);
    if (ent == "amp") {
      out += '&';
    } else if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      uint32_t cp = 0;
      bool ok = ent.size() > 1;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (size_t k = 2; k < ent.size(); ++k) {
          char c = ent[k];
          uint32_t d;
          if (c >= '0' && c <= '9') {
            d = static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            d = static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            d = static_cast<uint32_t>(c - 'A' + 10);
          }
          else { ok = false; break; }
          cp = cp * 16 + d;
        }
      } else {
        for (size_t k = 1; k < ent.size(); ++k) {
          char c = ent[k];
          if (c < '0' || c > '9') { ok = false; break; }
          cp = cp * 10 + static_cast<uint32_t>(c - '0');
        }
      }
      if (!ok || cp > 0x10ffff) {
        return Status::ParseError("bad numeric character reference: &" +
                                  std::string(ent) + ";");
      }
      AppendUtf8(&out, cp);
    } else {
      return Status::ParseError("unknown entity: &" + std::string(ent) +
                                ";");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace nok
