// In-memory document tree ("subject tree" of the paper, Figure 2).
//
// Used by the oracle evaluator in tests, by the navigational baseline
// engine (the X-Hive stand-in), and by the data generators.  Attributes
// are modeled as child nodes named "@attr" carrying the attribute value,
// exactly as the paper maps @year to a child symbol z in Figure 2.

#ifndef NOKXML_XML_DOM_H_
#define NOKXML_XML_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace nok {

/// One node of the subject tree.
struct DomNode {
  /// Element name, or "@name" for an attribute node.
  std::string name;
  /// Concatenated direct text content (the node's "value" in the paper's
  /// data model), or the attribute value for attribute nodes.
  std::string value;

  DomNode* parent = nullptr;
  std::vector<std::unique_ptr<DomNode>> children;

  /// Pre/post-order interval: start < d.start && end > d.end iff d is a
  /// descendant of this node.  Assigned by the builder.
  uint32_t start = 0;
  uint32_t end = 0;
  /// Depth; the root is level 1 (paper convention, Figure 4).
  int level = 0;
  /// Index of this node among its parent's children.
  uint32_t child_index = 0;

  bool is_attribute() const { return !name.empty() && name[0] == '@'; }
};

/// Owning handle for a parsed document.
class DomTree {
 public:
  DomTree() = default;
  DomTree(DomTree&&) = default;
  DomTree& operator=(DomTree&&) = default;

  /// Parses an XML document into a tree.  The root DomNode is the document
  /// root element itself.
  static Result<DomTree> Parse(const std::string& xml);

  const DomNode* root() const { return root_.get(); }
  DomNode* mutable_root() { return root_.get(); }

  /// Total node count (elements + attribute nodes).
  size_t node_count() const { return node_count_; }
  /// Maximum level (root = 1).
  int max_depth() const { return max_depth_; }
  /// Sum of leaf depths / number of leaves (the paper's "avg depth").
  double avg_depth() const { return avg_depth_; }
  /// Number of distinct tag names (including attribute pseudo-tags).
  size_t distinct_tags() const { return distinct_tags_; }

  /// Recomputes (start, end, level, child_index) after mutations and
  /// refreshes the statistics.
  void Renumber();

 private:
  std::unique_ptr<DomNode> root_;
  size_t node_count_ = 0;
  int max_depth_ = 0;
  double avg_depth_ = 0;
  size_t distinct_tags_ = 0;
};

/// Calls fn(node) for every node in document order (pre-order).
template <typename Fn>
void ForEachNode(const DomNode* node, Fn&& fn) {
  fn(node);
  for (const auto& child : node->children) {
    ForEachNode(child.get(), fn);
  }
}

}  // namespace nok

#endif  // NOKXML_XML_DOM_H_
