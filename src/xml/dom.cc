#include "xml/dom.h"

#include <unordered_set>

#include "common/logging.h"
#include "xml/escape.h"
#include "xml/sax_parser.h"

namespace nok {

Result<DomTree> DomTree::Parse(const std::string& xml) {
  SaxParser parser(xml);
  DomTree tree;
  DomNode* current = nullptr;
  SaxEvent event;
  for (;;) {
    NOK_RETURN_IF_ERROR(parser.Next(&event));
    switch (event.type) {
      case SaxEvent::Type::kStartElement: {
        auto node = std::make_unique<DomNode>();
        node->name = std::move(event.name);
        node->parent = current;
        DomNode* raw = node.get();
        if (current == nullptr) {
          if (tree.root_ != nullptr) {
            return Status::ParseError("multiple root elements");
          }
          tree.root_ = std::move(node);
        } else {
          current->children.push_back(std::move(node));
        }
        // Attribute nodes come first among the children, in document
        // order, mirroring Figure 2 of the paper.
        for (auto& [attr_name, attr_value] : event.attributes) {
          auto attr = std::make_unique<DomNode>();
          attr->name = "@" + attr_name;
          attr->value = std::move(attr_value);
          attr->parent = raw;
          raw->children.push_back(std::move(attr));
        }
        current = raw;
        break;
      }
      case SaxEvent::Type::kEndElement: {
        if (current == nullptr) {
          return Status::ParseError("unbalanced end element");
        }
        current = current->parent;
        break;
      }
      case SaxEvent::Type::kText: {
        if (current == nullptr) {
          return Status::ParseError("text outside the root");
        }
        AppendTextChunk(&current->value, event.text);
        break;
      }
      case SaxEvent::Type::kEndDocument: {
        if (tree.root_ == nullptr) {
          return Status::ParseError("empty document");
        }
        tree.Renumber();
        return tree;
      }
    }
  }
}

void DomTree::Renumber() {
  NOK_CHECK(root_ != nullptr);
  uint32_t counter = 0;
  node_count_ = 0;
  max_depth_ = 0;
  size_t leaf_count = 0;
  uint64_t leaf_depth_sum = 0;
  std::unordered_set<std::string> tags;

  // Iterative pre/post numbering to survive very deep trees.
  struct Item {
    DomNode* node;
    size_t next_child;
  };
  std::vector<Item> stack;
  root_->parent = nullptr;
  root_->level = 1;
  root_->child_index = 0;
  stack.push_back({root_.get(), 0});
  root_->start = counter++;
  ++node_count_;
  tags.insert(root_->name);
  max_depth_ = 1;

  while (!stack.empty()) {
    Item& top = stack.back();
    if (top.next_child < top.node->children.size()) {
      DomNode* child = top.node->children[top.next_child].get();
      child->parent = top.node;
      child->level = top.node->level + 1;
      child->child_index = static_cast<uint32_t>(top.next_child);
      ++top.next_child;
      child->start = counter++;
      ++node_count_;
      tags.insert(child->name);
      if (child->level > max_depth_) max_depth_ = child->level;
      stack.push_back({child, 0});
    } else {
      top.node->end = counter++;
      if (top.node->children.empty()) {
        ++leaf_count;
        leaf_depth_sum += static_cast<uint64_t>(top.node->level);
      }
      stack.pop_back();
    }
  }
  avg_depth_ = leaf_count == 0
                   ? 0
                   : static_cast<double>(leaf_depth_sum) /
                         static_cast<double>(leaf_count);
  distinct_tags_ = tags.size();
}

}  // namespace nok
