#include "xml/sax_parser.h"

#include <cctype>

#include "xml/escape.h"

namespace nok {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsAllWhitespace(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

SaxParser::SaxParser(std::string input, Options options)
    : input_(std::move(input)), options_(options) {}

Status SaxParser::ErrorAt(const std::string& message) const {
  return Status::ParseError(message + " (at byte " + std::to_string(pos_) +
                            ")");
}

void SaxParser::SkipWhitespace() {
  while (pos_ < input_.size() &&
         std::isspace(static_cast<unsigned char>(input_[pos_]))) {
    ++pos_;
  }
}

Status SaxParser::ParseName(std::string* name) {
  if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
    return ErrorAt("expected a name");
  }
  size_t start = pos_;
  while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
  name->assign(input_, start, pos_ - start);
  return Status::OK();
}

Status SaxParser::Next(SaxEvent* event) {
  if (pending_self_close_) {
    pending_self_close_ = false;
    event->type = SaxEvent::Type::kEndElement;
    event->name = std::move(pending_name_);
    event->attributes.clear();
    event->text.clear();
    if (open_elements_.empty()) root_closed_ = true;
    return Status::OK();
  }

  for (;;) {
    if (open_elements_.empty()) {
      // Outside the root element only whitespace and misc markup may occur.
      SkipWhitespace();
    }
    if (pos_ >= input_.size()) {
      if (!open_elements_.empty()) {
        return ErrorAt("unexpected end of input; <" + open_elements_.back() +
                       "> is still open");
      }
      event->type = SaxEvent::Type::kEndDocument;
      event->name.clear();
      event->attributes.clear();
      event->text.clear();
      return Status::OK();
    }
    if (input_[pos_] == '<') {
      // Distinguish markup kinds; comments/PIs/doctype are skipped and we
      // loop for the next real event.
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '!') {
        if (input_.compare(pos_, 4, "<!--") == 0) {
          NOK_RETURN_IF_ERROR(SkipComment());
          continue;
        }
        if (input_.compare(pos_, 9, "<![CDATA[") == 0) {
          NOK_RETURN_IF_ERROR(ParseCdata(event));
          if (event->text.empty()) continue;  // Empty CDATA: no event.
          return Status::OK();
        }
        if (input_.compare(pos_, 9, "<!DOCTYPE") == 0) {
          NOK_RETURN_IF_ERROR(SkipDoctype());
          continue;
        }
        return ErrorAt("unrecognized markup declaration");
      }
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '?') {
        NOK_RETURN_IF_ERROR(SkipProcessingInstruction());
        continue;
      }
      return ParseMarkup(event);
    }
    // Character data.
    if (open_elements_.empty()) {
      return ErrorAt("character data outside the root element");
    }
    NOK_RETURN_IF_ERROR(ParseText(event));
    if (event->text.empty() ||
        (options_.skip_whitespace_text && IsAllWhitespace(event->text))) {
      continue;
    }
    return Status::OK();
  }
}

Status SaxParser::ParseMarkup(SaxEvent* event) {
  if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
    return ParseEndTag(event);
  }
  return ParseStartTag(event);
}

Status SaxParser::ParseStartTag(SaxEvent* event) {
  if (root_closed_) {
    return ErrorAt("content after the root element");
  }
  ++pos_;  // '<'
  event->type = SaxEvent::Type::kStartElement;
  event->attributes.clear();
  event->text.clear();
  NOK_RETURN_IF_ERROR(ParseName(&event->name));

  for (;;) {
    SkipWhitespace();
    if (pos_ >= input_.size()) return ErrorAt("unterminated start tag");
    if (input_[pos_] == '>') {
      ++pos_;
      open_elements_.push_back(event->name);
      seen_root_ = true;
      return Status::OK();
    }
    if (input_[pos_] == '/') {
      if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '>') {
        return ErrorAt("malformed self-closing tag");
      }
      pos_ += 2;
      // Synthesize the matching end-element for the next Next() call.
      pending_self_close_ = true;
      pending_name_ = event->name;
      seen_root_ = true;
      if (open_elements_.empty()) {
        // Root is a self-closing element; root closes when the synthetic
        // end event is delivered.
      }
      return Status::OK();
    }
    // Attribute.
    std::string attr_name;
    NOK_RETURN_IF_ERROR(ParseName(&attr_name));
    SkipWhitespace();
    if (pos_ >= input_.size() || input_[pos_] != '=') {
      return ErrorAt("expected '=' after attribute name");
    }
    ++pos_;
    SkipWhitespace();
    if (pos_ >= input_.size() ||
        (input_[pos_] != '"' && input_[pos_] != '\'')) {
      return ErrorAt("expected quoted attribute value");
    }
    const char quote = input_[pos_++];
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
    if (pos_ >= input_.size()) {
      return ErrorAt("unterminated attribute value");
    }
    NOK_ASSIGN_OR_RETURN(
        auto decoded,
        DecodeEntities(Slice(input_.data() + start, pos_ - start)));
    ++pos_;  // Closing quote.
    event->attributes.emplace_back(std::move(attr_name),
                                   std::move(decoded));
  }
}

Status SaxParser::ParseEndTag(SaxEvent* event) {
  pos_ += 2;  // "</"
  event->type = SaxEvent::Type::kEndElement;
  event->attributes.clear();
  event->text.clear();
  NOK_RETURN_IF_ERROR(ParseName(&event->name));
  SkipWhitespace();
  if (pos_ >= input_.size() || input_[pos_] != '>') {
    return ErrorAt("malformed end tag");
  }
  ++pos_;
  if (open_elements_.empty()) {
    return ErrorAt("end tag </" + event->name + "> with no open element");
  }
  if (open_elements_.back() != event->name) {
    return ErrorAt("mismatched end tag: expected </" +
                   open_elements_.back() + ">, found </" + event->name +
                   ">");
  }
  open_elements_.pop_back();
  if (open_elements_.empty()) root_closed_ = true;
  return Status::OK();
}

Status SaxParser::SkipComment() {
  size_t end = input_.find("-->", pos_ + 4);
  if (end == std::string::npos) return ErrorAt("unterminated comment");
  pos_ = end + 3;
  return Status::OK();
}

Status SaxParser::SkipProcessingInstruction() {
  size_t end = input_.find("?>", pos_ + 2);
  if (end == std::string::npos) {
    return ErrorAt("unterminated processing instruction");
  }
  pos_ = end + 2;
  return Status::OK();
}

Status SaxParser::SkipDoctype() {
  // Skip to the closing '>', honouring one level of [...] internal subset.
  pos_ += 9;
  int bracket_depth = 0;
  while (pos_ < input_.size()) {
    char c = input_[pos_++];
    if (c == '[') ++bracket_depth;
    else if (c == ']') --bracket_depth;
    else if (c == '>' && bracket_depth == 0) return Status::OK();
  }
  return ErrorAt("unterminated DOCTYPE");
}

Status SaxParser::ParseCdata(SaxEvent* event) {
  if (open_elements_.empty()) {
    return ErrorAt("CDATA outside the root element");
  }
  size_t start = pos_ + 9;
  size_t end = input_.find("]]>", start);
  if (end == std::string::npos) return ErrorAt("unterminated CDATA");
  event->type = SaxEvent::Type::kText;
  event->name.clear();
  event->attributes.clear();
  event->text.assign(input_, start, end - start);
  pos_ = end + 3;
  return Status::OK();
}

Status SaxParser::ParseText(SaxEvent* event) {
  size_t start = pos_;
  while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
  event->type = SaxEvent::Type::kText;
  event->name.clear();
  event->attributes.clear();
  NOK_ASSIGN_OR_RETURN(
      auto decoded,
      DecodeEntities(Slice(input_.data() + start, pos_ - start)));
  event->text = std::move(decoded);
  return Status::OK();
}

}  // namespace nok
