#include "storage/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <vector>

namespace nok {

namespace {

/// Maps a write-path errno to a Status with an actionable message.  Disk
/// exhaustion gets its own wording so operators do not chase it as a bug.
Status WriteErrnoToStatus(const char* op, int err) {
  if (err == ENOSPC) {
    return Status::IOError(std::string(op) +
                           ": no space left on device (ENOSPC); free disk "
                           "space and retry");
  }
#ifdef EDQUOT
  if (err == EDQUOT) {
    return Status::IOError(std::string(op) +
                           ": disk quota exceeded (EDQUOT); raise the "
                           "quota or free space and retry");
  }
#endif
  return Status::IOError(std::string(op) + ": " + strerror(err));
}

/// File backed by a POSIX file descriptor using pread/pwrite.  ReadAt is
/// safe for concurrent callers (pread carries its own offset); the write
/// path is single-threaded by contract.
class PosixFile final : public File {
 public:
  PosixFile(int fd, uint64_t size, bool writable)
      : fd_(fd), size_(size), writable_(writable) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, size_t n, char* scratch,
                Slice* out) const override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pread: ") + strerror(errno));
      }
      if (r == 0) {
        return Status::IOError("short read at offset " +
                               std::to_string(offset));
      }
      got += static_cast<size_t>(r);
    }
    *out = Slice(scratch, n);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const Slice& data) override {
    if (!writable_) {
      return Status::InvalidArgument("pwrite: file opened read-only");
    }
    size_t put = 0;
    while (put < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + put, data.size() - put,
                           static_cast<off_t>(offset + put));
      if (w < 0) {
        if (errno == EINTR) continue;
        return WriteErrnoToStatus("pwrite", errno);
      }
      put += static_cast<size_t>(w);
    }
    size_ = std::max(size_, offset + data.size());
    return Status::OK();
  }

  Status Append(const Slice& data, uint64_t* offset) override {
    *offset = size_;
    return WriteAt(size_, data);
  }

  uint64_t Size() const override { return size_; }

  Status Truncate(uint64_t size) override {
    if (!writable_) {
      return Status::InvalidArgument("ftruncate: file opened read-only");
    }
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return WriteErrnoToStatus("ftruncate", errno);
    }
    size_ = size;
    return Status::OK();
  }

  Status Sync() override {
    if (!writable_) return Status::OK();  // Nothing can be dirty.
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(std::string("fdatasync: ") + strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
  uint64_t size_;
  bool writable_;
};

/// File held entirely in a std::string; used by tests.
class MemFile final : public File {
 public:
  Status ReadAt(uint64_t offset, size_t n, char* scratch,
                Slice* out) const override {
    if (offset + n > data_.size()) {
      return Status::IOError("mem read past end of file");
    }
    memcpy(scratch, data_.data() + offset, n);
    *out = Slice(scratch, n);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const Slice& data) override {
    if (offset + data.size() > data_.size()) {
      data_.resize(offset + data.size());
    }
    memcpy(data_.data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status Append(const Slice& data, uint64_t* offset) override {
    *offset = data_.size();
    data_.append(data.data(), data.size());
    return Status::OK();
  }

  uint64_t Size() const override { return data_.size(); }

  Status Truncate(uint64_t size) override {
    data_.resize(size);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::string data_;
};

}  // namespace

Result<std::unique_ptr<File>> OpenPosixFile(const std::string& path,
                                            bool create) {
  // O_CLOEXEC so store fds do not leak into children the process spawns.
  int flags = O_RDWR | O_CLOEXEC;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<File>(
      new PosixFile(fd, static_cast<uint64_t>(st.st_size),
                    /*writable=*/true));
}

Result<std::unique_ptr<File>> OpenPosixFileReadOnly(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<File>(
      new PosixFile(fd, static_cast<uint64_t>(st.st_size),
                    /*writable=*/false));
}

std::unique_ptr<File> NewMemFile() { return std::make_unique<MemFile>(); }

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink " + path + ": " + strerror(errno));
  }
  return Status::OK();
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("mkdir " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  NOK_ASSIGN_OR_RETURN(auto file, OpenPosixFile(path, /*create=*/false));
  out->resize(file->Size());
  if (out->empty()) return Status::OK();
  Slice unused;
  return file->ReadAt(0, out->size(), out->data(), &unused);
}

Status WriteStringToFile(const std::string& path, const Slice& data) {
  NOK_ASSIGN_OR_RETURN(auto file, OpenPosixFile(path, /*create=*/true));
  NOK_RETURN_IF_ERROR(file->Truncate(0));
  NOK_RETURN_IF_ERROR(file->WriteAt(0, data));
  return file->Sync();
}

}  // namespace nok
