#include "storage/wal.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace nok {

namespace {

// Payload layouts (after the frame header), all little-endian varints:
//   kTxnBegin:     epoch
//   kFileWrite:    len-prefixed name, offset, data (to end of payload)
//   kFileTruncate: len-prefixed name, size
//   kFileReplace:  len-prefixed name, contents (to end of payload)
//   kFileRemove:   len-prefixed name
//   kTxnCommit:    epoch, record_count
//   kCheckpoint:   epoch

bool ValidRecordType(uint8_t type) {
  return type >= static_cast<uint8_t>(WalRecordType::kTxnBegin) &&
         type <= static_cast<uint8_t>(WalRecordType::kCheckpoint);
}

std::string EncodePayload(const WalRecord& rec) {
  std::string payload;
  switch (rec.type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCheckpoint:
      PutVarint64(&payload, rec.epoch);
      break;
    case WalRecordType::kTxnCommit:
      PutVarint64(&payload, rec.epoch);
      PutVarint64(&payload, rec.record_count);
      break;
    case WalRecordType::kFileWrite:
      PutLengthPrefixedSlice(&payload, Slice(rec.name));
      PutVarint64(&payload, rec.offset);
      payload.append(rec.data);
      break;
    case WalRecordType::kFileTruncate:
      PutLengthPrefixedSlice(&payload, Slice(rec.name));
      PutVarint64(&payload, rec.size);
      break;
    case WalRecordType::kFileReplace:
      PutLengthPrefixedSlice(&payload, Slice(rec.name));
      payload.append(rec.data);
      break;
    case WalRecordType::kFileRemove:
      PutLengthPrefixedSlice(&payload, Slice(rec.name));
      break;
  }
  return payload;
}

Status DecodePayload(WalRecordType type, Slice payload, WalRecord* rec) {
  rec->type = type;
  switch (type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCheckpoint:
      if (!GetVarint64(&payload, &rec->epoch)) {
        return Status::Corruption("WAL record: bad epoch varint");
      }
      return Status::OK();
    case WalRecordType::kTxnCommit:
      if (!GetVarint64(&payload, &rec->epoch) ||
          !GetVarint64(&payload, &rec->record_count)) {
        return Status::Corruption("WAL commit record: bad varint");
      }
      return Status::OK();
    case WalRecordType::kFileWrite: {
      Slice name;
      if (!GetLengthPrefixedSlice(&payload, &name) ||
          !GetVarint64(&payload, &rec->offset)) {
        return Status::Corruption("WAL write record: bad header");
      }
      rec->name.assign(name.data(), name.size());
      rec->data.assign(payload.data(), payload.size());
      return Status::OK();
    }
    case WalRecordType::kFileTruncate: {
      Slice name;
      if (!GetLengthPrefixedSlice(&payload, &name) ||
          !GetVarint64(&payload, &rec->size)) {
        return Status::Corruption("WAL truncate record: bad header");
      }
      rec->name.assign(name.data(), name.size());
      return Status::OK();
    }
    case WalRecordType::kFileReplace: {
      Slice name;
      if (!GetLengthPrefixedSlice(&payload, &name)) {
        return Status::Corruption("WAL replace record: bad name");
      }
      rec->name.assign(name.data(), name.size());
      rec->data.assign(payload.data(), payload.size());
      return Status::OK();
    }
    case WalRecordType::kFileRemove: {
      Slice name;
      if (!GetLengthPrefixedSlice(&payload, &name)) {
        return Status::Corruption("WAL remove record: bad name");
      }
      rec->name.assign(name.data(), name.size());
      return Status::OK();
    }
  }
  return Status::Corruption("WAL record: unknown type");
}

}  // namespace

void AppendWalFrame(std::string* out, const WalRecord& rec) {
  const std::string payload = EncodePayload(rec);
  // Body = type byte + length + payload; the CRC covers all of it so a
  // corrupted length cannot send the scanner off into garbage.
  std::string body;
  body.push_back(static_cast<char>(rec.type));
  PutFixed32(&body, static_cast<uint32_t>(payload.size()));
  body.append(payload);
  PutFixed32(out, Crc32c(Slice(body)));
  out->append(body);
}

Result<bool> ReadWalFrame(const Slice& buf, size_t* pos, WalRecord* rec) {
  if (*pos == buf.size()) return false;
  if (buf.size() - *pos < kWalFrameHeaderSize) {
    return Status::Corruption("WAL: short frame header");
  }
  const char* p = buf.data() + *pos;
  const uint32_t crc = DecodeFixed32(p);
  const uint8_t type = static_cast<uint8_t>(p[4]);
  const uint32_t len = DecodeFixed32(p + 5);
  if (buf.size() - *pos - kWalFrameHeaderSize < len) {
    return Status::Corruption("WAL: short frame payload");
  }
  if (Crc32c(Slice(p + 4, 5 + len)) != crc) {
    return Status::Corruption("WAL: frame CRC mismatch");
  }
  if (!ValidRecordType(type)) {
    return Status::Corruption("WAL: unknown record type");
  }
  NOK_RETURN_IF_ERROR(DecodePayload(static_cast<WalRecordType>(type),
                                    Slice(p + kWalFrameHeaderSize, len),
                                    rec));
  *pos += kWalFrameHeaderSize + len;
  return true;
}

// --- TxnFile --------------------------------------------------------------

TxnFile::TxnFile(std::string name, std::unique_ptr<File> base,
                 WalWriter* wal)
    : name_(std::move(name)), base_(std::move(base)), wal_(wal) {
  wal_->Register(this);
}

TxnFile::~TxnFile() { wal_->Unregister(this); }

bool TxnFile::InTransaction() const { return wal_->in_transaction(); }

uint64_t TxnFile::VirtualSize() const {
  return dirty_ ? virtual_size_ : base_->Size();
}

uint64_t TxnFile::BaseValidLimit() const {
  const uint64_t base_size = base_->Size();
  if (truncate_floor_.has_value()) {
    return std::min(base_size, *truncate_floor_);
  }
  return base_size;
}

uint64_t TxnFile::Size() const { return VirtualSize(); }

Status TxnFile::Sync() {
  if (InTransaction()) return Status::OK();  // deferred to commit
  return base_->Sync();
}

void TxnFile::OverlayWrite(uint64_t offset, const Slice& data) {
  if (data.empty()) return;
  wal_->NoteCapture();
  if (!dirty_) {
    dirty_ = true;
    virtual_size_ = base_->Size();
    truncate_floor_.reset();
  }
  const uint64_t end = offset + data.size();
  // Absorb every existing range that overlaps or abuts [offset, end) into
  // one contiguous replacement range so the map stays non-overlapping.
  uint64_t new_start = offset;
  std::string merged;
  auto it = ranges_.upper_bound(offset);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() >= offset) it = prev;
  }
  if (it != ranges_.end() && it->first < offset) {
    new_start = it->first;
    merged.append(it->second, 0, offset - it->first);
  }
  merged.append(data.data(), data.size());
  while (it != ranges_.end() && it->first <= end) {
    const uint64_t range_end = it->first + it->second.size();
    if (range_end > end) {
      merged.append(it->second, end - it->first, std::string::npos);
    }
    it = ranges_.erase(it);
  }
  ranges_[new_start] = std::move(merged);
  virtual_size_ = std::max(virtual_size_, end);
}

Status TxnFile::ReadAt(uint64_t offset, size_t n, char* scratch,
                       Slice* out) const {
  if (!dirty_) return base_->ReadAt(offset, n, scratch, out);
  if (n == 0) {
    *out = Slice(scratch, 0);
    return Status::OK();
  }
  if (offset + n > virtual_size_) {
    return Status::IOError("short read (txn overlay, file " + name_ + ")");
  }
  // Assemble: overlay ranges win; gaps come from the base below the
  // truncate floor and are zero above it (truncate-extend semantics).
  const uint64_t end = offset + n;
  const uint64_t base_limit = BaseValidLimit();
  std::memset(scratch, 0, n);
  uint64_t cursor = offset;
  auto it = ranges_.upper_bound(offset);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > offset) it = prev;
  }
  while (cursor < end) {
    uint64_t gap_end = end;
    if (it != ranges_.end() && it->first < end) {
      gap_end = std::max(cursor, it->first);
    }
    if (gap_end > cursor) {
      // Gap [cursor, gap_end): base bytes up to the valid limit, zeros
      // beyond (already memset).
      const uint64_t base_end = std::min(gap_end, base_limit);
      if (base_end > cursor) {
        Slice chunk;
        NOK_RETURN_IF_ERROR(base_->ReadAt(
            cursor, base_end - cursor, scratch + (cursor - offset),
            &chunk));
        if (chunk.data() != scratch + (cursor - offset)) {
          std::memcpy(scratch + (cursor - offset), chunk.data(),
                      chunk.size());
        }
      }
      cursor = gap_end;
    }
    if (it != ranges_.end() && it->first < end && cursor < end) {
      const uint64_t range_end = it->first + it->second.size();
      const uint64_t copy_start = std::max(cursor, it->first);
      const uint64_t copy_end = std::min(end, range_end);
      std::memcpy(scratch + (copy_start - offset),
                  it->second.data() + (copy_start - it->first),
                  copy_end - copy_start);
      cursor = copy_end;
      ++it;
    }
  }
  *out = Slice(scratch, n);
  return Status::OK();
}

Status TxnFile::WriteAt(uint64_t offset, const Slice& data) {
  if (!InTransaction()) return base_->WriteAt(offset, data);
  OverlayWrite(offset, data);
  return Status::OK();
}

Status TxnFile::Append(const Slice& data, uint64_t* offset) {
  if (!InTransaction()) return base_->Append(data, offset);
  const uint64_t at = VirtualSize();
  OverlayWrite(at, data);
  if (offset != nullptr) *offset = at;
  return Status::OK();
}

Status TxnFile::Truncate(uint64_t size) {
  if (!InTransaction()) return base_->Truncate(size);
  wal_->NoteCapture();
  if (!dirty_) {
    dirty_ = true;
    virtual_size_ = base_->Size();
    truncate_floor_.reset();
  }
  // Drop overlay bytes at or past the cut; trim a straddling range.
  auto it = ranges_.lower_bound(size);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > size) prev->second.resize(size - prev->first);
  }
  ranges_.erase(it, ranges_.end());
  truncate_floor_ =
      std::min(truncate_floor_.value_or(size), size);
  virtual_size_ = size;
  return Status::OK();
}

void TxnFile::EncodeOverlay(std::string* out,
                            uint64_t* record_count) const {
  if (!dirty_) return;
  WalRecord rec;
  const uint64_t base_size = base_->Size();
  uint64_t applied_size = base_size;
  if (truncate_floor_.has_value() && *truncate_floor_ < base_size) {
    rec.type = WalRecordType::kFileTruncate;
    rec.name = name_;
    rec.size = *truncate_floor_;
    AppendWalFrame(out, rec);
    ++*record_count;
    applied_size = *truncate_floor_;
  }
  for (const auto& [offset, data] : ranges_) {
    rec = WalRecord();
    rec.type = WalRecordType::kFileWrite;
    rec.name = name_;
    rec.offset = offset;
    rec.data = data;
    AppendWalFrame(out, rec);
    ++*record_count;
    applied_size = std::max(applied_size, offset + data.size());
  }
  if (applied_size != virtual_size_) {
    // Truncate-extend (or pure shrink with no rewrites) to the final size.
    rec = WalRecord();
    rec.type = WalRecordType::kFileTruncate;
    rec.name = name_;
    rec.size = virtual_size_;
    AppendWalFrame(out, rec);
    ++*record_count;
  }
}

Status TxnFile::ApplyOverlayToBase(
    const std::function<void(const std::string& name, uint64_t offset,
                             std::string preimage)>& retain) {
  if (!dirty_) return Status::OK();
  const uint64_t base_size = base_->Size();
  auto retain_range = [&](uint64_t offset, uint64_t n) -> Status {
    if (!retain || n == 0 || offset >= base_size) return Status::OK();
    const uint64_t end = std::min(offset + n, base_size);
    std::string preimage(end - offset, '\0');
    Slice got;
    NOK_RETURN_IF_ERROR(
        base_->ReadAt(offset, preimage.size(), preimage.data(), &got));
    if (got.data() != preimage.data()) {
      preimage.assign(got.data(), got.size());
    }
    retain(name_, offset, std::move(preimage));
    return Status::OK();
  };
  uint64_t applied_size = base_size;
  if (truncate_floor_.has_value() && *truncate_floor_ < base_size) {
    // The tail being cut off may still be visible to snapshot readers.
    NOK_RETURN_IF_ERROR(
        retain_range(*truncate_floor_, base_size - *truncate_floor_));
    NOK_RETURN_IF_ERROR(base_->Truncate(*truncate_floor_));
    applied_size = *truncate_floor_;
  }
  for (const auto& [offset, data] : ranges_) {
    NOK_RETURN_IF_ERROR(retain_range(offset, data.size()));
    NOK_RETURN_IF_ERROR(base_->WriteAt(offset, Slice(data)));
    applied_size = std::max(applied_size, offset + data.size());
  }
  if (applied_size != virtual_size_) {
    NOK_RETURN_IF_ERROR(base_->Truncate(virtual_size_));
  }
  return Status::OK();
}

void TxnFile::DiscardOverlay() {
  dirty_ = false;
  ranges_.clear();
  virtual_size_ = 0;
  truncate_floor_.reset();
}

// --- WalWriter ------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    std::string dir, std::unique_ptr<File> wal_file,
    WalWriterOptions options) {
  if (wal_file->Size() < kWalHeaderSize) {
    NOK_RETURN_IF_ERROR(wal_file->Truncate(0));
    uint64_t unused;
    NOK_RETURN_IF_ERROR(
        wal_file->Append(Slice(kWalMagic, kWalHeaderSize), &unused));
    NOK_RETURN_IF_ERROR(wal_file->Sync());
  } else {
    char magic[kWalHeaderSize];
    Slice got;
    NOK_RETURN_IF_ERROR(
        wal_file->ReadAt(0, kWalHeaderSize, magic, &got));
    if (std::memcmp(got.data(), kWalMagic, kWalHeaderSize) != 0) {
      return Status::Corruption("WAL file has a bad magic header");
    }
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(dir), std::move(wal_file), options));
}

WalWriter::~WalWriter() {
  // A TxnFile must never outlive its WalWriter; destroy the wrapped
  // component files first.
  NOK_CHECK(files_.empty());
}

std::unique_ptr<File> WalWriter::Wrap(std::string name,
                                      std::unique_ptr<File> base) {
  return std::make_unique<TxnFile>(std::move(name), std::move(base), this);
}

void WalWriter::Register(TxnFile* file) {
  MutexLock lock(&mu_);
  files_.push_back(file);
}

void WalWriter::Unregister(TxnFile* file) {
  MutexLock lock(&mu_);
  files_.erase(std::remove(files_.begin(), files_.end(), file),
               files_.end());
}

void WalWriter::NoteCapture() {
  MutexLock lock(&mu_);
  ++capture_ticks_;
}

void WalWriter::Begin() {
  MutexLock lock(&mu_);
  in_transaction_ = true;
}

bool WalWriter::in_transaction() const {
  MutexLock lock(&mu_);
  return in_transaction_;
}

void WalWriter::set_retain_hook(RetainHook hook) {
  MutexLock lock(&mu_);
  retain_ = std::move(hook);
}

uint64_t WalWriter::capture_ticks() const {
  MutexLock lock(&mu_);
  return capture_ticks_;
}

WalWriter::Stats WalWriter::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void WalWriter::StageReplace(std::string name, std::string contents) {
  MutexLock lock(&mu_);
  ++capture_ticks_;  // NoteCapture would retake mu_
  StagedOp op;
  op.name = std::move(name);
  op.contents = std::move(contents);
  staged_.push_back(std::move(op));
}

void WalWriter::StageRemove(std::string name) {
  MutexLock lock(&mu_);
  ++capture_ticks_;  // NoteCapture would retake mu_
  StagedOp op;
  op.name = std::move(name);
  op.remove = true;
  staged_.push_back(std::move(op));
}

Status WalWriter::Abort() {
  MutexLock lock(&mu_);
  for (TxnFile* file : files_) file->DiscardOverlay();
  staged_.clear();
  in_transaction_ = false;
  return Status::OK();
}

Status WalWriter::Commit(uint64_t epoch) {
  // Held for the whole commit, base-file I/O included: the commit path
  // never calls back into WalWriter (TxnFile overlay methods and raw
  // File ops only), and the retain hook takes only mutexes ordered
  // after mu_ (SnapshotTracker, PageVersionStore).
  MutexLock lock(&mu_);
  if (!in_transaction_) return Status::OK();
  // 1. Serialize the whole transaction into one blob: begin, every
  //    overlay and staged op, commit.  One Append + one Sync makes the
  //    durability point a single fsync (group commit).
  std::string blob;
  uint64_t record_count = 0;
  WalRecord rec;
  rec.type = WalRecordType::kTxnBegin;
  rec.epoch = epoch;
  AppendWalFrame(&blob, rec);
  for (const TxnFile* file : files_) {
    file->EncodeOverlay(&blob, &record_count);
  }
  for (const StagedOp& op : staged_) {
    rec = WalRecord();
    rec.name = op.name;
    if (op.remove) {
      rec.type = WalRecordType::kFileRemove;
    } else {
      rec.type = WalRecordType::kFileReplace;
      rec.data = op.contents;
    }
    AppendWalFrame(&blob, rec);
    ++record_count;
  }
  rec = WalRecord();
  rec.type = WalRecordType::kTxnCommit;
  rec.epoch = epoch;
  rec.record_count = record_count;
  AppendWalFrame(&blob, rec);

  uint64_t unused;
  NOK_RETURN_IF_ERROR(wal_->Append(Slice(blob), &unused));
  NOK_RETURN_IF_ERROR(wal_->Sync());
  ++stats_.wal_syncs;
  stats_.bytes_logged += blob.size();
  stats_.records_logged += record_count + 2;

  // 2. The transaction is durable; apply it to the base files.  From here
  //    on a crash is repaired by recovery replay, so errors still leave a
  //    recoverable store.
  std::function<void(const std::string&, uint64_t, std::string)> retain;
  if (retain_) {
    // The lambda runs inside ApplyOverlayToBase below, still under mu_,
    // but captures a copy of the hook rather than reading the guarded
    // retain_ member (a lambda body is analyzed as its own function).
    RetainHook hook = retain_;
    retain = [hook, epoch](const std::string& name, uint64_t offset,
                           std::string preimage) {
      hook(name, offset, std::move(preimage), epoch - 1);
    };
  }
  for (TxnFile* file : files_) {
    NOK_RETURN_IF_ERROR(file->ApplyOverlayToBase(retain));
  }
  for (TxnFile* file : files_) {
    if (file->dirty_) NOK_RETURN_IF_ERROR(file->base_->Sync());
    file->DiscardOverlay();
  }
  for (const StagedOp& op : staged_) {
    const std::string path = dir_ + "/" + op.name;
    if (op.remove) {
      NOK_RETURN_IF_ERROR(RemoveFile(path));
    } else {
      NOK_RETURN_IF_ERROR(WriteStringToFile(path, Slice(op.contents)));
    }
  }
  staged_.clear();
  in_transaction_ = false;
  ++stats_.commits;

  // 3. Mark the transaction applied; recovery skips checkpointed epochs.
  std::string tail;
  rec = WalRecord();
  rec.type = WalRecordType::kCheckpoint;
  rec.epoch = epoch;
  AppendWalFrame(&tail, rec);
  NOK_RETURN_IF_ERROR(wal_->Append(Slice(tail), &unused));
  NOK_RETURN_IF_ERROR(wal_->Sync());
  ++stats_.wal_syncs;

  // 4. Everything before the checkpoint is dead weight; reset a large WAL
  //    back to its header.
  if (wal_->Size() > options_.reset_threshold_bytes) {
    NOK_RETURN_IF_ERROR(wal_->Truncate(kWalHeaderSize));
    NOK_RETURN_IF_ERROR(wal_->Sync());
    ++stats_.resets;
  }
  return Status::OK();
}

}  // namespace nok
