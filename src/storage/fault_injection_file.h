// Fault-injection wrapper around the File interface.
//
// The robustness test harness (tests/fault_injection_test.cc) wraps every
// file a store opens in a FaultInjectionFile sharing one FaultInjector.
// The injector counts every I/O operation across all wrapped files and can
//
//   * fail the k-th operation deterministically (the LevelDB-style sweep:
//     run a workload once to count its operations, then re-run it once per
//     k asserting clean Status propagation and post-fault consistency);
//   * fail the k-th operation *of a given kind* — in particular the k-th
//     fsync, which is how the WAL's commit protocol (sync-the-log before
//     touching data files) is swept point by point;
//   * fail operations probabilistically with a seeded, reproducible RNG;
//   * tear the faulting write (apply a prefix of the data before failing),
//     which is what page checksums exist to catch;
//   * simulate a machine crash: drop every byte written since the last
//     Sync() in every live wrapped file, then fail all further I/O.  In
//     partial-persistence mode the crash instead keeps a seeded-random
//     subset of the individual unsynced writes — the kernel's freedom to
//     write back dirty pages in any order — which is what makes
//     data-before-meta fsync-ordering bugs observable at all: an
//     all-or-nothing drop can never persist the meta write while losing
//     the data write it was supposed to follow.
//
// Faults are "sticky" by default: once the scheduled operation fails, every
// later operation fails too, modelling a dead disk — which is what makes
// the sweep's atomicity assertions meaningful (nothing after the fault can
// quietly complete the torn operation).

#ifndef NOKXML_STORAGE_FAULT_INJECTION_FILE_H_
#define NOKXML_STORAGE_FAULT_INJECTION_FILE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/file.h"

namespace nok {

class FaultInjectionFile;

/// Kind of damage done at the faulting operation.
enum class FaultKind : uint8_t {
  kError,  ///< The operation fails with IOError; data is untouched.
  kTorn,   ///< A write applies a prefix of its data, then fails.
  kCrash,  ///< All unsynced data in every live wrapped file is dropped
           ///< (or partially kept, see EnablePartialCrash), then the
           ///< operation fails.
};

/// Classification of a file operation, for kind-targeted faults and
/// per-kind counters.
enum class FaultOpKind : uint8_t {
  kRead = 0,
  kWrite = 1,     ///< WriteAt and Append
  kTruncate = 2,
  kSync = 3,
};
inline constexpr size_t kNumFaultOpKinds = 4;

/// Shared fault controller.  Not thread-safe (the library is
/// single-threaded per store).  One injector is typically shared by every
/// file of a document store so the operation counter spans the whole
/// workload.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Arms a deterministic fault: the operation with 0-based index `index`
  /// (counting every operation through every wrapped file since the last
  /// Reset) fails with the given kind.  When sticky, every operation from
  /// `index` on fails; otherwise only that one.
  void FailAtOp(uint64_t index, FaultKind kind = FaultKind::kError,
                bool sticky = true);

  /// Arms a deterministic fault on the `index`-th operation *of kind
  /// `op`* (0-based, per-kind counter).  FailAtOpOfKind(kSync, 2, ...)
  /// fails the third fsync the workload issues, wherever it falls in the
  /// global operation stream.
  void FailAtOpOfKind(FaultOpKind op, uint64_t index,
                      FaultKind kind = FaultKind::kError,
                      bool sticky = true);

  /// Arms seeded probabilistic faults: each operation independently fails
  /// with probability p (non-sticky).
  void FailWithProbability(uint64_t seed, double p,
                           FaultKind kind = FaultKind::kError);

  /// Makes kCrash faults persist each individual unsynced write with
  /// probability `keep_probability` (seeded, reproducible) instead of
  /// dropping everything — modelling out-of-order page writeback.
  /// Cleared by Reset, not by Disarm.
  void EnablePartialCrash(uint64_t seed, double keep_probability = 0.5);

  /// Disarms all faults and clears counters.
  void Reset();

  /// Disarms all faults but keeps counters (used between the fault and the
  /// reopen phase of a sweep iteration).
  void Disarm();

  /// Operations observed since the last Reset.
  uint64_t ops_seen() const { return ops_seen_; }
  /// Operations of one kind observed since the last Reset.
  uint64_t ops_seen_of(FaultOpKind op) const {
    return ops_seen_by_kind_[static_cast<size_t>(op)];
  }
  /// Faults injected since the last Reset.
  uint64_t faults_injected() const { return faults_injected_; }

  /// Drops unsynced data in every live wrapped file (the crash
  /// simulation, also invoked automatically by a kCrash fault).  In
  /// partial-crash mode a seeded-random subset of the unsynced writes
  /// survives instead.
  Status DropAllUnsyncedData();

 private:
  friend class FaultInjectionFile;

  /// Called by wrapped files before each operation; returns the fault to
  /// inject for this operation, or kError-free OK via `fault == false`.
  bool NextOpFaults(FaultOpKind op, FaultKind* kind);

  void Register(FaultInjectionFile* file);
  void Unregister(FaultInjectionFile* file);

  uint64_t ops_seen_ = 0;
  std::array<uint64_t, kNumFaultOpKinds> ops_seen_by_kind_ = {};
  uint64_t faults_injected_ = 0;

  bool armed_ = false;
  bool sticky_ = true;
  bool tripped_ = false;  ///< A sticky fault has fired; everything fails.
  bool kind_filtered_ = false;     ///< fail_index_ counts only filter_op_
  FaultOpKind filter_op_ = FaultOpKind::kRead;
  uint64_t fail_index_ = 0;
  FaultKind kind_ = FaultKind::kError;

  bool probabilistic_ = false;
  double probability_ = 0;
  std::unique_ptr<Random> rng_;

  bool partial_crash_ = false;
  double keep_probability_ = 0.5;
  std::unique_ptr<Random> crash_rng_;

  std::vector<FaultInjectionFile*> files_;  ///< Live wrapped files.
};

/// File wrapper that consults a FaultInjector before every operation and
/// tracks a "durable image" (the contents as of the last Sync) plus the
/// individual unsynced operations since, so crashes can be simulated by
/// restoring the image and optionally re-playing a subset of the
/// unsynced writes.
class FaultInjectionFile final : public File {
 public:
  /// Takes ownership of base.  The injector must outlive this file.
  FaultInjectionFile(std::unique_ptr<File> base,
                     std::shared_ptr<FaultInjector> injector);
  ~FaultInjectionFile() override;

  Status ReadAt(uint64_t offset, size_t n, char* scratch,
                Slice* out) const override;
  Status WriteAt(uint64_t offset, const Slice& data) override;
  Status Append(const Slice& data, uint64_t* offset) override;
  uint64_t Size() const override { return base_->Size(); }
  Status Truncate(uint64_t size) override;
  Status Sync() override;

  /// Restores the file to its durable image (contents at the last
  /// successful Sync; empty if never synced).  Simulates losing the page
  /// cache in a machine crash.  `survivors` (may be null) selects which
  /// unsynced operations get re-applied on top — the injector passes its
  /// seeded RNG in partial-crash mode.
  Status DropUnsyncedData(Random* survivors = nullptr,
                          double keep_probability = 0.5);

 private:
  /// An unsynced mutation, replayable during a partial crash.
  struct PendingOp {
    bool is_truncate = false;
    uint64_t offset = 0;  ///< write offset, or truncate size
    std::string data;     ///< empty for truncates
  };

  Status CheckFault(FaultOpKind op, uint64_t offset, const Slice* data);
  Status CaptureDurableImage();
  void RecordWrite(uint64_t offset, const Slice& data);

  std::unique_ptr<File> base_;
  std::shared_ptr<FaultInjector> injector_;
  std::string durable_image_;
  std::vector<PendingOp> unsynced_ops_;
};

}  // namespace nok

#endif  // NOKXML_STORAGE_FAULT_INJECTION_FILE_H_
