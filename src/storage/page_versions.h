// Epoch-keyed pre-image retention for snapshot reads.
//
// The single-writer / multi-reader mode lets readers keep serving a
// committed epoch while the writer applies later commits in place.  At
// commit time, before a base byte range is overwritten or truncated away,
// its pre-image is retained here tagged with the last epoch it was valid
// for.  A reader pinned to epoch E reads the base file and then overlays
// any retained version with valid_through >= E — the writer inserts the
// version *before* touching the base bytes, so a reader that finds no
// version is guaranteed its base read predated the overwrite (see
// SnapshotFile::ReadAt for the double-check).
//
// Reclamation is epoch-based: once the oldest live snapshot has drained,
// every version whose valid_through is below the new minimum can never be
// read again and is dropped.
//
// Thread safety: PageVersionStore and SnapshotTracker are fully
// thread-safe; SnapshotFile is read-only and safe for concurrent readers.

#ifndef NOKXML_STORAGE_PAGE_VERSIONS_H_
#define NOKXML_STORAGE_PAGE_VERSIONS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/file.h"

namespace nok {

/// Retained pre-images for one component file, keyed by byte offset.
/// Offsets match the writer's write granularity (page slots for paged
/// components), but lookup is by range intersection, so readers with a
/// different read granularity still assemble correct bytes.
class PageVersionStore {
 public:
  /// Retains a pre-image of [offset, offset+preimage.size()) that was
  /// valid through `valid_through` (i.e. the overwrite commits epoch
  /// valid_through + 1).
  void Retain(uint64_t offset, std::string preimage,
              uint64_t valid_through) EXCLUDES(mu_);

  /// Overlays every retained version visible at `epoch` that intersects
  /// [offset, offset+n) onto dst (dst holds the base bytes for that
  /// range).  Returns true if any bytes were overlaid.
  bool OverlayForEpoch(uint64_t epoch, uint64_t offset, char* dst,
                       size_t n) const EXCLUDES(mu_);

  /// Drops versions that no snapshot at or above `min_epoch` can read
  /// (valid_through < min_epoch).
  void ReclaimBelow(uint64_t min_epoch) EXCLUDES(mu_);

  uint64_t entry_count() const EXCLUDES(mu_);
  uint64_t byte_count() const EXCLUDES(mu_);

 private:
  struct Version {
    uint64_t valid_through;
    std::string data;
  };

  mutable Mutex mu_;
  /// offset -> versions, oldest first (ascending valid_through).
  std::map<uint64_t, std::vector<Version>> by_offset_ GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
};

/// Registry of live snapshot epochs plus the version stores to reclaim
/// from when the oldest drains.
class SnapshotTracker {
 public:
  /// Adds a component version store to the reclaim set.
  void Track(std::shared_ptr<PageVersionStore> store) EXCLUDES(mu_);

  /// A snapshot at `epoch` is now live.
  void Register(uint64_t epoch) EXCLUDES(mu_);
  /// A snapshot at `epoch` drained; reclaims newly dead versions.
  void Release(uint64_t epoch) EXCLUDES(mu_);

  /// Called by the writer after committing `epoch`: reclaims versions no
  /// live snapshot can read.
  void AdvanceEpoch(uint64_t epoch) EXCLUDES(mu_);

  /// Oldest live snapshot epoch, or `fallback` when none are live.
  uint64_t MinActiveEpoch(uint64_t fallback) const EXCLUDES(mu_);

  uint64_t retained_entries() const EXCLUDES(mu_);
  uint64_t retained_bytes() const EXCLUDES(mu_);

 private:
  // Reclaims into the tracked stores; each PageVersionStore takes its
  // own mutex, nested inside this one (lock order: SnapshotTracker::mu_
  // before PageVersionStore::mu_, see DESIGN.md section 12).
  void ReclaimLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  /// epoch -> live snapshot count
  std::map<uint64_t, uint32_t> active_ GUARDED_BY(mu_);
  uint64_t latest_epoch_ GUARDED_BY(mu_) = 0;  ///< last committed epoch
  std::vector<std::shared_ptr<PageVersionStore>> stores_ GUARDED_BY(mu_);
};

/// Read-only File pinned to a snapshot epoch: serves the base file with
/// retained pre-images overlaid.  Safe against a concurrent writer
/// mutating the base, because the writer retains pre-images before
/// touching base bytes.
class SnapshotFile final : public File {
 public:
  /// `versions` may be null (component never versioned — e.g. a file the
  /// writer only ever appends to is safe to read directly below the
  /// snapshot size).
  SnapshotFile(std::unique_ptr<File> base,
               std::shared_ptr<PageVersionStore> versions, uint64_t epoch);

  Status ReadAt(uint64_t offset, size_t n, char* scratch,
                Slice* out) const override;
  Status WriteAt(uint64_t offset, const Slice& data) override;
  Status Append(const Slice& data, uint64_t* offset) override;
  uint64_t Size() const override { return size_at_snapshot_; }
  Status Truncate(uint64_t size) override;
  Status Sync() override { return Status::OK(); }

 private:
  std::unique_ptr<File> base_;
  std::shared_ptr<PageVersionStore> versions_;
  uint64_t epoch_;
  uint64_t size_at_snapshot_;
};

}  // namespace nok

#endif  // NOKXML_STORAGE_PAGE_VERSIONS_H_
