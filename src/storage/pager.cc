#include "storage/pager.h"

#include <cstring>
#include <string>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace nok {

Pager::Pager(std::unique_ptr<File> file, uint32_t page_size,
             PageFormat format)
    : file_(std::move(file)),
      page_size_(page_size),
      slot_size_(page_size +
                 (format == PageFormat::kChecksummed ? kPageTrailerSize
                                                     : 0)),
      format_(format) {}

Result<std::unique_ptr<Pager>> Pager::Open(std::unique_ptr<File> file,
                                           uint32_t page_size,
                                           PageFormat format) {
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be positive");
  }
  std::unique_ptr<Pager> pager(
      new Pager(std::move(file), page_size, format));
  const uint64_t size = pager->file_->Size();
  if (size % pager->slot_size_ != 0) {
    return Status::Corruption(
        "file size " + std::to_string(size) +
        " is not a multiple of the on-disk page size " +
        std::to_string(pager->slot_size_) +
        (format == PageFormat::kChecksummed ? " (checksummed format)"
                                            : "") +
        "; the file is truncated or was written in a different format");
  }
  pager->page_count_ = static_cast<PageId>(size / pager->slot_size_);
  return pager;
}

Status Pager::AllocatePage(PageId* id) {
  std::string zeros(slot_size_, '\0');
  if (format_ == PageFormat::kChecksummed) {
    EncodeFixed32(zeros.data() + page_size_,
                  Crc32c(Slice(zeros.data(), page_size_)));
  }
  uint64_t offset = 0;
  NOK_RETURN_IF_ERROR(file_->Append(Slice(zeros), &offset));
  *id = page_count_++;
  NOK_CHECK(offset == static_cast<uint64_t>(*id) * slot_size_);
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) const {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " >= count " +
                              std::to_string(page_count_));
  }
  const uint64_t offset = static_cast<uint64_t>(id) * slot_size_;
  Slice unused;
  if (format_ == PageFormat::kRaw) {
    return file_->ReadAt(offset, page_size_, buf, &unused);
  }
  NOK_RETURN_IF_ERROR(file_->ReadAt(offset, page_size_, buf, &unused));
  char trailer[kPageTrailerSize];
  NOK_RETURN_IF_ERROR(
      file_->ReadAt(offset + page_size_, kPageTrailerSize, trailer,
                    &unused));
  const uint32_t stored = DecodeFixed32(trailer);
  const uint32_t actual = Crc32c(Slice(buf, page_size_));
  if (stored != actual) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id) + ": stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(actual));
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " >= count " +
                              std::to_string(page_count_));
  }
  const uint64_t offset = static_cast<uint64_t>(id) * slot_size_;
  if (format_ == PageFormat::kRaw) {
    return file_->WriteAt(offset, Slice(buf, page_size_));
  }
  // One contiguous write of body + trailer, so a torn write cannot leave a
  // stale trailer matching a half-new body.
  std::string slot(slot_size_, '\0');
  memcpy(slot.data(), buf, page_size_);
  EncodeFixed32(slot.data() + page_size_, Crc32c(Slice(buf, page_size_)));
  return file_->WriteAt(offset, Slice(slot));
}

}  // namespace nok
