#include "storage/pager.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace nok {

Pager::Pager(std::unique_ptr<File> file, uint32_t page_size)
    : file_(std::move(file)), page_size_(page_size) {
  NOK_CHECK(page_size_ > 0);
  NOK_CHECK(file_->Size() % page_size_ == 0)
      << "file size " << file_->Size() << " is not a multiple of page size "
      << page_size_;
  page_count_ = static_cast<PageId>(file_->Size() / page_size_);
}

Status Pager::AllocatePage(PageId* id) {
  std::string zeros(page_size_, '\0');
  uint64_t offset = 0;
  NOK_RETURN_IF_ERROR(file_->Append(Slice(zeros), &offset));
  *id = page_count_++;
  NOK_CHECK(offset == static_cast<uint64_t>(*id) * page_size_);
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) const {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " >= count " +
                              std::to_string(page_count_));
  }
  Slice unused;
  return file_->ReadAt(static_cast<uint64_t>(id) * page_size_, page_size_,
                       buf, &unused);
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " >= count " +
                              std::to_string(page_count_));
  }
  return file_->WriteAt(static_cast<uint64_t>(id) * page_size_,
                        Slice(buf, page_size_));
}

}  // namespace nok
