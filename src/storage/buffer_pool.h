// Buffer pool: an LRU cache of pages with pin/unpin semantics.
//
// All page access in the query path goes through a pool so that the
// experiments can count real page fetches (disk reads) — the quantity
// Proposition 1 of the paper bounds, and the quantity the (st,lo,hi)
// header-skip optimization of Section 5 reduces.
//
// Frames can carry a "decoration": an arbitrary object derived from the
// page contents (the string store caches decoded symbol/level arrays this
// way).  A decoration lives exactly as long as the frame holds that page.

#ifndef NOKXML_STORAGE_BUFFER_POOL_H_
#define NOKXML_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "storage/pager.h"

namespace nok {

class PageHandle;

/// LRU page cache over one Pager.  Not thread-safe.
class BufferPool {
 public:
  /// I/O counters since construction or the last ResetStats().
  struct Stats {
    uint64_t fetches = 0;     ///< Fetch() calls.
    uint64_t hits = 0;        ///< Fetches served from memory.
    uint64_t disk_reads = 0;  ///< Pages read from the pager.
    uint64_t disk_writes = 0; ///< Dirty pages written back.
    uint64_t evictions = 0;   ///< Frames recycled.
  };

  /// pager must outlive the pool; capacity is the frame count (>= 1).
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle to page id, reading it from disk on a miss.
  /// Fails if every frame is pinned (capacity exhausted by live handles).
  Result<PageHandle> Fetch(PageId id);

  /// Writes back all dirty frames (pinned or not).
  Status FlushAll();

  /// Drops every unpinned frame (after writing back dirty ones).  Used by
  /// benchmarks to start measurements cold.
  Status DropAll();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  size_t capacity() const { return capacity_; }
  Pager* pager() const { return pager_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPage;
    std::unique_ptr<char[]> data;
    int pin_count = 0;
    bool dirty = false;
    std::shared_ptr<void> decoration;
    // Position in lru_ when pin_count == 0.
    std::list<Frame*>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(Frame* frame);
  Status EvictOne();

  Pager* pager_;
  size_t capacity_;
  Stats stats_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  // Front = most recently used unpinned frame; back = eviction victim.
  std::list<Frame*> lru_;
};

/// RAII pin on a buffer-pool frame.  Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    return *this;
  }
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return frame_->id; }
  const char* data() const { return frame_->data.get(); }

  /// Mutable access; the caller must also MarkDirty() for persistence.
  char* mutable_data() { return frame_->data.get(); }
  void MarkDirty() { frame_->dirty = true; }

  /// Page-derived cache object; reset whenever the frame is recycled.
  const std::shared_ptr<void>& decoration() const {
    return frame_->decoration;
  }
  void set_decoration(std::shared_ptr<void> d) {
    frame_->decoration = std::move(d);
  }

  /// Drops the pin early (also done by the destructor).
  void Release() {
    if (frame_ != nullptr) {
      pool_->Unpin(frame_);
      frame_ = nullptr;
      pool_ = nullptr;
    }
  }

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, BufferPool::Frame* frame)
      : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  BufferPool::Frame* frame_ = nullptr;
};

}  // namespace nok

#endif  // NOKXML_STORAGE_BUFFER_POOL_H_
