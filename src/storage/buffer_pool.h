// Buffer pool: a sharded LRU cache of pages with pin/unpin semantics.
//
// All page access in the query path goes through a pool so that the
// experiments can count real page fetches (disk reads) — the quantity
// Proposition 1 of the paper bounds, and the quantity the (st,lo,hi)
// header-skip optimization of Section 5 reduces.
//
// Frames can carry a "decoration": an arbitrary object derived from the
// page contents (the string store caches decoded symbol/level arrays this
// way).  A decoration lives exactly as long as the frame holds that page.
//
// Thread safety: the pool is internally sharded by page id.  Each shard
// owns its own mutex, frame map, LRU list, and Stats, so concurrent
// Fetch/Release traffic on different shards never contends.  Concurrent
// readers are safe as long as the underlying Pager supports concurrent
// ReadPage calls (positional reads; see pager.h).  Concurrent *writers*
// (MarkDirty + eviction write-back) are not coordinated beyond the shard
// lock — the write path remains single-threaded by convention, which the
// read-only open mode of the stores enforces.

#ifndef NOKXML_STORAGE_BUFFER_POOL_H_
#define NOKXML_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/pager.h"

namespace nok {

class PageHandle;

/// Sharded LRU page cache over one Pager.  Safe for concurrent readers;
/// see the file comment for the exact contract.
class BufferPool {
 public:
  /// I/O counters since construction or the last ResetStats().
  /// Invariant: fetches == hits + misses, and every miss that reaches the
  /// pager successfully becomes exactly one disk_read.
  struct Stats {
    uint64_t fetches = 0;     ///< Fetch() calls (lookups).
    uint64_t hits = 0;        ///< Fetches served from memory.
    uint64_t misses = 0;      ///< Fetches that had to go to the pager.
    uint64_t disk_reads = 0;  ///< Pages read from the pager.
    uint64_t disk_writes = 0; ///< Dirty pages written back.
    uint64_t evictions = 0;   ///< Frames recycled.
  };

  /// pager must outlive the pool; capacity is the total frame count
  /// (>= 1).  shards is the number of independent LRU domains; it is
  /// clamped to [1, capacity] and each shard gets capacity/shards frames
  /// (at least one).  The default of one shard preserves a single global
  /// LRU order, which single-threaded callers and tests rely on.
  BufferPool(Pager* pager, size_t capacity, size_t shards = 1);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle to page id, reading it from disk on a miss.
  /// Fails if every frame in the page's shard is pinned (capacity
  /// exhausted by live handles).
  Result<PageHandle> Fetch(PageId id);

  /// Writes back all dirty frames (pinned or not).
  Status FlushAll();

  /// Drops every unpinned frame (after writing back dirty ones).  Used by
  /// benchmarks to start measurements cold.
  Status DropAll();

  /// Aggregated counters across all shards, taken shard by shard (the
  /// result is a consistent sum of per-shard snapshots, not a single
  /// global instant).
  Stats stats() const;
  void ResetStats();

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  Pager* pager() const { return pager_; }

 private:
  friend class PageHandle;

  struct Shard;

  // Frames are reached through Shard::frames and mutated only with
  // home->mu held (except the atomic dirty flag and the immutable
  // id/data/home set before publication).  The members are not
  // GUARDED_BY-annotated because the guarding mutex is named through
  // the aliasing home pointer, which the analysis cannot relate to a
  // specific Shard instance — the same trade LevelDB makes for
  // LRUHandle.  The shard-level annotations below still cover every
  // path that can reach a Frame.
  struct Frame {
    PageId id = kInvalidPage;
    std::unique_ptr<char[]> data;
    Shard* home = nullptr;
    int pin_count = 0;
    // Written by MarkDirty() without the shard lock; read under it.
    std::atomic<bool> dirty{false};
    std::shared_ptr<void> decoration;
    // Position in the shard's lru list when pin_count == 0.
    std::list<Frame*>::iterator lru_pos;
    bool in_lru = false;
  };

  struct Shard {
    mutable Mutex mu;
    Stats stats GUARDED_BY(mu);
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames
        GUARDED_BY(mu);
    // Front = most recently used unpinned frame; back = eviction victim.
    std::list<Frame*> lru GUARDED_BY(mu);
  };

  Shard& ShardFor(PageId id);
  Status EvictOneLocked(Shard& shard) REQUIRES(shard.mu);
  Status FlushShardLocked(Shard& shard) REQUIRES(shard.mu);
  void Unpin(Frame* frame);
  std::shared_ptr<void> Decoration(const Frame* frame) const;
  void SetDecoration(Frame* frame, std::shared_ptr<void> d);

  Pager* pager_;
  size_t capacity_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII pin on a buffer-pool frame.  Movable, not copyable.  A handle is
/// owned by one thread; distinct threads holding handles to the same page
/// is fine (the frame stays pinned until the last one releases).
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    return *this;
  }
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return frame_->id; }
  const char* data() const { return frame_->data.get(); }

  /// Mutable access; the caller must also MarkDirty() for persistence.
  /// Write path only — never call on a store opened read-only.
  char* mutable_data() { return frame_->data.get(); }
  void MarkDirty() { frame_->dirty.store(true, std::memory_order_release); }

  /// Page-derived cache object; reset whenever the frame is recycled.
  /// Returns a snapshot copy — concurrent readers may race to decorate a
  /// freshly-read page, in which case the last writer wins and the loser's
  /// object simply dies with its local shared_ptr.
  std::shared_ptr<void> decoration() const;
  void set_decoration(std::shared_ptr<void> d);

  /// Drops the pin early (also done by the destructor).
  void Release() {
    if (frame_ != nullptr) {
      pool_->Unpin(frame_);
      frame_ = nullptr;
      pool_ = nullptr;
    }
  }

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, BufferPool::Frame* frame)
      : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  BufferPool::Frame* frame_ = nullptr;
};

}  // namespace nok

#endif  // NOKXML_STORAGE_BUFFER_POOL_H_
