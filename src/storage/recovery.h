// Crash recovery for WAL-backed store directories.
//
// Recovery runs before the document store opens its components — a crash
// during commit apply leaves the component files at mixed epochs, which
// the store's open-time cross-check would reject as corruption.  The
// protocol:
//
//   1. Read the WAL and scan frame by frame.  A torn tail (short frame or
//      CRC mismatch) ends the scan; everything before it is trusted, the
//      tail is physically truncated away.
//   2. Collect committed transactions (kTxnBegin .. kTxnCommit with a
//      matching record count) and the highest kCheckpoint epoch.  A
//      transaction without its commit record was never durable: its
//      records are discarded (the base files were never touched for it).
//   3. Replay every committed transaction past the last checkpoint, in
//      log order, into the component files — pure physical redo (byte
//      writes, truncates, whole-file replaces), idempotent, so replaying
//      an already-applied transaction or crashing during recovery and
//      re-running it is harmless.
//   4. Sync the repaired files and append a fresh checkpoint.
//
// A directory without a WAL file (or with an empty one) needs no recovery
// and is left untouched.

#ifndef NOKXML_STORAGE_RECOVERY_H_
#define NOKXML_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/wal.h"

namespace nok {

/// Opens component files during recovery; matches
/// DocumentStoreOptions::file_factory so fault-injection harnesses can
/// intercept recovery I/O too.  Null uses OpenPosixFile.
using WalFileFactory = std::function<Result<std::unique_ptr<File>>(
    const std::string& path, bool create)>;

/// One committed transaction from a WAL scan.
struct WalTransaction {
  uint64_t epoch = 0;
  std::vector<WalRecord> records;
};

/// Result of scanning (not replaying) a WAL file.
struct WalScan {
  std::vector<WalTransaction> committed;  ///< log order
  uint64_t checkpoint_epoch = 0;          ///< highest checkpoint, 0 if none
  uint64_t valid_bytes = 0;    ///< offset where the trusted prefix ends
  uint64_t torn_bytes = 0;     ///< bytes after valid_bytes (torn tail)
};

/// What recovery did; informational (nokq recover prints it).
struct RecoveryReport {
  bool wal_present = false;
  uint64_t transactions_committed = 0;  ///< committed txns in the WAL
  uint64_t transactions_replayed = 0;   ///< of those, replayed now
  uint64_t records_replayed = 0;
  uint64_t torn_bytes_discarded = 0;
  uint64_t checkpoint_epoch = 0;  ///< highest checkpoint before recovery
  uint64_t last_epoch = 0;        ///< epoch of the last committed txn
};

/// Scans a WAL file's bytes.  Returns the committed transactions and
/// tail-truncation info; never fails on torn data (that is the expected
/// crash shape), only reports it.
WalScan ScanWal(const Slice& wal_bytes);

/// Recovers the store directory at `dir`: scan the WAL, truncate any torn
/// tail, replay committed-but-unapplied transactions, checkpoint.
/// Idempotent; a no-op (OK) when no WAL exists.  `report` may be null.
Status RecoverStoreDir(const std::string& dir,
                       const WalFileFactory& factory = nullptr,
                       RecoveryReport* report = nullptr);

/// Number of committed transactions past the last checkpoint — i.e. how
/// many RecoverStoreDir would replay.  0 means the directory is clean.
/// Reads the WAL directly (no factory); missing WAL is 0.
Result<uint64_t> PendingWalTransactions(const std::string& dir);

}  // namespace nok

#endif  // NOKXML_STORAGE_RECOVERY_H_
