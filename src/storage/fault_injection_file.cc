#include "storage/fault_injection_file.h"

#include <algorithm>
#include <utility>

namespace nok {

void FaultInjector::FailAtOp(uint64_t index, FaultKind kind, bool sticky) {
  armed_ = true;
  probabilistic_ = false;
  kind_filtered_ = false;
  tripped_ = false;
  fail_index_ = index;
  kind_ = kind;
  sticky_ = sticky;
}

void FaultInjector::FailAtOpOfKind(FaultOpKind op, uint64_t index,
                                   FaultKind kind, bool sticky) {
  FailAtOp(index, kind, sticky);
  kind_filtered_ = true;
  filter_op_ = op;
}

void FaultInjector::FailWithProbability(uint64_t seed, double p,
                                        FaultKind kind) {
  armed_ = true;
  probabilistic_ = true;
  kind_filtered_ = false;
  tripped_ = false;
  sticky_ = false;
  kind_ = kind;
  probability_ = p;
  rng_ = std::make_unique<Random>(seed);
}

void FaultInjector::EnablePartialCrash(uint64_t seed,
                                       double keep_probability) {
  partial_crash_ = true;
  keep_probability_ = keep_probability;
  crash_rng_ = std::make_unique<Random>(seed);
}

void FaultInjector::Reset() {
  Disarm();
  ops_seen_ = 0;
  ops_seen_by_kind_.fill(0);
  faults_injected_ = 0;
  partial_crash_ = false;
  crash_rng_.reset();
}

void FaultInjector::Disarm() {
  armed_ = false;
  probabilistic_ = false;
  kind_filtered_ = false;
  tripped_ = false;
  rng_.reset();
}

bool FaultInjector::NextOpFaults(FaultOpKind op, FaultKind* kind) {
  const uint64_t index = ops_seen_++;
  const uint64_t kind_index =
      ops_seen_by_kind_[static_cast<size_t>(op)]++;
  if (!armed_) return false;
  bool fault;
  if (tripped_) {
    fault = true;
  } else if (probabilistic_) {
    fault = rng_->Bernoulli(probability_);
  } else if (kind_filtered_) {
    fault = op == filter_op_ && kind_index == fail_index_;
    if (fault && sticky_) tripped_ = true;
  } else {
    fault = index == fail_index_;
    if (fault && sticky_) tripped_ = true;
  }
  if (fault) {
    ++faults_injected_;
    *kind = kind_;
  }
  return fault;
}

Status FaultInjector::DropAllUnsyncedData() {
  for (FaultInjectionFile* file : files_) {
    NOK_RETURN_IF_ERROR(file->DropUnsyncedData(
        partial_crash_ ? crash_rng_.get() : nullptr, keep_probability_));
  }
  return Status::OK();
}

void FaultInjector::Register(FaultInjectionFile* file) {
  files_.push_back(file);
}

void FaultInjector::Unregister(FaultInjectionFile* file) {
  files_.erase(std::remove(files_.begin(), files_.end(), file),
               files_.end());
}

FaultInjectionFile::FaultInjectionFile(
    std::unique_ptr<File> base, std::shared_ptr<FaultInjector> injector)
    : base_(std::move(base)), injector_(std::move(injector)) {
  // A freshly opened file's on-disk contents are durable by definition.
  durable_image_.resize(base_->Size());
  if (!durable_image_.empty()) {
    Slice unused;
    NOK_IGNORE_STATUS(
        base_->ReadAt(0, durable_image_.size(), durable_image_.data(),
                      &unused),
        "snapshot of pre-existing bytes is best-effort; an unreadable base "
        "file will surface on the first real read");
  }
  injector_->Register(this);
}

FaultInjectionFile::~FaultInjectionFile() { injector_->Unregister(this); }

Status FaultInjectionFile::CheckFault(FaultOpKind op, uint64_t offset,
                                      const Slice* data) {
  FaultKind kind;
  if (!injector_->NextOpFaults(op, &kind)) return Status::OK();
  switch (kind) {
    case FaultKind::kError:
      break;
    case FaultKind::kTorn: {
      // Apply the first half of the faulting write, then fail.  Reads and
      // other operations cannot tear; they just fail.
      if (op == FaultOpKind::kWrite && data != nullptr &&
          data->size() > 1) {
        const Slice half(data->data(), data->size() / 2);
        NOK_IGNORE_STATUS(
            base_->WriteAt(offset, half),
            "the torn half-write is the injected damage itself; the caller "
            "sees the IOError below regardless");
        RecordWrite(offset, half);
      }
      break;
    }
    case FaultKind::kCrash: {
      NOK_IGNORE_STATUS(injector_->DropAllUnsyncedData(),
                        "the simulated crash is the injected damage itself; "
                        "the caller sees the IOError below regardless");
      break;
    }
  }
  return Status::IOError("injected fault (op " +
                         std::to_string(injector_->ops_seen() - 1) + ")");
}

void FaultInjectionFile::RecordWrite(uint64_t offset, const Slice& data) {
  PendingOp op;
  op.offset = offset;
  op.data.assign(data.data(), data.size());
  unsynced_ops_.push_back(std::move(op));
}

Status FaultInjectionFile::ReadAt(uint64_t offset, size_t n, char* scratch,
                                  Slice* out) const {
  NOK_RETURN_IF_ERROR(const_cast<FaultInjectionFile*>(this)->CheckFault(
      FaultOpKind::kRead, offset, nullptr));
  return base_->ReadAt(offset, n, scratch, out);
}

Status FaultInjectionFile::WriteAt(uint64_t offset, const Slice& data) {
  NOK_RETURN_IF_ERROR(CheckFault(FaultOpKind::kWrite, offset, &data));
  NOK_RETURN_IF_ERROR(base_->WriteAt(offset, data));
  RecordWrite(offset, data);
  return Status::OK();
}

Status FaultInjectionFile::Append(const Slice& data, uint64_t* offset) {
  NOK_RETURN_IF_ERROR(
      CheckFault(FaultOpKind::kWrite, base_->Size(), &data));
  const uint64_t at = base_->Size();
  NOK_RETURN_IF_ERROR(base_->Append(data, offset));
  RecordWrite(at, data);
  return Status::OK();
}

Status FaultInjectionFile::Truncate(uint64_t size) {
  NOK_RETURN_IF_ERROR(CheckFault(FaultOpKind::kTruncate, size, nullptr));
  NOK_RETURN_IF_ERROR(base_->Truncate(size));
  PendingOp op;
  op.is_truncate = true;
  op.offset = size;
  unsynced_ops_.push_back(std::move(op));
  return Status::OK();
}

Status FaultInjectionFile::Sync() {
  NOK_RETURN_IF_ERROR(CheckFault(FaultOpKind::kSync, 0, nullptr));
  NOK_RETURN_IF_ERROR(base_->Sync());
  return CaptureDurableImage();
}

Status FaultInjectionFile::CaptureDurableImage() {
  unsynced_ops_.clear();
  durable_image_.resize(base_->Size());
  if (durable_image_.empty()) return Status::OK();
  Slice unused;
  return base_->ReadAt(0, durable_image_.size(), durable_image_.data(),
                       &unused);
}

Status FaultInjectionFile::DropUnsyncedData(Random* survivors,
                                            double keep_probability) {
  NOK_RETURN_IF_ERROR(base_->Truncate(durable_image_.size()));
  if (!durable_image_.empty()) {
    NOK_RETURN_IF_ERROR(base_->WriteAt(0, Slice(durable_image_)));
  }
  if (survivors != nullptr) {
    // Out-of-order writeback: each unsynced op independently survives
    // the crash.  Replay survivors in issue order — the subset, not the
    // order, is what the kernel scrambles at page granularity.
    for (const PendingOp& op : unsynced_ops_) {
      if (!survivors->Bernoulli(keep_probability)) continue;
      if (op.is_truncate) {
        NOK_RETURN_IF_ERROR(base_->Truncate(op.offset));
      } else {
        NOK_RETURN_IF_ERROR(base_->WriteAt(op.offset, Slice(op.data)));
      }
    }
  }
  unsynced_ops_.clear();
  return Status::OK();
}

}  // namespace nok
