#include "storage/fault_injection_file.h"

#include <algorithm>
#include <utility>

namespace nok {

void FaultInjector::FailAtOp(uint64_t index, FaultKind kind, bool sticky) {
  armed_ = true;
  probabilistic_ = false;
  tripped_ = false;
  fail_index_ = index;
  kind_ = kind;
  sticky_ = sticky;
}

void FaultInjector::FailWithProbability(uint64_t seed, double p,
                                        FaultKind kind) {
  armed_ = true;
  probabilistic_ = true;
  tripped_ = false;
  sticky_ = false;
  kind_ = kind;
  probability_ = p;
  rng_ = std::make_unique<Random>(seed);
}

void FaultInjector::Reset() {
  Disarm();
  ops_seen_ = 0;
  faults_injected_ = 0;
}

void FaultInjector::Disarm() {
  armed_ = false;
  probabilistic_ = false;
  tripped_ = false;
  rng_.reset();
}

bool FaultInjector::NextOpFaults(FaultKind* kind) {
  const uint64_t index = ops_seen_++;
  if (!armed_) return false;
  bool fault;
  if (tripped_) {
    fault = true;
  } else if (probabilistic_) {
    fault = rng_->Bernoulli(probability_);
  } else {
    fault = index == fail_index_;
    if (fault && sticky_) tripped_ = true;
  }
  if (fault) {
    ++faults_injected_;
    *kind = kind_;
  }
  return fault;
}

Status FaultInjector::DropAllUnsyncedData() {
  for (FaultInjectionFile* file : files_) {
    NOK_RETURN_IF_ERROR(file->DropUnsyncedData());
  }
  return Status::OK();
}

void FaultInjector::Register(FaultInjectionFile* file) {
  files_.push_back(file);
}

void FaultInjector::Unregister(FaultInjectionFile* file) {
  files_.erase(std::remove(files_.begin(), files_.end(), file),
               files_.end());
}

FaultInjectionFile::FaultInjectionFile(
    std::unique_ptr<File> base, std::shared_ptr<FaultInjector> injector)
    : base_(std::move(base)), injector_(std::move(injector)) {
  // A freshly opened file's on-disk contents are durable by definition.
  durable_image_.resize(base_->Size());
  if (!durable_image_.empty()) {
    Slice unused;
    NOK_IGNORE_STATUS(
        base_->ReadAt(0, durable_image_.size(), durable_image_.data(),
                      &unused),
        "snapshot of pre-existing bytes is best-effort; an unreadable base "
        "file will surface on the first real read");
  }
  injector_->Register(this);
}

FaultInjectionFile::~FaultInjectionFile() { injector_->Unregister(this); }

Status FaultInjectionFile::CheckFault(bool is_write, uint64_t offset,
                                      const Slice* data) {
  FaultKind kind;
  if (!injector_->NextOpFaults(&kind)) return Status::OK();
  switch (kind) {
    case FaultKind::kError:
      break;
    case FaultKind::kTorn: {
      // Apply the first half of the faulting write, then fail.  Reads and
      // other operations cannot tear; they just fail.
      if (is_write && data != nullptr && data->size() > 1) {
        NOK_IGNORE_STATUS(
            base_->WriteAt(offset, Slice(data->data(), data->size() / 2)),
            "the torn half-write is the injected damage itself; the caller "
            "sees the IOError below regardless");
      }
      break;
    }
    case FaultKind::kCrash: {
      NOK_IGNORE_STATUS(injector_->DropAllUnsyncedData(),
                        "the simulated crash is the injected damage itself; "
                        "the caller sees the IOError below regardless");
      break;
    }
  }
  return Status::IOError("injected fault (op " +
                         std::to_string(injector_->ops_seen() - 1) + ")");
}

Status FaultInjectionFile::ReadAt(uint64_t offset, size_t n, char* scratch,
                                  Slice* out) const {
  NOK_RETURN_IF_ERROR(const_cast<FaultInjectionFile*>(this)->CheckFault(
      /*is_write=*/false, offset, nullptr));
  return base_->ReadAt(offset, n, scratch, out);
}

Status FaultInjectionFile::WriteAt(uint64_t offset, const Slice& data) {
  NOK_RETURN_IF_ERROR(CheckFault(/*is_write=*/true, offset, &data));
  return base_->WriteAt(offset, data);
}

Status FaultInjectionFile::Append(const Slice& data, uint64_t* offset) {
  NOK_RETURN_IF_ERROR(CheckFault(/*is_write=*/true, base_->Size(), &data));
  return base_->Append(data, offset);
}

Status FaultInjectionFile::Truncate(uint64_t size) {
  NOK_RETURN_IF_ERROR(CheckFault(/*is_write=*/true, size, nullptr));
  return base_->Truncate(size);
}

Status FaultInjectionFile::Sync() {
  NOK_RETURN_IF_ERROR(CheckFault(/*is_write=*/true, 0, nullptr));
  NOK_RETURN_IF_ERROR(base_->Sync());
  return CaptureDurableImage();
}

Status FaultInjectionFile::CaptureDurableImage() {
  durable_image_.resize(base_->Size());
  if (durable_image_.empty()) return Status::OK();
  Slice unused;
  return base_->ReadAt(0, durable_image_.size(), durable_image_.data(),
                       &unused);
}

Status FaultInjectionFile::DropUnsyncedData() {
  NOK_RETURN_IF_ERROR(base_->Truncate(durable_image_.size()));
  if (durable_image_.empty()) return Status::OK();
  return base_->WriteAt(0, Slice(durable_image_));
}

}  // namespace nok
