#include "storage/page_versions.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace nok {

// --- PageVersionStore -----------------------------------------------------

void PageVersionStore::Retain(uint64_t offset, std::string preimage,
                              uint64_t valid_through) {
  if (preimage.empty()) return;
  MutexLock lock(&mu_);
  bytes_ += preimage.size();
  auto& chain = by_offset_[offset];
  // Retentions arrive in commit order, so chains stay sorted by
  // valid_through; a same-epoch duplicate (same range dirtied twice in
  // one commit apply) keeps the first pre-image — the later one already
  // reflects this commit's partial writes.
  if (!chain.empty() && chain.back().valid_through == valid_through &&
      chain.back().data.size() >= preimage.size()) {
    bytes_ -= preimage.size();
    return;
  }
  chain.push_back(Version{valid_through, std::move(preimage)});
}

bool PageVersionStore::OverlayForEpoch(uint64_t epoch, uint64_t offset,
                                       char* dst, size_t n) const {
  if (n == 0) return false;
  const uint64_t end = offset + n;
  MutexLock lock(&mu_);
  // Collect every version intersecting [offset, end) that is visible at
  // `epoch`, then apply in descending valid_through order so that, per
  // byte, the *oldest still-visible* version (smallest valid_through >=
  // epoch — the content as of `epoch`) lands last and wins.
  struct Hit {
    uint64_t valid_through;
    uint64_t offset;
    const std::string* data;
  };
  std::vector<Hit> hits;
  for (const auto& [ver_offset, chain] : by_offset_) {
    if (ver_offset >= end) break;
    for (const Version& v : chain) {
      if (v.valid_through < epoch) continue;
      if (ver_offset + v.data.size() <= offset) continue;
      hits.push_back(Hit{v.valid_through, ver_offset, &v.data});
    }
  }
  if (hits.empty()) return false;
  std::stable_sort(hits.begin(), hits.end(),
                   [](const Hit& a, const Hit& b) {
                     return a.valid_through > b.valid_through;
                   });
  for (const Hit& h : hits) {
    const uint64_t copy_start = std::max(offset, h.offset);
    const uint64_t copy_end =
        std::min(end, h.offset + h.data->size());
    std::memcpy(dst + (copy_start - offset),
                h.data->data() + (copy_start - h.offset),
                copy_end - copy_start);
  }
  return true;
}

void PageVersionStore::ReclaimBelow(uint64_t min_epoch) {
  MutexLock lock(&mu_);
  for (auto it = by_offset_.begin(); it != by_offset_.end();) {
    auto& chain = it->second;
    auto keep = chain.begin();
    while (keep != chain.end() && keep->valid_through < min_epoch) {
      bytes_ -= keep->data.size();
      ++keep;
    }
    chain.erase(chain.begin(), keep);
    if (chain.empty()) {
      it = by_offset_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t PageVersionStore::entry_count() const {
  MutexLock lock(&mu_);
  uint64_t count = 0;
  for (const auto& [offset, chain] : by_offset_) count += chain.size();
  return count;
}

uint64_t PageVersionStore::byte_count() const {
  MutexLock lock(&mu_);
  return bytes_;
}

// --- SnapshotTracker ------------------------------------------------------

void SnapshotTracker::Track(std::shared_ptr<PageVersionStore> store) {
  MutexLock lock(&mu_);
  stores_.push_back(std::move(store));
}

void SnapshotTracker::Register(uint64_t epoch) {
  MutexLock lock(&mu_);
  latest_epoch_ = std::max(latest_epoch_, epoch);
  ++active_[epoch];
}

void SnapshotTracker::Release(uint64_t epoch) {
  MutexLock lock(&mu_);
  auto it = active_.find(epoch);
  if (it == active_.end()) return;
  if (--it->second == 0) active_.erase(it);
  ReclaimLocked();
}

void SnapshotTracker::AdvanceEpoch(uint64_t epoch) {
  MutexLock lock(&mu_);
  latest_epoch_ = std::max(latest_epoch_, epoch);
  ReclaimLocked();
}

uint64_t SnapshotTracker::MinActiveEpoch(uint64_t fallback) const {
  MutexLock lock(&mu_);
  return active_.empty() ? fallback : active_.begin()->first;
}

void SnapshotTracker::ReclaimLocked() {
  const uint64_t min_epoch =
      active_.empty() ? latest_epoch_ : active_.begin()->first;
  for (const auto& store : stores_) {
    store->ReclaimBelow(min_epoch);
  }
}

uint64_t SnapshotTracker::retained_entries() const {
  MutexLock lock(&mu_);
  uint64_t count = 0;
  for (const auto& store : stores_) count += store->entry_count();
  return count;
}

uint64_t SnapshotTracker::retained_bytes() const {
  MutexLock lock(&mu_);
  uint64_t count = 0;
  for (const auto& store : stores_) count += store->byte_count();
  return count;
}

// --- SnapshotFile ---------------------------------------------------------

SnapshotFile::SnapshotFile(std::unique_ptr<File> base,
                           std::shared_ptr<PageVersionStore> versions,
                           uint64_t epoch)
    : base_(std::move(base)),
      versions_(std::move(versions)),
      epoch_(epoch),
      size_at_snapshot_(base_->Size()) {}

Status SnapshotFile::ReadAt(uint64_t offset, size_t n, char* scratch,
                            Slice* out) const {
  if (n == 0) {
    *out = Slice(scratch, 0);
    return Status::OK();
  }
  if (offset + n > size_at_snapshot_) {
    return Status::IOError("short read (snapshot)");
  }
  const uint64_t end = offset + n;
  std::memset(scratch, 0, n);
  // 1. Best-effort base read.  The writer may truncate the base under us
  //    (path-index rebuild); every byte the snapshot still needs beyond
  //    the new size was retained as a pre-image, so a shrink mid-read is
  //    retried shorter and the zeros are patched by the overlay below.
  uint64_t avail_end = std::min<uint64_t>(end, base_->Size());
  while (avail_end > offset) {
    Slice got;
    Status s =
        base_->ReadAt(offset, avail_end - offset, scratch, &got);
    if (s.ok()) {
      if (got.data() != scratch) {
        std::memcpy(scratch, got.data(), got.size());
      }
      break;
    }
    const uint64_t now = std::min<uint64_t>(end, base_->Size());
    if (now >= avail_end) return s;  // a real I/O error, not a shrink
    avail_end = now;
  }
  // 2. Overlay retained pre-images visible at this snapshot's epoch.
  //    The writer retains before writing base bytes, so any range we may
  //    have seen mid-overwrite has a version here that corrects it.
  if (versions_ != nullptr) {
    versions_->OverlayForEpoch(epoch_, offset, scratch, n);
  }
  *out = Slice(scratch, n);
  return Status::OK();
}

Status SnapshotFile::WriteAt(uint64_t, const Slice&) {
  return Status::InvalidArgument("snapshot file is read-only");
}

Status SnapshotFile::Append(const Slice&, uint64_t*) {
  return Status::InvalidArgument("snapshot file is read-only");
}

Status SnapshotFile::Truncate(uint64_t) {
  return Status::InvalidArgument("snapshot file is read-only");
}

}  // namespace nok
