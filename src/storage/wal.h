// Write-ahead log under the epoch-stamped multi-file commit.
//
// The document store commits an update by flushing several component files
// (tree, value store, indexes, dictionary) and stamping each with the new
// epoch.  Without a log, a crash in the middle of that sequence leaves the
// components at mixed epochs and the store refuses to open.  The WAL makes
// the whole sequence atomic:
//
//   1. While a transaction is open, every mutation of a wrapped component
//      file is captured in an in-memory overlay (TxnFile); the base files
//      on disk are not touched, so the pre-transaction state stays intact.
//   2. Commit serializes the overlay into typed, CRC-32C-framed records,
//      appends them to the WAL file as one contiguous blob, and fsyncs the
//      WAL.  This single fsync is the durability point (group commit: one
//      fsync covers every update op batched into the transaction).
//   3. Only then is the overlay applied to the base files and each synced;
//      a checkpoint record marks the transaction as fully applied.
//
// A crash before step 2 completes loses at most the uncommitted
// transaction (the base files were never touched); a crash during step 3
// is repaired by recovery (storage/recovery.h), which replays the
// committed records — pure physical redo, idempotent byte rewrites — until
// the base files match the committed state.
//
// Frame format (little-endian):
//
//   [u32 crc32c over type..payload] [u8 type] [u32 payload_len] [payload]
//
// preceded once per file by an 8-byte magic header.  A torn tail (short or
// CRC-invalid frame) ends the scan; everything before it is trusted.
//
// Thread safety: WalWriter's transaction state (overlay registry, staged
// ops, counters) is guarded by an internal mutex, so stats() and
// in_transaction() may be polled from any thread.  The commit protocol
// itself is still single-writer: only one thread may run Begin/
// mutations/Commit at a time (the document store enforces this — it owns
// the writer).  TxnFile is confined to the writer thread; the snapshot
// machinery for concurrent readers lives in storage/page_versions.h.

#ifndef NOKXML_STORAGE_WAL_H_
#define NOKXML_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/file.h"

namespace nok {

class WalWriter;

/// Name of the WAL file inside a store directory.
inline constexpr char kWalFileName[] = "wal.log";

/// 8-byte magic at offset 0 of every WAL file ("NOKWAL1\n").
inline constexpr char kWalMagic[8] = {'N', 'O', 'K', 'W', 'A', 'L', '1',
                                      '\n'};
inline constexpr size_t kWalHeaderSize = sizeof(kWalMagic);

/// Frame header: u32 crc + u8 type + u32 payload length.
inline constexpr size_t kWalFrameHeaderSize = 4 + 1 + 4;

/// Record types.  Values are stable on-disk identifiers; never renumber.
enum class WalRecordType : uint8_t {
  kTxnBegin = 1,      ///< payload: varint target epoch
  kFileWrite = 2,     ///< payload: name, varint offset, data
  kFileTruncate = 3,  ///< payload: name, varint new size
  kFileReplace = 4,   ///< payload: name, whole-file contents
  kFileRemove = 5,    ///< payload: name
  kTxnCommit = 6,     ///< payload: varint epoch, varint record count
  kCheckpoint = 7,    ///< payload: varint epoch (txn fully applied)
};

/// One decoded WAL record.  Only the fields relevant to `type` are set.
struct WalRecord {
  WalRecordType type = WalRecordType::kTxnBegin;
  uint64_t epoch = 0;         ///< kTxnBegin / kTxnCommit / kCheckpoint
  uint64_t record_count = 0;  ///< kTxnCommit: records between begin/commit
  std::string name;           ///< file records: component file name
  uint64_t offset = 0;        ///< kFileWrite
  uint64_t size = 0;          ///< kFileTruncate
  std::string data;           ///< kFileWrite / kFileReplace payload
};

/// Appends the framed encoding of `rec` to *out.
void AppendWalFrame(std::string* out, const WalRecord& rec);

/// Decodes the frame at *pos in buf and advances *pos past it.  Returns
/// true on success, false at a clean end of buffer (*pos == buf.size()),
/// and Corruption for a torn or invalid frame at *pos (the scan must stop
/// and discard from *pos on).
Result<bool> ReadWalFrame(const Slice& buf, size_t* pos, WalRecord* rec);

/// File wrapper that, while its WalWriter has an open transaction, buffers
/// every mutation in an in-memory overlay instead of touching the base
/// file.  Reads merge the overlay over the base so the wrapping is
/// transparent to the store; Sync is deferred to commit.  Outside a
/// transaction all operations pass straight through.
class TxnFile final : public File {
 public:
  /// Takes ownership of base.  The WalWriter must outlive this file; the
  /// file registers itself with the writer and unregisters on destruction.
  TxnFile(std::string name, std::unique_ptr<File> base, WalWriter* wal);
  ~TxnFile() override;

  Status ReadAt(uint64_t offset, size_t n, char* scratch,
                Slice* out) const override;
  Status WriteAt(uint64_t offset, const Slice& data) override;
  Status Append(const Slice& data, uint64_t* offset) override;
  uint64_t Size() const override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;

  const std::string& name() const { return name_; }

 private:
  friend class WalWriter;

  bool InTransaction() const;
  void OverlayWrite(uint64_t offset, const Slice& data);
  /// Size the file will have once the overlay is applied.
  uint64_t VirtualSize() const;
  /// Bytes of the base file still valid under the overlay (below any
  /// pending truncate).
  uint64_t BaseValidLimit() const;

  /// Emits the overlay as WAL records (a minimal truncate/write/truncate
  /// sequence whose replay reproduces VirtualSize() and contents).
  void EncodeOverlay(std::string* out, uint64_t* record_count) const;
  /// Applies the overlay to the base file.  For every base byte range
  /// about to be overwritten or truncated away, calls `retain` (if set)
  /// with the pre-image first, so snapshot readers can keep serving the
  /// old epoch.  Does not sync.
  Status ApplyOverlayToBase(
      const std::function<void(const std::string& name, uint64_t offset,
                               std::string preimage)>& retain);
  void DiscardOverlay();

  std::string name_;
  std::unique_ptr<File> base_;
  WalWriter* wal_;

  /// Overlay state; meaningful only while dirty_ is true.
  bool dirty_ = false;
  std::map<uint64_t, std::string> ranges_;  ///< non-overlapping, coalesced
  uint64_t virtual_size_ = 0;
  std::optional<uint64_t> truncate_floor_;  ///< lowest pending truncate
};

struct WalWriterOptions {
  /// Once a checkpoint lands and the WAL exceeds this many bytes, it is
  /// reset to just the header (everything before the checkpoint is dead).
  uint64_t reset_threshold_bytes = 1 << 20;
};

/// Serializes transactions into the WAL and applies them to the base
/// files.  Single-writer; see file comment for the commit protocol.
class WalWriter {
 public:
  /// Called during commit, before a base byte range is overwritten or
  /// truncated away, with the pre-image bytes (page_versions.h retains
  /// them for snapshot readers).  `valid_through` is the last epoch the
  /// pre-image was current for (the committing epoch minus one).
  using RetainHook =
      std::function<void(const std::string& name, uint64_t offset,
                         std::string preimage, uint64_t valid_through)>;

  struct Stats {
    uint64_t commits = 0;
    uint64_t records_logged = 0;
    uint64_t bytes_logged = 0;
    uint64_t wal_syncs = 0;
    uint64_t resets = 0;
  };

  /// Opens a writer over an existing-or-empty WAL file belonging to the
  /// store at `dir`.  The file must already have been recovered
  /// (storage/recovery.h); an empty file gets the magic header written.
  static Result<std::unique_ptr<WalWriter>> Open(
      std::string dir, std::unique_ptr<File> wal_file,
      WalWriterOptions options = {});

  ~WalWriter();

  /// Wraps a component file for transactional capture.  `name` is the
  /// file's identifier in WAL records (its name inside the store dir).
  std::unique_ptr<File> Wrap(std::string name, std::unique_ptr<File> base);

  /// Opens a transaction; no-op if one is already open.  Mutations of
  /// wrapped files are captured until Commit or Abort.
  void Begin() EXCLUDES(mu_);
  bool in_transaction() const EXCLUDES(mu_);

  /// Stages a whole-file replace (applied at commit; used for the
  /// dictionary and the stale-positions marker, which bypass File).
  void StageReplace(std::string name, std::string contents) EXCLUDES(mu_);
  /// Stages a file removal (applied at commit).
  void StageRemove(std::string name) EXCLUDES(mu_);

  /// Commits the open transaction as `epoch`: serialize + fsync the WAL
  /// (durability point), apply the overlays and staged ops to the base
  /// files, sync them, and append a checkpoint.  No-op if no transaction
  /// is open.  On error the transaction stays open and the base files may
  /// be half-applied; the caller must treat the handle as poisoned and
  /// reopen the store (recovery replays the durable transaction).
  Status Commit(uint64_t epoch) EXCLUDES(mu_);

  /// Discards the open transaction without touching the WAL or the base
  /// files.  The caller must discard any in-memory state derived from the
  /// aborted mutations (the document store poisons itself and requires a
  /// reopen).
  Status Abort() EXCLUDES(mu_);

  void set_retain_hook(RetainHook hook) EXCLUDES(mu_);

  /// Monotonic count of captured mutations (overlay writes/truncates and
  /// staged ops).  An update op that fails without moving this counter
  /// left the transaction exactly as it found it.
  uint64_t capture_ticks() const EXCLUDES(mu_);

  /// Counter snapshot (by value: the counters move under mu_ and a
  /// reference would be read unguarded by the caller).
  Stats stats() const EXCLUDES(mu_);

 private:
  friend class TxnFile;

  WalWriter(std::string dir, std::unique_ptr<File> wal_file,
            WalWriterOptions options)
      : dir_(std::move(dir)),
        wal_(std::move(wal_file)),
        options_(options) {}

  void Register(TxnFile* file) EXCLUDES(mu_);
  void Unregister(TxnFile* file) EXCLUDES(mu_);
  void NoteCapture() EXCLUDES(mu_);

  /// Guards the transaction and commit state.  Held across the whole of
  /// Commit — including base-file I/O and the retain hook, which takes
  /// SnapshotTracker / PageVersionStore mutexes; the lock order is
  /// WalWriter::mu_ before both (DESIGN.md section 12).  Never re-enters:
  /// commit-path callees (TxnFile::EncodeOverlay / ApplyOverlayToBase /
  /// DiscardOverlay, File ops on base_) make no WalWriter calls.
  mutable Mutex mu_;

  std::string dir_;          // NOK008-OK: immutable after construction
  std::unique_ptr<File> wal_ GUARDED_BY(mu_);
  WalWriterOptions options_; // NOK008-OK: immutable after construction
  RetainHook retain_ GUARDED_BY(mu_);

  bool in_transaction_ GUARDED_BY(mu_) = false;
  /// Live wrapped files, registration order.
  std::vector<TxnFile*> files_ GUARDED_BY(mu_);
  /// Staged whole-file ops, in order: replace (has contents) or remove.
  struct StagedOp {
    std::string name;
    bool remove = false;
    std::string contents;
  };
  std::vector<StagedOp> staged_ GUARDED_BY(mu_);

  uint64_t capture_ticks_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace nok

#endif  // NOKXML_STORAGE_WAL_H_
