// Random-access file abstraction with POSIX and in-memory implementations.
//
// Everything persistent in the library (the succinct tree string, the value
// data file, the B+ tree indexes) sits on top of this interface, so tests
// can run entirely in memory while the real system uses files on disk.

#ifndef NOKXML_STORAGE_FILE_H_
#define NOKXML_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace nok {

/// Random-access byte store.
///
/// Thread safety: ReadAt is positional and const; any number of threads
/// may call it concurrently as long as no thread is mutating the file
/// (WriteAt/Append/Truncate).  The mutating methods are not coordinated —
/// callers serialize writes, or open read-only and never write.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly n bytes at offset into scratch; *out views scratch.
  /// Fails with IOError on short read.
  virtual Status ReadAt(uint64_t offset, size_t n, char* scratch,
                        Slice* out) const = 0;

  /// Writes data at offset, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, const Slice& data) = 0;

  /// Appends data at the end of the file; *offset receives the position the
  /// data was written at.
  virtual Status Append(const Slice& data, uint64_t* offset) = 0;

  /// Current size in bytes.
  virtual uint64_t Size() const = 0;

  /// Truncates (or extends with zeros) to size bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes buffered data to durable storage.
  virtual Status Sync() = 0;
};

/// Opens (or creates, if create is true) a file on the local filesystem.
Result<std::unique_ptr<File>> OpenPosixFile(const std::string& path,
                                            bool create);

/// Opens an existing file read-only (O_RDONLY).  Every mutating method of
/// the returned File fails with InvalidArgument; Sync is a no-op.  Use for
/// stores served concurrently by many reader threads.
Result<std::unique_ptr<File>> OpenPosixFileReadOnly(
    const std::string& path);

/// Creates an empty in-memory file (for tests and ephemeral stores).
std::unique_ptr<File> NewMemFile();

/// True if a file exists at path.
bool FileExists(const std::string& path);

/// Removes the file at path if it exists (missing file is not an error).
Status RemoveFile(const std::string& path);

/// Creates directory path (and parents).  Existing directory is OK.
Status CreateDirs(const std::string& path);

/// Reads an entire file into *out.
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes data to path, replacing any previous contents.
Status WriteStringToFile(const std::string& path, const Slice& data);

}  // namespace nok

#endif  // NOKXML_STORAGE_FILE_H_
