// Pager: fixed-size-page view over a File.
//
// The pager is deliberately dumb: it allocates pages densely at the end of
// the file and reads/writes whole pages.  Free-space management is the
// business of the structures above it (the B+ tree keeps a free list in its
// meta page; the string store chains pages with next-page pointers).
//
// Two on-disk page formats are supported:
//
//   kRaw          each page occupies exactly page_size bytes;
//   kChecksummed  each page occupies page_size + 4 bytes: the page body
//                 followed by a CRC-32C trailer over the body.  ReadPage
//                 verifies the trailer and fails with Status::Corruption
//                 (naming the page) on a mismatch, so torn writes and bit
//                 rot surface as clean errors instead of garbage data.
//
// Callers always see page_size-byte buffers; the trailer is invisible
// above the pager (the BufferPool and every store work unchanged in both
// formats).
//
// Thread safety: ReadPage is const and uses positional (pread-style)
// reads, so any number of threads may read concurrently provided no
// thread is calling AllocatePage/WritePage at the same time.  The sharded
// BufferPool relies on exactly this contract for its concurrent read
// path; the stores' read-only open mode guarantees the no-writer side.

#ifndef NOKXML_STORAGE_PAGER_H_
#define NOKXML_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"
#include "storage/page.h"

namespace nok {

/// On-disk layout of the pages of one file.
enum class PageFormat : uint8_t {
  kRaw = 0,         ///< page_size bytes per page, no integrity trailer.
  kChecksummed = 1, ///< page_size + 4 bytes per page; CRC-32C trailer.
};

/// Bytes of the per-page CRC-32C trailer in kChecksummed format.
inline constexpr uint32_t kPageTrailerSize = 4;

/// Fixed-size-page adapter over a File.  Owns the file.
class Pager {
 public:
  /// Opens a pager over file (taking ownership).  Fails with
  /// InvalidArgument if page_size is 0 and with Corruption if the file
  /// size is not a whole number of on-disk page slots (a truncated or
  /// foreign file).
  static Result<std::unique_ptr<Pager>> Open(
      std::unique_ptr<File> file, uint32_t page_size = kDefaultPageSize,
      PageFormat format = PageFormat::kRaw);

  uint32_t page_size() const { return page_size_; }
  PageId page_count() const { return page_count_; }
  PageFormat format() const { return format_; }

  /// Appends a zeroed page; *id receives its page number.
  Status AllocatePage(PageId* id);

  /// Reads page id into buf (page_size() bytes).  In kChecksummed format
  /// the trailer is verified first; a mismatch is Status::Corruption.
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page id from buf (page_size() bytes), computing the trailer
  /// in kChecksummed format.
  Status WritePage(PageId id, const char* buf);

  /// Flushes the underlying file.
  Status Sync() { return file_->Sync(); }

  /// Bytes currently occupied by pages on disk (trailers included).
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(page_count_) * slot_size_;
  }

  /// Releases ownership of the underlying file; the pager must not be
  /// used afterwards.  (Used by builders that hand a finished file to a
  /// reader.)
  std::unique_ptr<File> ReleaseFile() { return std::move(file_); }

 private:
  Pager(std::unique_ptr<File> file, uint32_t page_size, PageFormat format);

  std::unique_ptr<File> file_;
  uint32_t page_size_;
  uint32_t slot_size_;  ///< On-disk bytes per page (body + trailer).
  PageFormat format_;
  PageId page_count_ = 0;
};

}  // namespace nok

#endif  // NOKXML_STORAGE_PAGER_H_
