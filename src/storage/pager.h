// Pager: fixed-size-page view over a File.
//
// The pager is deliberately dumb: it allocates pages densely at the end of
// the file and reads/writes whole pages.  Free-space management is the
// business of the structures above it (the B+ tree keeps a free list in its
// meta page; the string store chains pages with next-page pointers).

#ifndef NOKXML_STORAGE_PAGER_H_
#define NOKXML_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "storage/file.h"
#include "storage/page.h"

namespace nok {

/// Fixed-size-page adapter over a File.  Owns the file.
class Pager {
 public:
  /// Takes ownership of file; page_size must be > 0 and the file size must
  /// be a multiple of it (0 for a fresh file).
  Pager(std::unique_ptr<File> file, uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const { return page_size_; }
  PageId page_count() const { return page_count_; }

  /// Appends a zeroed page; *id receives its page number.
  Status AllocatePage(PageId* id);

  /// Reads page id into buf (page_size() bytes).
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page id from buf (page_size() bytes).
  Status WritePage(PageId id, const char* buf);

  /// Flushes the underlying file.
  Status Sync() { return file_->Sync(); }

  /// Bytes currently occupied by pages.
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(page_count_) * page_size_;
  }

  /// Releases ownership of the underlying file; the pager must not be
  /// used afterwards.  (Used by builders that hand a finished file to a
  /// reader.)
  std::unique_ptr<File> ReleaseFile() { return std::move(file_); }

 private:
  std::unique_ptr<File> file_;
  uint32_t page_size_;
  PageId page_count_;
};

}  // namespace nok

#endif  // NOKXML_STORAGE_PAGER_H_
