// Page constants and identifiers for the paged-I/O model of the paper
// (Section 4.2: the tree string is materialized into fixed-size pages).

#ifndef NOKXML_STORAGE_PAGE_H_
#define NOKXML_STORAGE_PAGE_H_

#include <cstdint>

namespace nok {

/// Page number within one paged file.  Pages are dense, 0-based.
using PageId = uint32_t;

/// Sentinel for "no page" (e.g. the next-page pointer of the last page).
inline constexpr PageId kInvalidPage = 0xffffffffu;

/// Default page size, matching the paper's 4 KB assumption (Section 4.2).
inline constexpr uint32_t kDefaultPageSize = 4096;

}  // namespace nok

#endif  // NOKXML_STORAGE_PAGE_H_
