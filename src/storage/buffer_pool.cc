#include "storage/buffer_pool.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace nok {

BufferPool::BufferPool(Pager* pager, size_t capacity, size_t shards)
    : pager_(pager), capacity_(capacity) {
  NOK_CHECK(capacity_ >= 1);
  const size_t count = std::max<size_t>(1, std::min(shards, capacity));
  shard_capacity_ = std::max<size_t>(1, capacity / count);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    NOK_LOG(Error) << "BufferPool flush on destruction failed: "
                   << s.ToString();
  }
}

BufferPool::Shard& BufferPool::ShardFor(PageId id) {
  // Fibonacci hashing: consecutive page ids (the common access pattern
  // for sequential scans) spread evenly instead of striping one shard.
  const uint64_t mixed =
      static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ull;
  return *shards_[(mixed >> 32) % shards_.size()];
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  ++shard.stats.fetches;
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    ++shard.stats.hits;
    Frame* frame = it->second.get();
    if (frame->in_lru) {
      shard.lru.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pin_count;
    return PageHandle(this, frame);
  }

  ++shard.stats.misses;
  if (shard.frames.size() >= shard_capacity_) {
    NOK_RETURN_IF_ERROR(EvictOneLocked(shard));
  }

  // The shard lock is held across the disk read.  Readers of *other*
  // shards proceed in parallel; two readers missing on the same shard
  // serialize, which also guarantees a page is read from disk once, not
  // once per concurrent requester.
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->home = &shard;
  frame->data = std::make_unique<char[]>(pager_->page_size());
  NOK_RETURN_IF_ERROR(pager_->ReadPage(id, frame->data.get()));
  ++shard.stats.disk_reads;
  frame->pin_count = 1;
  Frame* raw = frame.get();
  shard.frames.emplace(id, std::move(frame));
  return PageHandle(this, raw);
}

void BufferPool::Unpin(Frame* frame) {
  Shard& shard = *frame->home;
  MutexLock lock(&shard.mu);
  NOK_CHECK(frame->pin_count > 0);
  if (--frame->pin_count == 0) {
    shard.lru.push_front(frame);
    frame->lru_pos = shard.lru.begin();
    frame->in_lru = true;
  }
}

std::shared_ptr<void> BufferPool::Decoration(const Frame* frame) const {
  MutexLock lock(&frame->home->mu);
  return frame->decoration;
}

void BufferPool::SetDecoration(Frame* frame, std::shared_ptr<void> d) {
  MutexLock lock(&frame->home->mu);
  frame->decoration = std::move(d);
}

Status BufferPool::EvictOneLocked(Shard& shard) {
  if (shard.lru.empty()) {
    return Status::Internal(
        "buffer pool capacity exhausted: all " +
        std::to_string(shard_capacity_) +
        " frames of the shard are pinned");
  }
  Frame* victim = shard.lru.back();
  // Write back before unlinking: if the write fails the frame stays dirty
  // and in the LRU list, the pool stays consistent, and the caller sees
  // the error.  Evicting first would strand the frame outside the list
  // with a dangling lru_pos.
  if (victim->dirty.load(std::memory_order_acquire)) {
    NOK_RETURN_IF_ERROR(pager_->WritePage(victim->id, victim->data.get()));
    ++shard.stats.disk_writes;
    victim->dirty.store(false, std::memory_order_release);
  }
  shard.lru.pop_back();
  victim->in_lru = false;
  ++shard.stats.evictions;
  shard.frames.erase(victim->id);
  return Status::OK();
}

Status BufferPool::FlushShardLocked(Shard& shard) {
  for (auto& [id, frame] : shard.frames) {
    if (frame->dirty.load(std::memory_order_acquire)) {
      NOK_RETURN_IF_ERROR(pager_->WritePage(id, frame->data.get()));
      ++shard.stats.disk_writes;
      frame->dirty.store(false, std::memory_order_release);
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    NOK_RETURN_IF_ERROR(FlushShardLocked(*shard));
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    NOK_RETURN_IF_ERROR(FlushShardLocked(*shard));
    while (!shard->lru.empty()) {
      Frame* victim = shard->lru.back();
      shard->lru.pop_back();
      shard->frames.erase(victim->id);
    }
  }
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total.fetches += shard->stats.fetches;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.disk_reads += shard->stats.disk_reads;
    total.disk_writes += shard->stats.disk_writes;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->stats = Stats{};
  }
}

std::shared_ptr<void> PageHandle::decoration() const {
  return pool_->Decoration(frame_);
}

void PageHandle::set_decoration(std::shared_ptr<void> d) {
  pool_->SetDecoration(frame_, std::move(d));
}

}  // namespace nok
