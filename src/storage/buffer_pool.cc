#include "storage/buffer_pool.h"

#include <string>

#include "common/logging.h"

namespace nok {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity) {
  NOK_CHECK(capacity_ >= 1);
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    NOK_LOG(Error) << "BufferPool flush on destruction failed: "
                   << s.ToString();
  }
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  ++stats_.fetches;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame* frame = it->second.get();
    if (frame->in_lru) {
      lru_.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pin_count;
    return PageHandle(this, frame);
  }

  if (frames_.size() >= capacity_) {
    NOK_RETURN_IF_ERROR(EvictOne());
  }

  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->data = std::make_unique<char[]>(pager_->page_size());
  NOK_RETURN_IF_ERROR(pager_->ReadPage(id, frame->data.get()));
  ++stats_.disk_reads;
  frame->pin_count = 1;
  Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  return PageHandle(this, raw);
}

void BufferPool::Unpin(Frame* frame) {
  NOK_CHECK(frame->pin_count > 0);
  if (--frame->pin_count == 0) {
    lru_.push_front(frame);
    frame->lru_pos = lru_.begin();
    frame->in_lru = true;
  }
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::Internal(
        "buffer pool capacity exhausted: all " +
        std::to_string(capacity_) + " frames are pinned");
  }
  Frame* victim = lru_.back();
  // Write back before unlinking: if the write fails the frame stays dirty
  // and in the LRU list, the pool stays consistent, and the caller sees
  // the error.  Evicting first would strand the frame outside the list
  // with a dangling lru_pos.
  if (victim->dirty) {
    NOK_RETURN_IF_ERROR(pager_->WritePage(victim->id, victim->data.get()));
    ++stats_.disk_writes;
    victim->dirty = false;
  }
  lru_.pop_back();
  victim->in_lru = false;
  ++stats_.evictions;
  frames_.erase(victim->id);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame->dirty) {
      NOK_RETURN_IF_ERROR(pager_->WritePage(id, frame->data.get()));
      ++stats_.disk_writes;
      frame->dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  NOK_RETURN_IF_ERROR(FlushAll());
  while (!lru_.empty()) {
    Frame* victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim->id);
  }
  return Status::OK();
}

}  // namespace nok
