#include "storage/recovery.h"

#include <cstring>
#include <map>
#include <utility>

#include "common/logging.h"

namespace nok {

namespace {

Result<std::unique_ptr<File>> OpenViaFactory(const WalFileFactory& factory,
                                             const std::string& path,
                                             bool create) {
  if (factory) return factory(path, create);
  return OpenPosixFile(path, create);
}

}  // namespace

WalScan ScanWal(const Slice& wal_bytes) {
  WalScan scan;
  if (wal_bytes.size() < kWalHeaderSize ||
      std::memcmp(wal_bytes.data(), kWalMagic, kWalHeaderSize) != 0) {
    // No trusted prefix at all; treat everything as torn.
    scan.torn_bytes = wal_bytes.size();
    return scan;
  }
  size_t pos = kWalHeaderSize;
  scan.valid_bytes = pos;
  // Transaction being assembled; discarded if its commit never appears.
  bool open = false;
  WalTransaction txn;
  while (true) {
    WalRecord rec;
    Result<bool> more = ReadWalFrame(wal_bytes, &pos, &rec);
    if (!more.ok() || !*more) break;
    switch (rec.type) {
      case WalRecordType::kTxnBegin:
        // A begin while a txn is open means the previous txn lost its
        // commit (crash between append batches); discard it.
        open = true;
        txn = WalTransaction();
        txn.epoch = rec.epoch;
        break;
      case WalRecordType::kTxnCommit:
        if (open && rec.epoch == txn.epoch &&
            rec.record_count == txn.records.size()) {
          scan.committed.push_back(std::move(txn));
        }
        open = false;
        txn = WalTransaction();
        break;
      case WalRecordType::kCheckpoint:
        scan.checkpoint_epoch =
            std::max(scan.checkpoint_epoch, rec.epoch);
        break;
      default:
        if (open) txn.records.push_back(std::move(rec));
        break;
    }
    // Only a fully parsed frame advances the trusted prefix; a torn
    // frame leaves valid_bytes at the last good boundary.
    scan.valid_bytes = pos;
  }
  scan.torn_bytes = wal_bytes.size() - scan.valid_bytes;
  return scan;
}

Status RecoverStoreDir(const std::string& dir,
                       const WalFileFactory& factory,
                       RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  *rep = RecoveryReport();

  const std::string wal_path = dir + "/" + kWalFileName;
  if (!FileExists(wal_path)) return Status::OK();
  rep->wal_present = true;

  NOK_ASSIGN_OR_RETURN(auto wal, OpenViaFactory(factory, wal_path, false));
  std::string bytes(wal->Size(), '\0');
  if (!bytes.empty()) {
    Slice got;
    NOK_RETURN_IF_ERROR(wal->ReadAt(0, bytes.size(), bytes.data(), &got));
    if (got.data() != bytes.data()) bytes.assign(got.data(), got.size());
  }
  if (bytes.empty()) return Status::OK();

  WalScan scan = ScanWal(Slice(bytes));
  rep->checkpoint_epoch = scan.checkpoint_epoch;
  rep->transactions_committed = scan.committed.size();
  if (!scan.committed.empty()) {
    rep->last_epoch = scan.committed.back().epoch;
  }

  // Drop the torn tail so later appends cannot resurrect garbage.
  if (scan.torn_bytes > 0) {
    NOK_RETURN_IF_ERROR(wal->Truncate(scan.valid_bytes));
    NOK_RETURN_IF_ERROR(wal->Sync());
    rep->torn_bytes_discarded = scan.torn_bytes;
  }

  // Replay committed transactions past the last checkpoint, in log order.
  // Physical redo is idempotent, so a transaction that was in fact fully
  // applied (crash after apply, before its checkpoint frame) is simply
  // rewritten byte-for-byte.
  std::map<std::string, std::unique_ptr<File>> files;
  auto component = [&](const std::string& name)
      -> Result<File*> {
    auto it = files.find(name);
    if (it == files.end()) {
      NOK_ASSIGN_OR_RETURN(
          auto f, OpenViaFactory(factory, dir + "/" + name, true));
      it = files.emplace(name, std::move(f)).first;
    }
    return it->second.get();
  };
  uint64_t replayed_epoch = scan.checkpoint_epoch;
  for (const WalTransaction& txn : scan.committed) {
    if (txn.epoch <= scan.checkpoint_epoch) continue;
    for (const WalRecord& rec : txn.records) {
      switch (rec.type) {
        case WalRecordType::kFileWrite: {
          NOK_ASSIGN_OR_RETURN(File * f, component(rec.name));
          NOK_RETURN_IF_ERROR(f->WriteAt(rec.offset, Slice(rec.data)));
          break;
        }
        case WalRecordType::kFileTruncate: {
          NOK_ASSIGN_OR_RETURN(File * f, component(rec.name));
          NOK_RETURN_IF_ERROR(f->Truncate(rec.size));
          break;
        }
        case WalRecordType::kFileReplace: {
          NOK_ASSIGN_OR_RETURN(File * f, component(rec.name));
          NOK_RETURN_IF_ERROR(f->Truncate(0));
          NOK_RETURN_IF_ERROR(f->WriteAt(0, Slice(rec.data)));
          break;
        }
        case WalRecordType::kFileRemove:
          // Close our handle first so the replay below cannot resurrect
          // the file through a stale descriptor's writes.
          files.erase(rec.name);
          NOK_RETURN_IF_ERROR(RemoveFile(dir + "/" + rec.name));
          break;
        default:
          return Status::Corruption(
              "WAL replay: unexpected record type inside transaction");
      }
      ++rep->records_replayed;
    }
    ++rep->transactions_replayed;
    replayed_epoch = txn.epoch;
  }

  // Make the repair durable, then mark it with a checkpoint.
  for (auto& [name, f] : files) {
    NOK_RETURN_IF_ERROR(f->Sync());
  }
  if (rep->transactions_replayed > 0) {
    std::string tail;
    WalRecord rec;
    rec.type = WalRecordType::kCheckpoint;
    rec.epoch = replayed_epoch;
    AppendWalFrame(&tail, rec);
    uint64_t unused;
    NOK_RETURN_IF_ERROR(wal->Append(Slice(tail), &unused));
    NOK_RETURN_IF_ERROR(wal->Sync());
  }
  return Status::OK();
}

Result<uint64_t> PendingWalTransactions(const std::string& dir) {
  const std::string wal_path = dir + "/" + kWalFileName;
  if (!FileExists(wal_path)) return uint64_t{0};
  std::string bytes;
  NOK_RETURN_IF_ERROR(ReadFileToString(wal_path, &bytes));
  WalScan scan = ScanWal(Slice(bytes));
  uint64_t pending = 0;
  for (const WalTransaction& txn : scan.committed) {
    if (txn.epoch > scan.checkpoint_epoch) ++pending;
  }
  return pending;
}

}  // namespace nok
