// Umbrella header: the public API of the nokxml library.
//
//   #include "nokxml.h"
//
//   auto store  = nok::DocumentStore::Build(xml, {});        // store + indexes
//   nok::QueryEngine engine(store->get());
//   auto result = engine.Evaluate("//book[price<100]/title"); // Dewey IDs
//   auto value  = (*store)->ValueOf((*result)[0]);            // node value
//
// Components (see README.md for the architecture):
//   * DocumentStore / QueryEngine  — the primary storage + query API
//   * EvaluateStreaming            — single-pass evaluation over raw XML
//   * DomTree / SaxParser          — standalone XML parsing utilities
//   * ParseXPath / PatternTree     — query model, for tooling
//   * BTree / StringStore / ...    — lower-level building blocks

#ifndef NOKXML_NOKXML_H_
#define NOKXML_NOKXML_H_

#include "common/result.h"
#include "common/status.h"
#include "encoding/dewey.h"
#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/pattern_tree.h"
#include "nok/query_engine.h"
#include "nok/xpath_parser.h"
#include "streaming/stream_matcher.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

#endif  // NOKXML_NOKXML_H_
