// Query executor: runs a QueryPlan over one DocumentStore.
//
// The executor is the only layer that materializes candidates.  It is a
// small set of pull-style operators wired per the plan:
//
//   AnchorScan / TagIndexProbe / ValueIndexProbe / PathIndexProbe
//       produce candidate subject nodes per the tree's access path;
//   SemiJoinFilter
//       (cost-based plans only) prunes anchor candidates against the
//       already-evaluated child trees' qualified roots before any page
//       is fetched for them — a sorted Dewey merge, no I/O;
//   NokMatch
//       Algorithm 1 over Algorithm 2 per candidate (anchored trunk
//       verification or whole-tree matching), with global-arc
//       constraints injected into witness selection;
//   StructuralSemiJoin
//       the top-down liveness pass along each global arc;
//   Output
//       collects the returning node's matches in document order.
//
// Each operator records runtime stats — estimated vs. actual
// cardinality, rows in/out, subject-tree pages touched (NavStats
// deltas) and wall time — into an ExecutionTrace, which is what
// QueryEngine::ExplainLast() and `nokq explain` render.

#ifndef NOKXML_NOK_EXECUTOR_H_
#define NOKXML_NOK_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/nok_partition.h"
#include "nok/planner.h"
#include "nok/structural_join.h"

namespace nok {

/// Diagnostics from the last Evaluate call.
struct QueryStats {
  /// Per NoK tree: which strategy ran and how many candidates/matches.
  struct TreeStats {
    StartStrategy strategy = StartStrategy::kScan;
    size_t candidates = 0;
    size_t bindings = 0;
  };
  std::vector<TreeStats> trees;
  size_t results = 0;
};

/// One successful NoK match: the matched subject nodes per designated
/// local pattern node (indexed by local node id).
struct NokBinding {
  std::vector<std::vector<NodeMatch>> matches;
};

/// Runtime record of one plan operator.
struct OperatorStats {
  std::string op;      ///< "TagIndexProbe", "NokMatch", ...
  int tree = -1;       ///< NoK tree id; -1 for cross-tree operators.
  std::string detail;  ///< Operand / axis / mode, plan-dependent only.
  bool has_estimate = false;
  uint64_t estimated = 0;  ///< Planner's cardinality estimate.
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t pages = 0;      ///< Subject-tree pages materialized (NavStats).
  double seconds = 0;      ///< Wall time inside the operator.
};

/// Everything ExplainLast needs about the last execution.
struct ExecutionTrace {
  std::vector<OperatorStats> operators;
  bool plan_cache_hit = false;  ///< Filled by QueryEngine.
  double plan_seconds = 0;      ///< Planning wall time (0 on cache hit).
  /// Whether the plan's estimates came from the path synopsis, and
  /// whether the synopsis proved the query empty (EmptyResult plan —
  /// the run then touches zero pages and runs zero probes).
  bool synopsis_used = false;
  bool empty_result = false;
  std::string empty_reason;
  /// Navigation tier the run used, plus the BP-index work it did
  /// (NavStats deltas; both zero in paged mode).
  NavMode nav_mode = NavMode::kPaged;
  uint64_t bp_steps = 0;
  uint64_t bp_tag_blocks_skipped = 0;
};

/// Executes query plans.  Like QueryEngine, an executor is a cheap
/// per-thread object holding only the store pointer.
class Executor {
 public:
  explicit Executor(DocumentStore* store) : store_(store) {}

  /// Runs the plan; returns the returning node's matches as Dewey IDs in
  /// document order.  `stats` and `trace` must be non-null; both are
  /// overwritten.  The plan must have been built for this partition (and
  /// for the store's current structural state).
  /// Runs the plan against the store's selected navigation tier: paged
  /// (StoreCursor) or balanced-parentheses (BpCursor), per
  /// DocumentStoreOptions::nav_mode.  Candidate production, Dewey
  /// resolution and interval derivation all go through the chosen
  /// backend, so a BP run touches no subject-tree pages; results are
  /// identical across modes.
  Result<std::vector<DeweyId>> Run(const QueryPlan& plan,
                                   const NokPartition& partition,
                                   const std::vector<TagId>& tag_table,
                                   const QueryOptions& options,
                                   QueryStats* stats,
                                   ExecutionTrace* trace);

 private:
  DocumentStore* store_;
};

}  // namespace nok

#endif  // NOKXML_NOK_EXECUTOR_H_
