// Pattern trees (Section 2 of the paper).
//
// A pattern tree is the graphical form of a path expression: nodes carry
// tag-name and value constraints, edges carry structural relationship
// constraints (axes).  One node is the returning node.  Children of a node
// may additionally be partially ordered by following-sibling constraints,
// making each sibling group a DAG.
//
// The root of every pattern tree is a virtual node standing for the
// document root (the "root" node of Figure 1(b)); the subject tree's root
// element matches the virtual node's child via the leading '/' step.

#ifndef NOKXML_NOK_PATTERN_TREE_H_
#define NOKXML_NOK_PATTERN_TREE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace nok {

/// Structural axes after normalization (Section 2: every XPath axis can be
/// rewritten over {self, child, descendant, following}; following-sibling
/// is kept explicitly because it is a *local* relationship that stays
/// inside a NoK tree).
enum class Axis {
  kChild,             // '/'
  kDescendant,        // '//'
  kFollowing,         // following::  (global, starts a new NoK tree)
  kPreceding,         // preceding::  (global, mirror of following)
  kFollowingSibling,  // following-sibling:: (local; encoded as an order
                      // constraint between siblings, see PatternNode)
};

/// Comparison operator of a value constraint.
enum class ValueOp { kNone, kEq, kNe, kLt, kLe, kGt, kGe };

/// Value constraint attached to a pattern node (e.g. ="Stevens", <100).
struct ValuePredicate {
  ValueOp op = ValueOp::kNone;
  std::string operand;

  bool active() const { return op != ValueOp::kNone; }
};

/// Evaluates a predicate against a node value.  Ordering comparisons are
/// numeric when both sides parse as numbers, lexicographic otherwise;
/// equality is exact string equality (XPath untyped-data convention used
/// by the paper's queries).
bool EvalValuePredicate(const ValuePredicate& pred, const std::string& value);

/// One node of a pattern tree.
struct PatternNode {
  int id = 0;              ///< Dense id within the tree (pre-order).
  std::string tag;         ///< Element name; "@name" for attributes.
  bool wildcard = false;   ///< '*' name test.
  bool is_doc_root = false;///< The virtual document-root node.
  ValuePredicate predicate;
  /// Positional predicate [n] (1-based); 0 means none.  The matched node
  /// must be the n-th child of its subject-tree parent among the siblings
  /// passing this node's name test (all siblings for a wildcard).  Only
  /// the oracle and the region engine evaluate it; every other engine
  /// rejects positional patterns with a NotSupported Status.
  int position = 0;
  bool is_returning = false;

  PatternNode* parent = nullptr;
  Axis incoming = Axis::kChild;  ///< Axis on the edge from parent.
  std::vector<std::unique_ptr<PatternNode>> children;

  /// Partial order on children: (i, j) means child i must match a sibling
  /// that precedes child j's match (a following-sibling arc i -> j).
  std::vector<std::pair<int, int>> sibling_order;
};

/// Owning pattern tree plus bookkeeping.
class PatternTree {
 public:
  PatternTree();
  PatternTree(PatternTree&&) = default;
  PatternTree& operator=(PatternTree&&) = default;

  PatternNode* root() { return root_.get(); }
  const PatternNode* root() const { return root_.get(); }

  /// The unique returning node (never the virtual root).
  const PatternNode* returning() const { return returning_; }
  void set_returning(PatternNode* node);

  /// Number of nodes including the virtual root.
  int size() const { return size_; }

  /// Assigns dense pre-order ids; called by the parser after construction.
  void Renumber();

  /// Display form for diagnostics ("root -/-> a -//-> b[...]").
  std::string ToString() const;

 private:
  std::unique_ptr<PatternNode> root_;
  PatternNode* returning_ = nullptr;
  int size_ = 0;
};

/// Name of an axis for diagnostics.
std::string_view AxisName(Axis axis);

/// True iff any node of the tree carries a positional predicate [n].
/// Engines without positional support call this up front and return
/// NotSupported instead of silently computing a wrong answer.
bool HasPositionalPredicate(const PatternTree& tree);

}  // namespace nok

#endif  // NOKXML_NOK_PATTERN_TREE_H_
