// Structural joins over NoK partial-match results (Sections 2 and 5).
//
// After NoK pattern matching, the per-tree results are combined along the
// global arcs (descendant '//', following) of the partition.  Two
// containment tests are supported:
//
//   * kInterval — the paper's condition: the pair (GlobalPos(open),
//     GlobalPos(close)) of a node is an interval; descendant means strict
//     interval containment, following means inner.start > outer.end.
//     This is "just as in the interval encoding approach" (Section 5).
//   * kDewey — Dewey-prefix containment: ancestor iff proper prefix.
//     Needs no subtree-end scan, so it is the engine default; kInterval
//     is kept for the paper-faithful mode and for the I/O ablation.
//
// Joins are semi-joins (the query returns a single node set, so arcs act
// as existential filters) implemented with the classic sort + ancestor-
// stack merge.

#ifndef NOKXML_NOK_STRUCTURAL_JOIN_H_
#define NOKXML_NOK_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "encoding/dewey.h"
#include "nok/pattern_tree.h"

namespace nok {

/// Containment test selector.
enum class JoinMode { kDewey, kInterval };

/// One matched subject node as seen by the join layer.
struct NodeMatch {
  DeweyId dewey = DeweyId::Root();
  /// Interval endpoints (valid when built in kInterval mode).
  uint64_t start = 0;
  uint64_t end = 0;
  /// The virtual super-root: ancestor of everything, followed by nothing.
  bool virtual_root = false;
};

/// Document-order comparison (by Dewey ID; well-defined in both modes).
bool DocOrderLess(const NodeMatch& a, const NodeMatch& b);

/// Sorts matches into document order and drops duplicates.
void SortUnique(std::vector<NodeMatch>* matches);

/// True iff inner stands in `axis` relation to outer (axis kDescendant:
/// inner is a proper descendant of outer; kFollowing: inner starts after
/// outer's subtree ends).
bool IsRelated(const NodeMatch& outer, const NodeMatch& inner, Axis axis,
               JoinMode mode);

/// Returns the inners related to at least one outer, in document order.
/// Both inputs must be sorted (SortUnique).
std::vector<NodeMatch> SelectRelatedInners(
    const std::vector<NodeMatch>& outers,
    const std::vector<NodeMatch>& inners, Axis axis, JoinMode mode);

/// flags[i] = outer i has at least one related inner.  Both inputs must
/// be sorted.
std::vector<char> FlagOutersWithRelatedInner(
    const std::vector<NodeMatch>& outers,
    const std::vector<NodeMatch>& inners, Axis axis, JoinMode mode);

}  // namespace nok

#endif  // NOKXML_NOK_STRUCTURAL_JOIN_H_
