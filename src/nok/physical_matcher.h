// Physical-level NoK pattern matching (Section 5 of the paper).
//
// StoreCursor drives the logical matcher (Algorithm 1) directly over the
// succinct string representation using the FIRST-CHILD and
// FOLLOWING-SIBLING primitives of Algorithm 2 — the subject tree is never
// reconstructed.  Dewey IDs are derived for free during the traversal
// (root 0; FirstChild appends .0; FollowingSibling increments the last
// component), which is how value constraints reach the B+i/data-file pair
// without any ids being stored in the tree string.

#ifndef NOKXML_NOK_PHYSICAL_MATCHER_H_
#define NOKXML_NOK_PHYSICAL_MATCHER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/logical_matcher.h"
#include "nok/pattern_tree.h"
#include "nok/tree_cursor.h"

namespace nok {

/// Resolves every pattern node's tag name against a document's dictionary
/// once, producing a table indexed by PatternNode::id (the dense pre-order
/// ids assigned by PatternTree::Renumber).  Wildcards, the virtual root
/// and names absent from the document resolve to kInvalidTag.  Built once
/// per query at plan time and shared by every cursor, replacing per-cursor
/// name lookups during matching.
inline std::vector<TagId> ResolvePatternTags(const PatternTree& pattern,
                                             const TagDictionary& tags) {
  std::vector<TagId> table(static_cast<size_t>(pattern.size()),
                           kInvalidTag);
  std::vector<const PatternNode*> stack = {pattern.root()};
  while (!stack.empty()) {
    const PatternNode* node = stack.back();
    stack.pop_back();
    if (!node->is_doc_root && !node->wildcard &&
        static_cast<size_t>(node->id) < table.size()) {
      auto id = tags.Lookup(node->tag);
      if (id.has_value()) table[static_cast<size_t>(node->id)] = *id;
    }
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return table;
}

/// Cursor over a DocumentStore's string representation.
class StoreCursor {
 public:
  /// A subject-tree position: physical symbol position + derived Dewey ID.
  struct NodeT {
    StorePos pos;
    DeweyId dewey = DeweyId::Root();
    bool virtual_root = false;
  };

  explicit StoreCursor(DocumentStore* store) : store_(store) {}

  /// The virtual super-root (parent of the document root).
  NodeT VirtualRoot() const {
    NodeT node;
    node.virtual_root = true;
    return node;
  }

  /// Node handle for an arbitrary Dewey ID (navigates from the root).
  Result<NodeT> NodeAt(const DeweyId& dewey) {
    NOK_ASSIGN_OR_RETURN(StorePos pos, store_->Locate(dewey));
    return NodeT{pos, dewey, false};
  }

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    if (node.virtual_root) {
      return std::optional<NodeT>(
          NodeT{store_->tree()->RootPos(), DeweyId::Root(), false});
    }
    NOK_ASSIGN_OR_RETURN(auto child, store_->tree()->FirstChild(node.pos));
    if (!child.has_value()) return std::optional<NodeT>();
    return std::optional<NodeT>(NodeT{*child, node.dewey.Child(0), false});
  }

  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    if (node.virtual_root || node.dewey.depth() == 1) {
      return std::optional<NodeT>();  // The root has no siblings.
    }
    NOK_ASSIGN_OR_RETURN(auto sibling,
                         store_->tree()->FollowingSibling(node.pos));
    if (!sibling.has_value()) return std::optional<NodeT>();
    NodeT next{*sibling, node.dewey, false};
    next.dewey.NextSibling();  // In place: no component-vector rebuild.
    return std::optional<NodeT>(std::move(next));
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    if (pattern.is_doc_root) return node.virtual_root;
    if (node.virtual_root) return false;
    if (!pattern.wildcard) {
      const TagId want = ResolveTag(pattern);
      if (want == kInvalidTag) return false;
      NOK_ASSIGN_OR_RETURN(TagId got, store_->tree()->TagAt(node.pos));
      if (got != want) return false;
    }
    if (pattern.predicate.active()) {
      NOK_ASSIGN_OR_RETURN(auto value, store_->ValueOf(node.dewey));
      if (!value.has_value()) return false;
      return EvalValuePredicate(pattern.predicate, *value);
    }
    return true;
  }

  /// Installs the plan-time tag table (see ResolvePatternTags).  The
  /// table must outlive every Matches call; without one the cursor falls
  /// back to dictionary lookups per call.
  void set_tag_table(const std::vector<TagId>* table) {
    tag_table_ = table;
  }

  DocumentStore* store() { return store_; }

 private:
  /// Resolved tag of a pattern node: from the plan-time table when
  /// installed (kInvalidTag: the name does not occur in the document).
  TagId ResolveTag(const PatternNode& pattern) {
    if (tag_table_ != nullptr &&
        static_cast<size_t>(pattern.id) < tag_table_->size()) {
      return (*tag_table_)[static_cast<size_t>(pattern.id)];
    }
    auto id = store_->tags()->Lookup(pattern.tag);
    return id.has_value() ? *id : kInvalidTag;
  }

  DocumentStore* store_;
  const std::vector<TagId>* tag_table_ = nullptr;
};

/// Convenience alias: the physical matcher is the logical matcher over a
/// StoreCursor (the point of Section 5: same algorithm, physical
/// primitives).
using PhysicalNokMatcher = NokMatcher<StoreCursor>;

}  // namespace nok

#endif  // NOKXML_NOK_PHYSICAL_MATCHER_H_
