// Physical-level NoK pattern matching (Section 5 of the paper).
//
// StoreCursor drives the logical matcher (Algorithm 1) directly over the
// succinct string representation using the FIRST-CHILD and
// FOLLOWING-SIBLING primitives of Algorithm 2 — the subject tree is never
// reconstructed.  Dewey IDs are derived for free during the traversal
// (root 0; FirstChild appends .0; FollowingSibling increments the last
// component), which is how value constraints reach the B+i/data-file pair
// without any ids being stored in the tree string.

#ifndef NOKXML_NOK_PHYSICAL_MATCHER_H_
#define NOKXML_NOK_PHYSICAL_MATCHER_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "encoding/document_store.h"
#include "nok/logical_matcher.h"
#include "nok/pattern_tree.h"
#include "nok/tree_cursor.h"

namespace nok {

/// Cursor over a DocumentStore's string representation.
class StoreCursor {
 public:
  /// A subject-tree position: physical symbol position + derived Dewey ID.
  struct NodeT {
    StorePos pos;
    DeweyId dewey = DeweyId::Root();
    bool virtual_root = false;
  };

  explicit StoreCursor(DocumentStore* store) : store_(store) {}

  /// The virtual super-root (parent of the document root).
  NodeT VirtualRoot() const {
    NodeT node;
    node.virtual_root = true;
    return node;
  }

  /// Node handle for an arbitrary Dewey ID (navigates from the root).
  Result<NodeT> NodeAt(const DeweyId& dewey) {
    NOK_ASSIGN_OR_RETURN(StorePos pos, store_->Locate(dewey));
    return NodeT{pos, dewey, false};
  }

  Result<std::optional<NodeT>> FirstChild(const NodeT& node) {
    if (node.virtual_root) {
      return std::optional<NodeT>(
          NodeT{store_->tree()->RootPos(), DeweyId::Root(), false});
    }
    NOK_ASSIGN_OR_RETURN(auto child, store_->tree()->FirstChild(node.pos));
    if (!child.has_value()) return std::optional<NodeT>();
    return std::optional<NodeT>(NodeT{*child, node.dewey.Child(0), false});
  }

  Result<std::optional<NodeT>> FollowingSibling(const NodeT& node) {
    if (node.virtual_root || node.dewey.depth() == 1) {
      return std::optional<NodeT>();  // The root has no siblings.
    }
    NOK_ASSIGN_OR_RETURN(auto sibling,
                         store_->tree()->FollowingSibling(node.pos));
    if (!sibling.has_value()) return std::optional<NodeT>();
    std::vector<uint32_t> components = node.dewey.components();
    ++components.back();
    return std::optional<NodeT>(
        NodeT{*sibling, DeweyId(std::move(components)), false});
  }

  Result<bool> Matches(const NodeT& node, const PatternNode& pattern) {
    if (pattern.is_doc_root) return node.virtual_root;
    if (node.virtual_root) return false;
    if (!pattern.wildcard) {
      const TagId want = ResolveTag(pattern.tag);
      if (want == kInvalidTag) return false;
      NOK_ASSIGN_OR_RETURN(TagId got, store_->tree()->TagAt(node.pos));
      if (got != want) return false;
    }
    if (pattern.predicate.active()) {
      NOK_ASSIGN_OR_RETURN(auto value, store_->ValueOf(node.dewey));
      if (!value.has_value()) return false;
      return EvalValuePredicate(pattern.predicate, *value);
    }
    return true;
  }

  DocumentStore* store() { return store_; }

 private:
  /// Pattern tag name -> TagId with memoization (kInvalidTag: the name
  /// does not occur in the document at all).
  TagId ResolveTag(const std::string& name) {
    auto it = tag_cache_.find(name);
    if (it != tag_cache_.end()) return it->second;
    auto id = store_->tags()->Lookup(name);
    const TagId resolved = id.has_value() ? *id : kInvalidTag;
    tag_cache_.emplace(name, resolved);
    return resolved;
  }

  DocumentStore* store_;
  std::unordered_map<std::string, TagId> tag_cache_;
};

/// Convenience alias: the physical matcher is the logical matcher over a
/// StoreCursor (the point of Section 5: same algorithm, physical
/// primitives).
using PhysicalNokMatcher = NokMatcher<StoreCursor>;

}  // namespace nok

#endif  // NOKXML_NOK_PHYSICAL_MATCHER_H_
