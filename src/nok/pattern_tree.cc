#include "nok/pattern_tree.h"

#include <cstdlib>

#include "common/logging.h"

namespace nok {

namespace {

/// Attempts to parse s as a finite double; returns success.
bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool EvalValuePredicate(const ValuePredicate& pred,
                        const std::string& value) {
  switch (pred.op) {
    case ValueOp::kNone:
      return true;
    case ValueOp::kEq:
      return value == pred.operand;
    case ValueOp::kNe:
      return value != pred.operand;
    default:
      break;
  }
  double lhs = 0, rhs = 0;
  int cmp;
  if (ParseNumber(value, &lhs) && ParseNumber(pred.operand, &rhs)) {
    cmp = lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  } else {
    cmp = value.compare(pred.operand);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (pred.op) {
    case ValueOp::kLt:
      return cmp < 0;
    case ValueOp::kLe:
      return cmp <= 0;
    case ValueOp::kGt:
      return cmp > 0;
    case ValueOp::kGe:
      return cmp >= 0;
    default:
      return false;  // Unreachable.
  }
}

PatternTree::PatternTree() {
  root_ = std::make_unique<PatternNode>();
  root_->is_doc_root = true;
  root_->tag = "/";
}

void PatternTree::set_returning(PatternNode* node) {
  NOK_CHECK(node != nullptr && !node->is_doc_root);
  if (returning_ != nullptr) returning_->is_returning = false;
  returning_ = node;
  node->is_returning = true;
}

void PatternTree::Renumber() {
  int counter = 0;
  struct Item {
    PatternNode* node;
    size_t next_child;
  };
  std::vector<Item> stack;
  root_->id = counter++;
  root_->parent = nullptr;
  stack.push_back({root_.get(), 0});
  while (!stack.empty()) {
    Item& top = stack.back();
    if (top.next_child < top.node->children.size()) {
      PatternNode* child = top.node->children[top.next_child].get();
      ++top.next_child;
      child->parent = top.node;
      child->id = counter++;
      stack.push_back({child, 0});
    } else {
      stack.pop_back();
    }
  }
  size_ = counter;
}

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "/";
    case Axis::kDescendant:
      return "//";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
  }
  return "?";
}

namespace {

void ToStringRec(const PatternNode* node, std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node->is_doc_root) {
    out->append("(root)");
  } else {
    out->append(std::string(AxisName(node->incoming)));
    out->push_back(' ');
    out->append(node->wildcard ? "*" : node->tag);
    if (node->predicate.active()) {
      out->push_back('[');
      switch (node->predicate.op) {
        case ValueOp::kEq: out->append("="); break;
        case ValueOp::kNe: out->append("!="); break;
        case ValueOp::kLt: out->append("<"); break;
        case ValueOp::kLe: out->append("<="); break;
        case ValueOp::kGt: out->append(">"); break;
        case ValueOp::kGe: out->append(">="); break;
        case ValueOp::kNone: break;
      }
      out->append(node->predicate.operand);
      out->push_back(']');
    }
    if (node->position > 0) {
      out->append("[" + std::to_string(node->position) + "]");
    }
    if (node->is_returning) out->append(" <-- returning");
  }
  out->push_back('\n');
  for (const auto& child : node->children) {
    ToStringRec(child.get(), out, depth + 1);
  }
  if (!node->sibling_order.empty()) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append("order:");
    for (auto [a, b] : node->sibling_order) {
      out->append(" " + std::to_string(a) + "<" + std::to_string(b));
    }
    out->push_back('\n');
  }
}

}  // namespace

std::string PatternTree::ToString() const {
  std::string out;
  ToStringRec(root_.get(), &out, 0);
  return out;
}

bool HasPositionalPredicate(const PatternTree& tree) {
  std::vector<const PatternNode*> todo{tree.root()};
  while (!todo.empty()) {
    const PatternNode* node = todo.back();
    todo.pop_back();
    if (node->position > 0) return true;
    for (const auto& child : node->children) todo.push_back(child.get());
  }
  return false;
}

}  // namespace nok
