#include "nok/query_engine.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "nok/physical_matcher.h"
#include "nok/xpath_parser.h"

namespace nok {

Result<std::vector<DeweyId>> QueryEngine::Evaluate(
    const std::string& xpath, const QueryOptions& options) {
  // Reset diagnostics before parsing, so a malformed query can never
  // leave the previous query's stats/trace in place.
  stats_ = QueryStats{};
  last_trace_ = ExecutionTrace{};
  last_plan_.reset();
  last_plan_text_.clear();
  NOK_ASSIGN_OR_RETURN(auto pattern, ParseXPath(xpath));
  return EvaluatePattern(pattern, options);
}

Result<std::vector<DeweyId>> QueryEngine::EvaluatePattern(
    const PatternTree& pattern, const QueryOptions& options) {
  stats_ = QueryStats{};
  last_trace_ = ExecutionTrace{};
  last_plan_.reset();
  last_plan_text_.clear();

  if (HasPositionalPredicate(pattern)) {
    return Status::NotSupported(
        "positional predicates [n] are not evaluated by the NoK engine; "
        "use the region baseline");
  }

  const NokPartition partition = PartitionPattern(pattern);

  // Resolve every pattern tag against the dictionary once; the table is
  // shared by planning and by every Matches call during matching.
  const std::vector<TagId> tag_table =
      ResolvePatternTags(pattern, *store_->tags());

  std::shared_ptr<const QueryPlan> plan;
  bool cache_hit = false;
  std::string key;
  if (options.use_plan_cache) {
    key = PlanCache::Key(pattern.ToString(), options, store_->epoch(),
                         store_->structure_version(), store_->nav_mode());
    plan = shared_plan_cache_ != nullptr ? shared_plan_cache_->Lookup(key)
                                         : plan_cache_.Lookup(key);
    cache_hit = plan != nullptr;
  }
  double plan_seconds = 0;
  if (plan == nullptr) {
    const auto start = std::chrono::steady_clock::now();
    Planner planner(store_);
    NOK_ASSIGN_OR_RETURN(QueryPlan fresh,
                         planner.Plan(partition, tag_table, options));
    plan_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    auto shared = std::make_shared<const QueryPlan>(std::move(fresh));
    if (options.use_plan_cache) {
      if (shared_plan_cache_ != nullptr) {
        shared_plan_cache_->Insert(key, shared);
      } else {
        plan_cache_.Insert(key, shared);
      }
    }
    plan = std::move(shared);
  }

  Executor executor(store_);
  NOK_ASSIGN_OR_RETURN(
      std::vector<DeweyId> out,
      executor.Run(*plan, partition, tag_table, options, &stats_,
                   &last_trace_));
  last_trace_.plan_cache_hit = cache_hit;
  last_trace_.plan_seconds = plan_seconds;
  last_plan_text_ = plan->ToString(partition);
  last_plan_ = std::move(plan);
  return out;
}

std::string QueryEngine::ExplainLast() const {
  if (last_plan_ == nullptr) return "no query evaluated yet\n";
  std::string out = last_plan_text_;
  char line[256];
  std::snprintf(line, sizeof(line), "  planning: %s, time=%.3fms\n",
                last_trace_.plan_cache_hit ? "plan cache hit"
                                           : "plan cache miss",
                last_trace_.plan_seconds * 1e3);
  out += line;
  if (last_trace_.empty_result) {
    out += "  synopsis: proved empty (" + last_trace_.empty_reason + ")\n";
  }
  if (last_trace_.nav_mode == NavMode::kBp) {
    std::snprintf(line, sizeof(line),
                  "  nav: bp bp_steps=%llu blocks_skipped=%llu\n",
                  static_cast<unsigned long long>(last_trace_.bp_steps),
                  static_cast<unsigned long long>(
                      last_trace_.bp_tag_blocks_skipped));
    out += line;
  }
  out += "  operators:\n";
  for (const OperatorStats& op : last_trace_.operators) {
    std::string row = "    [";
    row += op.tree >= 0 ? "tree " + std::to_string(op.tree) : "query";
    row += "] " + op.op;
    if (!op.detail.empty()) row += " " + op.detail;
    if (op.has_estimate) row += " est=" + std::to_string(op.estimated);
    row += " in=" + std::to_string(op.rows_in);
    row += " out=" + std::to_string(op.rows_out);
    std::snprintf(line, sizeof(line), " pages=%llu time=%.3fms\n",
                  static_cast<unsigned long long>(op.pages),
                  op.seconds * 1e3);
    row += line;
    out += row;
  }
  std::snprintf(line, sizeof(line), "  results: %zu\n", stats_.results);
  out += line;
  return out;
}

}  // namespace nok
